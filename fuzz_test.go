package statsudf

import (
	"strings"
	"testing"
)

// FuzzImportCSV drives the CSV loader with arbitrary bytes against an
// in-memory database. The loader must never panic and must never leave
// a half-created table behind: either the import succeeds and the
// table answers a COUNT(*) matching the reported row count, or it
// fails and the table does not exist.
func FuzzImportCSV(f *testing.F) {
	f.Add("a,b\n1,2\n3,4\n", true)
	f.Add("1,2.5,x\n2,3.5,y\n", false)
	f.Add("a,b\n1,\n,2\n", true)
	f.Add("h\n\"quoted,comma\"\n", true)
	f.Add("a,b\n1\n", true)       // ragged row: must error cleanly
	f.Add("a,b\n1,notint\n", false) // type drift after inference
	f.Add("", true)
	d, err := Open(Options{Partitions: 2})
	if err != nil {
		f.Fatal(err)
	}
	defer d.Close()
	f.Fuzz(func(t *testing.T, data string, header bool) {
		n, err := d.ImportCSV("fz", strings.NewReader(data), header)
		if err != nil {
			if d.eng.HasTable("fz") {
				if _, derr := d.Exec("DROP TABLE fz"); derr != nil {
					t.Fatalf("cleanup after failed import: %v", derr)
				}
				t.Fatalf("failed import left table behind (data=%q): %v", data, err)
			}
			return
		}
		res, err := d.Exec("SELECT count(*) FROM fz")
		if err != nil {
			t.Fatalf("imported table is not queryable (data=%q): %v", data, err)
		}
		if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
			t.Fatalf("COUNT(*) shape: %d rows", len(res.Rows))
		}
		if got := res.Rows[0][0].Int(); got != n {
			t.Fatalf("ImportCSV reported %d rows, COUNT(*) sees %d (data=%q)", n, got, data)
		}
		if _, err := d.Exec("DROP TABLE fz"); err != nil {
			t.Fatal(err)
		}
	})
}
