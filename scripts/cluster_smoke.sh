#!/usr/bin/env bash
# cluster_smoke.sh — CI smoke test for the distributed coordinator.
#
# Starts two twmd shard nodes and one twmd -coordinator over them,
# drives the paper's workload through the coordinator with sqlsh
# (create a table, scatter rows, merged aggregates, the n,L,Q summary
# UDF, model storage and scoring), checks the merged results are
# byte-identical to a single twmd node given the same statements,
# inspects sys.shards, then kills one shard and requires the next
# statement to fail fast with the typed shard_unavailable error and
# sys.shards to show the node down. Finally SIGTERMs the coordinator
# and requires a clean drain.
set -euo pipefail

COORD="${TWMD_COORD_ADDR:-127.0.0.1:7795}"
SHARD0="${TWMD_SHARD0_ADDR:-127.0.0.1:7796}"
SHARD1="${TWMD_SHARD1_ADDR:-127.0.0.1:7797}"
SINGLE="${TWMD_SINGLE_ADDR:-127.0.0.1:7798}"
CLOG="$(mktemp)" S0LOG="$(mktemp)" S1LOG="$(mktemp)" SGLOG="$(mktemp)"
trap 'kill "$COORD_PID" "$S0_PID" "$S1_PID" "$SG_PID" 2>/dev/null || true; rm -f "$CLOG" "$S0LOG" "$S1LOG" "$SGLOG"' EXIT

go build -o /tmp/smoke-twmd ./cmd/twmd
go build -o /tmp/smoke-sqlsh ./cmd/sqlsh

/tmp/smoke-twmd -shard-id 0 -addr "$SHARD0" 2>"$S0LOG" &
S0_PID=$!
/tmp/smoke-twmd -shard-id 1 -addr "$SHARD1" 2>"$S1LOG" &
S1_PID=$!
/tmp/smoke-twmd -coordinator -shards "$SHARD0,$SHARD1" -addr "$COORD" 2>"$CLOG" &
COORD_PID=$!
/tmp/smoke-twmd -addr "$SINGLE" 2>"$SGLOG" &
SG_PID=$!

wait_up() {
  for _ in $(seq 1 50); do
    if /tmp/smoke-sqlsh -connect "$1" -c "SELECT 1 + 1" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "daemon on $1 never came up" >&2
  return 1
}
wait_up "$SHARD0"; wait_up "$SHARD1"; wait_up "$COORD"; wait_up "$SINGLE"

csql() { /tmp/smoke-sqlsh -connect "$COORD" -user ci "$@"; }
ssql() { /tmp/smoke-sqlsh -connect "$SINGLE" -user ci "$@"; }

# The same statement stream goes to the coordinator and the reference
# single node; every readback below must match byte for byte.
both() {
  csql -c "$1" >/dev/null
  ssql -c "$1" >/dev/null
}

echo "== create + scatter rows across the fleet =="
both "CREATE TABLE X (i BIGINT, X1 DOUBLE, X2 DOUBLE, Y DOUBLE)"
VALS="(1, 1.0, 2.0, 5.0)"
for i in $(seq 2 24); do
  VALS="$VALS, ($i, $i.0, $((i % 7)).5, $((2 * i)).0)"
done
both "INSERT INTO X VALUES $VALS"

echo "== both shards hold a slice of the table =="
S0N="$(/tmp/smoke-sqlsh -connect "$SHARD0" -c "SELECT count(i) FROM X" | grep -oE '^[0-9]+$')"
S1N="$(/tmp/smoke-sqlsh -connect "$SHARD1" -c "SELECT count(i) FROM X" | grep -oE '^[0-9]+$')"
echo "shard0 rows: $S0N, shard1 rows: $S1N"
test "$S0N" -gt 0 && test "$S1N" -gt 0
test "$((S0N + S1N))" -eq 24

echo "== merged aggregates are byte-identical to one node =="
AGGSQL="SELECT count(i), sum(X1), min(X2), max(Y), avg(X1) FROM X"
DIST="$(csql -c "$AGGSQL")"
LOCAL="$(ssql -c "$AGGSQL")"
echo "$DIST"
test "$DIST" = "$LOCAL"

echo "== merged n,L,Q summary UDF is byte-identical to one node =="
NLQSQL="SELECT nlq_list(2, 'triang', X1, X2) FROM X"
DIST="$(csql -c "$NLQSQL")"
LOCAL="$(ssql -c "$NLQSQL")"
echo "$DIST"
test "$DIST" = "$LOCAL"
echo "$DIST" | grep -q "2;triang;24" # d=2, triangular layout, n=24

echo "== gather path: GROUP BY and ORDER BY through the coordinator =="
GRPSQL="SELECT X2, count(i) FROM X GROUP BY X2 ORDER BY X2"
DIST="$(csql -c "$GRPSQL")"
LOCAL="$(ssql -c "$GRPSQL")"
test "$DIST" = "$LOCAL"

echo "== store a model + score through the coordinator =="
both "CREATE TABLE BETA (b0 DOUBLE, b1 DOUBLE, b2 DOUBLE)"
both "INSERT INTO BETA VALUES (1.0, 1.0, 1.0)"
SCORESQL="SELECT X.i, linearregscore(X.X1, X.X2, b0, b1, b2) AS yhat FROM X CROSS JOIN BETA ORDER BY i"
DIST="$(csql -c "$SCORESQL")"
LOCAL="$(ssql -c "$SCORESQL")"
test "$DIST" = "$LOCAL"
echo "$DIST" | grep -q "^1 | 4$" # row i=1: 1 + 1.0 + 2.0

echo "== INSERT ... SELECT fans scored rows back to the owning shards =="
both "CREATE TABLE YHAT (i BIGINT, yhat DOUBLE)"
both "INSERT INTO YHAT (i, yhat) SELECT X.i, linearregscore(X.X1, X.X2, b0, b1, b2) FROM X CROSS JOIN BETA"
DIST="$(csql -c "SELECT count(i), min(yhat), max(yhat) FROM YHAT")"
LOCAL="$(ssql -c "SELECT count(i), min(yhat), max(yhat) FROM YHAT")"
test "$DIST" = "$LOCAL"

echo "== sys.shards shows the fleet up =="
SHARDS="$(csql -c "SELECT shard_id, addr, state FROM sys.shards")"
echo "$SHARDS"
test "$(echo "$SHARDS" | grep -c " | up$")" -eq 2

echo "== killing a shard yields a typed error, not a hang =="
kill -KILL "$S1_PID"
wait "$S1_PID" 2>/dev/null || true
ERR="$(csql -c "SELECT count(i) FROM X" 2>&1 || true)"
echo "$ERR"
echo "$ERR" | grep -q "shard_unavailable"
# Repeats push the shard over the mark-down threshold; then the map
# reports it down.
for _ in 1 2 3 4; do csql -c "SELECT count(i) FROM X" >/dev/null 2>&1 || true; done
SHARDS="$(csql -c "SELECT shard_id, state FROM sys.shards")"
echo "$SHARDS"
echo "$SHARDS" | grep -q "^1 | down$"
echo "$SHARDS" | grep -q "^0 | up$"

echo "== coordinator still serves its catalog and health views =="
csql -c "SELECT name FROM sys.tables" | grep -q "x"

echo "== graceful shutdown =="
kill -TERM "$COORD_PID"
wait "$COORD_PID"
grep -q '"msg":"bye"' "$CLOG"
kill -TERM "$S0_PID"
wait "$S0_PID"
grep -q '"msg":"bye"' "$S0LOG"
echo "cluster smoke: ok"
