#!/usr/bin/env bash
# server_smoke.sh — CI smoke test for the network serving layer.
#
# Starts twmd, drives a scripted session through sqlsh -connect
# (create a table, load rows, run the paper's summary UDF, store a
# model, score with the scalar UDF, inspect sys.sessions), checks that
# one statement's trace ID lines up across the client's EXPLAIN
# ANALYZE output, sys.traces/sys.spans, and the daemon's structured
# log, then shuts the daemon down with SIGTERM and requires a clean
# exit.
set -euo pipefail

ADDR="${TWMD_ADDR:-127.0.0.1:7791}"
LOG="$(mktemp)"
trap 'kill "$TWMD_PID" 2>/dev/null || true; rm -f "$LOG"' EXIT

go build -o /tmp/smoke-twmd ./cmd/twmd
go build -o /tmp/smoke-sqlsh ./cmd/sqlsh

# -slow-query 1us marks every statement slow (retained + logged with
# its trace_id); -trace-sample 1 retains healthy traces too.
/tmp/smoke-twmd -addr "$ADDR" -max-statements 8 -slow-query 1us -trace-sample 1 2>"$LOG" &
TWMD_PID=$!

# Wait for the listener.
for _ in $(seq 1 50); do
  if /tmp/smoke-sqlsh -connect "$ADDR" -c "SELECT 1 + 1" >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done

sql() { /tmp/smoke-sqlsh -connect "$ADDR" -user ci "$@"; }

echo "== create + load =="
sql -c "CREATE TABLE X (i BIGINT, X1 DOUBLE, X2 DOUBLE, Y DOUBLE)"
sql -c "INSERT INTO X VALUES (1, 1.0, 2.0, 5.0)"
sql -c "INSERT INTO X VALUES (2, 2.0, 1.0, 4.0)"
sql -c "INSERT INTO X VALUES (3, 3.0, 3.0, 9.0)"

echo "== summary UDF over the wire =="
NLQ="$(sql -c "SELECT nlq_list(2, 'triang', X1, X2) FROM X")"
echo "$NLQ"
echo "$NLQ" | grep -q "2;triang;3" # d=2, triangular layout, n=3

echo "== store a model + score with the scalar UDF =="
# One-row BETA table in the layout score.SaveLinReg writes: b0 is the
# intercept, b1..bd the coefficients. yhat = 1 + X1 + X2.
sql -c "CREATE TABLE BETA (b0 DOUBLE, b1 DOUBLE, b2 DOUBLE)"
sql -c "INSERT INTO BETA VALUES (1.0, 1.0, 1.0)"
SCORES="$(sql -c "SELECT X.i, linearregscore(X.X1, X.X2, b0, b1, b2) AS yhat FROM X CROSS JOIN BETA ORDER BY i")"
echo "$SCORES"
echo "$SCORES" | grep -q "^1 | 4$"  # row i=1: 1 + 1.0 + 2.0

echo "== sessions are visible =="
SESS="$(sql -c "SELECT user_name, current_sql FROM sys.sessions")"
echo "$SESS"
echo "$SESS" | grep -q "ci"

echo "== summary catalog is queryable over the wire =="
sql -c "SELECT table_name, state, n FROM sys.summaries"

echo "== auto-prepare: repeated SELECT switches to PREPARE/EXECUTE =="
# One repl session (each -c invocation is a fresh pool, which never
# crosses the auto-prepare threshold): repeat a SELECT past the
# threshold, then sys.prepared must list it as an explicit session
# handle (cached = false; plan-cache entries are cached = true).
PREP="$({
  for _ in 1 2 3 4 5; do echo "SELECT X1 FROM X WHERE i = 1;"; done
  echo "SELECT sql_text, cached FROM sys.prepared;"
} | /tmp/smoke-sqlsh -connect "$ADDR" -user ci)"
echo "$PREP"
echo "$PREP" | grep -q "SELECT X1 FROM X WHERE i = 1 | FALSE"

echo "== plan cache served the repeats before the switch =="
METRICS="$(sql -c "SELECT name, value FROM sys.metrics" | grep plan_cache)"
echo "$METRICS"
echo "$METRICS" | grep -q "engine_plan_cache_hits"

echo "== one trace id across client, sys.traces and the daemon log =="
EXPLAIN="$(sql -c "EXPLAIN ANALYZE SELECT X1, X2 FROM X")"
echo "$EXPLAIN"
TID="$(echo "$EXPLAIN" | sed -n 's/^-- trace: //p')"
test -n "$TID" # EXPLAIN ANALYZE must print the stamped trace id
TRACES="$(sql -c "SELECT trace_id, class FROM sys.traces")"
echo "$TRACES" | grep -q "$TID"
SPANS="$(sql -c "SELECT trace_id, name FROM sys.spans")"
echo "$SPANS" | grep "$TID" | grep -q "server" # server span joined the tree
grep -q "\"trace_id\":\"$TID\"" "$LOG"          # slow-query log line carries it

echo "== trace counters moved =="
TRACE_METRICS="$(sql -c "SELECT name, value FROM sys.metrics" | grep engine_trace)"
echo "$TRACE_METRICS"
echo "$TRACE_METRICS" | grep -q "engine_trace_retained_total"

echo "== graceful shutdown =="
kill -TERM "$TWMD_PID"
wait "$TWMD_PID"
grep -q '"msg":"bye"' "$LOG"
echo "server smoke: ok"
