package statsudf

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine/sqltypes"
	"repro/internal/matrix"
	"repro/internal/score"
	"repro/internal/sqlgen"
)

// Model persistence uses the paper's relational layouts (§3.5):
// BETA(b0..bd) for regression, MU(X1..Xd) + LAMBDA(j, X1..Xd) for
// PCA/factor models, and C/R/W tables for clustering. Stored models
// are what the scoring statements cross-join against.

// StoreRegression writes β to betaTable (replacing it).
func (d *DB) StoreRegression(betaTable string, m *LinRegModel) error {
	return score.SaveLinReg(d.eng, betaTable, m)
}

// LoadRegression reads a stored regression model.
func (d *DB) LoadRegression(betaTable string) (*LinRegModel, error) {
	return score.LoadLinReg(d.eng, betaTable)
}

// StorePCA writes µ and Λ to the two model tables (replacing them).
func (d *DB) StorePCA(muTable, lambdaTable string, m *PCAModel) error {
	return score.SavePCA(d.eng, muTable, lambdaTable, m)
}

// LoadPCA reads a stored PCA model (scoring-capable; eigenvalue
// diagnostics stay with the training run).
func (d *DB) LoadPCA(muTable, lambdaTable string) (*PCAModel, error) {
	return score.LoadPCA(d.eng, muTable, lambdaTable)
}

// StoreFactorAnalysis writes a factor model in the same MU/LAMBDA
// layout PCA uses, with the posterior projection B = (I+ΛᵀΨ⁻¹Λ)⁻¹ΛᵀΨ⁻¹
// folded into the stored loadings, so the generic fascore UDF computes
// the factor scores E[z|x] = B·(x−µ) in one scan — the paper's point
// that one scoring UDF serves both PCA and factor analysis.
func (d *DB) StoreFactorAnalysis(muTable, lambdaTable string, m *FactorModel) error {
	proj, err := factorProjection(m)
	if err != nil {
		return err
	}
	// Reuse the PCA layout: a PCAModel whose Lambda columns are Bᵀ.
	pm := &core.PCAModel{D: m.D, K: m.K, Lambda: proj, Mu: m.Mu}
	return score.SavePCA(d.eng, muTable, lambdaTable, pm)
}

// factorProjection returns the d×k matrix whose column j holds the
// coefficients of factor j's posterior mean.
func factorProjection(m *FactorModel) (*matrix.Dense, error) {
	psiInvLambda := matrix.New(m.D, m.K)
	for i := 0; i < m.D; i++ {
		for j := 0; j < m.K; j++ {
			psiInvLambda.Set(i, j, m.Lambda.At(i, j)/m.Psi[i])
		}
	}
	g := matrix.Identity(m.K).Plus(m.Lambda.Transpose().Mul(psiInvLambda))
	gInv, err := g.Inverse()
	if err != nil {
		return nil, err
	}
	b := gInv.Mul(psiInvLambda.Transpose()) // k×d
	return b.Transpose(), nil               // d×k, column j = factor j
}

// ScoreFactorAnalysis reduces xTable to k factor scores per row in one
// scan via fascore against the stored MU/LAMBDA tables.
func (d *DB) ScoreFactorAnalysis(xTable, idCol string, columns []string, muTable, lambdaTable, dstTable string, k int) (int64, error) {
	return d.ScorePCA(xTable, idCol, columns, muTable, lambdaTable, dstTable, k)
}

// StoreKMeans writes C, R and W tables (replacing them).
func (d *DB) StoreKMeans(cTable, rTable, wTable string, m *KMeansModel) error {
	return score.SaveKMeans(d.eng, cTable, rTable, wTable, m)
}

// LoadKMeans reads a stored clustering model.
func (d *DB) LoadKMeans(cTable, rTable, wTable string) (*KMeansModel, error) {
	return score.LoadKMeans(d.eng, cTable, rTable, wTable)
}

// replaceOutputTable creates dst with an id column plus the named
// DOUBLE columns, dropping any previous version.
func (d *DB) replaceOutputTable(dst, idCol string, valueCols ...string) error {
	if d.eng.HasTable(dst) {
		if err := d.eng.DropTable(dst); err != nil {
			return err
		}
	}
	cols := []sqltypes.Column{{Name: idCol, Type: sqltypes.TypeBigInt}}
	for _, c := range valueCols {
		cols = append(cols, sqltypes.Column{Name: c, Type: sqltypes.TypeDouble})
	}
	schema, err := sqltypes.NewSchema(cols...)
	if err != nil {
		return err
	}
	_, err = d.eng.CreateTable(dst, schema)
	return err
}

// ScoreRegression scores xTable against the stored BETA model in a
// single scan (X CROSS JOIN BETA + one linearregscore call per row),
// writing (id, yhat) into dstTable. Returns the rows scored.
func (d *DB) ScoreRegression(xTable, idCol string, columns []string, betaTable, dstTable string) (int64, error) {
	if err := d.replaceOutputTable(dstTable, idCol, "yhat"); err != nil {
		return 0, err
	}
	sql := fmt.Sprintf("INSERT INTO %s %s", dstTable,
		sqlgen.RegScoreUDF(xTable, betaTable, idCol, columns))
	res, err := d.eng.Exec(sql)
	if err != nil {
		return 0, err
	}
	return res.Affected, nil
}

// ScorePCA reduces xTable to k coordinates per row in a single scan
// (fascore called k times against the MU/LAMBDA tables), writing
// (id, p1..pk) into dstTable.
func (d *DB) ScorePCA(xTable, idCol string, columns []string, muTable, lambdaTable, dstTable string, k int) (int64, error) {
	names := make([]string, k)
	for j := range names {
		names[j] = fmt.Sprintf("p%d", j+1)
	}
	if err := d.replaceOutputTable(dstTable, idCol, names...); err != nil {
		return 0, err
	}
	sql := fmt.Sprintf("INSERT INTO %s %s", dstTable,
		sqlgen.PCAScoreUDF(xTable, muTable, lambdaTable, idCol, columns, k))
	res, err := d.eng.Exec(sql)
	if err != nil {
		return 0, err
	}
	return res.Affected, nil
}

// ScoreKMeans assigns each row of xTable its nearest centroid (k
// kdistance calls + clusterscore, one scan), writing (id, j) into
// dstTable with j the 1-based cluster subscript.
func (d *DB) ScoreKMeans(xTable, idCol string, columns []string, cTable, dstTable string, k int) (int64, error) {
	if err := d.replaceOutputTable(dstTable, idCol, "j"); err != nil {
		return 0, err
	}
	sql := fmt.Sprintf("INSERT INTO %s %s", dstTable,
		sqlgen.ClusterScoreUDF(xTable, cTable, idCol, columns, k))
	res, err := d.eng.Exec(sql)
	if err != nil {
		return 0, err
	}
	return res.Affected, nil
}

// KMeansInEngine runs K-means entirely through the engine: every
// iteration is one table scan that assigns each row to its nearest
// centroid with the scoring UDFs (clusterscore over k kdistance calls)
// and simultaneously accumulates per-cluster summary matrices by
// grouping on that assignment — the paper's GROUP BY formulation of
// clustering. Centroids live in the cTable between iterations, so the
// whole loop is SQL in, model tables out.
func (d *DB) KMeansInEngine(table string, columns []string, k, iters int, seed int64, cTable, rTable, wTable string) (*KMeansModel, error) {
	if k < 1 || iters < 1 {
		return nil, fmt.Errorf("statsudf: k=%d iters=%d out of range", k, iters)
	}
	cents, err := d.seedCentroids(table, columns, k, seed)
	if err != nil {
		return nil, err
	}
	model := &core.KMeansModel{D: len(columns), K: k, C: cents}
	for iter := 0; iter < iters; iter++ {
		// Publish current centroids for the scoring cross joins.
		if err := score.SaveKMeans(d.eng, cTable, rTable, wTable, padKMeans(model)); err != nil {
			return nil, err
		}
		sql := sqlgen.KMeansIterationQuery(table, cTable, columns, k)
		res, err := d.eng.Exec(sql)
		if err != nil {
			return nil, err
		}
		sums := make([]*core.NLQ, k)
		for _, row := range res.Rows {
			j := int(row[0].Int())
			if j < 1 || j > k || row[1].IsNull() {
				return nil, fmt.Errorf("statsudf: iteration returned cluster %d out of 1..%d", j, k)
			}
			s, err := core.Unpack(row[1].Str())
			if err != nil {
				return nil, err
			}
			sums[j-1] = s
		}
		next, err := core.FinalizeKMeans(model.C, sums)
		if err != nil {
			return nil, err
		}
		next.Iters = iter + 1
		model = next
	}
	if err := score.SaveKMeans(d.eng, cTable, rTable, wTable, model); err != nil {
		return nil, err
	}
	return model, nil
}

// padKMeans fills R/W for a model that only has centroids yet, so the
// intermediate SaveKMeans calls satisfy the table layouts.
func padKMeans(m *core.KMeansModel) *core.KMeansModel {
	out := *m
	if out.R == nil {
		out.R = make([][]float64, m.K)
		for j := range out.R {
			out.R[j] = make([]float64, m.D)
		}
	}
	if out.W == nil {
		out.W = make([]float64, m.K)
	}
	return &out
}

// Predict applies a regression model in the client to one point; a
// convenience mirror of the in-engine scoring path.
func Predict(m *LinRegModel, x []float64) (float64, error) { return m.Predict(x) }

// BuildCorrelationFrom builds a correlation model from summaries the
// caller already has (e.g. a GroupedSummary entry).
func BuildCorrelationFrom(s *NLQ) (*CorrelationModel, error) { return core.BuildCorrelation(s) }

// BuildLinRegFrom solves the regression normal equations from an
// augmented summary (last dimension is Y).
func BuildLinRegFrom(s *NLQ) (*LinRegModel, error) { return core.BuildLinReg(s) }

// BuildPCAFrom computes the top-k components from summaries.
func BuildPCAFrom(s *NLQ, k int, basis PCABasis) (*PCAModel, error) {
	return core.BuildPCA(s, k, basis)
}
