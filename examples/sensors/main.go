// Sensor-array dimensionality reduction with PCA — including the
// paper's high-dimensional blocked computation (Table 6).
//
// A simulated plant has 96 sensors driven by only 4 latent physical
// processes plus noise. 96 dimensions exceed the 64-dimension limit a
// single aggregate-UDF heap segment allows (the 64 KB constraint), so
// the summary matrices are computed with MULTIPLE nlq_block UDF calls
// in one synchronized table scan, assembled into the full Q, and PCA
// then recovers the latent structure: ~4 components capture almost
// all variance. Finally the 96-wide readings are scored down to 4
// coordinates per row, in one scan, with the fascore scalar UDF.
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"math/rand"

	statsudf "repro"
)

const (
	nReadings = 20000
	nSensors  = 96 // > statsudf.MaxD: forces the blocked path
	nLatent   = 4
)

func main() {
	if nSensors <= statsudf.MaxD {
		log.Fatal("example misconfigured: nSensors must exceed MaxD to exercise the blocked path")
	}
	db, err := statsudf.Open(statsudf.Options{Partitions: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	loadReadings(db)

	// One synchronized scan computes all Q blocks (the blocked UDF
	// calls are generated and reassembled automatically for d > MaxD).
	cols := statsudf.DimColumns(nSensors)
	sum, err := db.Summary("SENSORS", cols, statsudf.SummaryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blocked summary over d=%d sensors: n=%.0f (one synchronized scan)\n", sum.D, sum.N)

	pca, err := statsudf.BuildPCAFrom(sum, 8, statsudf.CorrelationBasis)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("eigenvalue spectrum (top 8):")
	var cum float64
	for j, ev := range pca.Eigen {
		cum += ev
		fmt.Printf("  λ%-2d = %7.2f   cumulative %5.1f%%\n", j+1, ev, 100*cum/pca.Total)
	}
	fmt.Printf("→ %d latent processes drive the plant; 4 components capture %.1f%%\n",
		nLatent, 100*cumulativeShare(pca.Eigen[:nLatent], pca.Total))

	// Reduce to 4 coordinates and store + score in-engine.
	pca4, err := statsudf.BuildPCAFrom(sum, nLatent, statsudf.CorrelationBasis)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.StorePCA("MU", "LAMBDA", pca4); err != nil {
		log.Fatal(err)
	}
	scored, err := db.ScorePCA("SENSORS", "i", cols, "MU", "LAMBDA", "REDUCED", nLatent)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduced %d readings from %d to %d dimensions in one scan\n", scored, nSensors, nLatent)

	res, err := db.Exec("SELECT min(p1), max(p1), avg(p1) FROM REDUCED")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first principal coordinate: min=%s max=%s avg=%s\n",
		res.Rows[0][0], res.Rows[0][1], res.Rows[0][2])
}

func cumulativeShare(eigen []float64, total float64) float64 {
	var s float64
	for _, v := range eigen {
		s += v
	}
	return s / total
}

// loadReadings simulates the sensor array: each sensor is a random
// mixture of nLatent hidden signals plus measurement noise.
func loadReadings(db *statsudf.DB) {
	var cols []string
	cols = append(cols, "i BIGINT")
	for _, c := range statsudf.DimColumns(nSensors) {
		cols = append(cols, c+" DOUBLE")
	}
	create := "CREATE TABLE SENSORS (" + join(cols, ", ") + ")"
	if _, err := db.Exec(create); err != nil {
		log.Fatal(err)
	}
	tab, err := db.Engine().Table("SENSORS")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2024))
	// Random loading of each sensor onto the latent processes.
	loadings := make([][]float64, nSensors)
	for s := range loadings {
		loadings[s] = make([]float64, nLatent)
		for l := range loadings[s] {
			loadings[s][l] = rng.NormFloat64()
		}
	}
	bl, err := tab.NewBulkLoader()
	if err != nil {
		log.Fatal(err)
	}
	row := make(statsudf.Row, nSensors+1)
	latent := make([]float64, nLatent)
	for i := 0; i < nReadings; i++ {
		for l := range latent {
			latent[l] = rng.NormFloat64() * 10
		}
		row[0] = statsudf.NewBigInt(int64(i))
		for s := 0; s < nSensors; s++ {
			v := 0.0
			for l := 0; l < nLatent; l++ {
				v += loadings[s][l] * latent[l]
			}
			row[s+1] = statsudf.NewDouble(v + rng.NormFloat64()*0.5)
		}
		if err := bl.Add(row); err != nil {
			log.Fatal(err)
		}
	}
	if err := bl.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d readings from %d sensors (%d latent processes + noise)\n",
		nReadings, nSensors, nLatent)
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
