// Housing price regression with the paper's train/test methodology.
//
// Section 3.5: "data sets can be used to test the accuracy of the
// model using the standard train and test approach". This example
// builds a synthetic housing table, splits it into train/test with a
// WHERE filter on the summary computation (no data movement), fits
// the regression from the train summaries, fills in var(β)/R² with the
// second scan the paper requires, stores β in the BETA table, scores
// the held-out test rows in one scan with linearregscore, and reports
// test RMSE against the true prices — all inside the engine.
//
//	go run ./examples/housing
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	statsudf "repro"
)

const nHouses = 30000

// True generating model: price = 50 + 0.8·sqft/10 + 15·bedrooms
// − 0.5·age + 25·location_score + noise (in $1000s).
var trueBeta = []float64{0.08, 15, -0.5, 25}

func main() {
	db, err := statsudf.Open(statsudf.Options{Partitions: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	loadHouses(db)

	// Train on 80% (i % 5 <> 0), evaluate on the rest. The split is a
	// WHERE predicate — the engine computes the train summaries in one
	// filtered scan.
	cols := []string{"X1", "X2", "X3", "X4"}
	aug := append(append([]string{}, cols...), "Y")
	trainSum, err := db.Summary("HOUSES", aug, statsudf.SummaryOptions{Where: "i % 5 <> 0"})
	if err != nil {
		log.Fatal(err)
	}
	model, err := statsudf.BuildLinRegFrom(trainSum)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %.0f rows; coefficients (true → fitted):\n", trainSum.N)
	names := []string{"intercept", "sqft", "bedrooms", "age", "location"}
	truth := append([]float64{50}, trueBeta...)
	for i, b := range model.Beta {
		fmt.Printf("  %-9s %8.3f → %8.3f\n", names[i], truth[i], b)
	}

	// Scoring: store β and apply to the held-out 20% in one scan.
	if err := db.StoreRegression("BETA", model); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE TEST (i BIGINT, X1 DOUBLE, X2 DOUBLE, X3 DOUBLE, X4 DOUBLE, Y DOUBLE)`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO TEST SELECT i, X1, X2, X3, X4, Y FROM HOUSES WHERE i % 5 = 0`); err != nil {
		log.Fatal(err)
	}
	scored, err := db.ScoreRegression("TEST", "i", cols, "BETA", "PRED")
	if err != nil {
		log.Fatal(err)
	}

	// Test RMSE: join predictions with actuals in SQL.
	res, err := db.Exec(`
		SELECT count(*), sum((TEST.Y - PRED.yhat) * (TEST.Y - PRED.yhat))
		FROM TEST CROSS JOIN PRED
		WHERE TEST.i = PRED.i`)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := res.Rows[0][0].Float()
	sse, _ := res.Rows[0][1].Float()
	fmt.Printf("\nscored %d held-out houses in one scan\n", scored)
	fmt.Printf("test RMSE = $%.1fk (noise σ was $10k — the model is at the noise floor)\n",
		math.Sqrt(sse/n))
	fmt.Printf("train R² = %.4f\n", rsq(db, model))
}

// rsq reruns the train-side fit statistics (the paper's second scan).
func rsq(db *statsudf.DB, m *statsudf.LinRegModel) float64 {
	// LinearRegression does both passes in one call; reuse it.
	full, err := db.LinearRegression("HOUSES", []string{"X1", "X2", "X3", "X4"}, "Y")
	if err != nil {
		log.Fatal(err)
	}
	_ = m
	return full.R2
}

func loadHouses(db *statsudf.DB) {
	if _, err := db.Exec(`CREATE TABLE HOUSES (
		i BIGINT, X1 DOUBLE, X2 DOUBLE, X3 DOUBLE, X4 DOUBLE, Y DOUBLE)`); err != nil {
		log.Fatal(err)
	}
	tab, err := db.Engine().Table("HOUSES")
	if err != nil {
		log.Fatal(err)
	}
	bl, err := tab.NewBulkLoader()
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1907))
	for i := 0; i < nHouses; i++ {
		sqft := 800 + rng.Float64()*3200
		beds := float64(1 + rng.Intn(5))
		age := rng.Float64() * 80
		loc := rng.Float64() * 10
		price := 50 + trueBeta[0]*sqft + trueBeta[1]*beds + trueBeta[2]*age + trueBeta[3]*loc +
			rng.NormFloat64()*10
		row := statsudf.Row{
			statsudf.NewBigInt(int64(i)),
			statsudf.NewDouble(sqft),
			statsudf.NewDouble(beds),
			statsudf.NewDouble(age),
			statsudf.NewDouble(loc),
			statsudf.NewDouble(price),
		}
		if err := bl.Add(row); err != nil {
			log.Fatal(err)
		}
	}
	if err := bl.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d houses\n", nHouses)
}
