// Churn segmentation: the paper's motivating database scenario.
//
// Section 3.6 describes how the analysis table X is derived inside the
// DBMS: joins pull customer properties, CASE expressions turn
// categorical attributes into binary flags, and aggregations build
// behavioural metrics. This example does exactly that — it builds raw
// CUSTOMERS and CALLS tables, derives X(i, X1..X5) with generated SQL
// (flags + aggregates via INSERT..SELECT and GROUP BY), clusters the
// customers with K-means built on per-cluster summary matrices, stores
// the model in the C/R/W tables, scores every customer to a segment in
// one scan, and profiles the segments with plain SQL.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"math/rand"

	statsudf "repro"
)

const nCustomers = 8000

func main() {
	db, err := statsudf.Open(statsudf.Options{Partitions: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	buildRawTables(db)
	deriveX(db)

	// Cluster into 3 segments on the derived dimensions.
	cols := statsudf.DimColumns(5)
	km, err := db.KMeans("X", cols, 3, statsudf.KMeansOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-means converged in %d iterations (SSE %.0f)\n", km.Iters, km.SSE)
	if err := db.StoreKMeans("C", "R", "W", km); err != nil {
		log.Fatal(err)
	}

	// Score every customer to its nearest centroid — one table scan.
	scored, err := db.ScoreKMeans("X", "i", cols, "C", "SEGMENTS", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assigned %d customers to segments in one scan\n", scored)

	// Profile the segments back in SQL (join scores with raw data).
	res, err := db.Exec(`
		SELECT SEGMENTS.j,
		       count(*) AS members,
		       avg(X.X1) AS avg_spend,
		       avg(X.X2) AS avg_tenure_months,
		       avg(X.X4) AS complaint_rate,
		       avg(X.X5) AS churn_rate
		FROM X CROSS JOIN SEGMENTS
		WHERE X.i = SEGMENTS.i
		GROUP BY SEGMENTS.j
		ORDER BY churn_rate DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsegment | members | avg spend | tenure | complaints | churn rate")
	for _, r := range res.Rows {
		fmt.Printf("%7s | %7s | %9.2f | %6.1f | %10.3f | %.3f\n",
			r[0], r[1], f(r[2]), f(r[3]), f(r[4]), f(r[5]))
	}
	fmt.Println("\nhighest-churn segment first: that is the retention campaign target.")
}

func f(v statsudf.Value) float64 {
	x, _ := v.Float()
	return x
}

// buildRawTables creates and fills the operational tables.
func buildRawTables(db *statsudf.DB) {
	mustExec(db, `CREATE TABLE CUSTOMERS (
		cust_id BIGINT, state VARCHAR, plan_type VARCHAR,
		tenure_months DOUBLE, monthly_spend DOUBLE, churned BIGINT)`)
	mustExec(db, `CREATE TABLE CALLS (cust_id BIGINT, kind VARCHAR, minutes DOUBLE)`)

	rng := rand.New(rand.NewSource(99))
	states := []string{"TX", "CA", "NY"}
	plans := []string{"basic", "plus"}
	custTab, err := db.Engine().Table("CUSTOMERS")
	if err != nil {
		log.Fatal(err)
	}
	callTab, err := db.Engine().Table("CALLS")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := custTab.NewBulkLoader()
	if err != nil {
		log.Fatal(err)
	}
	type call struct {
		id      int64
		kind    string
		minutes float64
	}
	var calls []call
	for i := 0; i < nCustomers; i++ {
		// Three latent behaviours: loyal big spenders, mid, flighty.
		segment := rng.Intn(3)
		tenure := []float64{60, 24, 5}[segment] + rng.NormFloat64()*4
		spend := []float64{120, 60, 25}[segment] + rng.NormFloat64()*8
		churnP := []float64{0.03, 0.15, 0.5}[segment]
		churned := int64(0)
		if rng.Float64() < churnP {
			churned = 1
		}
		row := rowOf(int64(i), states[rng.Intn(3)], plans[rng.Intn(2)], tenure, spend, churned)
		if err := cl.Add(row); err != nil {
			log.Fatal(err)
		}
		// Support calls: flighty customers complain more.
		nCalls := segment + rng.Intn(3)
		for c := 0; c < nCalls; c++ {
			kind := "info"
			if rng.Float64() < []float64{0.1, 0.3, 0.7}[segment] {
				kind = "complaint"
			}
			calls = append(calls, call{int64(i), kind, 2 + rng.Float64()*20})
		}
	}
	if err := cl.Close(); err != nil {
		log.Fatal(err)
	}
	bl, err := callTab.NewBulkLoader()
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range calls {
		if err := bl.Add(rowOf(c.id, c.kind, c.minutes)); err != nil {
			log.Fatal(err)
		}
	}
	if err := bl.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d customers and %d support calls\n", nCustomers, len(calls))
}

// deriveX materializes the analysis table with generated SQL: binary
// flags via CASE (plan type), metrics via GROUP BY aggregation
// (complaint counts), and a left-outer-join-like union via COALESCE on
// the aggregate (customers without calls keep 0) — §3.6's recipe.
func deriveX(db *statsudf.DB) {
	// Aggregate call metrics per customer first (group-by before join,
	// the paper's optimization (2)).
	mustExec(db, `CREATE TABLE CALLAGG (cust_id BIGINT, complaints DOUBLE, total_minutes DOUBLE)`)
	mustExec(db, `INSERT INTO CALLAGG
		SELECT cust_id,
		       sum(CASE WHEN kind = 'complaint' THEN 1.0 ELSE 0.0 END),
		       sum(minutes)
		FROM CALLS GROUP BY cust_id`)

	mustExec(db, `CREATE TABLE X (i BIGINT, X1 DOUBLE, X2 DOUBLE, X3 DOUBLE, X4 DOUBLE, X5 DOUBLE)`)
	// X1 spend, X2 tenure, X3 plan flag, X4 complaints, X5 churn flag.
	mustExec(db, `INSERT INTO X
		SELECT CUSTOMERS.cust_id,
		       monthly_spend,
		       tenure_months,
		       CASE WHEN plan_type = 'plus' THEN 1.0 ELSE 0.0 END,
		       coalesce(complaints, 0.0),
		       CAST(churned AS DOUBLE)
		FROM CUSTOMERS CROSS JOIN CALLAGG
		WHERE CUSTOMERS.cust_id = CALLAGG.cust_id`)
	res, err := db.Exec("SELECT count(*) FROM X")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived analysis table X with %s rows (flags + aggregates, all in SQL)\n", res.Rows[0][0])
}

func mustExec(db *statsudf.DB, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatalf("%v\nSQL: %s", err, sql)
	}
}

func rowOf(vals ...any) statsudf.Row {
	row := make(statsudf.Row, len(vals))
	for i, v := range vals {
		switch v := v.(type) {
		case int64:
			row[i] = statsudf.NewBigInt(v)
		case float64:
			row[i] = statsudf.NewDouble(v)
		case string:
			row[i] = statsudf.NewVarChar(v)
		default:
			log.Fatalf("unsupported value %T", v)
		}
	}
	return row
}
