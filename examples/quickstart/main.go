// Quickstart: the paper's whole workflow in one file.
//
// It generates the SIGMOD'07 synthetic workload (a mixture of normals
// with noise), computes the summary matrices n, L, Q in ONE table scan
// three ways (aggregate UDF with list passing, with string packing,
// and the long plain-SQL query), verifies they agree, then builds all
// four statistical models from those summaries without touching the
// data again — correlation, linear regression, PCA and K-means — and
// finally scores the table with the stored regression model in one
// more scan.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	statsudf "repro"
)

func main() {
	db, err := statsudf.Open(statsudf.Options{Partitions: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const (
		n = 50000
		d = 8
	)
	fmt.Printf("generating X(i, X1..X%d) with n=%d (mixture of 16 normals + 15%% noise)\n", d, n)
	if err := db.Generate("X", statsudf.MixtureConfig{N: n, D: d, Seed: 7}); err != nil {
		log.Fatal(err)
	}

	// --- One scan, three ways -----------------------------------------
	cols := statsudf.DimColumns(d)
	udfSum, err := db.Summary("X", cols, statsudf.SummaryOptions{Method: statsudf.ViaUDF})
	if err != nil {
		log.Fatal(err)
	}
	strSum, err := db.Summary("X", cols, statsudf.SummaryOptions{Method: statsudf.ViaUDFString})
	if err != nil {
		log.Fatal(err)
	}
	sqlSum, err := db.Summary("X", cols, statsudf.SummaryOptions{Method: statsudf.ViaSQL})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("summaries agree: n=%.0f, L1=%.2f (udf) %.2f (udf-string) %.2f (sql)\n",
		udfSum.N, udfSum.L[0], strSum.L[0], sqlSum.L[0])
	if math.Abs(udfSum.L[0]-sqlSum.L[0]) > 1e-6 {
		log.Fatal("summary mismatch between UDF and SQL paths")
	}

	// --- Models from the summaries only -------------------------------
	corr, err := statsudf.BuildCorrelationFrom(udfSum)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strongest correlations:")
	for _, p := range corr.StrongestPairs(3) {
		fmt.Println("  ", p)
	}

	pca, err := statsudf.BuildPCAFrom(udfSum, 3, statsudf.CorrelationBasis)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PCA: top 3 components explain %.1f%% of variance\n", 100*pca.ExplainedVariance())

	// Regression needs a Y; plant one and refit from a fresh scan.
	beta := []float64{3, -1, 0.5, 0, 2, 0, -0.5, 1}
	if err := db.GenerateRegression("XY", statsudf.MixtureConfig{N: n, D: d, Seed: 7}, 20, beta, 2); err != nil {
		log.Fatal(err)
	}
	reg, err := db.LinearRegression("XY", cols, "Y")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("regression recovered β₀=%.2f (true 20.00), R²=%.4f\n", reg.Beta[0], reg.R2)

	km, err := db.KMeans("X", cols, 4, statsudf.KMeansOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-means: %d iterations, SSE=%.0f, weights=%.3v\n", km.Iters, km.SSE, km.W)

	// --- Score with the stored model in one scan ----------------------
	if err := db.StoreRegression("BETA", reg); err != nil {
		log.Fatal(err)
	}
	scored, err := db.ScoreRegression("XY", "i", cols, "BETA", "SCORES")
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.Exec("SELECT count(*), avg(yhat) FROM SCORES")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scored %d rows in one scan; avg(ŷ) = %s\n", scored, res.Rows[0][1])
}
