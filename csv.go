package statsudf

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/engine/sqltypes"
)

// ImportCSV loads comma-separated data into a new table (replacing any
// existing one). When header is true the first record supplies column
// names; otherwise columns are named c1..cn. Column types are inferred
// from the first data record: integers become BIGINT, other numbers
// DOUBLE, everything else VARCHAR. Empty fields load as NULL.
//
// The import is all-or-nothing: on any error the new table is dropped,
// so a malformed row never leaves a partially loaded table (note that
// a pre-existing table of the same name is replaced up front and is
// not restored on failure).
func (d *DB) ImportCSV(table string, r io.Reader, header bool) (int64, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true

	var names []string
	first, err := cr.Read()
	if err == io.EOF {
		return 0, fmt.Errorf("statsudf: empty CSV input")
	}
	if err != nil {
		return 0, fmt.Errorf("statsudf: %w", err)
	}
	if header {
		names = append([]string(nil), first...)
		first, err = cr.Read()
		if err == io.EOF {
			return 0, fmt.Errorf("statsudf: CSV has a header but no data rows")
		}
		if err != nil {
			return 0, fmt.Errorf("statsudf: %w", err)
		}
	} else {
		names = make([]string, len(first))
		for i := range names {
			names[i] = fmt.Sprintf("c%d", i+1)
		}
	}
	firstData := append([]string(nil), first...)

	cols := make([]sqltypes.Column, len(names))
	for i, name := range names {
		cols[i] = sqltypes.Column{Name: strings.TrimSpace(name), Type: inferType(firstData[i])}
	}
	schema, err := sqltypes.NewSchema(cols...)
	if err != nil {
		return 0, err
	}
	if d.eng.HasTable(table) {
		if err := d.eng.DropTable(table); err != nil {
			return 0, err
		}
	}
	tab, err := d.eng.CreateTable(table, schema)
	if err != nil {
		return 0, err
	}
	bl, err := tab.NewBulkLoader()
	if err != nil {
		return 0, err
	}
	// A failed import must not leave a half-loaded table behind: close
	// the loader (releasing the table lock), then drop the table.
	fail := func(err error) (int64, error) {
		bl.Close()
		_ = d.eng.DropTable(table)
		return 0, err
	}
	var count int64
	row := make(sqltypes.Row, len(cols))
	add := func(rec []string) error {
		if len(rec) != len(cols) {
			return fmt.Errorf("statsudf: CSV row %d has %d fields, want %d", count+1, len(rec), len(cols))
		}
		for i, f := range rec {
			v, err := parseField(f, cols[i].Type)
			if err != nil {
				return fmt.Errorf("statsudf: CSV row %d column %q: %w", count+1, cols[i].Name, err)
			}
			row[i] = v
		}
		count++
		return bl.Add(row)
	}
	if err := add(firstData); err != nil {
		return fail(err)
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fail(fmt.Errorf("statsudf: %w", err))
		}
		if err := add(rec); err != nil {
			return fail(err)
		}
	}
	if err := bl.Close(); err != nil {
		_ = d.eng.DropTable(table)
		return 0, err
	}
	return count, nil
}

func inferType(field string) sqltypes.Type {
	f := strings.TrimSpace(field)
	if f == "" {
		return sqltypes.TypeDouble // NULL-ish: assume numeric
	}
	if _, err := strconv.ParseInt(f, 10, 64); err == nil {
		return sqltypes.TypeBigInt
	}
	if _, err := strconv.ParseFloat(f, 64); err == nil {
		return sqltypes.TypeDouble
	}
	return sqltypes.TypeVarChar
}

func parseField(field string, t sqltypes.Type) (Value, error) {
	f := strings.TrimSpace(field)
	if f == "" {
		return sqltypes.Null, nil
	}
	switch t {
	case sqltypes.TypeBigInt:
		i, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			// The column was inferred BIGINT from the first record;
			// silently truncating later reals would corrupt data.
			return sqltypes.Null, fmt.Errorf("column inferred as BIGINT but found %q (re-import without integer first row, or clean the data)", f)
		}
		return sqltypes.NewBigInt(i), nil
	case sqltypes.TypeDouble:
		fl, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return sqltypes.Null, fmt.Errorf("bad number %q", f)
		}
		return sqltypes.NewDouble(fl), nil
	default:
		return sqltypes.NewVarChar(field), nil
	}
}
