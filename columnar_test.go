package statsudf

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// openModePair opens two databases over identical options except for
// the columnar flag; disk layouts get separate directories.
func openModePair(t *testing.T, disk bool, parts int) (row, col *DB) {
	t.Helper()
	mk := func(columnar bool) *DB {
		opts := Options{Partitions: parts, Columnar: columnar}
		if disk {
			opts.Dir = t.TempDir()
		}
		d, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		return d
	}
	return mk(false), mk(true)
}

// execBothModes applies the same statement to both databases so their
// row logs are identical.
func execBothModes(t *testing.T, row, col *DB, sql string) {
	t.Helper()
	if _, err := row.Exec(sql); err != nil {
		t.Fatalf("row db %q: %v", sql, err)
	}
	if _, err := col.Exec(sql); err != nil {
		t.Fatalf("columnar db %q: %v", sql, err)
	}
}

// loadNullMixture creates table name(x1..xD DOUBLE) in both databases
// with the given fraction of NULL cells, identically seeded.
func loadNullMixture(t *testing.T, row, col *DB, name string, n, d int, nullFrac float64, seed int64) {
	t.Helper()
	cols := make([]string, d)
	for i := range cols {
		cols[i] = DimColumns(d)[i] + " DOUBLE"
	}
	execBothModes(t, row, col, "CREATE TABLE "+name+" ("+strings.Join(cols, ", ")+")")
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.Reset()
		b.WriteString("INSERT INTO " + name + " VALUES (")
		for j := 0; j < d; j++ {
			if j > 0 {
				b.WriteString(", ")
			}
			if rng.Float64() < nullFrac {
				b.WriteString("NULL")
			} else {
				b.WriteString(ftoa(rng.NormFloat64()*10 + float64(j)))
			}
		}
		b.WriteString(")")
		execBothModes(t, row, col, b.String())
	}
}

func bitsEqual(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func requireNLQBitIdentical(t *testing.T, what string, row, col *NLQ) {
	t.Helper()
	if row.D != col.D || !bitsEqual(row.N, col.N) {
		t.Fatalf("%s: n/d differ: d=%d n=%v vs d=%d n=%v", what, row.D, row.N, col.D, col.N)
	}
	for i := range row.L {
		if !bitsEqual(row.L[i], col.L[i]) || !bitsEqual(row.Min[i], col.Min[i]) || !bitsEqual(row.Max[i], col.Max[i]) {
			t.Fatalf("%s: L/Min/Max[%d] differ: %v/%v/%v vs %v/%v/%v",
				what, i, row.L[i], row.Min[i], row.Max[i], col.L[i], col.Min[i], col.Max[i])
		}
	}
	for i := range row.Q {
		if !bitsEqual(row.Q[i], col.Q[i]) {
			t.Fatalf("%s: Q[%d] = %v vs %v", what, i, row.Q[i], col.Q[i])
		}
	}
}

func requireCloseSlice(t *testing.T, what string, a, b []float64, tol float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			t.Fatalf("%s[%d]: %v vs %v", what, i, a[i], b[i])
		}
	}
}

// The columnar flag must be invisible in every result: cached
// summaries bit-for-bit, and the model builders that consume them
// within 1e-9 — across layouts, NULL densities and partition counts.
func TestColumnarModesAgreeRandomized(t *testing.T) {
	const tol = 1e-9
	cases := []struct {
		name     string
		disk     bool
		parts    int
		nullFrac float64
		seed     int64
	}{
		{"mem_p1_dense", false, 1, 0, 101},
		{"mem_p4_sparse", false, 4, 0.3, 202},
		{"disk_p3_mixed", true, 3, 0.1, 303},
		{"disk_p5_very_sparse", true, 5, 0.6, 404},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rowDB, colDB := openModePair(t, tc.disk, tc.parts)
			loadNullMixture(t, rowDB, colDB, "p", 240, 4, tc.nullFrac, tc.seed)

			// Cached summaries rebuild through ComputeTableNLQ — the row
			// path on one database, block kernels on the other — and the
			// merged matrices must be byte-identical.
			for _, mt := range []MatrixType{Diagonal, Triangular, Full} {
				opts := SummaryOptions{Method: ViaCache, Matrix: mt}
				rs, err := rowDB.Summary("p", DimColumns(4), opts)
				if err != nil {
					t.Fatal(err)
				}
				cs, err := colDB.Summary("p", DimColumns(4), opts)
				if err != nil {
					t.Fatal(err)
				}
				requireNLQBitIdentical(t, "p/"+mt.String(), rs, cs)
			}

			// A clean regression workload for the model builders, seeded
			// identically in both databases.
			cfg := MixtureConfig{N: 300, D: 3, K: 2, Seed: tc.seed + 7}
			beta := []float64{2, -1, 0.5}
			if err := rowDB.GenerateRegression("m", cfg, 4, beta, 1.5); err != nil {
				t.Fatal(err)
			}
			if err := colDB.GenerateRegression("m", cfg, 4, beta, 1.5); err != nil {
				t.Fatal(err)
			}
			dims := DimColumns(3)

			rc, err := rowDB.Correlation("m", dims)
			if err != nil {
				t.Fatal(err)
			}
			cc, err := colDB.Correlation("m", dims)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < rc.D; i++ {
				for j := 0; j < rc.D; j++ {
					if math.Abs(rc.At(i, j)-cc.At(i, j)) > tol {
						t.Fatalf("rho[%d,%d]: %v vs %v", i, j, rc.At(i, j), cc.At(i, j))
					}
				}
			}

			rl, err := rowDB.LinearRegression("m", dims, "Y")
			if err != nil {
				t.Fatal(err)
			}
			cl, err := colDB.LinearRegression("m", dims, "Y")
			if err != nil {
				t.Fatal(err)
			}
			requireCloseSlice(t, "beta", rl.Beta, cl.Beta, tol)

			rp, err := rowDB.PCA("m", dims, 2, CorrelationBasis)
			if err != nil {
				t.Fatal(err)
			}
			cp, err := colDB.PCA("m", dims, 2, CorrelationBasis)
			if err != nil {
				t.Fatal(err)
			}
			requireCloseSlice(t, "eigen", rp.Eigen, cp.Eigen, tol)

			rk, err := rowDB.KMeans("m", dims, 2, KMeansOptions{Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			ck, err := colDB.KMeans("m", dims, 2, KMeansOptions{Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(rk.SSE-ck.SSE) > tol {
				t.Fatalf("kmeans SSE: %v vs %v", rk.SSE, ck.SSE)
			}
			for k := range rk.C {
				requireCloseSlice(t, "centroid", rk.C[k], ck.C[k], tol)
			}
		})
	}
}

// The summary catalog's stamps — covered_rows, n, state — must come
// out identical under both flags even when NULL-heavy rows are
// skip-counted block-wise (the block path counts masked rows toward
// seen exactly like the row path's pre-skip increment).
func TestColumnarSummaryStampsMatch(t *testing.T) {
	rowDB, colDB := openModePair(t, true, 3)
	loadNullMixture(t, rowDB, colDB, "h", 180, 3, 0.5, 77)

	opts := SummaryOptions{Method: ViaCache, Matrix: Triangular}
	if _, err := rowDB.Summary("h", DimColumns(3), opts); err != nil {
		t.Fatal(err)
	}
	if _, err := colDB.Summary("h", DimColumns(3), opts); err != nil {
		t.Fatal(err)
	}

	const q = `SELECT table_name, columns, matrix_type, state, n, covered_rows
	           FROM sys.summaries ORDER BY 1, 2, 3`
	rr, err := rowDB.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := colDB.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Rows) != len(cr.Rows) || len(rr.Rows) == 0 {
		t.Fatalf("sys.summaries: %d rows vs %d", len(rr.Rows), len(cr.Rows))
	}
	for i := range rr.Rows {
		for c := range rr.Rows[i] {
			if rr.Rows[i][c].String() != cr.Rows[i][c].String() {
				t.Fatalf("stamp row %d col %d: %q vs %q",
					i, c, rr.Rows[i][c].String(), cr.Rows[i][c].String())
			}
		}
	}
}
