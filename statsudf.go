// Package statsudf is a from-scratch reproduction of "Building
// Statistical Models and Scoring with UDFs" (Ordonez, SIGMOD 2007): an
// embedded parallel relational engine with scalar and aggregate
// User-Defined Functions, one-scan computation of the sufficient-
// statistic summary matrices n, L, Q, and the four linear statistical
// models built from them — correlation, linear regression, PCA/factor
// analysis and K-means clustering — plus single-scan scoring of data
// sets against stored models.
//
// The typical flow mirrors the paper:
//
//	db, _ := statsudf.Open(statsudf.Options{})
//	db.Generate("X", statsudf.MixtureConfig{N: 100000, D: 16})
//	nlq, _ := db.Summary("X", statsudf.DimColumns(16), statsudf.SummaryOptions{})
//	corr, _ := core model from nlq ... or directly:
//	model, _ := db.Correlation("X", statsudf.DimColumns(16))
//
// The heavy pass over the data runs inside the engine (SQL or UDF, one
// table scan); the d×d model math runs in the client, exactly as the
// paper splits the work.
package statsudf

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine/db"
	"repro/internal/engine/exec"
	"repro/internal/engine/sqltypes"
	"repro/internal/nlqudf"
	"repro/internal/score"
	"repro/internal/sqlgen"
	"repro/internal/synth"
)

// Re-exported model and statistics types: the public API surface is
// this root package; internal packages stay internal.
type (
	// NLQ is the summary-statistics accumulator (n, L, Q, min/max).
	NLQ = core.NLQ
	// CorrelationModel is the d×d Pearson correlation matrix.
	CorrelationModel = core.CorrelationModel
	// LinRegModel is the least-squares linear regression model.
	LinRegModel = core.LinRegModel
	// PCAModel is the principal component dimensionality reduction.
	PCAModel = core.PCAModel
	// FactorModel is maximum-likelihood factor analysis fit by EM.
	FactorModel = core.FactorModel
	// KMeansModel is the K-means clustering model (C, R, W).
	KMeansModel = core.KMeansModel
	// EMModel is the Gaussian-mixture clustering model.
	EMModel = core.EMModel
	// MatrixType selects diagonal/triangular/full Q maintenance.
	MatrixType = core.MatrixType
	// PCABasis selects the correlation or covariance basis.
	PCABasis = core.PCABasis
	// KMeansOptions tunes clustering.
	KMeansOptions = core.KMeansOptions
	// FactorOptions tunes the EM factor-analysis fit.
	FactorOptions = core.FactorOptions
	// EMOptions tunes EM clustering.
	EMOptions = core.EMOptions
	// MixtureConfig describes the synthetic mixture workload.
	MixtureConfig = synth.Config
	// Result is a materialized SQL result set.
	Result = exec.Result
	// Stats are one query's execution statistics: rows scanned, bytes
	// read, per-partition row counts and the aggregate protocol's
	// phase timings.
	Stats = exec.Stats
	// Row is one SQL result row.
	Row = sqltypes.Row
	// Value is one SQL value.
	Value = sqltypes.Value
	// QueryRecord is one entry in the recent-query ring (sys.queries).
	QueryRecord = db.QueryRecord
	// DebugServer is the diagnostics HTTP endpoint started by ServeDebug.
	DebugServer = db.DebugServer
)

// Matrix type and basis constants, re-exported.
const (
	Diagonal   = core.Diagonal
	Triangular = core.Triangular
	Full       = core.Full

	CorrelationBasis = core.CorrelationBasis
	CovarianceBasis  = core.CovarianceBasis
)

// MaxD is the per-UDF-call dimensionality bound implied by the 64 KB
// aggregate heap segment; higher d uses the blocked computation.
const MaxD = core.MaxD

// Value constructors for building rows programmatically.
var (
	// NewDouble wraps a float64 as a SQL DOUBLE.
	NewDouble = sqltypes.NewDouble
	// NewBigInt wraps an int64 as a SQL BIGINT.
	NewBigInt = sqltypes.NewBigInt
	// NewVarChar wraps a string as a SQL VARCHAR.
	NewVarChar = sqltypes.NewVarChar
	// Null is the SQL NULL value.
	Null = sqltypes.Null
)

// Options configure an embedded database instance.
type Options struct {
	// Dir stores table partitions on disk (scanned, never cached);
	// empty keeps tables in memory.
	Dir string
	// Partitions is the engine parallelism (default 20, the paper's
	// Teradata thread count).
	Partitions int
	// Workers bounds the executor's scan worker pool independently of
	// the partition count; <= 0 runs one worker per partition.
	Workers int
	// SlowQuery is the duration at or above which a statement is
	// flagged slow in sys.queries; zero selects the engine default
	// (250ms).
	SlowQuery time.Duration
	// TraceSampleN keeps 1-in-N healthy traces in sys.traces (error
	// and slow traces are always kept); zero selects the engine
	// default (16), 1 keeps everything.
	TraceSampleN int
	// TraceCap bounds retained traces per class (error/slow/sampled);
	// zero selects the engine default (128).
	TraceCap int
	// Columnar opts eligible scans into the block-at-a-time execution
	// path (column segments + vector kernels). Results are identical
	// to the default row path; only performance changes.
	Columnar bool
}

// DB is an embedded analytic database with the paper's UDFs installed.
type DB struct {
	eng *db.DB
}

// Open creates a database and registers the aggregate summary UDFs
// (nlq_list, nlq_str, nlq_block) and the scoring scalar UDFs
// (linearregscore, fascore, kdistance, clusterscore).
func Open(opts Options) (*DB, error) {
	eng, err := db.OpenDir(db.Options{
		Dir: opts.Dir, Partitions: opts.Partitions, Workers: opts.Workers,
		SlowQuery: opts.SlowQuery, TraceSampleN: opts.TraceSampleN, TraceCap: opts.TraceCap,
		Columnar: opts.Columnar,
	})
	if err != nil {
		return nil, err
	}
	if err := nlqudf.Register(eng); err != nil {
		return nil, err
	}
	if err := score.Register(eng); err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}

// Close releases the instance (tables on disk persist until dropped).
func (d *DB) Close() error { return d.eng.Close() }

// Engine exposes the underlying engine for advanced use (custom UDF
// registration, streaming queries).
func (d *DB) Engine() *db.DB { return d.eng }

// Exec parses and runs one SQL statement.
func (d *DB) Exec(sql string) (*Result, error) { return d.eng.Exec(sql) }

// ExecContext parses and runs one SQL statement; cancelling ctx stops
// in-flight partition scans between rows.
func (d *DB) ExecContext(ctx context.Context, sql string) (*Result, error) {
	return d.eng.ExecContext(ctx, sql)
}

// LastStats returns the execution statistics of the most recent
// statement that performed a scan: rows scanned and emitted, bytes
// read, per-partition row counts (skew), and the four-phase aggregate
// protocol timings. Nil before any scanning statement.
func (d *DB) LastStats() *Stats { return d.eng.LastStats() }

// ExecScript runs a semicolon-separated script, returning the last
// result.
func (d *DB) ExecScript(sql string) (*Result, error) { return d.eng.ExecScript(sql) }

// RecentQueries returns the retained recent statements, newest first —
// the same data `SELECT * FROM sys.queries` serves.
func (d *DB) RecentQueries() []QueryRecord { return d.eng.RecentQueries() }

// ServeDebug starts an HTTP diagnostics endpoint on addr (e.g.
// "localhost:6060"): /metrics serves the engine metrics in Prometheus
// text format, /debug/queries the recent-query ring as JSON, and
// /debug/pprof/ the standard Go profilers. Close the returned server
// to release the port.
func (d *DB) ServeDebug(addr string) (*DebugServer, error) { return d.eng.ServeDebug(addr) }

// DimColumns returns the conventional dimension column names X1..Xd.
func DimColumns(d int) []string { return sqlgen.Dims(d) }

// Generate creates (or replaces) a table with the paper's synthetic
// mixture workload, laid out as X(i, X1..Xd).
func (d *DB) Generate(table string, cfg MixtureConfig) error {
	return synth.LoadTable(d.eng, table, cfg)
}

// GenerateRegression creates X(i, X1..Xd, Y) with a planted linear
// model Y = beta0 + betaᵀx + noise.
func (d *DB) GenerateRegression(table string, cfg MixtureConfig, beta0 float64, beta []float64, noiseSD float64) error {
	return synth.LoadRegressionTable(d.eng, table, cfg, beta0, beta, noiseSD)
}

// SummaryMethod selects how the summaries are computed in-engine.
type SummaryMethod int

const (
	// ViaUDF uses the aggregate UDF with list parameter passing (the
	// paper's fastest path); the default.
	ViaUDF SummaryMethod = iota
	// ViaUDFString uses the packed-string parameter passing.
	ViaUDFString
	// ViaSQL uses the long 1+d+d² plain SQL query.
	ViaSQL
	// ViaCache serves the engine's incrementally maintained summary
	// catalog: a warm entry returns in O(d²) with zero partition scans,
	// a cold one pays a single parallel scan and installs the result.
	// WHERE filters are not cacheable and are rejected.
	ViaCache
)

// SummaryOptions tune Summary.
type SummaryOptions struct {
	Method SummaryMethod
	// Matrix selects diagonal/triangular/full Q; default Triangular.
	Matrix MatrixType
	// Where optionally filters rows (a SQL boolean expression).
	Where string
}

// Summary computes n, L, Q over the named columns in one table scan.
// Columns beyond MaxD automatically use the blocked computation
// (multiple UDF calls, still one scan).
func (d *DB) Summary(table string, columns []string, opts SummaryOptions) (*NLQ, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("statsudf: no columns given")
	}
	if opts.Method == ViaCache {
		if opts.Where != "" {
			return nil, fmt.Errorf("statsudf: the summary cache cannot serve WHERE-filtered summaries")
		}
		return d.cachedSummary(table, columns, opts.Matrix)
	}
	if len(columns) > MaxD {
		if opts.Method == ViaSQL || opts.Method == ViaUDFString {
			return nil, fmt.Errorf("statsudf: d=%d > %d requires the blocked UDF method", len(columns), MaxD)
		}
		return d.blockedSummary(table, columns, opts.Where)
	}
	mt := opts.Matrix
	var sql string
	switch opts.Method {
	case ViaUDF:
		sql = sqlgen.NLQUDFQuery(table, columns, mt, sqlgen.ListStyle)
	case ViaUDFString:
		sql = sqlgen.NLQUDFQuery(table, columns, mt, sqlgen.StringStyle)
	case ViaSQL:
		sql = sqlgen.NLQQuery(table, columns, mt)
	default:
		return nil, fmt.Errorf("statsudf: unknown summary method %d", opts.Method)
	}
	sql = appendWhere(sql, opts.Where)
	res, err := d.eng.Exec(sql)
	if err != nil {
		return nil, err
	}
	if opts.Method == ViaSQL {
		return decodeSQLNLQ(res, len(columns), mt)
	}
	v, err := res.Value()
	if err != nil {
		return nil, err
	}
	if v.IsNull() {
		return nil, fmt.Errorf("statsudf: table %q has no qualifying rows", table)
	}
	return core.Unpack(v.Str())
}

// GroupedSummary computes one summary per group of groupExpr (e.g.
// "i % 16" or a column name), keyed by the group value's string form.
func (d *DB) GroupedSummary(table string, columns []string, mt MatrixType, groupExpr string) (map[string]*NLQ, error) {
	if len(columns) > MaxD {
		return nil, fmt.Errorf("statsudf: grouped summaries support at most d=%d", MaxD)
	}
	sql := sqlgen.NLQUDFGroupQuery(table, columns, mt, sqlgen.ListStyle, groupExpr)
	res, err := d.eng.Exec(sql)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*NLQ, len(res.Rows))
	for _, row := range res.Rows {
		if row[1].IsNull() {
			continue
		}
		s, err := core.Unpack(row[1].Str())
		if err != nil {
			return nil, err
		}
		out[row[0].String()] = s
	}
	return out, nil
}

func appendWhere(sql, where string) string {
	if where == "" {
		return sql
	}
	// The generated summary queries end in "FROM <table>"; a direct
	// suffix is safe for them (GROUP BY queries are not routed here).
	return sql + " WHERE " + where
}

// blockedSummary computes a full-matrix NLQ for d > MaxD via the
// paper's partitioned UDF calls in a single synchronized scan.
func (d *DB) blockedSummary(table string, columns []string, where string) (*NLQ, error) {
	plan, err := core.PlanBlocks(len(columns), MaxD)
	if err != nil {
		return nil, err
	}
	sql := appendWhere(sqlgen.NLQBlockQuery(table, columns, plan), where)
	res, err := d.eng.Exec(sql)
	if err != nil {
		return nil, err
	}
	parts := make([]*core.BlockResult, plan.Calls())
	for i, v := range res.Rows[0] {
		if v.IsNull() {
			return nil, fmt.Errorf("statsudf: table %q has no qualifying rows", table)
		}
		_, r, err := nlqudf.UnpackBlock(v.Str())
		if err != nil {
			return nil, err
		}
		parts[i] = r
	}
	return plan.Assemble(parts)
}

// decodeSQLNLQ converts the wide SQL result row into an NLQ.
func decodeSQLNLQ(res *Result, dims int, mt MatrixType) (*NLQ, error) {
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1+dims+dims*dims {
		return nil, fmt.Errorf("statsudf: unexpected SQL summary shape")
	}
	row := res.Rows[0]
	if row[0].IsNull() {
		return nil, fmt.Errorf("statsudf: table has no qualifying rows")
	}
	s := core.MustNLQ(dims, mt)
	var err error
	if s.N, err = row[0].AsFloat(); err != nil {
		return nil, fmt.Errorf("statsudf: bad N in SQL summary: %w", err)
	}
	for a := 0; a < dims; a++ {
		if !row[1+a].IsNull() {
			if s.L[a], err = row[1+a].AsFloat(); err != nil {
				return nil, fmt.Errorf("statsudf: bad L[%d] in SQL summary: %w", a, err)
			}
		}
	}
	for a := 0; a < dims; a++ {
		for c := 0; c < dims; c++ {
			v := row[1+dims+a*dims+c]
			if v.IsNull() {
				continue
			}
			keep := (mt == core.Full) || (mt == core.Triangular && c <= a) || (mt == core.Diagonal && a == c)
			if keep {
				if s.Q[a*dims+c], err = v.AsFloat(); err != nil {
					return nil, fmt.Errorf("statsudf: bad Q[%d,%d] in SQL summary: %w", a, c, err)
				}
			}
		}
	}
	// The SQL path does not compute min/max (the UDF does); leave the
	// sentinel infinities in place.
	return s, nil
}

// cachedSummary serves Summary's ViaCache method from the engine's
// incremental catalog.
func (d *DB) cachedSummary(table string, columns []string, mt MatrixType) (*NLQ, error) {
	s, _, err := d.eng.SummaryNLQ(context.Background(), table, columns, mt)
	return s, err
}

// modelSummary feeds the model builders: base tables go through the
// incremental summary cache (zero scans when the entry is warm), while
// views, sys. tables and dimensionalities beyond the cache's reach
// fall back to the one-scan aggregate UDF.
func (d *DB) modelSummary(table string, columns []string, mt MatrixType) (*NLQ, error) {
	if d.eng.HasTable(table) && len(columns) <= MaxD {
		return d.cachedSummary(table, columns, mt)
	}
	return d.Summary(table, columns, SummaryOptions{Matrix: mt})
}

// Correlation builds the correlation model over the named columns.
func (d *DB) Correlation(table string, columns []string) (*CorrelationModel, error) {
	s, err := d.modelSummary(table, columns, Triangular)
	if err != nil {
		return nil, err
	}
	return core.BuildCorrelation(s)
}

// LinearRegression fits Y = β₀ + βᵀx by least squares, where yColumn
// names the dependent variable. The summaries are computed in one
// scan; a second scan fills in SSE, R² and var(β), matching the
// paper's two-scan regression analysis.
func (d *DB) LinearRegression(table string, xColumns []string, yColumn string) (*LinRegModel, error) {
	aug := append(append([]string{}, xColumns...), yColumn)
	s, err := d.modelSummary(table, aug, Triangular)
	if err != nil {
		return nil, err
	}
	m, err := core.BuildLinReg(s)
	if err != nil {
		return nil, err
	}
	src, err := d.columnsSource(table, aug)
	if err != nil {
		return nil, err
	}
	if err := m.FitStatistics(src, s); err != nil {
		return nil, err
	}
	return m, nil
}

// PCA builds the top-k principal components over the named columns.
func (d *DB) PCA(table string, columns []string, k int, basis PCABasis) (*PCAModel, error) {
	s, err := d.modelSummary(table, columns, Triangular)
	if err != nil {
		return nil, err
	}
	return core.BuildPCA(s, k, basis)
}

// FactorAnalysis fits a k-factor maximum-likelihood model by EM on the
// covariance matrix derived from one scan's summaries.
func (d *DB) FactorAnalysis(table string, columns []string, k int, opts FactorOptions) (*FactorModel, error) {
	s, err := d.modelSummary(table, columns, Triangular)
	if err != nil {
		return nil, err
	}
	return core.BuildFactorAnalysis(s, k, opts)
}

// KMeans clusters the named columns into k clusters. The standard
// variant scans the table once per iteration; opts.Incremental gets a
// single-scan approximate solution, as §3.1 discusses. For base
// tables, initial centroids are seeded from the cached diagonal
// summary (zero scans) unless opts.InitialCentroids already provides
// them; non-cacheable sources keep the seeding scan.
func (d *DB) KMeans(table string, columns []string, k int, opts KMeansOptions) (*KMeansModel, error) {
	src, err := d.columnsSource(table, columns)
	if err != nil {
		return nil, err
	}
	if opts.InitialCentroids == nil {
		cents, err := d.seedCentroids(table, columns, k, opts.Seed)
		if err != nil {
			return nil, err
		}
		opts.InitialCentroids = cents
	}
	return core.BuildKMeans(src, k, opts)
}

// seedCentroids places k starting centroids for the clustering entry
// points: base tables within the cache's dimensionality are seeded
// from the cached diagonal summary — zero extra scans — while views
// and other non-cacheable sources keep the deterministic
// farthest-point seeding scan. Both the client-side KMeans and
// KMeansInEngine go through here, so the two variants start from the
// same solution.
func (d *DB) seedCentroids(table string, columns []string, k int, seed int64) ([][]float64, error) {
	if d.eng.HasTable(table) && len(columns) <= MaxD {
		// Best-effort: a summary the cache cannot maintain (e.g. a
		// non-numeric column) just falls back to the seeding scan.
		if s, err := d.cachedSummary(table, columns, Diagonal); err == nil {
			if cents, err := core.SeedCentroidsFromSummary(s, k); err == nil {
				return cents, nil
			}
		}
	}
	src, err := d.columnsSource(table, columns)
	if err != nil {
		return nil, err
	}
	return core.SeedCentroids(src, k, seed)
}

// EMCluster fits a diagonal Gaussian mixture over the named columns.
func (d *DB) EMCluster(table string, columns []string, k int, opts EMOptions) (*EMModel, error) {
	src, err := d.columnsSource(table, columns)
	if err != nil {
		return nil, err
	}
	return core.BuildEM(src, k, opts)
}

// columnsSource adapts named table columns to the core.Source scans.
func (d *DB) columnsSource(table string, columns []string) (core.Source, error) {
	t, err := d.eng.Table(table)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()
	idx := make([]int, len(columns))
	for i, c := range columns {
		j := schema.Index(c)
		if j < 0 {
			return nil, fmt.Errorf("statsudf: table %q has no column %q", table, c)
		}
		idx[i] = j
	}
	return &colSource{d: d, table: strings.ToLower(table), idx: idx}, nil
}

type colSource struct {
	d     *DB
	table string
	idx   []int
}

func (s *colSource) Dims() int { return len(s.idx) }

func (s *colSource) Scan(fn func(x []float64) error) error {
	t, err := s.d.eng.Table(s.table)
	if err != nil {
		return err
	}
	x := make([]float64, len(s.idx))
	return t.Scan(func(r Row) error {
		for i, j := range s.idx {
			f, ok := r[j].Float()
			if !ok {
				return fmt.Errorf("statsudf: non-numeric value %v in column %d", r[j], j)
			}
			x[i] = f
		}
		return fn(x)
	})
}
