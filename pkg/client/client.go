// Package client is the Go client for the engine's wire-protocol
// server — the reproduction's stand-in for the ODBC client stack the
// paper scores through. It offers a database/sql-flavored API over a
// connection pool: materialized Query, streaming QueryStream, script
// Exec, and Ping, all context-aware.
//
// Pooled connections are health-checked on checkout after sitting
// idle, and idempotent SELECTs are automatically retried with backoff
// on connection loss, so a bounced server costs a read-only caller
// latency, not an error.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/trace"
	"repro/internal/server/wire"
)

// Error is the typed error the server sends on statement failure.
// Inspect .Code, or use IsBusy for admission-control rejections.
type Error = wire.Error

// IsBusy reports whether err is the server's admission-control
// rejection — the signal to back off and retry.
func IsBusy(err error) bool { return wire.IsBusy(err) }

// Defaults for Config's zero values.
const (
	defaultPoolSize         = 4
	defaultDialTimeout      = 10 * time.Second
	defaultRetryAttempts    = 2
	defaultRetryBackoff     = 50 * time.Millisecond
	defaultHealthCheckAfter = 30 * time.Second
)

// Config configures a Pool.
type Config struct {
	// Addr is the server's TCP address.
	Addr string
	// User is reported in the handshake and shows up in the server's
	// sys.sessions and sys.queries.
	User string
	// PoolSize bounds open connections. Default 4.
	PoolSize int
	// DialTimeout bounds connection establishment including the
	// handshake. Default 10s.
	DialTimeout time.Duration
	// RetryAttempts is how many times Query re-runs an idempotent
	// SELECT after losing its connection mid-flight. Default 2;
	// negative disables retry.
	RetryAttempts int
	// RetryBackoff is the delay before the first retry; it doubles per
	// attempt. Default 50ms.
	RetryBackoff time.Duration
	// HealthCheckAfter pings a pooled connection at checkout when it
	// has been idle at least this long, discarding it if the ping
	// fails. Default 30s; negative disables the check.
	HealthCheckAfter time.Duration
	// AutoPrepareAfter transparently switches a repeated idempotent
	// SELECT to the PREPARE/EXECUTE wire path once the pool has seen its
	// exact text this many times (the next occurrence runs prepared).
	// Default 2; negative disables auto-prepare.
	AutoPrepareAfter int
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = defaultPoolSize
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = defaultDialTimeout
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = defaultRetryAttempts
	} else if c.RetryAttempts < 0 {
		c.RetryAttempts = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = defaultRetryBackoff
	}
	if c.HealthCheckAfter == 0 {
		c.HealthCheckAfter = defaultHealthCheckAfter
	}
	if c.AutoPrepareAfter == 0 {
		c.AutoPrepareAfter = defaultAutoPrepareAfter
	}
	return c
}

// Rows is a materialized query result.
type Rows struct {
	Schema *sqltypes.Schema
	Rows   []sqltypes.Row
	// Affected is nonzero for statements that modify data.
	Affected int64
	// StatsJSON is the server-side executor statistics for the
	// statement, JSON-encoded ("" when the statement did not scan).
	StatsJSON string
	// TraceID identifies the statement's server-side trace ("" on a
	// protocol-1 session). Look it up in the server's sys.traces /
	// sys.spans to see the full span tree this roundtrip produced.
	TraceID string

	// prepared carries a MsgPrepared acknowledgement when the exchange
	// was a PREPARE rather than a statement.
	prepared *wire.PreparedInfo
	// summary carries a MsgSummaryResult reply when the exchange was a
	// protocol-3 Summary request.
	summary *wire.SummaryResult
}

// Pool is a bounded pool of wire-protocol connections. Safe for
// concurrent use.
type Pool struct {
	cfg     Config
	permits chan struct{} // one per potential open connection

	mu     sync.Mutex
	idle   []*conn // LIFO: most recently used first
	closed bool

	// stmtSeen counts how many times each idempotent SELECT text has
	// run, driving the AutoPrepareAfter switch to the prepared path.
	stmtMu   sync.Mutex
	stmtSeen map[string]int
}

// Open creates a pool. Connections are dialed lazily; use Ping to
// validate the address eagerly.
func Open(cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	if cfg.Addr == "" {
		return nil, errors.New("client: Config.Addr required")
	}
	return &Pool{cfg: cfg, permits: make(chan struct{}, cfg.PoolSize)}, nil
}

// conn is one established session.
type conn struct {
	nc       net.Conn
	wc       *wire.Conn
	session  int64
	proto    uint32 // negotiated protocol version
	idleFrom time.Time
	// prepared maps SQL text to the server-side handle this connection
	// holds for it. Handles are session-scoped: a fresh connection (and
	// therefore every post-bounce retry) starts empty and re-prepares,
	// so a stale handle is never replayed against a restarted server.
	prepared map[string]wire.PreparedInfo
	// broken marks the connection unfit for reuse: a transport or
	// protocol failure, or a cancelled context that left the deadline
	// in the past and possibly a half-read response stream. Callers
	// must discard (never pool) a broken connection.
	broken bool
}

// dial establishes and handshakes one connection. It offers the
// newest protocol the client speaks; an old server that rejects the
// offer gets one redial speaking protocol 1 (no trace headers, v1
// frames throughout).
func (p *Pool) dial(ctx context.Context) (*conn, error) {
	c, err := p.dialVersion(ctx, wire.ProtocolVersion)
	var we *wire.Error
	if err != nil && errors.As(err, &we) && we.Code == wire.CodeProtocol && strings.Contains(we.Message, "protocol version") {
		downgradesTotal.Inc()
		return p.dialVersion(ctx, wire.ProtocolV1)
	}
	return c, err
}

func (p *Pool) dialVersion(ctx context.Context, version uint32) (*conn, error) {
	d := net.Dialer{Timeout: p.cfg.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", p.cfg.Addr)
	if err != nil {
		return nil, err
	}
	nc.SetDeadline(time.Now().Add(p.cfg.DialTimeout))
	wc := wire.NewConn(nc)
	if err := wc.Send(wire.MsgHello, wire.EncodeHello(wire.Hello{Version: version, User: p.cfg.User})); err != nil {
		nc.Close()
		return nil, err
	}
	f, err := wc.Recv()
	if err != nil {
		nc.Close()
		return nil, err
	}
	if f.Type == wire.MsgError {
		nc.Close()
		if we, derr := wire.DecodeError(f.Payload); derr == nil {
			countServerError(we)
			return nil, we
		}
		return nil, errors.New("client: handshake rejected")
	}
	if f.Type != wire.MsgWelcome {
		nc.Close()
		return nil, fmt.Errorf("client: expected Welcome, got frame type %#x", f.Type)
	}
	w, err := wire.DecodeWelcome(f.Payload)
	if err != nil {
		nc.Close()
		return nil, err
	}
	nc.SetDeadline(time.Time{})
	proto := w.Proto
	if proto > version {
		proto = version // never speak newer than we offered
	}
	return &conn{nc: nc, wc: wc, session: w.SessionID, proto: proto, prepared: make(map[string]wire.PreparedInfo)}, nil
}

// traceHeader builds the statement's wire trace context on a
// protocol-2 session: the TraceID (adopted from ctx when the caller
// already carries one) plus a fresh roundtrip span ID for the server's
// session span to parent under. Nil on v1 sessions — a v1 server's
// strict decoder rejects trailing bytes.
func (c *conn) traceHeader(ctx context.Context) *wire.TraceHeader {
	if c.proto < wire.ProtocolV2 {
		return nil
	}
	sc, ok := trace.FromContext(ctx)
	if !ok || sc.TraceID.IsZero() {
		sc.TraceID = trace.NewTraceID()
	}
	return &wire.TraceHeader{TraceID: sc.TraceID, SpanID: trace.NewSpanID()}
}

// get checks a connection out of the pool, dialing when the pool has
// room and no idle connection is healthy.
func (p *Pool) get(ctx context.Context) (*conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errors.New("client: pool closed")
	}
	p.mu.Unlock()
	select {
	case p.permits <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	// Holding a permit: reuse an idle connection or dial a new one.
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			<-p.permits
			return nil, errors.New("client: pool closed")
		}
		var c *conn
		if n := len(p.idle); n > 0 {
			c = p.idle[n-1]
			p.idle = p.idle[:n-1]
		}
		p.mu.Unlock()
		if c == nil {
			nc, err := p.dial(ctx)
			if err != nil {
				<-p.permits
				return nil, err
			}
			return nc, nil
		}
		if p.cfg.HealthCheckAfter >= 0 && time.Since(c.idleFrom) >= p.cfg.HealthCheckAfter {
			if err := c.ping(p.cfg.DialTimeout); err != nil {
				c.nc.Close() // stale; try the next idle conn or dial
				continue
			}
		}
		return c, nil
	}
}

// put returns a healthy connection to the pool.
func (p *Pool) put(c *conn) {
	c.idleFrom = time.Now()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.close()
		<-p.permits
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
	<-p.permits
}

// discard drops a broken connection, freeing its pool slot.
func (p *Pool) discard(c *conn) {
	c.nc.Close()
	<-p.permits
}

// release returns c to the pool, unless the round trip left it broken
// (transport failure or a fired context), in which case it is dropped —
// pooling it would hand the next caller a spurious instant timeout.
func (p *Pool) release(c *conn) {
	if c.broken {
		p.discard(c)
		return
	}
	p.put(c)
}

// Close closes the pool and its idle connections. Connections checked
// out by in-flight calls are closed as they are returned.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, c := range idle {
		c.close()
	}
	return nil
}

// ping runs a Ping/Pong round trip under deadline.
func (c *conn) ping(timeout time.Duration) error {
	c.nc.SetDeadline(time.Now().Add(timeout))
	defer c.nc.SetDeadline(time.Time{})
	if err := c.wc.Send(wire.MsgPing, nil); err != nil {
		return err
	}
	f, err := c.wc.Recv()
	if err != nil {
		return err
	}
	if f.Type != wire.MsgPong {
		return fmt.Errorf("client: expected Pong, got frame type %#x", f.Type)
	}
	return nil
}

// close ends the session politely (best-effort Goodbye) and closes the
// socket.
func (c *conn) close() {
	c.nc.SetDeadline(time.Now().Add(time.Second))
	if err := c.wc.Send(wire.MsgClose, nil); err == nil {
		c.wc.Recv() // Goodbye
	}
	c.nc.Close()
}

// watchCtx interrupts blocking socket I/O when ctx is cancelled by
// moving the connection deadline into the past. The returned stop
// function must be called when the call completes; it reports whether
// the context fired (in which case the connection is poisoned and must
// be discarded).
func watchCtx(ctx context.Context, nc net.Conn) (stop func() bool) {
	if ctx.Done() == nil {
		return func() bool { return false }
	}
	stopped := make(chan struct{})
	fired := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			nc.SetDeadline(time.Now())
			close(fired)
		case <-stopped:
		}
	}()
	return func() bool {
		close(stopped)
		select {
		case <-fired:
			return true
		default:
			nc.SetDeadline(time.Time{})
			return false
		}
	}
}

// roundTrip sends one statement and collects the full response.
func (c *conn) roundTrip(ctx context.Context, msgType byte, sql string, sink func(sqltypes.Row) error) (*Rows, error) {
	return c.exchange(ctx, msgType, wire.EncodeStatementTrace(sql, c.traceHeader(ctx)), sink)
}

// exchange sends one request frame and collects the full response.
// A *wire.Error return means the server failed the statement but the
// connection remains usable; any other error marks the connection
// broken, as does a context that fired at any point (the watcher moved
// the deadline into the past, and the response stream may be half
// read) — even when the response still completed. Callers consult
// c.broken to decide pool-vs-discard.
func (c *conn) exchange(ctx context.Context, msgType byte, payload []byte, sink func(sqltypes.Row) error) (*Rows, error) {
	start := time.Now()
	stop := watchCtx(ctx, c.nc)
	ctxDone := false
	defer func() {
		if !ctxDone {
			roundtripSeconds.Observe(time.Since(start).Seconds())
		}
	}()
	fail := func(err error) (*Rows, error) {
		c.broken = true
		if stop() {
			ctxDone = true
			if cerr := ctx.Err(); cerr != nil {
				return nil, fmt.Errorf("%w (%v)", cerr, err)
			}
		}
		return nil, err
	}
	if err := c.wc.Send(msgType, payload); err != nil {
		return fail(err)
	}
	out := &Rows{}
	for {
		f, err := c.wc.Recv()
		if err != nil {
			return fail(err)
		}
		switch f.Type {
		case wire.MsgSchema:
			if out.Schema, err = wire.DecodeSchema(f.Payload); err != nil {
				return fail(err)
			}
		case wire.MsgBatch:
			rows, err := wire.DecodeBatch(f.Payload)
			if err != nil {
				return fail(err)
			}
			if sink != nil {
				for _, r := range rows {
					if err := sink(r); err != nil {
						// The sink aborted: the server will keep
						// streaming, so poison the connection.
						return fail(err)
					}
				}
			} else {
				out.Rows = append(out.Rows, rows...)
			}
		case wire.MsgDone:
			d, err := wire.DecodeDone(f.Payload)
			if err != nil {
				return fail(err)
			}
			out.Affected, out.StatsJSON, out.TraceID = d.Affected, d.StatsJSON, d.TraceID
			if stop() {
				c.broken = true
			}
			return out, nil
		case wire.MsgPrepared:
			pi, err := wire.DecodePrepared(f.Payload)
			if err != nil {
				return fail(err)
			}
			out.prepared = &pi
			if stop() {
				c.broken = true
			}
			return out, nil
		case wire.MsgSummaryResult:
			sr, err := wire.DecodeSummaryResult(f.Payload)
			if err != nil {
				return fail(err)
			}
			out.summary = &sr
			if stop() {
				c.broken = true
			}
			return out, nil
		case wire.MsgError:
			we, derr := wire.DecodeError(f.Payload)
			if derr != nil {
				return fail(derr)
			}
			if stop() {
				c.broken = true
			}
			countServerError(we)
			return nil, we
		default:
			return fail(fmt.Errorf("client: unexpected frame type %#x", f.Type))
		}
	}
}

// isConnLoss reports whether err is a connection-level failure (as
// opposed to a server-reported statement error), the condition under
// which an idempotent statement may be retried on a fresh connection.
func isConnLoss(err error) bool {
	var we *wire.Error
	if errors.As(err, &we) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// isIdempotentSelect reports whether sql is a lone SELECT — safe to
// re-run after a lost connection because it modifies nothing.
func isIdempotentSelect(sql string) bool {
	trimmed := strings.TrimSpace(sql)
	if i := strings.IndexAny(trimmed, " \t\r\n("); i > 0 {
		trimmed = trimmed[:i]
	}
	return strings.EqualFold(trimmed, "SELECT") && !strings.Contains(sql, ";")
}

// Query runs one statement and materializes its result. Idempotent
// SELECTs that lose their connection mid-flight are retried on a fresh
// connection with exponential backoff; repeated SELECT texts switch to
// the prepared wire path per Config.AutoPrepareAfter.
func (p *Pool) Query(ctx context.Context, sql string) (*Rows, error) {
	prepared := p.notePrepareCandidate(sql)
	return p.withRetry(ctx, isIdempotentSelect(sql), func(c *conn) (*Rows, error) {
		if prepared {
			rows, err := c.execPrepared(ctx, sql, nil, nil)
			var rej *prepareRejected
			if !errors.As(err, &rej) {
				return rows, err
			}
			// The server declined to prepare this statement (system
			// tables, for one); remember that and run it plain.
			p.notePrepareNever(sql)
		}
		return c.roundTrip(ctx, wire.MsgQuery, sql, nil)
	})
}

// withRetry checks out a connection and runs one exchange, retrying
// idempotent work on a fresh connection after connection loss. A fresh
// connection holds no prepared handles, so retried prepared statements
// re-prepare rather than replaying a handle a bounced server has never
// seen.
func (p *Pool) withRetry(ctx context.Context, idempotent bool, run func(c *conn) (*Rows, error)) (*Rows, error) {
	retries := 0
	if idempotent {
		retries = p.cfg.RetryAttempts
	}
	backoff := p.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			retriesTotal.Inc()
			if err := retrySleep(ctx, backoff); err != nil {
				return nil, err
			}
			backoff *= 2
		}
		c, err := p.get(ctx)
		if err != nil {
			if lastErr != nil && isConnLoss(err) {
				lastErr = err
				continue // server may be coming back; retry dial too
			}
			return nil, err
		}
		rows, err := run(c)
		p.release(c)
		if err == nil {
			return rows, nil
		}
		if !isConnLoss(err) {
			return nil, err // server-reported error or cancelled ctx
		}
		lastErr = err
	}
	return nil, lastErr
}

// retrySleep waits out one backoff period before a retry, honoring
// ctx's cancellation and deadline mid-sleep. The actual sleep is
// jittered uniformly over [backoff/2, backoff): when a coordinator
// fans one statement out to many shards and a shard bounces, the
// sub-pools' retries would otherwise wake in lockstep and hammer the
// recovering server with a synchronized connection storm.
func retrySleep(ctx context.Context, backoff time.Duration) error {
	d := backoff
	if half := backoff / 2; half > 0 {
		d = half + time.Duration(rand.Int63n(int64(half)))
	}
	if dl, ok := ctx.Deadline(); ok {
		if remain := time.Until(dl); remain <= 0 {
			return ctx.Err()
		} else if d > remain {
			d = remain // wake with the deadline, not after it
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// QueryStream runs one statement, delivering rows to sink as batches
// arrive instead of materializing them. It never retries: rows may
// already have been delivered when the connection fails. The schema is
// returned on completion (streamed results describe their schema last).
func (p *Pool) QueryStream(ctx context.Context, sql string, sink func(sqltypes.Row) error) (*sqltypes.Schema, error) {
	prepared := p.notePrepareCandidate(sql)
	c, err := p.get(ctx)
	if err != nil {
		return nil, err
	}
	var res *Rows
	if prepared {
		res, err = c.execPrepared(ctx, sql, nil, sink)
		var rej *prepareRejected
		if errors.As(err, &rej) {
			// Prepare was refused before any row was delivered, so
			// falling back to a plain query is safe even for a stream.
			p.notePrepareNever(sql)
			res, err = c.roundTrip(ctx, wire.MsgQuery, sql, sink)
		}
	} else {
		res, err = c.roundTrip(ctx, wire.MsgQuery, sql, sink)
	}
	p.release(c)
	if err != nil {
		return nil, err
	}
	return res.Schema, nil
}

// Exec runs a semicolon-separated statement script, returning the last
// statement's result. Never retried — scripts are not assumed
// idempotent.
func (p *Pool) Exec(ctx context.Context, sql string) (*Rows, error) {
	c, err := p.get(ctx)
	if err != nil {
		return nil, err
	}
	rows, err := c.roundTrip(ctx, wire.MsgExec, sql, nil)
	p.release(c)
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Summary requests the server's n/L/Q sufficient statistics for one
// table over the protocol-3 push-down frame: the cache-first read path
// a model build uses in-process, served over the wire. hit reports
// whether the server's summary cache avoided a scan; a nil NLQ with a
// nil error means the table has no qualifying rows. The request is
// idempotent and retried like a SELECT. Servers negotiated below
// protocol 3 cannot serve it.
func (p *Pool) Summary(ctx context.Context, table string, columns []string, mt core.MatrixType) (*core.NLQ, bool, error) {
	req := wire.EncodeSummary(wire.Summary{Table: table, Columns: columns, Matrix: byte(mt)})
	rows, err := p.withRetry(ctx, true, func(c *conn) (*Rows, error) {
		if c.proto < wire.ProtocolV3 {
			return nil, &wire.Error{Code: wire.CodeProtocol, Message: fmt.Sprintf("server negotiated protocol %d; Summary needs >= %d", c.proto, wire.ProtocolV3)}
		}
		return c.exchange(ctx, wire.MsgSummary, req, nil)
	})
	if err != nil {
		return nil, false, err
	}
	if rows.summary == nil {
		return nil, false, errors.New("client: server sent no summary result")
	}
	if rows.summary.Packed == "" {
		return nil, rows.summary.Hit, nil
	}
	nlq, err := core.Unpack(rows.summary.Packed)
	if err != nil {
		return nil, false, fmt.Errorf("client: bad summary payload: %w", err)
	}
	return nlq, rows.summary.Hit, nil
}

// Ping checks out a connection (dialing if needed) and round-trips a
// Ping frame.
func (p *Pool) Ping(ctx context.Context) error {
	c, err := p.get(ctx)
	if err != nil {
		return err
	}
	stop := watchCtx(ctx, c.nc)
	err = c.ping(p.cfg.DialTimeout)
	if stop() && err == nil {
		err = ctx.Err() // ctx fired: the connection deadline is poisoned
	}
	if err != nil {
		p.discard(c)
		return err
	}
	p.put(c)
	return nil
}
