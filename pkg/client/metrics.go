package client

import (
	"repro/internal/engine/obs"
	"repro/internal/server/wire"
)

// Client-side instruments, registered on the process-wide registry so
// a process embedding both a client and a server (or the harness's
// over-the-wire experiments) reports both sides of the link.
var (
	// RoundtripSeconds is the client-observed wire round trip for one
	// statement: send, execution, and full result download. Comparing
	// it with engine_server_statement_seconds isolates network cost.
	roundtripSeconds = obs.Default.Histogram("engine_client_roundtrip_seconds",
		"Client-observed statement round-trip latency over the wire.",
		obs.DurationBuckets)
	// RetriesTotal counts automatic retries of idempotent SELECTs
	// after connection loss.
	retriesTotal = obs.Default.Counter("engine_client_retries_total",
		"Statements automatically retried after connection loss.")
	// DowngradesTotal counts handshakes redialed at protocol 1 after a
	// server rejected the newer offer — a nonzero value means an old
	// server is in the fleet and traces stop at the client.
	downgradesTotal = obs.Default.Counter("engine_client_protocol_downgrades_total",
		"Handshakes redialed at protocol 1 after the server rejected the v2 offer.")

	// Per-code counters for server-reported statement errors. One
	// counter per typed wire code, pre-registered with a literal name
	// so dashboards can alert on a code that never flowed before the
	// first occurrence.
	serverErrBusy = obs.Default.Counter("engine_client_server_errors_busy_total",
		"Statements rejected by server admission control.")
	serverErrSema = obs.Default.Counter("engine_client_server_errors_sema_total",
		"Statements rejected during semantic analysis.")
	serverErrParse = obs.Default.Counter("engine_client_server_errors_parse_total",
		"Statements rejected with a SQL syntax error.")
	serverErrCancelled = obs.Default.Counter("engine_client_server_errors_cancelled_total",
		"Statements stopped by cancellation.")
	serverErrShutdown = obs.Default.Counter("engine_client_server_errors_shutdown_total",
		"Statements rejected because the server was draining.")
	serverErrProtocol = obs.Default.Counter("engine_client_server_errors_protocol_total",
		"Statements failed on a malformed or unexpected frame.")
	serverErrStalePlan = obs.Default.Counter("engine_client_server_errors_stale_plan_total",
		"Prepared executions rejected because the plan went stale.")
	serverErrShardUnavailable = obs.Default.Counter("engine_client_server_errors_shard_unavailable_total",
		"Statements failed because a coordinator could not reach a shard.")
	serverErrInternal = obs.Default.Counter("engine_client_server_errors_internal_total",
		"Statements failed by an internal server error.")
	serverErrUnknown = obs.Default.Counter("engine_client_server_errors_unknown_total",
		"Server errors carrying a code this client build does not know.")
)

// countServerError classifies a server-reported error into the
// per-code counters above. The switch is exhaustive over the wire
// package's Code* constants — statlint's metricscontract analyzer
// fails the lint when the protocol grows a code this mapping does not
// handle, so a new code cannot silently land in the unknown bucket.
func countServerError(we *wire.Error) {
	switch we.Code {
	case wire.CodeBusy:
		serverErrBusy.Inc()
	case wire.CodeSema:
		serverErrSema.Inc()
	case wire.CodeParse:
		serverErrParse.Inc()
	case wire.CodeCancelled:
		serverErrCancelled.Inc()
	case wire.CodeShutdown:
		serverErrShutdown.Inc()
	case wire.CodeProtocol:
		serverErrProtocol.Inc()
	case wire.CodeStalePlan:
		serverErrStalePlan.Inc()
	case wire.CodeShardUnavailable:
		serverErrShardUnavailable.Inc()
	case wire.CodeInternal:
		serverErrInternal.Inc()
	default:
		serverErrUnknown.Inc()
	}
}
