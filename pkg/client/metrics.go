package client

import "repro/internal/engine/obs"

// Client-side instruments, registered on the process-wide registry so
// a process embedding both a client and a server (or the harness's
// over-the-wire experiments) reports both sides of the link.
var (
	// RoundtripSeconds is the client-observed wire round trip for one
	// statement: send, execution, and full result download. Comparing
	// it with engine_server_statement_seconds isolates network cost.
	roundtripSeconds = obs.Default.Histogram("engine_client_roundtrip_seconds",
		"Client-observed statement round-trip latency over the wire.",
		obs.DurationBuckets)
	// RetriesTotal counts automatic retries of idempotent SELECTs
	// after connection loss.
	retriesTotal = obs.Default.Counter("engine_client_retries_total",
		"Statements automatically retried after connection loss.")
)
