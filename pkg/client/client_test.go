package client

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/engine/db"
	"repro/internal/engine/expr"
	"repro/internal/engine/sqltypes"
	"repro/internal/server"
)

func TestIsIdempotentSelect(t *testing.T) {
	yes := []string{
		"SELECT 1 + 1 FROM T",
		"  select i from x order by i",
		"\nSELECT\ti FROM X",
		"SELECT(i) FROM X",
	}
	no := []string{
		"INSERT INTO T VALUES (1)",
		"CREATE TABLE T (a INT)",
		"SELECT i FROM X; DROP TABLE X",
		"SELECTX FROM T",
		"",
	}
	for _, sql := range yes {
		if !isIdempotentSelect(sql) {
			t.Errorf("isIdempotentSelect(%q) = false, want true", sql)
		}
	}
	for _, sql := range no {
		if isIdempotentSelect(sql) {
			t.Errorf("isIdempotentSelect(%q) = true, want false", sql)
		}
	}
}

// startServerAt opens a fresh engine with table T loaded and serves it
// at addr ("127.0.0.1:0" for ephemeral).
func startServerAt(t *testing.T, addr string) *server.Server {
	t.Helper()
	eng := db.Open(db.Options{Partitions: 2})
	if _, err := eng.Exec("CREATE TABLE T (i BIGINT)"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO T VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	srv := server.New(eng, server.Config{Addr: addr})
	if err := srv.Start(); err != nil {
		t.Fatalf("start server at %s: %v", addr, err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestRetryOnBrokenConnection bounces the server between two queries on
// the same pool: the second query's pooled connection is dead, and the
// automatic SELECT retry must transparently re-dial and succeed.
func TestRetryOnBrokenConnection(t *testing.T) {
	srv1 := startServerAt(t, "127.0.0.1:0")
	addr := srv1.Addr()
	p, err := Open(Config{
		Addr: addr, User: "retrier", PoolSize: 1,
		RetryBackoff:     time.Millisecond,
		HealthCheckAfter: -1, // force the broken conn to be used as-is
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()

	const sel = "SELECT i FROM T ORDER BY i"
	if _, err := p.Query(ctx, sel); err != nil {
		t.Fatalf("first query: %v", err)
	}
	before := retriesTotal.Value()

	srv1.Close()
	startServerAt(t, addr) // same address, fresh server

	rows, err := p.Query(ctx, sel)
	if err != nil {
		t.Fatalf("query across server bounce: %v", err)
	}
	if len(rows.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows.Rows))
	}
	if retriesTotal.Value() <= before {
		t.Fatal("success did not go through the retry path")
	}
}

// TestNoRetryForWrites breaks the pooled connection and requires a
// non-idempotent statement to fail rather than silently re-run.
func TestNoRetryForWrites(t *testing.T) {
	srv1 := startServerAt(t, "127.0.0.1:0")
	addr := srv1.Addr()
	p, err := Open(Config{Addr: addr, User: "writer", PoolSize: 1, HealthCheckAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()

	if _, err := p.Query(ctx, "SELECT i FROM T"); err != nil {
		t.Fatalf("first query: %v", err)
	}
	srv1.Close()
	startServerAt(t, addr)

	if _, err := p.Exec(ctx, "INSERT INTO T VALUES (99)"); err == nil {
		t.Fatal("Exec across a broken connection succeeded; writes must not be retried")
	}
}

// TestHealthCheckRecyclesStaleConns bounces the server and requires the
// checkout-time ping to catch the dead pooled connection, so even a
// never-retried statement succeeds on a freshly dialed one.
func TestHealthCheckRecyclesStaleConns(t *testing.T) {
	srv1 := startServerAt(t, "127.0.0.1:0")
	addr := srv1.Addr()
	p, err := Open(Config{Addr: addr, User: "hc", PoolSize: 1, HealthCheckAfter: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()

	if _, err := p.Query(ctx, "SELECT i FROM T"); err != nil {
		t.Fatalf("first query: %v", err)
	}
	srv1.Close()
	startServerAt(t, addr)

	if _, err := p.Exec(ctx, "INSERT INTO T VALUES (42)"); err != nil {
		t.Fatalf("Exec after server bounce: %v (health check should have recycled the conn)", err)
	}
}

// TestCancelledCallDoesNotPoisonPool cancels a query mid-flight and
// requires the pool to discard — not recycle — the abandoned
// connection: its deadline was moved into the past and its response
// stream is half-read, so pooling it would hand the next caller (here
// a never-retried INSERT) a spurious instant i/o timeout.
func TestCancelledCallDoesNotPoisonPool(t *testing.T) {
	eng := db.Open(db.Options{Partitions: 2})
	if _, err := eng.Exec("CREATE TABLE B (v DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec("INSERT INTO B VALUES (1.0)"); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	err := eng.Scalars().Register(expr.FuncDef{
		Name: "park1", MinArgs: 1, MaxArgs: 1, UDF: true,
		Fn: func(args []sqltypes.Value) (sqltypes.Value, error) {
			<-release
			return args[0], nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	var once sync.Once
	unpark := func() { once.Do(func() { close(release) }) }
	t.Cleanup(unpark) // before srv.Close (LIFO)

	p, err := Open(Config{Addr: srv.Addr(), User: "canceller", PoolSize: 1, HealthCheckAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := p.Query(ctx, "SELECT park1(v) FROM B"); err == nil {
		t.Fatal("parked query outlived its context")
	}
	// Unpark the abandoned server-side statement so it can observe its
	// cancelled session context and release its scan.
	unpark()
	// The abandoned connection must not be recycled: the INSERT is not
	// retried, so it only succeeds on a freshly dialed connection.
	if _, err := p.Exec(context.Background(), "INSERT INTO B VALUES (2.0)"); err != nil {
		t.Fatalf("statement after cancelled call: %v", err)
	}
}

func TestQueryContextCancel(t *testing.T) {
	srv := startServerAt(t, "127.0.0.1:0")
	p, err := Open(Config{Addr: srv.Addr(), User: "c", PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Query(ctx, "SELECT i FROM T"); err == nil {
		t.Fatal("query with cancelled context succeeded")
	}
	// The pool recovers: a fresh call works.
	if _, err := p.Query(context.Background(), "SELECT i FROM T"); err != nil {
		t.Fatalf("query after cancelled call: %v", err)
	}
}

func TestPoolClose(t *testing.T) {
	srv := startServerAt(t, "127.0.0.1:0")
	p, err := Open(Config{Addr: srv.Addr(), User: "c", PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Query(context.Background(), "SELECT i FROM T"); err == nil {
		t.Fatal("query on closed pool succeeded")
	}
}
