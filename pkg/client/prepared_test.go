package client

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/engine/sqltypes"
)

func TestStmtQueryParams(t *testing.T) {
	srv := startServerAt(t, "127.0.0.1:0")
	p, err := Open(Config{Addr: srv.Addr(), User: "stmt", PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()

	stmt := p.Prepare("SELECT i FROM T WHERE i = ?")
	for i := 1; i <= 3; i++ {
		rows, err := stmt.Query(ctx, sqltypes.NewBigInt(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows.Rows) != 1 || rows.Rows[0][0].Int() != int64(i) {
			t.Fatalf("i=%d: rows %v", i, rows.Rows)
		}
	}
}

func TestStmtArgCountCheckedClientSide(t *testing.T) {
	srv := startServerAt(t, "127.0.0.1:0")
	p, err := Open(Config{Addr: srv.Addr(), User: "stmt", PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	stmt := p.Prepare("SELECT i FROM T WHERE i = ?")
	if _, err := stmt.Query(context.Background()); err == nil {
		t.Fatal("0 args for 1 slot accepted")
	}
	// The arity error must not have poisoned the connection: a correct
	// call still works.
	if _, err := stmt.Query(context.Background(), sqltypes.NewBigInt(1)); err != nil {
		t.Fatalf("after arity error: %v", err)
	}
}

func TestStmtPrepareErrorSurfacesFromQuery(t *testing.T) {
	srv := startServerAt(t, "127.0.0.1:0")
	p, err := Open(Config{Addr: srv.Addr(), User: "stmt", PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	stmt := p.Prepare("SELECT nocolumn FROM T")
	if _, err := stmt.Query(context.Background()); err == nil {
		t.Fatal("prepare of a bad statement succeeded")
	}
	// The pooled connection survives a server-side prepare rejection.
	if _, err := p.Query(context.Background(), "SELECT i FROM T"); err != nil {
		t.Fatalf("pool poisoned by failed prepare: %v", err)
	}
}

// TestStmtReprepareAfterBounce restarts the server between two
// executions of the same Stmt. The retry path lands on a fresh
// connection with no handles; it must re-prepare from the SQL text and
// never replay the dead server's handle.
func TestStmtReprepareAfterBounce(t *testing.T) {
	srv1 := startServerAt(t, "127.0.0.1:0")
	addr := srv1.Addr()
	p, err := Open(Config{
		Addr: addr, User: "stmt", PoolSize: 1,
		RetryBackoff:     time.Millisecond,
		HealthCheckAfter: -1, // hand out the dead conn as-is; the retry must save us
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()

	stmt := p.Prepare("SELECT i FROM T WHERE i = ?")
	if _, err := stmt.Query(ctx, sqltypes.NewBigInt(1)); err != nil {
		t.Fatalf("first execute: %v", err)
	}
	before := retriesTotal.Value()

	srv1.Close()
	startServerAt(t, addr) // fresh server: all old handles are gone

	rows, err := stmt.Query(ctx, sqltypes.NewBigInt(2))
	if err != nil {
		t.Fatalf("execute across server bounce: %v", err)
	}
	if len(rows.Rows) != 1 || rows.Rows[0][0].Int() != 2 {
		t.Fatalf("rows %v", rows.Rows)
	}
	if retriesTotal.Value() <= before {
		t.Fatal("success did not go through the retry path")
	}
}

// TestStmtSurvivesDDLInvalidation runs DDL between executions: the
// server's plan goes stale, and the session must transparently
// re-prepare rather than surface a stale-plan error to the caller.
func TestStmtSurvivesDDLInvalidation(t *testing.T) {
	srv := startServerAt(t, "127.0.0.1:0")
	p, err := Open(Config{Addr: srv.Addr(), User: "stmt", PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()

	stmt := p.Prepare("SELECT i FROM T WHERE i = ?")
	if _, err := stmt.Query(ctx, sqltypes.NewBigInt(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Exec(ctx, fmt.Sprintf("CREATE TABLE ddl%d (a BIGINT)", i)); err != nil {
			t.Fatal(err)
		}
		rows, err := stmt.Query(ctx, sqltypes.NewBigInt(1))
		if err != nil {
			t.Fatalf("after DDL %d: %v", i, err)
		}
		if len(rows.Rows) != 1 {
			t.Fatalf("after DDL %d: rows %v", i, rows.Rows)
		}
	}
}

// TestAutoPrepare exercises the transparent path: the same SELECT text
// repeated past the threshold must switch onto PREPARE/EXECUTE, which
// shows up as a server-side prepared statement for the session.
func TestAutoPrepare(t *testing.T) {
	srv := startServerAt(t, "127.0.0.1:0")
	p, err := Open(Config{Addr: srv.Addr(), User: "auto", PoolSize: 1, AutoPrepareAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()

	const sel = "SELECT i FROM T WHERE i = 2"
	for i := 0; i < 5; i++ {
		rows, err := p.Query(ctx, sel)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows.Rows) != 1 || rows.Rows[0][0].Int() != 2 {
			t.Fatalf("iteration %d: rows %v", i, rows.Rows)
		}
	}
	// The statement crossed the threshold, so the single pooled
	// connection's session now holds it server-side. sys.prepared also
	// lists the server's own plan-cache entries (cached = true); an
	// explicit session handle is cached = false.
	rows, err := p.Query(ctx, "SELECT sql_text, cached FROM sys.prepared")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows.Rows {
		if r[0].Str() == sel && !r[1].Bool() {
			found = true
		}
	}
	if !found {
		t.Fatalf("auto-prepare did not register %q server-side: %v", sel, rows.Rows)
	}
}

func TestAutoPrepareDisabled(t *testing.T) {
	srv := startServerAt(t, "127.0.0.1:0")
	p, err := Open(Config{Addr: srv.Addr(), User: "auto", PoolSize: 1, AutoPrepareAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()

	const sel = "SELECT i FROM T WHERE i = 1"
	for i := 0; i < 6; i++ {
		if _, err := p.Query(ctx, sel); err != nil {
			t.Fatal(err)
		}
	}
	// No explicit handle may exist; the server's own plan cache
	// (cached = true entries) is allowed to serve repeated text.
	rows, err := p.Query(ctx, "SELECT sql_text, cached FROM sys.prepared")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows.Rows {
		if !r[1].Bool() {
			t.Fatalf("AutoPrepareAfter=-1 still prepared %q", r[0].Str())
		}
	}
}

// TestStmtConcurrent hammers one Stmt from several goroutines across a
// small pool; run under -race this proves the per-conn handle maps and
// the pool's statement counter are properly confined.
func TestStmtConcurrent(t *testing.T) {
	srv := startServerAt(t, "127.0.0.1:0")
	p, err := Open(Config{Addr: srv.Addr(), User: "conc", PoolSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	stmt := p.Prepare("SELECT i FROM T WHERE i = ?")
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				want := int64(i%3 + 1)
				rows, err := stmt.Query(context.Background(), sqltypes.NewBigInt(want))
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if len(rows.Rows) != 1 || rows.Rows[0][0].Int() != want {
					t.Errorf("worker %d: rows %v", w, rows.Rows)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
