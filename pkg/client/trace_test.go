package client

import (
	"context"
	"fmt"
	"net"
	"testing"

	"repro/internal/server/wire"
)

// startV1Server runs a minimal fake server that only speaks protocol 1:
// it rejects any newer Hello with the typed protocol error (like a
// pre-tracing twmd build) and strictly decodes statement payloads, so a
// client that leaks a trace header onto the session fails loudly.
func startV1Server(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go serveV1Conn(nc)
		}
	}()
	return ln.Addr().String()
}

func serveV1Conn(nc net.Conn) {
	defer nc.Close()
	wc := wire.NewConn(nc)
	f, err := wc.Recv()
	if err != nil || f.Type != wire.MsgHello {
		return
	}
	hello, err := wire.DecodeHello(f.Payload)
	if err != nil {
		return
	}
	if hello.Version != wire.ProtocolV1 {
		wc.Send(wire.MsgError, wire.EncodeError(&wire.Error{
			Code:    wire.CodeProtocol,
			Message: fmt.Sprintf("protocol version %d not supported (server speaks 1)", hello.Version),
		}))
		return
	}
	wc.Send(wire.MsgWelcome, wire.EncodeWelcome(wire.Welcome{SessionID: 1, Server: "old/1", Proto: wire.ProtocolV1}))
	for {
		f, err := wc.Recv()
		if err != nil {
			return
		}
		switch f.Type {
		case wire.MsgQuery, wire.MsgExec:
			// Strict v1 decode: a trace header here is a protocol error,
			// exactly as an old server would treat the trailing bytes.
			if _, err := wire.DecodeStatement(f.Payload); err != nil {
				wc.Send(wire.MsgError, wire.EncodeError(&wire.Error{Code: wire.CodeProtocol, Message: err.Error()}))
				return
			}
			wc.Send(wire.MsgDone, wire.EncodeDone(wire.Done{Rows: 0}, wire.ProtocolV1))
		case wire.MsgPing:
			wc.Send(wire.MsgPong, nil)
		case wire.MsgClose:
			wc.Send(wire.MsgGoodbye, nil)
			return
		default:
			return
		}
	}
}

// TestNewClientOldServerDowngrade: a current client dialing a v1-only
// server must redial at protocol 1 and run statements without trace
// headers — the fake server's strict decoder proves none leak.
func TestNewClientOldServerDowngrade(t *testing.T) {
	addr := startV1Server(t)
	p, err := Open(Config{Addr: addr, User: "compat", PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ctx := context.Background()

	for i := 0; i < 2; i++ { // second statement reuses the pooled v1 conn
		rows, err := p.Query(ctx, "SELECT 1 FROM T")
		if err != nil {
			t.Fatalf("query %d over downgraded session: %v", i, err)
		}
		if rows.TraceID != "" {
			t.Fatalf("v1 session returned trace id %q", rows.TraceID)
		}
	}
}
