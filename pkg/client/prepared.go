package client

// Prepared statements over the wire: an explicit Stmt API for
// parameterized execution, plus the transparent auto-prepare path
// Pool.Query switches repeated SELECT texts onto. Handles are
// per-connection (the server scopes them to the session), so the pool
// never shares or replays a handle across connections — a retry on a
// fresh connection re-prepares from the SQL text.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/engine/sqltypes"
	"repro/internal/server/wire"
)

const (
	defaultAutoPrepareAfter = 2
	// maxPreparedPerConn bounds one connection's handles well under the
	// server's per-session limit; the least-recently-prepared is closed
	// to make room.
	maxPreparedPerConn = 32
	// maxTrackedStatements bounds the pool's statement-frequency map;
	// past it the counts reset (a workload with that many distinct
	// texts gets no benefit from preparing anyway).
	maxTrackedStatements = 4096
)

// notePrepareCandidate counts one execution of sql and reports whether
// it should run on the prepared path this time.
func (p *Pool) notePrepareCandidate(sql string) bool {
	if p.cfg.AutoPrepareAfter < 0 || !isIdempotentSelect(sql) {
		return false
	}
	p.stmtMu.Lock()
	defer p.stmtMu.Unlock()
	if len(p.stmtSeen) >= maxTrackedStatements {
		p.stmtSeen = nil
	}
	if p.stmtSeen == nil {
		p.stmtSeen = make(map[string]int)
	}
	p.stmtSeen[sql]++
	return p.stmtSeen[sql] > p.cfg.AutoPrepareAfter
}

// prepareRejected marks a server-side refusal to prepare (syntax or
// sema error, or a statement kind the planner won't prepare, like
// system-table reads). The connection is healthy; the transparent
// auto-prepare path falls back to a plain query on this error, while
// the explicit Stmt API surfaces it.
type prepareRejected struct{ err error }

func (e *prepareRejected) Error() string { return e.err.Error() }
func (e *prepareRejected) Unwrap() error { return e.err }

// notePrepareNever pins sql below the auto-prepare threshold forever;
// called when the server refuses to prepare it.
func (p *Pool) notePrepareNever(sql string) {
	p.stmtMu.Lock()
	defer p.stmtMu.Unlock()
	if p.stmtSeen == nil {
		p.stmtSeen = make(map[string]int)
	}
	p.stmtSeen[sql] = -1 << 30
}

// prepare returns this connection's handle for sql, preparing it on
// the server first if the connection doesn't hold one yet.
func (c *conn) prepare(ctx context.Context, sql string) (wire.PreparedInfo, error) {
	if pi, ok := c.prepared[sql]; ok {
		return pi, nil
	}
	if len(c.prepared) >= maxPreparedPerConn {
		for victim := range c.prepared {
			if err := c.closePrepared(ctx, victim); err != nil {
				return wire.PreparedInfo{}, err
			}
			break
		}
	}
	res, err := c.exchange(ctx, wire.MsgPrepare, wire.EncodePrepare(sql), nil)
	if err != nil {
		return wire.PreparedInfo{}, err
	}
	if res.prepared == nil {
		c.broken = true
		return wire.PreparedInfo{}, errors.New("client: server did not acknowledge prepare")
	}
	c.prepared[sql] = *res.prepared
	return *res.prepared, nil
}

// closePrepared releases this connection's handle for sql (no-op when
// it holds none).
func (c *conn) closePrepared(ctx context.Context, sql string) error {
	pi, ok := c.prepared[sql]
	if !ok {
		return nil
	}
	delete(c.prepared, sql)
	_, err := c.exchange(ctx, wire.MsgClosePrepared, wire.EncodeClosePrepared(pi.Handle), nil)
	return err
}

// execPrepared runs sql through PREPARE/EXECUTE on this connection,
// preparing on first use. A stale_plan rejection (DDL invalidated the
// server's plan, or the handle is gone) drops the handle and
// re-prepares once before giving up.
func (c *conn) execPrepared(ctx context.Context, sql string, args []sqltypes.Value, sink func(sqltypes.Row) error) (*Rows, error) {
	for attempt := 0; ; attempt++ {
		pi, err := c.prepare(ctx, sql)
		if err != nil {
			var we *wire.Error
			if errors.As(err, &we) {
				return nil, &prepareRejected{err}
			}
			return nil, err
		}
		if len(args) != pi.NumParams {
			return nil, fmt.Errorf("client: statement expects %d parameter(s), got %d", pi.NumParams, len(args))
		}
		payload, err := wire.EncodeExecPreparedTrace(pi.Handle, args, c.traceHeader(ctx))
		if err != nil {
			return nil, err
		}
		rows, err := c.exchange(ctx, wire.MsgExecPrepared, payload, sink)
		var we *wire.Error
		if err != nil && errors.As(err, &we) && we.Code == wire.CodeStalePlan && attempt == 0 {
			delete(c.prepared, sql)
			continue
		}
		return rows, err
	}
}

// Stmt is a statement prepared against the pool: Query binds `?`
// parameter values and executes on whichever connection is checked
// out, preparing lazily per connection. Safe for concurrent use.
type Stmt struct {
	p   *Pool
	sql string
}

// Prepare returns a statement handle for repeated parameterized
// execution. Planning happens lazily on first use of each pooled
// connection, so errors (syntax, unknown columns) surface from Query.
func (p *Pool) Prepare(sql string) *Stmt {
	return &Stmt{p: p, sql: sql}
}

// SQL returns the statement text.
func (s *Stmt) SQL() string { return s.sql }

// Query executes the statement with args bound to its `?` slots and
// materializes the result. Idempotent SELECTs retry on connection loss
// like Pool.Query; the fresh connection re-prepares automatically.
func (s *Stmt) Query(ctx context.Context, args ...sqltypes.Value) (*Rows, error) {
	return s.p.withRetry(ctx, isIdempotentSelect(s.sql), func(c *conn) (*Rows, error) {
		return c.execPrepared(ctx, s.sql, args, nil)
	})
}

// QueryStream executes the statement with args, delivering rows to
// sink as batches arrive. Never retried: rows may already have been
// delivered when a connection fails.
func (s *Stmt) QueryStream(ctx context.Context, sink func(sqltypes.Row) error, args ...sqltypes.Value) (*sqltypes.Schema, error) {
	c, err := s.p.get(ctx)
	if err != nil {
		return nil, err
	}
	res, err := c.execPrepared(ctx, s.sql, args, sink)
	s.p.release(c)
	if err != nil {
		return nil, err
	}
	return res.Schema, nil
}
