package client

import (
	"context"
	"testing"
	"time"
)

// TestRetrySleepJitterRange pins the jitter window: each backoff sleep
// lands in [backoff/2, backoff), never the full nominal period every
// time — a coordinator's shard sub-pools must not wake in lockstep
// against a recovering server.
func TestRetrySleepJitterRange(t *testing.T) {
	const backoff = 60 * time.Millisecond
	for i := 0; i < 8; i++ {
		start := time.Now()
		if err := retrySleep(context.Background(), backoff); err != nil {
			t.Fatalf("retrySleep: %v", err)
		}
		el := time.Since(start)
		// Lower bound minus scheduler slack; generous upper bound for
		// loaded CI runners.
		if el < backoff/2-5*time.Millisecond {
			t.Errorf("sleep %d woke after %v, before the %v jitter floor", i, el, backoff/2)
		}
		if el > backoff+250*time.Millisecond {
			t.Errorf("sleep %d took %v, way past the %v nominal backoff", i, el, backoff)
		}
	}
}

// TestRetrySleepHonorsDeadline caps the sleep at the context deadline:
// a statement with 50ms left must not sit out a 5s backoff.
func TestRetrySleepHonorsDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_ = retrySleep(ctx, 5*time.Second)
	if el := time.Since(start); el > time.Second {
		t.Fatalf("retrySleep held a 50ms-deadline context for %v", el)
	}

	// An already-expired deadline returns immediately with the context
	// error, without arming a timer at all.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	start = time.Now()
	if err := retrySleep(expired, time.Second); err == nil {
		t.Fatal("retrySleep returned nil on an expired context")
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("expired-context retrySleep took %v", el)
	}
}

// TestRetrySleepCancelMidSleep unblocks on cancellation, not timer
// expiry.
func TestRetrySleepCancelMidSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := retrySleep(ctx, 5*time.Second); err == nil {
		t.Fatal("cancelled retrySleep returned nil")
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("cancelled retrySleep took %v", el)
	}
}

// TestRetryDeadlineAgainstBouncedServer is the end-to-end regression:
// the pooled connection dies with the server, the automatic SELECT
// retry kicks in, and the statement's deadline bounds the whole retry
// dance — backoff sleeps included — instead of the nominal backoff
// schedule (2s + 4s + ...) running past it.
func TestRetryDeadlineAgainstBouncedServer(t *testing.T) {
	srv := startServerAt(t, "127.0.0.1:0")
	p, err := Open(Config{
		Addr: srv.Addr(), User: "deadline", PoolSize: 1,
		RetryBackoff:     2 * time.Second,
		RetryAttempts:    4,
		HealthCheckAfter: -1, // hand out the dead conn as-is
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if _, err := p.Query(context.Background(), "SELECT i FROM T"); err != nil {
		t.Fatalf("first query: %v", err)
	}
	srv.Close() // bounce down; nothing comes back up

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = p.Query(ctx, "SELECT i FROM T")
	el := time.Since(start)
	if err == nil {
		t.Fatal("query against a dead server succeeded")
	}
	if el > 1500*time.Millisecond {
		t.Fatalf("deadline-bounded retry took %v; the 2s backoff was not capped", el)
	}
}
