package statsudf

import (
	"strconv"
	"strings"
	"testing"
)

func TestImportCSVWithHeader(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	in := "id,amount,label\n1,2.5,apple\n2,3.25,pear\n3,,fig\n"
	n, err := d.ImportCSV("items", strings.NewReader(in), true)
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	res, err := d.Exec("SELECT id, amount, label FROM items ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.Rows[0][2].Str() != "apple" || res.Rows[1][1].MustFloat() != 3.25 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !res.Rows[2][1].IsNull() {
		t.Fatalf("empty field should be NULL: %v", res.Rows[2])
	}
	// Schema types were inferred.
	tab, _ := d.Engine().Table("items")
	s := tab.Schema()
	if s.Columns[0].Type.String() != "BIGINT" || s.Columns[1].Type.String() != "DOUBLE" || s.Columns[2].Type.String() != "VARCHAR" {
		t.Fatalf("schema = %v", s)
	}
}

func TestImportCSVNoHeader(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	n, err := d.ImportCSV("t", strings.NewReader("1.5,2\n2.5,3\n"), false)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	res, err := d.Exec("SELECT sum(c1), sum(c2) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].MustFloat() != 4 || res.Rows[0][1].MustFloat() != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestImportCSVReplacesExisting(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	if _, err := d.ImportCSV("t", strings.NewReader("1\n2\n3\n"), false); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ImportCSV("t", strings.NewReader("9\n"), false); err != nil {
		t.Fatal(err)
	}
	res, _ := d.Exec("SELECT count(*) FROM t")
	if v, _ := res.Value(); v.Int() != 1 {
		t.Fatalf("count = %v", v)
	}
}

func TestImportCSVErrors(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	cases := map[string]struct {
		in     string
		header bool
	}{
		"empty":             {"", false},
		"header only":       {"a,b\n", true},
		"ragged row":        {"1,2\n3\n", false},
		"bigint then real":  {"1\n2.5\n", false},
		"double then text":  {"1.5\nabc\n", false},
		"duplicate headers": {"a,a\n1,2\n", true},
	}
	for name, c := range cases {
		if _, err := d.ImportCSV("bad", strings.NewReader(c.in), c.header); err == nil {
			t.Errorf("%s: must fail", name)
		}
	}
}

func TestImportCSVThenModel(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	var b strings.Builder
	b.WriteString("i,X1,X2\n")
	for i := 0; i < 200; i++ {
		x := float64(i)
		b.WriteString(strings.Join([]string{
			itoa(i), ftoa(x), ftoa(2*x + 1),
		}, ","))
		b.WriteByte('\n')
	}
	if _, err := d.ImportCSV("X", strings.NewReader(b.String()), true); err != nil {
		t.Fatal(err)
	}
	m, err := d.Correlation("X", []string{"X1", "X2"})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) < 0.999 {
		t.Fatalf("rho = %g", m.At(0, 1))
	}
}

func itoa(i int) string { return strconv.Itoa(i) }

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
