package statsudf

// Benchmarks: one per paper table and figure (Tables 1-6, Figures
// 1-6). Each runs a representative configuration of the corresponding
// experiment at benchmark-friendly sizes; the full sweeps with the
// paper's exact grids live in cmd/bench (internal/harness).
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/engine/sqltypes"
	"repro/internal/extern"
	"repro/internal/odbcsim"
	"repro/internal/sqlgen"
)

const (
	benchN = 20000
	benchD = 32
	benchK = 16
)

// benchDB builds an on-disk database with the standard workload; the
// heavy setup runs outside the timed region.
func benchDB(b *testing.B, n, d int) *DB {
	b.Helper()
	db, err := Open(Options{Dir: b.TempDir(), Partitions: 8})
	if err != nil {
		b.Fatal(err)
	}
	if err := db.Generate("X", MixtureConfig{N: n, D: d, Seed: 2007}); err != nil {
		b.Fatal(err)
	}
	return db
}

func summarize(b *testing.B, db *DB, d int, method SummaryMethod, mt MatrixType) {
	b.Helper()
	if _, err := db.Summary("X", DimColumns(d), SummaryOptions{Method: method, Matrix: mt}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTable1 — total model-building time (summaries + model math)
// per implementation at d=32.
func BenchmarkTable1BuildModels(b *testing.B) {
	db := benchDB(b, benchN, benchD)
	exportPath := filepath.Join(b.TempDir(), "x.csv")
	exportTable(b, db, exportPath)

	buildFrom := func(s *NLQ) {
		if _, err := BuildCorrelationFrom(s); err != nil {
			b.Fatal(err)
		}
		if _, err := BuildPCAFrom(s, benchK, CorrelationBasis); err != nil {
			b.Fatal(err)
		}
		if _, err := BuildLinRegFrom(s); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("cpp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := os.Open(exportPath)
			if err != nil {
				b.Fatal(err)
			}
			s, err := extern.ComputeNLQ(f, benchD, extern.Options{SkipLeadingID: true})
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
			buildFrom(s)
		}
	})
	b.Run("sql", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := db.Summary("X", DimColumns(benchD), SummaryOptions{Method: ViaSQL})
			if err != nil {
				b.Fatal(err)
			}
			buildFrom(s)
		}
	})
	b.Run("udf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := db.Summary("X", DimColumns(benchD), SummaryOptions{Method: ViaUDF})
			if err != nil {
				b.Fatal(err)
			}
			buildFrom(s)
		}
	})
}

func exportTable(b *testing.B, db *DB, path string) {
	b.Helper()
	t, err := db.Engine().Table("X")
	if err != nil {
		b.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if _, err := odbcsim.Export(t, f, odbcsim.Config{}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTable2 — the n,L,Q kernel per implementation, plus the ODBC
// export itself.
func BenchmarkTable2SummaryKernels(b *testing.B) {
	db := benchDB(b, benchN, benchD)
	exportPath := filepath.Join(b.TempDir(), "x.csv")
	exportTable(b, db, exportPath)
	b.Run("cpp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := os.Open(exportPath)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := extern.ComputeNLQ(f, benchD, extern.Options{SkipLeadingID: true}); err != nil {
				b.Fatal(err)
			}
			f.Close()
		}
	})
	b.Run("sql", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			summarize(b, db, benchD, ViaSQL, Triangular)
		}
	})
	b.Run("udf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			summarize(b, db, benchD, ViaUDF, Triangular)
		}
	})
	b.Run("odbc-export", func(b *testing.B) {
		t, err := db.Engine().Table("X")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			f, err := os.Create(exportPath)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := odbcsim.Export(t, f, odbcsim.Config{}); err != nil {
				b.Fatal(err)
			}
			f.Close()
		}
	})
}

// BenchmarkTable3 — model construction given n, L, Q (no data access).
func BenchmarkTable3ModelsFromSummaries(b *testing.B) {
	db := benchDB(b, benchN, benchD)
	s, err := db.Summary("X", DimColumns(benchD), SummaryOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("correlation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BuildCorrelationFrom(s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("linreg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BuildLinRegFrom(s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pca", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BuildPCAFrom(s, benchK, CorrelationBasis); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// scoringDB builds a database with trained, stored models.
func scoringDB(b *testing.B, n, d, k int) *DB {
	b.Helper()
	db, err := Open(Options{Dir: b.TempDir(), Partitions: 8})
	if err != nil {
		b.Fatal(err)
	}
	beta := make([]float64, d)
	for a := range beta {
		beta[a] = float64(a%3) - 1
	}
	if err := db.GenerateRegression("X", MixtureConfig{N: n, D: d, Seed: 3}, 5, beta, 2); err != nil {
		b.Fatal(err)
	}
	reg, err := db.LinearRegression("X", DimColumns(d), "Y")
	if err != nil {
		b.Fatal(err)
	}
	if err := db.StoreRegression("BETA", reg); err != nil {
		b.Fatal(err)
	}
	pca, err := db.PCA("X", DimColumns(d), k, CorrelationBasis)
	if err != nil {
		b.Fatal(err)
	}
	if err := db.StorePCA("MU", "LAMBDA", pca); err != nil {
		b.Fatal(err)
	}
	km, err := db.KMeans("X", DimColumns(d), k, KMeansOptions{Seed: 5, Incremental: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := db.StoreKMeans("C", "R", "W", km); err != nil {
		b.Fatal(err)
	}
	return db
}

func streamDiscard(b *testing.B, db *DB, sql string) {
	b.Helper()
	if _, err := db.Engine().QueryStream(sql, func(sqltypes.Row) error { return nil }); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTable4 — scoring SQL vs UDF for the three techniques.
func BenchmarkTable4Scoring(b *testing.B) {
	db := scoringDB(b, benchN, benchD, benchK)
	dims := sqlgen.Dims(benchD)
	cases := []struct {
		name, sql string
	}{
		{"reg-sql", sqlgen.RegScoreSQL("X", "BETA", "i", dims)},
		{"reg-udf", sqlgen.RegScoreUDF("X", "BETA", "i", dims)},
		{"pca-sql", sqlgen.PCAScoreSQL("X", "MU", "LAMBDA", "i", dims, benchK)},
		{"pca-udf", sqlgen.PCAScoreUDF("X", "MU", "LAMBDA", "i", dims, benchK)},
		{"cluster-udf", sqlgen.ClusterScoreUDF("X", "C", "i", dims, benchK)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				streamDiscard(b, db, c.sql)
			}
		})
	}
	b.Run("cluster-sql", func(b *testing.B) {
		stmts := sqlgen.ClusterScoreSQL("X", "C", "XD", "i", dims, benchK)
		for i := 0; i < b.N; i++ {
			for _, s := range stmts[:len(stmts)-1] {
				if _, err := db.Exec(s); err != nil {
					b.Fatal(err)
				}
			}
			streamDiscard(b, db, stmts[len(stmts)-1])
		}
	})
}

// BenchmarkTable5 — the GROUP BY aggregate UDF, string vs list.
func BenchmarkTable5GroupBy(b *testing.B) {
	db := benchDB(b, benchN, benchD)
	for _, style := range []sqlgen.PassStyle{sqlgen.StringStyle, sqlgen.ListStyle} {
		b.Run(style.String(), func(b *testing.B) {
			sql := sqlgen.NLQUDFGroupQuery("X", sqlgen.Dims(benchD), core.Diagonal, style, "i % 8")
			for i := 0; i < b.N; i++ {
				if _, err := db.Exec(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable6 — blocked computation beyond MAX_d.
func BenchmarkTable6BlockedHighD(b *testing.B) {
	const d = 128 // 3 block calls
	db := benchDB(b, 5000, d)
	for i := 0; i < b.N; i++ {
		if _, err := db.Summary("X", DimColumns(d), SummaryOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1 — SQL vs UDF at low and high d (the crossover).
func BenchmarkFigure1SQLvsUDF(b *testing.B) {
	for _, d := range []int{8, 64} {
		db := benchDB(b, benchN, d)
		b.Run(fmt.Sprintf("sql-d%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				summarize(b, db, d, ViaSQL, Triangular)
			}
		})
		b.Run(fmt.Sprintf("udf-d%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				summarize(b, db, d, ViaUDF, Triangular)
			}
		})
	}
}

// BenchmarkFigure2 — growth in d for both implementations.
func BenchmarkFigure2VaryingD(b *testing.B) {
	for _, d := range []int{16, 32, 64} {
		db := benchDB(b, benchN/2, d)
		b.Run(fmt.Sprintf("sql-d%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				summarize(b, db, d, ViaSQL, Triangular)
			}
		})
		b.Run(fmt.Sprintf("udf-d%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				summarize(b, db, d, ViaUDF, Triangular)
			}
		})
	}
}

// BenchmarkFigure3 — parameter passing styles.
func BenchmarkFigure3ParameterPassing(b *testing.B) {
	db := benchDB(b, benchN, benchD)
	b.Run("string", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			summarize(b, db, benchD, ViaUDFString, Triangular)
		}
	})
	b.Run("list", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			summarize(b, db, benchD, ViaUDF, Triangular)
		}
	})
}

// BenchmarkFigure4 — diagonal vs triangular vs full matrices.
func BenchmarkFigure4MatrixTypes(b *testing.B) {
	db := benchDB(b, benchN, 64)
	for _, mt := range []MatrixType{Diagonal, Triangular, Full} {
		b.Run(mt.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				summarize(b, db, 64, ViaUDF, mt)
			}
		})
	}
}

// BenchmarkFigure5 — the UDF kernel across the n×d×type grid corners.
func BenchmarkFigure5Complexity(b *testing.B) {
	for _, cfg := range []struct{ n, d int }{{benchN / 2, 32}, {benchN, 32}, {benchN / 2, 64}, {benchN, 64}} {
		db := benchDB(b, cfg.n, cfg.d)
		for _, mt := range []MatrixType{Diagonal, Full} {
			b.Run(fmt.Sprintf("n%d-d%d-%s", cfg.n, cfg.d, mt), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					summarize(b, db, cfg.d, ViaUDF, mt)
				}
			})
		}
	}
}

// BenchmarkFigure6 — scoring throughput per technique.
func BenchmarkFigure6ScoringUDFs(b *testing.B) {
	db := scoringDB(b, benchN, benchD, benchK)
	dims := sqlgen.Dims(benchD)
	cases := []struct {
		name, sql string
	}{
		{"linreg", sqlgen.RegScoreUDF("X", "BETA", "i", dims)},
		{"pca", sqlgen.PCAScoreUDF("X", "MU", "LAMBDA", "i", dims, benchK)},
		{"clustering", sqlgen.ClusterScoreUDF("X", "C", "i", dims, benchK)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				streamDiscard(b, db, c.sql)
			}
		})
	}
}

// Micro-benchmarks of the core kernel: the per-row cost the aggregate
// UDF pays, for each matrix type (the paper's operation-count story).
func BenchmarkNLQUpdate(b *testing.B) {
	x := make([]float64, 64)
	for i := range x {
		x[i] = float64(i) * 1.1
	}
	for _, mt := range []MatrixType{Diagonal, Triangular, Full} {
		b.Run(mt.String(), func(b *testing.B) {
			s := core.MustNLQ(64, mt)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := s.Update(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPackUnpack — the packed-string result codec.
func BenchmarkPackUnpack(b *testing.B) {
	s := core.MustNLQ(32, Triangular)
	x := make([]float64, 32)
	for i := range x {
		x[i] = float64(i)
	}
	for i := 0; i < 100; i++ {
		s.Update(x)
	}
	b.Run("pack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = s.Pack()
		}
	})
	packed := s.Pack()
	b.Run("unpack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Unpack(packed); err != nil {
				b.Fatal(err)
			}
		}
	})
}
