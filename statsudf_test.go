package statsudf

import (
	"math"
	"testing"
)

func openTest(t *testing.T) *DB {
	t.Helper()
	d, err := Open(Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestOpenAndExec(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	if _, err := d.Exec("CREATE TABLE t (a DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("INSERT INTO t VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}
	res, err := d.Exec("SELECT sum(a) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Value()
	if err != nil || v.MustFloat() != 3 {
		t.Fatalf("%v %v", v, err)
	}
}

func TestGenerateAndSummaryMethodsAgree(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	if err := d.Generate("X", MixtureConfig{N: 400, D: 5, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	cols := DimColumns(5)
	base, err := d.Summary("X", cols, SummaryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if base.N != 400 {
		t.Fatalf("n = %g", base.N)
	}
	for _, method := range []SummaryMethod{ViaUDFString, ViaSQL} {
		s, err := d.Summary("X", cols, SummaryOptions{Method: method})
		if err != nil {
			t.Fatalf("method %v: %v", method, err)
		}
		if s.N != base.N {
			t.Fatalf("method %v: n = %g", method, s.N)
		}
		for a := 0; a < 5; a++ {
			if math.Abs(s.L[a]-base.L[a]) > 1e-6 {
				t.Fatalf("method %v: L[%d] mismatch", method, a)
			}
			for b := 0; b <= a; b++ {
				if math.Abs(s.QAt(a, b)-base.QAt(a, b)) > 1e-5 {
					t.Fatalf("method %v: Q[%d][%d] mismatch", method, a, b)
				}
			}
		}
	}
}

func TestSummaryWhere(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	if err := d.Generate("X", MixtureConfig{N: 100, D: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	s, err := d.Summary("X", DimColumns(2), SummaryOptions{Where: "i < 10"})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 {
		t.Fatalf("n = %g", s.N)
	}
	if _, err := d.Summary("X", DimColumns(2), SummaryOptions{Where: "i < 0"}); err == nil {
		t.Fatal("empty selection must surface an error")
	}
}

func TestBlockedSummaryHighD(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	const dims = MaxD + 16 // forces the blocked path
	if err := d.Generate("X", MixtureConfig{N: 60, D: dims, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	s, err := d.Summary("X", DimColumns(dims), SummaryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.D != dims || s.N != 60 {
		t.Fatalf("d=%d n=%g", s.D, s.N)
	}
	// Spot-check against a direct recomputation through SQL sums.
	res, err := d.Exec("SELECT sum(X1), sum(X1*X80) FROM X")
	if err != nil {
		t.Fatal(err)
	}
	l1 := res.Rows[0][0].MustFloat()
	q := res.Rows[0][1].MustFloat()
	if math.Abs(s.L[0]-l1) > 1e-6 || math.Abs(s.QAt(0, 79)-q) > 1e-5 {
		t.Fatalf("blocked summary mismatch: %g vs %g, %g vs %g", s.L[0], l1, s.QAt(0, 79), q)
	}
	// SQL/string methods refuse high d.
	if _, err := d.Summary("X", DimColumns(dims), SummaryOptions{Method: ViaSQL}); err == nil {
		t.Fatal("SQL method must reject d > MaxD")
	}
}

func TestGroupedSummary(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	if err := d.Generate("X", MixtureConfig{N: 90, D: 3, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	groups, err := d.GroupedSummary("X", DimColumns(3), Diagonal, "i % 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("%d groups", len(groups))
	}
	var total float64
	for _, s := range groups {
		total += s.N
	}
	if total != 90 {
		t.Fatalf("group sizes sum to %g", total)
	}
}

func TestCorrelationFacade(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	if err := d.Generate("X", MixtureConfig{N: 500, D: 4, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	m, err := d.Correlation("X", DimColumns(4))
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		if math.Abs(m.At(a, a)-1) > 1e-9 {
			t.Fatalf("rho[%d][%d] = %g", a, a, m.At(a, a))
		}
	}
}

func TestLinearRegressionFacade(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	beta := []float64{1.5, -2}
	if err := d.GenerateRegression("XY", MixtureConfig{N: 3000, D: 2, Seed: 5}, 4, beta, 0.2); err != nil {
		t.Fatal(err)
	}
	m, err := d.LinearRegression("XY", DimColumns(2), "Y")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Beta[0]-4) > 0.1 || math.Abs(m.Beta[1]-1.5) > 0.01 || math.Abs(m.Beta[2]+2) > 0.01 {
		t.Fatalf("beta = %v", m.Beta)
	}
	if !m.HasFit || m.R2 < 0.99 {
		t.Fatalf("fit stats: HasFit=%v R²=%g", m.HasFit, m.R2)
	}
}

func TestPCAAndFactorFacade(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	if err := d.Generate("X", MixtureConfig{N: 800, D: 6, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	pca, err := d.PCA("X", DimColumns(6), 3, CorrelationBasis)
	if err != nil {
		t.Fatal(err)
	}
	if pca.K != 3 || pca.ExplainedVariance() <= 0 {
		t.Fatalf("pca = %+v", pca)
	}
	fa, err := d.FactorAnalysis("X", DimColumns(6), 2, FactorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fa.K != 2 {
		t.Fatalf("fa = %+v", fa)
	}
}

func TestClusteringFacade(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	if err := d.Generate("X", MixtureConfig{N: 600, D: 3, K: 4, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	km, err := d.KMeans("X", DimColumns(3), 4, KMeansOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wsum float64
	for _, w := range km.W {
		wsum += w
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("weights sum to %g", wsum)
	}
	em, err := d.EMCluster("X", DimColumns(3), 4, EMOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if em.K != 4 {
		t.Fatalf("em = %+v", em)
	}
}

func TestSummaryOverView(t *testing.T) {
	// §3.6's scenario: X is a view deriving dimensions from base
	// tables; the one-scan summary UDF runs over it transparently.
	d := openTest(t)
	defer d.Close()
	if _, err := d.Exec("CREATE TABLE raw (i BIGINT, v DOUBLE, kind VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		kind := "a"
		if i%2 == 0 {
			kind = "b"
		}
		sql := "INSERT INTO raw VALUES (" +
			itoa(i) + ", " + ftoa(float64(i)) + ", '" + kind + "')"
		if _, err := d.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Exec(`CREATE VIEW X AS SELECT
		v AS X1,
		v * v AS X2,
		CASE WHEN kind = 'a' THEN 1.0 ELSE 0.0 END AS X3
		FROM raw`); err != nil {
		t.Fatal(err)
	}
	s, err := d.Summary("X", DimColumns(3), SummaryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 50 {
		t.Fatalf("n = %g", s.N)
	}
	// L1 = Σi = 1225; L3 = #odd = 25.
	if s.L[0] != 1225 || s.L[2] != 25 {
		t.Fatalf("L = %v", s.L)
	}
	// Models build over view summaries like any other.
	if _, err := BuildCorrelationFrom(s); err != nil {
		t.Fatal(err)
	}
	// The SQL path works over the view too.
	s2, err := d.Summary("X", DimColumns(3), SummaryOptions{Method: ViaSQL})
	if err != nil {
		t.Fatal(err)
	}
	if s2.N != s.N || s2.L[0] != s.L[0] {
		t.Fatalf("SQL-over-view mismatch: %v vs %v", s2.L, s.L)
	}
}

func TestReopenDatabaseDirectory(t *testing.T) {
	// The TWM workflow: one process generates data and stores a model,
	// a later process reopens the directory and scores with it.
	dir := t.TempDir()
	d1, err := Open(Options{Dir: dir, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	beta := []float64{2, -1}
	if err := d1.GenerateRegression("X", MixtureConfig{N: 500, D: 2, Seed: 8}, 3, beta, 0.5); err != nil {
		t.Fatal(err)
	}
	m, err := d1.LinearRegression("X", DimColumns(2), "Y")
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.StoreRegression("BETA", m); err != nil {
		t.Fatal(err)
	}
	d1.Close()

	d2, err := Open(Options{Dir: dir, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	n, err := d2.ScoreRegression("X", "i", DimColumns(2), "BETA", "OUT")
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("scored %d rows after reopen", n)
	}
	// The summaries over the reattached table match the stored model.
	m2, err := d2.LoadRegression("BETA")
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Beta {
		if m.Beta[i] != m2.Beta[i] {
			t.Fatalf("beta changed across processes")
		}
	}
}

func TestFacadeErrors(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	if _, err := d.Summary("missing", DimColumns(2), SummaryOptions{}); err == nil {
		t.Fatal("missing table must fail")
	}
	if _, err := d.Summary("missing", nil, SummaryOptions{}); err == nil {
		t.Fatal("no columns must fail")
	}
	if err := d.Generate("X", MixtureConfig{N: 10, D: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Correlation("X", []string{"nope"}); err == nil {
		t.Fatal("bad column must fail")
	}
	if _, err := d.KMeans("X", []string{"nope"}, 2, KMeansOptions{}); err == nil {
		t.Fatal("bad column must fail")
	}
}
