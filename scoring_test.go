package statsudf

import (
	"math"
	"testing"
)

func TestFactorAnalysisScoringInEngine(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	if err := d.Generate("X", MixtureConfig{N: 1000, D: 5, Seed: 21}); err != nil {
		t.Fatal(err)
	}
	cols := DimColumns(5)
	fa, err := d.FactorAnalysis("X", cols, 2, FactorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.StoreFactorAnalysis("FMU", "FLAMBDA", fa); err != nil {
		t.Fatal(err)
	}
	n, err := d.ScoreFactorAnalysis("X", "i", cols, "FMU", "FLAMBDA", "FSCORES", 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("scored %d rows", n)
	}
	// In-engine fascore scores must equal the client-side posterior
	// means for every row.
	res, err := d.Exec("SELECT FSCORES.i, p1, p2, X1, X2, X3, X4, X5 FROM FSCORES CROSS JOIN X WHERE FSCORES.i = X.i")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1000 {
		t.Fatalf("join returned %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		x := make([]float64, 5)
		for a := 0; a < 5; a++ {
			x[a] = r[3+a].MustFloat()
		}
		want, err := fa.Score(x)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 2; j++ {
			got := r[1+j].MustFloat()
			if math.Abs(got-want[j]) > 1e-9 {
				t.Fatalf("row %v factor %d: engine=%g client=%g", r[0], j, got, want[j])
			}
		}
	}
}

func TestScoreOutputsReplacePriorRuns(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	beta := []float64{1, 1}
	if err := d.GenerateRegression("X", MixtureConfig{N: 100, D: 2, Seed: 1}, 0, beta, 0.1); err != nil {
		t.Fatal(err)
	}
	m, err := d.LinearRegression("X", DimColumns(2), "Y")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.StoreRegression("BETA", m); err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		n, err := d.ScoreRegression("X", "i", DimColumns(2), "BETA", "OUT")
		if err != nil {
			t.Fatal(err)
		}
		if n != 100 {
			t.Fatalf("run %d scored %d", run, n)
		}
	}
	res, _ := d.Exec("SELECT count(*) FROM OUT")
	if v, _ := res.Value(); v.Int() != 100 {
		t.Fatalf("OUT has %v rows after two runs (must replace)", v)
	}
}

func TestKMeansInEngine(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	// Well-separated clusters so the in-engine loop must find them.
	if err := d.Generate("X", MixtureConfig{N: 900, D: 3, K: 3, Noise: 0.01, SD: 2, Seed: 33}); err != nil {
		t.Fatal(err)
	}
	cols := DimColumns(3)
	m, err := d.KMeansInEngine("X", cols, 3, 8, 1, "C", "R", "W")
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 3 || m.D != 3 {
		t.Fatalf("model shape: %+v", m)
	}
	var wsum float64
	for _, w := range m.W {
		wsum += w
		if w <= 0 {
			t.Fatalf("weights = %v", m.W)
		}
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("weights sum to %g", wsum)
	}
	// The in-engine result must closely agree with the client-side
	// K-means on the same data and seed.
	ref, err := d.KMeans("X", cols, 3, KMeansOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ref.C {
		j, dist := m.Closest(c)
		if dist > 4 {
			t.Fatalf("in-engine centroid %d (%v) far from client centroid %v (d²=%g)", j, m.C[j], c, dist)
		}
	}
	// The stored C/R/W tables hold the final model.
	loaded, err := d.LoadKMeans("C", "R", "W")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.K != 3 || loaded.W[0] != m.W[0] {
		t.Fatalf("stored model differs: %+v", loaded)
	}
	// Validation.
	if _, err := d.KMeansInEngine("X", cols, 0, 1, 1, "C", "R", "W"); err == nil {
		t.Fatal("k=0 must fail")
	}
}

func TestLoadedModelsScoreIdentically(t *testing.T) {
	d := openTest(t)
	defer d.Close()
	if err := d.Generate("X", MixtureConfig{N: 400, D: 3, K: 3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	cols := DimColumns(3)
	km, err := d.KMeans("X", cols, 3, KMeansOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.StoreKMeans("C", "R", "W", km); err != nil {
		t.Fatal(err)
	}
	loaded, err := d.LoadKMeans("C", "R", "W")
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{km.C[1][0] + 0.1, km.C[1][1], km.C[1][2]}
	j1, _ := km.Closest(probe)
	j2, _ := loaded.Closest(probe)
	if j1 != j2 {
		t.Fatalf("closest differs: %d vs %d", j1, j2)
	}
	reg := &LinRegModel{D: 2, Beta: []float64{1, 2, 3}}
	if err := d.StoreRegression("B2", reg); err != nil {
		t.Fatal(err)
	}
	back, err := d.LoadRegression("B2")
	if err != nil {
		t.Fatal(err)
	}
	y1, _ := Predict(reg, []float64{1, 1})
	y2, _ := Predict(back, []float64{1, 1})
	if y1 != y2 || y1 != 6 {
		t.Fatalf("predictions differ: %g vs %g", y1, y2)
	}
}
