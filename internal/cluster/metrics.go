package cluster

import "repro/internal/engine/obs"

// Coordinator instruments, on the process-wide registry so a
// coordinator's sys.metrics (and /metrics endpoint) reports its
// fan-out behavior next to the engine and client counters.
var (
	fanouts = obs.Default.Counter("engine_cluster_fanouts_total",
		"Statements fanned out by the coordinator to the shard fleet.")
	partialsMerged = obs.Default.Counter("engine_cluster_partials_merged_total",
		"Per-shard partial results merged on the coordinator.")
	shardErrors = obs.Default.Counter("engine_cluster_shard_errors_total",
		"Shard calls failed with a transport error (statement saw shard_unavailable).")
	shardsDown = obs.Default.Gauge("engine_cluster_shards_down",
		"Shards currently marked down by the coordinator health tracker.")
	gatherRows = obs.Default.Counter("engine_cluster_gather_rows_total",
		"Rows pulled to the coordinator by general-path (non-push-down) statements.")
	pushdownStatements = obs.Default.Counter("engine_cluster_pushdown_statements_total",
		"Statements served entirely by push-down partial aggregation or row concatenation.")
)
