// Package cluster is the engine's distributed scale-out layer: a
// coordinator that fronts N twmd shard nodes behind the same wire
// protocol surface a single node serves. The paper's numbers came from
// a 4-node shared-nothing Teradata system; this package reproduces
// that architecture on top of the pieces PRs 4-8 built — the versioned
// wire protocol, the pooled retrying client, additively mergeable
// n/L/Q partials and the epoch-stamped summary cache.
//
// The design follows the paper's (and MADlib's/Bismarck's) split:
//
//   - Rows live on the shards, round-robin-assigned over a cluster-wide
//     logical partition space of which each shard owns one contiguous
//     range (the ShardMap). Rows never move after insert.
//   - Model builds push the scan down: the coordinator sends each shard
//     the same aggregate statement (or a protocol-3 Summary frame that
//     reuses the shard's summary-cache read path) and merges the
//     finalized partials exactly as the in-process merge phase does —
//     n/L/Q merge additively, COUNT/SUM sum, MIN/MAX compare, AVG is
//     rewritten to SUM+COUNT and finished on the coordinator.
//   - Everything the push-down classifier cannot prove mergeable —
//     joins, ORDER BY/LIMIT, GROUP BY, DISTINCT — takes the general
//     path: the referenced tables' rows are gathered from the shards
//     into in-memory partition tables and the unmodified statement
//     runs on the coordinator's own executor, so correctness never
//     depends on the classifier being clever.
//   - Scoring INSERT…SELECT runs its SELECT through the same dispatch,
//     then fans the result rows back out to their owning shards.
//
// DDL broadcasts to every shard and mirrors into the coordinator's
// local catalog (which also serves sys.* views and holds the shard
// map's sys.shards table). Partial failure surfaces as the typed
// shard_unavailable wire error; repeated transport failures mark a
// shard down — failing fast instead of hammering it — until the
// background prober's ping revives it.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine/db"
	"repro/internal/engine/exec"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/trace"
	"repro/internal/server/wire"
	"repro/pkg/client"
)

// Config tunes a Coordinator.
type Config struct {
	// Shards are the shard nodes' wire-protocol addresses, in shard-id
	// order. Required, at least one.
	Shards []string
	// Partitions is the cluster-wide logical partition count rows
	// round-robin over (rounded up to a multiple of len(Shards));
	// zero selects 4 logical partitions per shard.
	Partitions int
	// User is reported in each shard's sys.sessions. Default
	// "coordinator".
	User string
	// PoolSize bounds each per-shard sub-pool. Default 4.
	PoolSize int
	// ProbeInterval is how often the background prober pings
	// marked-down shards. Default 500ms.
	ProbeInterval time.Duration
}

// Coordinator fans statements out across a shard fleet. It implements
// the serving layer's Engine interface, so `twmd -coordinator` serves
// it with the exact session/admission/tracing machinery a single node
// gets.
type Coordinator struct {
	local  *db.DB // catalog mirror, sys.* views, statement observation
	shards *ShardMap
	cfg    Config

	// ctrMu guards rowCtr, the per-table round-robin cursor that
	// mirrors the storage layer's insert placement across the cluster's
	// logical partition space.
	ctrMu  sync.Mutex
	rowCtr map[string]int64

	probeCancel context.CancelFunc
	probeWG     sync.WaitGroup
}

// New builds a coordinator over the shard fleet, mirroring its catalog
// into local (an empty engine instance that also serves the sys.*
// views). The sys.shards virtual table is registered on local, and the
// health prober starts immediately.
func New(local *db.DB, cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: Config.Shards required")
	}
	if cfg.User == "" {
		cfg.User = "coordinator"
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 4 * len(cfg.Shards)
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	m, err := newShardMap(cfg.Shards, cfg.Partitions, func(addr string) (*client.Pool, error) {
		return client.Open(client.Config{Addr: addr, User: cfg.User, PoolSize: cfg.PoolSize})
	})
	if err != nil {
		return nil, err
	}
	c := &Coordinator{local: local, shards: m, cfg: cfg, rowCtr: make(map[string]int64)}
	if err := local.RegisterSysTable("sys.shards", m.sysShards); err != nil {
		m.close()
		return nil, err
	}
	pctx, cancel := context.WithCancel(context.Background())
	c.probeCancel = cancel
	c.probeWG.Add(1)
	go c.probeLoop(pctx)
	return c, nil
}

// probeLoop pings marked-down shards until Close.
func (c *Coordinator) probeLoop(ctx context.Context) {
	defer c.probeWG.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.shards.probe(ctx, c.cfg.ProbeInterval)
		}
	}
}

// Close stops the prober and releases every shard pool. The local
// catalog instance stays open (its owner closes it).
func (c *Coordinator) Close() error {
	c.probeCancel()
	c.probeWG.Wait()
	c.shards.close()
	return nil
}

// Shards reports the fleet size.
func (c *Coordinator) Shards() int { return c.shards.len() }

// --- server.Engine surface ---

// RegisterSysTable delegates to the local catalog instance, which
// serves every sys.* scan (the serving layer registers sys.sessions
// here).
func (c *Coordinator) RegisterSysTable(name string, fn db.SysTableFunc) error {
	return c.local.RegisterSysTable(name, fn)
}

// Traces is the coordinator-side trace store; shard-side spans live in
// each shard's own store under the same trace IDs (the sub-pools
// propagate the statement's trace context in the wire header).
func (c *Coordinator) Traces() *trace.Store { return c.local.Traces() }

// PrepareContext declines: the coordinator re-plans every statement
// because shard health and the push-down shape can change between
// executions. The typed error makes pooled clients fall back to plain
// queries transparently.
func (c *Coordinator) PrepareContext(ctx context.Context, sql string) (*db.Prepared, error) {
	return nil, &wire.Error{Code: wire.CodeInternal, Message: "cluster: coordinator does not support PREPARE; run the statement directly"}
}

// ExecScriptContext runs a semicolon-separated script statement by
// statement, returning the last result.
func (c *Coordinator) ExecScriptContext(ctx context.Context, sql string) (*exec.Result, error) {
	stmts, err := sqlparser.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	var last *exec.Result
	for _, stmt := range stmts {
		if last, err = c.RunContext(ctx, stmt); err != nil {
			return nil, err
		}
	}
	return last, nil
}

// QueryStreamContext materializes the statement through the cluster
// dispatch and replays its rows into sink. The coordinator merges
// whole partials rather than streaming rows, so "streaming" here is a
// replay — result sets crossing the coordinator are small by design
// (aggregates and scored rows, never base-table scans).
func (c *Coordinator) QueryStreamContext(ctx context.Context, sql string, sink exec.RowSink) (*sqltypes.Schema, *exec.Stats, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	res, err := c.RunContext(ctx, stmt)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range res.Rows {
		if err := sink(r); err != nil {
			return nil, nil, err
		}
	}
	return res.Schema, res.Stats, nil
}

// RunContext dispatches one parsed statement.
func (c *Coordinator) RunContext(ctx context.Context, stmt sqlparser.Statement) (*exec.Result, error) {
	switch st := stmt.(type) {
	case *sqlparser.Select:
		if localOnly(st) {
			// Pure sys.* (or FROM-less) selects never touch the fleet;
			// the local instance serves and observes them.
			return c.local.RunContext(ctx, stmt)
		}
		return c.observed(ctx, stmt, func() (*exec.Result, error) { return c.runSelect(ctx, st) })
	case *sqlparser.Insert:
		return c.observed(ctx, stmt, func() (*exec.Result, error) { return c.runInsert(ctx, st) })
	case *sqlparser.CreateTable, *sqlparser.DropTable:
		return c.runDDL(ctx, stmt)
	case *sqlparser.CreateView, *sqlparser.DropView:
		return nil, errors.New("cluster: views are not supported in coordinator mode")
	default:
		return nil, fmt.Errorf("cluster: unsupported statement type %T in coordinator mode", stmt)
	}
}

// observed runs fn and records the statement — with its hand-built
// coordinator→shard span tree — in the local instance's query ring and
// trace store, exactly as an in-process statement would be.
func (c *Coordinator) observed(ctx context.Context, stmt sqlparser.Statement, fn func() (*exec.Result, error)) (*exec.Result, error) {
	start := time.Now()
	res, err := fn()
	var st *exec.Stats
	if res != nil {
		st = res.Stats
	}
	c.local.ObserveStatement(ctx, stmtText(stmt), start, st, err)
	return res, err
}

// runDDL mirrors a CREATE/DROP into the local catalog first (cheap
// validation, and the mirror is what sema and the gather path bind
// against), then broadcasts it to every shard. DDL is not atomic
// across the fleet: a mid-broadcast failure leaves shards that already
// applied it — rerun the statement (IF NOT EXISTS / IF EXISTS make
// that idempotent) once the fleet is healthy.
func (c *Coordinator) runDDL(ctx context.Context, stmt sqlparser.Statement) (*exec.Result, error) {
	res, err := c.local.RunContext(ctx, stmt)
	if err != nil {
		return nil, err
	}
	sql := stmtText(stmt)
	if _, err := c.fanout(ctx, "ddl broadcast", func(ctx context.Context, i int) (int64, error) {
		_, err := c.shards.pool(i).Exec(ctx, sql)
		return 0, err
	}); err != nil {
		return nil, fmt.Errorf("cluster: DDL applied on coordinator but failed on the fleet (rerun when healthy): %w", err)
	}
	// A dropped table's round-robin cursor must not leak into a
	// recreated table of the same name.
	if dt, ok := stmt.(*sqlparser.DropTable); ok {
		c.ctrMu.Lock()
		delete(c.rowCtr, strings.ToLower(dt.Name))
		c.ctrMu.Unlock()
	}
	return res, nil
}

// SummaryNLQ fans the protocol-3 Summary frame out to every shard —
// each serves its local cache-first n/L/Q read path — and merges the
// partials additively. hit reports whether every shard answered from
// its cache (zero scans fleet-wide).
func (c *Coordinator) SummaryNLQ(ctx context.Context, table string, cols []string, mt core.MatrixType) (*core.NLQ, bool, error) {
	if strings.HasPrefix(strings.ToLower(table), "sys.") {
		return nil, false, fmt.Errorf("cluster: no summaries over system table %q", table)
	}
	n := c.shards.len()
	partials := make([]*core.NLQ, n)
	hits := make([]bool, n)
	if _, err := c.fanout(ctx, "summary fanout", func(ctx context.Context, i int) (int64, error) {
		s, hit, err := c.shards.pool(i).Summary(ctx, table, cols, mt)
		if err != nil {
			return 0, err
		}
		partials[i], hits[i] = s, hit
		return 0, nil
	}); err != nil {
		return nil, false, err
	}
	var merged *core.NLQ
	hit := true
	for i := 0; i < n; i++ {
		hit = hit && hits[i]
		if partials[i] == nil {
			continue
		}
		if merged == nil {
			merged = partials[i].Clone()
			continue
		}
		if err := merged.Merge(partials[i]); err != nil {
			return nil, false, err
		}
		partialsMerged.Inc()
	}
	if merged == nil {
		// Every shard's slice is empty; serve the empty-table summary
		// from the (equally empty) local mirror so the shape matches
		// the single-node answer.
		return c.local.SummaryNLQ(ctx, table, cols, mt)
	}
	return merged, hit, nil
}

// localOnly reports whether a select touches no shard data: constant
// selects and pure sys.* reads.
func localOnly(sel *sqlparser.Select) bool {
	if len(sel.From) == 0 {
		return true
	}
	for _, ref := range sel.From {
		if !strings.HasPrefix(strings.ToLower(ref.Name), "sys.") {
			return false
		}
	}
	return true
}

// runSelect dispatches a shard-touching SELECT: push-down when the
// classifier proves the shape mergeable, the general gather path
// otherwise.
func (c *Coordinator) runSelect(ctx context.Context, sel *sqlparser.Select) (*exec.Result, error) {
	if plan, ok := c.planPushdown(sel); ok {
		res, err := c.runPushdown(ctx, sel, plan)
		if err == nil {
			pushdownStatements.Inc()
		}
		return res, err
	}
	return c.runGather(ctx, sel)
}

// stmtText renders a statement back to SQL, preferring the original
// source when the parser recorded it. Only the statement kinds the
// coordinator dispatches need synthetic rendering.
func stmtText(stmt sqlparser.Statement) string {
	if src := sqlparser.StatementSource(stmt); src != "" {
		return src
	}
	switch st := stmt.(type) {
	case *sqlparser.Select:
		return st.String()
	case *sqlparser.CreateTable:
		var b strings.Builder
		b.WriteString("CREATE TABLE ")
		if st.IfNotExists {
			b.WriteString("IF NOT EXISTS ")
		}
		b.WriteString(st.Name + " (")
		for i, col := range st.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(col.Name + " " + col.Type)
		}
		b.WriteString(")")
		return b.String()
	case *sqlparser.DropTable:
		if st.IfExists {
			return "DROP TABLE IF EXISTS " + st.Name
		}
		return "DROP TABLE " + st.Name
	case *sqlparser.Insert:
		var b strings.Builder
		b.WriteString("INSERT INTO " + st.Table)
		if len(st.Columns) > 0 {
			b.WriteString(" (" + strings.Join(st.Columns, ", ") + ")")
		}
		if st.Query != nil {
			b.WriteString(" " + st.Query.String())
			return b.String()
		}
		b.WriteString(" VALUES ")
		for i, row := range st.Rows {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("(")
			for j, e := range row {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(e.String())
			}
			b.WriteString(")")
		}
		return b.String()
	}
	return fmt.Sprintf("<%T>", stmt)
}
