package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/engine/sqltypes"
	"repro/pkg/client"
)

// markDownAfter is how many consecutive transport failures a shard
// sustains before the map marks it down. Marked-down shards fail fast
// with the typed shard_unavailable error — no dial, no retry storm —
// until the background prober's ping succeeds again.
const markDownAfter = 3

// shardInfo is one node's row in the map: its address, the contiguous
// range of logical partitions it owns, and its health accounting.
type shardInfo struct {
	ID   int
	Addr string
	// FirstPart/LastPart delimit the shard's partition range
	// [FirstPart, LastPart] in the cluster-wide logical partition
	// space; rows round-robin over that space, so equal ranges mean
	// equal row counts, the paper's AMP balance.
	FirstPart int
	LastPart  int

	Down        bool
	ConsecFails int
	LastErr     string
	DownSince   time.Time
}

// ShardMap is the coordinator's cluster membership catalog: the shard
// fleet, the partition-range assignment, and per-shard health driven
// by transport errors. All mutable state lives behind mu; pools are
// internally synchronized and never replaced after New.
//
//statlint:guards mu
type ShardMap struct {
	parts int // cluster-wide logical partition count

	mu     sync.RWMutex
	shards []shardInfo

	pools []*client.Pool // index-aligned with shards; immutable
}

// newShardMap builds the map over the given addresses, assigning each
// shard an equal contiguous partition range out of parts logical
// partitions (parts is rounded up to a multiple of len(addrs)).
func newShardMap(addrs []string, parts int, mkPool func(addr string) (*client.Pool, error)) (*ShardMap, error) {
	n := len(addrs)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no shards given")
	}
	if parts < n {
		parts = n
	}
	if rem := parts % n; rem != 0 {
		parts += n - rem
	}
	m := &ShardMap{parts: parts}
	per := parts / n
	for i, addr := range addrs {
		pool, err := mkPool(addr)
		if err != nil {
			for _, p := range m.pools {
				p.Close()
			}
			return nil, err
		}
		m.pools = append(m.pools, pool)
		m.shards = append(m.shards, shardInfo{
			ID:        i,
			Addr:      addr,
			FirstPart: i * per,
			LastPart:  (i+1)*per - 1,
		})
	}
	return m, nil
}

// close releases every shard pool.
func (m *ShardMap) close() {
	for _, p := range m.pools {
		p.Close()
	}
}

// len is the shard count.
func (m *ShardMap) len() int { return len(m.pools) }

// partitions is the cluster-wide logical partition count.
func (m *ShardMap) partitions() int { return m.parts }

// owner maps a logical partition to the shard owning its range.
func (m *ShardMap) owner(part int) int {
	per := m.parts / len(m.pools)
	return part / per
}

// pool returns shard i's connection pool.
func (m *ShardMap) pool(i int) *client.Pool { return m.pools[i] }

// addr returns shard i's address.
func (m *ShardMap) addr(i int) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.shards[i].Addr
}

// available reports whether shard i is currently serving (not marked
// down).
func (m *ShardMap) available(i int) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return !m.shards[i].Down
}

// noteFailure records one transport failure against shard i, marking
// it down at the threshold. It reports whether the shard is now down.
func (m *ShardMap) noteFailure(i int, err error) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &m.shards[i]
	s.ConsecFails++
	s.LastErr = err.Error()
	if !s.Down && s.ConsecFails >= markDownAfter {
		s.Down = true
		s.DownSince = time.Now()
		shardsDown.Inc()
	}
	return s.Down
}

// noteSuccess clears shard i's failure streak, reviving it if it was
// marked down.
func (m *ShardMap) noteSuccess(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &m.shards[i]
	if s.Down {
		s.Down = false
		s.DownSince = time.Time{}
		shardsDown.Dec()
	}
	s.ConsecFails = 0
	s.LastErr = ""
}

// snapshot copies the shard rows for sys.shards.
func (m *ShardMap) snapshot() []shardInfo {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]shardInfo, len(m.shards))
	copy(out, m.shards)
	return out
}

// downShards lists the ids currently marked down (the prober's work
// list).
func (m *ShardMap) downShards() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []int
	for i := range m.shards {
		if m.shards[i].Down {
			out = append(out, i)
		}
	}
	return out
}

// probe pings every down shard once, reviving those that answer.
func (m *ShardMap) probe(ctx context.Context, timeout time.Duration) {
	for _, i := range m.downShards() {
		pctx, cancel := context.WithTimeout(ctx, timeout)
		err := m.pools[i].Ping(pctx)
		cancel()
		if err == nil {
			m.noteSuccess(i)
		}
	}
}

// sysShards materializes the sys.shards virtual table: one row per
// shard with its range, health state and failure accounting.
func (m *ShardMap) sysShards() (cols []sqltypes.Column, rows []sqltypes.Row, err error) {
	cols = []sqltypes.Column{
		{Name: "shard_id", Type: sqltypes.TypeBigInt},
		{Name: "addr", Type: sqltypes.TypeVarChar},
		{Name: "first_partition", Type: sqltypes.TypeBigInt},
		{Name: "last_partition", Type: sqltypes.TypeBigInt},
		{Name: "state", Type: sqltypes.TypeVarChar},
		{Name: "consecutive_failures", Type: sqltypes.TypeBigInt},
		{Name: "last_error", Type: sqltypes.TypeVarChar},
		{Name: "down_since", Type: sqltypes.TypeVarChar},
	}
	for _, s := range m.snapshot() {
		state := "up"
		downSince := ""
		if s.Down {
			state = "down"
			downSince = s.DownSince.Format(time.RFC3339Nano)
		}
		rows = append(rows, sqltypes.Row{
			sqltypes.NewBigInt(int64(s.ID)),
			sqltypes.NewVarChar(s.Addr),
			sqltypes.NewBigInt(int64(s.FirstPart)),
			sqltypes.NewBigInt(int64(s.LastPart)),
			sqltypes.NewVarChar(state),
			sqltypes.NewBigInt(int64(s.ConsecFails)),
			sqltypes.NewVarChar(s.LastErr),
			sqltypes.NewVarChar(downSince),
		})
	}
	return cols, rows, nil
}
