package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/engine/exec"
	"repro/internal/server/wire"
)

// shardUnavailable wraps a transport failure against one shard in the
// typed wire error clients switch on. Statement-level errors a shard
// itself reported (*wire.Error) are never wrapped — a sema rejection
// on shard 2 is the statement's error, not a cluster fault.
func shardUnavailable(id int, addr string, err error) error {
	shardErrors.Inc()
	return &wire.Error{
		Code:    wire.CodeShardUnavailable,
		Message: fmt.Sprintf("shard %d (%s): %v", id, addr, err),
	}
}

// isTransportErr reports whether a shard call failed below the
// statement layer: not a server-reported typed error and not the
// caller's own cancellation. These are the failures that count against
// shard health.
func isTransportErr(err error) bool {
	var we *wire.Error
	if errors.As(err, &we) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// shardCall runs one call against shard i with health bookkeeping:
// marked-down shards fail fast with the typed error, transport
// failures feed the mark-down counter, successes clear it.
func (c *Coordinator) shardCall(i int, fn func() error) error {
	if !c.shards.available(i) {
		return shardUnavailable(i, c.shards.addr(i), errors.New("marked down"))
	}
	err := fn()
	if err == nil {
		c.shards.noteSuccess(i)
		return nil
	}
	if isTransportErr(err) {
		c.shards.noteFailure(i, err)
		return shardUnavailable(i, c.shards.addr(i), err)
	}
	return err
}

// fanout runs fn once per shard through exec.RunParallel — the same
// cancellation/panic machinery the executor uses for partition scans,
// with one remote partition per shard: the first failure cancels the
// sibling shard calls, and a panic in a merge callback is reported,
// not fatal. The returned span tree (root "fanout", one child per
// shard) is what EXPLAIN ANALYZE renders to show per-shard skew.
func (c *Coordinator) fanout(ctx context.Context, name string, fn func(ctx context.Context, shard int) (rows int64, err error)) (*exec.Span, error) {
	fanouts.Inc()
	n := c.shards.len()
	span := &exec.Span{Name: name, Start: time.Now(), Children: make([]*exec.Span, n)}
	for i := 0; i < n; i++ {
		span.Children[i] = &exec.Span{Name: fmt.Sprintf("shard %d (%s)", i, c.shards.addr(i))}
	}
	err := exec.RunParallel(ctx, 0, n, func(ctx context.Context, i int) error {
		sp := span.Children[i]
		sp.Start = time.Now()
		defer func() { sp.End = time.Now() }()
		return c.shardCall(i, func() error {
			rows, err := fn(ctx, i)
			sp.Rows = rows
			return err
		})
	})
	span.End = time.Now()
	return span, err
}
