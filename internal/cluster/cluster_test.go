package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	statsudf "repro"
	"repro/internal/core"
	"repro/internal/engine/db"
	"repro/internal/engine/exec"
	"repro/internal/engine/sqlparser"
	"repro/internal/server"
	"repro/internal/server/wire"
	"repro/pkg/client"
)

// testCluster is one coordinator over an in-process shard fleet, plus
// a single-node reference engine fed the same statements — the oracle
// every distributed answer is compared against.
type testCluster struct {
	coord    *Coordinator
	srvs     []*server.Server
	shardDBs []*db.DB
	addrs    []string
	ref      *db.DB
}

func newTestCluster(t *testing.T, nShards, parts int) *testCluster {
	t.Helper()
	return newTestClusterColumnar(t, nShards, parts, false)
}

// newTestClusterColumnar optionally flips the shards onto the columnar
// scan path while the single-node reference stays row-wise, so every
// byte-identity assertion doubles as a cross-mode equivalence check.
func newTestClusterColumnar(t *testing.T, nShards, parts int, columnar bool) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < nShards; i++ {
		sd, err := statsudf.Open(statsudf.Options{Partitions: 4, Columnar: columnar})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sd.Close() })
		srv := server.New(sd.Engine(), server.Config{Addr: "127.0.0.1:0"})
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		tc.srvs = append(tc.srvs, srv)
		tc.shardDBs = append(tc.shardDBs, sd.Engine())
		tc.addrs = append(tc.addrs, srv.Addr())
	}
	local, err := statsudf.Open(statsudf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { local.Close() })
	coord, err := New(local.Engine(), Config{
		Shards: tc.addrs, Partitions: parts, PoolSize: 2,
		ProbeInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	tc.coord = coord

	refDB, err := statsudf.Open(statsudf.Options{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { refDB.Close() })
	tc.ref = refDB.Engine()
	return tc
}

// execBoth runs the same script through the coordinator and the
// single-node reference.
func (tc *testCluster) execBoth(t *testing.T, sql string) {
	t.Helper()
	if _, err := tc.coord.ExecScriptContext(context.Background(), sql); err != nil {
		t.Fatalf("coordinator: %s: %v", sql, err)
	}
	if _, err := tc.ref.ExecScriptContext(context.Background(), sql); err != nil {
		t.Fatalf("reference: %s: %v", sql, err)
	}
}

// queryBoth runs one SELECT on both engines and returns the two
// results.
func (tc *testCluster) queryBoth(t *testing.T, sql string) (got, want *exec.Result) {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	got, err = tc.coord.RunContext(context.Background(), stmt)
	if err != nil {
		t.Fatalf("coordinator: %s: %v", sql, err)
	}
	stmt2, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	want, err = tc.ref.RunContext(context.Background(), stmt2)
	if err != nil {
		t.Fatalf("reference: %s: %v", sql, err)
	}
	return got, want
}

// requireIdentical asserts the two results are byte-identical: same
// column names and the same rendered value in every cell.
func requireIdentical(t *testing.T, sql string, got, want *exec.Result) {
	t.Helper()
	if g, w := strings.Join(got.Schema.Names(), ","), strings.Join(want.Schema.Names(), ","); g != w {
		t.Fatalf("%s: schema %q, want %q", sql, g, w)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", sql, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			g, w := got.Rows[i][j].String(), want.Rows[i][j].String()
			if g != w {
				t.Fatalf("%s: row %d col %d = %s, want %s", sql, i, j, g, w)
			}
		}
	}
}

// loadIntTable creates and loads a 3-column DOUBLE table with
// integer-valued data on both engines. Integer values make every
// partial-sum exact, so distributed answers must be byte-identical,
// not merely close.
func loadIntTable(t *testing.T, tc *testCluster, name string, rows int) {
	t.Helper()
	tc.execBoth(t, fmt.Sprintf("CREATE TABLE %s (a DOUBLE, b DOUBLE, y DOUBLE)", name))
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s VALUES ", name)
	for i := 0; i < rows; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d, %d)", i, 2*i+1, 3*i-5)
	}
	tc.execBoth(t, b.String())
}

func TestPushdownAggregatesByteIdentical(t *testing.T) {
	for _, columnar := range []bool{false, true} {
		t.Run(fmt.Sprintf("columnar=%v", columnar), func(t *testing.T) {
			tc := newTestClusterColumnar(t, 2, 8, columnar)
			loadIntTable(t, tc, "z", 97)

			for _, sql := range []string{
				"SELECT count(*), sum(a), min(a), max(b), avg(b) FROM z",
				"SELECT count(*) AS n, sum(y) AS sy FROM z WHERE a >= 10",
				"SELECT nlq_list(3, 'triangular', a, b, y) FROM z",
				"SELECT nlq_list(2, 'full', a, y) FROM z WHERE b < 100",
				"SELECT min(y), max(y), avg(a) FROM z WHERE a < 0", // empty input: NULL partials
				// Plain scans fan out row sets from the shards; columnar
				// shards serve them from vector programs.
				"SELECT a, b + y FROM z WHERE a < 40 ORDER BY 1",
			} {
				got, want := tc.queryBoth(t, sql)
				requireIdentical(t, sql, got, want)
				if got.Stats == nil || got.Stats.Root == nil {
					t.Fatalf("%s: coordinator result carries no span tree", sql)
				}
			}
			if pushdownStatements.Value() == 0 {
				t.Fatal("no statement took the push-down path")
			}
		})
	}
}

func TestRowsBalancedAcrossShards(t *testing.T) {
	tc := newTestCluster(t, 2, 8)
	loadIntTable(t, tc, "z", 96)
	var total int64
	for i, sd := range tc.shardDBs {
		tab, err := sd.Table("z")
		if err != nil {
			t.Fatal(err)
		}
		n := tab.NumRows()
		total += n
		// 96 rows over 8 partitions in 2 equal ranges: exactly half each.
		if n != 48 {
			t.Errorf("shard %d holds %d rows, want 48", i, n)
		}
	}
	if total != 96 {
		t.Fatalf("fleet holds %d rows, want 96", total)
	}
}

func TestGatherPathJoinsGroupByOrderBy(t *testing.T) {
	tc := newTestCluster(t, 3, 9)
	loadIntTable(t, tc, "z", 60)
	tc.execBoth(t, "CREATE TABLE g (a DOUBLE, w DOUBLE)")
	var b strings.Builder
	b.WriteString("INSERT INTO g VALUES ")
	for i := 0; i < 60; i += 3 {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d)", i, i*i)
	}
	tc.execBoth(t, b.String())

	for _, sql := range []string{
		"SELECT a, b FROM z ORDER BY a DESC LIMIT 5",
		"SELECT z.a, z.y, g.w FROM z, g WHERE z.a = g.a ORDER BY z.a",
		"SELECT y, count(*) AS n FROM z GROUP BY y ORDER BY y LIMIT 7",
		"SELECT sum(z.y * g.w) FROM z, g WHERE z.a = g.a",
	} {
		got, want := tc.queryBoth(t, sql)
		requireIdentical(t, sql, got, want)
	}
	if gatherRows.Value() == 0 {
		t.Fatal("no statement took the gather path")
	}
}

func TestInsertSelectScoringMatchesSingleNode(t *testing.T) {
	tc := newTestCluster(t, 2, 8)
	loadIntTable(t, tc, "z", 50)
	tc.execBoth(t, "CREATE TABLE scored (a DOUBLE, s DOUBLE)")
	tc.execBoth(t, "INSERT INTO scored SELECT a, 2*a + b - y FROM z")
	got, want := tc.queryBoth(t, "SELECT count(*), sum(s), min(s), max(s) FROM scored")
	requireIdentical(t, "scored aggregate", got, want)
	got, want = tc.queryBoth(t, "SELECT a, s FROM scored ORDER BY a")
	requireIdentical(t, "scored rows", got, want)
}

// TestMergedModelMatchesSingleNodeRandomized is the distributed-merge
// property test: across randomized shard counts, partition counts, row
// counts and data, the coordinator-merged n/L/Q and the linear model
// solved from it must match the single-node computation within 1e-9.
func TestMergedModelMatchesSingleNodeRandomized(t *testing.T) {
	const tol = 1e-9
	for _, cfg := range []struct {
		shards, parts, seed int
		columnar            bool
	}{
		{1, 3, 101, false}, {2, 5, 202, false}, {3, 7, 303, false}, {4, 8, 404, false},
		// Columnar shards against the row-wise reference: shard-local
		// block kernels must merge to the same model.
		{2, 5, 505, true}, {3, 7, 606, true},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("shards=%d parts=%d columnar=%v", cfg.shards, cfg.parts, cfg.columnar), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(cfg.seed)))
			tc := newTestClusterColumnar(t, cfg.shards, cfg.parts, cfg.columnar)
			tc.execBoth(t, "CREATE TABLE m (x1 DOUBLE, x2 DOUBLE, y DOUBLE)")
			nRows := 50 + rnd.Intn(150)
			var b strings.Builder
			b.WriteString("INSERT INTO m VALUES ")
			for i := 0; i < nRows; i++ {
				if i > 0 {
					b.WriteString(", ")
				}
				x1, x2 := rnd.NormFloat64()*3, rnd.Float64()*10-5
				y := 2.5*x1 - 1.25*x2 + 4 + rnd.NormFloat64()*0.5
				fmt.Fprintf(&b, "(%s, %s, %s)",
					strconv.FormatFloat(x1, 'g', -1, 64),
					strconv.FormatFloat(x2, 'g', -1, 64),
					strconv.FormatFloat(y, 'g', -1, 64))
			}
			tc.execBoth(t, b.String())

			ctx := context.Background()
			got, _, err := tc.coord.SummaryNLQ(ctx, "m", nil, core.Triangular)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := tc.ref.SummaryNLQ(ctx, "m", nil, core.Triangular)
			if err != nil {
				t.Fatal(err)
			}
			if got.N != want.N || got.D != want.D {
				t.Fatalf("merged n=%v d=%d, want n=%v d=%d", got.N, got.D, want.N, want.D)
			}
			requireClose(t, "L", got.L, want.L, tol)
			requireClose(t, "Q", got.Q, want.Q, tol)
			requireClose(t, "Min", got.Min, want.Min, 0)
			requireClose(t, "Max", got.Max, want.Max, 0)

			gm, err := core.BuildLinReg(got)
			if err != nil {
				t.Fatal(err)
			}
			wm, err := core.BuildLinReg(want)
			if err != nil {
				t.Fatal(err)
			}
			requireClose(t, "Beta", gm.Beta, wm.Beta, tol)
		})
	}
}

func requireClose(t *testing.T, what string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if d := math.Abs(got[i] - want[i]); d > tol || (tol == 0 && got[i] != want[i]) {
			t.Fatalf("%s[%d] = %v, want %v (|Δ|=%g > %g)", what, i, got[i], want[i], d, tol)
		}
	}
}

// TestCoordinatorOverTheWire serves the coordinator itself through the
// wire protocol and drives it with a pooled client: DDL, loads,
// push-down builds, the Summary frame, and the auto-prepare decline
// fallback all cross the network twice (client → coordinator → shards).
func TestCoordinatorOverTheWire(t *testing.T) {
	tc := newTestCluster(t, 2, 8)
	loadIntTable(t, tc, "z", 40)

	srv := server.New(tc.coord, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	pool, err := client.Open(client.Config{Addr: srv.Addr(), User: "e2e", PoolSize: 2, AutoPrepareAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })

	ctx := context.Background()
	// Repeats cross the auto-prepare threshold; the coordinator
	// declines PREPARE and the pool must fall back transparently.
	for i := 0; i < 4; i++ {
		rows, err := pool.Query(ctx, "SELECT count(*), sum(a) FROM z")
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got := rows.Rows[0][0].String(); got != "40" {
			t.Fatalf("query %d: count = %s, want 40", i, got)
		}
	}

	// The protocol-3 Summary frame against the coordinator merges
	// shard caches; against the reference it reads one cache.
	got, _, err := pool.Summary(ctx, "z", nil, core.Triangular)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := tc.ref.SummaryNLQ(ctx, "z", nil, core.Triangular)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pack() != want.Pack() {
		t.Fatalf("wire-merged summary %q != single-node %q", got.Pack(), want.Pack())
	}

	// sys.shards is served by the coordinator's local instance.
	rows, err := pool.Query(ctx, "SELECT shard_id, state FROM sys.shards")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 2 {
		t.Fatalf("sys.shards: %d rows, want 2", len(rows.Rows))
	}
	for _, r := range rows.Rows {
		if r[1].Str() != "up" {
			t.Fatalf("shard %s state %q, want up", r[0].String(), r[1].Str())
		}
	}
}

func TestShardFailureTypedErrorMarkdownAndRevival(t *testing.T) {
	tc := newTestCluster(t, 2, 4)
	loadIntTable(t, tc, "z", 30)
	ctx := context.Background()

	// Keep shard 1's engine; kill its listener.
	downEngine := tc.shardDBs[1]
	tc.srvs[1].Close()

	// Every attempt fails with the typed error — never a hang, never an
	// untyped transport error.
	for i := 0; i < markDownAfter+1; i++ {
		_, err := tc.coord.ExecScriptContext(ctx, "SELECT count(*) FROM z")
		if err == nil {
			t.Fatalf("attempt %d: statement succeeded with a dead shard", i)
		}
		var we *wire.Error
		if !errors.As(err, &we) || we.Code != wire.CodeShardUnavailable {
			t.Fatalf("attempt %d: error %v, want code %s", i, err, wire.CodeShardUnavailable)
		}
	}

	// The failure streak crossed the threshold: sys.shards shows the
	// mark-down.
	stmt, _ := sqlparser.Parse("SELECT state FROM sys.shards ORDER BY shard_id")
	res, err := tc.coord.RunContext(ctx, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[1][0].Str(); got != "down" {
		t.Fatalf("shard 1 state %q, want down", got)
	}
	if got := res.Rows[0][0].Str(); got != "up" {
		t.Fatalf("shard 0 state %q, want up (sibling cancellation must not count against health)", got)
	}

	// Marked down ⇒ fail fast with the same typed error.
	if _, err := tc.coord.ExecScriptContext(ctx, "SELECT sum(a) FROM z"); err == nil {
		t.Fatal("marked-down shard did not fail the statement")
	}

	// Revive the shard on its old address; the prober must re-admit it
	// and statements must heal without coordinator restart.
	srv2 := server.New(downEngine, server.Config{Addr: tc.addrs[1]})
	if err := srv2.Start(); err != nil {
		t.Fatalf("revive shard listener: %v", err)
	}
	t.Cleanup(func() { srv2.Close() })
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := tc.coord.ExecScriptContext(ctx, "SELECT count(*) FROM z"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard never revived")
		}
		time.Sleep(25 * time.Millisecond)
	}
	got, want := tc.queryBoth(t, "SELECT count(*), sum(y) FROM z")
	requireIdentical(t, "post-revival aggregate", got, want)
}

func TestCoordinatorRejectsViewsAndSysWrites(t *testing.T) {
	tc := newTestCluster(t, 2, 4)
	ctx := context.Background()
	if _, err := tc.coord.ExecScriptContext(ctx, "CREATE VIEW v AS SELECT 1"); err == nil {
		t.Fatal("CREATE VIEW accepted in coordinator mode")
	}
	if _, err := tc.coord.ExecScriptContext(ctx, "INSERT INTO sys.shards VALUES (1)"); err == nil {
		t.Fatal("INSERT into sys.* accepted")
	}
	if _, err := tc.coord.PrepareContext(ctx, "SELECT 1"); err == nil {
		t.Fatal("PREPARE accepted in coordinator mode")
	}
}
