package cluster

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine/exec"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
)

// scatterBatch bounds how many VALUES rows ride one INSERT statement
// when fanning rows out to a shard, keeping wire frames and parser
// input bounded no matter how large a scoring result set is.
const scatterBatch = 256

// runInsert routes an INSERT's rows to their owning shards. Placement
// mirrors the storage layer's round-robin insert, lifted to the
// cluster's logical partition space: row k of a table goes to logical
// partition k mod P, and the shard owning that partition's range
// stores it. Equal ranges ⇒ equal row counts — the paper's balanced
// AMPs, which is what makes the per-shard scan times of a fan-out
// build uniform.
func (c *Coordinator) runInsert(ctx context.Context, ins *sqlparser.Insert) (*exec.Result, error) {
	if strings.HasPrefix(strings.ToLower(ins.Table), "sys.") {
		return nil, fmt.Errorf("cluster: cannot INSERT into system table %q", ins.Table)
	}
	if _, err := c.local.TableSchema(ins.Table); err != nil {
		return nil, err
	}
	if ins.Query == nil {
		return c.scatterLiterals(ctx, ins)
	}
	return c.insertSelect(ctx, ins)
}

// scatterLiterals routes `INSERT ... VALUES` rows: each literal row is
// re-rendered into the statement destined for its owning shard.
func (c *Coordinator) scatterLiterals(ctx context.Context, ins *sqlparser.Insert) (*exec.Result, error) {
	n := c.shards.len()
	perShard := make([][]string, n)
	for _, row := range ins.Rows {
		lits := make([]string, len(row))
		for i, e := range row {
			lits[i] = e.String()
		}
		owner := c.placeRow(ins.Table)
		perShard[owner] = append(perShard[owner], "("+strings.Join(lits, ", ")+")")
	}
	return c.scatterExec(ctx, ins, perShard)
}

// insertSelect runs the SELECT through the full cluster dispatch
// (push-down or gather, whichever applies), then scatters the
// materialized result rows back out as literal VALUES — the scoring
// data flow: score on the coordinator from gathered inputs, store the
// scored rows sharded.
func (c *Coordinator) insertSelect(ctx context.Context, ins *sqlparser.Insert) (*exec.Result, error) {
	res, err := c.runSelect(ctx, ins.Query)
	if err != nil {
		return nil, err
	}
	n := c.shards.len()
	perShard := make([][]string, n)
	for _, row := range res.Rows {
		lits := make([]string, len(row))
		for i, v := range row {
			if lits[i], err = valueLiteral(v); err != nil {
				return nil, err
			}
		}
		owner := c.placeRow(ins.Table)
		perShard[owner] = append(perShard[owner], "("+strings.Join(lits, ", ")+")")
	}
	out, err := c.scatterExec(ctx, ins, perShard)
	if err != nil {
		return nil, err
	}
	// Charge the SELECT's execution account to the INSERT statement,
	// with the scatter fan-out grafted into the span tree.
	if res.Stats != nil && out.Stats != nil && res.Stats.Root != nil && out.Stats.Root != nil {
		out.Stats.RowsScanned = res.Stats.RowsScanned
		out.Stats.BytesRead = res.Stats.BytesRead
		out.Stats.Root.Children = append([]*exec.Span{res.Stats.Root}, out.Stats.Root.Children...)
	}
	return out, nil
}

// scatterExec sends each shard its batched INSERT statements and sums
// the affected counts.
func (c *Coordinator) scatterExec(ctx context.Context, ins *sqlparser.Insert, perShard [][]string) (*exec.Result, error) {
	start := time.Now()
	prefix := "INSERT INTO " + ins.Table
	if len(ins.Columns) > 0 {
		prefix += " (" + strings.Join(ins.Columns, ", ") + ")"
	}
	prefix += " VALUES "
	affected := make([]int64, len(perShard))
	span, err := c.fanout(ctx, "insert scatter", func(ctx context.Context, i int) (int64, error) {
		rows := perShard[i]
		for len(rows) > 0 {
			batch := rows
			if len(batch) > scatterBatch {
				batch = batch[:scatterBatch]
			}
			rows = rows[len(batch):]
			res, err := c.shards.pool(i).Exec(ctx, prefix+strings.Join(batch, ", "))
			if err != nil {
				return affected[i], err
			}
			affected[i] += res.Affected
		}
		return affected[i], nil
	})
	if err != nil {
		return nil, err
	}
	var total int64
	for _, a := range affected {
		total += a
	}
	end := time.Now()
	st := &exec.Stats{
		Partitions: len(perShard), Workers: len(perShard),
		RowsEmitted: total,
		Total:       end.Sub(start),
		Root:        &exec.Span{Name: "cluster insert", Start: start, End: end, Rows: total, Children: []*exec.Span{span}},
	}
	return &exec.Result{Affected: total, Stats: st}, nil
}

// placeRow assigns the next row of a table to its owning shard,
// advancing the table's cluster-wide round-robin cursor.
func (c *Coordinator) placeRow(table string) int {
	key := strings.ToLower(table)
	c.ctrMu.Lock()
	k := c.rowCtr[key]
	c.rowCtr[key] = k + 1
	c.ctrMu.Unlock()
	return c.shards.owner(int(k % int64(c.shards.partitions())))
}

// valueLiteral renders a materialized value back into a SQL literal
// that parses to the identical value on the receiving shard. Doubles
// use strconv's shortest round-trip form, so the float a shard stores
// is bit-for-bit the float the coordinator computed.
func valueLiteral(v sqltypes.Value) (string, error) {
	switch v.Type() {
	case sqltypes.TypeNull:
		return "NULL", nil
	case sqltypes.TypeBigInt:
		return strconv.FormatInt(v.Int(), 10), nil
	case sqltypes.TypeDouble:
		f, err := v.AsFloat()
		if err != nil {
			return "", err
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return "", fmt.Errorf("cluster: cannot route non-finite double %v as a literal", f)
		}
		return strconv.FormatFloat(f, 'g', -1, 64), nil
	case sqltypes.TypeVarChar:
		return "'" + strings.ReplaceAll(v.Str(), "'", "''") + "'", nil
	case sqltypes.TypeBool:
		if v.Bool() {
			return "TRUE", nil
		}
		return "FALSE", nil
	}
	return "", fmt.Errorf("cluster: cannot render %v literal", v.Type())
}
