package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine/exec"
	"repro/internal/engine/expr"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
	"repro/pkg/client"
)

// mergeKind says how one output column's per-shard partials combine on
// the coordinator.
type mergeKind int

const (
	// mergeSum adds non-NULL partials (COUNT and SUM — COUNT partials
	// never come back NULL, SUM over an empty shard does).
	mergeSum mergeKind = iota
	// mergeMin / mergeMax keep the extreme non-NULL partial.
	mergeMin
	mergeMax
	// mergeAvg divides a pushed-down SUM partial by its paired COUNT
	// partial — AVG itself is not mergeable after finalization, which
	// is exactly the paper's reason the n/L/Q UDF returns sufficient
	// statistics instead of finished moments.
	mergeAvg
	// mergeNLQ unpacks each shard's packed n/L/Q string and merges them
	// additively in shard order — the 4-phase UDF protocol's merge
	// phase, run across the wire instead of across goroutines.
	mergeNLQ
	// mergeConcat appends row slices in shard order (non-aggregate
	// projections).
	mergeConcat
)

// pushItem maps one ORIGINAL select item to its pushed-down partial
// columns and merge rule.
type pushItem struct {
	kind mergeKind
	name string // final output column name (single-node naming rules)
	lo   int    // first pushed column ordinal; mergeAvg also uses lo+1
}

// pushPlan is a classified push-down statement: the SQL every shard
// runs, and how the coordinator folds the partials.
type pushPlan struct {
	sql     string
	items   []pushItem // nil for a concat plan
	nPushed int
}

// mergeableAgg maps pushable aggregate names to their merge kind.
// Anything else — nlq_block's blocked layout, nlq_hist's buckets,
// DISTINCT aggregates — takes the gather path, which is always
// correct, just not push-down fast.
var mergeableAgg = map[string]mergeKind{
	"count":    mergeSum,
	"sum":      mergeSum,
	"min":      mergeMin,
	"max":      mergeMax,
	"avg":      mergeAvg,
	"nlq_list": mergeNLQ,
	"nlq_str":  mergeNLQ,
}

// finalName replicates the executor's output-column naming so a
// push-down result is label-identical to the single-node one.
func finalName(item sqlparser.SelectItem, ordinal int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if cr, ok := item.Expr.(*sqlparser.ColumnRef); ok {
		return cr.Name
	}
	s := item.Expr.String()
	if len(s) <= 40 {
		return s
	}
	return fmt.Sprintf("col%d", ordinal+1)
}

// planPushdown classifies a select. Push-down needs a single user
// table and none of the operators whose semantics span shards (GROUP
// BY, HAVING, ORDER BY, LIMIT, star expansion): then either every item
// is a bare mergeable aggregate call (partial aggregation) or no item
// aggregates at all (row concatenation). WHERE pushes verbatim either
// way — filters commute with sharding.
func (c *Coordinator) planPushdown(sel *sqlparser.Select) (*pushPlan, bool) {
	if len(sel.From) != 1 || strings.HasPrefix(strings.ToLower(sel.From[0].Name), "sys.") {
		return nil, false
	}
	if len(sel.GroupBy) > 0 || sel.Having != nil || len(sel.OrderBy) > 0 || sel.Limit != nil {
		return nil, false
	}
	aggNames := c.local.Aggregates().Names()
	allAgg, anyAgg := true, false
	for _, item := range sel.Items {
		if item.Star {
			return nil, false
		}
		if expr.ContainsAggregate(item.Expr, aggNames) {
			anyAgg = true
		}
		fc, ok := item.Expr.(*sqlparser.FuncCall)
		if !ok || fc.Distinct {
			allAgg = false
			continue
		}
		if _, ok := mergeableAgg[strings.ToLower(fc.Name)]; !ok {
			allAgg = false
			continue
		}
		// The aggregate's arguments must be plain row expressions —
		// nested aggregation is not pushable (and not legal SQL).
		for _, arg := range fc.Args {
			if expr.ContainsAggregate(arg, aggNames) {
				allAgg = false
			}
		}
	}
	if !anyAgg {
		// Pure projection: every shard runs the original statement and
		// the coordinator concatenates rows in shard order.
		return &pushPlan{sql: stmtText(sel)}, true
	}
	if !allAgg {
		return nil, false
	}

	// Partial aggregation: rewrite each item into its pushed partial
	// columns with positional aliases p0, p1, ... so the merge loop
	// addresses them by ordinal, never by name.
	pushed := &sqlparser.Select{From: sel.From, Where: sel.Where}
	plan := &pushPlan{}
	for i, item := range sel.Items {
		fc := item.Expr.(*sqlparser.FuncCall)
		pi := pushItem{name: finalName(item, i), lo: plan.nPushed}
		switch kind := mergeableAgg[strings.ToLower(fc.Name)]; kind {
		case mergeAvg:
			// AVG(e) → SUM(e), COUNT(e); the coordinator divides.
			pushed.Items = append(pushed.Items,
				sqlparser.SelectItem{Expr: &sqlparser.FuncCall{Name: "sum", Args: fc.Args}, Alias: fmt.Sprintf("p%d", plan.nPushed)},
				sqlparser.SelectItem{Expr: &sqlparser.FuncCall{Name: "count", Args: fc.Args}, Alias: fmt.Sprintf("p%d", plan.nPushed+1)},
			)
			pi.kind = mergeAvg
			plan.nPushed += 2
		default:
			pushed.Items = append(pushed.Items,
				sqlparser.SelectItem{Expr: fc, Alias: fmt.Sprintf("p%d", plan.nPushed)})
			pi.kind = kind
			plan.nPushed++
		}
		plan.items = append(plan.items, pi)
	}
	plan.sql = pushed.String()
	return plan, true
}

// runPushdown executes a classified plan: fan the pushed statement out
// to every shard, then fold the partials.
func (c *Coordinator) runPushdown(ctx context.Context, sel *sqlparser.Select, plan *pushPlan) (*exec.Result, error) {
	start := time.Now()
	n := c.shards.len()
	partials := make([]*client.Rows, n)
	fanSpan, err := c.fanout(ctx, "pushdown fanout", func(ctx context.Context, i int) (int64, error) {
		rows, err := c.shards.pool(i).Query(ctx, plan.sql)
		if err != nil {
			return 0, err
		}
		partials[i] = rows
		return int64(len(rows.Rows)), nil
	})
	if err != nil {
		return nil, err
	}

	mergeStart := time.Now()
	var res *exec.Result
	if plan.items == nil {
		res, err = mergeConcatRows(sel, partials)
	} else {
		res, err = mergeAggRows(plan, partials)
	}
	if err != nil {
		return nil, err
	}
	end := time.Now()

	st := clusterStats(partials, n)
	st.RowsEmitted = int64(len(res.Rows))
	st.Scan = fanSpan.Duration()
	st.Merge = end.Sub(mergeStart)
	st.Total = end.Sub(start)
	st.Root = &exec.Span{
		Name:  "cluster pushdown",
		Start: start,
		End:   end,
		Rows:  st.RowsEmitted,
		Children: []*exec.Span{
			fanSpan,
			{Name: "merge partials", Start: mergeStart, End: end, Rows: st.RowsEmitted},
		},
	}
	res.Stats = st
	return res, nil
}

// clusterStats folds the shards' own executor statistics (riding each
// reply's stats JSON) into the coordinator statement's account: total
// rows scanned and bytes read fleet-wide, with per-shard scan counts in
// PartitionRows — EXPLAIN ANALYZE's skew display, one slot per shard.
func clusterStats(partials []*client.Rows, n int) *exec.Stats {
	st := &exec.Stats{Partitions: n, Workers: n, PartitionRows: make([]int64, n)}
	for i, p := range partials {
		if p == nil || p.StatsJSON == "" {
			continue
		}
		var shard exec.Stats
		if json.Unmarshal([]byte(p.StatsJSON), &shard) != nil {
			continue
		}
		st.RowsScanned += shard.RowsScanned
		st.BytesRead += shard.BytesRead
		st.PartitionRows[i] = shard.RowsScanned
	}
	return st
}

// mergeConcatRows appends shard rows in shard order under the first
// shard's schema (every shard runs the same statement over the same
// DDL, so schemas agree).
func mergeConcatRows(sel *sqlparser.Select, partials []*client.Rows) (*exec.Result, error) {
	var schema *sqltypes.Schema
	var rows []sqltypes.Row
	for _, p := range partials {
		if p == nil {
			continue
		}
		if schema == nil {
			schema = p.Schema
		}
		rows = append(rows, p.Rows...)
		if len(p.Rows) > 0 {
			partialsMerged.Inc()
		}
	}
	if schema == nil {
		return nil, fmt.Errorf("cluster: no shard returned a schema")
	}
	return &exec.Result{Schema: schema, Rows: rows}, nil
}

// mergeAggRows folds each shard's single partial row into the final
// aggregate row, column by column, in shard order.
func mergeAggRows(plan *pushPlan, partials []*client.Rows) (*exec.Result, error) {
	var first *client.Rows
	shardRows := make([]sqltypes.Row, 0, len(partials))
	for _, p := range partials {
		if p == nil {
			continue
		}
		if first == nil {
			first = p
		}
		if len(p.Rows) != 1 || len(p.Rows[0]) != plan.nPushed {
			return nil, fmt.Errorf("cluster: shard partial shape %dx%d, want 1x%d", len(p.Rows), len(p.Rows[0]), plan.nPushed)
		}
		shardRows = append(shardRows, p.Rows[0])
	}
	if first == nil {
		return nil, fmt.Errorf("cluster: no shard returned a partial")
	}

	out := make(sqltypes.Row, len(plan.items))
	cols := make([]sqltypes.Column, len(plan.items))
	for i, item := range plan.items {
		v, err := mergeColumn(item, shardRows)
		if err != nil {
			return nil, err
		}
		out[i] = v
		typ := v.Type()
		if typ == sqltypes.TypeNull {
			// NULL result (e.g. SUM over an empty table): name the
			// column after the pushed partial's type so the shape still
			// matches single-node output.
			typ = first.Schema.Columns[item.lo].Type
			if item.kind == mergeAvg {
				typ = sqltypes.TypeDouble
			}
		}
		cols[i] = sqltypes.Column{Name: item.name, Type: typ}
	}
	schema, err := sqltypes.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	return &exec.Result{Schema: schema, Rows: []sqltypes.Row{out}}, nil
}

// mergeColumn folds one output column across the shards' partial rows
// (already in shard order).
func mergeColumn(item pushItem, shardRows []sqltypes.Row) (sqltypes.Value, error) {
	switch item.kind {
	case mergeSum:
		return mergeSums(item.lo, shardRows), nil
	case mergeMin, mergeMax:
		keepLess := item.kind == mergeMin
		out := sqltypes.Null
		for _, r := range shardRows {
			v := r[item.lo]
			if v.IsNull() {
				continue
			}
			if out.IsNull() {
				out = v
				continue
			}
			partialsMerged.Inc()
			if cmp := sqltypes.Compare(v, out); (keepLess && cmp < 0) || (!keepLess && cmp > 0) {
				out = v
			}
		}
		return out, nil
	case mergeAvg:
		sum, cnt := 0.0, int64(0)
		for _, r := range shardRows {
			cv := r[item.lo+1]
			if cv.Int() == 0 {
				continue
			}
			f, err := r[item.lo].AsFloat()
			if err != nil {
				return sqltypes.Null, fmt.Errorf("cluster: AVG partial: %w", err)
			}
			if cnt > 0 {
				partialsMerged.Inc()
			}
			sum += f
			cnt += cv.Int()
		}
		if cnt == 0 {
			return sqltypes.Null, nil
		}
		return sqltypes.NewDouble(sum / float64(cnt)), nil
	case mergeNLQ:
		var merged *core.NLQ
		for _, r := range shardRows {
			v := r[item.lo]
			if v.IsNull() || v.Str() == "" {
				continue
			}
			nlq, err := core.Unpack(v.Str())
			if err != nil {
				return sqltypes.Null, fmt.Errorf("cluster: n/L/Q partial: %w", err)
			}
			if merged == nil {
				merged = nlq
				continue
			}
			if err := merged.Merge(nlq); err != nil {
				return sqltypes.Null, err
			}
			partialsMerged.Inc()
		}
		if merged == nil {
			return sqltypes.Null, nil
		}
		return sqltypes.NewVarChar(merged.Pack()), nil
	}
	return sqltypes.Null, fmt.Errorf("cluster: unknown merge kind %d", item.kind)
}

// mergeSums adds non-NULL partials, preserving integer-ness when every
// partial is integral (COUNT, SUM over BIGINT).
func mergeSums(col int, shardRows []sqltypes.Row) sqltypes.Value {
	allInt := true
	var isum int64
	var fsum float64
	seen := false
	for _, r := range shardRows {
		v := r[col]
		if v.IsNull() {
			continue
		}
		if seen {
			partialsMerged.Inc()
		}
		seen = true
		if v.Type() == sqltypes.TypeBigInt {
			isum += v.Int()
		} else {
			allInt = false
		}
		f, _ := v.Float()
		fsum += f
	}
	if !seen {
		return sqltypes.Null
	}
	if allInt {
		return sqltypes.NewBigInt(isum)
	}
	return sqltypes.NewDouble(fsum)
}
