package cluster

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/engine/exec"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/storage"
)

// gatherCatalog overlays temporary in-memory tables — filled with rows
// pulled from the shards — on the coordinator's local instance, which
// keeps serving sys.* views and the (empty) catalog mirror underneath.
type gatherCatalog struct {
	local  exec.Catalog
	tables map[string]*storage.Table
}

func (g *gatherCatalog) Table(name string) (*storage.Table, error) {
	if t, ok := g.tables[strings.ToLower(name)]; ok {
		return t, nil
	}
	return g.local.Table(name)
}

// runGather is the general execution path: every statement the
// push-down classifier cannot prove mergeable — joins, GROUP BY,
// ORDER BY/LIMIT, DISTINCT aggregates, blocked/histogram UDFs, scoring
// SELECTs — runs here. The referenced tables' rows are gathered from
// the shards into in-memory partition tables and the UNMODIFIED
// statement runs on the coordinator's own executor, so cluster-mode
// semantics are single-node semantics by construction. It trades
// network volume for generality, exactly the paper's warning about
// moving data out of the DBMS — which is why model builds go through
// push-down and only the long tail lands here.
func (c *Coordinator) runGather(ctx context.Context, sel *sqlparser.Select) (*exec.Result, error) {
	start := time.Now()
	cat, gatherSpan, err := c.gatherTables(ctx, sel.From)
	if err != nil {
		return nil, err
	}
	env := &exec.Env{Catalog: cat, Funcs: c.local.Scalars(), Aggs: c.local.Aggregates()}
	res, err := exec.Select(ctx, sel, env)
	if err != nil {
		return nil, err
	}
	end := time.Now()

	// Wrap the local execution's span tree under a root that also shows
	// the gather fan-out, and charge the gather time to the statement.
	st := res.Stats
	if st == nil {
		st = &exec.Stats{}
		res.Stats = st
	}
	children := []*exec.Span{gatherSpan}
	if st.Root != nil {
		children = append(children, st.Root)
	}
	st.Total = end.Sub(start)
	st.Root = &exec.Span{Name: "cluster gather", Start: start, End: end, Rows: st.RowsEmitted, Children: children}
	return res, nil
}

// gatherTables pulls every user table referenced in FROM from the
// shards into fresh in-memory tables (one partition per shard, filled
// in shard order). sys.* references stay with the local instance.
func (c *Coordinator) gatherTables(ctx context.Context, refs []sqlparser.TableRef) (*gatherCatalog, *exec.Span, error) {
	cat := &gatherCatalog{local: c.local, tables: make(map[string]*storage.Table)}
	span := &exec.Span{Name: "gather tables", Start: time.Now()}
	for _, ref := range refs {
		key := strings.ToLower(ref.Name)
		if strings.HasPrefix(key, "sys.") || cat.tables[key] != nil {
			continue
		}
		schema, err := c.local.TableSchema(ref.Name)
		if err != nil {
			return nil, nil, err
		}
		t, err := storage.NewTable(key, schema, "", c.shards.len())
		if err != nil {
			return nil, nil, err
		}
		rows, tableSpan, err := c.gatherRowsFrom(ctx, key)
		if err != nil {
			return nil, nil, err
		}
		total := int64(0)
		for _, shardRows := range rows {
			if err := t.Insert(shardRows...); err != nil {
				return nil, nil, err
			}
			total += int64(len(shardRows))
		}
		gatherRows.Add(total)
		span.Rows += total
		span.Children = append(span.Children, tableSpan)
		cat.tables[key] = t
	}
	span.End = time.Now()
	return cat, span, nil
}

// gatherRowsFrom fetches one table's full rows from every shard,
// returned per shard in shard order.
func (c *Coordinator) gatherRowsFrom(ctx context.Context, table string) ([][]sqltypes.Row, *exec.Span, error) {
	perShard := make([][]sqltypes.Row, c.shards.len())
	sql := fmt.Sprintf("SELECT * FROM %s", table)
	span, err := c.fanout(ctx, "gather "+table, func(ctx context.Context, i int) (int64, error) {
		rows, err := c.shards.pool(i).Query(ctx, sql)
		if err != nil {
			return 0, err
		}
		perShard[i] = rows.Rows
		return int64(len(rows.Rows)), nil
	})
	if err != nil {
		return nil, nil, err
	}
	return perShard, span, nil
}
