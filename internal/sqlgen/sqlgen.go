// Package sqlgen generates the SQL that Teradata Warehouse Miner would
// emit: the "long" one-scan query computing n, L, Q with plain SQL
// aggregates (§3.4), the equivalent aggregate-UDF calls in both
// parameter-passing styles, the blocked calls for high d, and the
// scoring statements for each model (§3.5). The engine's SQL parser
// accepts everything produced here.
package sqlgen

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Dims returns the conventional column names X1..Xd.
func Dims(d int) []string {
	out := make([]string, d)
	for a := range out {
		out[a] = fmt.Sprintf("X%d", a+1)
	}
	return out
}

// NLQQuery builds the paper's single "long" SELECT with 1 + d + d²
// terms: sum(1.0) for n, d linear sums for L, and the Q sums laid out
// row-major with NULL padding outside the requested matrix type (the
// padding keeps the result row a fixed 1+d+d² wide, as printed in
// §3.4).
func NLQQuery(table string, dims []string, mt core.MatrixType) string {
	var b strings.Builder
	b.WriteString("SELECT\n sum(1.0) /* n */\n")
	for _, x := range dims {
		fmt.Fprintf(&b, ",sum(%s)", x)
	}
	b.WriteString(" /* L */\n")
	d := len(dims)
	for a := 0; a < d; a++ {
		for c := 0; c < d; c++ {
			include := false
			switch mt {
			case core.Diagonal:
				include = a == c
			case core.Triangular:
				include = c <= a
			case core.Full:
				include = true
			}
			if include {
				fmt.Fprintf(&b, ",sum(%s*%s)", dims[a], dims[c])
			} else {
				b.WriteString(",null")
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "FROM %s", table)
	return b.String()
}

// NLQQueriesPerCell builds the naive alternative of §3.4: one SELECT
// statement per matrix entry (n, then d statements for L, then the
// lower-triangle statements for Q) — d(d+1)/2 + d + 1 scans.
func NLQQueriesPerCell(table string, dims []string) []string {
	out := []string{fmt.Sprintf("SELECT sum(1.0) AS n FROM %s", table)}
	for a, x := range dims {
		out = append(out, fmt.Sprintf("SELECT %d, sum(%s) FROM %s", a+1, x, table))
	}
	for a := 0; a < len(dims); a++ {
		for c := 0; c <= a; c++ {
			out = append(out, fmt.Sprintf("SELECT %d, %d, sum(%s*%s) FROM %s",
				a+1, c+1, dims[a], dims[c], table))
		}
	}
	return out
}

// PassStyle selects the aggregate UDF's parameter-passing style.
type PassStyle int

const (
	// ListStyle passes each dimension as its own argument.
	ListStyle PassStyle = iota
	// StringStyle packs the vector into one string per row; the cast
	// and concatenation overhead is the cost Figure 3 measures.
	StringStyle
)

// String names the style as the figures label it.
func (p PassStyle) String() string {
	if p == StringStyle {
		return "string"
	}
	return "list"
}

// NLQUDFQuery builds the aggregate-UDF call computing n, L, Q in one
// scan: SELECT nlq_list(d, 'mt', X1, ..., Xd) FROM t, or the packed
// string variant.
func NLQUDFQuery(table string, dims []string, mt core.MatrixType, style PassStyle) string {
	return fmt.Sprintf("SELECT %s FROM %s", nlqUDFCall(dims, mt, style), table)
}

// NLQUDFGroupQuery builds the GROUP BY variant of Table 5: one set of
// summary matrices per group, grouping on groupExpr (the paper uses
// mod(i, k)).
func NLQUDFGroupQuery(table string, dims []string, mt core.MatrixType, style PassStyle, groupExpr string) string {
	return fmt.Sprintf("SELECT %s AS j, %s FROM %s GROUP BY %s",
		groupExpr, nlqUDFCall(dims, mt, style), table, groupExpr)
}

func nlqUDFCall(dims []string, mt core.MatrixType, style PassStyle) string {
	var b strings.Builder
	name := "nlq_list"
	if style == StringStyle {
		name = "nlq_str"
	}
	fmt.Fprintf(&b, "%s(%d, '%s'", name, len(dims), mt)
	if style == StringStyle {
		b.WriteString(", ")
		for a, x := range dims {
			if a > 0 {
				b.WriteString(" || '|' || ")
			}
			fmt.Fprintf(&b, "CAST(%s AS VARCHAR)", x)
		}
	} else {
		for _, x := range dims {
			fmt.Fprintf(&b, ", %s", x)
		}
	}
	b.WriteString(")")
	return b.String()
}

// NLQBlockQuery builds the Table 6 statement: one SELECT containing
// every nlq_block call of the plan, so all blocks are computed in a
// single synchronized table scan. Each call receives only its block's
// dimension values.
func NLQBlockQuery(table string, dims []string, plan *core.BlockPlan) string {
	var b strings.Builder
	b.WriteString("SELECT\n")
	for i, blk := range plan.Blocks {
		if i > 0 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, " nlq_block(%d, %d, %d, %d", blk.RowLo, blk.RowHi, blk.ColLo, blk.ColHi)
		for a := blk.RowLo; a < blk.RowHi; a++ {
			fmt.Fprintf(&b, ", %s", dims[a])
		}
		if !(blk.RowLo == blk.ColLo && blk.RowHi == blk.ColHi) {
			for c := blk.ColLo; c < blk.ColHi; c++ {
				fmt.Fprintf(&b, ", %s", dims[c])
			}
		}
		b.WriteString(")")
	}
	fmt.Fprintf(&b, "\nFROM %s", table)
	return b.String()
}

// KMeansIterationQuery builds one K-means iteration as a single table
// scan: the nearest-centroid subscript is computed per row with the
// scoring UDFs and used directly as the GROUP BY key, and the grouped
// aggregate UDF accumulates each cluster's diagonal summaries — the
// paper's observation that the GROUP BY query of Table 5 "can be used
// to compute k clusters if the nearest centroid is available in
// column j", with the centroid computed inline instead of stored.
func KMeansIterationQuery(xTable, cTable string, dims []string, k int) string {
	var assign strings.Builder
	assign.WriteString("clusterscore(")
	for j := 1; j <= k; j++ {
		if j > 1 {
			assign.WriteString(", ")
		}
		assign.WriteString("kdistance(")
		for _, x := range dims {
			fmt.Fprintf(&assign, "%s.%s, ", xTable, x)
		}
		for a, x := range dims {
			if a > 0 {
				assign.WriteString(", ")
			}
			fmt.Fprintf(&assign, "c%d.%s", j, x)
		}
		assign.WriteString(")")
	}
	assign.WriteString(")")

	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s AS j, nlq_list(%d, 'diag'", assign.String(), len(dims))
	for _, x := range dims {
		fmt.Fprintf(&b, ", %s.%s", xTable, x)
	}
	fmt.Fprintf(&b, ") FROM %s", xTable)
	for j := 1; j <= k; j++ {
		fmt.Fprintf(&b, " CROSS JOIN %s c%d", cTable, j)
	}
	b.WriteString(" WHERE ")
	for j := 1; j <= k; j++ {
		if j > 1 {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b, "c%d.j = %d", j, j)
	}
	fmt.Fprintf(&b, " GROUP BY %s", assign.String())
	return b.String()
}

// RegScoreUDF builds the one-scan regression scoring statement:
// X CROSS JOIN BETA, one linearregscore call per row (§3.5).
func RegScoreUDF(xTable, betaTable, idCol string, dims []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s.%s, linearregscore(", xTable, idCol)
	for _, x := range dims {
		fmt.Fprintf(&b, "%s.%s, ", xTable, x)
	}
	for i := 0; i <= len(dims); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "b%d", i)
	}
	fmt.Fprintf(&b, ") AS yhat FROM %s CROSS JOIN %s", xTable, betaTable)
	return b.String()
}

// RegScoreSQL builds the equivalent plain-SQL arithmetic expression:
// ŷ = b0 + b1·X1 + ... + bd·Xd, evaluated by the interpreter.
func RegScoreSQL(xTable, betaTable, idCol string, dims []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s.%s, b0", xTable, idCol)
	for a, x := range dims {
		fmt.Fprintf(&b, " + b%d * %s.%s", a+1, xTable, x)
	}
	fmt.Fprintf(&b, " AS yhat FROM %s CROSS JOIN %s", xTable, betaTable)
	return b.String()
}

// PCAScoreUDF builds the PCA/factor scoring statement: LAMBDA is
// cross-joined k times with aliases l1..lk (each filtered to its j)
// and fascore is called k times, producing the k reduced coordinates
// in one scan.
func PCAScoreUDF(xTable, muTable, lambdaTable, idCol string, dims []string, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s.%s", xTable, idCol)
	for j := 1; j <= k; j++ {
		b.WriteString(", fascore(")
		for _, x := range dims {
			fmt.Fprintf(&b, "%s.%s, ", xTable, x)
		}
		for _, x := range dims {
			fmt.Fprintf(&b, "m.%s, ", x)
		}
		for a, x := range dims {
			if a > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "l%d.%s", j, x)
		}
		fmt.Fprintf(&b, ") AS p%d", j)
	}
	fmt.Fprintf(&b, " FROM %s CROSS JOIN %s m", xTable, muTable)
	for j := 1; j <= k; j++ {
		fmt.Fprintf(&b, " CROSS JOIN %s l%d", lambdaTable, j)
	}
	b.WriteString(" WHERE ")
	for j := 1; j <= k; j++ {
		if j > 1 {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b, "l%d.j = %d", j, j)
	}
	return b.String()
}

// PCAScoreSQL builds the plain-SQL equivalent: k arithmetic
// expressions Σa (Xa − µa)·Λaj over the same cross joins.
func PCAScoreSQL(xTable, muTable, lambdaTable, idCol string, dims []string, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s.%s", xTable, idCol)
	for j := 1; j <= k; j++ {
		b.WriteString(", ")
		for a, x := range dims {
			if a > 0 {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "(%s.%s - m.%s) * l%d.%s", xTable, x, x, j, x)
		}
		fmt.Fprintf(&b, " AS p%d", j)
	}
	fmt.Fprintf(&b, " FROM %s CROSS JOIN %s m", xTable, muTable)
	for j := 1; j <= k; j++ {
		fmt.Fprintf(&b, " CROSS JOIN %s l%d", lambdaTable, j)
	}
	b.WriteString(" WHERE ")
	for j := 1; j <= k; j++ {
		if j > 1 {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b, "l%d.j = %d", j, j)
	}
	return b.String()
}

// ClusterScoreUDF builds the clustering scoring statement: the k
// centroids are cross-joined with aliases, kdistance is called k times
// and clusterscore picks the nearest subscript — one scan (§3.5).
func ClusterScoreUDF(xTable, cTable, idCol string, dims []string, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s.%s, clusterscore(", xTable, idCol)
	for j := 1; j <= k; j++ {
		if j > 1 {
			b.WriteString(", ")
		}
		b.WriteString("kdistance(")
		for _, x := range dims {
			fmt.Fprintf(&b, "%s.%s, ", xTable, x)
		}
		for a, x := range dims {
			if a > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "c%d.%s", j, x)
		}
		b.WriteString(")")
	}
	fmt.Fprintf(&b, ") AS j FROM %s", xTable)
	for j := 1; j <= k; j++ {
		fmt.Fprintf(&b, " CROSS JOIN %s c%d", cTable, j)
	}
	b.WriteString(" WHERE ")
	for j := 1; j <= k; j++ {
		if j > 1 {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b, "c%d.j = %d", j, j)
	}
	return b.String()
}

// ClusterScoreSQL builds the plain-SQL clustering scoring as the paper
// describes it for SQL: two statements over a distance table — the
// first scan computes the k squared distances per point into distTable,
// the second finds the minimum with a CASE ladder. The caller runs the
// statements in order (the returned slice includes the CREATE/DROP
// housekeeping).
func ClusterScoreSQL(xTable, cTable, distTable, idCol string, dims []string, k int) []string {
	var stmts []string
	stmts = append(stmts, fmt.Sprintf("DROP TABLE IF EXISTS %s", distTable))
	var create strings.Builder
	fmt.Fprintf(&create, "CREATE TABLE %s (%s BIGINT", distTable, idCol)
	for j := 1; j <= k; j++ {
		fmt.Fprintf(&create, ", d%d DOUBLE", j)
	}
	create.WriteString(")")
	stmts = append(stmts, create.String())

	var ins strings.Builder
	fmt.Fprintf(&ins, "INSERT INTO %s SELECT %s.%s", distTable, xTable, idCol)
	for j := 1; j <= k; j++ {
		ins.WriteString(", ")
		for a, x := range dims {
			if a > 0 {
				ins.WriteString(" + ")
			}
			fmt.Fprintf(&ins, "(%s.%s - c%d.%s) * (%s.%s - c%d.%s)", xTable, x, j, x, xTable, x, j, x)
		}
	}
	fmt.Fprintf(&ins, " FROM %s", xTable)
	for j := 1; j <= k; j++ {
		fmt.Fprintf(&ins, " CROSS JOIN %s c%d", cTable, j)
	}
	ins.WriteString(" WHERE ")
	for j := 1; j <= k; j++ {
		if j > 1 {
			ins.WriteString(" AND ")
		}
		fmt.Fprintf(&ins, "c%d.j = %d", j, j)
	}
	stmts = append(stmts, ins.String())

	var sel strings.Builder
	fmt.Fprintf(&sel, "SELECT %s, CASE", idCol)
	for j := 1; j <= k; j++ {
		sel.WriteString(" WHEN ")
		first := true
		for o := 1; o <= k; o++ {
			if o == j {
				continue
			}
			if !first {
				sel.WriteString(" AND ")
			}
			first = false
			fmt.Fprintf(&sel, "d%d <= d%d", j, o)
		}
		if first { // k == 1
			sel.WriteString("TRUE")
		}
		fmt.Fprintf(&sel, " THEN %d", j)
	}
	fmt.Fprintf(&sel, " END AS j FROM %s", distTable)
	stmts = append(stmts, sel.String())
	return stmts
}
