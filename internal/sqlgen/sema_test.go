package sqlgen_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine/db"
	"repro/internal/engine/sema"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
	"repro/internal/nlqudf"
	"repro/internal/score"
	"repro/internal/sqlgen"
	"repro/internal/synth"
)

// newBenchDB builds a database with the benchmark schemas (X and every
// model table of §3.5) and all UDFs registered, without loading data —
// sema only needs the catalog.
func newBenchDB(t *testing.T, dims, k int) *db.DB {
	t.Helper()
	d := db.Open(db.Options{Partitions: 2})
	if err := nlqudf.Register(d); err != nil {
		t.Fatal(err)
	}
	if err := score.Register(d); err != nil {
		t.Fatal(err)
	}
	create := func(name string, schema *sqltypes.Schema) {
		if _, err := d.CreateTable(name, schema); err != nil {
			t.Fatal(err)
		}
	}
	create("X", synth.XSchema(dims, true))
	beta := make([]sqltypes.Column, dims+1)
	for i := range beta {
		beta[i] = sqltypes.Column{Name: fmt.Sprintf("b%d", i), Type: sqltypes.TypeDouble}
	}
	create("BETA", &sqltypes.Schema{Columns: beta})
	model := func(withJ bool) *sqltypes.Schema {
		var cols []sqltypes.Column
		if withJ {
			cols = append(cols, sqltypes.Column{Name: "j", Type: sqltypes.TypeBigInt})
		}
		for a := 1; a <= dims; a++ {
			cols = append(cols, sqltypes.Column{Name: fmt.Sprintf("X%d", a), Type: sqltypes.TypeDouble})
		}
		return &sqltypes.Schema{Columns: cols}
	}
	create("MU", model(false))
	create("LAMBDA", model(true))
	create("C", model(true))
	dist := []sqltypes.Column{{Name: "i", Type: sqltypes.TypeBigInt}}
	for j := 1; j <= k; j++ {
		dist = append(dist, sqltypes.Column{Name: fmt.Sprintf("d%d", j), Type: sqltypes.TypeDouble})
	}
	create("XD", &sqltypes.Schema{Columns: dist})
	return d
}

// TestGeneratedSQLPassesSema runs every sqlgen generator (and the
// harness's inline statements) through the semantic analyzer against
// the benchmark schemas: machine-generated SQL must never trip sema.
func TestGeneratedSQLPassesSema(t *testing.T) {
	const k = 4
	for _, dims := range []int{1, 2, 8, 16} {
		d := newBenchDB(t, dims, k)
		env := &sema.Env{Catalog: d, Scalars: d.Scalars(), Aggs: d.Aggregates()}
		dimNames := sqlgen.Dims(dims)

		var stmts []string
		for _, mt := range []core.MatrixType{core.Diagonal, core.Triangular, core.Full} {
			stmts = append(stmts, sqlgen.NLQQuery("X", dimNames, mt))
			for _, style := range []sqlgen.PassStyle{sqlgen.ListStyle, sqlgen.StringStyle} {
				stmts = append(stmts, sqlgen.NLQUDFQuery("X", dimNames, mt, style))
				stmts = append(stmts, sqlgen.NLQUDFGroupQuery("X", dimNames, mt, style, "i % 8"))
			}
		}
		stmts = append(stmts, sqlgen.NLQQueriesPerCell("X", dimNames)...)
		if plan, err := core.PlanBlocks(dims, 2); err == nil {
			stmts = append(stmts, sqlgen.NLQBlockQuery("X", dimNames, plan))
		}
		stmts = append(stmts,
			sqlgen.KMeansIterationQuery("X", "C", dimNames, k),
			sqlgen.RegScoreUDF("X", "BETA", "i", dimNames),
			sqlgen.RegScoreSQL("X", "BETA", "i", dimNames),
			sqlgen.PCAScoreUDF("X", "MU", "LAMBDA", "i", dimNames, k),
			sqlgen.PCAScoreSQL("X", "MU", "LAMBDA", "i", dimNames, k),
			sqlgen.ClusterScoreUDF("X", "C", "i", dimNames, k),
		)
		stmts = append(stmts, sqlgen.ClusterScoreSQL("X", "C", "XD", "i", dimNames, k)...)

		// Inline statements the harness submits outside sqlgen.
		augmented := fmt.Sprintf("SELECT nlq_list(%d, 'triang'", dims+1)
		for a := 1; a <= dims; a++ {
			augmented += fmt.Sprintf(", X%d", a)
		}
		stmts = append(stmts,
			augmented+", Y) FROM X",
			"SELECT i % 8, sum(X1) FROM X GROUP BY i % 8",
			"SELECT i, X1 + X1 FROM X WHERE X1 > 0",
		)

		for _, sql := range stmts {
			stmt, err := sqlparser.Parse(sql)
			if err != nil {
				t.Errorf("d=%d: parse error: %v\nin: %s", dims, err, sql)
				continue
			}
			if err := sema.CheckStatement(stmt, env); err != nil {
				t.Errorf("d=%d: sema rejected generated SQL:\n%v\nin: %s", dims, err, sql)
			}
		}
	}
}
