package sqlgen

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine/sqlparser"
)

func mustParseAll(t *testing.T, sqls ...string) {
	t.Helper()
	for _, s := range sqls {
		if _, err := sqlparser.Parse(s); err != nil {
			t.Fatalf("generated SQL does not parse: %v\n%s", err, s)
		}
	}
}

func TestDims(t *testing.T) {
	d := Dims(3)
	if len(d) != 3 || d[0] != "X1" || d[2] != "X3" {
		t.Fatalf("%v", d)
	}
}

func TestNLQQueryShape(t *testing.T) {
	for _, mt := range []core.MatrixType{core.Diagonal, core.Triangular, core.Full} {
		q := NLQQuery("X", Dims(4), mt)
		mustParseAll(t, q)
		// 1 + d + d² select terms regardless of type (nulls pad).
		st, _ := sqlparser.Parse(q)
		items := st.(*sqlparser.Select).Items
		if len(items) != 1+4+16 {
			t.Fatalf("%v: %d items", mt, len(items))
		}
	}
	// Padding counts: triangular keeps lower triangle only.
	q := NLQQuery("X", Dims(4), core.Triangular)
	if got := strings.Count(q, "null"); got != 16-10 {
		t.Fatalf("triangular null padding = %d", got)
	}
	q = NLQQuery("X", Dims(4), core.Diagonal)
	if got := strings.Count(q, "null"); got != 16-4 {
		t.Fatalf("diagonal null padding = %d", got)
	}
	if strings.Contains(NLQQuery("X", Dims(4), core.Full), "null") {
		t.Fatal("full matrix should have no padding")
	}
}

func TestNLQQueriesPerCell(t *testing.T) {
	qs := NLQQueriesPerCell("X", Dims(4))
	want := 1 + 4 + 4*5/2
	if len(qs) != want {
		t.Fatalf("%d statements, want %d", len(qs), want)
	}
	mustParseAll(t, qs...)
}

func TestNLQUDFQueries(t *testing.T) {
	list := NLQUDFQuery("X", Dims(3), core.Triangular, ListStyle)
	if !strings.Contains(list, "nlq_list(3, 'triang', X1, X2, X3)") {
		t.Fatalf("list SQL: %s", list)
	}
	str := NLQUDFQuery("X", Dims(3), core.Full, StringStyle)
	if !strings.Contains(str, "nlq_str(3, 'full', CAST(X1 AS VARCHAR)") {
		t.Fatalf("string SQL: %s", str)
	}
	grp := NLQUDFGroupQuery("X", Dims(2), core.Diagonal, ListStyle, "i % 8")
	if !strings.Contains(grp, "GROUP BY i % 8") {
		t.Fatalf("group SQL: %s", grp)
	}
	mustParseAll(t, list, str, grp)
}

func TestNLQBlockQuery(t *testing.T) {
	plan, err := core.PlanBlocks(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := NLQBlockQuery("X", Dims(8), plan)
	mustParseAll(t, q)
	if got := strings.Count(q, "nlq_block("); got != plan.Calls() {
		t.Fatalf("%d calls in SQL, want %d", got, plan.Calls())
	}
	// Diagonal block passes 4 values; off-diagonal passes 8.
	if !strings.Contains(q, "nlq_block(0, 4, 0, 4, X1, X2, X3, X4)") {
		t.Fatalf("diagonal block call malformed:\n%s", q)
	}
	if !strings.Contains(q, "nlq_block(4, 8, 0, 4, X5, X6, X7, X8, X1, X2, X3, X4)") {
		t.Fatalf("off-diagonal block call malformed:\n%s", q)
	}
}

func TestScoringStatementsParse(t *testing.T) {
	dims := Dims(4)
	mustParseAll(t,
		RegScoreUDF("X", "BETA", "i", dims),
		RegScoreSQL("X", "BETA", "i", dims),
		PCAScoreUDF("X", "MU", "LAMBDA", "i", dims, 3),
		PCAScoreSQL("X", "MU", "LAMBDA", "i", dims, 3),
		ClusterScoreUDF("X", "C", "i", dims, 4),
	)
	stmts := ClusterScoreSQL("X", "C", "XD", "i", dims, 4)
	if len(stmts) != 4 {
		t.Fatalf("%d statements", len(stmts))
	}
	mustParseAll(t, stmts...)
	// The SQL variant is two data passes: one INSERT..SELECT scan of X
	// and one SELECT scan of the distance table.
	if !strings.Contains(stmts[2], "INSERT INTO XD") {
		t.Fatalf("missing distance materialization: %s", stmts[2])
	}
	if !strings.Contains(stmts[3], "CASE") {
		t.Fatalf("missing argmin CASE: %s", stmts[3])
	}
}

func TestClusterScoreSQLSingleCluster(t *testing.T) {
	stmts := ClusterScoreSQL("X", "C", "XD", "i", Dims(2), 1)
	mustParseAll(t, stmts...)
	if !strings.Contains(stmts[3], "WHEN TRUE THEN 1") {
		t.Fatalf("k=1 CASE: %s", stmts[3])
	}
}

func TestKMeansIterationQuery(t *testing.T) {
	q := KMeansIterationQuery("X", "C", Dims(2), 3)
	mustParseAll(t, q)
	// One scan: the assignment expression appears as both the group
	// key and the first select item.
	if strings.Count(q, "clusterscore(") != 2 {
		t.Fatalf("assignment expression should appear twice:\n%s", q)
	}
	if !strings.Contains(q, "GROUP BY clusterscore(") {
		t.Fatalf("missing GROUP BY on the assignment:\n%s", q)
	}
	if !strings.Contains(q, "nlq_list(2, 'diag'") {
		t.Fatalf("missing diagonal summary aggregate:\n%s", q)
	}
	if got := strings.Count(q, "kdistance("); got != 6 { // k per appearance
		t.Fatalf("%d kdistance calls, want 6:\n%s", got, q)
	}
}

func TestPassStyleString(t *testing.T) {
	if ListStyle.String() != "list" || StringStyle.String() != "string" {
		t.Fatal("style names changed")
	}
}
