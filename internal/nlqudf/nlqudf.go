// Package nlqudf registers the paper's aggregate UDF: one-scan
// computation of the summary matrices n, L, Q inside the engine.
//
// Two variants implement the two parameter-passing styles of §3.4:
//
//	nlq_list(d, mtype, X1, ..., Xd)  — one SQL argument per dimension
//	nlq_str(d, mtype, packed)        — the vector packed into a string,
//	                                   parsed per row (slower; Figure 3)
//
// plus the blocked variant for d > MAX_d (Table 6):
//
//	nlq_block(rowlo, rowhi, collo, colhi, X1, ..., Xd)
//
// All return the summaries packed into a single string (UDFs cannot
// return arrays), decoded with core.Unpack / core.UnpackBlock.
package nlqudf

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/engine/db"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/udf"
)

// Register installs the three aggregate UDFs into a database, the
// engine-level equivalent of Teradata's CREATE FUNCTION.
func Register(d *db.DB) error {
	for _, a := range []udf.Aggregate{
		&nlqAgg{name: "nlq_list", packed: false},
		&nlqAgg{name: "nlq_str", packed: true},
		&blockAgg{},
		histAgg{},
	} {
		if err := d.Aggregates().Register(a); err != nil {
			return err
		}
	}
	return nil
}

// nlqState is the UDF's heap-allocated working storage — the C struct
// of §3.4 ("udf_nLQ_storage"). The heap budget is charged for the
// static MAX_d-sized struct at Init, before the first row is read,
// exactly as the paper describes ("storage gets allocated in the heap
// before the first row is read", wasting some space at low d).
type nlqState struct {
	nlq *core.NLQ // created lazily on the first row, d ≤ MaxD
	buf []float64 // scratch for unpacking a row vector
}

type nlqAgg struct {
	name   string
	packed bool
}

func (a *nlqAgg) Name() string { return a.name }

func (a *nlqAgg) CheckArgs(n int) error {
	min := 3
	if a.packed && n != 3 {
		return fmt.Errorf("nlqudf: %s expects (d, mtype, packed_vector)", a.name)
	}
	if n < min {
		return fmt.Errorf("nlqudf: %s expects at least %d arguments", a.name, min)
	}
	if !a.packed && n-2 > core.MaxD {
		return fmt.Errorf("nlqudf: %s supports at most d=%d dimensions per call; use nlq_block for more", a.name, core.MaxD)
	}
	return nil
}

func (a *nlqAgg) Init(h *udf.Heap) (udf.State, error) {
	// Static allocation for the maximum dimensionality.
	if err := h.Alloc(8 * (core.MaxD*core.MaxD + 3*core.MaxD + 2)); err != nil {
		return nil, err
	}
	return &nlqState{buf: make([]float64, 0, core.MaxD)}, nil
}

// header parses the (d, mtype) leading arguments shared by both styles.
func header(args []sqltypes.Value) (int, core.MatrixType, error) {
	if args[0].IsNull() || args[1].IsNull() {
		return 0, 0, fmt.Errorf("nlqudf: d and mtype must not be NULL")
	}
	d := int(args[0].Int())
	if d < 1 || d > core.MaxD {
		return 0, 0, fmt.Errorf("nlqudf: d=%d out of range 1..%d", d, core.MaxD)
	}
	mt, err := core.ParseMatrixType(strings.ToLower(args[1].Str()))
	if err != nil {
		return 0, 0, err
	}
	return d, mt, nil
}

func (a *nlqAgg) Accumulate(s udf.State, args []sqltypes.Value) error {
	st := s.(*nlqState)
	d, mt, err := header(args)
	if err != nil {
		return err
	}
	if st.nlq == nil {
		st.nlq, err = core.NewNLQ(d, mt)
		if err != nil {
			return err
		}
	} else if st.nlq.D != d || st.nlq.Type != mt {
		return fmt.Errorf("nlqudf: inconsistent (d, mtype) across rows: (%d,%v) vs (%d,%v)",
			d, mt, st.nlq.D, st.nlq.Type)
	}

	x := st.buf[:0]
	if a.packed {
		// String style: parse the packed vector (the per-row O(d)
		// number-formatting overhead the paper measures).
		if args[2].IsNull() {
			return nil // NULL vector: skip the row, like SQL aggregates
		}
		vals, err := udf.UnpackFloats(args[2].Str())
		if err != nil {
			return fmt.Errorf("nlqudf: row vector: %w", err)
		}
		if len(vals) != d {
			return fmt.Errorf("nlqudf: packed vector has %d dims, want %d", len(vals), d)
		}
		x = vals
	} else {
		if len(args) != d+2 {
			return fmt.Errorf("nlqudf: got %d vector arguments, want d=%d", len(args)-2, d)
		}
		for _, v := range args[2:] {
			if v.IsNull() {
				return nil // rows with NULL dimensions are skipped
			}
			f, ok := v.Float()
			if !ok {
				return fmt.Errorf("nlqudf: non-numeric dimension value %v", v)
			}
			x = append(x, f)
		}
		st.buf = x[:0]
	}
	return st.nlq.Update(x)
}

func (a *nlqAgg) Merge(dst, src udf.State) error {
	ds, ss := dst.(*nlqState), src.(*nlqState)
	if ss.nlq == nil {
		return nil // empty partition
	}
	if ds.nlq == nil {
		ds.nlq = ss.nlq
		return nil
	}
	return ds.nlq.Merge(ss.nlq)
}

func (a *nlqAgg) Finalize(s udf.State) (sqltypes.Value, error) {
	st := s.(*nlqState)
	if st.nlq == nil {
		return sqltypes.Null, nil // no qualifying rows
	}
	return sqltypes.NewVarChar(st.nlq.Pack()), nil
}

// blockAgg computes one Q block for the high-dimensional blocked
// strategy. Its state holds only the block slab, so many block calls
// fit the scan (each call owns an independent 64 KB segment, as on the
// real system).
type blockAgg struct{}

type blockState struct {
	blk core.Block
	res *core.BlockResult
	buf []float64
}

func (b *blockAgg) Name() string { return "nlq_block" }

func (b *blockAgg) CheckArgs(n int) error {
	if n < 5 {
		return fmt.Errorf("nlqudf: nlq_block expects (rowlo, rowhi, collo, colhi, X1, ..., Xd)")
	}
	return nil
}

func (b *blockAgg) Init(h *udf.Heap) (udf.State, error) {
	if err := h.Alloc(8 * (core.MaxD*core.MaxD + 3*core.MaxD + 2)); err != nil {
		return nil, err
	}
	return &blockState{}, nil
}

// Accumulate folds one row. The call site passes only the block's own
// dimension values (the paper's calls each receive their subscript
// ranges): for a diagonal block (row range == col range) the rw row
// values; otherwise the rw row values followed by the cw column values.
func (b *blockAgg) Accumulate(s udf.State, args []sqltypes.Value) error {
	st := s.(*blockState)
	blk := core.Block{
		RowLo: int(args[0].Int()), RowHi: int(args[1].Int()),
		ColLo: int(args[2].Int()), ColHi: int(args[3].Int()),
	}
	rw, cw := blk.RowHi-blk.RowLo, blk.ColHi-blk.ColLo
	if rw < 1 || cw < 1 || rw > core.MaxD || cw > core.MaxD {
		return fmt.Errorf("nlqudf: block rows [%d,%d) cols [%d,%d) out of range (max side %d)",
			blk.RowLo, blk.RowHi, blk.ColLo, blk.ColHi, core.MaxD)
	}
	diagonal := blk.RowLo == blk.ColLo && blk.RowHi == blk.ColHi
	want := rw + cw
	if diagonal {
		want = rw
	}
	if len(args)-4 != want {
		return fmt.Errorf("nlqudf: block expects %d dimension values, got %d", want, len(args)-4)
	}
	if st.res == nil {
		st.blk = blk
		st.res = &core.BlockResult{
			Q:   make([]float64, rw*cw),
			L:   make([]float64, rw),
			Min: make([]float64, rw),
			Max: make([]float64, rw),
		}
		for i := range st.res.Min {
			st.res.Min[i] = math.Inf(1)
			st.res.Max[i] = math.Inf(-1)
		}
		st.buf = make([]float64, want)
	} else if st.blk != blk {
		return fmt.Errorf("nlqudf: inconsistent block ranges across rows")
	}
	x := st.buf[:0]
	for _, v := range args[4:] {
		if v.IsNull() {
			return nil
		}
		f, ok := v.Float()
		if !ok {
			return fmt.Errorf("nlqudf: non-numeric dimension value %v", v)
		}
		x = append(x, f)
	}
	xr := x[:rw]
	xc := xr
	if !diagonal {
		xc = x[rw:]
	}
	st.res.N++
	for a := 0; a < rw; a++ {
		v := xr[a]
		st.res.L[a] += v
		if v < st.res.Min[a] {
			st.res.Min[a] = v
		}
		if v > st.res.Max[a] {
			st.res.Max[a] = v
		}
		row := st.res.Q[a*cw:]
		for c := 0; c < cw; c++ {
			row[c] += v * xc[c]
		}
	}
	return nil
}

func (b *blockAgg) Merge(dst, src udf.State) error {
	ds, ss := dst.(*blockState), src.(*blockState)
	if ss.res == nil {
		return nil
	}
	if ds.res == nil {
		ds.blk, ds.res = ss.blk, ss.res
		return nil
	}
	if ds.blk != ss.blk {
		return fmt.Errorf("nlqudf: merging mismatched blocks")
	}
	ds.res.N += ss.res.N
	for i := range ds.res.Q {
		ds.res.Q[i] += ss.res.Q[i]
	}
	for i := range ds.res.L {
		ds.res.L[i] += ss.res.L[i]
		if ss.res.Min[i] < ds.res.Min[i] {
			ds.res.Min[i] = ss.res.Min[i]
		}
		if ss.res.Max[i] > ds.res.Max[i] {
			ds.res.Max[i] = ss.res.Max[i]
		}
	}
	return nil
}

func (b *blockAgg) Finalize(s udf.State) (sqltypes.Value, error) {
	st := s.(*blockState)
	if st.res == nil {
		return sqltypes.Null, nil
	}
	return sqltypes.NewVarChar(PackBlock(st.blk, st.res)), nil
}

// PackBlock serializes a block result for the UDF return value.
func PackBlock(blk core.Block, r *core.BlockResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d,%d,%d,%d;%s;", blk.RowLo, blk.RowHi, blk.ColLo, blk.ColHi, strconv.FormatFloat(r.N, 'g', 17, 64))
	b.WriteString(udf.PackFloats(r.L))
	b.WriteByte(';')
	b.WriteString(udf.PackFloats(r.Min))
	b.WriteByte(';')
	b.WriteString(udf.PackFloats(r.Max))
	b.WriteByte(';')
	b.WriteString(udf.PackFloats(r.Q))
	return b.String()
}

// UnpackBlock parses a PackBlock string.
func UnpackBlock(s string) (core.Block, *core.BlockResult, error) {
	parts := strings.Split(s, ";")
	if len(parts) != 6 {
		return core.Block{}, nil, fmt.Errorf("nlqudf: packed block has %d sections, want 6", len(parts))
	}
	var blk core.Block
	if _, err := fmt.Sscanf(parts[0], "%d,%d,%d,%d", &blk.RowLo, &blk.RowHi, &blk.ColLo, &blk.ColHi); err != nil {
		return core.Block{}, nil, fmt.Errorf("nlqudf: bad block header %q: %w", parts[0], err)
	}
	n, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return core.Block{}, nil, fmt.Errorf("nlqudf: bad block n %q", parts[1])
	}
	res := &core.BlockResult{N: n}
	if res.L, err = udf.UnpackFloats(parts[2]); err != nil {
		return core.Block{}, nil, err
	}
	if res.Min, err = udf.UnpackFloats(parts[3]); err != nil {
		return core.Block{}, nil, err
	}
	if res.Max, err = udf.UnpackFloats(parts[4]); err != nil {
		return core.Block{}, nil, err
	}
	if res.Q, err = udf.UnpackFloats(parts[5]); err != nil {
		return core.Block{}, nil, err
	}
	rw, cw := blk.RowHi-blk.RowLo, blk.ColHi-blk.ColLo
	if rw < 1 || cw < 1 || len(res.Q) != rw*cw || len(res.L) != rw {
		return core.Block{}, nil, fmt.Errorf("nlqudf: packed block shape mismatch")
	}
	return blk, res, nil
}
