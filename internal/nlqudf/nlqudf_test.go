package nlqudf

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine/db"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/udf"
	"repro/internal/sqlgen"
)

// setupData creates an X table with d dims and n rows and returns the
// points for reference computation.
func setupData(t *testing.T, d *db.DB, n, dims int, seed int64) [][]float64 {
	t.Helper()
	if err := Register(d); err != nil {
		t.Fatal(err)
	}
	cols := []sqltypes.Column{{Name: "i", Type: sqltypes.TypeBigInt}}
	for a := 1; a <= dims; a++ {
		cols = append(cols, sqltypes.Column{Name: fmt.Sprintf("X%d", a), Type: sqltypes.TypeDouble})
	}
	tab, err := d.CreateTable("X", &sqltypes.Schema{Columns: cols})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	bl, err := tab.NewBulkLoader()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		x := make([]float64, dims)
		row := make(sqltypes.Row, dims+1)
		row[0] = sqltypes.NewBigInt(int64(i))
		for a := 0; a < dims; a++ {
			x[a] = rng.NormFloat64()*10 + 50
			row[a+1] = sqltypes.NewDouble(x[a])
		}
		pts[i] = x
		if err := bl.Add(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := bl.Close(); err != nil {
		t.Fatal(err)
	}
	return pts
}

func nlqClose(t *testing.T, got, want *core.NLQ, tol float64) {
	t.Helper()
	if got.N != want.N || got.D != want.D {
		t.Fatalf("header mismatch: n=%g/%g d=%d/%d", got.N, want.N, got.D, want.D)
	}
	for a := 0; a < want.D; a++ {
		if math.Abs(got.L[a]-want.L[a]) > tol {
			t.Fatalf("L[%d] = %g, want %g", a, got.L[a], want.L[a])
		}
		if math.Abs(got.Min[a]-want.Min[a]) > tol || math.Abs(got.Max[a]-want.Max[a]) > tol {
			t.Fatalf("min/max[%d] mismatch", a)
		}
		for b := 0; b < want.D; b++ {
			if math.Abs(got.QAt(a, b)-want.QAt(a, b)) > tol {
				t.Fatalf("Q[%d][%d] = %g, want %g", a, b, got.QAt(a, b), want.QAt(a, b))
			}
		}
	}
}

func TestUDFMatchesDirectComputation(t *testing.T) {
	const n, dims = 500, 6
	for _, mt := range []core.MatrixType{core.Diagonal, core.Triangular, core.Full} {
		for _, style := range []sqlgen.PassStyle{sqlgen.ListStyle, sqlgen.StringStyle} {
			t.Run(fmt.Sprintf("%v/%v", mt, style), func(t *testing.T) {
				d := db.Open(db.Options{Partitions: 5})
				pts := setupData(t, d, n, dims, 42)
				want := core.MustNLQ(dims, mt)
				for _, x := range pts {
					want.Update(x)
				}
				sql := sqlgen.NLQUDFQuery("X", sqlgen.Dims(dims), mt, style)
				res, err := d.Exec(sql)
				if err != nil {
					t.Fatalf("%s: %v", sql, err)
				}
				v, err := res.Value()
				if err != nil {
					t.Fatal(err)
				}
				got, err := core.Unpack(v.Str())
				if err != nil {
					t.Fatal(err)
				}
				// String style loses nothing: 17 significant digits.
				nlqClose(t, got, want, 1e-6)
			})
		}
	}
}

func TestUDFMatchesSQLQuery(t *testing.T) {
	const n, dims = 300, 4
	d := db.Open(db.Options{Partitions: 3})
	setupData(t, d, n, dims, 7)

	// Run the paper's long SQL query.
	sqlRes, err := d.Exec(sqlgen.NLQQuery("X", sqlgen.Dims(dims), core.Triangular))
	if err != nil {
		t.Fatal(err)
	}
	row := sqlRes.Rows[0]
	// Run the UDF.
	udfRes, err := d.Exec(sqlgen.NLQUDFQuery("X", sqlgen.Dims(dims), core.Triangular, sqlgen.ListStyle))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := udfRes.Value()
	got, err := core.Unpack(v.Str())
	if err != nil {
		t.Fatal(err)
	}
	// Compare: row = [n, L1..Ld, Q row-major with NULL padding].
	if nv := row[0].MustFloat(); nv != got.N {
		t.Fatalf("n: sql=%g udf=%g", nv, got.N)
	}
	for a := 0; a < dims; a++ {
		if lv := row[1+a].MustFloat(); math.Abs(lv-got.L[a]) > 1e-6 {
			t.Fatalf("L[%d]: sql=%g udf=%g", a, lv, got.L[a])
		}
		for c := 0; c <= a; c++ {
			qv := row[1+dims+a*dims+c].MustFloat()
			if math.Abs(qv-got.QAt(a, c)) > 1e-5 {
				t.Fatalf("Q[%d][%d]: sql=%g udf=%g", a, c, qv, got.QAt(a, c))
			}
		}
	}
}

func TestUDFGroupBy(t *testing.T) {
	const n, dims, k = 400, 3, 4
	d := db.Open(db.Options{Partitions: 4})
	pts := setupData(t, d, n, dims, 11)

	sql := sqlgen.NLQUDFGroupQuery("X", sqlgen.Dims(dims), core.Diagonal, sqlgen.ListStyle, fmt.Sprintf("i %% %d", k))
	res, err := d.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	if len(res.Rows) != k {
		t.Fatalf("got %d groups, want %d", len(res.Rows), k)
	}
	// Reference per-group summaries.
	want := make([]*core.NLQ, k)
	for j := range want {
		want[j] = core.MustNLQ(dims, core.Diagonal)
	}
	for i, x := range pts {
		want[i%k].Update(x)
	}
	for _, row := range res.Rows {
		j := int(row[0].Int())
		got, err := core.Unpack(row[1].Str())
		if err != nil {
			t.Fatal(err)
		}
		nlqClose(t, got, want[j], 1e-6)
	}
}

func TestUDFWithWhereFilter(t *testing.T) {
	const n, dims = 200, 3
	d := db.Open(db.Options{Partitions: 2})
	pts := setupData(t, d, n, dims, 13)
	res, err := d.Exec("SELECT nlq_list(3, 'triang', X1, X2, X3) FROM X WHERE i < 50")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Value()
	got, err := core.Unpack(v.Str())
	if err != nil {
		t.Fatal(err)
	}
	want := core.MustNLQ(dims, core.Triangular)
	for i := 0; i < 50; i++ {
		want.Update(pts[i])
	}
	nlqClose(t, got, want, 1e-6)
}

func TestUDFEmptyInput(t *testing.T) {
	d := db.Open(db.Options{Partitions: 2})
	setupData(t, d, 10, 2, 1)
	res, err := d.Exec("SELECT nlq_list(2, 'full', X1, X2) FROM X WHERE i < 0")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Value()
	if !v.IsNull() {
		t.Fatalf("empty aggregate = %v, want NULL", v)
	}
}

func TestUDFArgumentErrors(t *testing.T) {
	d := db.Open(db.Options{Partitions: 2})
	setupData(t, d, 10, 2, 1)
	bad := []string{
		"SELECT nlq_list(2, 'triang') FROM X",         // too few args at runtime
		"SELECT nlq_list(3, 'triang', X1, X2) FROM X", // d mismatch
		"SELECT nlq_list(2, 'sparse', X1, X2) FROM X", // bad matrix type
		"SELECT nlq_str(2, 'triang', X1, X2) FROM X",  // str style arity
		"SELECT nlq_list(0, 'full', X1, X2) FROM X",   // d out of range
		"SELECT nlq_str(2, 'full', 'zz|1') FROM X",    // unparsable packed
	}
	for _, sql := range bad {
		if _, err := d.Exec(sql); err == nil {
			t.Errorf("%q must fail", sql)
		}
	}
}

func TestUDFNullRowsSkipped(t *testing.T) {
	d := db.Open(db.Options{Partitions: 2})
	if err := Register(d); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("CREATE TABLE N (X1 DOUBLE, X2 DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("INSERT INTO N VALUES (1, 2), (NULL, 5), (3, 4)"); err != nil {
		t.Fatal(err)
	}
	res, err := d.Exec("SELECT nlq_list(2, 'full', X1, X2) FROM N")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Value()
	got, err := core.Unpack(v.Str())
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 2 || got.L[0] != 4 || got.L[1] != 6 {
		t.Fatalf("NULL row not skipped: %+v", got)
	}
}

func TestBlockedQueryMatchesDirect(t *testing.T) {
	const n, dims, blockD = 150, 10, 4
	d := db.Open(db.Options{Partitions: 3})
	pts := setupData(t, d, n, dims, 17)
	plan, err := core.PlanBlocks(dims, blockD)
	if err != nil {
		t.Fatal(err)
	}
	sql := sqlgen.NLQBlockQuery("X", sqlgen.Dims(dims), plan)
	res, err := d.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != plan.Calls() {
		t.Fatalf("result shape %d×%d, want 1×%d", len(res.Rows), len(res.Rows[0]), plan.Calls())
	}
	parts := make([]*core.BlockResult, plan.Calls())
	for i, v := range res.Rows[0] {
		blk, r, err := UnpackBlock(v.Str())
		if err != nil {
			t.Fatal(err)
		}
		if blk != plan.Blocks[i] {
			t.Fatalf("block %d ranges mismatch: %+v vs %+v", i, blk, plan.Blocks[i])
		}
		parts[i] = r
	}
	got, err := plan.Assemble(parts)
	if err != nil {
		t.Fatal(err)
	}
	want := core.MustNLQ(dims, core.Full)
	for _, x := range pts {
		want.Update(x)
	}
	nlqClose(t, got, want, 1e-6)
}

func TestPackBlockRoundTrip(t *testing.T) {
	blk := core.Block{RowLo: 4, RowHi: 8, ColLo: 0, ColHi: 4}
	r := &core.BlockResult{
		N: 3, L: []float64{1, 2, 3, 4}, Min: []float64{0, 0, 0, 0},
		Max: []float64{9, 9, 9, 9}, Q: make([]float64, 16),
	}
	for i := range r.Q {
		r.Q[i] = float64(i) * 1.5
	}
	blk2, r2, err := UnpackBlock(PackBlock(blk, r))
	if err != nil {
		t.Fatal(err)
	}
	if blk2 != blk || r2.N != r.N || len(r2.Q) != 16 || r2.Q[5] != 7.5 {
		t.Fatalf("round trip: %+v %+v", blk2, r2)
	}
	for _, bad := range []string{"", "x;y", "a,b,c,d;1;1;1;1;1"} {
		if _, _, err := UnpackBlock(bad); err == nil {
			t.Errorf("UnpackBlock(%q) must fail", bad)
		}
	}
}

func TestHeapChargeIsStatic(t *testing.T) {
	// The UDF charges the heap for MAX_d regardless of the actual d —
	// the paper's "wastes some memory space but does not affect speed".
	a := &nlqAgg{name: "nlq_list"}
	h := udf.NewHeap(udf.SegmentSize)
	if _, err := a.Init(h); err != nil {
		t.Fatal(err)
	}
	if h.Used() < 8*core.MaxD*core.MaxD {
		t.Fatalf("heap charge %d too small for static MAX_d allocation", h.Used())
	}
	// A second state cannot fit in the same segment.
	if _, err := a.Init(h); err == nil {
		t.Fatal("two MAX_d states must not fit in one segment")
	}
}

func TestStringStylePacksWithSQLConcat(t *testing.T) {
	// The generated string-style SQL really goes through CAST/concat.
	sql := sqlgen.NLQUDFQuery("X", sqlgen.Dims(2), core.Full, sqlgen.StringStyle)
	if !strings.Contains(sql, "CAST(X1 AS VARCHAR) || '|' || CAST(X2 AS VARCHAR)") {
		t.Fatalf("unexpected string-style SQL: %s", sql)
	}
}
