package nlqudf

import (
	"fmt"

	"repro/internal/engine/sqltypes"
	"repro/internal/engine/udf"
)

// histAgg is the equi-width histogram aggregate UDF the paper's
// min/max tracking enables ("the minimum and maximum for each
// dimension ... can be used to detect outliers or build histograms"):
//
//	hist(bins, lo, hi, x)
//
// returns "under|b1|...|bB|over" — per-bin counts packed as a string,
// with underflow/overflow counts at the ends so outliers are visible
// rather than silently clamped.
type histAgg struct{}

// RegisterHistogram installs the hist aggregate UDF; it is registered
// by Register alongside the summary UDFs.
type histState struct {
	bins   int
	lo, hi float64
	counts []float64 // len bins+2: [under, bins..., over]
}

func (histAgg) Name() string { return "hist" }

func (histAgg) CheckArgs(n int) error {
	if n != 4 {
		return fmt.Errorf("nlqudf: hist expects (bins, lo, hi, x)")
	}
	return nil
}

func (histAgg) Init(h *udf.Heap) (udf.State, error) {
	// Static allocation for the maximum bin count, like the NLQ state.
	if err := h.Alloc(8 * (maxHistBins + 2)); err != nil {
		return nil, err
	}
	return &histState{}, nil
}

// maxHistBins bounds a histogram state within a heap segment share.
const maxHistBins = 4096

func (histAgg) Accumulate(s udf.State, args []sqltypes.Value) error {
	st := s.(*histState)
	if args[0].IsNull() || args[1].IsNull() || args[2].IsNull() {
		return fmt.Errorf("nlqudf: hist bins/lo/hi must not be NULL")
	}
	bins := int(args[0].Int())
	lo, _ := args[1].Float()
	hi, _ := args[2].Float()
	if bins < 1 || bins > maxHistBins {
		return fmt.Errorf("nlqudf: hist bins=%d out of range 1..%d", bins, maxHistBins)
	}
	if !(hi > lo) {
		return fmt.Errorf("nlqudf: hist requires lo < hi, got [%g, %g)", lo, hi)
	}
	if st.counts == nil {
		st.bins, st.lo, st.hi = bins, lo, hi
		st.counts = make([]float64, bins+2)
	} else if st.bins != bins || st.lo != lo || st.hi != hi {
		return fmt.Errorf("nlqudf: inconsistent hist parameters across rows")
	}
	if args[3].IsNull() {
		return nil
	}
	x, ok := args[3].Float()
	if !ok {
		return fmt.Errorf("nlqudf: hist: non-numeric value %v", args[3])
	}
	switch {
	case x < lo:
		st.counts[0]++
	case x >= hi:
		st.counts[bins+1]++
	default:
		b := int(float64(bins) * (x - lo) / (hi - lo))
		if b >= bins { // float edge guard at x == hi-ulp
			b = bins - 1
		}
		st.counts[1+b]++
	}
	return nil
}

func (histAgg) Merge(dst, src udf.State) error {
	d, s := dst.(*histState), src.(*histState)
	if s.counts == nil {
		return nil
	}
	if d.counts == nil {
		*d = *s
		return nil
	}
	if d.bins != s.bins || d.lo != s.lo || d.hi != s.hi {
		return fmt.Errorf("nlqudf: merging mismatched histograms")
	}
	for i, v := range s.counts {
		d.counts[i] += v
	}
	return nil
}

func (histAgg) Finalize(s udf.State) (sqltypes.Value, error) {
	st := s.(*histState)
	if st.counts == nil {
		return sqltypes.Null, nil
	}
	return sqltypes.NewVarChar(udf.PackFloats(st.counts)), nil
}

// UnpackHistogram parses a hist result into (underflow, bins, overflow).
func UnpackHistogram(s string) (under float64, bins []float64, over float64, err error) {
	vals, err := udf.UnpackFloats(s)
	if err != nil {
		return 0, nil, 0, err
	}
	if len(vals) < 3 {
		return 0, nil, 0, fmt.Errorf("nlqudf: histogram result too short")
	}
	return vals[0], vals[1 : len(vals)-1], vals[len(vals)-1], nil
}
