package nlqudf

import (
	"strconv"
	"testing"

	"repro/internal/engine/db"
)

func TestHistogramUDF(t *testing.T) {
	d := db.Open(db.Options{Partitions: 4})
	if err := Register(d); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("CREATE TABLE H (x DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	// Values 0..99 plus outliers on both sides and a NULL.
	tab, _ := d.Table("H")
	for i := 0; i < 100; i++ {
		if _, err := d.Exec("INSERT INTO H VALUES (" + itoa(i) + ".5)"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Exec("INSERT INTO H VALUES (-5), (1000), (NULL)"); err != nil {
		t.Fatal(err)
	}
	_ = tab
	res, err := d.Exec("SELECT hist(10, 0.0, 100.0, x) FROM H")
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Value()
	if err != nil {
		t.Fatal(err)
	}
	under, bins, over, err := UnpackHistogram(v.Str())
	if err != nil {
		t.Fatal(err)
	}
	if under != 1 || over != 1 {
		t.Fatalf("under=%g over=%g", under, over)
	}
	if len(bins) != 10 {
		t.Fatalf("%d bins", len(bins))
	}
	for b, c := range bins {
		if c != 10 { // 10 values of i.5 per decade
			t.Fatalf("bin %d = %g", b, c)
		}
	}
}

func TestHistogramGrouped(t *testing.T) {
	d := db.Open(db.Options{Partitions: 3})
	if err := Register(d); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("CREATE TABLE H (g BIGINT, x DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		g := i % 2
		if _, err := d.Exec("INSERT INTO H VALUES (" + itoa(g) + ", " + itoa(i%10) + ".1)"); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.Exec("SELECT g, hist(5, 0.0, 10.0, x) FROM H GROUP BY g ORDER BY g")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d groups", len(res.Rows))
	}
	for _, row := range res.Rows {
		_, bins, _, err := UnpackHistogram(row[1].Str())
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, c := range bins {
			total += c
		}
		if total != 30 {
			t.Fatalf("group %v total = %g", row[0], total)
		}
	}
}

func TestHistogramErrors(t *testing.T) {
	d := db.Open(db.Options{Partitions: 2})
	if err := Register(d); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("CREATE TABLE H (x DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("INSERT INTO H VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"SELECT hist(0, 0.0, 1.0, x) FROM H", // bins out of range
		"SELECT hist(5, 1.0, 1.0, x) FROM H", // lo == hi
		"SELECT hist(5, 2.0, 1.0, x) FROM H", // lo > hi
		"SELECT hist(5, 0.0, 1.0) FROM H",    // arity
		"SELECT hist(NULL, 0.0, 1.0, x) FROM H",
	}
	for _, sql := range bad {
		if _, err := d.Exec(sql); err == nil {
			t.Errorf("%q must fail", sql)
		}
	}
	if _, _, _, err := UnpackHistogram("1|2"); err == nil {
		t.Error("short histogram must fail to unpack")
	}
}

func itoa(i int) string { return strconv.Itoa(i) }
