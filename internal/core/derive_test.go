package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveCovariance computes V directly from the points for comparison.
func naiveCovariance(pts [][]float64) [][]float64 {
	n := float64(len(pts))
	d := len(pts[0])
	mu := make([]float64, d)
	for _, x := range pts {
		for a, v := range x {
			mu[a] += v / n
		}
	}
	cov := make([][]float64, d)
	for a := range cov {
		cov[a] = make([]float64, d)
		for b := range cov[a] {
			for _, x := range pts {
				cov[a][b] += (x[a] - mu[a]) * (x[b] - mu[b]) / n
			}
		}
	}
	return cov
}

func TestCovarianceMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randPoints(rng, 80, 4)
		s := MustNLQ(4, Triangular)
		for _, x := range pts {
			s.Update(x)
		}
		v, err := s.Covariance()
		if err != nil {
			return false
		}
		want := naiveCovariance(pts)
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				if math.Abs(v.At(a, b)-want[a][b]) > 1e-6*math.Max(1, math.Abs(want[a][b])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelationProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randPoints(rng, 200, 5)
	s := MustNLQ(5, Triangular)
	for _, x := range pts {
		s.Update(x)
	}
	rho, err := s.Correlation()
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 5; a++ {
		if math.Abs(rho.At(a, a)-1) > 1e-9 {
			t.Fatalf("rho[%d][%d] = %g, want 1", a, a, rho.At(a, a))
		}
		for b := 0; b < 5; b++ {
			if v := rho.At(a, b); v < -1-1e-9 || v > 1+1e-9 {
				t.Fatalf("rho[%d][%d] = %g out of [-1,1]", a, b, v)
			}
			if math.Abs(rho.At(a, b)-rho.At(b, a)) > 1e-12 {
				t.Fatal("rho not symmetric")
			}
		}
	}
}

// TestCorrelationClampedNearCollinear drives Correlation with
// near-collinear dimensions at large offsets — the regime where
// cancellation in n·Qab − La·Lb historically pushed |ρ| a few ulps
// past 1 — and requires every entry to stay strictly inside [−1, 1]
// so √(1−ρ²) never yields NaN.
func TestCorrelationClampedNearCollinear(t *testing.T) {
	f := func(seed int64, offMag uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		// Big shared offset amplifies cancellation; the jitter keeps the
		// variance nonzero so the zero-variance guard does not kick in.
		off := math.Pow(10, 4+float64(offMag%5)) * (1 + rng.Float64())
		s := MustNLQ(3, Triangular)
		for i := 0; i < 300; i++ {
			v := off + rng.Float64()
			x := []float64{
				v,
				3*v + 7 + 1e-9*rng.Float64(), // almost exactly collinear with x0
				off * rng.Float64(),
			}
			if err := s.Update(x); err != nil {
				return false
			}
		}
		rho, err := s.Correlation()
		if err != nil {
			return false
		}
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				r := rho.At(a, b)
				if math.IsNaN(r) || r < -1 || r > 1 {
					return false
				}
				if math.IsNaN(math.Sqrt(1 - r*r)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelationPerfectlyCorrelated(t *testing.T) {
	s := MustNLQ(2, Triangular)
	for i := 1; i <= 50; i++ {
		s.Update([]float64{float64(i), 3*float64(i) + 7}) // exact linear
	}
	rho, err := s.Correlation()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho.At(0, 1)-1) > 1e-9 {
		t.Fatalf("rho = %g, want 1", rho.At(0, 1))
	}
	// Anti-correlated.
	s2 := MustNLQ(2, Triangular)
	for i := 1; i <= 50; i++ {
		s2.Update([]float64{float64(i), -2 * float64(i)})
	}
	rho2, _ := s2.Correlation()
	if math.Abs(rho2.At(0, 1)+1) > 1e-9 {
		t.Fatalf("rho = %g, want -1", rho2.At(0, 1))
	}
}

func TestCorrelationZeroVariance(t *testing.T) {
	s := MustNLQ(2, Triangular)
	for i := 0; i < 10; i++ {
		s.Update([]float64{5, float64(i)}) // first dim constant
	}
	rho, err := s.Correlation()
	if err != nil {
		t.Fatal(err)
	}
	if rho.At(0, 0) != 1 || rho.At(0, 1) != 0 {
		t.Fatalf("degenerate rho = %g, %g", rho.At(0, 0), rho.At(0, 1))
	}
}

func TestDeriveRequiresData(t *testing.T) {
	s := MustNLQ(2, Triangular)
	if _, err := s.Covariance(); err == nil {
		t.Fatal("empty covariance must fail")
	}
	if _, err := s.Correlation(); err == nil {
		t.Fatal("empty correlation must fail")
	}
	d := MustNLQ(2, Diagonal)
	d.Update([]float64{1, 2})
	d.Update([]float64{2, 3})
	if _, err := d.Covariance(); err == nil {
		t.Fatal("diagonal NLQ cannot produce full covariance")
	}
	if _, err := d.Variances(); err != nil {
		t.Fatal("diagonal NLQ must produce variances")
	}
}

func TestVariancesMatchCovarianceDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randPoints(rng, 60, 3)
	s := MustNLQ(3, Full)
	for _, x := range pts {
		s.Update(x)
	}
	v, _ := s.Covariance()
	vars, _ := s.Variances()
	for a := 0; a < 3; a++ {
		if math.Abs(v.At(a, a)-vars[a]) > 1e-9 {
			t.Fatalf("variance mismatch at %d: %g vs %g", a, v.At(a, a), vars[a])
		}
	}
}

func TestPlanBlocks(t *testing.T) {
	// d=128, block=64 → 2×2 block grid, lower triangle = 3 calls.
	p, err := PlanBlocks(128, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Calls() != 3 {
		t.Fatalf("calls = %d, want 3", p.Calls())
	}
	// The paper's Table 6 counts: d=64→1, 128→4... wait, the paper
	// reports full-grid counts (d/64)²: 128→4, 256→16, 512→64, 1024→256.
	// Our lower-triangle plan needs (b²+b)/2 calls; verify both scales.
	for _, c := range []struct{ d, want int }{
		{64, 1}, {128, 3}, {256, 10}, {512, 36}, {1024, 136},
	} {
		p, err := PlanBlocks(c.d, 64)
		if err != nil {
			t.Fatal(err)
		}
		if p.Calls() != c.want {
			t.Fatalf("d=%d: calls = %d, want %d", c.d, p.Calls(), c.want)
		}
	}
	if _, err := PlanBlocks(0, 64); err == nil {
		t.Fatal("d=0 must fail")
	}
}

func TestBlockedComputationMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const d, blockD = 10, 4
	pts := randPoints(rng, 40, d)
	scan := func(fn func(x []float64) error) error {
		for _, x := range pts {
			if err := fn(x); err != nil {
				return err
			}
		}
		return nil
	}
	plan, err := PlanBlocks(d, blockD)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*BlockResult, len(plan.Blocks))
	for i, blk := range plan.Blocks {
		r, err := ComputeBlock(blk, scan)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = r
	}
	got, err := plan.Assemble(parts)
	if err != nil {
		t.Fatal(err)
	}
	want := MustNLQ(d, Full)
	for _, x := range pts {
		want.Update(x)
	}
	if got.N != want.N {
		t.Fatalf("n = %g, want %g", got.N, want.N)
	}
	for a := 0; a < d; a++ {
		if math.Abs(got.L[a]-want.L[a]) > 1e-9 {
			t.Fatalf("L[%d] mismatch", a)
		}
		if got.Min[a] != want.Min[a] || got.Max[a] != want.Max[a] {
			t.Fatalf("min/max[%d] mismatch", a)
		}
		for b := 0; b < d; b++ {
			if math.Abs(got.QAt(a, b)-want.QAt(a, b)) > 1e-9 {
				t.Fatalf("Q[%d][%d] = %g, want %g", a, b, got.QAt(a, b), want.QAt(a, b))
			}
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	plan, _ := PlanBlocks(8, 4)
	if _, err := plan.Assemble(nil); err == nil {
		t.Fatal("wrong part count must fail")
	}
	parts := make([]*BlockResult, plan.Calls())
	if _, err := plan.Assemble(parts); err == nil {
		t.Fatal("nil parts must fail")
	}
}

func TestComputeBlockShortPoint(t *testing.T) {
	blk := Block{RowLo: 0, RowHi: 4, ColLo: 0, ColHi: 4}
	scan := func(fn func(x []float64) error) error {
		return fn([]float64{1, 2}) // too short
	}
	if _, err := ComputeBlock(blk, scan); err == nil {
		t.Fatal("short point must fail")
	}
}
