package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randPoints(rng *rand.Rand, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		x := make([]float64, d)
		for a := range x {
			x[a] = rng.NormFloat64()*10 + 50
		}
		pts[i] = x
	}
	return pts
}

func TestNewNLQValidation(t *testing.T) {
	if _, err := NewNLQ(0, Full); err == nil {
		t.Fatal("d=0 must be rejected")
	}
	s, err := NewNLQ(3, Triangular)
	if err != nil || s.D != 3 {
		t.Fatalf("%v %v", s, err)
	}
}

func TestUpdateBasics(t *testing.T) {
	s := MustNLQ(2, Full)
	if err := s.Update([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Update([]float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if s.N != 2 {
		t.Fatalf("N = %g", s.N)
	}
	if s.L[0] != 4 || s.L[1] != 6 {
		t.Fatalf("L = %v", s.L)
	}
	// Q = [[1+9, 2+12], [2+12, 4+16]]
	if s.QAt(0, 0) != 10 || s.QAt(0, 1) != 14 || s.QAt(1, 1) != 20 {
		t.Fatalf("Q = %v", s.Q)
	}
	if s.Min[0] != 1 || s.Max[1] != 4 {
		t.Fatalf("min/max = %v %v", s.Min, s.Max)
	}
	if err := s.Update([]float64{1}); err == nil {
		t.Fatal("dimension mismatch must fail")
	}
}

func TestTriangularMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randPoints(rng, 100, 5)
	full := MustNLQ(5, Full)
	tri := MustNLQ(5, Triangular)
	for _, x := range pts {
		full.Update(x)
		tri.Update(x)
	}
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			if math.Abs(full.QAt(a, b)-tri.QAt(a, b)) > 1e-9 {
				t.Fatalf("Q[%d][%d]: full=%g tri=%g", a, b, full.QAt(a, b), tri.QAt(a, b))
			}
		}
	}
}

func TestDiagonalOnlyDiagonal(t *testing.T) {
	s := MustNLQ(3, Diagonal)
	s.Update([]float64{1, 2, 3})
	if s.QAt(0, 0) != 1 || s.QAt(1, 1) != 4 || s.QAt(2, 2) != 9 {
		t.Fatalf("diag = %v", s.Q)
	}
	if s.QAt(0, 1) != 0 {
		t.Fatalf("off-diagonal should be 0, got %g", s.QAt(0, 1))
	}
}

func TestMergeEqualsSequential(t *testing.T) {
	// Property: splitting a stream across P partial NLQs and merging
	// yields the same summaries as one sequential accumulation — the
	// correctness contract of the parallel aggregate UDF (phase 3).
	f := func(seed int64, parts uint8) bool {
		p := int(parts%8) + 2
		rng := rand.New(rand.NewSource(seed))
		pts := randPoints(rng, 200, 4)
		seq := MustNLQ(4, Triangular)
		partials := make([]*NLQ, p)
		for i := range partials {
			partials[i] = MustNLQ(4, Triangular)
		}
		for i, x := range pts {
			seq.Update(x)
			partials[i%p].Update(x)
		}
		merged := partials[0]
		for _, s := range partials[1:] {
			if err := merged.Merge(s); err != nil {
				return false
			}
		}
		if merged.N != seq.N {
			return false
		}
		for a := 0; a < 4; a++ {
			if math.Abs(merged.L[a]-seq.L[a]) > 1e-6 {
				return false
			}
			if merged.Min[a] != seq.Min[a] || merged.Max[a] != seq.Max[a] {
				return false
			}
			for b := 0; b <= a; b++ {
				if math.Abs(merged.QAt(a, b)-seq.QAt(a, b)) > 1e-5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeTypeMismatch(t *testing.T) {
	a := MustNLQ(3, Full)
	if err := a.Merge(MustNLQ(3, Diagonal)); err == nil {
		t.Fatal("type mismatch must fail")
	}
	if err := a.Merge(MustNLQ(4, Full)); err == nil {
		t.Fatal("dims mismatch must fail")
	}
}

func TestMeanAndReset(t *testing.T) {
	s := MustNLQ(2, Diagonal)
	if _, err := s.Mean(); err == nil {
		t.Fatal("mean of empty must fail")
	}
	s.Update([]float64{2, 4})
	s.Update([]float64{4, 8})
	mu, err := s.Mean()
	if err != nil || mu[0] != 3 || mu[1] != 6 {
		t.Fatalf("mu = %v, %v", mu, err)
	}
	s.Reset()
	if s.N != 0 || s.L[0] != 0 || s.Q[0] != 0 || !math.IsInf(s.Min[0], 1) {
		t.Fatal("reset incomplete")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := MustNLQ(2, Full)
	s.Update([]float64{1, 1})
	c := s.Clone()
	c.Update([]float64{5, 5})
	if s.N != 1 || c.N != 2 {
		t.Fatalf("clone aliases: %g %g", s.N, c.N)
	}
}

func TestHeapBytesWithinSegment(t *testing.T) {
	// MaxD must respect the 64 KB segment; MaxD+32 must not.
	if b := MustNLQ(MaxD, Full).HeapBytes(); b > 64*1024 {
		t.Fatalf("MaxD state takes %d bytes", b)
	}
	if b := MustNLQ(MaxD+32, Full).HeapBytes(); b <= 64*1024 {
		t.Fatalf("MaxD+32 state fits in %d bytes; MaxD is too small", b)
	}
}

func TestMatrixTypeParse(t *testing.T) {
	for s, want := range map[string]MatrixType{
		"diag": Diagonal, "diagonal": Diagonal,
		"triang": Triangular, "triangular": Triangular,
		"full": Full,
	} {
		got, err := ParseMatrixType(s)
		if err != nil || got != want {
			t.Errorf("ParseMatrixType(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMatrixType("sparse"); err == nil {
		t.Error("unknown type must fail")
	}
	if Diagonal.String() != "diag" || Triangular.String() != "triang" || Full.String() != "full" {
		t.Error("String() names changed")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, mt := range []MatrixType{Diagonal, Triangular, Full} {
		s := MustNLQ(4, mt)
		for _, x := range randPoints(rng, 50, 4) {
			s.Update(x)
		}
		got, err := Unpack(s.Pack())
		if err != nil {
			t.Fatalf("%v: %v", mt, err)
		}
		if got.N != s.N || got.D != s.D || got.Type != s.Type {
			t.Fatalf("%v: header mismatch", mt)
		}
		for a := 0; a < 4; a++ {
			if got.L[a] != s.L[a] || got.Min[a] != s.Min[a] || got.Max[a] != s.Max[a] {
				t.Fatalf("%v: vector mismatch", mt)
			}
			for b := 0; b < 4; b++ {
				if got.QAt(a, b) != s.QAt(a, b) {
					t.Fatalf("%v: Q[%d][%d] %g != %g", mt, a, b, got.QAt(a, b), s.QAt(a, b))
				}
			}
		}
	}
}

func TestUnpackErrors(t *testing.T) {
	bad := []string{
		"",
		"1;2;3",
		"x;full;1;1;1;1;1",
		"2;nope;0;0|0;0|0|0;0|0;0|0",
		"2;full;0;0|0;0|0|0;0|0;0|0",   // wrong Q arity
		"2;diag;0;0|0;0|0|0;0|0;0|0",   // wrong diag arity
		"2;triang;0;0|0;0|0;0|0;0|0",   // wrong tri arity (needs 3)
		"2;full;z;0|0;0|0|0|0;0|0;0|0", // bad n
	}
	for _, s := range bad {
		if _, err := Unpack(s); err == nil {
			t.Errorf("Unpack(%q) must fail", s)
		}
	}
}

func TestComputeNLQFromSource(t *testing.T) {
	src := SliceSource{{1, 2}, {3, 4}, {5, 6}}
	s, err := ComputeNLQ(src, Triangular)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.L[0] != 9 || s.L[1] != 12 {
		t.Fatalf("%+v", s)
	}
	bad := SliceSource{{1, 2}, {3}}
	if _, err := ComputeNLQ(bad, Full); err == nil {
		t.Fatal("ragged source must fail")
	}
}

// TestUpdateBlockBitIdentical: the block kernel must produce *bit
// identical* state to row-at-a-time Update over the valid rows — the
// property that makes columnar partials merge byte-for-byte with
// row-path partials in the coordinator's push-down algebra.
func TestUpdateBlockBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, mt := range []MatrixType{Diagonal, Triangular, Full} {
		for trial := 0; trial < 20; trial++ {
			d := 1 + rng.Intn(6)
			rows := rng.Intn(300)
			cols := make([][]float64, d)
			for a := range cols {
				cols[a] = make([]float64, rows)
				for r := range cols[a] {
					cols[a][r] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
				}
			}
			valid := make([]bool, rows)
			for r := range valid {
				valid[r] = rng.Float64() > 0.3
			}
			blk := MustNLQ(d, mt)
			if err := blk.UpdateBlock(cols, valid); err != nil {
				t.Fatal(err)
			}
			seq := MustNLQ(d, mt)
			x := make([]float64, d)
			for r := 0; r < rows; r++ {
				if !valid[r] {
					continue
				}
				for a := range x {
					x[a] = cols[a][r]
				}
				if err := seq.Update(x); err != nil {
					t.Fatal(err)
				}
			}
			if math.Float64bits(blk.N) != math.Float64bits(seq.N) {
				t.Fatalf("%v d=%d: N %v != %v", mt, d, blk.N, seq.N)
			}
			for i := range blk.L {
				if math.Float64bits(blk.L[i]) != math.Float64bits(seq.L[i]) {
					t.Fatalf("%v d=%d: L[%d] %v != %v", mt, d, i, blk.L[i], seq.L[i])
				}
				if math.Float64bits(blk.Min[i]) != math.Float64bits(seq.Min[i]) ||
					math.Float64bits(blk.Max[i]) != math.Float64bits(seq.Max[i]) {
					t.Fatalf("%v d=%d: min/max dim %d diverge", mt, d, i)
				}
			}
			for i := range blk.Q {
				if math.Float64bits(blk.Q[i]) != math.Float64bits(seq.Q[i]) {
					t.Fatalf("%v d=%d: Q[%d] %v != %v", mt, d, i, blk.Q[i], seq.Q[i])
				}
			}
		}
	}
}

// TestUpdateBlockSplitInvariance: feeding one big block or many small
// ones (the storage layer's chunking) accumulates identically.
func TestUpdateBlockSplitInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const d, rows = 4, 257
	cols := make([][]float64, d)
	for a := range cols {
		cols[a] = make([]float64, rows)
		for r := range cols[a] {
			cols[a][r] = rng.NormFloat64()
		}
	}
	valid := make([]bool, rows)
	for r := range valid {
		valid[r] = rng.Float64() > 0.1
	}
	one := MustNLQ(d, Triangular)
	if err := one.UpdateBlock(cols, valid); err != nil {
		t.Fatal(err)
	}
	many := MustNLQ(d, Triangular)
	for off := 0; off < rows; off += 64 {
		end := off + 64
		if end > rows {
			end = rows
		}
		sub := make([][]float64, d)
		for a := range sub {
			sub[a] = cols[a][off:end]
		}
		if err := many.UpdateBlock(sub, valid[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range one.Q {
		if math.Float64bits(one.Q[i]) != math.Float64bits(many.Q[i]) {
			t.Fatalf("Q[%d] diverges across block splits", i)
		}
	}
	if one.N != many.N {
		t.Fatalf("N %v != %v", one.N, many.N)
	}
}

func TestUpdateBlockValidation(t *testing.T) {
	s := MustNLQ(2, Full)
	if err := s.UpdateBlock([][]float64{{1}}, []bool{true}); err == nil {
		t.Fatal("dimension mismatch must be rejected")
	}
	if err := s.UpdateBlock([][]float64{{1}, {2, 3}}, []bool{true}); err == nil {
		t.Fatal("ragged columns must be rejected")
	}
	if err := s.UpdateBlock([][]float64{{}, {}}, nil); err != nil {
		t.Fatalf("empty block: %v", err)
	}
	if s.N != 0 {
		t.Fatal("empty block must not touch N")
	}
}
