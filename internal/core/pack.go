package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Pack serializes the NLQ into the single string value an aggregate UDF
// returns (Teradata UDFs cannot return arrays or matrices; §2.2). The
// layout is "d;type;n;L;Q;min;max" with pipe-separated vectors; for
// Triangular only the lower triangle of Q is emitted and for Diagonal
// only the diagonal, matching the operation counts the UDF performs.
func (s *NLQ) Pack() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d;%s;%s;", s.D, s.Type, formatF(s.N))
	packVec(&b, s.L)
	b.WriteByte(';')
	first := true
	emit := func(v float64) {
		if !first {
			b.WriteByte('|')
		}
		first = false
		b.WriteString(formatF(v))
	}
	switch s.Type {
	case Diagonal:
		for a := 0; a < s.D; a++ {
			emit(s.Q[a*s.D+a])
		}
	case Triangular:
		for a := 0; a < s.D; a++ {
			for c := 0; c <= a; c++ {
				emit(s.Q[a*s.D+c])
			}
		}
	case Full:
		for _, v := range s.Q {
			emit(v)
		}
	}
	b.WriteByte(';')
	packVec(&b, s.Min)
	b.WriteByte(';')
	packVec(&b, s.Max)
	return b.String()
}

// Unpack parses a string produced by Pack.
func Unpack(s string) (*NLQ, error) {
	parts := strings.Split(s, ";")
	if len(parts) != 7 {
		return nil, fmt.Errorf("core: packed NLQ has %d sections, want 7", len(parts))
	}
	d, err := strconv.Atoi(parts[0])
	if err != nil {
		return nil, fmt.Errorf("core: bad packed dimensionality %q", parts[0])
	}
	mt, err := ParseMatrixType(parts[1])
	if err != nil {
		return nil, err
	}
	out, err := NewNLQ(d, mt)
	if err != nil {
		return nil, err
	}
	if out.N, err = strconv.ParseFloat(parts[2], 64); err != nil {
		return nil, fmt.Errorf("core: bad packed n %q", parts[2])
	}
	if err := unpackVecInto(parts[3], out.L); err != nil {
		return nil, fmt.Errorf("core: L: %w", err)
	}
	qvals, err := unpackVec(parts[4])
	if err != nil {
		return nil, fmt.Errorf("core: Q: %w", err)
	}
	switch mt {
	case Diagonal:
		if len(qvals) != d {
			return nil, fmt.Errorf("core: diagonal Q has %d entries, want %d", len(qvals), d)
		}
		for a, v := range qvals {
			out.Q[a*d+a] = v
		}
	case Triangular:
		if len(qvals) != d*(d+1)/2 {
			return nil, fmt.Errorf("core: triangular Q has %d entries, want %d", len(qvals), d*(d+1)/2)
		}
		i := 0
		for a := 0; a < d; a++ {
			for c := 0; c <= a; c++ {
				out.Q[a*d+c] = qvals[i]
				i++
			}
		}
	case Full:
		if len(qvals) != d*d {
			return nil, fmt.Errorf("core: full Q has %d entries, want %d", len(qvals), d*d)
		}
		copy(out.Q, qvals)
	}
	if err := unpackVecInto(parts[5], out.Min); err != nil {
		return nil, fmt.Errorf("core: min: %w", err)
	}
	if err := unpackVecInto(parts[6], out.Max); err != nil {
		return nil, fmt.Errorf("core: max: %w", err)
	}
	return out, nil
}

func formatF(f float64) string { return strconv.FormatFloat(f, 'g', 17, 64) }

func packVec(b *strings.Builder, v []float64) {
	for i, f := range v {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(formatF(f))
	}
}

func unpackVec(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, "|")
	out := make([]float64, len(parts))
	for i, p := range parts {
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", p)
		}
		out[i] = f
	}
	return out, nil
}

func unpackVecInto(s string, dst []float64) error {
	v, err := unpackVec(s)
	if err != nil {
		return err
	}
	if len(v) != len(dst) {
		return fmt.Errorf("got %d entries, want %d", len(v), len(dst))
	}
	copy(dst, v)
	return nil
}
