package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
)

// LinRegModel is the general linear regression Y = β₀ + βᵀx fit by
// least squares on the augmented summaries Q′ = Z·Zᵀ with Z = (X, Y)
// (§3.1-3.2 of the paper): β = (XXᵀ)⁻¹(XYᵀ), where the constant
// dimension X₀ = 1 contributes n and L entries, so the whole normal
// system assembles from one NLQ over (x₁..x_d, y).
type LinRegModel struct {
	D      int       // number of predictor dimensions
	N      float64   // training rows
	Beta   []float64 // d+1 coefficients; Beta[0] is the intercept β₀
	R2     float64   // coefficient of determination (needs second pass)
	SSE    float64   // Σ(yᵢ−ŷᵢ)², from the second pass
	VarB   []float64 // diagonal of var(β), from the second pass
	HasFit bool      // whether the second-pass statistics are filled in
}

// BuildLinReg solves the normal equations from an NLQ computed over
// the augmented points zᵢ = (x₁..x_d, y) — the last dimension is the
// dependent variable. Only n, L and Q are consulted; X is not needed.
func BuildLinReg(s *NLQ) (*LinRegModel, error) {
	if s.Type == Diagonal {
		return nil, errors.New("core: regression requires a triangular or full Q")
	}
	d := s.D - 1 // predictors
	if d < 1 {
		return nil, errors.New("core: regression needs at least one predictor and Y")
	}
	if s.N <= float64(d+1) {
		return nil, fmt.Errorf("core: regression needs n > d+1 (n=%g, d=%d)", s.N, d)
	}
	// Assemble A = [ [n, Lxᵀ], [Lx, Qxx] ]  ((d+1)×(d+1))
	// and b = [ Σy, Qxy ]ᵀ.
	a := matrix.New(d+1, d+1)
	a.Set(0, 0, s.N)
	for i := 0; i < d; i++ {
		a.Set(0, i+1, s.L[i])
		a.Set(i+1, 0, s.L[i])
		for j := 0; j < d; j++ {
			a.Set(i+1, j+1, s.QAt(i, j))
		}
	}
	b := make([]float64, d+1)
	b[0] = s.L[d] // Σy
	for i := 0; i < d; i++ {
		b[i+1] = s.QAt(i, d) // Σ xᵢ·y
	}
	beta, err := a.SolveVec(b)
	if err != nil {
		return nil, fmt.Errorf("core: normal equations are singular (collinear dimensions?): %w", err)
	}
	return &LinRegModel{D: d, N: s.N, Beta: beta}, nil
}

// Predict returns ŷ = β₀ + βᵀx.
func (m *LinRegModel) Predict(x []float64) (float64, error) {
	if len(x) != m.D {
		return 0, fmt.Errorf("core: point has %d dims, model expects %d", len(x), m.D)
	}
	y := m.Beta[0]
	for i, v := range x {
		y += m.Beta[i+1] * v
	}
	return y, nil
}

// FitStatistics performs the second scan the paper requires for
// var(β): Ŷ cannot be derived before β exists, so X is read once more
// to accumulate Σ(yᵢ−ŷᵢ)² (and total sum of squares for R²). src must
// stream the same augmented (x..., y) points used to build the model.
// An accompanying augmented NLQ supplies Σy and Σy² so R² needs no
// extra pass.
func (m *LinRegModel) FitStatistics(src Source, s *NLQ) error {
	if src.Dims() != m.D+1 {
		return fmt.Errorf("core: source has %d dims, want %d", src.Dims(), m.D+1)
	}
	var sse float64
	err := src.Scan(func(z []float64) error {
		yhat, err := m.Predict(z[:m.D])
		if err != nil {
			return err
		}
		r := z[m.D] - yhat
		sse += r * r
		return nil
	})
	if err != nil {
		return err
	}
	m.SSE = sse
	// SST = Σy² − (Σy)²/n from the summaries.
	sy := s.L[m.D]
	syy := s.QAt(m.D, m.D)
	sst := syy - sy*sy/s.N
	if sst > 0 {
		m.R2 = 1 - sse/sst
	} else {
		m.R2 = 0
	}
	// var(β) = (XXᵀ)⁻¹·SSE/(n−d−1); we report its diagonal.
	a := matrix.New(m.D+1, m.D+1)
	a.Set(0, 0, s.N)
	for i := 0; i < m.D; i++ {
		a.Set(0, i+1, s.L[i])
		a.Set(i+1, 0, s.L[i])
		for j := 0; j < m.D; j++ {
			a.Set(i+1, j+1, s.QAt(i, j))
		}
	}
	inv, err := a.Inverse()
	if err != nil {
		return fmt.Errorf("core: var(beta): %w", err)
	}
	dof := s.N - float64(m.D) - 1
	if dof <= 0 {
		return errors.New("core: var(beta) needs n > d+1")
	}
	sigma2 := sse / dof
	m.VarB = make([]float64, m.D+1)
	for i := range m.VarB {
		m.VarB[i] = inv.At(i, i) * sigma2
	}
	m.HasFit = true
	return nil
}

// StdErrors returns the coefficient standard errors √var(βᵢ); valid
// after FitStatistics.
func (m *LinRegModel) StdErrors() ([]float64, error) {
	if !m.HasFit {
		return nil, errors.New("core: call FitStatistics first")
	}
	out := make([]float64, len(m.VarB))
	for i, v := range m.VarB {
		out[i] = math.Sqrt(v)
	}
	return out, nil
}

// TStats returns the coefficient t-statistics βᵢ/se(βᵢ); valid after
// FitStatistics. Coefficients with |t| ≳ 2 are significant at roughly
// the 5% level for the large n this system targets.
func (m *LinRegModel) TStats() ([]float64, error) {
	se, err := m.StdErrors()
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(se))
	for i, s := range se {
		if s == 0 {
			out[i] = math.Inf(1)
			if m.Beta[i] < 0 {
				out[i] = math.Inf(-1)
			}
			continue
		}
		out[i] = m.Beta[i] / s
	}
	return out, nil
}

// PValues returns two-sided normal-approximation p-values for each
// coefficient (the degrees of freedom are n−d−1, which at database
// scale make the t distribution indistinguishable from the normal).
func (m *LinRegModel) PValues() ([]float64, error) {
	ts, err := m.TStats()
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = 2 * (1 - stdNormalCDF(math.Abs(t)))
	}
	return out, nil
}

// stdNormalCDF is Φ(x) via the error function.
func stdNormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}
