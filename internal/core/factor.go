package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
)

// FactorModel is maximum-likelihood factor analysis: the data's
// covariance is modeled as V ≈ Λ·Λᵀ + Ψ with Λ the d×k factor loading
// matrix and Ψ a diagonal matrix of per-dimension unique variances.
// The paper (§3.1) fits it with the EM algorithm of the linear
// Gaussian model family [Roweis & Ghahramani 1999]; like PCA, EM needs
// only the covariance matrix derived from n, L and Q, never X itself.
type FactorModel struct {
	D, K      int
	Lambda    *matrix.Dense // d×k loadings
	Psi       []float64     // d unique variances
	Mu        []float64
	LogLik    float64 // final per-point expected log-likelihood proxy
	Iters     int
	Converged bool
}

// FactorOptions tune the EM fit.
type FactorOptions struct {
	MaxIters int     // default 200
	Tol      float64 // relative change in Λ/Ψ to declare convergence; default 1e-6
}

// BuildFactorAnalysis fits a k-factor model by EM on the covariance
// matrix derived from the summaries.
func BuildFactorAnalysis(s *NLQ, k int, opts FactorOptions) (*FactorModel, error) {
	if k < 1 || k >= s.D {
		return nil, fmt.Errorf("core: factor analysis needs 1 ≤ k < d, got k=%d d=%d", k, s.D)
	}
	if s.N < 2 {
		return nil, errors.New("core: factor analysis requires n ≥ 2")
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 200
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	v, err := s.Covariance()
	if err != nil {
		return nil, err
	}
	mu, err := s.Mean()
	if err != nil {
		return nil, err
	}
	d := s.D

	// Initialize Λ from the top-k principal directions scaled by
	// eigenvalue mass, Ψ from the residual variances.
	eig, err := matrix.SymEigen(v)
	if err != nil {
		return nil, err
	}
	lambda := matrix.New(d, k)
	for j := 0; j < k; j++ {
		scale := math.Sqrt(math.Max(eig.Values[j], 1e-8))
		for i := 0; i < d; i++ {
			lambda.Set(i, j, eig.Vectors.At(i, j)*scale)
		}
	}
	psi := make([]float64, d)
	for i := 0; i < d; i++ {
		res := v.At(i, i)
		for j := 0; j < k; j++ {
			res -= lambda.At(i, j) * lambda.At(i, j)
		}
		psi[i] = math.Max(res, 1e-6)
	}

	m := &FactorModel{D: d, K: k, Mu: mu}
	for iter := 0; iter < opts.MaxIters; iter++ {
		// E step (in covariance form): with the current (Λ, Ψ),
		//   G = (I + ΛᵀΨ⁻¹Λ)⁻¹        (k×k posterior covariance)
		//   B = GΛᵀΨ⁻¹                (k×d posterior projection)
		// expected moments over the data reduce to:
		//   E[z xᵀ]  = B V             (k×d)
		//   E[z zᵀ]  = G + B V Bᵀ      (k×k)
		psiInvLambda := matrix.New(d, k)
		for i := 0; i < d; i++ {
			for j := 0; j < k; j++ {
				psiInvLambda.Set(i, j, lambda.At(i, j)/psi[i])
			}
		}
		g := matrix.Identity(k).Plus(lambda.Transpose().Mul(psiInvLambda))
		gInv, err := g.Inverse()
		if err != nil {
			return nil, fmt.Errorf("core: EM E-step singular: %w", err)
		}
		b := gInv.Mul(psiInvLambda.Transpose())  // k×d
		ezx := b.Mul(v)                          // k×d
		ezz := gInv.Plus(ezx.Mul(b.Transpose())) // k×k

		// M step: Λ' = (E[x zᵀ])(E[z zᵀ])⁻¹; Ψ' = diag(V − Λ' E[z xᵀ]).
		ezzInv, err := ezz.Inverse()
		if err != nil {
			return nil, fmt.Errorf("core: EM M-step singular: %w", err)
		}
		newLambda := ezx.Transpose().Mul(ezzInv) // d×k
		newPsi := make([]float64, d)
		lamEzx := newLambda.Mul(ezx) // d×d
		for i := 0; i < d; i++ {
			newPsi[i] = math.Max(v.At(i, i)-lamEzx.At(i, i), 1e-8)
		}

		// Convergence on parameter movement.
		delta := newLambda.MaxAbsDiff(lambda)
		for i := range psi {
			if ch := math.Abs(newPsi[i] - psi[i]); ch > delta {
				delta = ch
			}
		}
		lambda, psi = newLambda, newPsi
		m.Iters = iter + 1
		if delta < opts.Tol {
			m.Converged = true
			break
		}
	}
	m.Lambda = lambda
	m.Psi = psi
	m.LogLik = factorLogLik(v, lambda, psi)
	return m, nil
}

// factorLogLik computes −½(log|ΛΛᵀ+Ψ| + tr((ΛΛᵀ+Ψ)⁻¹V)) up to
// constants — the per-point expected log-likelihood used to monitor
// fit quality.
func factorLogLik(v, lambda *matrix.Dense, psi []float64) float64 {
	d := len(psi)
	c := lambda.Mul(lambda.Transpose())
	for i := 0; i < d; i++ {
		c.Add(i, i, psi[i])
	}
	inv, err := c.Inverse()
	if err != nil {
		return math.Inf(-1)
	}
	det := c.Det()
	if det <= 0 {
		return math.Inf(-1)
	}
	tr := 0.0
	prod := inv.Mul(v)
	for i := 0; i < d; i++ {
		tr += prod.At(i, i)
	}
	return -0.5 * (math.Log(det) + tr)
}

// ImpliedCovariance returns Λ·Λᵀ + Ψ, the model's covariance estimate.
func (m *FactorModel) ImpliedCovariance() *matrix.Dense {
	c := m.Lambda.Mul(m.Lambda.Transpose())
	for i := 0; i < m.D; i++ {
		c.Add(i, i, m.Psi[i])
	}
	return c
}

// Score computes the posterior factor means E[z|x] = GΛᵀΨ⁻¹(x−µ) for
// one point — factor-analytic dimensionality reduction.
func (m *FactorModel) Score(x []float64) ([]float64, error) {
	if len(x) != m.D {
		return nil, fmt.Errorf("core: point has %d dims, model expects %d", len(x), m.D)
	}
	psiInvLambda := matrix.New(m.D, m.K)
	for i := 0; i < m.D; i++ {
		for j := 0; j < m.K; j++ {
			psiInvLambda.Set(i, j, m.Lambda.At(i, j)/m.Psi[i])
		}
	}
	g := matrix.Identity(m.K).Plus(m.Lambda.Transpose().Mul(psiInvLambda))
	gInv, err := g.Inverse()
	if err != nil {
		return nil, err
	}
	centered := make([]float64, m.D)
	for i, v := range x {
		centered[i] = v - m.Mu[i]
	}
	return gInv.Mul(psiInvLambda.Transpose()).MulVec(centered), nil
}
