package core

import (
	"fmt"

	"repro/internal/matrix"
)

// CorrelationModel holds the d×d Pearson correlation matrix. The paper
// notes it is not itself a predictive model — scoring does not apply —
// but it is the input to PCA and a diagnostic for regression.
type CorrelationModel struct {
	D   int
	N   float64
	Rho *matrix.Dense
}

// BuildCorrelation derives the correlation model from summaries.
func BuildCorrelation(s *NLQ) (*CorrelationModel, error) {
	rho, err := s.Correlation()
	if err != nil {
		return nil, err
	}
	return &CorrelationModel{D: s.D, N: s.N, Rho: rho}, nil
}

// At returns ρab.
func (m *CorrelationModel) At(a, b int) float64 { return m.Rho.At(a, b) }

// StrongestPairs returns the top-k dimension pairs by |ρ| (a < b),
// a convenience for the analyst-facing tools.
func (m *CorrelationModel) StrongestPairs(k int) []CorrPair {
	var pairs []CorrPair
	for a := 0; a < m.D; a++ {
		for b := a + 1; b < m.D; b++ {
			pairs = append(pairs, CorrPair{A: a, B: b, Rho: m.Rho.At(a, b)})
		}
	}
	// Selection sort of the top k is fine at d² scale.
	if k > len(pairs) {
		k = len(pairs)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(pairs); j++ {
			if abs(pairs[j].Rho) > abs(pairs[best].Rho) {
				best = j
			}
		}
		pairs[i], pairs[best] = pairs[best], pairs[i]
	}
	return pairs[:k]
}

// CorrPair is one correlated dimension pair.
type CorrPair struct {
	A, B int
	Rho  float64
}

// String renders the pair for reports.
func (p CorrPair) String() string {
	return fmt.Sprintf("X%d~X%d: %.4f", p.A+1, p.B+1, p.Rho)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
