package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
)

// KMeansModel is the clustering model of §3.1/§3.2: centroids C (d×k),
// per-cluster diagonal radius (variance) matrices R, and weights W.
// Each iteration accumulates one diagonal NLQ per cluster, so
//
//	Cⱼ = Lⱼ/Nⱼ,  Rⱼ = Qⱼ/Nⱼ − Lⱼ·Lⱼᵀ/Nⱼ² (diagonal),  Wⱼ = Nⱼ/n —
//
// the same summary-matrix equations as every other model.
type KMeansModel struct {
	D, K      int
	N         float64
	C         [][]float64 // k centroids of d dims
	R         [][]float64 // k diagonal variances
	W         []float64   // k weights, sum to 1
	SSE       float64     // total within-cluster squared distance
	Iters     int
	Converged bool
}

// KMeansOptions tune the fit.
type KMeansOptions struct {
	MaxIters int     // default 20; the paper discusses one iteration of the incremental variant
	Tol      float64 // relative SSE improvement to continue; default 1e-4
	Seed     int64   // deterministic centroid seeding
	// Incremental, when true, performs the paper's single-scan variant:
	// centroids update online during the one pass instead of per-scan.
	Incremental bool
	// InitialCentroids, when non-nil, bypasses the seeding scan: the
	// k×d centroids are the starting solution. The summary cache derives
	// them from n, L, Q with SeedCentroidsFromSummary, so clustering
	// starts without an extra pass over X.
	InitialCentroids [][]float64
}

// BuildKMeans clusters the source into k partitions. The standard
// variant scans X once per iteration, as the paper notes; the
// incremental variant obtains a "good, but probably suboptimal,
// solution" in a single scan.
func BuildKMeans(src Source, k int, opts KMeansOptions) (*KMeansModel, error) {
	d := src.Dims()
	if d < 1 {
		return nil, errors.New("core: empty source")
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k=%d out of range", k)
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 20
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-4
	}

	var centroids [][]float64
	if opts.InitialCentroids != nil {
		if len(opts.InitialCentroids) != k {
			return nil, fmt.Errorf("core: %d initial centroids, want k=%d", len(opts.InitialCentroids), k)
		}
		centroids = make([][]float64, k)
		for j, c := range opts.InitialCentroids {
			if len(c) != d {
				return nil, fmt.Errorf("core: initial centroid %d has d=%d, want %d", j, len(c), d)
			}
			centroids[j] = append([]float64(nil), c...)
		}
	} else {
		var err error
		centroids, err = seedCentroids(src, k, opts.Seed)
		if err != nil {
			return nil, err
		}
	}
	m := &KMeansModel{D: d, K: k, C: centroids}

	if opts.Incremental {
		return m.incrementalPass(src)
	}

	prevSSE := math.Inf(1)
	for iter := 0; iter < opts.MaxIters; iter++ {
		sums := make([]*NLQ, k)
		for j := range sums {
			sums[j] = MustNLQ(d, Diagonal)
		}
		var sse float64
		err := src.Scan(func(x []float64) error {
			j, dist := m.Closest(x)
			sse += dist
			return sums[j].Update(x)
		})
		if err != nil {
			return nil, err
		}
		if err := m.updateFromSums(sums); err != nil {
			return nil, err
		}
		m.SSE = sse
		m.Iters = iter + 1
		if !math.IsInf(prevSSE, 1) && prevSSE-sse <= opts.Tol*math.Max(prevSSE, 1) {
			m.Converged = true
			break
		}
		prevSSE = sse
	}
	return m, nil
}

// incrementalPass is the one-scan variant: each point updates its
// nearest centroid's running sums immediately, and the centroid moves
// to the running mean.
func (m *KMeansModel) incrementalPass(src Source) (*KMeansModel, error) {
	d, k := m.D, m.K
	sums := make([]*NLQ, k)
	for j := range sums {
		sums[j] = MustNLQ(d, Diagonal)
	}
	var sse float64
	err := src.Scan(func(x []float64) error {
		j, dist := m.Closest(x)
		sse += dist
		if err := sums[j].Update(x); err != nil {
			return err
		}
		// Online centroid drift toward the running mean.
		nj := sums[j].N
		for a := 0; a < d; a++ {
			m.C[j][a] = sums[j].L[a] / nj
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := m.updateFromSums(sums); err != nil {
		return nil, err
	}
	m.SSE = sse
	m.Iters = 1
	return m, nil
}

// updateFromSums recomputes C, R, W from the per-cluster summaries —
// exactly the paper's Cⱼ = Lⱼ/Nⱼ, Rⱼ = Qⱼ/Nⱼ − LⱼLⱼᵀ/Nⱼ², Wⱼ = Nⱼ/n.
func (m *KMeansModel) updateFromSums(sums []*NLQ) error {
	var n float64
	for _, s := range sums {
		n += s.N
	}
	if n == 0 {
		return errors.New("core: no points assigned to any cluster")
	}
	m.N = n
	m.R = make([][]float64, m.K)
	m.W = make([]float64, m.K)
	for j, s := range sums {
		m.W[j] = s.N / n
		m.R[j] = make([]float64, m.D)
		if s.N == 0 {
			continue // empty cluster keeps its previous centroid
		}
		for a := 0; a < m.D; a++ {
			m.C[j][a] = s.L[a] / s.N
		}
		vars, err := s.Variances()
		if err != nil {
			return err
		}
		m.R[j] = vars
	}
	return nil
}

// SeedCentroids exposes the deterministic farthest-point seeding for
// callers that drive the clustering loop themselves (e.g. the
// in-engine K-means, whose iterations run as SQL).
func SeedCentroids(src Source, k int, seed int64) ([][]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k=%d out of range", k)
	}
	return seedCentroids(src, k, seed)
}

// SeedCentroidsFromSummary places k starting centroids from the
// summaries alone — zero-scan K-means initialisation for the summary
// cache. Centroid j sits at µ + t·σ per dimension with t spread
// uniformly over [−1, 1], clipped to the observed [min, max] envelope,
// so the seeds span the data's bulk without touching X. Any NLQ type
// works; the diagonal of Q is all that is read.
func SeedCentroidsFromSummary(s *NLQ, k int) ([][]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k=%d out of range", k)
	}
	if s == nil || s.N < 1 {
		return nil, errors.New("core: empty summary cannot seed centroids")
	}
	mu, err := s.Mean()
	if err != nil {
		return nil, err
	}
	vars, err := s.Variances()
	if err != nil {
		return nil, err
	}
	cents := make([][]float64, k)
	for j := range cents {
		t := 0.0
		if k > 1 {
			t = 2*float64(j)/float64(k-1) - 1
		}
		c := make([]float64, s.D)
		for a := 0; a < s.D; a++ {
			c[a] = mu[a] + t*math.Sqrt(vars[a])
			if s.Min[a] <= s.Max[a] { // envelope is meaningful once n ≥ 1
				c[a] = math.Max(s.Min[a], math.Min(s.Max[a], c[a]))
			}
		}
		cents[j] = c
	}
	return cents, nil
}

// FinalizeKMeans builds a model from per-cluster summaries, the
// paper's Cⱼ = Lⱼ/Nⱼ, Rⱼ = Qⱼ/Nⱼ − LⱼLⱼᵀ/Nⱼ², Wⱼ = Nⱼ/n step.
// Clusters with no summary (empty assignment) keep the centroid given
// in cents.
func FinalizeKMeans(cents [][]float64, sums []*NLQ) (*KMeansModel, error) {
	if len(cents) == 0 || len(cents) != len(sums) {
		return nil, fmt.Errorf("core: %d centroids vs %d summaries", len(cents), len(sums))
	}
	d := len(cents[0])
	m := &KMeansModel{D: d, K: len(cents), C: make([][]float64, len(cents))}
	for j, c := range cents {
		m.C[j] = append([]float64(nil), c...)
	}
	filled := make([]*NLQ, len(sums))
	for j, s := range sums {
		if s == nil {
			s = MustNLQ(d, Diagonal)
		}
		if s.D != d {
			return nil, fmt.Errorf("core: summary %d has d=%d, want %d", j, s.D, d)
		}
		filled[j] = s
	}
	if err := m.updateFromSums(filled); err != nil {
		return nil, err
	}
	return m, nil
}

// Closest returns the index of the nearest centroid under Euclidean
// distance and the squared distance to it — the scoring computation
// the paper's distance/clusterscore UDF pair performs.
func (m *KMeansModel) Closest(x []float64) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for j, c := range m.C {
		d := matrix.SquaredDistance(x, c)
		if d < bestD {
			best, bestD = j, d
		}
	}
	return best, bestD
}

// seedSampleSize bounds the in-memory sample used to seed centroids.
const seedSampleSize = 4096

// seedCentroids picks k starting centroids deterministically with
// farthest-point (k-means++ style greedy) seeding over a bounded
// sample: the first centroid is chosen by the seed, each subsequent
// one is the sample point farthest from its nearest centroid. This is
// deterministic, needs one scan, and avoids the degenerate starts that
// strand K-means in poor local optima.
func seedCentroids(src Source, k int, seed int64) ([][]float64, error) {
	// One scan collects an evenly thinned sample: keep every point
	// until the buffer fills, then keep every 2nd, 4th, ... so the
	// sample always spans the whole stream.
	var sample [][]float64
	stride, i := 1, 0
	err := src.Scan(func(x []float64) error {
		if i%stride == 0 {
			sample = append(sample, append([]float64(nil), x...))
			if len(sample) > seedSampleSize {
				// Halve the sample, double the stride.
				kept := sample[:0]
				for idx := 0; idx < len(sample); idx += 2 {
					kept = append(kept, sample[idx])
				}
				sample = kept
				stride *= 2
			}
		}
		i++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(sample) == 0 {
		return nil, errors.New("core: cannot seed centroids from an empty source")
	}

	cents := make([][]float64, 0, k)
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	first := int(state % uint64(len(sample)))
	cents = append(cents, append([]float64(nil), sample[first]...))

	nearest := make([]float64, len(sample))
	for idx, x := range sample {
		nearest[idx] = matrix.SquaredDistance(x, cents[0])
	}
	for len(cents) < k {
		// Farthest sample point from its nearest centroid.
		best, bestD := 0, -1.0
		for idx, d := range nearest {
			if d > bestD {
				best, bestD = idx, d
			}
		}
		next := append([]float64(nil), sample[best]...)
		if bestD == 0 {
			// All sample points coincide with centroids (k > distinct
			// points); nudge deterministically to keep centroids apart.
			for a := range next {
				next[a] += float64(len(cents)) * 1e-3
			}
		}
		cents = append(cents, next)
		for idx, x := range sample {
			if d := matrix.SquaredDistance(x, next); d < nearest[idx] {
				nearest[idx] = d
			}
		}
	}
	return cents, nil
}
