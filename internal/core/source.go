package core

import "fmt"

// Source is a re-scannable stream of d-dimensional points. Model
// builders that need more than the summary matrices (K-means
// assignment passes, the var(β) second scan of linear regression)
// consume a Source; the engine bridges tables to this interface and
// tests use SliceSource.
type Source interface {
	// Dims returns the point dimensionality d.
	Dims() int
	// Scan streams every point. The slice passed to fn may be reused;
	// fn must copy to retain.
	Scan(fn func(x []float64) error) error
}

// SliceSource adapts an in-memory [][]float64 to Source.
type SliceSource [][]float64

// Dims implements Source.
func (s SliceSource) Dims() int {
	if len(s) == 0 {
		return 0
	}
	return len(s[0])
}

// Scan implements Source.
func (s SliceSource) Scan(fn func(x []float64) error) error {
	for i, x := range s {
		if len(x) != s.Dims() {
			return fmt.Errorf("core: point %d has %d dims, want %d", i, len(x), s.Dims())
		}
		if err := fn(x); err != nil {
			return err
		}
	}
	return nil
}

// ComputeNLQ runs the one-scan summary computation over a source; it
// is the reference the SQL and UDF paths are validated against.
func ComputeNLQ(src Source, mt MatrixType) (*NLQ, error) {
	d := src.Dims()
	s, err := NewNLQ(d, mt)
	if err != nil {
		return nil, err
	}
	if err := src.Scan(s.Update); err != nil {
		return nil, err
	}
	return s, nil
}
