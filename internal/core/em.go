package core

import (
	"errors"
	"fmt"
	"math"
)

// EMModel is a mixture of k Gaussians with diagonal covariance — the
// EM clustering the paper groups with K-means ("K-means and EM are
// based on distance computation", §3.2). Per-cluster sufficient
// statistics are again n, L, Q restricted to the diagonal; the E step
// merely weights each point's contribution.
type EMModel struct {
	D, K      int
	N         float64
	C         [][]float64 // component means
	R         [][]float64 // component diagonal variances
	W         []float64   // mixing weights
	LogLik    float64     // total data log-likelihood
	Iters     int
	Converged bool
}

// EMOptions tune the fit.
type EMOptions struct {
	MaxIters int     // default 50
	Tol      float64 // absolute log-likelihood improvement; default 1e-3
	Seed     int64
	MinVar   float64 // variance floor; default 1e-6
}

// BuildEM fits the mixture by expectation-maximization, scanning the
// source once per iteration. Initialization reuses the K-means seeding.
func BuildEM(src Source, k int, opts EMOptions) (*EMModel, error) {
	d := src.Dims()
	if d < 1 {
		return nil, errors.New("core: empty source")
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k=%d out of range", k)
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 50
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-3
	}
	if opts.MinVar <= 0 {
		opts.MinVar = 1e-6
	}

	cents, err := seedCentroids(src, k, opts.Seed)
	if err != nil {
		return nil, err
	}
	// Initial spherical variances from global spread.
	global := MustNLQ(d, Diagonal)
	if err := src.Scan(global.Update); err != nil {
		return nil, err
	}
	gvars, err := global.Variances()
	if err != nil {
		return nil, err
	}
	m := &EMModel{D: d, K: k, N: global.N, C: cents}
	m.R = make([][]float64, k)
	m.W = make([]float64, k)
	for j := 0; j < k; j++ {
		m.R[j] = make([]float64, d)
		for a := 0; a < d; a++ {
			m.R[j][a] = math.Max(gvars[a], opts.MinVar)
		}
		m.W[j] = 1 / float64(k)
	}

	prevLL := math.Inf(-1)
	resp := make([]float64, k)
	for iter := 0; iter < opts.MaxIters; iter++ {
		// Weighted diagonal summaries per component: the E step turns
		// each point into fractional contributions; the M step is the
		// usual L/N, Q/N − (L/N)² on those weighted sums.
		wN := make([]float64, k)
		wL := make([][]float64, k)
		wQ := make([][]float64, k)
		for j := 0; j < k; j++ {
			wL[j] = make([]float64, d)
			wQ[j] = make([]float64, d)
		}
		var ll float64
		err := src.Scan(func(x []float64) error {
			ll += m.responsibilities(x, resp)
			for j := 0; j < k; j++ {
				r := resp[j]
				if r == 0 {
					continue
				}
				wN[j] += r
				for a, v := range x {
					wL[j][a] += r * v
					wQ[j][a] += r * v * v
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for j := 0; j < k; j++ {
			if wN[j] < 1e-12 {
				continue // dying component keeps parameters
			}
			m.W[j] = wN[j] / m.N
			for a := 0; a < d; a++ {
				mean := wL[j][a] / wN[j]
				m.C[j][a] = mean
				m.R[j][a] = math.Max(wQ[j][a]/wN[j]-mean*mean, opts.MinVar)
			}
		}
		m.LogLik = ll
		m.Iters = iter + 1
		if ll-prevLL < opts.Tol && iter > 0 {
			m.Converged = true
			break
		}
		prevLL = ll
	}
	return m, nil
}

// responsibilities fills resp with p(j|x) and returns log p(x).
func (m *EMModel) responsibilities(x []float64, resp []float64) float64 {
	// Work in log space for stability.
	maxLog := math.Inf(-1)
	for j := 0; j < m.K; j++ {
		resp[j] = math.Log(math.Max(m.W[j], 1e-300)) + m.logGauss(x, j)
		if resp[j] > maxLog {
			maxLog = resp[j]
		}
	}
	var sum float64
	for j := 0; j < m.K; j++ {
		resp[j] = math.Exp(resp[j] - maxLog)
		sum += resp[j]
	}
	for j := 0; j < m.K; j++ {
		resp[j] /= sum
	}
	return maxLog + math.Log(sum)
}

// logGauss is the log density of the diagonal Gaussian component j.
func (m *EMModel) logGauss(x []float64, j int) float64 {
	const log2pi = 1.8378770664093453
	var s float64
	for a, v := range x {
		diff := v - m.C[j][a]
		s += diff*diff/m.R[j][a] + math.Log(m.R[j][a]) + log2pi
	}
	return -0.5 * s
}

// Score returns the most probable component for a point along with the
// posterior probability.
func (m *EMModel) Score(x []float64) (int, float64) {
	resp := make([]float64, m.K)
	m.responsibilities(x, resp)
	best := 0
	for j := 1; j < m.K; j++ {
		if resp[j] > resp[best] {
			best = j
		}
	}
	return best, resp[best]
}
