package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
)

// Covariance returns V = Q/n − L·Lᵀ/n² (d×d), the variance-covariance
// matrix derived purely from the summaries (§3.2 of the paper).
func (s *NLQ) Covariance() (*matrix.Dense, error) {
	if s.N < 1 {
		return nil, errors.New("core: covariance requires n ≥ 1")
	}
	if s.Type == Diagonal {
		return nil, errors.New("core: covariance requires a triangular or full Q")
	}
	v := matrix.New(s.D, s.D)
	n := s.N
	for a := 0; a < s.D; a++ {
		for b := 0; b < s.D; b++ {
			v.Set(a, b, s.QAt(a, b)/n-s.L[a]*s.L[b]/(n*n))
		}
	}
	return v, nil
}

// Correlation returns the d×d Pearson correlation matrix
// ρab = (n·Qab − La·Lb) / (√(n·Qaa − La²)·√(n·Qbb − Lb²)),
// expressed only in terms of n, L and Q — X is not needed.
func (s *NLQ) Correlation() (*matrix.Dense, error) {
	if s.N < 2 {
		return nil, errors.New("core: correlation requires n ≥ 2")
	}
	if s.Type == Diagonal {
		return nil, errors.New("core: correlation requires a triangular or full Q")
	}
	n := s.N
	sd := make([]float64, s.D)
	for a := 0; a < s.D; a++ {
		v := n*s.QAt(a, a) - s.L[a]*s.L[a]
		if v < 0 {
			v = 0 // numerical guard
		}
		sd[a] = math.Sqrt(v)
	}
	rho := matrix.New(s.D, s.D)
	for a := 0; a < s.D; a++ {
		for b := 0; b < s.D; b++ {
			den := sd[a] * sd[b]
			if den == 0 {
				if a == b {
					rho.Set(a, b, 1)
				}
				continue // zero-variance dimension: undefined, report 0
			}
			r := (n*s.QAt(a, b) - s.L[a]*s.L[b]) / den
			// Clamp the ratio as well as the variances: with
			// near-collinear dimensions, cancellation in numerator and
			// denominator can leave |ρ| a few ulps past 1, which poisons
			// consumers computing √(1−ρ²).
			if r > 1 {
				r = 1
			} else if r < -1 {
				r = -1
			}
			rho.Set(a, b, r)
		}
	}
	return rho, nil
}

// Variances returns the per-dimension population variances
// Qaa/n − (La/n)²; valid for any matrix type including Diagonal —
// this is the Rⱼ computation clustering uses.
func (s *NLQ) Variances() ([]float64, error) {
	if s.N < 1 {
		return nil, errors.New("core: variances require n ≥ 1")
	}
	out := make([]float64, s.D)
	n := s.N
	for a := 0; a < s.D; a++ {
		v := s.QAt(a, a)/n - (s.L[a]/n)*(s.L[a]/n)
		if v < 0 {
			v = 0
		}
		out[a] = v
	}
	return out, nil
}

// BlockPlan describes the paper's Table 6 strategy for d > MaxD: Q is
// partitioned into row/column range blocks, each small enough for one
// UDF state, and all block calls are submitted over one synchronized
// table scan. The number of calls is the count the paper reports
// ((d/64)² full blocks arranged over the lower triangle plus the
// diagonal blocks).
type BlockPlan struct {
	D      int
	BlockD int
	Blocks []Block
}

// Block is one (row range, column range) submatrix assignment.
type Block struct {
	RowLo, RowHi int // dimensions [RowLo, RowHi)
	ColLo, ColHi int
}

// PlanBlocks partitions a d-dimensional NLQ computation into blocks of
// at most blockD dimensions. Diagonal blocks compute their own
// triangle; off-diagonal blocks (row range > col range) compute full
// cross-products. Only lower-triangle blocks are emitted, since Q is
// symmetric.
func PlanBlocks(d, blockD int) (*BlockPlan, error) {
	if d < 1 || blockD < 1 {
		return nil, fmt.Errorf("core: invalid block plan d=%d blockD=%d", d, blockD)
	}
	p := &BlockPlan{D: d, BlockD: blockD}
	nb := (d + blockD - 1) / blockD
	for br := 0; br < nb; br++ {
		rlo, rhi := br*blockD, min((br+1)*blockD, d)
		for bc := 0; bc <= br; bc++ {
			clo, chi := bc*blockD, min((bc+1)*blockD, d)
			p.Blocks = append(p.Blocks, Block{RowLo: rlo, RowHi: rhi, ColLo: clo, ColHi: chi})
		}
	}
	return p, nil
}

// Calls returns the number of UDF calls the plan issues, the quantity
// Table 6 reports.
func (p *BlockPlan) Calls() int { return len(p.Blocks) }

// Assemble stitches per-block results into one full-matrix NLQ. Each
// entry of parts corresponds positionally to p.Blocks and must carry
// the linear sums for its row range (diagonal blocks also carry the
// column range implicitly, row==col).
func (p *BlockPlan) Assemble(parts []*BlockResult) (*NLQ, error) {
	if len(parts) != len(p.Blocks) {
		return nil, fmt.Errorf("core: plan has %d blocks, got %d results", len(p.Blocks), len(parts))
	}
	out := MustNLQ(p.D, Full)
	for i, blk := range p.Blocks {
		r := parts[i]
		if r == nil {
			return nil, fmt.Errorf("core: missing result for block %d", i)
		}
		rw, cw := blk.RowHi-blk.RowLo, blk.ColHi-blk.ColLo
		if len(r.Q) != rw*cw {
			return nil, fmt.Errorf("core: block %d result has %d Q entries, want %d", i, len(r.Q), rw*cw)
		}
		if i == 0 {
			out.N = r.N
		} else if r.N != out.N {
			return nil, fmt.Errorf("core: block %d saw n=%g, others saw n=%g", i, r.N, out.N)
		}
		// Linear sums: diagonal blocks carry their row range's L.
		if blk.RowLo == blk.ColLo {
			if len(r.L) != rw {
				return nil, fmt.Errorf("core: block %d result has %d L entries, want %d", i, len(r.L), rw)
			}
			copy(out.L[blk.RowLo:blk.RowHi], r.L)
			copy(out.Min[blk.RowLo:blk.RowHi], r.Min)
			copy(out.Max[blk.RowLo:blk.RowHi], r.Max)
		}
		for a := 0; a < rw; a++ {
			for b := 0; b < cw; b++ {
				ga, gb := blk.RowLo+a, blk.ColLo+b
				v := r.Q[a*cw+b]
				if blk.RowLo == blk.ColLo && gb > ga {
					continue // diagonal blocks fill only their triangle
				}
				out.Q[ga*p.D+gb] = v
				out.Q[gb*p.D+ga] = v
			}
		}
	}
	return out, nil
}

// BlockResult is the packed result of one blocked-UDF call: n, the row
// range's L/min/max (diagonal blocks), and the block's Q slab.
type BlockResult struct {
	N   float64
	L   []float64
	Min []float64
	Max []float64
	Q   []float64 // row-major (rowHi-rowLo)×(colHi-colLo)
}

// ComputeBlock accumulates one block directly from a vector stream; it
// is the reference implementation the blocked UDF is tested against.
func ComputeBlock(blk Block, scan func(fn func(x []float64) error) error) (*BlockResult, error) {
	rw, cw := blk.RowHi-blk.RowLo, blk.ColHi-blk.ColLo
	res := &BlockResult{
		Q:   make([]float64, rw*cw),
		L:   make([]float64, rw),
		Min: make([]float64, rw),
		Max: make([]float64, rw),
	}
	for i := range res.Min {
		res.Min[i] = math.Inf(1)
		res.Max[i] = math.Inf(-1)
	}
	err := scan(func(x []float64) error {
		if len(x) < blk.RowHi || len(x) < blk.ColHi {
			return fmt.Errorf("core: point of %d dims too short for block rows [%d,%d) cols [%d,%d)",
				len(x), blk.RowLo, blk.RowHi, blk.ColLo, blk.ColHi)
		}
		res.N++
		for a := 0; a < rw; a++ {
			v := x[blk.RowLo+a]
			res.L[a] += v
			if v < res.Min[a] {
				res.Min[a] = v
			}
			if v > res.Max[a] {
				res.Max[a] = v
			}
			row := res.Q[a*cw:]
			for b := 0; b < cw; b++ {
				row[b] += v * x[blk.ColLo+b]
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
