package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRemoveInvertsUpdate(t *testing.T) {
	// Property: adding then removing a suffix of points restores the
	// summaries of the prefix (up to float round-off).
	f := func(seed int64, cut uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randPoints(rng, 60, 3)
		split := int(cut) % len(pts)
		for _, mt := range []MatrixType{Diagonal, Triangular, Full} {
			all := MustNLQ(3, mt)
			prefix := MustNLQ(3, mt)
			for i, x := range pts {
				all.Update(x)
				if i < split {
					prefix.Update(x)
				}
			}
			for i := len(pts) - 1; i >= split; i-- {
				if err := all.Remove(pts[i]); err != nil {
					return false
				}
			}
			if all.N != prefix.N {
				return false
			}
			for a := 0; a < 3; a++ {
				if math.Abs(all.L[a]-prefix.L[a]) > 1e-6 {
					return false
				}
				for b := 0; b < 3; b++ {
					if math.Abs(all.QAt(a, b)-prefix.QAt(a, b)) > 1e-4 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveValidation(t *testing.T) {
	s := MustNLQ(2, Full)
	if err := s.Remove([]float64{1, 2}); err == nil {
		t.Fatal("remove from empty must fail")
	}
	s.Update([]float64{1, 2})
	if err := s.Remove([]float64{1}); err == nil {
		t.Fatal("dimension mismatch must fail")
	}
}

func TestSlidingWindowModel(t *testing.T) {
	// A sliding-window correlation stays correct as the window moves.
	rng := rand.New(rand.NewSource(31))
	const window = 200
	stream := make([][]float64, 600)
	for i := range stream {
		x := rng.NormFloat64()
		stream[i] = []float64{x, 3 * x, rng.NormFloat64()}
	}
	s := MustNLQ(3, Triangular)
	for i, x := range stream {
		s.Update(x)
		if i >= window {
			if err := s.Remove(stream[i-window]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.N != window {
		t.Fatalf("window n = %g", s.N)
	}
	rho, err := s.Correlation()
	if err != nil {
		t.Fatal(err)
	}
	if rho.At(0, 1) < 0.999 {
		t.Fatalf("windowed rho = %g", rho.At(0, 1))
	}
}

func TestTStatsAndPValues(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	// X1 strongly predictive, X2 pure noise.
	pts := make([][]float64, 3000)
	for i := range pts {
		x1 := rng.NormFloat64() * 5
		x2 := rng.NormFloat64() * 5
		y := 2*x1 + rng.NormFloat64()
		pts[i] = []float64{x1, x2, y}
	}
	src := SliceSource(pts)
	s, _ := ComputeNLQ(src, Triangular)
	m, err := BuildLinReg(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TStats(); err == nil {
		t.Fatal("TStats before FitStatistics must fail")
	}
	if err := m.FitStatistics(src, s); err != nil {
		t.Fatal(err)
	}
	ts, err := m.TStats()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := m.PValues()
	if err != nil {
		t.Fatal(err)
	}
	// β1 (X1) is massively significant; β2 (X2) is not.
	if math.Abs(ts[1]) < 20 {
		t.Fatalf("t(X1) = %g, expected large", ts[1])
	}
	if ps[1] > 1e-6 {
		t.Fatalf("p(X1) = %g, expected ~0", ps[1])
	}
	if math.Abs(ts[2]) > 4 {
		t.Fatalf("t(X2) = %g, expected small", ts[2])
	}
	if ps[2] < 0.001 {
		t.Fatalf("p(X2) = %g, expected non-significant", ps[2])
	}
	for _, p := range ps {
		if p < 0 || p > 1 {
			t.Fatalf("p out of range: %v", ps)
		}
	}
}

func TestStdNormalCDF(t *testing.T) {
	cases := map[float64]float64{
		0:     0.5,
		1.96:  0.975,
		-1.96: 0.025,
		4:     0.99997,
	}
	for x, want := range cases {
		if got := stdNormalCDF(x); math.Abs(got-want) > 1e-3 {
			t.Errorf("Φ(%g) = %g, want %g", x, got, want)
		}
	}
}
