// Package core implements the paper's central contribution: the
// sufficient-statistic summary matrices n, L, Q computed in a single
// scan of the data set, and the four linear statistical models —
// correlation, linear regression, PCA/factor analysis and K-means
// clustering — built from them.
//
// L = Σ xᵢ is the linear sum of points (d×1) and Q = X·Xᵀ = Σ xᵢxᵢᵀ is
// the quadratic sum of cross-products (d×d). For d << n they are far
// smaller than X yet sufficient to derive the correlation matrix ρ, the
// covariance matrix V = Q/n − L·Lᵀ/n², the regression normal equations
// and per-cluster centroids/radii — so the data set is scanned once and
// the model math runs on d×d matrices.
package core

import (
	"errors"
	"fmt"
	"math"
)

// MatrixType selects how much of Q an NLQ maintains, the paper's
// diagonal/triangular/full optimization (§3.4): clustering needs only
// the diagonal, correlation/PCA/regression the lower triangle, and
// querying/visualization the full matrix.
type MatrixType int

const (
	// Triangular maintains the lower triangle (d(d+1)/2 operations per
	// point). It is the zero value and the default, since Q is
	// symmetric — matching the paper's default.
	Triangular MatrixType = iota
	// Diagonal maintains only Qaa (d operations per point).
	Diagonal
	// Full maintains all d² entries.
	Full
)

// String returns the paper's name for the matrix type.
func (m MatrixType) String() string {
	switch m {
	case Diagonal:
		return "diag"
	case Triangular:
		return "triang"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("MatrixType(%d)", int(m))
	}
}

// ParseMatrixType converts the SQL-level parameter string.
func ParseMatrixType(s string) (MatrixType, error) {
	switch s {
	case "diag", "diagonal":
		return Diagonal, nil
	case "triang", "triangular":
		return Triangular, nil
	case "full":
		return Full, nil
	default:
		return 0, fmt.Errorf("core: unknown matrix type %q", s)
	}
}

// MaxD is the largest dimensionality a single NLQ state supports,
// derived from the 64 KB UDF heap segment exactly as in the paper
// (the Q matrix dominates: 64×64×8 = 32 KB). Higher-dimensional
// problems are computed block-wise (Table 6); see BlockPlan.
const MaxD = 64

// NLQ accumulates n, L, Q (and per-dimension min/max, which the
// paper's UDF also tracks) over a stream of d-dimensional points.
//
// The zero value is not usable; construct with NewNLQ. Q is stored
// row-major; for Triangular only entries with col ≤ row are maintained
// and At symmetrizes on read.
type NLQ struct {
	D    int
	Type MatrixType
	N    float64
	L    []float64
	Q    []float64 // d×d row-major
	Min  []float64
	Max  []float64
}

// NewNLQ returns an empty accumulator for d dimensions.
func NewNLQ(d int, mt MatrixType) (*NLQ, error) {
	if d < 1 {
		return nil, fmt.Errorf("core: dimensionality %d out of range", d)
	}
	s := &NLQ{
		D:    d,
		Type: mt,
		L:    make([]float64, d),
		Q:    make([]float64, d*d),
		Min:  make([]float64, d),
		Max:  make([]float64, d),
	}
	for i := range s.Min {
		s.Min[i] = math.Inf(1)
		s.Max[i] = math.Inf(-1)
	}
	return s, nil
}

// MustNLQ is NewNLQ that panics; for callers with validated d.
func MustNLQ(d int, mt MatrixType) *NLQ {
	s, err := NewNLQ(d, mt)
	if err != nil {
		panic(err)
	}
	return s
}

// Update folds one point into the summaries (the UDF's phase-2 row
// aggregation): n ← n+1, L ← L+x, Q ← Q+x·xᵀ restricted to Type.
func (s *NLQ) Update(x []float64) error {
	if len(x) != s.D {
		return fmt.Errorf("core: point has %d dimensions, want %d", len(x), s.D)
	}
	s.N++
	for a, v := range x {
		s.L[a] += v
		if v < s.Min[a] {
			s.Min[a] = v
		}
		if v > s.Max[a] {
			s.Max[a] = v
		}
	}
	switch s.Type {
	case Diagonal:
		for a, v := range x {
			s.Q[a*s.D+a] += v * v
		}
	case Triangular:
		for a := 0; a < s.D; a++ {
			va := x[a]
			row := s.Q[a*s.D:]
			for b := 0; b <= a; b++ {
				row[b] += va * x[b]
			}
		}
	case Full:
		for a := 0; a < s.D; a++ {
			va := x[a]
			row := s.Q[a*s.D:]
			for b := 0; b < s.D; b++ {
				row[b] += va * x[b]
			}
		}
	}
	return nil
}

// UpdateBlock folds a column-wise batch of points into the summaries:
// cols[a][r] is row r's value for dimension a, and valid[r] gates the
// row (rows with a NULL or non-numeric value in any dimension arrive
// masked out, exactly the rows the row-at-a-time scan skips).
//
// The kernel loops column-major — one accumulator slot at a time over
// the whole block — which is both the cache-friendly layout for the
// d(d+1)/2 quadratic products and *bit-identical* to calling Update
// once per valid row in order: float addition is applied to each slot
// in the same row order either way, so partials computed block-wise
// merge byte-for-byte with partials computed row-wise. The cluster
// coordinator's push-down algebra relies on this.
func (s *NLQ) UpdateBlock(cols [][]float64, valid []bool) error {
	if len(cols) != s.D {
		return fmt.Errorf("core: block has %d dimensions, want %d", len(cols), s.D)
	}
	rows := len(valid)
	for a, col := range cols {
		if len(col) != rows {
			return fmt.Errorf("core: block column %d has %d rows, want %d", a, len(col), rows)
		}
	}
	n := 0
	for _, ok := range valid {
		if ok {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	s.N += float64(n)
	// Dense blocks (no masked row) drop the per-element validity test:
	// the accumulation visits the same rows in the same order either
	// way, so the sums stay bit-identical — the branch-free loops just
	// let the compiler keep the dot products in registers.
	dense := n == rows
	for a, col := range cols {
		col = col[:rows]
		la, mn, mx := s.L[a], s.Min[a], s.Max[a]
		if dense {
			for _, v := range col {
				la += v
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
		} else {
			for r, ok := range valid {
				if !ok {
					continue
				}
				v := col[r]
				la += v
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
		}
		s.L[a], s.Min[a], s.Max[a] = la, mn, mx
	}
	dot := func(ca, cb []float64, q float64) float64 {
		ca, cb = ca[:rows], cb[:rows]
		if dense {
			for r, v := range ca {
				q += v * cb[r]
			}
			return q
		}
		for r, ok := range valid {
			if ok {
				q += ca[r] * cb[r]
			}
		}
		return q
	}
	// dot4 runs four slot accumulations through one pass over the rows.
	// The chains are independent, so the CPU overlaps their add
	// latencies — but each slot's own additions still happen in row
	// order, keeping every sum bit-identical to the sequential path.
	dot4 := func(ca []float64, cb [][]float64, b int, row []float64) {
		c0, c1, c2, c3 := cb[b][:rows], cb[b+1][:rows], cb[b+2][:rows], cb[b+3][:rows]
		q0, q1, q2, q3 := row[b], row[b+1], row[b+2], row[b+3]
		for r, v := range ca[:rows] {
			q0 += v * c0[r]
			q1 += v * c1[r]
			q2 += v * c2[r]
			q3 += v * c3[r]
		}
		row[b], row[b+1], row[b+2], row[b+3] = q0, q1, q2, q3
	}
	switch s.Type {
	case Diagonal:
		for a, col := range cols {
			s.Q[a*s.D+a] = dot(col, col, s.Q[a*s.D+a])
		}
	case Triangular:
		for a := 0; a < s.D; a++ {
			ca := cols[a]
			row := s.Q[a*s.D:]
			b := 0
			if dense {
				for ; b+4 <= a+1; b += 4 {
					dot4(ca, cols, b, row)
				}
			}
			for ; b <= a; b++ {
				row[b] = dot(ca, cols[b], row[b])
			}
		}
	case Full:
		for a := 0; a < s.D; a++ {
			ca := cols[a]
			row := s.Q[a*s.D:]
			b := 0
			if dense {
				for ; b+4 <= s.D; b += 4 {
					dot4(ca, cols, b, row)
				}
			}
			for ; b < s.D; b++ {
				row[b] = dot(ca, cols[b], row[b])
			}
		}
	}
	return nil
}

// Remove subtracts a previously added point — the decremental update
// that makes n, L, Q maintainable over sliding windows and incremental
// model refresh (the paper's future-work direction of keeping
// summaries current without rescanning X). Min/Max are not shrinkable
// from summaries alone and retain their historical envelope.
func (s *NLQ) Remove(x []float64) error {
	if len(x) != s.D {
		return fmt.Errorf("core: point has %d dimensions, want %d", len(x), s.D)
	}
	if s.N < 1 {
		return errors.New("core: cannot remove from an empty NLQ")
	}
	s.N--
	for a, v := range x {
		s.L[a] -= v
	}
	switch s.Type {
	case Diagonal:
		for a, v := range x {
			s.Q[a*s.D+a] -= v * v
		}
	case Triangular:
		for a := 0; a < s.D; a++ {
			va := x[a]
			row := s.Q[a*s.D:]
			for b := 0; b <= a; b++ {
				row[b] -= va * x[b]
			}
		}
	case Full:
		for a := 0; a < s.D; a++ {
			va := x[a]
			row := s.Q[a*s.D:]
			for b := 0; b < s.D; b++ {
				row[b] -= va * x[b]
			}
		}
	}
	return nil
}

// Merge folds other into s (the UDF's phase-3 partial-result
// aggregation across parallel threads).
func (s *NLQ) Merge(other *NLQ) error {
	if other.D != s.D || other.Type != s.Type {
		return fmt.Errorf("core: cannot merge NLQ(d=%d,%v) into NLQ(d=%d,%v)",
			other.D, other.Type, s.D, s.Type)
	}
	s.N += other.N
	for i, v := range other.L {
		s.L[i] += v
	}
	for i, v := range other.Q {
		s.Q[i] += v
	}
	for i := range s.Min {
		if other.Min[i] < s.Min[i] {
			s.Min[i] = other.Min[i]
		}
		if other.Max[i] > s.Max[i] {
			s.Max[i] = other.Max[i]
		}
	}
	return nil
}

// QAt returns Qab, symmetrizing triangular storage. Reading an
// off-diagonal entry of a Diagonal NLQ returns 0.
func (s *NLQ) QAt(a, b int) float64 {
	if s.Type == Triangular && b > a {
		a, b = b, a
	}
	return s.Q[a*s.D+b]
}

// Mean returns µ = L/n.
func (s *NLQ) Mean() ([]float64, error) {
	if s.N == 0 {
		return nil, errors.New("core: empty NLQ has no mean")
	}
	mu := make([]float64, s.D)
	for i, v := range s.L {
		mu[i] = v / s.N
	}
	return mu, nil
}

// Reset clears the accumulator for reuse.
func (s *NLQ) Reset() {
	s.N = 0
	for i := range s.L {
		s.L[i] = 0
		s.Min[i] = math.Inf(1)
		s.Max[i] = math.Inf(-1)
	}
	for i := range s.Q {
		s.Q[i] = 0
	}
}

// Clone returns an independent copy.
func (s *NLQ) Clone() *NLQ {
	c := &NLQ{D: s.D, Type: s.Type, N: s.N}
	c.L = append([]float64(nil), s.L...)
	c.Q = append([]float64(nil), s.Q...)
	c.Min = append([]float64(nil), s.Min...)
	c.Max = append([]float64(nil), s.Max...)
	return c
}

// HeapBytes reports the UDF heap footprint of this state, the quantity
// the 64 KB segment constrains: d² for Q, plus L, Min and Max, plus the
// scalar header.
func (s *NLQ) HeapBytes() int {
	return 8 * (s.D*s.D + 3*s.D + 2)
}
