package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// regressionData generates y = b0 + b·x + noise.
func regressionData(rng *rand.Rand, n, d int, b0 float64, b []float64, noise float64) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		z := make([]float64, d+1)
		y := b0
		for a := 0; a < d; a++ {
			z[a] = rng.NormFloat64() * 5
			y += b[a] * z[a]
		}
		z[d] = y + rng.NormFloat64()*noise
		pts[i] = z
	}
	return pts
}

func TestBuildCorrelationModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([][]float64, 500)
	for i := range pts {
		x := rng.NormFloat64()
		// X2 strongly follows X1; X3 independent.
		pts[i] = []float64{x, 2*x + rng.NormFloat64()*0.1, rng.NormFloat64()}
	}
	s, err := ComputeNLQ(SliceSource(pts), Triangular)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildCorrelation(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) < 0.95 {
		t.Fatalf("rho(X1,X2) = %g, want near 1", m.At(0, 1))
	}
	if math.Abs(m.At(0, 2)) > 0.2 {
		t.Fatalf("rho(X1,X3) = %g, want near 0", m.At(0, 2))
	}
	pairs := m.StrongestPairs(1)
	if len(pairs) != 1 || pairs[0].A != 0 || pairs[0].B != 1 {
		t.Fatalf("strongest = %v", pairs)
	}
	if pairs[0].String() == "" {
		t.Fatal("empty pair description")
	}
}

func TestBuildLinRegRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	trueB := []float64{2, -1.5, 0.5}
	pts := regressionData(rng, 2000, 3, 10, trueB, 0.01)
	s, err := ComputeNLQ(SliceSource(pts), Triangular)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildLinReg(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Beta[0]-10) > 0.05 {
		t.Fatalf("intercept = %g, want 10", m.Beta[0])
	}
	for a, want := range trueB {
		if math.Abs(m.Beta[a+1]-want) > 0.05 {
			t.Fatalf("beta[%d] = %g, want %g", a+1, m.Beta[a+1], want)
		}
	}
	// Predict on a clean point.
	yhat, err := m.Predict([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := 10 + 2*1 - 1.5*2 + 0.5*3
	if math.Abs(yhat-want) > 0.1 {
		t.Fatalf("yhat = %g, want %g", yhat, want)
	}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Fatal("dimension mismatch must fail")
	}
}

func TestLinRegFitStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := regressionData(rng, 1000, 2, 5, []float64{1, 2}, 0.5)
	src := SliceSource(pts)
	s, _ := ComputeNLQ(src, Triangular)
	m, err := BuildLinReg(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.HasFit {
		t.Fatal("fit stats should not be present before the second pass")
	}
	if _, err := m.StdErrors(); err == nil {
		t.Fatal("StdErrors before FitStatistics must fail")
	}
	if err := m.FitStatistics(src, s); err != nil {
		t.Fatal(err)
	}
	if m.R2 < 0.97 {
		t.Fatalf("R² = %g, want near 1 for low-noise data", m.R2)
	}
	if m.SSE <= 0 {
		t.Fatalf("SSE = %g", m.SSE)
	}
	se, err := m.StdErrors()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range se {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("se[%d] = %g", i, v)
		}
	}
}

func TestLinRegDegenerate(t *testing.T) {
	// Collinear predictors: singular normal equations.
	pts := make([][]float64, 50)
	for i := range pts {
		x := float64(i)
		pts[i] = []float64{x, 2 * x, x} // X2 = 2·X1 exactly
	}
	s, _ := ComputeNLQ(SliceSource(pts), Triangular)
	if _, err := BuildLinReg(s); err == nil {
		t.Fatal("collinear regression must fail")
	}
	// Too few rows.
	s2, _ := ComputeNLQ(SliceSource{{1, 2, 3}, {4, 5, 6}}, Triangular)
	if _, err := BuildLinReg(s2); err == nil {
		t.Fatal("n <= d+1 must fail")
	}
	// Diagonal NLQ rejected.
	s3, _ := ComputeNLQ(SliceSource{{1, 2}, {2, 3}, {3, 5}, {4, 6}}, Diagonal)
	if _, err := BuildLinReg(s3); err == nil {
		t.Fatal("diagonal NLQ must be rejected")
	}
}

func TestBuildPCA(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Data with a dominant direction: X2 ≈ X1, X3 small noise.
	pts := make([][]float64, 1000)
	for i := range pts {
		x := rng.NormFloat64() * 10
		pts[i] = []float64{x, x + rng.NormFloat64(), rng.NormFloat64() * 0.5}
	}
	s, _ := ComputeNLQ(SliceSource(pts), Triangular)
	for _, basis := range []PCABasis{CorrelationBasis, CovarianceBasis} {
		m, err := BuildPCA(s, 2, basis)
		if err != nil {
			t.Fatal(err)
		}
		// Orthogonality ΛᵀΛ = I (paper property).
		if got := m.Lambda.Transpose().Mul(m.Lambda); got.MaxAbsDiff(matrix.Identity(2)) > 1e-8 {
			t.Fatalf("basis %v: ΛᵀΛ != I", basis)
		}
		if m.Eigen[0] < m.Eigen[1] {
			t.Fatalf("eigenvalues not descending: %v", m.Eigen)
		}
		if ev := m.ExplainedVariance(); ev < 0.8 || ev > 1+1e-9 {
			t.Fatalf("basis %v: explained variance = %g", basis, ev)
		}
		// Scoring: a point projects to k dims.
		score, err := m.Score(pts[0])
		if err != nil || len(score) != 2 {
			t.Fatalf("score = %v, %v", score, err)
		}
		if _, err := m.Score([]float64{1}); err == nil {
			t.Fatal("dimension mismatch must fail")
		}
		if len(m.Component(0)) != 3 {
			t.Fatal("component length")
		}
	}
}

func TestPCAScoreCentersAtMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randPoints(rng, 300, 4)
	s, _ := ComputeNLQ(SliceSource(pts), Triangular)
	m, err := BuildPCA(s, 2, CovarianceBasis)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := s.Mean()
	score, err := m.Score(mu)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range score {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("score of mean = %v, want 0", score)
		}
	}
}

func TestPCAValidation(t *testing.T) {
	s, _ := ComputeNLQ(SliceSource{{1, 2}, {3, 4}, {5, 7}}, Triangular)
	if _, err := BuildPCA(s, 0, CorrelationBasis); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := BuildPCA(s, 3, CorrelationBasis); err == nil {
		t.Fatal("k>d must fail")
	}
	if _, err := BuildPCA(s, 1, PCABasis(99)); err == nil {
		t.Fatal("bad basis must fail")
	}
}

func TestBuildFactorAnalysis(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Two-factor generative model in 5 dims.
	load := [][]float64{{1, 0}, {0.8, 0.2}, {0, 1}, {0.1, 0.9}, {0.5, 0.5}}
	pts := make([][]float64, 2000)
	for i := range pts {
		z1, z2 := rng.NormFloat64(), rng.NormFloat64()
		x := make([]float64, 5)
		for a := 0; a < 5; a++ {
			x[a] = load[a][0]*z1 + load[a][1]*z2 + rng.NormFloat64()*0.1
		}
		pts[i] = x
	}
	s, _ := ComputeNLQ(SliceSource(pts), Triangular)
	m, err := BuildFactorAnalysis(s, 2, FactorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Converged && m.Iters < 200 {
		t.Fatalf("EM stopped early without converging: %d iters", m.Iters)
	}
	// The implied covariance must approximate the sample covariance.
	v, _ := s.Covariance()
	if diff := m.ImpliedCovariance().MaxAbsDiff(v); diff > 0.1 {
		t.Fatalf("implied covariance off by %g", diff)
	}
	for _, p := range m.Psi {
		if p <= 0 {
			t.Fatalf("psi must be positive: %v", m.Psi)
		}
	}
	score, err := m.Score(pts[0])
	if err != nil || len(score) != 2 {
		t.Fatalf("factor score = %v, %v", score, err)
	}
	if _, err := m.Score([]float64{1}); err == nil {
		t.Fatal("dimension mismatch must fail")
	}
}

func TestFactorAnalysisValidation(t *testing.T) {
	s, _ := ComputeNLQ(SliceSource{{1, 2}, {3, 4}, {5, 7}}, Triangular)
	if _, err := BuildFactorAnalysis(s, 2, FactorOptions{}); err == nil {
		t.Fatal("k >= d must fail")
	}
}

// clusteredData draws points from g well-separated Gaussians.
func clusteredData(rng *rand.Rand, n, d, g int) ([][]float64, [][]float64) {
	centers := make([][]float64, g)
	for j := range centers {
		c := make([]float64, d)
		for a := range c {
			c[a] = float64(j*40) + rng.Float64()*5
		}
		centers[j] = c
	}
	pts := make([][]float64, n)
	for i := range pts {
		c := centers[i%g]
		x := make([]float64, d)
		for a := range x {
			x[a] = c[a] + rng.NormFloat64()
		}
		pts[i] = x
	}
	return pts, centers
}

func TestBuildKMeansRecoversClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts, centers := clusteredData(rng, 600, 3, 3)
	m, err := BuildKMeans(SliceSource(pts), 3, KMeansOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 3 || m.N != 600 {
		t.Fatalf("k=%d n=%g", m.K, m.N)
	}
	// Weights sum to 1 and are near 1/3 each.
	var wsum float64
	for _, w := range m.W {
		wsum += w
		if w < 0.2 || w > 0.5 {
			t.Fatalf("weights unbalanced: %v", m.W)
		}
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("weights sum to %g", wsum)
	}
	// Every true center must be close to some centroid.
	for _, c := range centers {
		j, dist := m.Closest(c)
		if dist > 25 {
			t.Fatalf("center %v is %g away from centroid %d (%v)", c, dist, j, m.C[j])
		}
	}
	// Radii are nonnegative and small relative to cluster separation.
	for j, r := range m.R {
		for a, v := range r {
			if v < 0 || v > 100 {
				t.Fatalf("R[%d][%d] = %g", j, a, v)
			}
		}
	}
	if m.SSE <= 0 {
		t.Fatalf("SSE = %g", m.SSE)
	}
}

func TestKMeansIncrementalOneScan(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pts, _ := clusteredData(rng, 400, 2, 2)
	m, err := BuildKMeans(SliceSource(pts), 2, KMeansOptions{Seed: 3, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Iters != 1 {
		t.Fatalf("incremental variant must use one scan, used %d", m.Iters)
	}
	// Solution should still separate the two blobs reasonably.
	full, err := BuildKMeans(SliceSource(pts), 2, KMeansOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.SSE > 5*full.SSE+1 {
		t.Fatalf("incremental SSE %g too far above converged SSE %g", m.SSE, full.SSE)
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := BuildKMeans(SliceSource{}, 2, KMeansOptions{}); err == nil {
		t.Fatal("empty source must fail")
	}
	if _, err := BuildKMeans(SliceSource{{1}}, 0, KMeansOptions{}); err == nil {
		t.Fatal("k=0 must fail")
	}
	// k > n still works (duplicated seeds with nudges).
	m, err := BuildKMeans(SliceSource{{1, 1}, {2, 2}}, 4, KMeansOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 4 {
		t.Fatalf("k = %d", m.K)
	}
}

func TestBuildEM(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts, centers := clusteredData(rng, 600, 2, 2)
	m, err := BuildEM(SliceSource(pts), 2, EMOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var wsum float64
	for _, w := range m.W {
		wsum += w
	}
	if math.Abs(wsum-1) > 1e-6 {
		t.Fatalf("weights sum to %g", wsum)
	}
	for _, c := range centers {
		bestDist := math.Inf(1)
		for _, mc := range m.C {
			if d := matrix.SquaredDistance(c, mc); d < bestDist {
				bestDist = d
			}
		}
		if bestDist > 25 {
			t.Fatalf("EM missed center %v (best dist %g)", c, bestDist)
		}
	}
	// Posterior scoring is confident for a point at a center.
	j, p := m.Score(centers[0])
	if p < 0.9 {
		t.Fatalf("posterior at center = %g (component %d)", p, j)
	}
	// Log-likelihood improved monotonically enough to converge.
	if !m.Converged && m.Iters >= 50 {
		t.Log("EM hit max iterations; acceptable but unusual for separated blobs")
	}
}

func TestEMValidation(t *testing.T) {
	if _, err := BuildEM(SliceSource{}, 2, EMOptions{}); err == nil {
		t.Fatal("empty source must fail")
	}
	if _, err := BuildEM(SliceSource{{1}}, 0, EMOptions{}); err == nil {
		t.Fatal("k=0 must fail")
	}
}
