package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
)

// PCABasis selects the matrix PCA decomposes: the correlation matrix
// (dimensions rescaled to unit variance) or the covariance matrix
// (original scales) — the two options §3.1 of the paper describes.
type PCABasis int

const (
	// CorrelationBasis decomposes ρ.
	CorrelationBasis PCABasis = iota
	// CovarianceBasis decomposes V.
	CovarianceBasis
)

// PCAModel is the d×k dimensionality reduction Λ with the component
// eigenvalues, the data mean µ (used to center points when scoring)
// and, for the correlation basis, the per-dimension standard
// deviations (used to rescale).
type PCAModel struct {
	D, K   int
	Basis  PCABasis
	Lambda *matrix.Dense // d×k, orthonormal columns
	Eigen  []float64     // k eigenvalues, descending
	Total  float64       // trace of the decomposed matrix
	Mu     []float64
	Sd     []float64 // unit scaling for CorrelationBasis; nil otherwise
}

// BuildPCA computes the top-k principal components from the summary
// matrices: the correlation or covariance matrix is derived from n, L,
// Q and eigendecomposed — the SVD step that runs "outside the DBMS" in
// seconds because the input is only d×d.
func BuildPCA(s *NLQ, k int, basis PCABasis) (*PCAModel, error) {
	if k < 1 || k > s.D {
		return nil, fmt.Errorf("core: k=%d out of range 1..%d", k, s.D)
	}
	if s.N < 2 {
		return nil, errors.New("core: PCA requires n ≥ 2")
	}
	var target *matrix.Dense
	var err error
	m := &PCAModel{D: s.D, K: k, Basis: basis}
	if m.Mu, err = s.Mean(); err != nil {
		return nil, err
	}
	switch basis {
	case CorrelationBasis:
		target, err = s.Correlation()
		if err != nil {
			return nil, err
		}
		vars, err := s.Variances()
		if err != nil {
			return nil, err
		}
		m.Sd = make([]float64, s.D)
		for i, v := range vars {
			m.Sd[i] = sqrtOr1(v)
		}
	case CovarianceBasis:
		target, err = s.Covariance()
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown PCA basis %d", basis)
	}
	eig, err := matrix.SymEigen(target)
	if err != nil {
		return nil, err
	}
	m.Lambda, m.Eigen = eig.TopComponents(k)
	for _, v := range eig.Values {
		m.Total += v
	}
	return m, nil
}

// Score reduces one point: x′ = Λᵀ·(x−µ), with unit-variance scaling
// first under the correlation basis. The result has k dimensions.
func (m *PCAModel) Score(x []float64) ([]float64, error) {
	if len(x) != m.D {
		return nil, fmt.Errorf("core: point has %d dims, model expects %d", len(x), m.D)
	}
	centered := make([]float64, m.D)
	for i, v := range x {
		c := v - m.Mu[i]
		if m.Sd != nil {
			c /= m.Sd[i]
		}
		centered[i] = c
	}
	out := make([]float64, m.K)
	for j := 0; j < m.K; j++ {
		var s float64
		for i := 0; i < m.D; i++ {
			s += m.Lambda.At(i, j) * centered[i]
		}
		out[j] = s
	}
	return out, nil
}

// ExplainedVariance returns the fraction of total variance captured by
// the k retained components.
func (m *PCAModel) ExplainedVariance() float64 {
	if m.Total <= 0 {
		return 0
	}
	var s float64
	for _, v := range m.Eigen {
		if v > 0 {
			s += v
		}
	}
	return s / m.Total
}

// Component returns the j-th component vector Λⱼ (length d).
func (m *PCAModel) Component(j int) []float64 {
	return m.Lambda.Col(j)
}

// sqrtOr1 guards zero-variance dimensions: scaling by 1 leaves the
// (constant) dimension centered at zero rather than dividing by zero.
func sqrtOr1(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return math.Sqrt(v)
}
