package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a matrix cannot be inverted or factored
// because it is singular (or numerically indistinguishable from it).
var ErrSingular = errors.New("matrix: singular matrix")

// Inverse returns m⁻¹ computed by Gauss-Jordan elimination with partial
// pivoting. It returns ErrSingular when a pivot collapses below eps.
//
// This is the paper's "invert Q outside the DBMS" step; Q is (d+1)×(d+1)
// so cubic cost is irrelevant next to the table scan.
func (m *Dense) Inverse() (*Dense, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: Inverse of non-square %d×%d", m.rows, m.cols)
	}
	n := m.rows
	a := m.Clone()
	inv := Identity(n)
	const eps = 1e-12
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column at/below diag.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < eps {
			return nil, ErrSingular
		}
		if pivot != col {
			a.swapRows(col, pivot)
			inv.swapRows(col, pivot)
		}
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Add(r, j, -f*a.At(col, j))
				inv.Add(r, j, -f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func (m *Dense) swapRows(i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Solve solves m·x = b for x using the inverse; b has one column per
// right-hand side. Returns ErrSingular when m is singular.
func (m *Dense) Solve(b *Dense) (*Dense, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.Mul(b), nil
}

// SolveVec solves m·x = b for a single right-hand-side vector.
func (m *Dense) SolveVec(b []float64) ([]float64, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(b), nil
}

// Cholesky returns the lower-triangular L with m = L·Lᵀ. It requires m
// to be symmetric positive definite and returns ErrSingular otherwise.
func (m *Dense) Cholesky() (*Dense, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: Cholesky of non-square %d×%d", m.rows, m.cols)
	}
	n := m.rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// Det returns the determinant via LU elimination with partial pivoting.
func (m *Dense) Det() float64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("matrix: Det of non-square %d×%d", m.rows, m.cols))
	}
	n := m.rows
	a := m.Clone()
	det := 1.0
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return 0
		}
		if pivot != col {
			a.swapRows(col, pivot)
			det = -det
		}
		p := a.At(col, col)
		det *= p
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / p
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Add(r, j, -f*a.At(col, j))
			}
		}
	}
	return det
}
