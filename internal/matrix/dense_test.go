package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBasicAccessors(t *testing.T) {
	m := New(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	m.Add(1, 2, 2)
	if m.At(0, 0) != 1 || m.At(1, 2) != 7 {
		t.Fatalf("At/Set/Add broken: %v", m)
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape %d×%d", m.Rows(), m.Cols())
	}
	r := m.Row(1)
	if r[2] != 7 {
		t.Fatalf("Row = %v", r)
	}
	c := m.Col(2)
	if c[1] != 7 || c[0] != 0 {
		t.Fatalf("Col = %v", c)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceAndClone(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestMulIdentity(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if got := Identity(2).Mul(m); got.MaxAbsDiff(m) != 0 {
		t.Fatalf("I·m != m:\n%v", got)
	}
	if got := m.Mul(Identity(3)); got.MaxAbsDiff(m) != 0 {
		t.Fatalf("m·I != m:\n%v", got)
	}
}

func TestMulKnown(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	want := FromSlice(2, 2, []float64{19, 22, 43, 50})
	if got := a.Mul(b); got.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("got\n%v want\n%v", got, want)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 3+rng.Intn(4), 2+rng.Intn(5))
		return m.Transpose().Transpose().MaxAbsDiff(m) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomMatrix(rng, 4, 3)
	x := []float64{1, -2, 0.5}
	got := m.MulVec(x)
	want := m.Mul(FromSlice(3, 1, x))
	for i, v := range got {
		if !almostEqual(v, want.At(i, 0), 1e-12) {
			t.Fatalf("MulVec[%d]=%g want %g", i, v, want.At(i, 0))
		}
	}
}

func TestPlusMinusScale(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{4, 3, 2, 1})
	if got := a.Plus(b); got.At(0, 0) != 5 || got.At(1, 1) != 5 {
		t.Fatalf("Plus:\n%v", got)
	}
	if got := a.Minus(a); got.MaxAbsDiff(New(2, 2)) != 0 {
		t.Fatalf("a-a != 0")
	}
	if got := a.Scale(2); got.At(1, 0) != 6 {
		t.Fatalf("Scale:\n%v", got)
	}
}

func TestInverseProperty(t *testing.T) {
	// Property: for random diagonally dominant matrices, A·A⁻¹ ≈ I.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randomMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+1) // make well conditioned
		}
		inv, err := a.Inverse()
		if err != nil {
			return false
		}
		return a.Mul(inv).MaxAbsDiff(Identity(n)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseSingular(t *testing.T) {
	s := FromSlice(2, 2, []float64{1, 2, 2, 4})
	if _, err := s.Inverse(); err == nil {
		t.Fatal("singular matrix must fail to invert")
	}
	if _, err := FromSlice(2, 3, make([]float64, 6)).Inverse(); err == nil {
		t.Fatal("non-square matrix must fail to invert")
	}
}

func TestSolveVec(t *testing.T) {
	a := FromSlice(2, 2, []float64{2, 1, 1, 3})
	x, err := a.SolveVec([]float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 → x=1, y=3
	if !almostEqual(x[0], 1, 1e-10) || !almostEqual(x[1], 3, 1e-10) {
		t.Fatalf("SolveVec = %v", x)
	}
}

func TestCholesky(t *testing.T) {
	// SPD matrix.
	a := FromSlice(3, 3, []float64{4, 2, 0, 2, 5, 1, 0, 1, 6})
	l, err := a.Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Mul(l.Transpose()); got.MaxAbsDiff(a) > 1e-10 {
		t.Fatalf("L·Lᵀ != A:\n%v", got)
	}
	// Non-PD must fail.
	bad := FromSlice(2, 2, []float64{1, 2, 2, 1})
	if _, err := bad.Cholesky(); err == nil {
		t.Fatal("non-PD matrix must fail Cholesky")
	}
}

func TestDet(t *testing.T) {
	if d := FromSlice(2, 2, []float64{1, 2, 3, 4}).Det(); !almostEqual(d, -2, 1e-12) {
		t.Fatalf("Det = %g", d)
	}
	if d := Identity(5).Det(); !almostEqual(d, 1, 1e-12) {
		t.Fatalf("Det(I) = %g", d)
	}
	if d := FromSlice(2, 2, []float64{1, 2, 2, 4}).Det(); d != 0 {
		t.Fatalf("Det(singular) = %g", d)
	}
}

func TestDetMatchesInverseExistence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		a := randomMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+1)
		}
		det := a.Det()
		inv, err := a.Inverse()
		if err != nil {
			return false
		}
		// det(A)·det(A⁻¹) ≈ 1
		return almostEqual(det*inv.Det(), 1, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDotAndSquaredDistance(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("Dot = %g", d)
	}
	if d := SquaredDistance([]float64{0, 0}, []float64{3, 4}); d != 25 {
		t.Fatalf("SquaredDistance = %g", d)
	}
}

func TestIsSymmetric(t *testing.T) {
	if !Identity(3).IsSymmetric(0) {
		t.Fatal("identity must be symmetric")
	}
	if FromSlice(2, 2, []float64{1, 2, 3, 4}).IsSymmetric(1e-9) {
		t.Fatal("asymmetric matrix misdetected")
	}
	if FromSlice(2, 3, make([]float64, 6)).IsSymmetric(0) {
		t.Fatal("non-square cannot be symmetric")
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}
