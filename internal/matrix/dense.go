// Package matrix provides the dense linear algebra the statistical
// models need once the summary matrices n, L, Q have been computed:
// multiplication, inversion, Cholesky and symmetric eigendecomposition.
//
// The paper performs these operations *outside* the DBMS because they
// are small (d×d with d << n); this package is that "outside" math
// library, implemented from scratch on the standard library.
package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix of float64.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %d×%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromSlice builds a rows×cols matrix copying data (row-major).
func FromSlice(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: FromSlice got %d values for %d×%d", len(data), rows, cols))
	}
	m := New(rows, cols)
	copy(m.data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add increments element (i, j) by v.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of %d×%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Transpose returns mᵀ.
func (m *Dense) Transpose() *Dense {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Scale returns c·m as a new matrix.
func (m *Dense) Scale(c float64) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= c
	}
	return out
}

// Plus returns m + b.
func (m *Dense) Plus(b *Dense) *Dense {
	m.sameShape(b)
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out
}

// Minus returns m − b.
func (m *Dense) Minus(b *Dense) *Dense {
	m.sameShape(b)
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out
}

func (m *Dense) sameShape(b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("matrix: shape mismatch %d×%d vs %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
}

// Mul returns the matrix product m·b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("matrix: cannot multiply %d×%d by %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k, mv := range mi {
			if mv == 0 {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range bk {
				oi[j] += mv * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
func (m *Dense) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("matrix: cannot multiply %d×%d by vector of %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		mi := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range mi {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MaxAbsDiff returns the largest absolute elementwise difference
// between m and b; useful in tests and convergence checks.
func (m *Dense) MaxAbsDiff(b *Dense) float64 {
	m.sameShape(b)
	var max float64
	for i := range m.data {
		if d := math.Abs(m.data[i] - b.data[i]); d > max {
			max = d
		}
	}
	return max
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("matrix: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// SquaredDistance returns ‖a−b‖², the squared Euclidean distance used
// by K-means scoring.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("matrix: SquaredDistance length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
