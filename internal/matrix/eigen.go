package matrix

import (
	"fmt"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix: values in
// descending order and the corresponding orthonormal eigenvectors as
// the *columns* of Vectors.
type Eigen struct {
	Values  []float64
	Vectors *Dense
}

// SymEigen computes the eigendecomposition of a symmetric matrix using
// the cyclic Jacobi rotation method. For the d×d correlation and
// covariance matrices PCA works on (d ≤ a few hundred) Jacobi is
// accurate and fast, and for symmetric positive semi-definite input it
// coincides with the SVD the paper uses.
func SymEigen(m *Dense) (*Eigen, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: SymEigen of non-square %d×%d", m.rows, m.cols)
	}
	if !m.IsSymmetric(1e-8) {
		return nil, fmt.Errorf("matrix: SymEigen requires a symmetric matrix")
	}
	n := m.rows
	a := m.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a.At(i, j) * a.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(a, v, p, q, c, s)
			}
		}
	}

	eig := &Eigen{Values: make([]float64, n), Vectors: New(n, n)}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = a.At(i, i)
	}
	sort.Slice(order, func(x, y int) bool { return diag[order[x]] > diag[order[y]] })
	for rank, idx := range order {
		eig.Values[rank] = diag[idx]
		for r := 0; r < n; r++ {
			eig.Vectors.Set(r, rank, v.At(r, idx))
		}
	}
	return eig, nil
}

// rotate applies the Jacobi rotation J(p,q,θ) to a (two-sided) and
// accumulates it into the eigenvector matrix v (one-sided).
func rotate(a, v *Dense, p, q int, c, s float64) {
	n := a.rows
	for k := 0; k < n; k++ {
		akp, akq := a.At(k, p), a.At(k, q)
		a.Set(k, p, c*akp-s*akq)
		a.Set(k, q, s*akp+c*akq)
	}
	for k := 0; k < n; k++ {
		apk, aqk := a.At(p, k), a.At(q, k)
		a.Set(p, k, c*apk-s*aqk)
		a.Set(q, k, s*apk+c*aqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

// TopComponents returns the first k eigenvectors as a d×k matrix Λ —
// the dimensionality reduction matrix of PCA — along with their
// eigenvalues.
func (e *Eigen) TopComponents(k int) (*Dense, []float64) {
	d := e.Vectors.Rows()
	if k < 1 || k > d {
		panic(fmt.Sprintf("matrix: TopComponents k=%d out of range 1..%d", k, d))
	}
	lambda := New(d, k)
	for i := 0; i < d; i++ {
		for j := 0; j < k; j++ {
			lambda.Set(i, j, e.Vectors.At(i, j))
		}
	}
	vals := make([]float64, k)
	copy(vals, e.Values[:k])
	return lambda, vals
}
