package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	m := FromSlice(3, 3, []float64{
		3, 0, 0,
		0, 1, 0,
		0, 0, 2,
	})
	e, err := SymEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, v := range want {
		if !almostEqual(e.Values[i], v, 1e-10) {
			t.Fatalf("values = %v, want %v", e.Values, want)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	e, err := SymEigen(FromSlice(2, 2, []float64{2, 1, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Values[0], 3, 1e-10) || !almostEqual(e.Values[1], 1, 1e-10) {
		t.Fatalf("values = %v", e.Values)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	// Property: V·diag(λ)·Vᵀ ≈ A and VᵀV ≈ I for random symmetric A.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		e, err := SymEigen(a)
		if err != nil {
			return false
		}
		d := New(n, n)
		for i, v := range e.Values {
			d.Set(i, i, v)
		}
		recon := e.Vectors.Mul(d).Mul(e.Vectors.Transpose())
		ortho := e.Vectors.Transpose().Mul(e.Vectors)
		return recon.MaxAbsDiff(a) < 1e-8 && ortho.MaxAbsDiff(Identity(n)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigenValuesSortedDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 6
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if e.Values[i] > e.Values[i-1]+1e-12 {
			t.Fatalf("values not descending: %v", e.Values)
		}
	}
}

func TestSymEigenRejectsBadInput(t *testing.T) {
	if _, err := SymEigen(FromSlice(2, 3, make([]float64, 6))); err == nil {
		t.Fatal("non-square must be rejected")
	}
	if _, err := SymEigen(FromSlice(2, 2, []float64{1, 2, 3, 4})); err == nil {
		t.Fatal("asymmetric must be rejected")
	}
}

func TestTopComponentsOrthogonal(t *testing.T) {
	// ΛᵀΛ = I_k: the paper's orthogonality property of the reduction matrix.
	rng := rand.New(rand.NewSource(3))
	n := 8
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	k := 3
	lambda, vals := e.TopComponents(k)
	if lambda.Rows() != n || lambda.Cols() != k || len(vals) != k {
		t.Fatalf("shape %d×%d, %d values", lambda.Rows(), lambda.Cols(), len(vals))
	}
	if got := lambda.Transpose().Mul(lambda); got.MaxAbsDiff(Identity(k)) > 1e-8 {
		t.Fatalf("ΛᵀΛ != I:\n%v", got)
	}
}

func TestTopComponentsPanicsOutOfRange(t *testing.T) {
	e, _ := SymEigen(Identity(3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k out of range")
		}
	}()
	e.TopComponents(4)
}

func TestSymEigenTraceInvariant(t *testing.T) {
	// Sum of eigenvalues equals the trace.
	rng := rand.New(rand.NewSource(5))
	n := 5
	a := New(n, n)
	trace := 0.0
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
		trace += a.At(i, i)
	}
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range e.Values {
		sum += v
	}
	if math.Abs(sum-trace) > 1e-9 {
		t.Fatalf("Σλ = %g, trace = %g", sum, trace)
	}
}
