package expr

import (
	"fmt"

	"repro/internal/engine/sqlparser"
)

// The vector program is the columnar counterpart of the Evaluator tree:
// instead of walking the tree once per row, a compiled program walks it
// once per *block*, each node producing a whole column of results. Only
// the shapes the batch path can execute exactly like the row path are
// compilable — DOUBLE column references, numeric literals, arithmetic,
// comparisons, three-valued AND/OR/NOT and IS [NOT] NULL. Everything
// else (functions, CASE, IN, BETWEEN, CAST, VARCHAR/BIGINT columns,
// parameters) fails compilation with errVectorUnsupported and the
// caller falls back to the tree walker, so vectorization is always an
// optimization, never a semantics change.
//
// Numeric results are (vals []float64, valid []bool) pairs; boolean
// results are Kleene truth vectors ([]int8: 0 false, 1 true, 2 NULL).
// Every node evaluates under an *active-lane mask*: AND/OR evaluate
// their right operand only on lanes the row path would reach (left not
// already deciding), and projections evaluate only on lanes the WHERE
// kept — so a division by zero in a lane the row path never evaluates
// cannot raise a spurious error. Division by zero on an active lane
// raises the same typed ErrDivisionByZero the scalar evaluator does.

// errVectorUnsupported is returned by CompileVector for expression
// shapes the vector program cannot execute; callers fall back to the
// scalar path.
var errVectorUnsupported = fmt.Errorf("expr: expression not vectorizable")

// IsVectorUnsupported classifies CompileVector failures that simply
// mean "use the row path" (as opposed to genuine compile errors such as
// unresolvable columns).
func IsVectorUnsupported(err error) bool { return err == errVectorUnsupported }

// Kleene truth values, as produced by EvalBool truth vectors.
const (
	TruthFalse int8 = 0
	TruthTrue  int8 = 1
	TruthNull  int8 = 2

	vFalse = TruthFalse
	vTrue  = TruthTrue
	vNull  = TruthNull
)

// vecCtx is the per-block evaluation context shared by a program's
// nodes: the input columns (indexed by slot) and the live row count.
type vecCtx struct {
	rows  int
	cols  [][]float64
	valid [][]bool
	ops   int64 // lanes processed, reported to the vector-ops counter
}

type numNode interface {
	evalNum(c *vecCtx, mask []bool) (vals []float64, valid []bool, err error)
}

type boolNode interface {
	evalBool(c *vecCtx, mask []bool) (truth []int8, err error)
}

// VectorProgram is a compiled batch expression. A program is stateful
// (nodes reuse output buffers across blocks) and therefore not safe for
// concurrent use — compile one per partition worker, exactly like
// scalar Evaluators.
type VectorProgram struct {
	num  numNode  // set when the expression is numeric-typed
	bool boolNode // set when the expression is boolean-typed
	cols []int    // referenced flat ordinals, in first-reference order
	ctx  vecCtx
	mask []bool
}

// IsBool reports whether the program produces a truth vector (a
// predicate) rather than a numeric column.
func (p *VectorProgram) IsBool() bool { return p.bool != nil }

// Cols returns the flat column ordinals the program reads, in slot
// order: the caller supplies exactly these columns to EvalNum/EvalBool.
func (p *VectorProgram) Cols() []int { return p.cols }

// begin primes the shared context for one block.
func (p *VectorProgram) begin(cols [][]float64, valid [][]bool, rows int, mask []bool) []bool {
	p.ctx.rows = rows
	p.ctx.cols = cols
	p.ctx.valid = valid
	p.ctx.ops += int64(rows)
	if mask == nil {
		if cap(p.mask) < rows {
			p.mask = make([]bool, rows)
		}
		mask = p.mask[:rows]
		for i := range mask {
			mask[i] = true
		}
	}
	return mask
}

// Ops drains the count of lanes the program has processed since the
// last call; callers feed it to the vector-ops counter.
func (p *VectorProgram) Ops() int64 {
	n := p.ctx.ops
	p.ctx.ops = 0
	return n
}

// EvalNum evaluates a numeric program over one block. cols/valid are
// indexed by Cols() slot; mask (nil = all lanes) gates which lanes are
// computed — unmasked lanes hold unspecified values. The returned
// slices are owned by the program and valid until the next call.
func (p *VectorProgram) EvalNum(cols [][]float64, valid [][]bool, rows int, mask []bool) ([]float64, []bool, error) {
	if p.num == nil {
		return nil, nil, fmt.Errorf("expr: vector program is boolean-typed")
	}
	mask = p.begin(cols, valid, rows, mask)
	return p.num.evalNum(&p.ctx, mask)
}

// EvalBool evaluates a predicate program over one block; see EvalNum.
func (p *VectorProgram) EvalBool(cols [][]float64, valid [][]bool, rows int, mask []bool) ([]int8, error) {
	if p.bool == nil {
		return nil, fmt.Errorf("expr: vector program is numeric-typed")
	}
	mask = p.begin(cols, valid, rows, mask)
	return p.bool.evalBool(&p.ctx, mask)
}

// CompileVector compiles e into a vector program. resolve maps column
// references to flat ordinals (same contract as Compile); vectorizable
// reports whether a flat ordinal is a DOUBLE column the block scan can
// supply. Unsupported shapes return errVectorUnsupported.
func CompileVector(e sqlparser.Expr, resolve Resolver, vectorizable func(ordinal int) bool) (*VectorProgram, error) {
	vc := &vecCompiler{resolve: resolve, vectorizable: vectorizable, slots: map[int]int{}}
	p := &VectorProgram{}
	num, bol, err := vc.compile(e)
	if err != nil {
		return nil, err
	}
	p.num, p.bool = num, bol
	p.cols = vc.cols
	return p, nil
}

type vecCompiler struct {
	resolve      Resolver
	vectorizable func(int) bool
	cols         []int
	slots        map[int]int // flat ordinal -> slot
}

// compile returns exactly one of (numNode, boolNode).
func (vc *vecCompiler) compile(e sqlparser.Expr) (numNode, boolNode, error) {
	switch e := e.(type) {
	case *sqlparser.NumberLit:
		v := e.Float
		if e.IsInt {
			v = float64(e.Int)
		}
		return &vecConst{v: v}, nil, nil
	case *sqlparser.ColumnRef:
		if vc.resolve == nil {
			return nil, nil, errVectorUnsupported
		}
		idx, err := vc.resolve(e.Table, e.Name)
		if err != nil {
			return nil, nil, err
		}
		if !vc.vectorizable(idx) {
			return nil, nil, errVectorUnsupported
		}
		slot, ok := vc.slots[idx]
		if !ok {
			slot = len(vc.cols)
			vc.slots[idx] = slot
			vc.cols = append(vc.cols, idx)
		}
		return vecCol{slot: slot}, nil, nil
	case *sqlparser.UnaryExpr:
		num, bol, err := vc.compile(e.X)
		if err != nil {
			return nil, nil, err
		}
		switch e.Op {
		case "-":
			if num == nil {
				return nil, nil, errVectorUnsupported
			}
			return &vecNeg{x: num}, nil, nil
		case "NOT":
			if bol == nil {
				return nil, nil, errVectorUnsupported
			}
			return nil, &vecNot{x: bol}, nil
		}
		return nil, nil, errVectorUnsupported
	case *sqlparser.BinaryExpr:
		op, ok := binOps[e.Op]
		if !ok {
			return nil, nil, errVectorUnsupported
		}
		if op == opConcat {
			return nil, nil, errVectorUnsupported
		}
		ln, lb, err := vc.compile(e.L)
		if err != nil {
			return nil, nil, err
		}
		rn, rb, err := vc.compile(e.R)
		if err != nil {
			return nil, nil, err
		}
		switch op {
		case opAdd, opSub, opMul, opDiv, opMod:
			if ln == nil || rn == nil {
				return nil, nil, errVectorUnsupported
			}
			return &vecArith{op: op, l: ln, r: rn}, nil, nil
		case opEq, opNe, opLt, opLe, opGt, opGe:
			if ln == nil || rn == nil {
				return nil, nil, errVectorUnsupported
			}
			return nil, &vecCmp{op: op, l: ln, r: rn}, nil
		case opAnd, opOr:
			if lb == nil || rb == nil {
				return nil, nil, errVectorUnsupported
			}
			return nil, &vecLogic{and: op == opAnd, l: lb, r: rb}, nil
		}
		return nil, nil, errVectorUnsupported
	case *sqlparser.IsNullExpr:
		num, _, err := vc.compile(e.X)
		if err != nil {
			return nil, nil, err
		}
		if num == nil {
			return nil, nil, errVectorUnsupported
		}
		return nil, &vecIsNull{x: num, negate: e.Negate}, nil
	default:
		return nil, nil, errVectorUnsupported
	}
}

// ---- nodes ---------------------------------------------------------

// vecConst broadcasts a literal.
type vecConst struct {
	v     float64
	vals  []float64
	valid []bool
}

func (n *vecConst) evalNum(c *vecCtx, mask []bool) ([]float64, []bool, error) {
	if cap(n.vals) < c.rows {
		n.vals = make([]float64, c.rows)
		n.valid = make([]bool, c.rows)
	}
	vals, valid := n.vals[:c.rows], n.valid[:c.rows]
	for i := range vals {
		vals[i] = n.v
		valid[i] = true
	}
	c.ops += int64(c.rows)
	return vals, valid, nil
}

// vecCol reads an input column in place (no copy).
type vecCol struct{ slot int }

func (n vecCol) evalNum(c *vecCtx, mask []bool) ([]float64, []bool, error) {
	return c.cols[n.slot], c.valid[n.slot], nil
}

type vecNeg struct {
	x     numNode
	vals  []float64
	valid []bool
}

func (n *vecNeg) evalNum(c *vecCtx, mask []bool) ([]float64, []bool, error) {
	xv, xok, err := n.x.evalNum(c, mask)
	if err != nil {
		return nil, nil, err
	}
	if cap(n.vals) < c.rows {
		n.vals = make([]float64, c.rows)
		n.valid = make([]bool, c.rows)
	}
	vals, valid := n.vals[:c.rows], n.valid[:c.rows]
	for r := range vals {
		if !mask[r] {
			valid[r] = false
			continue
		}
		valid[r] = xok[r]
		vals[r] = -xv[r]
	}
	c.ops += int64(c.rows)
	return vals, valid, nil
}

type vecArith struct {
	op    binOp
	l, r  numNode
	vals  []float64
	valid []bool
}

func (n *vecArith) evalNum(c *vecCtx, mask []bool) ([]float64, []bool, error) {
	lv, lok, err := n.l.evalNum(c, mask)
	if err != nil {
		return nil, nil, err
	}
	rv, rok, err := n.r.evalNum(c, mask)
	if err != nil {
		return nil, nil, err
	}
	if cap(n.vals) < c.rows {
		n.vals = make([]float64, c.rows)
		n.valid = make([]bool, c.rows)
	}
	vals, valid := n.vals[:c.rows], n.valid[:c.rows]
	c.ops += int64(c.rows)
	for r := range vals {
		if !mask[r] || !lok[r] || !rok[r] {
			valid[r] = false
			continue
		}
		a, b := lv[r], rv[r]
		switch n.op {
		case opAdd:
			vals[r] = a + b
		case opSub:
			vals[r] = a - b
		case opMul:
			vals[r] = a * b
		case opDiv:
			if b == 0 {
				return nil, nil, ErrDivisionByZero
			}
			vals[r] = a / b
		case opMod:
			// Shared semantics with the scalar evaluator: math.Mod with a
			// typed error on zero divisors (see floatMod).
			m, err := floatMod(a, b)
			if err != nil {
				return nil, nil, err
			}
			vals[r] = m
		}
		valid[r] = true
	}
	return vals, valid, nil
}

type vecCmp struct {
	op    binOp
	l, r  numNode
	truth []int8
}

func (n *vecCmp) evalBool(c *vecCtx, mask []bool) ([]int8, error) {
	lv, lok, err := n.l.evalNum(c, mask)
	if err != nil {
		return nil, err
	}
	rv, rok, err := n.r.evalNum(c, mask)
	if err != nil {
		return nil, err
	}
	if cap(n.truth) < c.rows {
		n.truth = make([]int8, c.rows)
	}
	truth := n.truth[:c.rows]
	c.ops += int64(c.rows)
	for r := range truth {
		if !mask[r] {
			continue
		}
		if !lok[r] || !rok[r] {
			truth[r] = vNull
			continue
		}
		// Mirror sqltypes.Compare's float ordering exactly (NaN compares
		// equal to everything there, via the double-negative default).
		cmp := 0
		switch {
		case lv[r] < rv[r]:
			cmp = -1
		case lv[r] > rv[r]:
			cmp = 1
		}
		var b bool
		switch n.op {
		case opEq:
			b = cmp == 0
		case opNe:
			b = cmp != 0
		case opLt:
			b = cmp < 0
		case opLe:
			b = cmp <= 0
		case opGt:
			b = cmp > 0
		default:
			b = cmp >= 0
		}
		if b {
			truth[r] = vTrue
		} else {
			truth[r] = vFalse
		}
	}
	return truth, nil
}

type vecLogic struct {
	and   bool
	l, r  boolNode
	truth []int8
	rmask []bool
}

func (n *vecLogic) evalBool(c *vecCtx, mask []bool) ([]int8, error) {
	lt, err := n.l.evalBool(c, mask)
	if err != nil {
		return nil, err
	}
	if cap(n.truth) < c.rows {
		n.truth = make([]int8, c.rows)
		n.rmask = make([]bool, c.rows)
	}
	truth, rmask := n.truth[:c.rows], n.rmask[:c.rows]
	// Short-circuit-aware masking: the right operand is evaluated only
	// on lanes the row path would evaluate it — where the left side did
	// not already decide. A division by zero hiding behind `x <> 0 AND
	// 1/x > 2` therefore cannot fire on the x = 0 lanes.
	short := vFalse
	if !n.and {
		short = vTrue
	}
	need := false
	for r := range rmask {
		on := mask[r] && lt[r] != short
		rmask[r] = on
		need = need || on
	}
	var rt []int8
	if need {
		rt, err = n.r.evalBool(c, rmask)
		if err != nil {
			return nil, err
		}
	}
	c.ops += int64(c.rows)
	for r := range truth {
		if !mask[r] {
			continue
		}
		if lt[r] == short {
			truth[r] = short
			continue
		}
		rv := rt[r]
		switch {
		case rv == short:
			truth[r] = short
		case lt[r] == vNull || rv == vNull:
			truth[r] = vNull
		default:
			truth[r] = 1 - short // the non-deciding definite value
		}
	}
	return truth, nil
}

type vecNot struct {
	x     boolNode
	truth []int8
}

func (n *vecNot) evalBool(c *vecCtx, mask []bool) ([]int8, error) {
	xt, err := n.x.evalBool(c, mask)
	if err != nil {
		return nil, err
	}
	if cap(n.truth) < c.rows {
		n.truth = make([]int8, c.rows)
	}
	truth := n.truth[:c.rows]
	c.ops += int64(c.rows)
	for r := range truth {
		if !mask[r] {
			continue
		}
		switch xt[r] {
		case vNull:
			truth[r] = vNull
		case vTrue:
			truth[r] = vFalse
		default:
			truth[r] = vTrue
		}
	}
	return truth, nil
}

type vecIsNull struct {
	x      numNode
	negate bool
	truth  []int8
}

func (n *vecIsNull) evalBool(c *vecCtx, mask []bool) ([]int8, error) {
	_, xok, err := n.x.evalNum(c, mask)
	if err != nil {
		return nil, err
	}
	if cap(n.truth) < c.rows {
		n.truth = make([]int8, c.rows)
	}
	truth := n.truth[:c.rows]
	c.ops += int64(c.rows)
	for r := range truth {
		if !mask[r] {
			continue
		}
		if !xok[r] != n.negate {
			truth[r] = vTrue
		} else {
			truth[r] = vFalse
		}
	}
	return truth, nil
}
