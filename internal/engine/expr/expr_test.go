package expr

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
)

// evalStr compiles and evaluates a standalone expression against an
// optional row with columns a, b, c, s.
func evalStr(t *testing.T, src string, row sqltypes.Row) (sqltypes.Value, error) {
	t.Helper()
	ast, err := sqlparser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	resolve := func(table, col string) (int, error) {
		switch strings.ToLower(col) {
		case "a":
			return 0, nil
		case "b":
			return 1, nil
		case "c":
			return 2, nil
		case "s":
			return 3, nil
		}
		return 0, fmt.Errorf("no column %q", col)
	}
	ev, err := Compile(ast, resolve, NewRegistry())
	if err != nil {
		return sqltypes.Null, err
	}
	return ev.Eval(row)
}

func mustEval(t *testing.T, src string, row sqltypes.Row) sqltypes.Value {
	t.Helper()
	v, err := evalStr(t, src, row)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func stdRow() sqltypes.Row {
	return sqltypes.Row{
		sqltypes.NewDouble(2.5),   // a
		sqltypes.NewBigInt(10),    // b
		sqltypes.Null,             // c
		sqltypes.NewVarChar("hi"), // s
	}
}

func TestArithmetic(t *testing.T) {
	cases := map[string]float64{
		"1 + 2 * 3":       7,
		"(1 + 2) * 3":     9,
		"10 / 4":          2, // integer division
		"10.0 / 4":        2.5,
		"7 % 3":           1,
		"-a":              -2.5,
		"a * b":           25,
		"2 * a + b":       15,
		"power(2, 10)":    1024,
		"sqrt(16)":        4,
		"abs(-3.5)":       3.5,
		"mod(7, 3)":       1,
		"floor(2.7)":      2,
		"ceil(2.1)":       3,
		"round(2.345, 2)": 2.35,
		"least(3, 1, 2)":  1,
		"greatest(3,1,2)": 3,
		"sign(-9)":        -1,
	}
	row := stdRow()
	for src, want := range cases {
		v := mustEval(t, src, row)
		got, ok := v.Float()
		if !ok || math.Abs(got-want) > 1e-12 {
			t.Errorf("%q = %v, want %g", src, v, want)
		}
	}
}

func TestIntegerTyping(t *testing.T) {
	if v := mustEval(t, "1 + 2", nil); v.Type() != sqltypes.TypeBigInt {
		t.Errorf("int+int should stay BIGINT, got %v", v.Type())
	}
	if v := mustEval(t, "1 + 2.0", nil); v.Type() != sqltypes.TypeDouble {
		t.Errorf("int+double should be DOUBLE, got %v", v.Type())
	}
	if v := mustEval(t, "b % 3", stdRow()); v.Int() != 1 {
		t.Errorf("b %% 3 = %v", v)
	}
}

func TestDivisionByZero(t *testing.T) {
	for _, src := range []string{"1 / 0", "1.5 / 0", "7 % 0", "7.5 % 0", "7.5 % 0.0", "1e300 % 0"} {
		_, err := evalStr(t, src, nil)
		if err == nil {
			t.Errorf("%q must error", src)
			continue
		}
		if !errors.Is(err, ErrDivisionByZero) {
			t.Errorf("%q: error %v is not ErrDivisionByZero", src, err)
		}
	}
}

func TestModSemantics(t *testing.T) {
	// Float % must behave like math.Mod: sign of the dividend, exact
	// for huge quotients (the old int64-truncation formulation produced
	// garbage once a/b left the int64 range).
	cases := map[string]float64{
		"7.5 % 2":     1.5,
		"-7.5 % 2":    -1.5,
		"7.5 % -2":    1.5,
		"-7.5 % -2":   -1.5,
		"-7 % 3":      -1, // BIGINT path: Go's % semantics
		"1e300 % 3.0": math.Mod(1e300, 3),
		"1e19 % 1e18": math.Mod(1e19, 1e18), // quotient exceeds int64
		"2.5 % 0.5":   0,
		"10.0 % 3":    1, // integral float operands stay DOUBLE
	}
	for src, want := range cases {
		v := mustEval(t, src, nil)
		got, ok := v.Float()
		if !ok || got != want {
			t.Errorf("%q = %v, want %g", src, v, want)
		}
	}
	// Typing: any DOUBLE operand makes % DOUBLE, matching sema's
	// inference (the old evaluator returned BIGINT for integral floats).
	if v := mustEval(t, "10.0 % 3", nil); v.Type() != sqltypes.TypeDouble {
		t.Errorf("10.0 %% 3 should be DOUBLE, got %v", v.Type())
	}
	if v := mustEval(t, "10 % 3", nil); v.Type() != sqltypes.TypeBigInt {
		t.Errorf("10 %% 3 should stay BIGINT, got %v", v.Type())
	}
}

func TestNullPropagation(t *testing.T) {
	row := stdRow()
	for _, src := range []string{
		"c + 1", "c * 2", "-c", "sqrt(c)", "c = 1", "c < 1", "a + c",
		"c BETWEEN 1 AND 2", "NOT c",
	} {
		if v := mustEval(t, src, row); !v.IsNull() {
			t.Errorf("%q = %v, want NULL", src, v)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	row := stdRow()
	cases := map[string]any{
		"c = 1 AND 1 = 2": false, // NULL AND FALSE = FALSE
		"c = 1 AND 1 = 1": nil,   // NULL AND TRUE = NULL
		"c = 1 OR 1 = 1":  true,  // NULL OR TRUE = TRUE
		"c = 1 OR 1 = 2":  nil,   // NULL OR FALSE = NULL
		"1 = 1 AND 2 = 2": true,
		"1 = 2 OR 2 = 3":  false,
	}
	for src, want := range cases {
		v := mustEval(t, src, row)
		switch w := want.(type) {
		case bool:
			if v.IsNull() || v.Bool() != w {
				t.Errorf("%q = %v, want %v", src, v, w)
			}
		case nil:
			if !v.IsNull() {
				t.Errorf("%q = %v, want NULL", src, v)
			}
		}
	}
}

func TestComparisons(t *testing.T) {
	row := stdRow()
	truths := []string{
		"a = 2.5", "a <> 2", "a < 3", "a <= 2.5", "b > 9", "b >= 10",
		"s = 'hi'", "'abc' < 'abd'", "a BETWEEN 2 AND 3", "b IN (1, 10)",
		"b NOT IN (1, 2)", "c IS NULL", "a IS NOT NULL",
		"s LIKE 'h%'", "s LIKE '__'", "NOT s LIKE 'z%'",
	}
	for _, src := range truths {
		if v := mustEval(t, src, row); v.IsNull() || !v.Bool() {
			t.Errorf("%q = %v, want TRUE", src, v)
		}
	}
}

func TestInWithNullSemantics(t *testing.T) {
	row := stdRow()
	// 5 IN (1, NULL) → NULL; 10 IN (10, NULL) → TRUE.
	if v := mustEval(t, "5 IN (1, c)", row); !v.IsNull() {
		t.Errorf("IN with NULL non-match should be NULL, got %v", v)
	}
	if v := mustEval(t, "b IN (10, c)", row); v.IsNull() || !v.Bool() {
		t.Errorf("IN with match should be TRUE, got %v", v)
	}
}

func TestCase(t *testing.T) {
	row := stdRow()
	v := mustEval(t, "CASE WHEN a > 2 THEN 'big' WHEN a > 1 THEN 'mid' ELSE 'small' END", row)
	if v.Str() != "big" {
		t.Errorf("case = %v", v)
	}
	v = mustEval(t, "CASE WHEN a > 99 THEN 1 END", row)
	if !v.IsNull() {
		t.Errorf("case without else = %v, want NULL", v)
	}
	// The paper's binary-flag idiom: CASE WHEN cond THEN 1 ELSE 0 END.
	v = mustEval(t, "CASE WHEN s = 'hi' THEN 1 ELSE 0 END", row)
	if v.Int() != 1 {
		t.Errorf("flag = %v", v)
	}
}

func TestCast(t *testing.T) {
	if v := mustEval(t, "CAST(3.9 AS INT)", nil); v.Int() != 3 {
		t.Errorf("cast = %v", v)
	}
	if v := mustEval(t, "CAST('2.5' AS DOUBLE)", nil); v.MustFloat() != 2.5 {
		t.Errorf("cast = %v", v)
	}
	if v := mustEval(t, "CAST(42 AS VARCHAR)", nil); v.Str() != "42" {
		t.Errorf("cast = %v", v)
	}
}

func TestStringFuncs(t *testing.T) {
	cases := map[string]string{
		"lower('ABC')":        "abc",
		"upper('abc')":        "ABC",
		"trim('  x ')":        "x",
		"substr('hello', 2)":  "ello",
		"substr('hello',2,3)": "ell",
		"'a' || 'b' || 'c'":   "abc",
	}
	for src, want := range cases {
		if v := mustEval(t, src, nil); v.Str() != want {
			t.Errorf("%q = %v, want %q", src, v, want)
		}
	}
	if v := mustEval(t, "length('abcd')", nil); v.Int() != 4 {
		t.Errorf("length = %v", v)
	}
}

func TestCoalesceNullif(t *testing.T) {
	row := stdRow()
	if v := mustEval(t, "coalesce(c, c, 7)", row); v.Int() != 7 {
		t.Errorf("coalesce = %v", v)
	}
	if v := mustEval(t, "nullif(1, 1)", nil); !v.IsNull() {
		t.Errorf("nullif equal = %v", v)
	}
	if v := mustEval(t, "nullif(1, 2)", nil); v.Int() != 1 {
		t.Errorf("nullif distinct = %v", v)
	}
}

func TestCompileErrors(t *testing.T) {
	for _, src := range []string{
		"nosuchfunc(1)",
		"sqrt()",
		"sqrt(1, 2)",
		"nosuchcol + 1",
		"sum(a)", // aggregate not allowed in scalar context
	} {
		if _, err := evalStr(t, src, stdRow()); err == nil {
			t.Errorf("%q must fail to compile", src)
		}
	}
}

func TestRegistryCustomFunc(t *testing.T) {
	reg := NewRegistry()
	err := reg.Register(FuncDef{Name: "Twice", MinArgs: 1, MaxArgs: 1,
		Fn: func(args []sqltypes.Value) (sqltypes.Value, error) {
			f, _ := args[0].Float()
			return sqltypes.NewDouble(2 * f), nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	ast, _ := sqlparser.ParseExpr("twice(21)")
	ev, err := Compile(ast, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ev.Eval(nil)
	if err != nil || v.MustFloat() != 42 {
		t.Fatalf("twice(21) = %v, %v", v, err)
	}
	if err := reg.Register(FuncDef{}); err == nil {
		t.Fatal("empty definition must be rejected")
	}
	if _, ok := reg.Lookup("TWICE"); !ok {
		t.Fatal("lookup must be case-insensitive")
	}
}

func TestMoreNumericBuiltins(t *testing.T) {
	cases := map[string]float64{
		"exp(0)":        1,
		"ln(1)":         0,
		"log(100)":      2,
		"atan2(0, 1)":   0,
		"round(2.5)":    3,
		"ceiling(1.2)":  2,
		"mod(10.5, 3)":  1.5,
		"sign(0)":       0,
		"greatest(1)":   1,
		"least(5)":      5,
		"abs(2 - 5)":    3,
		"power(9, 0.5)": 3,
	}
	for src, want := range cases {
		v := mustEval(t, src, nil)
		got, ok := v.Float()
		if !ok || math.Abs(got-want) > 1e-12 {
			t.Errorf("%q = %v, want %g", src, v, want)
		}
	}
}

func TestStringConcatWithNumbers(t *testing.T) {
	if v := mustEval(t, "'v=' || 42", nil); v.Str() != "v=42" {
		t.Errorf("concat = %v", v)
	}
	if v := mustEval(t, "CAST(1.5 AS VARCHAR) || '|' || CAST(2 AS VARCHAR)", nil); v.Str() != "1.5|2" {
		t.Errorf("packed = %v", v)
	}
}

func TestBetweenBoundaries(t *testing.T) {
	for src, want := range map[string]bool{
		"1 BETWEEN 1 AND 2":     true,
		"2 BETWEEN 1 AND 2":     true,
		"0.99 BETWEEN 1 AND 2":  false,
		"3 NOT BETWEEN 1 AND 2": true,
	} {
		if v := mustEval(t, src, nil); v.Bool() != want {
			t.Errorf("%q = %v", src, v)
		}
	}
}

func TestLikeEdgeCases(t *testing.T) {
	for src, want := range map[string]bool{
		"'hello' LIKE 'h%'":    true,
		"'hello' LIKE '%LLO'":  true, // case-insensitive like Teradata's default
		"'hello' LIKE 'h_llo'": true,
		"'hello' LIKE 'x%'":    false,
		"'a.b' LIKE 'a.b'":     true, // dot is literal, not regex
		"'axb' LIKE 'a.b'":     false,
	} {
		v := mustEval(t, src, nil)
		if v.Bool() != want {
			t.Errorf("%q = %v, want %v", src, v, want)
		}
	}
}

func TestSubstrEdgeCases(t *testing.T) {
	for src, want := range map[string]string{
		"substr('hello', 0)":     "hello",
		"substr('hello', 99)":    "",
		"substr('hello', 2, 99)": "ello",
		"substr('hello', 2, 0)":  "",
	} {
		if v := mustEval(t, src, nil); v.Str() != want {
			t.Errorf("%q = %q, want %q", src, v.Str(), want)
		}
	}
}

func TestContainsAggregate(t *testing.T) {
	cases := map[string]bool{
		"sum(a)":                          true,
		"1 + count(*)":                    true,
		"sqrt(sum(a * a))":                true,
		"a + b":                           false,
		"CASE WHEN a > 0 THEN 1 END":      false,
		"CASE WHEN max(a) > 0 THEN 1 END": true,
	}
	for src, want := range cases {
		ast, err := sqlparser.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		if got := ContainsAggregate(ast, nil); got != want {
			t.Errorf("ContainsAggregate(%q) = %v", src, got)
		}
	}
	// Aggregate UDF names via the extra set.
	ast, _ := sqlparser.ParseExpr("nlq_list(a, b)")
	if !ContainsAggregate(ast, map[string]bool{"nlq_list": true}) {
		t.Error("extra aggregate names not recognized")
	}
}
