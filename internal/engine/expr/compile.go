package expr

import (
	"fmt"
	"strings"

	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
)

// Resolver maps a (possibly qualified) column reference to an ordinal
// in the flattened input row. The executor supplies one per plan node.
type Resolver func(table, column string) (int, error)

// Evaluator is a compiled expression: it produces one value per input
// row. Implementations form a tree that the engine walks per row — the
// interpreted evaluation the paper contrasts with compiled UDFs.
type Evaluator interface {
	Eval(row sqltypes.Row) (sqltypes.Value, error)
}

// Compile turns a parsed expression into an evaluator. Column
// references are resolved through resolve; scalar function calls are
// looked up in funcs. Aggregate function calls must have been replaced
// by the executor before compilation — encountering one here is an
// error.
func Compile(e sqlparser.Expr, resolve Resolver, funcs *Registry) (Evaluator, error) {
	c := &compiler{resolve: resolve, funcs: funcs}
	return c.compile(e)
}

// CompileWithParams is Compile for prepared statements: `?` parameter
// references compile to reads of the shared params box, which the
// prepared statement points at the bound argument slice before each
// EXECUTE. Plain Compile rejects parameter references.
func CompileWithParams(e sqlparser.Expr, resolve Resolver, funcs *Registry, params *[]sqltypes.Value) (Evaluator, error) {
	c := &compiler{resolve: resolve, funcs: funcs, params: params}
	return c.compile(e)
}

type compiler struct {
	resolve Resolver
	funcs   *Registry
	params  *[]sqltypes.Value // nil outside prepared statements
}

func (c *compiler) compile(e sqlparser.Expr) (Evaluator, error) {
	switch e := e.(type) {
	case *sqlparser.NumberLit:
		if e.IsInt {
			return constEval{sqltypes.NewBigInt(e.Int)}, nil
		}
		return constEval{sqltypes.NewDouble(e.Float)}, nil
	case *sqlparser.StringLit:
		return constEval{sqltypes.NewVarChar(e.Val)}, nil
	case *sqlparser.NullLit:
		return constEval{sqltypes.Null}, nil
	case *sqlparser.BoolLit:
		return constEval{sqltypes.NewBool(e.Val)}, nil
	case *sqlparser.ColumnRef:
		if c.resolve == nil {
			return nil, fmt.Errorf("expr: column %s not allowed here", e)
		}
		idx, err := c.resolve(e.Table, e.Name)
		if err != nil {
			return nil, err
		}
		return colEval{idx: idx, name: e.String()}, nil
	case *sqlparser.ParamRef:
		if c.params == nil {
			return nil, fmt.Errorf("expr: ? parameter not allowed here (statement is not prepared)")
		}
		return paramEval{idx: e.Index, box: c.params}, nil
	case *sqlparser.UnaryExpr:
		x, err := c.compile(e.X)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-":
			return negEval{x}, nil
		case "NOT":
			return notEval{x}, nil
		}
		return nil, fmt.Errorf("expr: unknown unary operator %q", e.Op)
	case *sqlparser.BinaryExpr:
		l, err := c.compile(e.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compile(e.R)
		if err != nil {
			return nil, err
		}
		return newBinaryEval(e.Op, l, r)
	case *sqlparser.FuncCall:
		return c.compileFunc(e)
	case *sqlparser.CaseExpr:
		return c.compileCase(e)
	case *sqlparser.IsNullExpr:
		x, err := c.compile(e.X)
		if err != nil {
			return nil, err
		}
		return isNullEval{x: x, negate: e.Negate}, nil
	case *sqlparser.CastExpr:
		x, err := c.compile(e.X)
		if err != nil {
			return nil, err
		}
		t, err := sqltypes.ParseType(e.Type)
		if err != nil {
			return nil, err
		}
		return castEval{x: x, t: t}, nil
	case *sqlparser.BetweenExpr:
		x, err := c.compile(e.X)
		if err != nil {
			return nil, err
		}
		lo, err := c.compile(e.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := c.compile(e.Hi)
		if err != nil {
			return nil, err
		}
		return betweenEval{x: x, lo: lo, hi: hi, negate: e.Negate}, nil
	case *sqlparser.InExpr:
		x, err := c.compile(e.X)
		if err != nil {
			return nil, err
		}
		list := make([]Evaluator, len(e.List))
		for i, item := range e.List {
			ev, err := c.compile(item)
			if err != nil {
				return nil, err
			}
			list[i] = ev
		}
		return inEval{x: x, list: list, negate: e.Negate}, nil
	default:
		return nil, fmt.Errorf("expr: unsupported expression %T", e)
	}
}

// paramEval reads one `?` slot from the params box shared by every
// evaluator compiled for a prepared statement. The prepared statement
// repoints the box at the bound arguments before each EXECUTE, so the
// compiled tree never needs recompiling.
type paramEval struct {
	idx int
	box *[]sqltypes.Value
}

func (p paramEval) Eval(sqltypes.Row) (sqltypes.Value, error) {
	vals := *p.box
	if p.idx < 0 || p.idx >= len(vals) {
		return sqltypes.Null, fmt.Errorf("expr: parameter %d is not bound (%d bound)", p.idx+1, len(vals))
	}
	return vals[p.idx], nil
}

// AggregateNames are the built-in SQL aggregates the executor
// recognizes; aggregate UDFs extend this set via the udf registry.
var AggregateNames = map[string]bool{
	"sum": true, "count": true, "avg": true, "min": true, "max": true,
}

func (c *compiler) compileFunc(e *sqlparser.FuncCall) (Evaluator, error) {
	name := strings.ToLower(e.Name)
	if AggregateNames[name] {
		return nil, fmt.Errorf("expr: aggregate %s() not allowed in this context", name)
	}
	def, ok := c.funcs.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("expr: unknown function %q", e.Name)
	}
	if e.Star {
		return nil, fmt.Errorf("expr: %s(*) is not valid", e.Name)
	}
	if len(e.Args) < def.MinArgs || (def.MaxArgs >= 0 && len(e.Args) > def.MaxArgs) {
		return nil, fmt.Errorf("expr: %s expects %d..%d arguments, got %d", def.Name, def.MinArgs, def.MaxArgs, len(e.Args))
	}
	args := make([]Evaluator, len(e.Args))
	for i, a := range e.Args {
		ev, err := c.compile(a)
		if err != nil {
			return nil, err
		}
		args[i] = ev
	}
	return &funcEval{def: def, args: args}, nil
}

func (c *compiler) compileCase(e *sqlparser.CaseExpr) (Evaluator, error) {
	ce := &caseEval{}
	for _, w := range e.Whens {
		cond, err := c.compile(w.Cond)
		if err != nil {
			return nil, err
		}
		then, err := c.compile(w.Then)
		if err != nil {
			return nil, err
		}
		ce.whens = append(ce.whens, caseWhen{cond, then})
	}
	if e.Else != nil {
		els, err := c.compile(e.Else)
		if err != nil {
			return nil, err
		}
		ce.els = els
	}
	return ce, nil
}

// ContainsAggregate reports whether the expression tree contains an
// aggregate function call (built-in or from the extra set, typically
// aggregate UDF names).
func ContainsAggregate(e sqlparser.Expr, extra map[string]bool) bool {
	found := false
	walk(e, func(x sqlparser.Expr) {
		if fc, ok := x.(*sqlparser.FuncCall); ok {
			name := strings.ToLower(fc.Name)
			if AggregateNames[name] || (extra != nil && extra[name]) {
				found = true
			}
		}
	})
	return found
}

// walk visits every node of the expression tree.
func walk(e sqlparser.Expr, fn func(sqlparser.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *sqlparser.UnaryExpr:
		walk(e.X, fn)
	case *sqlparser.BinaryExpr:
		walk(e.L, fn)
		walk(e.R, fn)
	case *sqlparser.FuncCall:
		for _, a := range e.Args {
			walk(a, fn)
		}
	case *sqlparser.CaseExpr:
		for _, w := range e.Whens {
			walk(w.Cond, fn)
			walk(w.Then, fn)
		}
		walk(e.Else, fn)
	case *sqlparser.IsNullExpr:
		walk(e.X, fn)
	case *sqlparser.CastExpr:
		walk(e.X, fn)
	case *sqlparser.BetweenExpr:
		walk(e.X, fn)
		walk(e.Lo, fn)
		walk(e.Hi, fn)
	case *sqlparser.InExpr:
		walk(e.X, fn)
		for _, x := range e.List {
			walk(x, fn)
		}
	}
}
