package expr

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
)

// compileBoth compiles src as both a scalar evaluator and a vector
// program over three DOUBLE columns a, b, c (and a non-vectorizable
// varchar column s at ordinal 3).
func compileBoth(t *testing.T, src string) (Evaluator, *VectorProgram) {
	t.Helper()
	ast, err := sqlparser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	ev, err := Compile(ast, vecTestResolve, NewRegistry())
	if err != nil {
		t.Fatalf("scalar compile %q: %v", src, err)
	}
	p, err := CompileVector(ast, vecTestResolve, func(ord int) bool { return ord < 3 })
	if err != nil {
		t.Fatalf("vector compile %q: %v", src, err)
	}
	return ev, p
}

func vecTestResolve(table, col string) (int, error) {
	switch strings.ToLower(col) {
	case "a":
		return 0, nil
	case "b":
		return 1, nil
	case "c":
		return 2, nil
	case "s":
		return 3, nil
	}
	return 0, fmt.Errorf("no column %q", col)
}

// testBlock is a random block over columns a, b, c with NULL lanes and
// occasional equal/zero/NaN values to exercise comparison edges.
type testBlock struct {
	rows  int
	cols  [][]float64
	valid [][]bool
}

func randBlock(rng *rand.Rand, rows int) *testBlock {
	b := &testBlock{rows: rows, cols: make([][]float64, 3), valid: make([][]bool, 3)}
	for c := range b.cols {
		b.cols[c] = make([]float64, rows)
		b.valid[c] = make([]bool, rows)
		for r := 0; r < rows; r++ {
			b.valid[c][r] = rng.Float64() < 0.8
			switch {
			case rng.Float64() < 0.05:
				b.cols[c][r] = 0
			case rng.Float64() < 0.02:
				b.cols[c][r] = math.NaN()
			default:
				b.cols[c][r] = rng.Float64()*100 - 50
			}
		}
	}
	// Force some equal lanes so = / <> see both outcomes.
	for r := 0; r < rows; r++ {
		if rng.Float64() < 0.15 {
			b.cols[1][r] = b.cols[0][r]
		}
	}
	return b
}

// scalarRow materializes lane r as the row the tree walker sees.
func (b *testBlock) scalarRow(r int) sqltypes.Row {
	row := make(sqltypes.Row, 3)
	for c := 0; c < 3; c++ {
		if b.valid[c][r] {
			row[c] = sqltypes.NewDouble(b.cols[c][r])
		} else {
			row[c] = sqltypes.Null
		}
	}
	return row
}

// slice projects the block onto a program's column slots.
func (b *testBlock) slice(p *VectorProgram) (cols [][]float64, valid [][]bool) {
	for _, ord := range p.Cols() {
		cols = append(cols, b.cols[ord])
		valid = append(valid, b.valid[ord])
	}
	return cols, valid
}

func checkNumAgainstScalar(t *testing.T, src string, ev Evaluator, p *VectorProgram, b *testBlock) {
	t.Helper()
	cols, valid := b.slice(p)
	vals, ok, verr := p.EvalNum(cols, valid, b.rows, nil)
	for r := 0; r < b.rows; r++ {
		sv, serr := ev.Eval(b.scalarRow(r))
		if serr != nil {
			if verr == nil || !errors.Is(verr, serr) && !errors.Is(serr, ErrDivisionByZero) {
				t.Fatalf("%q lane %d: scalar err %v, vector err %v", src, r, serr, verr)
			}
			return // scalar path aborts here; vector aborted for the block
		}
		if verr != nil {
			t.Fatalf("%q: vector err %v, scalar clean", src, verr)
		}
		if sv.IsNull() != !ok[r] {
			t.Fatalf("%q lane %d: scalar null=%v, vector valid=%v", src, r, sv.IsNull(), ok[r])
		}
		if !sv.IsNull() {
			sf, _ := sv.Float()
			if math.Float64bits(sf) != math.Float64bits(vals[r]) {
				t.Fatalf("%q lane %d: scalar %v, vector %v", src, r, sf, vals[r])
			}
		}
	}
	if n := p.Ops(); b.rows > 0 && n <= 0 {
		t.Fatalf("%q: vector ops counter did not advance", src)
	}
}

func checkBoolAgainstScalar(t *testing.T, src string, ev Evaluator, p *VectorProgram, b *testBlock) {
	t.Helper()
	cols, valid := b.slice(p)
	truth, verr := p.EvalBool(cols, valid, b.rows, nil)
	for r := 0; r < b.rows; r++ {
		sv, serr := ev.Eval(b.scalarRow(r))
		if serr != nil {
			if verr == nil {
				t.Fatalf("%q lane %d: scalar err %v, vector clean", src, r, serr)
			}
			return
		}
		if verr != nil {
			t.Fatalf("%q: vector err %v, scalar clean", src, verr)
		}
		want := vFalse
		switch {
		case sv.IsNull():
			want = vNull
		case sv.Bool():
			want = vTrue
		}
		if truth[r] != want {
			t.Fatalf("%q lane %d: scalar %v, vector %v (row %v)", src, r, want, truth[r], b.scalarRow(r))
		}
	}
}

func TestVectorMatchesScalarRandomized(t *testing.T) {
	numeric := []string{
		"a",
		"-a",
		"a + b",
		"a - b",
		"a * b + 2",
		"a / 2.5",
		"a % 3.5",
		"(a + b) * (a - b)",
		"-(a * b) + c",
		"2.0 * a + 10.0 / 4.0",
	}
	boolean := []string{
		"a > b",
		"a = b",
		"a <> b",
		"a < b",
		"a <= b OR b IS NULL",
		"a >= b",
		"NOT (a < 0)",
		"a IS NOT NULL AND b > 1",
		"a > 0 AND a < 100",
		"a + 1 > b * 2",
		"c IS NULL",
		"a > 0 OR b > 0",
		"a > 0 OR c > 0",
		"NOT (a > b OR c IS NULL)",
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		b := randBlock(rng, rng.Intn(200))
		for _, src := range numeric {
			ev, p := compileBoth(t, src)
			if p.IsBool() {
				t.Fatalf("%q compiled as boolean", src)
			}
			checkNumAgainstScalar(t, src, ev, p, b)
		}
		for _, src := range boolean {
			ev, p := compileBoth(t, src)
			if !p.IsBool() {
				t.Fatalf("%q compiled as numeric", src)
			}
			checkBoolAgainstScalar(t, src, ev, p, b)
		}
	}
}

func TestVectorDivisionByZero(t *testing.T) {
	mkBlock := func(a []float64, valid []bool) *testBlock {
		b := &testBlock{rows: len(a), cols: make([][]float64, 3), valid: make([][]bool, 3)}
		for c := range b.cols {
			b.cols[c] = make([]float64, len(a))
			b.valid[c] = make([]bool, len(a))
		}
		copy(b.cols[0], a)
		copy(b.valid[0], valid)
		return b
	}

	for _, src := range []string{"10.0 / a", "7.5 % a"} {
		ev, p := compileBoth(t, src)
		// A valid zero lane raises the typed error, same as the scalar path.
		b := mkBlock([]float64{1, 0, 3}, []bool{true, true, true})
		cols, valid := b.slice(p)
		if _, _, err := p.EvalNum(cols, valid, b.rows, nil); !errors.Is(err, ErrDivisionByZero) {
			t.Fatalf("%q: err = %v, want ErrDivisionByZero", src, err)
		}
		if _, err := ev.Eval(b.scalarRow(1)); !errors.Is(err, ErrDivisionByZero) {
			t.Fatalf("%q scalar: err = %v, want ErrDivisionByZero", src, err)
		}
		// A NULL zero lane does not: the row path returns NULL before the
		// arithmetic ever runs.
		b = mkBlock([]float64{1, 0, 3}, []bool{true, false, true})
		cols, valid = b.slice(p)
		if _, _, err := p.EvalNum(cols, valid, b.rows, nil); err != nil {
			t.Fatalf("%q with NULL zero lane: %v", src, err)
		}
		// Neither does a masked-out zero lane.
		b = mkBlock([]float64{1, 0, 3}, []bool{true, true, true})
		cols, valid = b.slice(p)
		if _, _, err := p.EvalNum(cols, valid, b.rows, []bool{true, false, true}); err != nil {
			t.Fatalf("%q with masked zero lane: %v", src, err)
		}
	}

	// Short-circuit masking: the guard keeps the division off the zero
	// lanes, exactly like the scalar evaluator's AND short-circuit.
	ev, p := compileBoth(t, "a <> 0 AND 10.0 / a > 2")
	b := mkBlock([]float64{4, 0, 100, 0}, []bool{true, true, true, true})
	cols, valid := b.slice(p)
	truth, err := p.EvalBool(cols, valid, b.rows, nil)
	if err != nil {
		t.Fatalf("guarded division errored: %v", err)
	}
	want := []int8{vTrue, vFalse, vFalse, vFalse}
	for r := range want {
		if truth[r] != want[r] {
			t.Fatalf("lane %d: truth %v, want %v", r, truth[r], want[r])
		}
		sv, serr := ev.Eval(b.scalarRow(r))
		if serr != nil {
			t.Fatalf("scalar lane %d errored: %v", r, serr)
		}
		got := vFalse
		if sv.IsNull() {
			got = vNull
		} else if sv.Bool() {
			got = vTrue
		}
		if got != truth[r] {
			t.Fatalf("lane %d: scalar %v, vector %v", r, got, truth[r])
		}
	}
}

func TestVectorUnsupportedShapes(t *testing.T) {
	unsupported := []string{
		"power(a, 2)",                       // function call
		"CASE WHEN a > 0 THEN 1 ELSE 0 END", // CASE
		"a IN (1, 2)",                       // IN list
		"a BETWEEN 1 AND 2",                 // BETWEEN
		"s || 'x'",                          // string concat
		"'lit'",                             // string literal
		"s",                                 // non-vectorizable column
		"NOT a",                             // NOT over a numeric operand
		"-(a > b)",                          // negation of a boolean
		"(a > b) + 1",                       // arithmetic over a boolean
		"a AND b",                           // logic over numeric operands
		"a > s",                             // comparison with a varchar column
		"(a > b) IS NULL",                   // IS NULL over a boolean
	}
	for _, src := range unsupported {
		ast, err := sqlparser.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		_, err = CompileVector(ast, vecTestResolve, func(ord int) bool { return ord < 3 })
		if err == nil {
			t.Fatalf("%q: vector compile succeeded, want unsupported", src)
		}
		if !IsVectorUnsupported(err) {
			t.Fatalf("%q: err = %v, want vector-unsupported", src, err)
		}
	}
	// A genuinely bad reference is a real error, not a fallback signal.
	ast, err := sqlparser.ParseExpr("nosuch + 1")
	if err != nil {
		t.Fatal(err)
	}
	_, err = CompileVector(ast, vecTestResolve, func(int) bool { return true })
	if err == nil || IsVectorUnsupported(err) {
		t.Fatalf("unresolved column: err = %v, want a resolve error", err)
	}
}

func TestVectorColsDeduped(t *testing.T) {
	ast, err := sqlparser.ParseExpr("b + a * b - a")
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompileVector(ast, vecTestResolve, func(int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	cols := p.Cols()
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 0 {
		t.Fatalf("Cols() = %v, want [1 0]", cols)
	}
	if n := p.Ops(); n != 0 {
		t.Fatalf("fresh program reports %d ops", n)
	}
}
