// Package expr compiles parsed SQL expressions into evaluator trees and
// interprets them row by row. The interpretation is intentional: the
// paper's central performance asymmetry is that "SQL arithmetic
// expressions are interpreted at run-time, whereas UDF arithmetic
// expressions are compiled", and this package is the interpreted side.
package expr

import (
	"fmt"
	"math"
	"regexp"
	"strings"
	"sync"

	"repro/internal/engine/sqltypes"
)

// ScalarFunc is the implementation of a scalar SQL function. Args may
// contain NULLs; most numeric builtins propagate NULL.
type ScalarFunc func(args []sqltypes.Value) (sqltypes.Value, error)

// FuncDef describes a scalar function: its arity bounds and body.
// MaxArgs < 0 means variadic.
//
// Params and Ret are optional static type annotations used by the
// semantic analyzer: Params[i] is the declared type of argument i
// (TypeNull = unchecked; for variadic functions the last entry covers
// all trailing arguments), and Ret is the result type (TypeNull =
// unknown). They do not affect evaluation.
type FuncDef struct {
	Name    string
	MinArgs int
	MaxArgs int
	Fn      ScalarFunc
	Params  []sqltypes.Type
	Ret     sqltypes.Type

	// UDF marks user-registered functions (as opposed to built-ins);
	// their invocations are counted in engine_udf_calls_total.
	UDF bool
}

// Registry holds scalar functions by lower-cased name. Scalar UDFs are
// registered here at run time, exactly as Teradata UDFs become callable
// in any SELECT once created.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*FuncDef
}

// NewRegistry returns a registry pre-loaded with the built-in scalar
// functions.
func NewRegistry() *Registry {
	r := &Registry{m: make(map[string]*FuncDef)}
	for _, f := range builtins() {
		f := f
		r.m[f.Name] = &f
	}
	return r
}

// Register adds a scalar function. Re-registering a name replaces it.
func (r *Registry) Register(def FuncDef) error {
	if def.Name == "" || def.Fn == nil {
		return fmt.Errorf("expr: invalid function definition")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	name := strings.ToLower(def.Name)
	def.Name = name
	r.m[name] = &def
	return nil
}

// Lookup finds a function by name (case-insensitive).
func (r *Registry) Lookup(name string) (*FuncDef, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.m[strings.ToLower(name)]
	return f, ok
}

// Names returns the sorted list of registered function names; used by
// the shell's help output.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for k := range r.m {
		out = append(out, k)
	}
	return out
}

// numeric1 adapts a float64 function into a NULL-propagating scalar.
func numeric1(name string, f func(float64) float64) FuncDef {
	return FuncDef{Name: name, MinArgs: 1, MaxArgs: 1,
		Params: []sqltypes.Type{sqltypes.TypeDouble}, Ret: sqltypes.TypeDouble,
		Fn: func(args []sqltypes.Value) (sqltypes.Value, error) {
			if args[0].IsNull() {
				return sqltypes.Null, nil
			}
			x, ok := args[0].Float()
			if !ok {
				return sqltypes.Null, fmt.Errorf("expr: %s: non-numeric argument %v", name, args[0])
			}
			return sqltypes.NewDouble(f(x)), nil
		}}
}

func numeric2(name string, f func(a, b float64) float64) FuncDef {
	return FuncDef{Name: name, MinArgs: 2, MaxArgs: 2,
		Params: []sqltypes.Type{sqltypes.TypeDouble, sqltypes.TypeDouble}, Ret: sqltypes.TypeDouble,
		Fn: func(args []sqltypes.Value) (sqltypes.Value, error) {
			if args[0].IsNull() || args[1].IsNull() {
				return sqltypes.Null, nil
			}
			a, aok := args[0].Float()
			b, bok := args[1].Float()
			if !aok || !bok {
				return sqltypes.Null, fmt.Errorf("expr: %s: non-numeric arguments", name)
			}
			return sqltypes.NewDouble(f(a, b)), nil
		}}
}

func builtins() []FuncDef {
	return []FuncDef{
		numeric1("sqrt", math.Sqrt),
		numeric1("abs", math.Abs),
		numeric1("exp", math.Exp),
		numeric1("ln", math.Log),
		numeric1("log", math.Log10),
		numeric1("floor", math.Floor),
		numeric1("ceil", math.Ceil),
		numeric1("ceiling", math.Ceil),
		numeric1("sign", func(x float64) float64 {
			switch {
			case x > 0:
				return 1
			case x < 0:
				return -1
			default:
				return 0
			}
		}),
		numeric2("power", math.Pow),
		numeric2("pow", math.Pow),
		numeric2("mod", math.Mod),
		numeric2("atan2", math.Atan2),
		{Name: "round", MinArgs: 1, MaxArgs: 2, Fn: fnRound,
			Params: []sqltypes.Type{sqltypes.TypeDouble, sqltypes.TypeBigInt}, Ret: sqltypes.TypeDouble},
		{Name: "coalesce", MinArgs: 1, MaxArgs: -1, Fn: fnCoalesce},
		{Name: "nullif", MinArgs: 2, MaxArgs: 2, Fn: fnNullIf},
		{Name: "least", MinArgs: 1, MaxArgs: -1, Fn: fnLeast},
		{Name: "greatest", MinArgs: 1, MaxArgs: -1, Fn: fnGreatest},
		{Name: "lower", MinArgs: 1, MaxArgs: 1, Fn: fnLower, Ret: sqltypes.TypeVarChar},
		{Name: "upper", MinArgs: 1, MaxArgs: 1, Fn: fnUpper, Ret: sqltypes.TypeVarChar},
		{Name: "length", MinArgs: 1, MaxArgs: 1, Fn: fnLength, Ret: sqltypes.TypeBigInt},
		{Name: "substr", MinArgs: 2, MaxArgs: 3, Fn: fnSubstr, Ret: sqltypes.TypeVarChar},
		{Name: "trim", MinArgs: 1, MaxArgs: 1, Fn: fnTrim, Ret: sqltypes.TypeVarChar},
		{Name: "like", MinArgs: 2, MaxArgs: 2, Fn: fnLike, Ret: sqltypes.TypeBool},
	}
}

func fnRound(args []sqltypes.Value) (sqltypes.Value, error) {
	if args[0].IsNull() {
		return sqltypes.Null, nil
	}
	x, ok := args[0].Float()
	if !ok {
		return sqltypes.Null, fmt.Errorf("expr: round: non-numeric argument")
	}
	places := 0.0
	if len(args) == 2 && !args[1].IsNull() {
		places, _ = args[1].Float()
	}
	scale := math.Pow(10, places)
	return sqltypes.NewDouble(math.Round(x*scale) / scale), nil
}

func fnCoalesce(args []sqltypes.Value) (sqltypes.Value, error) {
	for _, a := range args {
		if !a.IsNull() {
			return a, nil
		}
	}
	return sqltypes.Null, nil
}

func fnNullIf(args []sqltypes.Value) (sqltypes.Value, error) {
	if !args[0].IsNull() && !args[1].IsNull() && sqltypes.Equal(args[0], args[1]) {
		return sqltypes.Null, nil
	}
	return args[0], nil
}

func fnLeast(args []sqltypes.Value) (sqltypes.Value, error) {
	best := sqltypes.Null
	for _, a := range args {
		if a.IsNull() {
			return sqltypes.Null, nil
		}
		if best.IsNull() || sqltypes.Compare(a, best) < 0 {
			best = a
		}
	}
	return best, nil
}

func fnGreatest(args []sqltypes.Value) (sqltypes.Value, error) {
	best := sqltypes.Null
	for _, a := range args {
		if a.IsNull() {
			return sqltypes.Null, nil
		}
		if best.IsNull() || sqltypes.Compare(a, best) > 0 {
			best = a
		}
	}
	return best, nil
}

func fnLower(args []sqltypes.Value) (sqltypes.Value, error) {
	if args[0].IsNull() {
		return sqltypes.Null, nil
	}
	return sqltypes.NewVarChar(strings.ToLower(args[0].Str())), nil
}

func fnUpper(args []sqltypes.Value) (sqltypes.Value, error) {
	if args[0].IsNull() {
		return sqltypes.Null, nil
	}
	return sqltypes.NewVarChar(strings.ToUpper(args[0].Str())), nil
}

func fnLength(args []sqltypes.Value) (sqltypes.Value, error) {
	if args[0].IsNull() {
		return sqltypes.Null, nil
	}
	return sqltypes.NewBigInt(int64(len(args[0].Str()))), nil
}

func fnTrim(args []sqltypes.Value) (sqltypes.Value, error) {
	if args[0].IsNull() {
		return sqltypes.Null, nil
	}
	return sqltypes.NewVarChar(strings.TrimSpace(args[0].Str())), nil
}

func fnSubstr(args []sqltypes.Value) (sqltypes.Value, error) {
	if args[0].IsNull() || args[1].IsNull() {
		return sqltypes.Null, nil
	}
	s := args[0].Str()
	start := int(args[1].Int()) - 1 // SQL is 1-based
	if start < 0 {
		start = 0
	}
	if start > len(s) {
		return sqltypes.NewVarChar(""), nil
	}
	end := len(s)
	if len(args) == 3 && !args[2].IsNull() {
		if n := int(args[2].Int()); start+n < end {
			end = start + n
		}
	}
	return sqltypes.NewVarChar(s[start:end]), nil
}

func fnLike(args []sqltypes.Value) (sqltypes.Value, error) {
	if args[0].IsNull() || args[1].IsNull() {
		return sqltypes.Null, nil
	}
	pat := regexp.QuoteMeta(args[1].Str())
	pat = strings.ReplaceAll(pat, "%", ".*")
	pat = strings.ReplaceAll(pat, "_", ".")
	re, err := regexp.Compile("(?is)^" + pat + "$")
	if err != nil {
		return sqltypes.Null, fmt.Errorf("expr: like: bad pattern %q", args[1].Str())
	}
	return sqltypes.NewBool(re.MatchString(args[0].Str())), nil
}
