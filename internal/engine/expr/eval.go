package expr

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/engine/obs"
	"repro/internal/engine/sqltypes"
)

// ErrDivisionByZero is the typed error every divide-by-zero raises —
// integer and float, / and %, scalar tree walker and vector program
// alike — so callers can classify it without string matching.
var ErrDivisionByZero = errors.New("expr: division by zero")

// floatMod is the one float remainder implementation shared by the
// scalar and vector evaluators: IEEE remainder with the sign of the
// dividend (math.Mod), with a zero divisor raising the typed error.
// The previous a - b*float64(int64(a/b)) formulation hit undefined
// int64 conversion when a/b overflowed the int64 range (and on the
// Inf quotient of b == 0), silently producing garbage.
func floatMod(a, b float64) (float64, error) {
	if b == 0 {
		return 0, ErrDivisionByZero
	}
	return math.Mod(a, b), nil
}

// constEval yields a constant.
type constEval struct{ v sqltypes.Value }

func (e constEval) Eval(sqltypes.Row) (sqltypes.Value, error) { return e.v, nil }

// colEval yields the idx-th column of the input row.
type colEval struct {
	idx  int
	name string
}

func (e colEval) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	if e.idx < 0 || e.idx >= len(row) {
		return sqltypes.Null, fmt.Errorf("expr: column %s (ordinal %d) out of row of width %d", e.name, e.idx, len(row))
	}
	return row[e.idx], nil
}

// negEval is unary minus.
type negEval struct{ x Evaluator }

func (e negEval) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	v, err := e.x.Eval(row)
	if err != nil || v.IsNull() {
		return sqltypes.Null, err
	}
	if v.Type() == sqltypes.TypeBigInt {
		return sqltypes.NewBigInt(-v.Int()), nil
	}
	f, ok := v.Float()
	if !ok {
		return sqltypes.Null, fmt.Errorf("expr: cannot negate %v", v)
	}
	return sqltypes.NewDouble(-f), nil
}

// notEval is three-valued logical NOT.
type notEval struct{ x Evaluator }

func (e notEval) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	v, err := e.x.Eval(row)
	if err != nil || v.IsNull() {
		return sqltypes.Null, err
	}
	return sqltypes.NewBool(!v.Bool()), nil
}

// binary operators ---------------------------------------------------

type binOp int

const (
	opAdd binOp = iota
	opSub
	opMul
	opDiv
	opMod
	opConcat
	opEq
	opNe
	opLt
	opLe
	opGt
	opGe
	opAnd
	opOr
)

var binOps = map[string]binOp{
	"+": opAdd, "-": opSub, "*": opMul, "/": opDiv, "%": opMod,
	"||": opConcat, "=": opEq, "<>": opNe, "<": opLt, "<=": opLe,
	">": opGt, ">=": opGe, "AND": opAnd, "OR": opOr,
}

type binaryEval struct {
	op   binOp
	l, r Evaluator
}

func newBinaryEval(op string, l, r Evaluator) (Evaluator, error) {
	o, ok := binOps[op]
	if !ok {
		return nil, fmt.Errorf("expr: unknown operator %q", op)
	}
	return &binaryEval{op: o, l: l, r: r}, nil
}

func (e *binaryEval) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	// AND/OR need three-valued short-circuit handling before NULL checks.
	if e.op == opAnd || e.op == opOr {
		return e.evalLogic(row)
	}
	l, err := e.l.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	r, err := e.r.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return sqltypes.Null, nil
	}
	switch e.op {
	case opConcat:
		return sqltypes.NewVarChar(l.Str() + r.Str()), nil
	case opEq, opNe, opLt, opLe, opGt, opGe:
		cmp := sqltypes.Compare(l, r)
		switch e.op {
		case opEq:
			return sqltypes.NewBool(cmp == 0), nil
		case opNe:
			return sqltypes.NewBool(cmp != 0), nil
		case opLt:
			return sqltypes.NewBool(cmp < 0), nil
		case opLe:
			return sqltypes.NewBool(cmp <= 0), nil
		case opGt:
			return sqltypes.NewBool(cmp > 0), nil
		default:
			return sqltypes.NewBool(cmp >= 0), nil
		}
	}
	return evalArith(e.op, l, r)
}

func (e *binaryEval) evalLogic(row sqltypes.Row) (sqltypes.Value, error) {
	l, err := e.l.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	// Short-circuit: FALSE AND x = FALSE; TRUE OR x = TRUE.
	if !l.IsNull() {
		if e.op == opAnd && !l.Bool() {
			return sqltypes.NewBool(false), nil
		}
		if e.op == opOr && l.Bool() {
			return sqltypes.NewBool(true), nil
		}
	}
	r, err := e.r.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	if e.op == opAnd {
		switch {
		case !r.IsNull() && !r.Bool():
			return sqltypes.NewBool(false), nil
		case l.IsNull() || r.IsNull():
			return sqltypes.Null, nil
		default:
			return sqltypes.NewBool(true), nil
		}
	}
	switch {
	case !r.IsNull() && r.Bool():
		return sqltypes.NewBool(true), nil
	case l.IsNull() || r.IsNull():
		return sqltypes.Null, nil
	default:
		return sqltypes.NewBool(false), nil
	}
}

// evalArith implements + - * / % with SQL numeric typing: two BIGINTs
// stay integral (with integer division), anything else is DOUBLE.
func evalArith(op binOp, l, r sqltypes.Value) (sqltypes.Value, error) {
	bothInt := l.Type() == sqltypes.TypeBigInt && r.Type() == sqltypes.TypeBigInt
	if bothInt {
		a, b := l.Int(), r.Int()
		switch op {
		case opAdd:
			return sqltypes.NewBigInt(a + b), nil
		case opSub:
			return sqltypes.NewBigInt(a - b), nil
		case opMul:
			return sqltypes.NewBigInt(a * b), nil
		case opDiv:
			if b == 0 {
				return sqltypes.Null, ErrDivisionByZero
			}
			return sqltypes.NewBigInt(a / b), nil
		case opMod:
			if b == 0 {
				return sqltypes.Null, ErrDivisionByZero
			}
			return sqltypes.NewBigInt(a % b), nil
		}
	}
	a, aok := l.Float()
	b, bok := r.Float()
	if !aok || !bok {
		return sqltypes.Null, fmt.Errorf("expr: non-numeric operands %v, %v", l, r)
	}
	switch op {
	case opAdd:
		return sqltypes.NewDouble(a + b), nil
	case opSub:
		return sqltypes.NewDouble(a - b), nil
	case opMul:
		return sqltypes.NewDouble(a * b), nil
	case opDiv:
		if b == 0 {
			return sqltypes.Null, ErrDivisionByZero
		}
		return sqltypes.NewDouble(a / b), nil
	case opMod:
		m, err := floatMod(a, b)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewDouble(m), nil
	}
	return sqltypes.Null, fmt.Errorf("expr: bad arithmetic op %d", op)
}

// funcEval invokes a scalar function.
type funcEval struct {
	def  *FuncDef
	args []Evaluator
	buf  []sqltypes.Value
}

func (e *funcEval) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	if cap(e.buf) < len(e.args) {
		e.buf = make([]sqltypes.Value, len(e.args))
	}
	vals := e.buf[:len(e.args)]
	for i, a := range e.args {
		v, err := a.Eval(row)
		if err != nil {
			return sqltypes.Null, err
		}
		vals[i] = v
	}
	if e.def.UDF {
		obs.UDFCalls.Inc()
	}
	return e.def.Fn(vals)
}

// caseEval is a searched CASE.
type caseWhen struct{ cond, then Evaluator }

type caseEval struct {
	whens []caseWhen
	els   Evaluator
}

func (e *caseEval) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	for _, w := range e.whens {
		c, err := w.cond.Eval(row)
		if err != nil {
			return sqltypes.Null, err
		}
		if !c.IsNull() && c.Bool() {
			return w.then.Eval(row)
		}
	}
	if e.els != nil {
		return e.els.Eval(row)
	}
	return sqltypes.Null, nil
}

// isNullEval is IS [NOT] NULL.
type isNullEval struct {
	x      Evaluator
	negate bool
}

func (e isNullEval) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	v, err := e.x.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	return sqltypes.NewBool(v.IsNull() != e.negate), nil
}

// castEval is CAST(x AS t).
type castEval struct {
	x Evaluator
	t sqltypes.Type
}

func (e castEval) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	v, err := e.x.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	return sqltypes.Coerce(v, e.t)
}

// betweenEval is x [NOT] BETWEEN lo AND hi.
type betweenEval struct {
	x, lo, hi Evaluator
	negate    bool
}

func (e betweenEval) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	x, err := e.x.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	lo, err := e.lo.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	hi, err := e.hi.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	if x.IsNull() || lo.IsNull() || hi.IsNull() {
		return sqltypes.Null, nil
	}
	in := sqltypes.Compare(x, lo) >= 0 && sqltypes.Compare(x, hi) <= 0
	return sqltypes.NewBool(in != e.negate), nil
}

// inEval is x [NOT] IN (list).
type inEval struct {
	x      Evaluator
	list   []Evaluator
	negate bool
}

func (e inEval) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	x, err := e.x.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	if x.IsNull() {
		return sqltypes.Null, nil
	}
	sawNull := false
	for _, item := range e.list {
		v, err := item.Eval(row)
		if err != nil {
			return sqltypes.Null, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		if sqltypes.Compare(x, v) == 0 {
			return sqltypes.NewBool(!e.negate), nil
		}
	}
	if sawNull {
		return sqltypes.Null, nil
	}
	return sqltypes.NewBool(e.negate), nil
}
