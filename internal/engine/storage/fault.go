package storage

import "fmt"

// Fault is a fault-injection hook for tests: it makes the storage
// layer's failure paths — a partition that cannot be opened, a scan
// that dies mid-stream, an append that fails after writing — reachable
// deterministically, so the executor's cancellation and rollback
// behavior can be asserted rather than hoped for. Production code
// never installs one.
type Fault struct {
	// Partition selects which partition faults; -1 matches all.
	Partition int
	// Err is the injected error; nil uses a generic one.
	Err error
	// ScanOpen fails ScanPartition before any row is delivered.
	ScanOpen bool
	// ScanAfterRows > 0 fails a scan of the partition after it has
	// delivered that many rows to the callback.
	ScanAfterRows int64
	// AppendAfter makes Insert's per-partition file append write its
	// rows and then report failure, exercising the rollback path.
	AppendAfter bool
	// FlushClose makes BulkLoader.Close fail flushing the partition.
	FlushClose bool
	// TruncateFail makes the rollback truncate of a failed append itself
	// fail, leaving torn trailing bytes on disk; exercises the
	// corruption-marking path (the partition must refuse later scans).
	TruncateFail bool
}

func (f *Fault) matches(p int) bool {
	return f != nil && (f.Partition < 0 || f.Partition == p)
}

func (f *Fault) err() error {
	if f.Err != nil {
		return f.Err
	}
	return fmt.Errorf("storage: injected fault")
}

// SetFault installs a fault hook on the table; nil clears it.
func (t *Table) SetFault(f *Fault) {
	t.mu.Lock()
	t.fault = f
	t.mu.Unlock()
}

// ScannedRows returns the cumulative number of rows this table has
// delivered to scan callbacks since creation (or the last reset).
// Tests use it to prove that a failing partition cancels its sibling
// scans early instead of letting them run to completion.
func (t *Table) ScannedRows() int64 { return t.scanned.Load() }

// ResetScannedRows zeroes the scanned-row counter.
func (t *Table) ResetScannedRows() { t.scanned.Store(0) }
