package storage

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/engine/obs"
	"repro/internal/engine/sqltypes"
)

// DefaultPartitions models the paper's 20 parallel Teradata threads.
const DefaultPartitions = 20

// Table is a horizontally partitioned relation. Rows are distributed
// round-robin across partitions (the paper: "data sets were
// horizontally partitioned evenly among threads").
//
// The guards directive below lets statlint's lockreent analyzer prove,
// over the whole program, that nothing re-enters mu: observer
// callbacks, *Locked methods, and scan callbacks all run with mu held
// and must not call back into the locking API (Insert, Scan, Rows...).
//
//statlint:guards mu
type Table struct {
	name   string
	schema *sqltypes.Schema
	dir    string // "" means in-memory

	mu    sync.RWMutex
	parts []partition
	// rows and epoch are written only under mu but read lock-free:
	// validity checks (summary cache freshness, Stamp) must not acquire
	// mu, or they would deadlock against writers notifying observers.
	rows  atomic.Int64
	epoch atomic.Int64 // bumped under mu on every published mutation

	// watchers receive append/invalidate notifications under mu; the
	// summary catalog registers entries here (see observer.go).
	watchers []Observer

	fault   *Fault       // test-only fault injection; nil in production
	scanned atomic.Int64 // cumulative rows delivered to scan callbacks
}

type partition struct {
	path string         // on-disk file, when dir != ""
	mem  []sqltypes.Row // in-memory rows otherwise
	rows int64
	// segRows is how many rows the partition's columnar segment file
	// covers: equal to rows when the segment is usable, segInvalid (-1)
	// when it must be rebuilt from the row log (see segment.go). The
	// segment is a derived cache, never a source of truth.
	segRows int64
	// corrupt records why this partition's file can no longer be
	// trusted (a failed rollback truncate left torn bytes); scans of a
	// corrupt partition fail loudly instead of decoding garbage.
	corrupt error
}

// NewTable creates an empty table with the given partition count. If
// dir is non-empty the partitions are files under dir and every scan
// re-reads them from the filesystem; otherwise rows are kept in memory.
func NewTable(name string, schema *sqltypes.Schema, dir string, partitions int) (*Table, error) {
	if partitions < 1 {
		return nil, fmt.Errorf("storage: table %q needs at least 1 partition", name)
	}
	if schema == nil || schema.Len() == 0 {
		return nil, fmt.Errorf("storage: table %q needs a non-empty schema", name)
	}
	t := &Table{name: name, schema: schema, dir: dir, parts: make([]partition, partitions)}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("storage: %w", err)
		}
		for i := range t.parts {
			path := filepath.Join(dir, fmt.Sprintf("%s.p%03d.dat", name, i))
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				return nil, fmt.Errorf("storage: %w", err)
			}
			t.parts[i].path = path
			// A stale segment from an earlier table of the same name must
			// not shadow the fresh (empty) row log.
			_ = os.Remove(t.segPathLocked(i))
		}
	}
	return t, nil
}

// OpenTable attaches to a table whose partition files already exist
// under dir (created by a previous process). Row counts are rebuilt by
// scanning the partitions once.
func OpenTable(name string, schema *sqltypes.Schema, dir string, partitions int) (*Table, error) {
	if dir == "" {
		return nil, fmt.Errorf("storage: OpenTable requires a directory")
	}
	if partitions < 1 {
		return nil, fmt.Errorf("storage: table %q needs at least 1 partition", name)
	}
	if schema == nil || schema.Len() == 0 {
		return nil, fmt.Errorf("storage: table %q needs a non-empty schema", name)
	}
	t := &Table{name: name, schema: schema, dir: dir, parts: make([]partition, partitions)}
	for i := range t.parts {
		path := filepath.Join(dir, fmt.Sprintf("%s.p%03d.dat", name, i))
		if _, err := os.Stat(path); err != nil {
			return nil, fmt.Errorf("storage: table %q partition missing: %w", name, err)
		}
		t.parts[i].path = path
	}
	// Count rows by reading the files directly rather than through
	// ScanPartition: the scan path cross-checks decoded row counts
	// against per-partition accounting, which is exactly what attach is
	// still rebuilding here.
	for p := range t.parts {
		count, err := countFileRows(t.parts[p].path, schema.Len())
		if err != nil {
			return nil, fmt.Errorf("storage: attaching table %q: %w", name, err)
		}
		t.parts[p].rows = count
		// A segment left behind by the previous process is unverified
		// until EnsureSegments walks (and adopts) or rebuilds it.
		t.parts[p].segRows = segInvalid
		t.rows.Add(count)
	}
	return t, nil
}

// countFileRows decodes an entire row-log file, returning how many rows
// it holds; any decode failure surfaces as ErrCorrupt.
func countFileRows(path string, arity int) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	rr := newRowReader(f, arity)
	var row sqltypes.Row
	var count int64
	for {
		row, err = rr.next(row)
		if err == io.EOF {
			return count, nil
		}
		if err != nil {
			return count, err
		}
		count++
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *sqltypes.Schema { return t.schema }

// Partitions returns the partition count.
func (t *Table) Partitions() int { return len(t.parts) }

// NumRows returns the current row count. It is lock-free: the count is
// published atomically after each mutation commits, so readers (and
// the summary cache's freshness checks, which run while writers may be
// blocked notifying observers) never contend on the table lock.
func (t *Table) NumRows() int64 { return t.rows.Load() }

// PartitionRowCounts returns the current per-partition row counts; the
// sys.partitions system table serves them.
func (t *Table) PartitionRowCounts() []int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]int64, len(t.parts))
	for i := range t.parts {
		out[i] = t.parts[i].rows
	}
	return out
}

// OnDisk reports whether partitions live in files.
func (t *Table) OnDisk() bool { return t.dir != "" }

// validate checks a row against the schema, coercing numeric widths.
func (t *Table) validate(row sqltypes.Row) (sqltypes.Row, error) {
	if len(row) != t.schema.Len() {
		return nil, fmt.Errorf("storage: table %q expects %d columns, got %d", t.name, t.schema.Len(), len(row))
	}
	out := row.Clone()
	for i, col := range t.schema.Columns {
		if out[i].IsNull() {
			continue
		}
		v, err := sqltypes.Coerce(out[i], col.Type)
		if err != nil {
			return nil, fmt.Errorf("storage: table %q column %q: %w", t.name, col.Name, err)
		}
		out[i] = v
	}
	return out, nil
}

// Insert appends rows, distributing them round-robin over partitions.
// It is safe for concurrent use.
func (t *Table) Insert(rows ...sqltypes.Row) error {
	if len(rows) == 0 {
		return nil
	}
	checked := make([]sqltypes.Row, len(rows))
	for i, r := range rows {
		v, err := t.validate(r)
		if err != nil {
			return err
		}
		checked[i] = v
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Group per partition up front; the groups drive both the appends
	// and the observer notifications after the insert publishes.
	groups := make([][]sqltypes.Row, len(t.parts))
	base := t.rows.Load()
	for i, r := range checked {
		p := int((base + int64(i)) % int64(len(t.parts)))
		groups[p] = append(groups[p], r)
	}
	if t.dir == "" {
		for p, g := range groups {
			t.parts[p].mem = append(t.parts[p].mem, g...)
			t.parts[p].rows += int64(len(g))
		}
		t.publishLocked(int64(len(checked)), groups)
		return nil
	}
	// Append each file once. A failed append rolls every
	// already-appended partition (and any partial write in the failing
	// one) back to its pre-insert size, so the files, the per-partition
	// counts, and the table count always agree: the insert either lands
	// completely or not at all. A partition whose rollback truncate
	// itself fails keeps torn trailing bytes on disk; it is marked
	// corrupt so later scans refuse it loudly instead of decoding
	// garbage rows.
	for p, g := range groups {
		if len(g) > 0 && t.parts[p].corrupt != nil {
			return fmt.Errorf("storage: table %q partition %d is corrupt: %w", t.name, p, t.parts[p].corrupt)
		}
	}
	type undo struct {
		p    int
		size int64
		rows int64
	}
	var done []undo
	rollback := func() {
		for _, u := range done {
			if err := t.truncateLocked(u.p, u.size); err != nil {
				continue // truncateLocked marked the partition corrupt
			}
			t.parts[u.p].rows = u.rows
		}
	}
	for p, g := range groups {
		if len(g) == 0 {
			continue
		}
		st, err := os.Stat(t.parts[p].path)
		if err != nil {
			rollback()
			return fmt.Errorf("storage: %w", err)
		}
		prevRows := t.parts[p].rows
		if err := t.appendFile(p, g); err != nil {
			_ = t.truncateLocked(p, st.Size()) // drop the partial write; marks corrupt on failure
			rollback()
			return err
		}
		done = append(done, undo{p: p, size: st.Size(), rows: prevRows})
	}
	// All row-log appends landed; mirror the groups into the columnar
	// segments (best-effort — a failure invalidates that partition's
	// segment, never the insert).
	t.appendSegLocked(groups)
	t.publishLocked(int64(len(checked)), groups)
	return nil
}

// publishLocked commits an insert: the table row count and epoch are
// advanced and observers see the appended rows followed by the publish
// stamp, all inside the same critical section — so an observer's view
// is never ahead of or behind what scans can deliver.
func (t *Table) publishLocked(added int64, groups [][]sqltypes.Row) {
	t.rows.Add(added)
	t.epoch.Add(1)
	obs.RowsInserted.Add(added)
	for p, g := range groups {
		if len(g) > 0 {
			t.notifyAppendLocked(p, g)
		}
	}
	t.notifyPublishLocked()
}

// truncateLocked shrinks a partition file back to size, the rollback
// primitive. A truncate that fails (or is failed by the TruncateFail
// fault) leaves torn bytes on disk, so the partition is marked corrupt:
// the epoch is bumped, observers are invalidated, and every later scan
// of the partition returns the recorded corruption error.
func (t *Table) truncateLocked(p int, size int64) error {
	// Any rollback leaves the segment behind the row log; rebuild lazily.
	t.invalidateSegLocked(p)
	err := os.Truncate(t.parts[p].path, size)
	if flt := t.fault; err == nil && flt.matches(p) && flt.TruncateFail {
		err = flt.err()
	}
	if err != nil {
		t.markCorruptLocked(p, fmt.Errorf("storage: rollback truncate of table %q partition %d to %d bytes failed: %w",
			t.name, p, size, err))
		return err
	}
	return nil
}

// markCorruptLocked records that a partition's on-disk state can no
// longer be trusted and invalidates every observer.
func (t *Table) markCorruptLocked(p int, err error) {
	t.invalidateSegLocked(p)
	t.parts[p].corrupt = err
	t.epoch.Add(1)
	t.notifyInvalidateLocked()
}

func (t *Table) appendFile(p int, rows []sqltypes.Row) error {
	f, err := os.OpenFile(t.parts[p].path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var buf []byte
	for _, r := range rows {
		buf, err = encodeRow(buf[:0], r)
		if err != nil {
			f.Close()
			return err
		}
		if _, err := w.Write(buf); err != nil {
			f.Close()
			return fmt.Errorf("storage: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	if flt := t.fault; flt.matches(p) && flt.AppendAfter {
		f.Close()
		return flt.err()
	}
	t.parts[p].rows += int64(len(rows))
	return f.Close()
}

// BulkLoader streams large row sets into a table with one open file per
// partition; used by the synthetic data generator and CSV import.
type BulkLoader struct {
	t         *Table
	files     []*bufio.Writer
	closers   []io.Closer
	origSizes []int64 // on-disk partition sizes before the load
	added     []int64 // rows written per partition, published on Close
	buf       []byte
	next      int64
	loaded    int64
	one       [1]sqltypes.Row // scratch for per-row observer notification

	// Columnar mirror: loaded rows are buffered per partition and
	// flushed to the segment files in full chunks. Segment writes are
	// best-effort; a failure marks that partition's segment for lazy
	// rebuild and never fails the load.
	segW       []*bufio.Writer
	segClosers []io.Closer
	segPend    [][]sqltypes.Row
	segScratch []byte
}

// NewBulkLoader opens a loader. The caller must Close it; rows become
// visible to scans only after Close.
func (t *Table) NewBulkLoader() (*BulkLoader, error) {
	bl := &BulkLoader{t: t, added: make([]int64, len(t.parts))}
	if t.dir != "" {
		bl.files = make([]*bufio.Writer, len(t.parts))
		bl.closers = make([]io.Closer, len(t.parts))
		bl.origSizes = make([]int64, len(t.parts))
		for i := range t.parts {
			st, err := os.Stat(t.parts[i].path)
			if err != nil {
				bl.abort()
				return nil, fmt.Errorf("storage: %w", err)
			}
			bl.origSizes[i] = st.Size()
			f, err := os.OpenFile(t.parts[i].path, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				bl.abort()
				return nil, fmt.Errorf("storage: %w", err)
			}
			bl.files[i] = bufio.NewWriterSize(f, 1<<18)
			bl.closers[i] = f
		}
	}
	t.mu.Lock() // held until Close; bulk load is exclusive
	if t.dir != "" {
		bl.segW = make([]*bufio.Writer, len(t.parts))
		bl.segClosers = make([]io.Closer, len(t.parts))
		bl.segPend = make([][]sqltypes.Row, len(t.parts))
		for i := range t.parts {
			if t.parts[i].segRows == segInvalid {
				continue // already needs a rebuild; don't mirror
			}
			f, err := os.OpenFile(t.segPathLocked(i), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.invalidateSegLocked(i)
				continue
			}
			bl.segW[i] = bufio.NewWriterSize(f, 1<<18)
			bl.segClosers[i] = f
		}
	}
	bl.next = t.rows.Load()
	return bl, nil
}

// Add appends one row to the load. Observers see the row immediately
// (still under the table lock the loader holds), but the loader's
// pending flag keeps their state unservable until Close publishes —
// or retracts — the load.
//
//statlint:locked Table.mu
func (bl *BulkLoader) Add(row sqltypes.Row) error {
	r, err := bl.t.validate(row)
	if err != nil {
		return err
	}
	p := int(bl.next % int64(len(bl.t.parts)))
	bl.next++
	bl.loaded++
	if bl.t.dir == "" {
		bl.t.parts[p].mem = append(bl.t.parts[p].mem, r)
		bl.t.parts[p].rows++
		bl.notify(p, r)
		return nil
	}
	bl.buf, err = encodeRow(bl.buf[:0], r)
	if err != nil {
		return err
	}
	if _, err := bl.files[p].Write(bl.buf); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	bl.added[p]++
	if bl.segW[p] != nil {
		bl.segPend[p] = append(bl.segPend[p], r)
		if len(bl.segPend[p]) == segChunkRows {
			bl.flushSegPend(p)
		}
	}
	bl.notify(p, r)
	return nil
}

// flushSegPend writes partition p's pending rows as one segment chunk;
// a failure stops mirroring that partition and marks its segment for
// lazy rebuild.
//
//statlint:locked Table.mu
func (bl *BulkLoader) flushSegPend(p int) {
	if len(bl.segPend[p]) == 0 {
		return
	}
	var err error
	bl.segScratch, err = appendSegChunks(bl.segW[p], bl.t.schema, bl.segPend[p], bl.segScratch)
	bl.segPend[p] = bl.segPend[p][:0]
	if err != nil {
		bl.t.invalidateSegLocked(p)
		bl.segClosers[p].Close()
		bl.segW[p], bl.segClosers[p] = nil, nil
	}
}

// notify streams one loaded row to the table's observers.
func (bl *BulkLoader) notify(p int, r sqltypes.Row) {
	if len(bl.t.watchers) == 0 {
		return
	}
	bl.one[0] = r
	bl.t.notifyAppendLocked(p, bl.one[:])
}

// Close flushes every partition and publishes only the successfully
// flushed rows: a partition whose flush or close fails is truncated
// back to its pre-load size and contributes nothing to the row counts,
// so the in-memory accounting never disagrees with the files. The
// first failure is returned.
//
//statlint:locked Table.mu
func (bl *BulkLoader) Close() error {
	t := bl.t
	defer t.mu.Unlock()
	if t.dir == "" {
		t.rows.Add(bl.loaded)
		t.epoch.Add(1)
		obs.RowsInserted.Add(bl.loaded)
		t.notifyPublishLocked()
		return nil
	}
	flt := t.fault
	var first error
	for i := range bl.files {
		if bl.files[i] == nil {
			continue
		}
		err := bl.files[i].Flush()
		if err != nil {
			err = fmt.Errorf("storage: %w", err)
		}
		if err == nil && flt.matches(i) && flt.FlushClose {
			err = flt.err()
		}
		if cerr := bl.closers[i].Close(); err == nil && cerr != nil {
			err = fmt.Errorf("storage: %w", cerr)
		}
		if err != nil {
			_ = t.truncateLocked(i, bl.origSizes[i]) // drop torn rows; invalidates the segment too
			if first == nil {
				first = err
			}
			continue
		}
		t.parts[i].rows += bl.added[i]
		t.rows.Add(bl.added[i])
		obs.RowsInserted.Add(bl.added[i])
	}
	// Settle the segment mirrors: flush the partial tail chunk and the
	// buffered writer; only partitions whose row log published and whose
	// segment writes all succeeded advance segRows.
	for i := range bl.segW {
		if bl.segW[i] == nil {
			continue
		}
		bl.flushSegPend(i)
		if bl.segW[i] == nil { // tail-chunk flush failed and closed the writer
			continue
		}
		err := bl.segW[i].Flush()
		if cerr := bl.segClosers[i].Close(); err == nil {
			err = cerr
		}
		if err != nil || t.parts[i].segRows == segInvalid {
			t.invalidateSegLocked(i)
			continue
		}
		t.parts[i].segRows += bl.added[i]
	}
	t.epoch.Add(1)
	if first != nil {
		// Rows streamed to observers during Add were retracted (or left
		// torn) for the failed partitions; their state must be rebuilt.
		t.notifyInvalidateLocked()
	}
	t.notifyPublishLocked()
	return first
}

// abort closes any files opened by a loader that failed to set up;
// nothing has been published yet, so no counts need adjusting.
func (bl *BulkLoader) abort() {
	for i := range bl.closers {
		if bl.closers[i] != nil {
			bl.closers[i].Close()
		}
	}
	for i := range bl.segClosers {
		if bl.segClosers[i] != nil {
			bl.segClosers[i].Close()
		}
	}
}

// ScanStats reports what one partition scan consumed.
type ScanStats struct {
	Rows  int64 // rows delivered to the callback
	Bytes int64 // encoded bytes decoded from disk (0 for in-memory)
}

// ScanPartition iterates the rows of partition p, invoking fn for each.
// The row passed to fn is reused between calls; fn must clone it to
// retain it. On-disk partitions are opened and read from the filesystem
// on every call — the engine never caches table data, matching the
// paper's measurement methodology. Cancellation of ctx (nil is treated
// as background) is observed between rows, so a long scan stops soon
// after a sibling partition fails.
func (t *Table) ScanPartition(ctx context.Context, p int, fn func(sqltypes.Row) error) error {
	_, err := t.ScanPartitionStats(ctx, p, fn)
	return err
}

// ScanPartitionStats is ScanPartition returning per-scan statistics;
// the stats cover whatever was read before an error, so failed scans
// still report how far they got.
func (t *Table) ScanPartitionStats(ctx context.Context, p int, fn func(sqltypes.Row) error) (ScanStats, error) {
	var st ScanStats
	// One pair of atomic adds per partition scan (not per row) keeps
	// the process-wide counters current at near-zero overhead.
	defer func() {
		obs.RowsScanned.Add(st.Rows)
		obs.BytesRead.Add(st.Bytes)
	}()
	if p < 0 || p >= len(t.parts) {
		return st, fmt.Errorf("storage: partition %d out of range 0..%d", p, len(t.parts)-1)
	}
	// Normalize at the boundary: a nil ctx means background, and
	// context.Background().Done() is nil, so the per-row fast path
	// below still skips the select entirely.
	if ctx == nil {
		ctx = context.Background()
	}
	done := ctx.Done()
	ctxErr := ctx.Err
	t.mu.RLock()
	defer t.mu.RUnlock()
	if c := t.parts[p].corrupt; c != nil {
		return st, fmt.Errorf("storage: refusing to scan corrupt partition %d of table %q: %w", p, t.name, c)
	}
	flt := t.fault
	failAfter := int64(-1)
	if flt.matches(p) {
		if flt.ScanOpen {
			return st, flt.err()
		}
		if flt.ScanAfterRows > 0 {
			failAfter = flt.ScanAfterRows
		}
	}
	deliver := func(r sqltypes.Row) error {
		if done != nil && st.Rows&63 == 0 {
			select {
			case <-done:
				return ctxErr()
			default:
			}
		}
		if failAfter >= 0 && st.Rows >= failAfter {
			return flt.err()
		}
		st.Rows++
		t.scanned.Add(1)
		return fn(r)
	}
	if t.dir == "" {
		for _, r := range t.parts[p].mem {
			if err := deliver(r); err != nil {
				return st, err
			}
		}
		return st, nil
	}
	f, err := os.Open(t.parts[p].path)
	if err != nil {
		return st, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	rr := newRowReader(f, t.schema.Len())
	var row sqltypes.Row
	var decoded int64
	for {
		row, err = rr.next(row)
		st.Bytes = rr.bytes
		if err == io.EOF {
			// A file truncated exactly at a row boundary decodes cleanly
			// but short — without this cross-check against the partition
			// accounting the scan would silently drop the tail rows.
			// (Extra rows are equally untrustworthy: a torn append that
			// never rolled back.)
			if want := t.parts[p].rows; decoded != want {
				return st, corruptf("storage: table %q partition %d decoded %d rows but accounting says %d",
					t.name, p, decoded, want)
			}
			return st, nil
		}
		if err != nil {
			return st, err
		}
		decoded++
		if err := deliver(row); err != nil {
			return st, err
		}
	}
}

// Scan iterates all partitions sequentially. Parallel scans are driven
// by the executor calling ScanPartition from multiple goroutines.
// Context-carrying callers must use ScanContext instead so the scan
// observes cancellation (the statlint ctxscan analyzer enforces this).
func (t *Table) Scan(fn func(sqltypes.Row) error) error {
	return t.ScanContext(context.Background(), fn)
}

// ScanContext is Scan observing ctx cancellation between rows (nil is
// normalized to background at the boundary).
func (t *Table) ScanContext(ctx context.Context, fn func(sqltypes.Row) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for p := 0; p < len(t.parts); p++ {
		if err := t.ScanPartition(ctx, p, fn); err != nil {
			return err
		}
	}
	return nil
}

// Truncate removes all rows. A partition whose file cannot be
// rewritten keeps its rows (and its count), so per-partition accounting
// stays consistent even on a partial truncate; rewriting the file empty
// also clears any corruption marker, since the torn bytes are gone.
func (t *Table) Truncate() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var removed int64
	var first error
	for i := range t.parts {
		if t.dir != "" {
			if err := os.WriteFile(t.parts[i].path, nil, 0o644); err != nil {
				if first == nil {
					first = fmt.Errorf("storage: %w", err)
				}
				continue
			}
			if err := os.Remove(t.segPathLocked(i)); err != nil && !os.IsNotExist(err) {
				t.parts[i].segRows = segInvalid
			} else {
				t.parts[i].segRows = 0
			}
		}
		removed += t.parts[i].rows
		t.parts[i].mem = nil
		t.parts[i].rows = 0
		t.parts[i].corrupt = nil
	}
	t.rows.Add(-removed)
	t.epoch.Add(1)
	t.notifyInvalidateLocked()
	t.notifyPublishLocked()
	return first
}

// Drop removes the table's on-disk files.
func (t *Table) Drop() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows.Store(0)
	t.epoch.Add(1)
	t.notifyInvalidateLocked()
	if t.dir == "" {
		t.parts = make([]partition, len(t.parts))
		return nil
	}
	var first error
	for i := range t.parts {
		if err := os.Remove(t.parts[i].path); err != nil && !os.IsNotExist(err) && first == nil {
			first = fmt.Errorf("storage: %w", err)
		}
		_ = os.Remove(t.segPathLocked(i))
		t.parts[i].segRows = segInvalid
	}
	return first
}

// SizeBytes returns the total on-disk size (0 for in-memory tables);
// the ODBC export simulator uses this to model transfer volume.
func (t *Table) SizeBytes() (int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.dir == "" {
		return 0, nil
	}
	var total int64
	for i := range t.parts {
		st, err := os.Stat(t.parts[i].path)
		if err != nil {
			return 0, fmt.Errorf("storage: %w", err)
		}
		total += st.Size()
	}
	return total, nil
}
