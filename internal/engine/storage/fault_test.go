package storage

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/engine/sqltypes"
)

// fill inserts n rows one batch at a time so they round-robin evenly.
func fill(t *testing.T, tab *Table, n int) {
	t.Helper()
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = row(int64(i), float64(i), "r")
	}
	if err := tab.Insert(rows...); err != nil {
		t.Fatal(err)
	}
}

// partitionCounts scans each partition and returns its row count,
// checking file contents stay decodable.
func partitionCounts(t *testing.T, tab *Table) []int64 {
	t.Helper()
	out := make([]int64, tab.Partitions())
	for p := range out {
		var c int64
		if err := tab.ScanPartition(nil, p, func(sqltypes.Row) error { c++; return nil }); err != nil {
			t.Fatalf("partition %d: %v", p, err)
		}
		out[p] = c
	}
	return out
}

func TestFaultScanOpen(t *testing.T) {
	tab, _ := NewTable("x", testSchema(), "", 4)
	fill(t, tab, 8)
	sentinel := errors.New("injected open failure")
	tab.SetFault(&Fault{Partition: 2, ScanOpen: true, Err: sentinel})
	if err := tab.ScanPartition(nil, 2, func(sqltypes.Row) error { return nil }); !errors.Is(err, sentinel) {
		t.Fatalf("want injected open error, got %v", err)
	}
	// Other partitions are unaffected.
	if err := tab.ScanPartition(nil, 1, func(sqltypes.Row) error { return nil }); err != nil {
		t.Fatal(err)
	}
	tab.SetFault(nil)
	if err := tab.ScanPartition(nil, 2, func(sqltypes.Row) error { return nil }); err != nil {
		t.Fatalf("cleared fault still fires: %v", err)
	}
}

func TestFaultScanAfterRows(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		tab, err := NewTable("x", testSchema(), dir, 2)
		if err != nil {
			t.Fatal(err)
		}
		fill(t, tab, 100) // 50 per partition
		tab.ResetScannedRows()
		tab.SetFault(&Fault{Partition: 0, ScanAfterRows: 7})
		var delivered int64
		st, err := tab.ScanPartitionStats(nil, 0, func(sqltypes.Row) error { delivered++; return nil })
		if err == nil || !strings.Contains(err.Error(), "injected") {
			t.Fatalf("want injected fault, got %v", err)
		}
		if delivered != 7 || st.Rows != 7 {
			t.Fatalf("delivered %d rows (stats %d), want 7", delivered, st.Rows)
		}
		if got := tab.ScannedRows(); got != 7 {
			t.Fatalf("ScannedRows = %d, want 7", got)
		}
		tab.SetFault(nil)
	}
}

func TestScanContextCancellation(t *testing.T) {
	tab, _ := NewTable("x", testSchema(), "", 1)
	fill(t, tab, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	var n int
	err := tab.ScanPartition(ctx, 0, func(sqltypes.Row) error {
		n++
		if n == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Cancellation is observed at the next 64-row check, well short of
	// the full scan.
	if n >= 1000 {
		t.Fatalf("scan ran to completion (%d rows) despite cancellation", n)
	}
}

func TestInsertAppendFaultRollsBack(t *testing.T) {
	tab, err := NewTable("x", testSchema(), t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, tab, 10)
	before := tab.NumRows()
	beforeParts := partitionCounts(t, tab)
	sizeBefore, err := tab.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}

	// Partition 2's append writes its rows and then reports failure;
	// partitions 0 and 1 have already been appended by then.
	tab.SetFault(&Fault{Partition: 2, AppendAfter: true})
	batch := make([]sqltypes.Row, 8)
	for i := range batch {
		batch[i] = row(int64(100+i), 0, "new")
	}
	if err := tab.Insert(batch...); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("want injected append failure, got %v", err)
	}
	tab.SetFault(nil)

	if got := tab.NumRows(); got != before {
		t.Fatalf("NumRows = %d after failed insert, want %d", got, before)
	}
	if size, _ := tab.SizeBytes(); size != sizeBefore {
		t.Fatalf("on-disk size %d after rollback, want %d", size, sizeBefore)
	}
	afterParts := partitionCounts(t, tab)
	var total int64
	for p := range afterParts {
		if afterParts[p] != beforeParts[p] {
			t.Fatalf("partition %d has %d rows after rollback, want %d", p, afterParts[p], beforeParts[p])
		}
		total += afterParts[p]
	}
	if total != before {
		t.Fatalf("partition counts sum to %d, table says %d", total, before)
	}

	// The table keeps working: the same batch lands cleanly now.
	if err := tab.Insert(batch...); err != nil {
		t.Fatal(err)
	}
	if got := tab.NumRows(); got != before+int64(len(batch)) {
		t.Fatalf("NumRows = %d after retry, want %d", got, before+int64(len(batch)))
	}
	if got := collect(t, tab); int64(len(got)) != tab.NumRows() {
		t.Fatalf("scan sees %d rows, counter says %d", len(got), tab.NumRows())
	}
}

func TestBulkLoaderCloseFaultPublishesOnlyFlushed(t *testing.T) {
	tab, err := NewTable("x", testSchema(), t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	tab.SetFault(&Fault{Partition: 1, FlushClose: true})
	bl, err := tab.NewBulkLoader()
	if err != nil {
		t.Fatal(err)
	}
	const n = 40 // 10 per partition
	for i := 0; i < n; i++ {
		if err := bl.Add(row(int64(i), float64(i), "bulk")); err != nil {
			t.Fatal(err)
		}
	}
	if err := bl.Close(); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("want injected flush failure, got %v", err)
	}
	tab.SetFault(nil)

	// Partition 1's rows were dropped; the other partitions' rows are
	// published and the counter matches what scans deliver.
	want := int64(n - n/4)
	if got := tab.NumRows(); got != want {
		t.Fatalf("NumRows = %d, want %d", got, want)
	}
	rows := collect(t, tab)
	if int64(len(rows)) != want {
		t.Fatalf("scan sees %d rows, want %d", len(rows), want)
	}
	counts := partitionCounts(t, tab)
	if counts[1] != 0 {
		t.Fatalf("failed partition still has %d rows", counts[1])
	}
	// A later load into the same table still works.
	bl2, err := tab.NewBulkLoader()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := bl2.Add(row(int64(1000+i), 0, "again")); err != nil {
			t.Fatal(err)
		}
	}
	if err := bl2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := tab.NumRows(); got != want+4 {
		t.Fatalf("NumRows = %d after second load, want %d", got, want+4)
	}
	if got := collect(t, tab); int64(len(got)) != want+4 {
		t.Fatalf("scan sees %d rows after second load", len(got))
	}
}

func TestScanPartitionStatsBytes(t *testing.T) {
	dir := t.TempDir()
	tab, err := NewTable("x", testSchema(), dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, tab, 25)
	st, err := tab.ScanPartitionStats(nil, 0, func(sqltypes.Row) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 25 {
		t.Fatalf("stats rows = %d", st.Rows)
	}
	size, err := tab.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != size {
		t.Fatalf("stats bytes = %d, file size = %d", st.Bytes, size)
	}
	// In-memory tables report zero bytes.
	mem, _ := NewTable("m", testSchema(), "", 1)
	fill(t, mem, 5)
	mst, err := mem.ScanPartitionStats(nil, 0, func(sqltypes.Row) error { return nil })
	if err != nil || mst.Bytes != 0 || mst.Rows != 5 {
		t.Fatalf("mem stats = %+v, %v", mst, err)
	}
}
