package storage

import "repro/internal/engine/sqltypes"

// Observer receives write-path notifications from a Table. The summary
// catalog registers one per cached n/L/Q entry so every insert and
// bulk-load append is delta-merged into the summary at write time —
// the paper's additively mergeable sufficient statistics maintained
// incrementally instead of rediscovered by rescans.
//
// Every callback runs while the table's write lock is held.
// Implementations must be fast, must never call back into table
// methods that acquire the lock (the lock-free accessors NumRows and
// Epoch are safe), and must not retain the row slices they are handed
// — rows are only valid for the duration of the call.
type Observer interface {
	// OnAppend delivers rows newly written to partition p. For
	// Table.Insert it fires after all partition files are written, just
	// before the mutation publishes; for a BulkLoader it fires during
	// the load, before Close publishes (or retracts) the batch. An
	// append that is later rolled back is followed by OnInvalidate, not
	// OnPublish, so folding rows eagerly is safe.
	OnAppend(p int, rows []sqltypes.Row)
	// OnPublish marks a committed mutation with the table's new row
	// count and epoch — the validity stamp observers compare their own
	// accounting against.
	OnPublish(rows, epoch int64)
	// OnInvalidate tells the observer its derived state is unrecoverable
	// (fault, rollback, truncate, drop): it must rebuild from a scan.
	OnInvalidate()
}

// Observe registers o and returns the table's validity stamp at the
// moment of registration. Registration and stamp read happen in one
// critical section, so o misses no mutation after the stamp: anything
// it has not seen via callbacks is covered by (rows, epoch).
func (t *Table) Observe(o Observer) (rows, epoch int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.watchers = append(t.watchers, o)
	return t.rows.Load(), t.epoch.Load()
}

// Unobserve removes o; a no-op if o is not registered.
func (t *Table) Unobserve(o Observer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, w := range t.watchers {
		if w == o {
			t.watchers = append(t.watchers[:i], t.watchers[i+1:]...)
			return
		}
	}
}

// Epoch returns the table's mutation epoch, bumped on every published
// write, invalidation, truncate or drop. Lock-free, like NumRows, for
// the same reason: freshness checks run while writers may be blocked
// notifying observers.
func (t *Table) Epoch() int64 { return t.epoch.Load() }

// Sync runs fn with the current validity stamp while holding the write
// lock, excluding every concurrent mutation. The summary catalog
// installs rebuilt entries through it: fn compares the stamp against
// the one recorded before the rebuild scan, so an install and an
// insert that raced the scan cannot interleave unnoticed.
func (t *Table) Sync(fn func(rows, epoch int64)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fn(t.rows.Load(), t.epoch.Load())
}

func (t *Table) notifyAppendLocked(p int, rows []sqltypes.Row) {
	for _, w := range t.watchers {
		w.OnAppend(p, rows)
	}
}

func (t *Table) notifyPublishLocked() {
	if len(t.watchers) == 0 {
		return
	}
	rows, epoch := t.rows.Load(), t.epoch.Load()
	for _, w := range t.watchers {
		w.OnPublish(rows, epoch)
	}
}

func (t *Table) notifyInvalidateLocked() {
	for _, w := range t.watchers {
		w.OnInvalidate()
	}
}
