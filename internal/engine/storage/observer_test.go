package storage

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/engine/sqltypes"
)

// recordingObserver tallies the callbacks a table fires.
type recordingObserver struct {
	appended    int64
	publishes   int
	invalidates int
	lastRows    int64
	lastEpoch   int64
}

func (o *recordingObserver) OnAppend(p int, rows []sqltypes.Row) { o.appended += int64(len(rows)) }
func (o *recordingObserver) OnPublish(rows, epoch int64) {
	o.publishes++
	o.lastRows, o.lastEpoch = rows, epoch
}
func (o *recordingObserver) OnInvalidate() { o.invalidates++ }

func TestObserverSeesInsertsAndBulkLoads(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		name := "mem"
		if dir != "" {
			name = "disk"
		}
		t.Run(name, func(t *testing.T) {
			tab, err := NewTable("x", testSchema(), dir, 3)
			if err != nil {
				t.Fatal(err)
			}
			var o recordingObserver
			rows, epoch := tab.Observe(&o)
			if rows != 0 || epoch != 0 {
				t.Fatalf("fresh table stamp = (%d, %d), want (0, 0)", rows, epoch)
			}
			fill(t, tab, 7)
			if o.appended != 7 || o.publishes != 1 {
				t.Fatalf("after insert: appended=%d publishes=%d", o.appended, o.publishes)
			}
			if o.lastRows != 7 || o.lastRows != tab.NumRows() || o.lastEpoch != tab.Epoch() {
				t.Fatalf("publish stamp (%d, %d) disagrees with table (%d, %d)",
					o.lastRows, o.lastEpoch, tab.NumRows(), tab.Epoch())
			}
			bl, err := tab.NewBulkLoader()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if err := bl.Add(row(int64(100+i), float64(i), "bulk")); err != nil {
					t.Fatal(err)
				}
			}
			if err := bl.Close(); err != nil {
				t.Fatal(err)
			}
			if o.appended != 12 || o.publishes != 2 {
				t.Fatalf("after bulk load: appended=%d publishes=%d", o.appended, o.publishes)
			}
			if o.lastRows != 12 || o.lastEpoch != tab.Epoch() {
				t.Fatalf("bulk publish stamp (%d, %d), table (%d, %d)",
					o.lastRows, o.lastEpoch, tab.NumRows(), tab.Epoch())
			}
			if o.invalidates != 0 {
				t.Fatalf("spurious invalidations: %d", o.invalidates)
			}
			// Truncate invalidates and republishes the empty stamp.
			if err := tab.Truncate(); err != nil {
				t.Fatal(err)
			}
			if o.invalidates != 1 || o.lastRows != 0 {
				t.Fatalf("after truncate: invalidates=%d lastRows=%d", o.invalidates, o.lastRows)
			}
			// Unobserve stops the callbacks.
			tab.Unobserve(&o)
			fill(t, tab, 2)
			if o.appended != 12 {
				t.Fatalf("unobserved observer still notified: appended=%d", o.appended)
			}
		})
	}
}

func TestObserverRollbackInvalidates(t *testing.T) {
	dir := t.TempDir()
	tab, err := NewTable("x", testSchema(), dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, tab, 4)
	var o recordingObserver
	tab.Observe(&o)
	sentinel := errors.New("injected append failure")
	tab.SetFault(&Fault{Partition: 1, AppendAfter: true, Err: sentinel})
	err = tab.Insert(row(10, 1, "a"), row(11, 2, "b"), row(12, 3, "c"))
	if !errors.Is(err, sentinel) {
		t.Fatalf("want injected append error, got %v", err)
	}
	// The failed insert rolled back cleanly: no publish, no appended rows
	// visible... but the appends the observer saw before the failure were
	// never published, so nothing needs invalidating either — the
	// observer's accounting is reconciled at the next publish. What must
	// hold: the table still has 4 rows and scans stay clean.
	tab.SetFault(nil)
	if tab.NumRows() != 4 {
		t.Fatalf("rows after rollback = %d, want 4", tab.NumRows())
	}
	if o.publishes != 0 {
		t.Fatalf("failed insert published: %d", o.publishes)
	}
	// A subsequent successful insert publishes a stamp that exposes the
	// mismatch (observer folded rows that were retracted); the summary
	// layer uses exactly this to demote itself.
	if err := tab.Insert(row(20, 5, "d")); err != nil {
		t.Fatal(err)
	}
	if o.lastRows != 5 {
		t.Fatalf("published rows = %d, want 5", o.lastRows)
	}
}

func TestTruncateFailMarksPartitionCorrupt(t *testing.T) {
	dir := t.TempDir()
	tab, err := NewTable("x", testSchema(), dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, tab, 4)
	var o recordingObserver
	tab.Observe(&o)
	sentinel := errors.New("injected truncate failure")
	// The append to partition 1 fails after writing, and the rollback
	// truncate fails too: torn bytes stay on disk.
	tab.SetFault(&Fault{Partition: 1, AppendAfter: true, TruncateFail: true, Err: sentinel})
	if err := tab.Insert(row(10, 1, "a"), row(11, 2, "b")); !errors.Is(err, sentinel) {
		t.Fatalf("want injected error, got %v", err)
	}
	tab.SetFault(nil)
	// The corrupt partition refuses scans loudly instead of decoding
	// garbage, and the failure names the partition.
	err = tab.ScanPartition(context.Background(), 1, func(sqltypes.Row) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "corrupt partition 1") {
		t.Fatalf("scan of corrupt partition: %v", err)
	}
	// Whole-table scans fail as well.
	if err := tab.Scan(func(sqltypes.Row) error { return nil }); err == nil {
		t.Fatal("full scan of table with corrupt partition succeeded")
	}
	// Healthy partitions still serve.
	if err := tab.ScanPartition(context.Background(), 0, func(sqltypes.Row) error { return nil }); err != nil {
		t.Fatalf("healthy partition refused: %v", err)
	}
	// Later inserts touching the corrupt partition are refused before
	// writing anything.
	err = tab.Insert(row(20, 5, "c"), row(21, 6, "d"))
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("insert into corrupt partition: %v", err)
	}
	// Observers were invalidated when the corruption was recorded.
	if o.invalidates == 0 {
		t.Fatal("corruption did not invalidate observers")
	}
	// Truncate rewrites the files empty, clearing the corruption.
	if err := tab.Truncate(); err != nil {
		t.Fatal(err)
	}
	if err := tab.Scan(func(sqltypes.Row) error { return nil }); err != nil {
		t.Fatalf("scan after truncate: %v", err)
	}
	if err := tab.Insert(row(30, 7, "e"), row(31, 8, "f")); err != nil {
		t.Fatalf("insert after truncate: %v", err)
	}
}
