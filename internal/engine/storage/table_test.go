package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/engine/sqltypes"
)

func testSchema() *sqltypes.Schema {
	return sqltypes.MustSchema(
		sqltypes.Column{Name: "i", Type: sqltypes.TypeBigInt},
		sqltypes.Column{Name: "x", Type: sqltypes.TypeDouble},
		sqltypes.Column{Name: "tag", Type: sqltypes.TypeVarChar},
	)
}

func row(i int64, x float64, tag string) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewBigInt(i), sqltypes.NewDouble(x), sqltypes.NewVarChar(tag)}
}

func collect(t *testing.T, tab *Table) []sqltypes.Row {
	t.Helper()
	var rows []sqltypes.Row
	if err := tab.Scan(func(r sqltypes.Row) error {
		rows = append(rows, r.Clone())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestInsertAndScanModes(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		name := "mem"
		if dir != "" {
			name = "disk"
		}
		t.Run(name, func(t *testing.T) {
			tab, err := NewTable("x", testSchema(), dir, 4)
			if err != nil {
				t.Fatal(err)
			}
			const n = 37
			for i := 0; i < n; i++ {
				if err := tab.Insert(row(int64(i), float64(i)*1.5, fmt.Sprintf("r%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if tab.NumRows() != n {
				t.Fatalf("NumRows = %d", tab.NumRows())
			}
			rows := collect(t, tab)
			if len(rows) != n {
				t.Fatalf("scanned %d rows", len(rows))
			}
			// Round-robin: each partition holds n/4 ± 1 rows.
			for p := 0; p < tab.Partitions(); p++ {
				var c int
				if err := tab.ScanPartition(nil, p, func(sqltypes.Row) error { c++; return nil }); err != nil {
					t.Fatal(err)
				}
				if c < n/4 || c > n/4+1 {
					t.Fatalf("partition %d has %d rows", p, c)
				}
			}
			// Values survive the round trip.
			seen := make(map[int64]sqltypes.Row)
			for _, r := range rows {
				seen[r[0].Int()] = r
			}
			for i := int64(0); i < n; i++ {
				r, ok := seen[i]
				if !ok {
					t.Fatalf("missing row %d", i)
				}
				if r[1].MustFloat() != float64(i)*1.5 || r[2].Str() != fmt.Sprintf("r%d", i) {
					t.Fatalf("row %d corrupted: %v", i, r)
				}
			}
		})
	}
}

func TestNullRoundTrip(t *testing.T) {
	tab, err := NewTable("x", testSchema(), t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(sqltypes.Row{sqltypes.NewBigInt(1), sqltypes.Null, sqltypes.Null}); err != nil {
		t.Fatal(err)
	}
	rows := collect(t, tab)
	if len(rows) != 1 || !rows[0][1].IsNull() || !rows[0][2].IsNull() {
		t.Fatalf("NULL round trip failed: %v", rows)
	}
}

func TestInsertValidation(t *testing.T) {
	tab, err := NewTable("x", testSchema(), "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(sqltypes.Row{sqltypes.NewBigInt(1)}); err == nil {
		t.Fatal("arity mismatch must be rejected")
	}
	if err := tab.Insert(sqltypes.Row{sqltypes.NewVarChar("xx"), sqltypes.NewDouble(1), sqltypes.NewVarChar("t")}); err == nil {
		t.Fatal("uncoercible value must be rejected")
	}
	// Coercion: double into bigint column truncates.
	if err := tab.Insert(sqltypes.Row{sqltypes.NewDouble(3.7), sqltypes.NewBigInt(2), sqltypes.NewVarChar("t")}); err != nil {
		t.Fatal(err)
	}
	rows := collect(t, tab)
	if rows[0][0].Int() != 3 || rows[0][1].MustFloat() != 2 {
		t.Fatalf("coercion wrong: %v", rows[0])
	}
}

func TestBulkLoader(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		tab, err := NewTable("bulk", testSchema(), dir, 3)
		if err != nil {
			t.Fatal(err)
		}
		bl, err := tab.NewBulkLoader()
		if err != nil {
			t.Fatal(err)
		}
		const n = 1000
		for i := 0; i < n; i++ {
			if err := bl.Add(row(int64(i), float64(i), "b")); err != nil {
				t.Fatal(err)
			}
		}
		if err := bl.Close(); err != nil {
			t.Fatal(err)
		}
		if tab.NumRows() != n {
			t.Fatalf("NumRows = %d", tab.NumRows())
		}
		if got := len(collect(t, tab)); got != n {
			t.Fatalf("scanned %d", got)
		}
	}
}

func TestTruncateAndDrop(t *testing.T) {
	dir := t.TempDir()
	tab, err := NewTable("x", testSchema(), dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(row(1, 1, "a"), row(2, 2, "b")); err != nil {
		t.Fatal(err)
	}
	if err := tab.Truncate(); err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 0 || len(collect(t, tab)) != 0 {
		t.Fatal("truncate left rows behind")
	}
	if err := tab.Insert(row(3, 3, "c")); err != nil {
		t.Fatal(err)
	}
	if len(collect(t, tab)) != 1 {
		t.Fatal("insert after truncate failed")
	}
	if err := tab.Drop(); err != nil {
		t.Fatal(err)
	}
}

func TestSizeBytes(t *testing.T) {
	tab, err := NewTable("x", testSchema(), t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := tab.SizeBytes()
	if err != nil || s0 != 0 {
		t.Fatalf("empty size = %d, %v", s0, err)
	}
	if err := tab.Insert(row(1, 1, "hello")); err != nil {
		t.Fatal(err)
	}
	s1, err := tab.SizeBytes()
	if err != nil || s1 <= 0 {
		t.Fatalf("size = %d, %v", s1, err)
	}
}

func TestScanErrorPropagation(t *testing.T) {
	tab, _ := NewTable("x", testSchema(), "", 2)
	if err := tab.Insert(row(1, 1, "a")); err != nil {
		t.Fatal(err)
	}
	sentinel := io.ErrUnexpectedEOF
	if err := tab.Scan(func(sqltypes.Row) error { return sentinel }); err != sentinel {
		t.Fatalf("scan error not propagated: %v", err)
	}
	if err := tab.ScanPartition(nil, 99, func(sqltypes.Row) error { return nil }); err == nil {
		t.Fatal("out-of-range partition must error")
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("x", testSchema(), "", 0); err == nil {
		t.Fatal("zero partitions must be rejected")
	}
	if _, err := NewTable("x", nil, "", 2); err == nil {
		t.Fatal("nil schema must be rejected")
	}
}

func TestConcurrentInsertAndScan(t *testing.T) {
	tab, err := NewTable("x", testSchema(), t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				if err := tab.Insert(row(int64(g*100+i), 1, "c")); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		go func() {
			var count int
			done <- tab.Scan(func(sqltypes.Row) error { count++; return nil })
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if tab.NumRows() != 200 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
}

func TestOpenTableReattach(t *testing.T) {
	dir := t.TempDir()
	t1, err := NewTable("x", testSchema(), dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := t1.Insert(row(int64(i), float64(i), "r")); err != nil {
			t.Fatal(err)
		}
	}
	t2, err := OpenTable("x", testSchema(), dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if t2.NumRows() != 10 {
		t.Fatalf("NumRows = %d after reattach", t2.NumRows())
	}
	if got := len(collect(t, t2)); got != 10 {
		t.Fatalf("scanned %d", got)
	}
	// Appends continue round-robin without clobbering.
	if err := t2.Insert(row(10, 10, "r")); err != nil {
		t.Fatal(err)
	}
	if t2.NumRows() != 11 {
		t.Fatalf("NumRows = %d", t2.NumRows())
	}
	// Errors: memory mode, missing files, bad schema.
	if _, err := OpenTable("x", testSchema(), "", 3); err == nil {
		t.Fatal("OpenTable without dir must fail")
	}
	if _, err := OpenTable("nope", testSchema(), dir, 3); err == nil {
		t.Fatal("missing partitions must fail")
	}
	if _, err := OpenTable("x", nil, dir, 3); err == nil {
		t.Fatal("nil schema must fail")
	}
	if _, err := OpenTable("x", testSchema(), dir, 0); err == nil {
		t.Fatal("zero partitions must fail")
	}
}

func TestCorruptFileDetected(t *testing.T) {
	dir := t.TempDir()
	tab, err := NewTable("x", testSchema(), dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(row(1, 1, "a")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the partition file by appending a bogus tag.
	bl, err := tab.NewBulkLoader()
	if err != nil {
		t.Fatal(err)
	}
	bl.files[0].Write([]byte{0xFF})
	if err := bl.Close(); err != nil {
		t.Fatal(err)
	}
	err = tab.Scan(func(sqltypes.Row) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "bad value tag") {
		t.Fatalf("corruption not detected: %v", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad-tag error %v is not ErrCorrupt", err)
	}
}

// TestShortCountDetected is the regression for the silent short-count
// bug: a row-log file truncated exactly at a row boundary used to decode
// cleanly with fewer rows than the partition accounting, and the scan
// reported success on the shortened data.
func TestShortCountDetected(t *testing.T) {
	dir := t.TempDir()
	tab, err := NewTable("x", testSchema(), dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(row(1, 1, "a")); err != nil {
		t.Fatal(err)
	}
	boundary, err := tab.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(row(2, 2, "b")); err != nil {
		t.Fatal(err)
	}
	// Chop the file back to the end of row 1 — a clean row boundary, so
	// decoding alone cannot notice anything wrong.
	if err := os.Truncate(tab.parts[0].path, boundary); err != nil {
		t.Fatal(err)
	}
	err = tab.Scan(func(sqltypes.Row) error { return nil })
	if err == nil {
		t.Fatal("truncated-at-boundary file scanned as if complete")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short-count error %v is not ErrCorrupt", err)
	}
	// Mid-row truncation is also typed.
	if err := os.Truncate(tab.parts[0].path, boundary-3); err != nil {
		t.Fatal(err)
	}
	err = tab.Scan(func(sqltypes.Row) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-row truncation error %v is not ErrCorrupt", err)
	}
}

// TestVarCharLengthCap: a corrupt length prefix must fail typed and
// fast, not allocate gigabytes and then hit a short read.
func TestVarCharLengthCap(t *testing.T) {
	dir := t.TempDir()
	tab, err := NewTable("x", testSchema(), dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(row(1, 1, "a")); err != nil {
		t.Fatal(err)
	}
	// Append a row whose varchar claims ~4 GiB: bigint, double, then the
	// poisoned length.
	f, err := os.OpenFile(tab.parts[0].path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	buf = append(buf, tagBigInt)
	buf = binary.LittleEndian.AppendUint64(buf, 2)
	buf = append(buf, tagDouble)
	buf = binary.LittleEndian.AppendUint64(buf, 0)
	buf = append(buf, tagVarChar)
	buf = binary.LittleEndian.AppendUint32(buf, 0xFFFF_FFF0)
	if _, err := f.Write(buf); err != nil {
		t.Fatal(err)
	}
	f.Close()
	err = tab.Scan(func(sqltypes.Row) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "codec limit") {
		t.Fatalf("forged varchar length not rejected: %v", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("length-cap error %v is not ErrCorrupt", err)
	}
	// The encoder refuses to produce such a row in the first place.
	huge := sqltypes.Row{sqltypes.NewBigInt(1), sqltypes.NewDouble(1), sqltypes.NewVarChar(string(make([]byte, maxVarCharLen+1)))}
	if _, err := encodeRow(nil, huge); err == nil {
		t.Fatal("encodeRow accepted an over-limit varchar")
	}
}

// TestOpenTableRejectsTruncatedFile: attach must fail loudly on a file
// that is torn mid-row rather than attaching with a short count.
func TestOpenTableRejectsTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	t1, err := NewTable("x", testSchema(), dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Insert(row(1, 1, "abc"), row(2, 2, "def")); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(t1.parts[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(t1.parts[0].path, st.Size()-2); err != nil {
		t.Fatal(err)
	}
	_, err = OpenTable("x", testSchema(), dir, 1)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("attach to torn file: err = %v, want ErrCorrupt", err)
	}
}
