package storage

import (
	"context"
	"errors"
	"io"
	"math"
	"os"
	"testing"

	"repro/internal/engine/sqltypes"
)

// collectBlocks scans partition p column-wise and returns the
// concatenated column values/validity for the requested ordinals.
func collectBlocks(t *testing.T, tab *Table, p int, cols []int) (vals [][]float64, valid [][]bool, rows int64) {
	t.Helper()
	vals = make([][]float64, len(cols))
	valid = make([][]bool, len(cols))
	st, err := tab.ScanPartitionBlocks(context.Background(), p, cols, func(b *Block) error {
		for s := range cols {
			vals[s] = append(vals[s], b.Cols[s][:b.Rows]...)
			valid[s] = append(valid[s], b.Valid[s][:b.Rows]...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return vals, valid, st.Rows
}

// rowVals extracts the row-path view of the same columns for comparison.
func rowVals(t *testing.T, tab *Table, p int, cols []int) (vals [][]float64, valid [][]bool) {
	t.Helper()
	vals = make([][]float64, len(cols))
	valid = make([][]bool, len(cols))
	err := tab.ScanPartition(context.Background(), p, func(r sqltypes.Row) error {
		for s, c := range cols {
			var f float64
			ok := false
			if colNumeric(tab.schema.Columns[c]) && !r[c].IsNull() {
				f, ok = r[c].Float()
			}
			if !ok {
				f = 0
			}
			vals[s] = append(vals[s], f)
			valid[s] = append(valid[s], ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return vals, valid
}

func blocksMatchRows(t *testing.T, tab *Table, cols []int) {
	t.Helper()
	for p := 0; p < tab.Partitions(); p++ {
		bv, bok, _ := collectBlocks(t, tab, p, cols)
		rv, rok := rowVals(t, tab, p, cols)
		for s := range cols {
			if len(bv[s]) != len(rv[s]) {
				t.Fatalf("p%d col %d: block path has %d rows, row path %d", p, cols[s], len(bv[s]), len(rv[s]))
			}
			for r := range bv[s] {
				if bok[s][r] != rok[s][r] || math.Float64bits(bv[s][r]) != math.Float64bits(rv[s][r]) {
					t.Fatalf("p%d col %d row %d: block (%v,%v) vs row (%v,%v)",
						p, cols[s], r, bv[s][r], bok[s][r], rv[s][r], rok[s][r])
				}
			}
		}
	}
}

func insertMixed(t *testing.T, tab *Table, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		r := row(int64(i), float64(i)*1.25, "tag")
		if i%5 == 0 {
			r[1] = sqltypes.Null
		}
		if i%7 == 0 {
			r[2] = sqltypes.Null
		}
		if err := tab.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBlockScanMatchesRowScan(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		name := "mem"
		if dir != "" {
			name = "disk"
		}
		t.Run(name, func(t *testing.T) {
			tab, err := NewTable("x", testSchema(), dir, 3)
			if err != nil {
				t.Fatal(err)
			}
			insertMixed(t, tab, 500)
			// Insert keeps segments fresh, so EnsureSegments is a no-op
			// here — but it must not hurt.
			if err := tab.EnsureSegments(); err != nil {
				t.Fatal(err)
			}
			blocksMatchRows(t, tab, []int{0, 1})
			blocksMatchRows(t, tab, []int{1})
			// A varchar column yields no numeric lanes on either path.
			blocksMatchRows(t, tab, []int{2, 0})
		})
	}
}

func TestBulkLoadWritesSegments(t *testing.T) {
	tab, err := NewTable("x", testSchema(), t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := tab.NewBulkLoader()
	if err != nil {
		t.Fatal(err)
	}
	const n = 9000 // spans multiple chunks plus a partial tail
	for i := 0; i < n; i++ {
		if err := bl.Add(row(int64(i), float64(i), "b")); err != nil {
			t.Fatal(err)
		}
	}
	if err := bl.Close(); err != nil {
		t.Fatal(err)
	}
	for _, si := range tab.Segments() {
		if si.Rows != tab.PartitionRowCounts()[si.Partition] {
			t.Fatalf("partition %d segment covers %d rows, want %d", si.Partition, si.Rows, tab.PartitionRowCounts()[si.Partition])
		}
		if si.Bytes <= 0 {
			t.Fatalf("partition %d segment has no bytes", si.Partition)
		}
	}
	blocksMatchRows(t, tab, []int{0, 1})
}

func TestEnsureSegmentsRebuildsAfterInvalidation(t *testing.T) {
	dir := t.TempDir()
	tab, err := NewTable("x", testSchema(), dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	insertMixed(t, tab, 100)
	// Simulate a rollback: invalidate and scribble on the segment file.
	tab.mu.Lock()
	tab.invalidateSegLocked(0)
	seg0 := tab.segPathLocked(0)
	tab.mu.Unlock()
	if err := os.WriteFile(seg0, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Stale segment refuses block scans before rebuild.
	_, err = tab.ScanPartitionBlocks(nil, 0, []int{1}, func(*Block) error { return nil })
	if !errors.Is(err, ErrSegmentStale) {
		t.Fatalf("stale segment scan: err = %v, want ErrSegmentStale", err)
	}
	if err := tab.EnsureSegments(); err != nil {
		t.Fatal(err)
	}
	blocksMatchRows(t, tab, []int{0, 1})
}

func TestOpenTableAdoptsOrRebuildsSegments(t *testing.T) {
	dir := t.TempDir()
	t1, err := NewTable("x", testSchema(), dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	insertMixed(t, t1, 64)
	// Reattach: segments on disk are intact, EnsureSegments adopts them.
	t2, err := OpenTable("x", testSchema(), dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := t2.EnsureSegments(); err != nil {
		t.Fatal(err)
	}
	blocksMatchRows(t, t2, []int{0, 1})
	// Corrupt one segment file; reattach must rebuild it from the rows.
	t2.mu.RLock()
	seg1 := t2.segPathLocked(1)
	t2.mu.RUnlock()
	if err := os.WriteFile(seg1, []byte("????bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	t3, err := OpenTable("x", testSchema(), dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := t3.EnsureSegments(); err != nil {
		t.Fatal(err)
	}
	blocksMatchRows(t, t3, []int{0, 1})
}

func TestTruncateDropResetSegments(t *testing.T) {
	dir := t.TempDir()
	tab, err := NewTable("x", testSchema(), dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	insertMixed(t, tab, 50)
	if err := tab.Truncate(); err != nil {
		t.Fatal(err)
	}
	for _, si := range tab.Segments() {
		if si.Rows != 0 || si.Bytes != 0 {
			t.Fatalf("truncate left segment state: %+v", si)
		}
	}
	insertMixed(t, tab, 20)
	blocksMatchRows(t, tab, []int{0, 1})
	if err := tab.Drop(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentDecoderRejectsCorruption(t *testing.T) {
	schema := testSchema()
	rows := []sqltypes.Row{row(1, 1.5, "a"), row(2, 2.5, "b")}
	good := encodeSegChunk(nil, schema, rows)

	check := func(name string, raw []byte) {
		t.Helper()
		sr := newSegReader(raw, schema, []int{0, 1})
		var err error
		for err == nil {
			_, err = sr.next()
		}
		if err == io.EOF {
			t.Fatalf("%s: decoder accepted corrupt input", name)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	check("magic", bad)
	// Truncated mid-body.
	check("short body", good[:len(good)-5])
	// Row count out of range.
	bad = append([]byte{}, good...)
	bad[4], bad[5], bad[6], bad[7] = 0xFF, 0xFF, 0xFF, 0xFF
	check("row count", bad)
	// Column count mismatch.
	bad = append([]byte{}, good...)
	bad[8] = 9
	check("ncols", bad)
	// Body length mismatch.
	bad = append([]byte{}, good...)
	bad[12]++
	check("bodyLen", bad)
	// Trailing garbage after a valid chunk.
	check("trailing", append(append([]byte{}, good...), 'j', 'u', 'n', 'k'))
}

// FuzzDecodeSegment drives the segment chunk decoder with mutated real
// segment bytes: it must never panic, and every failure must be typed.
func FuzzDecodeSegment(f *testing.F) {
	schema := testSchema()
	var rows []sqltypes.Row
	for i := 0; i < 20; i++ {
		r := row(int64(i), float64(i)*0.5, "seed")
		if i%3 == 0 {
			r[1] = sqltypes.Null
		}
		rows = append(rows, r)
	}
	f.Add(encodeSegChunk(nil, schema, rows))
	f.Add(encodeSegChunk(nil, schema, rows[:1]))
	two := encodeSegChunk(nil, schema, rows[:7])
	f.Add(encodeSegChunk(two, schema, rows[7:]))
	f.Add([]byte(segMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		sr := newSegReader(data, schema, []int{0, 1, 2})
		var total int
		for {
			blk, err := sr.next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("untyped decode error: %v", err)
				}
				return
			}
			for s := range blk.Cols {
				if len(blk.Cols[s]) != blk.Rows || len(blk.Valid[s]) != blk.Rows {
					t.Fatalf("block shape mismatch: rows=%d cols=%d valid=%d", blk.Rows, len(blk.Cols[s]), len(blk.Valid[s]))
				}
			}
			total += blk.Rows
			if total > 1<<24 {
				return // bound fuzz work on adversarial huge streams
			}
		}
	})
}
