package storage

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/engine/obs"
	"repro/internal/engine/sqltypes"
)

// Columnar segments are a derived cache of the row log: each on-disk
// partition may carry a sibling `.seg` file holding the same rows
// re-encoded column-wise, so the batch execution path decodes only the
// columns a query references and hands them to vector kernels as
// []float64 slices. The row log remains the single source of truth —
// any rollback, truncate or corruption simply invalidates the segment
// (segRows = -1) and EnsureSegments lazily rebuilds it from the rows.
//
// File layout: a sequence of chunks, each
//
//	magic "SEG1" | u32 rows (1..segChunkRows) | u32 ncols | u32 bodyLen
//	body: ncols column blocks, in schema order
//
// and each column block is
//
//	tag byte (1 = numeric, 0 = other)
//	valid bitmap, ceil(rows/8) bytes (bit set = numeric value present;
//	for non-numeric columns: value is non-NULL)
//	numeric only: min f64 | max f64 | rows × f64 values (little-endian,
//	invalid lanes zero-filled)
//
// BIGINT values are stored as float64 via the same conversion the
// row-at-a-time n/L/Q scan applies (Value.Float), so block kernels see
// exactly the operands the row path would.
const (
	segMagic     = "SEG1"
	segChunkRows = 4096
)

// ErrSegmentStale reports that a partition's segment file does not
// cover its current rows; callers fall back to the row log (and may
// EnsureSegments to rebuild).
var ErrSegmentStale = errors.New("storage: segment stale")

// segInvalid marks a partition whose segment can no longer be trusted.
const segInvalid = -1

// Block is one decoded batch of column data delivered to block-scan
// callbacks. Slices are reused between callbacks; callers must copy
// anything they retain. Cols/Valid are indexed parallel to the
// requested column list, not by schema ordinal. Valid reports "numeric
// value present": NULLs and non-numeric columns are false (with the
// corresponding Cols lane zero-filled).
type Block struct {
	Rows  int
	Cols  [][]float64
	Valid [][]bool
}

// colNumeric reports whether a schema column carries values in segment
// blocks. The rule is by declared type, not by stored value: a VARCHAR
// that happens to parse as a number must not sneak into numeric kernels
// on one path and not the other.
func colNumeric(c sqltypes.Column) bool {
	return c.Type == sqltypes.TypeDouble || c.Type == sqltypes.TypeBigInt
}

// NumericColumn is the exported form of the block-path numeric rule;
// the executor uses it to gate block kernels on schema types so both
// paths agree on which lanes carry operands.
func NumericColumn(c sqltypes.Column) bool { return colNumeric(c) }

// segPath derives the segment filename for partition p.
func (t *Table) segPathLocked(p int) string {
	return strings.TrimSuffix(t.parts[p].path, ".dat") + ".seg"
}

// invalidateSegLocked marks partition p's segment untrusted; the stale
// file (if any) is left behind and replaced wholesale on rebuild.
func (t *Table) invalidateSegLocked(p int) {
	t.parts[p].segRows = segInvalid
}

// appendSegChunks encodes rows as one or more chunks appended to w.
func appendSegChunks(w io.Writer, schema *sqltypes.Schema, rows []sqltypes.Row, scratch []byte) ([]byte, error) {
	for len(rows) > 0 {
		n := len(rows)
		if n > segChunkRows {
			n = segChunkRows
		}
		scratch = encodeSegChunk(scratch[:0], schema, rows[:n])
		if _, err := w.Write(scratch); err != nil {
			return scratch, fmt.Errorf("storage: %w", err)
		}
		rows = rows[n:]
	}
	return scratch, nil
}

// encodeSegChunk appends one chunk (≤ segChunkRows rows) to buf.
func encodeSegChunk(buf []byte, schema *sqltypes.Schema, rows []sqltypes.Row) []byte {
	nrows := len(rows)
	bmLen := (nrows + 7) / 8
	buf = append(buf, segMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nrows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(schema.Len()))
	lenAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // bodyLen, patched below
	bodyStart := len(buf)
	for c, col := range schema.Columns {
		if !colNumeric(col) {
			buf = append(buf, 0)
			bm := len(buf)
			buf = append(buf, make([]byte, bmLen)...)
			for r, row := range rows {
				if !row[c].IsNull() {
					buf[bm+r/8] |= 1 << (r % 8)
				}
			}
			continue
		}
		buf = append(buf, 1)
		bm := len(buf)
		buf = append(buf, make([]byte, bmLen)...)
		mn, mx := math.Inf(1), math.Inf(-1)
		statAt := len(buf)
		buf = append(buf, make([]byte, 16)...) // min/max, patched below
		for r, row := range rows {
			var f float64
			if v := row[c]; !v.IsNull() {
				if fv, ok := v.Float(); ok {
					f = fv
					buf[bm+r/8] |= 1 << (r % 8)
					if f < mn {
						mn = f
					}
					if f > mx {
						mx = f
					}
				}
			}
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
		binary.LittleEndian.PutUint64(buf[statAt:], math.Float64bits(mn))
		binary.LittleEndian.PutUint64(buf[statAt+8:], math.Float64bits(mx))
	}
	binary.LittleEndian.PutUint32(buf[lenAt:], uint32(len(buf)-bodyStart))
	return buf
}

// segReader decodes consecutive chunks of a segment image, surfacing
// only the requested schema ordinals into a reused Block. It works
// over the whole segment in memory: partitions are small enough to
// slurp, and decoding straight out of the image avoids the buffer
// copies and per-read syscalls of a streaming reader.
type segReader struct {
	data   []byte
	off    int
	schema *sqltypes.Schema
	want   []int // requested schema ordinals
	slot   []int // schema ordinal -> Block slot, -1 when not requested
	blk    Block
	bytes  int64
}

func newSegReader(data []byte, schema *sqltypes.Schema, want []int) *segReader {
	sr := &segReader{
		data:   data,
		schema: schema,
		want:   want,
		slot:   make([]int, schema.Len()),
	}
	for i := range sr.slot {
		sr.slot[i] = -1
	}
	for s, c := range want {
		sr.slot[c] = s
	}
	sr.blk.Cols = make([][]float64, len(want))
	sr.blk.Valid = make([][]bool, len(want))
	return sr
}

// take returns the next n bytes of the image without copying, or
// reports that the stream is short.
func (sr *segReader) take(n int) ([]byte, bool) {
	if n < 0 || len(sr.data)-sr.off < n {
		return nil, false
	}
	b := sr.data[sr.off : sr.off+n]
	sr.off += n
	return b, true
}

// next decodes one chunk into the reader's Block. io.EOF is returned
// cleanly at end of stream; every other failure wraps ErrCorrupt.
func (sr *segReader) next() (*Block, error) {
	if sr.off == len(sr.data) {
		return nil, io.EOF
	}
	hdr, ok := sr.take(16)
	if !ok {
		return nil, corruptf("storage: truncated segment chunk header")
	}
	if string(hdr[:4]) != segMagic {
		return nil, corruptf("storage: bad segment chunk magic %q", string(hdr[:4]))
	}
	nrows := int(binary.LittleEndian.Uint32(hdr[4:8]))
	ncols := int(binary.LittleEndian.Uint32(hdr[8:12]))
	bodyLen := int64(binary.LittleEndian.Uint32(hdr[12:16]))
	sr.bytes += 16
	if nrows < 1 || nrows > segChunkRows {
		return nil, corruptf("storage: segment chunk row count %d out of range 1..%d", nrows, segChunkRows)
	}
	if ncols != sr.schema.Len() {
		return nil, corruptf("storage: segment chunk has %d columns, schema has %d", ncols, sr.schema.Len())
	}
	bmLen := (nrows + 7) / 8
	bodyStart := sr.off
	sr.blk.Rows = nrows
	for c := 0; c < ncols; c++ {
		tb, ok := sr.take(1)
		if !ok {
			return nil, corruptf("storage: truncated segment column block")
		}
		tag := tb[0]
		numeric := tag == 1
		if tag > 1 {
			return nil, corruptf("storage: bad segment column tag %d", tag)
		}
		s := sr.slot[c]
		if s < 0 {
			// Not requested: skip the block without decoding.
			skip := bmLen
			if numeric {
				skip += 16 + nrows*8
			}
			if _, ok := sr.take(skip); !ok {
				return nil, corruptf("storage: truncated segment column block")
			}
			continue
		}
		bm, ok := sr.take(bmLen)
		if !ok {
			return nil, corruptf("storage: truncated segment bitmap")
		}
		if cap(sr.blk.Valid[s]) < nrows {
			sr.blk.Valid[s] = make([]bool, nrows)
			sr.blk.Cols[s] = make([]float64, nrows)
		}
		valid := sr.blk.Valid[s][:nrows]
		vals := sr.blk.Cols[s][:nrows]
		sr.blk.Valid[s] = valid
		sr.blk.Cols[s] = vals
		if !numeric {
			// Non-numeric columns carry no kernel operands; every lane
			// is invalid regardless of the (informational) null bitmap.
			for r := range valid {
				valid[r] = false
				vals[r] = 0
			}
			continue
		}
		if _, ok := sr.take(16); !ok { // min/max, unused by scans
			return nil, corruptf("storage: truncated segment min/max")
		}
		raw, ok := sr.take(nrows * 8)
		if !ok {
			return nil, corruptf("storage: truncated segment values")
		}
		for r := 0; r < nrows; r++ {
			vals[r] = math.Float64frombits(binary.LittleEndian.Uint64(raw[r*8:]))
		}
		// Expand the bitmap a byte at a time; full bytes (the common
		// NULL-free case) take the memset-like branch.
		for i, b := range bm {
			base := i * 8
			end := base + 8
			if end > nrows {
				end = nrows
			}
			if b == 0xff {
				for r := base; r < end; r++ {
					valid[r] = true
				}
				continue
			}
			for r := base; r < end; r++ {
				valid[r] = b&(1<<(r-base)) != 0
			}
		}
	}
	consumed := int64(sr.off - bodyStart)
	if consumed != bodyLen {
		return nil, corruptf("storage: segment chunk body is %d bytes, header says %d", consumed, bodyLen)
	}
	sr.bytes += consumed
	return &sr.blk, nil
}

// countSegRows walks an existing segment file's chunk headers, checking
// structural integrity and returning the total row count. Used to adopt
// a segment left by a previous process.
func countSegRows(path string, schema *sqltypes.Schema) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	sr := newSegReader(data, schema, nil)
	var total int64
	for {
		blk, err := sr.next()
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
		total += int64(blk.Rows)
	}
}

// appendSegLocked mirrors freshly appended row groups into the segment
// files of the partitions that still have a valid segment. Segment
// writes are best-effort: a failure invalidates that partition's
// segment (to be lazily rebuilt) and never fails the insert.
func (t *Table) appendSegLocked(groups [][]sqltypes.Row) {
	if t.dir == "" {
		return
	}
	var scratch []byte
	for p, g := range groups {
		if len(g) == 0 || t.parts[p].segRows == segInvalid {
			continue
		}
		f, err := os.OpenFile(t.segPathLocked(p), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.invalidateSegLocked(p)
			continue
		}
		w := bufio.NewWriterSize(f, 1<<16)
		scratch, err = appendSegChunks(w, t.schema, g, scratch)
		if err == nil {
			err = w.Flush()
		}
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			t.invalidateSegLocked(p)
			continue
		}
		t.parts[p].segRows += int64(len(g))
	}
}

// EnsureSegments makes every partition's segment file cover its current
// rows, adopting a structurally intact file left by a previous process
// or rebuilding from the row log otherwise. It holds the write lock for
// the duration (rebuilds read the row log and rewrite the segment
// atomically via rename), so it must not be called from scan callbacks.
// In-memory tables need no segments — blocks are synthesized from the
// resident rows.
func (t *Table) EnsureSegments() error {
	if t.dir == "" {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for p := range t.parts {
		if t.parts[p].corrupt != nil {
			continue // row scans of this partition fail loudly already
		}
		if t.parts[p].segRows == t.parts[p].rows {
			continue
		}
		if t.parts[p].segRows == segInvalid {
			if n, err := countSegRows(t.segPathLocked(p), t.schema); err == nil && n == t.parts[p].rows {
				t.parts[p].segRows = n
				continue
			}
		}
		if err := t.rebuildSegLocked(p); err != nil {
			t.invalidateSegLocked(p)
			return err
		}
	}
	return nil
}

// rebuildSegLocked re-derives partition p's segment from its row log.
func (t *Table) rebuildSegLocked(p int) error {
	src, err := os.Open(t.parts[p].path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer src.Close()
	tmp := t.segPathLocked(p) + ".tmp"
	dst, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	w := bufio.NewWriterSize(dst, 1<<18)
	rr := newRowReader(src, t.schema.Len())
	var (
		pend    []sqltypes.Row
		scratch []byte
		total   int64
		row     sqltypes.Row
	)
	flush := func() error {
		if len(pend) == 0 {
			return nil
		}
		scratch, err = appendSegChunks(w, t.schema, pend, scratch)
		pend = pend[:0]
		return err
	}
	fail := func(err error) error {
		dst.Close()
		os.Remove(tmp)
		return err
	}
	for {
		row, err = rr.next(row)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fail(err)
		}
		pend = append(pend, row.Clone())
		total++
		if len(pend) == segChunkRows {
			if err := flush(); err != nil {
				return fail(err)
			}
		}
	}
	if err := flush(); err != nil {
		return fail(err)
	}
	if total != t.parts[p].rows {
		return fail(corruptf("storage: table %q partition %d row log decoded %d rows but accounting says %d",
			t.name, p, total, t.parts[p].rows))
	}
	if err := w.Flush(); err != nil {
		return fail(fmt.Errorf("storage: %w", err))
	}
	if err := dst.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: %w", err)
	}
	if err := os.Rename(tmp, t.segPathLocked(p)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: %w", err)
	}
	t.parts[p].segRows = total
	return nil
}

// ScanPartitionBlocks iterates partition p column-wise, delivering
// blocks of the requested schema ordinals to fn. The Block (and its
// slices) is reused between calls; fn must copy anything it retains.
// On-disk partitions require a segment covering the partition's current
// rows — otherwise ErrSegmentStale is returned before any block is
// delivered, so callers can fall back to the row path without partial
// accumulation. In-memory partitions synthesize blocks from resident
// rows. Every row of the partition appears in exactly one delivered
// block (invalid lanes included), so block-path row accounting matches
// the row path's.
func (t *Table) ScanPartitionBlocks(ctx context.Context, p int, cols []int, fn func(*Block) error) (ScanStats, error) {
	var st ScanStats
	var blocks int64
	defer func() {
		obs.RowsScanned.Add(st.Rows)
		obs.BytesRead.Add(st.Bytes)
		obs.ColumnarBlocksScanned.Add(blocks)
	}()
	if p < 0 || p >= len(t.parts) {
		return st, fmt.Errorf("storage: partition %d out of range 0..%d", p, len(t.parts)-1)
	}
	for _, c := range cols {
		if c < 0 || c >= t.schema.Len() {
			return st, fmt.Errorf("storage: column ordinal %d out of range 0..%d", c, t.schema.Len()-1)
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	done := ctx.Done()
	t.mu.RLock()
	defer t.mu.RUnlock()
	if c := t.parts[p].corrupt; c != nil {
		return st, fmt.Errorf("storage: refusing to scan corrupt partition %d of table %q: %w", p, t.name, c)
	}
	flt := t.fault
	if flt.matches(p) && flt.ScanOpen {
		return st, flt.err()
	}
	deliver := func(b *Block) error {
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		st.Rows += int64(b.Rows)
		blocks++
		t.scanned.Add(int64(b.Rows))
		return fn(b)
	}
	if t.dir == "" {
		return st, t.scanMemBlocksLocked(p, cols, deliver)
	}
	if t.parts[p].segRows != t.parts[p].rows {
		return st, fmt.Errorf("storage: table %q partition %d: %w", t.name, p, ErrSegmentStale)
	}
	if t.parts[p].rows == 0 {
		// Never-written partitions have no segment file; an empty scan
		// is still a successful block scan, not a stale fallback.
		return st, nil
	}
	data, err := os.ReadFile(t.segPathLocked(p))
	if err != nil {
		return st, fmt.Errorf("storage: table %q partition %d: %w", t.name, p, ErrSegmentStale)
	}
	sr := newSegReader(data, t.schema, cols)
	var total int64
	for {
		blk, err := sr.next()
		st.Bytes = sr.bytes
		if err == io.EOF {
			if total != t.parts[p].segRows {
				return st, corruptf("storage: table %q partition %d segment holds %d rows but accounting says %d",
					t.name, p, total, t.parts[p].segRows)
			}
			return st, nil
		}
		if err != nil {
			return st, err
		}
		total += int64(blk.Rows)
		if err := deliver(blk); err != nil {
			return st, err
		}
	}
}

// scanMemBlocksLocked synthesizes blocks from an in-memory partition.
func (t *Table) scanMemBlocksLocked(p int, cols []int, deliver func(*Block) error) error {
	mem := t.parts[p].mem
	blk := Block{
		Cols:  make([][]float64, len(cols)),
		Valid: make([][]bool, len(cols)),
	}
	for s := range cols {
		blk.Cols[s] = make([]float64, 0, segChunkRows)
		blk.Valid[s] = make([]bool, 0, segChunkRows)
	}
	for off := 0; off < len(mem); off += segChunkRows {
		n := len(mem) - off
		if n > segChunkRows {
			n = segChunkRows
		}
		blk.Rows = n
		for s, c := range cols {
			vals := blk.Cols[s][:n]
			valid := blk.Valid[s][:n]
			numeric := colNumeric(t.schema.Columns[c])
			for r := 0; r < n; r++ {
				vals[r], valid[r] = 0, false
				if !numeric {
					continue
				}
				if v := mem[off+r][c]; !v.IsNull() {
					if f, ok := v.Float(); ok {
						vals[r], valid[r] = f, true
					}
				}
			}
			blk.Cols[s] = vals
			blk.Valid[s] = valid
		}
		if err := deliver(&blk); err != nil {
			return err
		}
	}
	return nil
}

// SegmentInfo describes one partition's segment state; sys.segments
// serves it.
type SegmentInfo struct {
	Partition int
	Rows      int64 // rows covered; -1 when invalid/unbuilt
	Bytes     int64 // on-disk segment size (0 when absent)
}

// Segments reports per-partition segment state. In-memory tables report
// no segments (blocks are synthesized).
func (t *Table) Segments() []SegmentInfo {
	if t.dir == "" {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]SegmentInfo, len(t.parts))
	for p := range t.parts {
		out[p] = SegmentInfo{Partition: p, Rows: t.parts[p].segRows}
		if stt, err := os.Stat(t.segPathLocked(p)); err == nil {
			out[p].Bytes = stt.Size()
		}
	}
	return out
}
