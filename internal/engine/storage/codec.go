// Package storage implements the engine's table storage: horizontally
// partitioned tables whose partitions live either in on-disk files
// (re-read on every scan, like the paper's uncached table scans) or in
// memory (for model tables and tests).
//
// The partition count models Teradata's parallel processing threads:
// the paper's system had 20, each owning 1/20th of X; scans here run
// one goroutine per partition at the executor level.
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/engine/sqltypes"
)

// ErrCorrupt is the typed error every decode-path failure wraps — a
// truncated row, a bad value tag, an implausible varchar length, a
// segment chunk that fails its header checks, or a partition file whose
// decoded row count disagrees with the table's accounting. Callers
// classify with errors.Is instead of string matching.
var ErrCorrupt = errors.New("storage: corrupt data")

// maxVarCharLen caps a single decoded VARCHAR payload. A corrupt or
// forged u32 length prefix would otherwise drive an allocation of up to
// 4 GiB before the short read is even noticed; nothing the engine
// writes approaches this.
const maxVarCharLen = 1 << 26 // 64 MiB

// corruptf builds an ErrCorrupt-wrapped error. Extra %w verbs in format
// keep any underlying I/O error inspectable too.
func corruptf(format string, args ...any) error {
	args = append(args, ErrCorrupt)
	return fmt.Errorf(format+": %w", args...)
}

// Row codec: every value is a 1-byte type tag followed by its payload.
// DOUBLE and BIGINT are 8 bytes little-endian; VARCHAR is a u32 length
// plus bytes; NULL has no payload. A row is the concatenation of its
// column values — the schema supplies arity, so no row header is needed.
const (
	tagNull    byte = 0
	tagDouble  byte = 1
	tagBigInt  byte = 2
	tagVarChar byte = 3
)

// encodeRow appends the binary encoding of row to buf and returns it.
func encodeRow(buf []byte, row sqltypes.Row) ([]byte, error) {
	for _, v := range row {
		switch v.Type() {
		case sqltypes.TypeNull:
			buf = append(buf, tagNull)
		case sqltypes.TypeDouble:
			f, _ := v.Float()
			buf = append(buf, tagDouble)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		case sqltypes.TypeBigInt:
			buf = append(buf, tagBigInt)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Int()))
		case sqltypes.TypeVarChar:
			s := v.Str()
			if len(s) > maxVarCharLen {
				return nil, fmt.Errorf("storage: varchar of %d bytes exceeds the %d-byte codec limit", len(s), maxVarCharLen)
			}
			buf = append(buf, tagVarChar)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
			buf = append(buf, s...)
		default:
			return nil, fmt.Errorf("storage: cannot encode value of type %v", v.Type())
		}
	}
	return buf, nil
}

// rowReader decodes consecutive rows of fixed arity from a byte stream,
// counting the encoded bytes it consumes (for scan statistics).
type rowReader struct {
	r     *bufio.Reader
	arity int
	bytes int64
	buf   [8]byte
}

func newRowReader(r io.Reader, arity int) *rowReader {
	return &rowReader{r: bufio.NewReaderSize(r, 1<<16), arity: arity}
}

// next decodes one row into dst (reused across calls when it has
// capacity). It returns io.EOF cleanly at end of stream.
func (rr *rowReader) next(dst sqltypes.Row) (sqltypes.Row, error) {
	if cap(dst) < rr.arity {
		dst = make(sqltypes.Row, rr.arity)
	}
	dst = dst[:rr.arity]
	for i := 0; i < rr.arity; i++ {
		tag, err := rr.r.ReadByte()
		if err != nil {
			if err == io.EOF && i == 0 {
				return nil, io.EOF
			}
			return nil, corruptf("storage: row truncated after %d of %d values: %w", i, rr.arity, err)
		}
		rr.bytes++
		switch tag {
		case tagNull:
			dst[i] = sqltypes.Null
		case tagDouble:
			if _, err := io.ReadFull(rr.r, rr.buf[:8]); err != nil {
				return nil, corruptf("storage: truncated double: %w", err)
			}
			rr.bytes += 8
			dst[i] = sqltypes.NewDouble(math.Float64frombits(binary.LittleEndian.Uint64(rr.buf[:8])))
		case tagBigInt:
			if _, err := io.ReadFull(rr.r, rr.buf[:8]); err != nil {
				return nil, corruptf("storage: truncated bigint: %w", err)
			}
			rr.bytes += 8
			dst[i] = sqltypes.NewBigInt(int64(binary.LittleEndian.Uint64(rr.buf[:8])))
		case tagVarChar:
			if _, err := io.ReadFull(rr.r, rr.buf[:4]); err != nil {
				return nil, corruptf("storage: truncated varchar length: %w", err)
			}
			n := binary.LittleEndian.Uint32(rr.buf[:4])
			if n > maxVarCharLen {
				return nil, corruptf("storage: varchar length %d exceeds the %d-byte codec limit", n, maxVarCharLen)
			}
			s := make([]byte, n)
			if _, err := io.ReadFull(rr.r, s); err != nil {
				return nil, corruptf("storage: truncated varchar: %w", err)
			}
			rr.bytes += 4 + int64(n)
			dst[i] = sqltypes.NewVarChar(string(s))
		default:
			return nil, corruptf("storage: bad value tag %d", tag)
		}
	}
	return dst, nil
}
