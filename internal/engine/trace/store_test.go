package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func rec(tid, errMsg string, slow bool) Record {
	return Record{
		TraceID:  tid,
		SQL:      "SELECT 1",
		Start:    time.Now(),
		Duration: time.Millisecond,
		Err:      errMsg,
		Slow:     slow,
		Spans:    []SpanRecord{{SpanID: NewSpanID().String(), Name: "statement", Start: time.Now(), Duration: time.Millisecond}},
	}
}

func TestClassification(t *testing.T) {
	s := NewStore(1, 16) // keep everything
	errID := NewTraceID().String()
	slowID := NewTraceID().String()
	okID := NewTraceID().String()
	s.Observe(rec(errID, "boom", false))
	s.Observe(rec(slowID, "", true))
	s.Observe(rec(okID, "", false))

	for _, tc := range []struct {
		id, class string
	}{{errID, ClassError}, {slowID, ClassSlow}, {okID, ClassSampled}} {
		r, ok := s.Get(tc.id)
		if !ok {
			t.Fatalf("trace %s not retained", tc.id)
		}
		if r.Class != tc.class {
			t.Errorf("trace %s class = %q, want %q", tc.id, r.Class, tc.class)
		}
	}
}

func TestDeterministicSampling(t *testing.T) {
	s := NewStore(4, 1024)
	retained := 0
	for i := 0; i < 16; i++ {
		if s.Observe(rec(NewTraceID().String(), "", false)) {
			retained++
		}
	}
	if retained != 4 {
		t.Fatalf("retained %d of 16 healthy traces at 1-in-4, want 4", retained)
	}
	// The very first healthy trace is always kept.
	s2 := NewStore(1000, 16)
	if !s2.Observe(rec(NewTraceID().String(), "", false)) {
		t.Fatal("first healthy trace was sampled out; sampling must start retained")
	}
}

// TestFloodRetainsAllErrorAndSlowTraces is the acceptance check: under
// a 500-statement flood, every error trace and every slow trace
// survives tail-sampling even though healthy traffic is sampled and
// bounded.
func TestFloodRetainsAllErrorAndSlowTraces(t *testing.T) {
	s := NewStore(DefaultSampleN, DefaultClassCap)
	var (
		mu      sync.Mutex
		errIDs  []string
		slowIDs []string
	)
	var wg sync.WaitGroup
	for i := 0; i < 500; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := NewTraceID().String()
			switch {
			case i%10 == 3: // 50 error traces
				s.Observe(rec(id, fmt.Sprintf("error %d", i), false))
				mu.Lock()
				errIDs = append(errIDs, id)
				mu.Unlock()
			case i%10 == 7: // 50 slow traces
				s.Observe(rec(id, "", true))
				mu.Lock()
				slowIDs = append(slowIDs, id)
				mu.Unlock()
			default:
				s.Observe(rec(id, "", false))
			}
		}(i)
	}
	wg.Wait()

	for _, id := range errIDs {
		r, ok := s.Get(id)
		if !ok {
			t.Fatalf("error trace %s was not retained", id)
		}
		if r.Class != ClassError {
			t.Fatalf("error trace %s class = %q", id, r.Class)
		}
	}
	for _, id := range slowIDs {
		if _, ok := s.Get(id); !ok {
			t.Fatalf("slow trace %s was not retained", id)
		}
	}
	// Healthy traffic stayed bounded: 400 healthy traces at 1-in-16
	// can retain at most the sampled-class capacity.
	sampled := 0
	for _, r := range s.Snapshot() {
		if r.Class == ClassSampled {
			sampled++
		}
	}
	if sampled == 0 || sampled > DefaultClassCap {
		t.Fatalf("sampled-class retention = %d, want within (0, %d]", sampled, DefaultClassCap)
	}
}

func TestMergeAndClassUpgrade(t *testing.T) {
	s := NewStore(1, 16)
	id := NewTraceID().String()
	first := rec(id, "", false)
	s.Observe(first)
	second := rec(id, "late failure", false)
	second.Start = first.Start.Add(time.Millisecond)
	s.Observe(second)

	r, ok := s.Get(id)
	if !ok {
		t.Fatal("merged trace missing")
	}
	if r.Class != ClassError {
		t.Fatalf("merged trace class = %q, want %q (upgrade)", r.Class, ClassError)
	}
	if len(r.Spans) != 2 {
		t.Fatalf("merged trace has %d spans, want 2", len(r.Spans))
	}
	if r.Err != "late failure" {
		t.Fatalf("merged trace error = %q", r.Err)
	}
	if r.Duration < time.Millisecond {
		t.Fatalf("merged duration %v did not extend", r.Duration)
	}
}

func TestAttachSpans(t *testing.T) {
	s := NewStore(1, 16)
	id := NewTraceID().String()
	s.Observe(rec(id, "", false))
	s.Attach(id, 42, SpanRecord{SpanID: NewSpanID().String(), Name: "server", Start: time.Now(), Duration: 2 * time.Millisecond})

	r, ok := s.Get(id)
	if !ok {
		t.Fatal("trace missing")
	}
	if len(r.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(r.Spans))
	}
	if r.SessionID != 42 {
		t.Fatalf("session id = %d, want 42", r.SessionID)
	}
	// Attaching to a dropped trace is a silent no-op.
	s.Attach(NewTraceID().String(), 1, SpanRecord{SpanID: "x", Name: "server"})
}

func TestEvictionDropsOldestOfSameClass(t *testing.T) {
	s := NewStore(1, 4)
	ids := make([]string, 8)
	base := time.Now()
	for i := range ids {
		ids[i] = NewTraceID().String()
		r := rec(ids[i], "", false)
		r.Start = base.Add(time.Duration(i) * time.Millisecond)
		s.Observe(r)
	}
	for _, id := range ids[:4] {
		if _, ok := s.Get(id); ok {
			t.Errorf("oldest trace %s still retained after eviction", id)
		}
	}
	for _, id := range ids[4:] {
		if _, ok := s.Get(id); !ok {
			t.Errorf("recent trace %s evicted", id)
		}
	}
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	snap := s.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d records, want 4", len(snap))
	}
	if snap[0].TraceID != ids[7] {
		t.Fatalf("snapshot not newest-first: got %s, want %s", snap[0].TraceID, ids[7])
	}
}
