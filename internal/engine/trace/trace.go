// Package trace is the engine's trace-context layer: TraceID/SpanID
// generation, context propagation, and a bounded tail-sampling store
// of finished traces. It is the shared envelope under every statement,
// local or remote — the db layer stamps each exec.Stats span tree with
// IDs from the statement context, the serving layer adopts the
// client's TraceID off the wire and wraps the execution in a server
// span, and the client links its roundtrip span to the server-side
// tree through the TraceID echoed in the Done frame.
//
// The package sits below db and exec in the dependency order (it
// imports only obs and the standard library), so any layer of the
// statement path can attach or read a SpanContext without cycles.
package trace

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
)

// TraceID identifies one statement's end-to-end trace: every span the
// statement produces — client roundtrip, server session, exec phases —
// carries the same TraceID. 128 bits, rendered as 32 hex digits.
type TraceID [16]byte

// SpanID identifies one span within a trace. 64 bits, 16 hex digits.
type SpanID [8]byte

// NewTraceID returns a random trace ID. IDs are random rather than
// sequential so traces from many processes (the client and every twmd
// shard) can be merged without coordination.
func NewTraceID() TraceID {
	var t TraceID
	binary.LittleEndian.PutUint64(t[:8], rand.Uint64())
	binary.LittleEndian.PutUint64(t[8:], rand.Uint64())
	return t
}

// NewSpanID returns a random span ID.
func NewSpanID() SpanID {
	var s SpanID
	binary.LittleEndian.PutUint64(s[:], rand.Uint64())
	return s
}

// IsZero reports an unset trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports an unset span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses the 32-hex-digit form.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 2*len(t) {
		return t, fmt.Errorf("trace: trace id must be %d hex digits, got %q", 2*len(t), s)
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("trace: bad trace id %q: %w", s, err)
	}
	return t, nil
}

// ParseSpanID parses the 16-hex-digit form.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 2*len(id) {
		return id, fmt.Errorf("trace: span id must be %d hex digits, got %q", 2*len(id), s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, fmt.Errorf("trace: bad span id %q: %w", s, err)
	}
	return id, nil
}

// SpanContext is the propagated trace position: which trace a
// statement belongs to and which span is its parent. The server puts
// its session span here so the executor's statement span nests under
// it; the client puts its roundtrip span here so the server nests
// under that.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// NewRoot starts a fresh trace with a fresh root span.
func NewRoot() SpanContext {
	return SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
}

type ctxKey struct{}

// NewContext returns a context carrying sc; statement execution under
// it is stamped with sc.TraceID, parented at sc.SpanID.
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the SpanContext attached by NewContext (zero
// and false when the statement has no caller-provided trace).
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok
}
