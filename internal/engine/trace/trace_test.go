package trace

import (
	"context"
	"testing"
)

func TestIDGenerationAndParse(t *testing.T) {
	tid := NewTraceID()
	if tid.IsZero() {
		t.Fatal("NewTraceID returned zero")
	}
	s := tid.String()
	if len(s) != 32 {
		t.Fatalf("trace id string length = %d, want 32 (%q)", len(s), s)
	}
	back, err := ParseTraceID(s)
	if err != nil {
		t.Fatalf("ParseTraceID(%q): %v", s, err)
	}
	if back != tid {
		t.Fatalf("round trip mismatch: %v != %v", back, tid)
	}

	sid := NewSpanID()
	if sid.IsZero() {
		t.Fatal("NewSpanID returned zero")
	}
	ss := sid.String()
	if len(ss) != 16 {
		t.Fatalf("span id string length = %d, want 16 (%q)", len(ss), ss)
	}
	sback, err := ParseSpanID(ss)
	if err != nil {
		t.Fatalf("ParseSpanID(%q): %v", ss, err)
	}
	if sback != sid {
		t.Fatalf("round trip mismatch: %v != %v", sback, sid)
	}

	if a, b := NewTraceID(), NewTraceID(); a == b {
		t.Fatal("two NewTraceID calls collided")
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	for _, bad := range []string{"", "zz", "0123", "g0000000000000000000000000000000"} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) succeeded, want error", bad)
		}
	}
	if _, err := ParseSpanID("nothex!!nothex!!"); err == nil {
		t.Error("ParseSpanID accepted non-hex input")
	}
	if _, err := ParseSpanID("00"); err == nil {
		t.Error("ParseSpanID accepted short input")
	}
}

func TestContextRoundTrip(t *testing.T) {
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("empty context reported a SpanContext")
	}
	sc := NewRoot()
	ctx := NewContext(context.Background(), sc)
	got, ok := FromContext(ctx)
	if !ok {
		t.Fatal("FromContext missed the attached SpanContext")
	}
	if got != sc {
		t.Fatalf("FromContext = %+v, want %+v", got, sc)
	}
}
