package trace

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/engine/obs"
)

// Retention classes. Tail sampling keeps every error trace and every
// slow trace (per the db's SlowQuery threshold) unconditionally; plain
// successful statements are kept 1-in-N. Each class has its own
// bounded ring, so a flood of healthy traffic can never evict the
// error traces you actually need.
const (
	ClassError   = "error"
	ClassSlow    = "slow"
	ClassSampled = "sampled"
)

// Store instruments, registered once on the process-wide registry.
var (
	tracesRetained = obs.Default.Counter("engine_trace_retained_total",
		"Traces retained by the tail-sampling trace store (all classes).")
	tracesDropped = obs.Default.Counter("engine_trace_dropped_total",
		"Healthy traces dropped by 1-in-N tail sampling.")
	tracesEvicted = obs.Default.Counter("engine_trace_evicted_total",
		"Retained traces evicted when a class ring reached capacity.")
	traceSpans = obs.Default.Counter("engine_trace_spans_total",
		"Spans recorded into retained traces.")
)

// SpanRecord is one finished span, flattened out of the executor's
// span tree (or synthesized by the serving layer) into the parent-
// pointer form sys.spans serves.
type SpanRecord struct {
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_span_id,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Rows     int64         `json:"rows,omitempty"`
	Bytes    int64         `json:"bytes,omitempty"`
}

// Record is one trace in the store: the statement(s) that ran under
// one TraceID with their flattened spans. Script statements sharing a
// trace merge into one record.
type Record struct {
	TraceID   string        `json:"trace_id"`
	SQL       string        `json:"sql"`
	SessionID int64         `json:"session_id,omitempty"`
	Start     time.Time     `json:"start"`
	Duration  time.Duration `json:"duration_ns"`
	Err       string        `json:"error,omitempty"`
	Slow      bool          `json:"slow,omitempty"`
	Class     string        `json:"class"`
	Spans     []SpanRecord  `json:"spans"`
}

// Default store shape: 1-in-16 sampling of healthy traces, 128 traces
// per retention class.
const (
	DefaultSampleN  = 16
	DefaultClassCap = 128
)

// Store is the bounded in-memory tail-sampling trace store. Decisions
// are made when a statement finishes (tail sampling: the outcome is
// known), deterministically — every Nth healthy trace is kept, so a
// store that observed at least one statement always has at least one
// trace to show.
type Store struct {
	sampleN  int
	classCap int

	mu    sync.Mutex
	seen  uint64              // healthy traces observed, for 1-in-N
	rings map[string][]*Record // per-class FIFO, oldest first
	index map[string]*Record   // TraceID -> retained record
}

// NewStore builds a store keeping 1-in-sampleN healthy traces and at
// most classCap traces per retention class. Zero or negative selects
// the defaults; sampleN 1 keeps everything.
func NewStore(sampleN, classCap int) *Store {
	if sampleN <= 0 {
		sampleN = DefaultSampleN
	}
	if classCap <= 0 {
		classCap = DefaultClassCap
	}
	return &Store{
		sampleN:  sampleN,
		classCap: classCap,
		rings:    make(map[string][]*Record),
		index:    make(map[string]*Record),
	}
}

// classOf ranks a record's retention class; error outranks slow
// outranks sampled, so a merge can only upgrade.
func classOf(errMsg string, slow bool) string {
	switch {
	case errMsg != "":
		return ClassError
	case slow:
		return ClassSlow
	default:
		return ClassSampled
	}
}

func classRank(class string) int {
	switch class {
	case ClassError:
		return 2
	case ClassSlow:
		return 1
	default:
		return 0
	}
}

// Observe records one finished statement. If the trace is already
// retained (an earlier statement of the same script, or a concurrent
// shard) the statement merges into it — upgrading its class if the new
// outcome outranks the old, so an error late in a script cannot be
// evicted by healthy-traffic pressure. New healthy traces pass the
// 1-in-N gate; error and slow traces are always kept. It returns
// whether the trace is retained after the call.
func (s *Store) Observe(rec Record) bool {
	if s == nil || rec.TraceID == "" {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.index[rec.TraceID]; ok {
		s.mergeLocked(existing, rec)
		return true
	}
	class := classOf(rec.Err, rec.Slow)
	if class == ClassSampled {
		n := s.seen
		s.seen++
		if n%uint64(s.sampleN) != 0 {
			tracesDropped.Inc()
			return false
		}
	}
	r := rec // retain a copy; the caller keeps its value
	r.Class = class
	r.Spans = append([]SpanRecord(nil), rec.Spans...)
	s.appendLocked(&r)
	tracesRetained.Inc()
	traceSpans.Add(int64(len(r.Spans)))
	obs.Flight.Add("trace", fmt.Sprintf("trace %s class=%s dur=%s sql=%.80q", r.TraceID, r.Class, r.Duration, r.SQL))
	return true
}

// Attach merges extra spans (the serving layer's session/server span,
// a future coordinator's fan-out spans) into an already-retained
// trace; a no-op when the trace was sampled out. sessionID is recorded
// when the trace has none yet.
func (s *Store) Attach(traceID string, sessionID int64, spans ...SpanRecord) {
	if s == nil || traceID == "" || len(spans) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.index[traceID]
	if !ok {
		return
	}
	r.Spans = append(r.Spans, spans...)
	if r.SessionID == 0 {
		r.SessionID = sessionID
	}
	for _, sp := range spans {
		if end := sp.Start.Add(sp.Duration); end.After(r.Start.Add(r.Duration)) {
			r.Duration = end.Sub(r.Start)
		}
	}
	traceSpans.Add(int64(len(spans)))
}

// mergeLocked folds a later statement of the same trace into its
// retained record.
func (s *Store) mergeLocked(r *Record, rec Record) {
	if rec.SQL != "" {
		if r.SQL == "" {
			r.SQL = rec.SQL
		} else {
			r.SQL += "; " + rec.SQL
		}
	}
	if rec.Start.Before(r.Start) {
		r.Start = rec.Start
	}
	if end := rec.Start.Add(rec.Duration); end.After(r.Start.Add(r.Duration)) {
		r.Duration = end.Sub(r.Start)
	}
	if rec.Err != "" && r.Err == "" {
		r.Err = rec.Err
	}
	r.Slow = r.Slow || rec.Slow
	if r.SessionID == 0 {
		r.SessionID = rec.SessionID
	}
	r.Spans = append(r.Spans, rec.Spans...)
	traceSpans.Add(int64(len(rec.Spans)))
	if newClass := classOf(r.Err, r.Slow); classRank(newClass) > classRank(r.Class) {
		s.removeFromRingLocked(r)
		r.Class = newClass
		s.appendLocked(r)
	}
}

// appendLocked adds r to its class ring, evicting the class's oldest
// trace when full, and indexes it.
func (s *Store) appendLocked(r *Record) {
	ring := s.rings[r.Class]
	if len(ring) >= s.classCap {
		evicted := ring[0]
		copy(ring, ring[1:])
		ring = ring[:len(ring)-1]
		delete(s.index, evicted.TraceID)
		tracesEvicted.Inc()
	}
	s.rings[r.Class] = append(ring, r)
	s.index[r.TraceID] = r
}

// removeFromRingLocked pulls r out of its current class ring (for a
// class upgrade). Rings are small (classCap), so the linear scan is
// fine.
func (s *Store) removeFromRingLocked(r *Record) {
	ring := s.rings[r.Class]
	for i, cand := range ring {
		if cand == r {
			s.rings[r.Class] = append(ring[:i], ring[i+1:]...)
			return
		}
	}
}

// Get returns a copy of the retained trace (ok false when sampled out
// or evicted).
func (s *Store) Get(traceID string) (Record, bool) {
	if s == nil {
		return Record{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.index[traceID]
	if !ok {
		return Record{}, false
	}
	return copyRecord(r), true
}

// Snapshot returns copies of every retained trace, newest first.
func (s *Store) Snapshot() []Record {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]Record, 0, len(s.index))
	for _, class := range []string{ClassError, ClassSlow, ClassSampled} {
		for _, r := range s.rings[class] {
			out = append(out, copyRecord(r))
		}
	}
	s.mu.Unlock()
	// Newest first across classes, like sys.queries.
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

func copyRecord(r *Record) Record {
	out := *r
	out.Spans = append([]SpanRecord(nil), r.Spans...)
	return out
}

// Len reports the number of retained traces.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}
