// Package obs is the engine's process-wide observability layer: a
// metrics registry of atomic counters, gauges and fixed-bucket latency
// histograms that the storage, executor and UDF hot paths update with
// near-zero overhead. The paper's evaluation is entirely about where
// time goes (scan vs. UDF phases vs. model build); this package keeps
// that accounting always on, queryable through the sys.metrics system
// table and scrapeable in Prometheus text format from the debug
// endpoint.
//
// Hot paths never look metrics up by name: the engine's instruments
// are package-level vars resolved once at init. Updates are single
// atomic adds; per-row work is batched by the callers (a partition
// scan adds its row count once, not once per row).
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored; counters never
// decrease).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (e.g. active queries).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc and Dec move the gauge by ±1.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: bounds[i] is the inclusive upper bound of bucket i, with an
// implicit +Inf bucket at the end. Observations and reads are
// lock-free; Sum is maintained with a compare-and-swap loop on the
// float bits (observations are per-query, not per-row, so contention
// is negligible).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sum     atomic.Uint64 // math.Float64bits
}

// DurationBuckets are the default latency bounds in seconds, spanning
// 100µs to 10s — wide enough for both in-memory microbenchmarks and
// full-scale on-disk scans.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.buckets[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// bucketIndex finds the first bucket whose upper bound admits v
// (bounds are inclusive, matching Prometheus le semantics); values
// above every bound land in the +Inf bucket.
func (h *Histogram) bucketIndex(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns the per-bucket observation counts, the last
// entry being the +Inf bucket. Counts are non-cumulative.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// metricKind tags a registered metric for rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics. Registration is rare (engine init);
// lookups by the rendering paths take a read lock, and the returned
// instruments are updated lock-free.
type Registry struct {
	mu    sync.RWMutex
	order []string
	m     map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*metric)}
}

// Default is the process-wide registry the engine's own instruments
// live in; sys.metrics and the debug endpoint read it.
var Default = NewRegistry()

func (r *Registry) register(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.m[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	r.m[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, kindCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, kindGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls reuse the original bounds).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, help, kindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.h == nil {
		m.h = newHistogram(bounds)
	}
	return m.h
}

// Sample is one flattened metric row, the shape sys.metrics serves.
// Histograms expand into one row per bucket (name suffixed with
// `_bucket{le="..."}`) plus `_sum` and `_count` rows.
type Sample struct {
	Name  string
	Kind  string // "counter", "gauge", "histogram"
	Value float64
	Help  string
}

// Snapshot flattens every metric into rows, in registration order.
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Sample
	for _, name := range r.order {
		m := r.m[name]
		switch m.kind {
		case kindCounter:
			out = append(out, Sample{Name: name, Kind: "counter", Value: float64(m.c.Value()), Help: m.help})
		case kindGauge:
			out = append(out, Sample{Name: name, Kind: "gauge", Value: float64(m.g.Value()), Help: m.help})
		case kindHistogram:
			counts := m.h.BucketCounts()
			cum := int64(0)
			for i, bound := range m.h.Bounds() {
				cum += counts[i]
				out = append(out, Sample{
					Name:  fmt.Sprintf("%s_bucket{le=%q}", name, formatBound(bound)),
					Kind:  "histogram",
					Value: float64(cum),
					Help:  m.help,
				})
			}
			cum += counts[len(counts)-1]
			out = append(out, Sample{Name: name + `_bucket{le="+Inf"}`, Kind: "histogram", Value: float64(cum), Help: m.help})
			out = append(out, Sample{Name: name + "_sum", Kind: "histogram", Value: m.h.Sum(), Help: m.help})
			out = append(out, Sample{Name: name + "_count", Kind: "histogram", Value: float64(cum), Help: m.help})
		}
	}
	return out
}

// formatBound renders a bucket bound the way Prometheus does.
func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
