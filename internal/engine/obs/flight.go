package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// flightRingSize bounds the crash flight recorder. 512 events is a few
// seconds of busy-server history — enough to see what led up to a
// panic without holding meaningful memory.
const flightRingSize = 512

// FlightEvent is one entry in the crash flight recorder: a recent log
// line or trace completion, kept in memory so a panic or SIGQUIT dump
// shows what the process was doing just before.
type FlightEvent struct {
	Time time.Time
	Kind string // "log" or "trace"
	Msg  string
}

// FlightRecorder is a fixed-size ring of recent FlightEvents. Adds are
// cheap (one mutex, no allocation beyond the message) and happen on
// every log line and retained trace; the ring is only read when
// something went wrong.
type FlightRecorder struct {
	mu  sync.Mutex
	buf [flightRingSize]FlightEvent
	pos int
	n   int
}

// Flight is the process-wide flight recorder. The slog handler
// installed by twmd and the trace store both feed it; twmd dumps it on
// panic and SIGQUIT.
var Flight = &FlightRecorder{}

// Add records one event.
func (f *FlightRecorder) Add(kind, msg string) {
	now := time.Now()
	f.mu.Lock()
	f.buf[f.pos] = FlightEvent{Time: now, Kind: kind, Msg: msg}
	f.pos = (f.pos + 1) % flightRingSize
	if f.n < flightRingSize {
		f.n++
	}
	f.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (f *FlightRecorder) Events() []FlightEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, f.n)
	for i := f.n; i >= 1; i-- {
		out = append(out, f.buf[(f.pos-i+flightRingSize)%flightRingSize])
	}
	return out
}

// WriteTo dumps the ring human-readably, oldest first — the crash/
// SIGQUIT output format.
func (f *FlightRecorder) WriteTo(w io.Writer) (int64, error) {
	events := f.Events()
	var total int64
	n, err := fmt.Fprintf(w, "=== flight recorder: %d recent events ===\n", len(events))
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, ev := range events {
		n, err := fmt.Fprintf(w, "%s [%s] %s\n", ev.Time.Format(time.RFC3339Nano), ev.Kind, ev.Msg)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	n, err = fmt.Fprintln(w, "=== end flight recorder ===")
	total += int64(n)
	return total, err
}

// flightHandler tees every slog record into the flight recorder before
// delegating to the wrapped handler. It reports itself enabled at all
// levels so the ring captures debug-level detail even when the live
// log level filters it out — the whole point of a flight recorder is
// having the data you chose not to emit.
type flightHandler struct {
	inner slog.Handler
	attrs []slog.Attr
}

// NewFlightHandler wraps inner so every record (any level) lands in
// the process-wide FlightRecorder, then flows to inner if inner's
// level admits it.
func NewFlightHandler(inner slog.Handler) slog.Handler {
	return &flightHandler{inner: inner}
}

func (h *flightHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *flightHandler) Handle(ctx context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Level.String())
	b.WriteByte(' ')
	b.WriteString(r.Message)
	for _, a := range h.attrs {
		appendAttr(&b, a)
	}
	r.Attrs(func(a slog.Attr) bool {
		appendAttr(&b, a)
		return true
	})
	Flight.Add("log", b.String())
	if h.inner.Enabled(ctx, r.Level) {
		return h.inner.Handle(ctx, r)
	}
	return nil
}

func appendAttr(b *strings.Builder, a slog.Attr) {
	b.WriteByte(' ')
	b.WriteString(a.Key)
	b.WriteByte('=')
	b.WriteString(a.Value.String())
}

func (h *flightHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	merged = append(merged, h.attrs...)
	merged = append(merged, attrs...)
	return &flightHandler{inner: h.inner.WithAttrs(attrs), attrs: merged}
}

func (h *flightHandler) WithGroup(name string) slog.Handler {
	return &flightHandler{inner: h.inner.WithGroup(name), attrs: h.attrs}
}
