package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Inc()
	c.Add(-3) // ignored: counters never decrease
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-4)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

// TestHistogramBucketMath pins the le (inclusive upper bound)
// semantics: a value exactly on a bound lands in that bound's bucket,
// values above every bound land in +Inf, and bounds are sorted even if
// supplied out of order.
func TestHistogramBucketMath(t *testing.T) {
	h := newHistogram([]float64{1, 0.1, 0.01}) // deliberately unsorted
	wantBounds := []float64{0.01, 0.1, 1}
	for i, b := range h.Bounds() {
		if b != wantBounds[i] {
			t.Fatalf("bounds not sorted: %v", h.Bounds())
		}
	}
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},    // below everything → first bucket
		{0.01, 0}, // exactly on a bound → that bucket (le is inclusive)
		{0.010001, 1},
		{0.1, 1},
		{0.5, 2},
		{1, 2},
		{1.0001, 3}, // above every bound → +Inf
		{math.Inf(1), 3},
	}
	for _, c := range cases {
		if got := h.bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	if h.Count() != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	counts := h.BucketCounts()
	want := []int64{2, 2, 2, 2}
	if len(counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(counts), len(want))
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d (all %v)", i, counts[i], want[i], counts)
		}
	}
}

func TestHistogramSum(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(0.25)
	h.Observe(0.5)
	if got := h.Sum(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("sum = %v, want 0.75", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(DurationBuckets)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	if got := h.Sum(); math.Abs(got-workers*per*0.001) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, workers*per*0.001)
	}
}

func TestRegistryReuseAndKinds(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help")
	c2 := r.Counter("x_total", "other help ignored")
	if c1 != c2 {
		t.Fatalf("same name should return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a name as a different kind should panic")
		}
	}()
	r.Gauge("x_total", "wrong kind")
}

func TestSnapshotAndPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a counter").Add(3)
	r.Gauge("b_active", "a gauge").Set(2)
	h := r.Histogram("c_seconds", "a histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	rows := r.Snapshot()
	byName := make(map[string]Sample, len(rows))
	for _, s := range rows {
		byName[s.Name] = s
	}
	if byName["a_total"].Value != 3 || byName["a_total"].Kind != "counter" {
		t.Fatalf("bad counter sample: %+v", byName["a_total"])
	}
	if byName["b_active"].Value != 2 {
		t.Fatalf("bad gauge sample: %+v", byName["b_active"])
	}
	// histogram buckets are cumulative
	if byName[`c_seconds_bucket{le="0.1"}`].Value != 1 {
		t.Fatalf("bucket 0.1 = %v, want 1", byName[`c_seconds_bucket{le="0.1"}`].Value)
	}
	if byName[`c_seconds_bucket{le="1"}`].Value != 2 {
		t.Fatalf("bucket 1 = %v, want 2", byName[`c_seconds_bucket{le="1"}`].Value)
	}
	if byName[`c_seconds_bucket{le="+Inf"}`].Value != 3 {
		t.Fatalf("bucket +Inf = %v, want 3", byName[`c_seconds_bucket{le="+Inf"}`].Value)
	}
	if byName["c_seconds_count"].Value != 3 {
		t.Fatalf("count = %v, want 3", byName["c_seconds_count"].Value)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# HELP a_total a counter",
		"# TYPE a_total counter",
		"a_total 3",
		"# TYPE b_active gauge",
		"b_active 2",
		"# TYPE c_seconds histogram",
		`c_seconds_bucket{le="0.1"} 1`,
		`c_seconds_bucket{le="+Inf"} 3`,
		"c_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q:\n%s", want, text)
		}
	}
}
