package obs

// The engine's own instruments, resolved once so hot paths touch only
// an atomic add. Counter totals are cumulative across every query the
// process has run; the sys.metrics system table and the /metrics debug
// endpoint read them live.
var (
	// RowsScanned counts driving-table rows delivered to partition scan
	// callbacks, added once per partition scan.
	RowsScanned = Default.Counter("engine_rows_scanned_total",
		"Rows delivered by partition scans across all queries.")
	// BytesRead counts encoded bytes decoded from partition files
	// (in-memory tables contribute 0).
	BytesRead = Default.Counter("engine_bytes_read_total",
		"Encoded bytes decoded from on-disk partition files.")
	// RowsEmitted counts rows delivered to result sinks, added once per
	// statement.
	RowsEmitted = Default.Counter("engine_rows_emitted_total",
		"Rows delivered to query result sinks.")
	// RowsInserted counts rows written by INSERT statements and bulk
	// loads.
	RowsInserted = Default.Counter("engine_rows_inserted_total",
		"Rows inserted into tables (INSERT and bulk loads).")
	// UDFCalls counts user-defined function work: scalar UDF
	// invocations plus aggregate-protocol Accumulate calls (in this
	// engine every aggregate runs the paper's four-phase UDF protocol).
	UDFCalls = Default.Counter("engine_udf_calls_total",
		"Scalar UDF invocations plus aggregate Accumulate calls.")
	// Queries counts statements executed; QueryErrors the subset that
	// failed; SlowQueries the subset over the slow-query threshold.
	Queries = Default.Counter("engine_queries_total",
		"SQL statements executed.")
	QueryErrors = Default.Counter("engine_query_errors_total",
		"SQL statements that returned an error.")
	SlowQueries = Default.Counter("engine_slow_queries_total",
		"Statements slower than the database's slow-query threshold.")
	// ActiveQueries is the number of statements currently executing.
	ActiveQueries = Default.Gauge("engine_active_queries",
		"Statements currently executing.")

	// Summary-cache instruments: the incremental n/L/Q catalog reports
	// how often model builds were served warm (zero scans), how often
	// they fell back to a rebuild scan, and how many appended rows were
	// folded into summaries at write time.
	SummaryHits = Default.Counter("engine_summary_hits",
		"Summary-cache reads served from a warm entry with zero partition scans.")
	SummaryMisses = Default.Counter("engine_summary_misses",
		"Summary-cache reads that fell back to a rebuild scan (cold or stale entry).")
	SummaryIncremental = Default.Counter("engine_summary_incremental_updates",
		"Appended rows delta-merged into cached summaries at write time.")
	SummaryRebuildSeconds = Default.Histogram("engine_summary_rebuild_seconds",
		"Latency of summary-cache rebuild scans (cold/stale entries).", DurationBuckets)

	// Columnar-path instruments: the vectorized scan path reports how
	// many column blocks its block scans delivered, how many vector
	// kernel operations its compiled programs executed, and how often a
	// query that asked for columnar execution fell back to the
	// row-at-a-time interpreter (unsupported expression shape, stale
	// segment, or non-numeric columns).
	ColumnarBlocksScanned = Default.Counter("engine_columnar_blocks_scanned_total",
		"Column blocks delivered by columnar partition scans.")
	ColumnarVectorOps = Default.Counter("engine_columnar_vector_ops_total",
		"Vector program instructions executed over column blocks.")
	ColumnarFallbacks = Default.Counter("engine_columnar_fallbacks_total",
		"Columnar-mode scans that fell back to the row-at-a-time path.")

	// Plan-cache instruments: the statement path's LRU of prepared
	// plans reports read-through hits and misses, capacity evictions,
	// and entries discarded because a CREATE/DROP bumped the catalog
	// epoch after they were planned.
	PlanCacheHits = Default.Counter("engine_plan_cache_hits",
		"Statements served from a cached prepared plan (no parse/sema/plan).")
	PlanCacheMisses = Default.Counter("engine_plan_cache_misses",
		"Statements that missed the plan cache and were planned from scratch.")
	PlanCacheEvictions = Default.Counter("engine_plan_cache_evictions",
		"Plan-cache entries evicted by the LRU capacity bound.")
	PlanCacheInvalidations = Default.Counter("engine_plan_cache_invalidations",
		"Plan-cache entries discarded because the catalog epoch moved (DDL).")
	// PrepareSeconds is the one-time cost a PREPARE pays so EXECUTE can
	// skip it: parse, sema, view expansion, binding and closure
	// compilation.
	PrepareSeconds = Default.Histogram("engine_prepare_seconds",
		"Latency of preparing a statement (parse, sema, plan, compile).", DurationBuckets)

	// Per-phase latency histograms mirror the aggregate UDF protocol's
	// four phases (plan covers rewrite/binding/pushdown; scan is
	// phases 1-2; merge phase 3; finalize phase 4), plus the end-to-end
	// statement latency.
	PlanSeconds = Default.Histogram("engine_plan_seconds",
		"Plan phase latency (rewrite, binding, join-tail pushdown).", DurationBuckets)
	ScanSeconds = Default.Histogram("engine_scan_seconds",
		"Parallel partition scan latency (UDF phases 1-2).", DurationBuckets)
	MergeSeconds = Default.Histogram("engine_merge_seconds",
		"Cross-partition partial merge latency (UDF phase 3).", DurationBuckets)
	FinalizeSeconds = Default.Histogram("engine_finalize_seconds",
		"Finalization and post-aggregation latency (UDF phase 4).", DurationBuckets)
	QuerySeconds = Default.Histogram("engine_query_seconds",
		"End-to-end statement latency.", DurationBuckets)
)
