package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers per family,
// cumulative le-labeled buckets plus _sum and _count for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.order {
		m := r.m[name]
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(m.help)); err != nil {
				return err
			}
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, m.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, m.g.Value())
		case kindHistogram:
			err = writeHistogram(w, name, m.h)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	counts := h.BucketCounts()
	cum := int64(0)
	for i, bound := range h.Bounds() {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(bound), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, cum)
	return err
}

// escapeHelp collapses newlines, which would corrupt the line-oriented
// exposition format.
func escapeHelp(s string) string {
	return strings.ReplaceAll(s, "\n", " ")
}
