package sqltypes

import (
	"fmt"
	"strings"
)

// Column describes one column of a relation.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns. Column names are compared
// case-insensitively, as in SQL.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns, rejecting duplicate names.
func NewSchema(cols ...Column) (*Schema, error) {
	seen := make(map[string]struct{}, len(cols))
	for _, c := range cols {
		key := strings.ToLower(c.Name)
		if key == "" {
			return nil, fmt.Errorf("sqltypes: empty column name")
		}
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("sqltypes: duplicate column %q", c.Name)
		}
		seen[key] = struct{}{}
	}
	return &Schema{Columns: cols}, nil
}

// MustSchema is NewSchema that panics on error.
//
// Test-only convenience: production code must call NewSchema and
// propagate the error — the statlint `valuekind` analyzer flags
// MustSchema calls in non-test files.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(fmt.Sprintf("sqltypes: invalid schema: %v", err))
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Index returns the ordinal of the named column, or -1.
func (s *Schema) Index(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// String renders the schema as "(a DOUBLE, b BIGINT)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Row is one tuple of values, positionally matching a schema.
type Row []Value

// Clone returns a copy of the row that shares no storage with r.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Floats extracts the row as a float64 slice. Columns that are NULL or
// non-numeric are reported via the returned error; dst is reused when
// it has sufficient capacity.
func (r Row) Floats(dst []float64) ([]float64, error) {
	if cap(dst) < len(r) {
		dst = make([]float64, len(r))
	}
	dst = dst[:len(r)]
	for i, v := range r {
		f, ok := v.Float()
		if !ok {
			return nil, fmt.Errorf("sqltypes: column %d is %v, not numeric", i, v)
		}
		dst[i] = f
	}
	return dst, nil
}
