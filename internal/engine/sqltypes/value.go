// Package sqltypes defines the SQL value system used throughout the
// embedded engine: typed values, NULL semantics, coercions and
// comparisons. It is deliberately small — the engine supports the types
// the paper's workloads need (DOUBLE, BIGINT, VARCHAR) plus NULL.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type identifies the SQL type of a value or column.
type Type int

const (
	// TypeNull is the type of the untyped NULL literal.
	TypeNull Type = iota
	// TypeDouble is a 64-bit IEEE floating point number (SQL DOUBLE).
	TypeDouble
	// TypeBigInt is a 64-bit signed integer (SQL BIGINT).
	TypeBigInt
	// TypeVarChar is a variable-length string (SQL VARCHAR).
	TypeVarChar
	// TypeBool is the internal boolean produced by predicates. It is not
	// a storable column type; predicates surface it transiently.
	TypeBool
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeDouble:
		return "DOUBLE"
	case TypeBigInt:
		return "BIGINT"
	case TypeVarChar:
		return "VARCHAR"
	case TypeBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType converts a SQL type name to a Type. It accepts the common
// aliases users write in CREATE TABLE statements.
func ParseType(name string) (Type, error) {
	switch strings.ToUpper(name) {
	case "DOUBLE", "FLOAT", "REAL", "DOUBLE PRECISION", "NUMERIC", "DECIMAL":
		return TypeDouble, nil
	case "BIGINT", "INT", "INTEGER", "SMALLINT":
		return TypeBigInt, nil
	case "VARCHAR", "CHAR", "TEXT", "STRING":
		return TypeVarChar, nil
	default:
		return TypeNull, fmt.Errorf("sqltypes: unknown type %q", name)
	}
}

// Value is a single SQL value. The zero Value is NULL.
//
// Values are passed by value everywhere; they are three words wide and
// never share mutable state, which keeps the parallel executor free of
// data races on row buffers.
type Value struct {
	typ Type
	f   float64 // payload for Double, BigInt (as int64 bits) and Bool
	s   string  // payload for VarChar
}

// Null is the SQL NULL value.
var Null = Value{}

// NewDouble returns a DOUBLE value.
func NewDouble(f float64) Value { return Value{typ: TypeDouble, f: f} }

// NewBigInt returns a BIGINT value.
func NewBigInt(i int64) Value {
	return Value{typ: TypeBigInt, f: math.Float64frombits(uint64(i))}
}

// NewVarChar returns a VARCHAR value.
func NewVarChar(s string) Value { return Value{typ: TypeVarChar, s: s} }

// NewBool returns an internal boolean value.
func NewBool(b bool) Value {
	v := Value{typ: TypeBool}
	if b {
		v.f = 1
	}
	return v
}

// Type reports the value's type. NULL values report TypeNull.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.typ == TypeNull }

// Float returns the value as a float64. BIGINT values are widened;
// parseable VARCHAR values are converted. The second result reports
// whether the conversion was possible (NULL and non-numeric strings
// yield false).
func (v Value) Float() (float64, bool) {
	switch v.typ {
	case TypeDouble:
		return v.f, true
	case TypeBigInt:
		return float64(v.Int()), true
	case TypeBool:
		return v.f, true
	case TypeVarChar:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// AsFloat returns the value as float64 or an error naming the value
// and its type when it is not numeric. Production code paths (scoring
// decoders, harness loaders) use this instead of MustFloat so a stray
// VARCHAR or NULL surfaces as a SQL error, not an engine panic.
func (v Value) AsFloat() (float64, error) {
	f, ok := v.Float()
	if !ok {
		return 0, fmt.Errorf("sqltypes: value %v (%s) is not numeric", v, v.typ)
	}
	return f, nil
}

// MustFloat returns the value as float64 and panics if it is not
// numeric.
//
// Test-only convenience: production code must use AsFloat (or a
// Float() kind check) instead — the statlint `valuekind` analyzer
// flags MustFloat calls in non-test files.
func (v Value) MustFloat() float64 {
	f, err := v.AsFloat()
	if err != nil {
		panic(err.Error())
	}
	return f
}

// Int returns the BIGINT payload. For DOUBLE values it truncates.
func (v Value) Int() int64 {
	switch v.typ {
	case TypeBigInt:
		return int64(math.Float64bits(v.f))
	case TypeDouble:
		return int64(v.f)
	case TypeBool:
		return int64(v.f)
	default:
		return 0
	}
}

// Str returns the VARCHAR payload, or a rendered form for other types.
func (v Value) Str() string {
	if v.typ == TypeVarChar {
		return v.s
	}
	return v.String()
}

// Bool returns the boolean payload; NULL and zero values are false.
func (v Value) Bool() bool {
	switch v.typ {
	case TypeBool, TypeDouble:
		return v.f != 0
	case TypeBigInt:
		return v.Int() != 0
	default:
		return false
	}
}

// String renders the value the way the engine's shell prints it.
func (v Value) String() string {
	switch v.typ {
	case TypeNull:
		return "NULL"
	case TypeDouble:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeBigInt:
		return strconv.FormatInt(v.Int(), 10)
	case TypeVarChar:
		return v.s
	case TypeBool:
		if v.f != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("Value(%d)", int(v.typ))
	}
}

// Compare orders two values: -1, 0 or +1. NULLs sort first and compare
// equal to each other (this is the grouping/ordering comparison, not
// the SQL predicate `=`, which returns NULL for NULL operands — the
// expression interpreter handles that distinction).
func Compare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if a.typ == TypeVarChar && b.typ == TypeVarChar {
		return strings.Compare(a.s, b.s)
	}
	af, aok := a.Float()
	bf, bok := b.Float()
	if aok && bok {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	// Mixed incomparable types: order by type id for determinism.
	switch {
	case a.typ < b.typ:
		return -1
	case a.typ > b.typ:
		return 1
	default:
		return strings.Compare(a.s, b.s)
	}
}

// Equal reports whether two values are identical for grouping purposes
// (NULL equals NULL).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Coerce converts v to type t, if possible. Converting NULL yields NULL
// of any type. Lossy numeric-to-integer conversion truncates, matching
// SQL CAST semantics.
func Coerce(v Value, t Type) (Value, error) {
	if v.IsNull() {
		return Null, nil
	}
	switch t {
	case TypeDouble:
		f, ok := v.Float()
		if !ok {
			return Null, fmt.Errorf("sqltypes: cannot coerce %v to DOUBLE", v)
		}
		return NewDouble(f), nil
	case TypeBigInt:
		switch v.typ {
		case TypeBigInt:
			return v, nil
		case TypeDouble, TypeBool:
			return NewBigInt(v.Int()), nil
		case TypeVarChar:
			i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
			if err != nil {
				f, ferr := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
				if ferr != nil {
					return Null, fmt.Errorf("sqltypes: cannot coerce %q to BIGINT", v.s)
				}
				return NewBigInt(int64(f)), nil
			}
			return NewBigInt(i), nil
		}
	case TypeVarChar:
		return NewVarChar(v.String()), nil
	case TypeBool:
		return NewBool(v.Bool()), nil
	}
	return Null, fmt.Errorf("sqltypes: cannot coerce %v to %v", v, t)
}
