package sqltypes

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	d := NewDouble(3.5)
	if d.Type() != TypeDouble || d.MustFloat() != 3.5 {
		t.Fatalf("double round trip: %v", d)
	}
	i := NewBigInt(-42)
	if i.Type() != TypeBigInt || i.Int() != -42 {
		t.Fatalf("bigint round trip: %v", i)
	}
	if f, ok := i.Float(); !ok || f != -42 {
		t.Fatalf("bigint widen: %v %v", f, ok)
	}
	s := NewVarChar("hello")
	if s.Type() != TypeVarChar || s.Str() != "hello" {
		t.Fatalf("varchar round trip: %v", s)
	}
	if !Null.IsNull() || Null.Type() != TypeNull {
		t.Fatalf("zero value must be NULL")
	}
	b := NewBool(true)
	if !b.Bool() || NewBool(false).Bool() {
		t.Fatalf("bool round trip")
	}
}

func TestBigIntPreservesFullRange(t *testing.T) {
	for _, want := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64, 1 << 52, (1 << 53) + 1} {
		if got := NewBigInt(want).Int(); got != want {
			t.Errorf("NewBigInt(%d).Int() = %d", want, got)
		}
	}
}

func TestBigIntRoundTripProperty(t *testing.T) {
	f := func(i int64) bool { return NewBigInt(i).Int() == i }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarCharNumericParsing(t *testing.T) {
	if f, ok := NewVarChar(" 2.25 ").Float(); !ok || f != 2.25 {
		t.Fatalf("string float parse: %v %v", f, ok)
	}
	if _, ok := NewVarChar("abc").Float(); ok {
		t.Fatalf("non-numeric string must not parse")
	}
	if _, ok := Null.Float(); ok {
		t.Fatalf("NULL must not be numeric")
	}
}

func TestCompareOrderingProperties(t *testing.T) {
	// NULLs sort first and equal each other.
	if Compare(Null, Null) != 0 {
		t.Fatal("NULL vs NULL")
	}
	if Compare(Null, NewDouble(-1e300)) != -1 {
		t.Fatal("NULL must sort before any number")
	}
	if Compare(NewDouble(1), NewBigInt(1)) != 0 {
		t.Fatal("cross-type numeric equality")
	}
	if Compare(NewVarChar("a"), NewVarChar("b")) != -1 {
		t.Fatal("string ordering")
	}
	// Antisymmetry property over doubles.
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return Compare(NewDouble(a), NewDouble(b)) == -Compare(NewDouble(b), NewDouble(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		in   Value
		to   Type
		want Value
		ok   bool
	}{
		{NewDouble(3.9), TypeBigInt, NewBigInt(3), true},
		{NewBigInt(7), TypeDouble, NewDouble(7), true},
		{NewVarChar("12"), TypeBigInt, NewBigInt(12), true},
		{NewVarChar("3.5"), TypeBigInt, NewBigInt(3), true},
		{NewVarChar("1.5"), TypeDouble, NewDouble(1.5), true},
		{NewBigInt(5), TypeVarChar, NewVarChar("5"), true},
		{Null, TypeDouble, Null, true},
		{NewVarChar("xyz"), TypeDouble, Null, false},
	}
	for _, c := range cases {
		got, err := Coerce(c.in, c.to)
		if c.ok != (err == nil) {
			t.Errorf("Coerce(%v,%v) err=%v, want ok=%v", c.in, c.to, err, c.ok)
			continue
		}
		if err == nil && !Equal(got, c.want) {
			t.Errorf("Coerce(%v,%v) = %v, want %v", c.in, c.to, got, c.want)
		}
	}
}

func TestParseType(t *testing.T) {
	for name, want := range map[string]Type{
		"double": TypeDouble, "FLOAT": TypeDouble, "real": TypeDouble,
		"bigint": TypeBigInt, "INT": TypeBigInt, "integer": TypeBigInt,
		"varchar": TypeVarChar, "TEXT": TypeVarChar,
	} {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}

func TestValueString(t *testing.T) {
	for _, c := range []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewDouble(2.5), "2.5"},
		{NewBigInt(-3), "-3"},
		{NewVarChar("x"), "x"},
		{NewBool(true), "TRUE"},
	} {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSchema(t *testing.T) {
	s := MustSchema(Column{"i", TypeBigInt}, Column{"X1", TypeDouble})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Index("x1") != 1 || s.Index("I") != 0 || s.Index("nope") != -1 {
		t.Fatalf("Index lookups wrong: %d %d %d", s.Index("x1"), s.Index("I"), s.Index("nope"))
	}
	if got := s.String(); got != "(i BIGINT, X1 DOUBLE)" {
		t.Fatalf("String = %q", got)
	}
	if _, err := NewSchema(Column{"a", TypeDouble}, Column{"A", TypeDouble}); err == nil {
		t.Fatal("duplicate column names must be rejected")
	}
	if _, err := NewSchema(Column{"", TypeDouble}); err == nil {
		t.Fatal("empty column name must be rejected")
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row{NewDouble(1), NewBigInt(2)}
	c := r.Clone()
	c[0] = NewDouble(9)
	if r[0].MustFloat() != 1 {
		t.Fatal("Clone must not alias")
	}
	fs, err := r.Floats(nil)
	if err != nil || fs[0] != 1 || fs[1] != 2 {
		t.Fatalf("Floats = %v, %v", fs, err)
	}
	if _, err := (Row{Null}).Floats(nil); err == nil {
		t.Fatal("Floats must reject NULL")
	}
}
