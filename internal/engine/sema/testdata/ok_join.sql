SELECT t.i, t.x + u.y
FROM t, u
WHERE t.i = u.i AND u.y > 0
ORDER BY t.i
