CREATE TABLE w (
    a BIGINT,
    b FLOATY,
    a DOUBLE
)
