SELECT count(*),
       sum(x),
       sum(x * x),
       sum(x * i)
FROM t
WHERE x > 0
