SELECT i, y FROM t, u
