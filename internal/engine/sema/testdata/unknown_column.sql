SELECT i,
       nope,
       x
FROM t
