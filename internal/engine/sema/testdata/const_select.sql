SELECT 1, *, sum(x) WHERE 1 = 1
