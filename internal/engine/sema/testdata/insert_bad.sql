INSERT INTO u (i, z) VALUES (1, 2, 3)
