SELECT i, sum(avg(x))
FROM t
WHERE sum(x) > 1
GROUP BY i, count(i)
