SELECT s + 1,
       x * s,
       -s,
       sqrt(s)
FROM t
