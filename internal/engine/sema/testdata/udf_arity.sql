SELECT sqrt(x, 1),
       power(x),
       pairagg(x),
       nosuchfn(x)
FROM t
