SELECT i, x, sum(x)
FROM t
GROUP BY i
