SELECT a, b FROM missing
