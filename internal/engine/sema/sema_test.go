package sema_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine/expr"
	"repro/internal/engine/sema"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/udf"
)

var update = flag.Bool("update", false, "rewrite golden files")

// mapCatalog is a fixed schema set for tests.
type mapCatalog map[string]*sqltypes.Schema

func (m mapCatalog) TableSchema(name string) (*sqltypes.Schema, error) {
	s, ok := m[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("test: no table %q", name)
	}
	return s, nil
}

// pairAgg is a registered aggregate UDF with a strict two-argument
// contract, so arity diagnostics for UDFs are exercised.
type pairAgg struct{}

func (pairAgg) Name() string { return "pairagg" }
func (pairAgg) CheckArgs(n int) error {
	if n != 2 {
		return fmt.Errorf("udf: pairagg expects 2 arguments, got %d", n)
	}
	return nil
}
func (pairAgg) Init(h *udf.Heap) (udf.State, error)              { return nil, nil }
func (pairAgg) Accumulate(s udf.State, a []sqltypes.Value) error { return nil }
func (pairAgg) Merge(dst, src udf.State) error                   { return nil }
func (pairAgg) Finalize(s udf.State) (sqltypes.Value, error)     { return sqltypes.Null, nil }

func testEnv(t *testing.T) *sema.Env {
	t.Helper()
	aggs := udf.NewRegistry()
	if err := aggs.Register(pairAgg{}); err != nil {
		t.Fatal(err)
	}
	return &sema.Env{
		Catalog: mapCatalog{
			"t": sqltypes.MustSchema(
				sqltypes.Column{Name: "i", Type: sqltypes.TypeBigInt},
				sqltypes.Column{Name: "x", Type: sqltypes.TypeDouble},
				sqltypes.Column{Name: "s", Type: sqltypes.TypeVarChar},
			),
			"u": sqltypes.MustSchema(
				sqltypes.Column{Name: "i", Type: sqltypes.TypeBigInt},
				sqltypes.Column{Name: "y", Type: sqltypes.TypeDouble},
			),
		},
		Scalars: expr.NewRegistry(),
		Aggs:    aggs,
	}
}

// TestGolden checks each testdata/*.sql statement against its .golden
// diagnostics ("" = must pass). Run with -update to regenerate.
func TestGolden(t *testing.T) {
	env := testEnv(t)
	files, err := filepath.Glob(filepath.Join("testdata", "*.sql"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata/*.sql files")
	}
	for _, file := range files {
		file := file
		t.Run(strings.TrimSuffix(filepath.Base(file), ".sql"), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			stmt, err := sqlparser.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			got := ""
			if err := sema.CheckStatement(stmt, env); err != nil {
				got = err.Error() + "\n"
			}
			golden := strings.TrimSuffix(file, ".sql") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestValid asserts query shapes the engine's workloads rely on pass
// sema unchanged.
func TestValid(t *testing.T) {
	env := testEnv(t)
	for _, q := range []string{
		"SELECT i, x FROM t",
		"SELECT * FROM t WHERE x > 0 AND s = 'a'",
		"SELECT t.i, u.y FROM t, u WHERE t.i = u.i",
		"SELECT i % 8, sum(x), count(*) FROM t GROUP BY i % 8",
		"SELECT i, avg(x) FROM t GROUP BY i HAVING avg(x) > 1 ORDER BY 2 DESC",
		"SELECT CAST(x AS VARCHAR) || '|' || s FROM t",
		"SELECT CASE WHEN TRUE THEN 1 ELSE 0 END FROM t",
		"SELECT sqrt(x) + abs(x) FROM t ORDER BY x LIMIT 3",
		"SELECT pairagg(x, i) FROM t",
		"SELECT sum(x + i) * 2 FROM t",
		"SELECT 1 + 2, 'a' || 'b'",
		"INSERT INTO u VALUES (1, 2.5)",
		"INSERT INTO u (i, y) SELECT i, x FROM t",
		"SELECT coalesce(s, 'none') FROM t",
		"SELECT i FROM t GROUP BY i ORDER BY sum(x)",
	} {
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if err := sema.CheckStatement(stmt, env); err != nil {
			t.Errorf("%q: unexpected diagnostics:\n%v", q, err)
		}
	}
}

// TestPositions asserts the reported positions point at the offending
// token, not the statement start.
func TestPositions(t *testing.T) {
	env := testEnv(t)
	for _, tc := range []struct {
		sql string
		pos string
	}{
		{"SELECT nope FROM t", "1:8"},
		{"SELECT i\nFROM t\nWHERE bad = 1", "3:7"},
		{"SELECT s + 1 FROM t", "1:10"},
		{"SELECT sqrt(x, 1) FROM t", "1:8"},
	} {
		stmt, err := sqlparser.Parse(tc.sql)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.sql, err)
		}
		err = sema.CheckStatement(stmt, env)
		if err == nil {
			t.Errorf("%q: expected diagnostics", tc.sql)
			continue
		}
		if !strings.Contains(err.Error(), tc.pos) {
			t.Errorf("%q: diagnostic %q does not mention position %s", tc.sql, err, tc.pos)
		}
	}
}

// TestDiagnosticCap bounds the error list for deeply broken statements.
func TestDiagnosticCap(t *testing.T) {
	env := testEnv(t)
	items := make([]string, 100)
	for i := range items {
		items[i] = fmt.Sprintf("bogus%d", i)
	}
	stmt, err := sqlparser.Parse("SELECT " + strings.Join(items, ", ") + " FROM t")
	if err != nil {
		t.Fatal(err)
	}
	cerr := sema.CheckStatement(stmt, env)
	if cerr == nil {
		t.Fatal("expected diagnostics")
	}
	list, ok := cerr.(sema.ErrorList)
	if !ok {
		t.Fatalf("expected ErrorList, got %T", cerr)
	}
	if len(list) > 25 {
		t.Errorf("diagnostic list not capped: %d entries", len(list))
	}
}
