// Package sema is the engine's semantic analyzer. It runs between the
// parser and the executor on every query: name resolution against the
// catalog schema, expression type inference and checking,
// aggregate-placement and GROUP BY validity checks, and scalar /
// aggregate UDF arity and argument-type checking against the function
// registries.
//
// The paper's workloads submit long machine-generated SELECTs (d=64
// summary queries project 2,144 expressions) over 20-way partitioned
// tables; before sema, a bad column reference or a wrong UDF arity
// surfaced mid-scan — possibly minutes in — or panicked. sema rejects
// such statements in microseconds, before any partition scan starts,
// with positioned multi-error diagnostics ("line:col: message" using
// the lexer's token positions).
//
// sema deliberately mirrors the executor's runtime semantics rather
// than a stricter SQL standard: comparisons and logic accept any
// operand types (the engine's Compare and three-valued Bool are
// total), while arithmetic, numeric builtins and numeric aggregates
// reject operands that are statically VARCHAR. Unknown types (NULL,
// CASE over mixed branches, un-annotated UDF results) are never
// flagged — sema only reports errors it can prove.
package sema

import (
	"fmt"
	"strings"

	"repro/internal/engine/expr"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/udf"
)

// Catalog supplies table schemas for name resolution. The db package
// and the executor's catalog both satisfy it.
type Catalog interface {
	// TableSchema returns the schema of the named table, or an error if
	// the table does not exist.
	TableSchema(name string) (*sqltypes.Schema, error)
}

// Env bundles what a statement is checked against: the catalog and the
// scalar / aggregate function registries. Nil registries disable the
// corresponding function checks (but never cause false errors).
type Env struct {
	Catalog Catalog
	Scalars *expr.Registry
	Aggs    *udf.Registry
}

// Diagnostic is one positioned semantic error.
type Diagnostic struct {
	Pos sqlparser.Position
	Msg string
}

// Error renders the diagnostic as "sema: line:col: message" (the
// position is omitted for synthetic nodes without one).
func (d Diagnostic) Error() string {
	if d.Pos.IsValid() {
		return fmt.Sprintf("sema: %s: %s", d.Pos, d.Msg)
	}
	return "sema: " + d.Msg
}

// ErrorList is the multi-error a check returns: every diagnostic found,
// in source order of discovery, capped at maxDiagnostics.
type ErrorList []Diagnostic

func (l ErrorList) Error() string {
	if len(l) == 1 {
		return l[0].Error()
	}
	var b strings.Builder
	for i, d := range l {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.Error())
	}
	return b.String()
}

// maxDiagnostics caps a single check's error list so a deeply broken
// generated query doesn't produce thousands of lines.
const maxDiagnostics = 25

// CheckStatement semantically checks any parsed statement. DDL that the
// catalog validates on execution (CREATE/DROP VIEW, DROP TABLE) passes
// through; CREATE VIEW bodies are checked when the view is used, after
// expansion, so views may reference UDFs registered later.
func CheckStatement(stmt sqlparser.Statement, env *Env) error {
	c := &checker{env: env}
	switch st := stmt.(type) {
	case *sqlparser.Select:
		c.checkSelect(st)
	case *sqlparser.Insert:
		c.checkInsert(st)
	case *sqlparser.CreateTable:
		c.checkCreateTable(st)
	}
	return c.result()
}

// CheckSelect semantically checks a SELECT against the environment.
func CheckSelect(sel *sqlparser.Select, env *Env) error {
	c := &checker{env: env}
	c.checkSelect(sel)
	return c.result()
}

// CheckInsert semantically checks an INSERT (VALUES or SELECT form).
func CheckInsert(ins *sqlparser.Insert, env *Env) error {
	c := &checker{env: env}
	c.checkInsert(ins)
	return c.result()
}

// checker accumulates diagnostics across one statement.
type checker struct {
	env   *Env
	diags ErrorList
}

func (c *checker) errf(pos sqlparser.Position, format string, args ...any) {
	if len(c.diags) < maxDiagnostics {
		c.diags = append(c.diags, Diagnostic{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (c *checker) result() error {
	if len(c.diags) == 0 {
		return nil
	}
	return c.diags
}

// isAggregate reports whether name (already lower-cased) is a standard
// aggregate or a registered aggregate UDF — the same test the executor
// uses to route a call to the aggregation pipeline.
func (c *checker) isAggregate(name string) bool {
	if expr.AggregateNames[name] {
		return true
	}
	if c.env.Aggs == nil {
		return false
	}
	_, ok := c.env.Aggs.Lookup(name)
	return ok
}

func (c *checker) checkCreateTable(st *sqlparser.CreateTable) {
	seen := make(map[string]bool, len(st.Columns))
	for _, col := range st.Columns {
		if _, err := sqltypes.ParseType(col.Type); err != nil {
			c.errf(col.At, "unknown type %q for column %q", col.Type, col.Name)
		}
		key := strings.ToLower(col.Name)
		if seen[key] {
			c.errf(col.At, "duplicate column %q", col.Name)
		}
		seen[key] = true
	}
}

func (c *checker) checkInsert(ins *sqlparser.Insert) {
	var schema *sqltypes.Schema
	if c.env.Catalog != nil {
		s, err := c.env.Catalog.TableSchema(ins.Table)
		if err != nil {
			c.errf(ins.TablePos, "unknown table %q", ins.Table)
		} else {
			schema = s
		}
	}
	width := 0
	if schema != nil {
		width = schema.Len()
	}
	if len(ins.Columns) > 0 {
		width = len(ins.Columns)
		seen := make(map[string]bool, len(ins.Columns))
		for i, name := range ins.Columns {
			pos := ins.TablePos
			if i < len(ins.ColumnPos) {
				pos = ins.ColumnPos[i]
			}
			if schema != nil && schema.Index(name) < 0 {
				c.errf(pos, "table %q has no column %q", ins.Table, name)
			}
			key := strings.ToLower(name)
			if seen[key] {
				c.errf(pos, "duplicate column %q in INSERT column list", name)
			}
			seen[key] = true
		}
	}
	for _, row := range ins.Rows {
		if schema != nil && len(row) != width {
			pos := ins.TablePos
			if len(row) > 0 {
				pos = row[0].Pos()
			}
			c.errf(pos, "INSERT expects %d values, got %d", width, len(row))
		}
		for _, e := range row {
			c.noAggregates(e, "INSERT VALUES")
			c.infer(e, nil)
		}
	}
	if ins.Query != nil {
		c.checkSelect(ins.Query)
		if schema != nil {
			n, hasStar := 0, false
			for _, it := range ins.Query.Items {
				if it.Star {
					hasStar = true
				} else {
					n++
				}
			}
			if !hasStar && n != width {
				c.errf(ins.Query.At, "INSERT expects %d columns, subquery produces %d", width, n)
			}
		}
	}
}
