package sema

import (
	"fmt"
	"strings"

	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
)

// scopeEntry is one FROM table visible to column references. A nil
// schema marks a table that failed to resolve: its columns accept any
// name with unknown type, so one bad table name doesn't cascade into a
// diagnostic per column reference.
type scopeEntry struct {
	name   string // the addressable name (alias, or table name)
	schema *sqltypes.Schema
}

// scope is the set of tables a query's column references resolve
// against, mirroring the executor's binding of cross-joined FROM
// entries. A nil *scope means no columns are allowed (FROM-less
// SELECTs, INSERT VALUES expressions).
type scope struct {
	entries []scopeEntry
}

func (c *checker) buildScope(from []sqlparser.TableRef) *scope {
	sc := &scope{}
	seen := make(map[string]bool, len(from))
	for _, ref := range from {
		name := ref.RefName()
		key := strings.ToLower(name)
		if seen[key] {
			c.errf(ref.At, "duplicate table name %q in FROM; use aliases", name)
			continue
		}
		seen[key] = true
		entry := scopeEntry{name: name}
		if c.env.Catalog != nil {
			schema, err := c.env.Catalog.TableSchema(ref.Name)
			if err != nil {
				c.errf(ref.At, "unknown table %q", ref.Name)
			} else {
				entry.schema = schema
			}
		}
		sc.entries = append(sc.entries, entry)
	}
	return sc
}

// resolveColumn mirrors the executor's binding.resolve: qualified
// references name a FROM entry; unqualified references must be
// unambiguous across all entries.
func (c *checker) resolveColumn(sc *scope, cr *sqlparser.ColumnRef) typ {
	if sc == nil || len(sc.entries) == 0 {
		c.errf(cr.At, "column %s is not allowed here", cr)
		return anyType
	}
	if cr.Table != "" {
		for _, e := range sc.entries {
			if !strings.EqualFold(e.name, cr.Table) {
				continue
			}
			if e.schema == nil {
				return anyType // table itself already diagnosed
			}
			if i := e.schema.Index(cr.Name); i >= 0 {
				return known(e.schema.Columns[i].Type)
			}
			c.errf(cr.At, "table %q has no column %q", cr.Table, cr.Name)
			return anyType
		}
		c.errf(cr.At, "unknown table %q", cr.Table)
		return anyType
	}
	found, matches := anyType, 0
	for _, e := range sc.entries {
		if e.schema == nil {
			return anyType // unresolved table could supply any column
		}
		if i := e.schema.Index(cr.Name); i >= 0 {
			matches++
			found = known(e.schema.Columns[i].Type)
		}
	}
	switch matches {
	case 0:
		c.errf(cr.At, "unknown column %q", cr.Name)
		return anyType
	case 1:
		return found
	default:
		c.errf(cr.At, "ambiguous column %q", cr.Name)
		return anyType
	}
}

func (c *checker) checkSelect(sel *sqlparser.Select) {
	if len(sel.From) == 0 {
		c.checkConstSelect(sel)
		return
	}
	sc := c.buildScope(sel.From)

	// Aggregate detection matches the executor: GROUP BY or any
	// aggregate call in the select list makes this an aggregate query.
	// ORDER BY keys that cannot be evaluated against the output become
	// hidden select items, so an aggregate there counts too.
	isAgg := len(sel.GroupBy) > 0
	for _, item := range sel.Items {
		if !item.Star && c.containsAggregate(item.Expr) {
			isAgg = true
		}
	}
	outNames, hasStar := outputNames(sel)
	for _, o := range sel.OrderBy {
		if lit, ok := o.Expr.(*sqlparser.NumberLit); ok && lit.IsInt {
			continue
		}
		if !orderKeyInOutput(o.Expr, outNames) && c.containsAggregate(o.Expr) {
			isAgg = true
		}
	}

	if sel.Where != nil {
		c.noAggregates(sel.Where, "the WHERE clause")
		c.infer(sel.Where, sc)
	}
	groupKeys := make(map[string]bool, len(sel.GroupBy))
	for _, g := range sel.GroupBy {
		c.noAggregates(g, "GROUP BY")
		c.infer(g, sc)
		groupKeys[g.String()] = true
	}

	if isAgg {
		for _, item := range sel.Items {
			if item.Star {
				c.errf(item.At, "%s cannot be combined with GROUP BY or aggregates; select explicit expressions", starText(item))
				continue
			}
			c.infer(item.Expr, sc)
			c.checkAggPlacement(item.Expr, groupKeys, false)
		}
		if sel.Having != nil {
			c.infer(sel.Having, sc)
			c.checkAggPlacement(sel.Having, groupKeys, false)
		}
	} else {
		for _, item := range sel.Items {
			if item.Star {
				c.checkStar(item, sc)
				continue
			}
			c.infer(item.Expr, sc)
		}
		if sel.Having != nil {
			c.errf(sel.Having.Pos(), "HAVING requires GROUP BY or aggregates")
		}
	}
	c.checkOrderBy(sel, sc, isAgg, groupKeys, outNames, hasStar)
}

// outputNames collects the visible output column names (lower-cased),
// mirroring the executor, and whether a star item is present.
func outputNames(sel *sqlparser.Select) (map[string]bool, bool) {
	out := make(map[string]bool, len(sel.Items))
	hasStar := false
	for i, item := range sel.Items {
		if item.Star {
			hasStar = true
			continue
		}
		out[strings.ToLower(outputName(item, i))] = true
	}
	return out, hasStar
}

// checkConstSelect checks a FROM-less SELECT of constants, mirroring
// the executor's constSelect restrictions.
func (c *checker) checkConstSelect(sel *sqlparser.Select) {
	if sel.Where != nil {
		c.errf(sel.Where.Pos(), "WHERE requires a FROM clause")
	}
	for _, g := range sel.GroupBy {
		c.errf(g.Pos(), "GROUP BY requires a FROM clause")
	}
	if sel.Having != nil {
		c.errf(sel.Having.Pos(), "HAVING requires a FROM clause")
	}
	for _, item := range sel.Items {
		if item.Star {
			c.errf(item.At, "%s requires a FROM clause", starText(item))
			continue
		}
		c.noAggregates(item.Expr, "a FROM-less SELECT")
		c.infer(item.Expr, nil)
	}
}

func starText(item sqlparser.SelectItem) string {
	if item.StarTable != "" {
		return item.StarTable + ".*"
	}
	return "*"
}

func (c *checker) checkStar(item sqlparser.SelectItem, sc *scope) {
	if item.StarTable == "" {
		return
	}
	for _, e := range sc.entries {
		if strings.EqualFold(e.name, item.StarTable) {
			return
		}
	}
	c.errf(item.At, "%s.* does not match any table in FROM", item.StarTable)
}

// checkAggPlacement enforces the aggregate-query placement rules the
// executor's rewrite phase assumes: outside aggregate calls, a column
// may only appear inside a subtree textually equal to a GROUP BY
// expression (the executor's own matching rule); aggregate calls may
// not nest.
func (c *checker) checkAggPlacement(e sqlparser.Expr, groupKeys map[string]bool, inAgg bool) {
	if e == nil {
		return
	}
	if !inAgg && groupKeys[e.String()] {
		return
	}
	switch e := e.(type) {
	case *sqlparser.ColumnRef:
		if !inAgg {
			c.errf(e.At, "column %s must appear in GROUP BY or inside an aggregate", e)
		}
	case *sqlparser.FuncCall:
		if c.isAggregate(strings.ToLower(e.Name)) {
			if inAgg {
				c.errf(e.At, "aggregate %s() cannot be nested inside another aggregate", strings.ToLower(e.Name))
				return
			}
			for _, a := range e.Args {
				c.checkAggPlacement(a, groupKeys, true)
			}
			return
		}
		for _, a := range e.Args {
			c.checkAggPlacement(a, groupKeys, inAgg)
		}
	case *sqlparser.UnaryExpr:
		c.checkAggPlacement(e.X, groupKeys, inAgg)
	case *sqlparser.BinaryExpr:
		c.checkAggPlacement(e.L, groupKeys, inAgg)
		c.checkAggPlacement(e.R, groupKeys, inAgg)
	case *sqlparser.CaseExpr:
		for _, w := range e.Whens {
			c.checkAggPlacement(w.Cond, groupKeys, inAgg)
			c.checkAggPlacement(w.Then, groupKeys, inAgg)
		}
		c.checkAggPlacement(e.Else, groupKeys, inAgg)
	case *sqlparser.IsNullExpr:
		c.checkAggPlacement(e.X, groupKeys, inAgg)
	case *sqlparser.CastExpr:
		c.checkAggPlacement(e.X, groupKeys, inAgg)
	case *sqlparser.BetweenExpr:
		c.checkAggPlacement(e.X, groupKeys, inAgg)
		c.checkAggPlacement(e.Lo, groupKeys, inAgg)
		c.checkAggPlacement(e.Hi, groupKeys, inAgg)
	case *sqlparser.InExpr:
		c.checkAggPlacement(e.X, groupKeys, inAgg)
		for _, x := range e.List {
			c.checkAggPlacement(x, groupKeys, inAgg)
		}
	}
}

// checkOrderBy mirrors the executor's two ORDER BY paths: keys that are
// integer ordinals or resolve entirely against output names are sorted
// on the output; anything else is computed as a hidden select item and
// must therefore satisfy the same rules as a select item.
func (c *checker) checkOrderBy(sel *sqlparser.Select, sc *scope, isAgg bool, groupKeys map[string]bool, outNames map[string]bool, hasStar bool) {
	if len(sel.OrderBy) == 0 {
		return
	}
	for _, o := range sel.OrderBy {
		if lit, ok := o.Expr.(*sqlparser.NumberLit); ok && lit.IsInt {
			if !hasStar && (lit.Int < 1 || lit.Int > int64(len(sel.Items))) {
				c.errf(lit.At, "ORDER BY ordinal %d is out of range (1..%d)", lit.Int, len(sel.Items))
			}
			continue
		}
		if orderKeyInOutput(o.Expr, outNames) {
			continue
		}
		c.infer(o.Expr, sc)
		if isAgg {
			c.checkAggPlacement(o.Expr, groupKeys, false)
		}
	}
}

// outputName mirrors the executor's output-column naming.
func outputName(item sqlparser.SelectItem, ordinal int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if cr, ok := item.Expr.(*sqlparser.ColumnRef); ok {
		return cr.Name
	}
	s := item.Expr.String()
	if len(s) <= 40 {
		return s
	}
	return fmt.Sprintf("col%d", ordinal+1)
}

// orderKeyInOutput mirrors the executor: a key sorts on the output when
// every column reference is unqualified and names an output column.
func orderKeyInOutput(e sqlparser.Expr, outNames map[string]bool) bool {
	ok := true
	sqlparser.WalkColumns(e, func(cr *sqlparser.ColumnRef) {
		if cr.Table != "" || !outNames[strings.ToLower(cr.Name)] {
			ok = false
		}
	})
	return ok
}
