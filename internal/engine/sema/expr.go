package sema

import (
	"strings"

	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
)

// typ is a point in sema's type lattice: either a known SQL type or
// unknown (NULL literals, un-annotated UDF results, mixed CASE arms).
// Unknown types are never flagged — sema only reports provable errors.
type typ struct {
	t     sqltypes.Type
	known bool
}

// anyType is the unknown type.
var anyType = typ{}

func known(t sqltypes.Type) typ { return typ{t: t, known: true} }

// isVarChar reports a provable string: the only operand class the
// engine's arithmetic can never evaluate meaningfully.
func (t typ) isVarChar() bool { return t.known && t.t == sqltypes.TypeVarChar }

func numericParam(t sqltypes.Type) bool {
	return t == sqltypes.TypeDouble || t == sqltypes.TypeBigInt
}

// infer type-checks an expression against a scope and returns its
// inferred type, appending diagnostics for name/type/arity errors. It
// deliberately matches the executor's runtime semantics: comparisons,
// logic, IS NULL, BETWEEN and IN accept any operands (the engine's
// Compare and three-valued Bool are total); arithmetic and numeric
// function parameters reject provable VARCHAR operands.
func (c *checker) infer(e sqlparser.Expr, sc *scope) typ {
	switch e := e.(type) {
	case nil:
		return anyType
	case *sqlparser.NumberLit:
		if e.IsInt {
			return known(sqltypes.TypeBigInt)
		}
		return known(sqltypes.TypeDouble)
	case *sqlparser.StringLit:
		return known(sqltypes.TypeVarChar)
	case *sqlparser.NullLit:
		return anyType
	case *sqlparser.BoolLit:
		return known(sqltypes.TypeBool)
	case *sqlparser.ColumnRef:
		return c.resolveColumn(sc, e)
	case *sqlparser.ParamRef:
		// A `?` placeholder types as unknown; the bound value is only
		// known at EXECUTE time, and the engine's operators are total
		// over runtime values. Slot validity is checked at bind time.
		return anyType
	case *sqlparser.UnaryExpr:
		xt := c.infer(e.X, sc)
		if e.Op == "NOT" {
			return known(sqltypes.TypeBool)
		}
		if xt.isVarChar() {
			c.errf(e.At, "type mismatch: cannot negate VARCHAR operand %s", e.X)
			return anyType
		}
		if xt.known && xt.t == sqltypes.TypeBigInt {
			return known(sqltypes.TypeBigInt)
		}
		if xt.known {
			return known(sqltypes.TypeDouble)
		}
		return anyType
	case *sqlparser.BinaryExpr:
		lt := c.infer(e.L, sc)
		rt := c.infer(e.R, sc)
		switch e.Op {
		case "+", "-", "*", "/", "%":
			if lt.isVarChar() {
				c.errf(e.At, "type mismatch: left operand of %q is VARCHAR (%s)", e.Op, e.L)
			}
			if rt.isVarChar() {
				c.errf(e.At, "type mismatch: right operand of %q is VARCHAR (%s)", e.Op, e.R)
			}
			if lt.known && rt.known && !lt.isVarChar() && !rt.isVarChar() {
				if lt.t == sqltypes.TypeBigInt && rt.t == sqltypes.TypeBigInt {
					return known(sqltypes.TypeBigInt)
				}
				return known(sqltypes.TypeDouble)
			}
			return anyType
		case "||":
			return known(sqltypes.TypeVarChar)
		case "=", "<>", "<", "<=", ">", ">=", "AND", "OR":
			return known(sqltypes.TypeBool)
		default:
			c.errf(e.At, "unknown operator %q", e.Op)
			return anyType
		}
	case *sqlparser.FuncCall:
		return c.inferCall(e, sc)
	case *sqlparser.CaseExpr:
		var rt typ
		first := true
		merge := func(t typ) {
			if first {
				rt = t
				first = false
			} else if !(rt.known && t.known && rt.t == t.t) {
				rt = anyType
			}
		}
		for _, w := range e.Whens {
			c.infer(w.Cond, sc)
			merge(c.infer(w.Then, sc))
		}
		if e.Else != nil {
			merge(c.infer(e.Else, sc))
		}
		return rt
	case *sqlparser.IsNullExpr:
		c.infer(e.X, sc)
		return known(sqltypes.TypeBool)
	case *sqlparser.CastExpr:
		c.infer(e.X, sc)
		t, err := sqltypes.ParseType(e.Type)
		if err != nil {
			c.errf(e.At, "unknown type %q in CAST", e.Type)
			return anyType
		}
		return known(t)
	case *sqlparser.BetweenExpr:
		c.infer(e.X, sc)
		c.infer(e.Lo, sc)
		c.infer(e.Hi, sc)
		return known(sqltypes.TypeBool)
	case *sqlparser.InExpr:
		c.infer(e.X, sc)
		for _, x := range e.List {
			c.infer(x, sc)
		}
		return known(sqltypes.TypeBool)
	default:
		c.errf(e.Pos(), "unsupported expression %T", e)
		return anyType
	}
}

// inferCall checks a function call: aggregates go through the
// aggregate registry's own CheckArgs (the UDF's arity contract),
// scalars through the scalar registry's arity bounds plus any declared
// parameter/return types.
func (c *checker) inferCall(e *sqlparser.FuncCall, sc *scope) typ {
	name := strings.ToLower(e.Name)
	if c.isAggregate(name) {
		return c.inferAggregateCall(e, name, sc)
	}
	if c.env.Scalars == nil {
		for _, a := range e.Args {
			c.infer(a, sc)
		}
		return anyType
	}
	def, ok := c.env.Scalars.Lookup(name)
	if !ok {
		c.errf(e.At, "unknown function %q", e.Name)
		for _, a := range e.Args {
			c.infer(a, sc)
		}
		return anyType
	}
	if e.Star {
		c.errf(e.At, "%s(*) is not valid; only count(*) takes a star", name)
		return anyType
	}
	if len(e.Args) < def.MinArgs || (def.MaxArgs >= 0 && len(e.Args) > def.MaxArgs) {
		switch {
		case def.MaxArgs < 0:
			c.errf(e.At, "%s expects at least %d argument(s), got %d", def.Name, def.MinArgs, len(e.Args))
		case def.MinArgs == def.MaxArgs:
			c.errf(e.At, "%s expects %d argument(s), got %d", def.Name, def.MinArgs, len(e.Args))
		default:
			c.errf(e.At, "%s expects %d..%d arguments, got %d", def.Name, def.MinArgs, def.MaxArgs, len(e.Args))
		}
	}
	for i, a := range e.Args {
		at := c.infer(a, sc)
		want := sqltypes.TypeNull
		switch {
		case i < len(def.Params):
			want = def.Params[i]
		case def.MaxArgs < 0 && len(def.Params) > 0:
			// Variadic functions: trailing arguments take the last
			// declared parameter type.
			want = def.Params[len(def.Params)-1]
		}
		if numericParam(want) && at.isVarChar() {
			c.errf(a.Pos(), "type mismatch: argument %d of %s() must be numeric, got VARCHAR (%s)", i+1, def.Name, a)
		}
	}
	if def.Ret != sqltypes.TypeNull {
		return known(def.Ret)
	}
	return anyType
}

func (c *checker) inferAggregateCall(e *sqlparser.FuncCall, name string, sc *scope) typ {
	nargs := len(e.Args)
	if e.Star {
		nargs = 0
	}
	if c.env.Aggs != nil {
		if agg, ok := c.env.Aggs.Lookup(name); ok {
			if err := agg.CheckArgs(nargs); err != nil {
				c.errf(e.At, "%s", strings.TrimPrefix(err.Error(), "udf: "))
			}
		}
	}
	for _, a := range e.Args {
		at := c.infer(a, sc)
		// sum/avg fold through float accumulation; a provable string
		// can never contribute. min/max/count and aggregate UDFs accept
		// anything (UDFs take string options, e.g. nlq_list's matrix
		// type argument).
		if (name == "sum" || name == "avg") && at.isVarChar() {
			c.errf(a.Pos(), "type mismatch: %s() requires a numeric argument, got VARCHAR (%s)", name, a)
		}
	}
	if name == "count" {
		return known(sqltypes.TypeBigInt)
	}
	return anyType
}

// noAggregates reports every aggregate call in e; clause names the
// context ("the WHERE clause", "GROUP BY", ...).
func (c *checker) noAggregates(e sqlparser.Expr, clause string) {
	walkExpr(e, func(x sqlparser.Expr) {
		if fc, ok := x.(*sqlparser.FuncCall); ok {
			if name := strings.ToLower(fc.Name); c.isAggregate(name) {
				c.errf(fc.At, "aggregate %s() is not allowed in %s", name, clause)
			}
		}
	})
}

// containsAggregate reports whether e contains any aggregate call.
func (c *checker) containsAggregate(e sqlparser.Expr) bool {
	found := false
	walkExpr(e, func(x sqlparser.Expr) {
		if fc, ok := x.(*sqlparser.FuncCall); ok && c.isAggregate(strings.ToLower(fc.Name)) {
			found = true
		}
	})
	return found
}

// walkExpr visits every node of an expression tree, including the root.
func walkExpr(e sqlparser.Expr, fn func(sqlparser.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *sqlparser.UnaryExpr:
		walkExpr(e.X, fn)
	case *sqlparser.BinaryExpr:
		walkExpr(e.L, fn)
		walkExpr(e.R, fn)
	case *sqlparser.FuncCall:
		for _, a := range e.Args {
			walkExpr(a, fn)
		}
	case *sqlparser.CaseExpr:
		for _, w := range e.Whens {
			walkExpr(w.Cond, fn)
			walkExpr(w.Then, fn)
		}
		walkExpr(e.Else, fn)
	case *sqlparser.IsNullExpr:
		walkExpr(e.X, fn)
	case *sqlparser.CastExpr:
		walkExpr(e.X, fn)
	case *sqlparser.BetweenExpr:
		walkExpr(e.X, fn)
		walkExpr(e.Lo, fn)
		walkExpr(e.Hi, fn)
	case *sqlparser.InExpr:
		walkExpr(e.X, fn)
		for _, x := range e.List {
			walkExpr(x, fn)
		}
	}
}
