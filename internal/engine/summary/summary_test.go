package summary

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/storage"
)

func testSchema() *sqltypes.Schema {
	return sqltypes.MustSchema(
		sqltypes.Column{Name: "i", Type: sqltypes.TypeBigInt},
		sqltypes.Column{Name: "x1", Type: sqltypes.TypeDouble},
		sqltypes.Column{Name: "x2", Type: sqltypes.TypeDouble},
		sqltypes.Column{Name: "x3", Type: sqltypes.TypeDouble},
	)
}

func testRow(i int64, x1, x2, x3 float64) sqltypes.Row {
	return sqltypes.Row{
		sqltypes.NewBigInt(i),
		sqltypes.NewDouble(x1),
		sqltypes.NewDouble(x2),
		sqltypes.NewDouble(x3),
	}
}

var testCols = []string{"x1", "x2", "x3"}

// scanPoints collects the summarized columns of every row, the
// reference the incrementally maintained summary is compared against.
func scanPoints(t *testing.T, tab *storage.Table) core.SliceSource {
	t.Helper()
	var pts [][]float64
	err := tab.ScanContext(context.Background(), func(r sqltypes.Row) error {
		x := make([]float64, 3)
		for i := 0; i < 3; i++ {
			f, ok := r[1+i].Float()
			if !ok {
				return nil // NULL point: skipped, like the cache does
			}
			x[i] = f
		}
		pts = append(pts, x)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return core.SliceSource(pts)
}

// requireClose compares two summaries within relative tolerance.
func requireClose(t *testing.T, got, want *core.NLQ, tol float64) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("N = %g, want %g", got.N, want.N)
	}
	close := func(a, b float64) bool {
		return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	}
	for a := 0; a < got.D; a++ {
		if !close(got.L[a], want.L[a]) {
			t.Fatalf("L[%d] = %g, want %g", a, got.L[a], want.L[a])
		}
		for b := 0; b < got.D; b++ {
			if !close(got.QAt(a, b), want.QAt(a, b)) {
				t.Fatalf("Q[%d,%d] = %g, want %g", a, b, got.QAt(a, b), want.QAt(a, b))
			}
		}
	}
}

// TestMergeEquivalenceConcurrentInserts is the merge-equivalence
// property: the incrementally maintained summary after K interleaved
// concurrent inserts must equal a from-scratch ComputeNLQ over the
// final table, within tolerance. Run under -race this also proves the
// write-path callbacks are properly serialized.
func TestMergeEquivalenceConcurrentInserts(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		name := "mem"
		if dir != "" {
			name = "disk"
		}
		t.Run(name, func(t *testing.T) {
			tab, err := storage.NewTable("x", testSchema(), dir, 4)
			if err != nil {
				t.Fatal(err)
			}
			cat := NewCatalog(0, false)
			ctx := context.Background()
			// Warm the entry on the empty table so every insert is folded
			// incrementally.
			if _, hit, err := cat.NLQ(ctx, tab, testCols, core.Triangular); err != nil || hit {
				t.Fatalf("first read: hit=%v err=%v", hit, err)
			}
			const workers, batches, batchRows = 8, 25, 7
			var wg sync.WaitGroup
			readErr := make(chan error, workers)
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for b := 0; b < batches; b++ {
						rows := make([]sqltypes.Row, batchRows)
						for r := range rows {
							v := float64(w*1000+b*10+r) / 3
							rows[r] = testRow(int64(w), v, v*v/100+1, 50-v)
						}
						if err := tab.Insert(rows...); err != nil {
							readErr <- err
							return
						}
						// Interleave reads with the writes: they must never
						// deadlock and never return an inconsistent summary.
						if b%5 == 0 {
							s, _, err := cat.NLQ(ctx, tab, testCols, core.Triangular)
							if err != nil {
								readErr <- err
								return
							}
							if s.N > float64(workers*batches*batchRows) {
								readErr <- fmt.Errorf("summary covers %g rows, max possible %d",
									s.N, workers*batches*batchRows)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(readErr)
			for err := range readErr {
				t.Fatal(err)
			}
			s, hit, err := cat.NLQ(ctx, tab, testCols, core.Triangular)
			if err != nil {
				t.Fatal(err)
			}
			if !hit {
				t.Fatal("summary not warm after interleaved inserts (every append was delta-merged)")
			}
			want, err := core.ComputeNLQ(scanPoints(t, tab), core.Triangular)
			if err != nil {
				t.Fatal(err)
			}
			requireClose(t, s, want, 1e-9)
			// The warm read performed zero partition scans.
			tab.ResetScannedRows()
			if _, hit, err := cat.NLQ(ctx, tab, testCols, core.Triangular); err != nil || !hit {
				t.Fatalf("re-read: hit=%v err=%v", hit, err)
			}
			if n := tab.ScannedRows(); n != 0 {
				t.Fatalf("warm read scanned %d rows, want 0", n)
			}
		})
	}
}

// TestBulkLoadMaintainsSummary covers the BulkLoader append path: rows
// streamed through a loader registered mid-life must leave the entry
// fresh and exact.
func TestBulkLoadMaintainsSummary(t *testing.T) {
	tab, err := storage.NewTable("x", testSchema(), t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(0, false)
	ctx := context.Background()
	if _, _, err := cat.NLQ(ctx, tab, testCols, core.Triangular); err != nil {
		t.Fatal(err)
	}
	bl, err := tab.NewBulkLoader()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := bl.Add(testRow(int64(i), float64(i), float64(i%7), math.Sqrt(float64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := bl.Close(); err != nil {
		t.Fatal(err)
	}
	s, hit, err := cat.NLQ(ctx, tab, testCols, core.Triangular)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("summary cold after bulk load")
	}
	want, err := core.ComputeNLQ(scanPoints(t, tab), core.Triangular)
	if err != nil {
		t.Fatal(err)
	}
	requireClose(t, s, want, 1e-9)
}

// TestCleanRollbackKeepsEntryFresh: an insert that fails and rolls
// back cleanly publishes nothing, so a warm entry must stay warm and
// unchanged.
func TestCleanRollbackKeepsEntryFresh(t *testing.T) {
	tab, err := storage.NewTable("x", testSchema(), t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(testRow(1, 1, 2, 3), testRow(2, 4, 5, 6)); err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(0, false)
	ctx := context.Background()
	before, _, err := cat.NLQ(ctx, tab, testCols, core.Triangular)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("injected append failure")
	tab.SetFault(&storage.Fault{Partition: 1, AppendAfter: true, Err: sentinel})
	if err := tab.Insert(testRow(3, 7, 8, 9), testRow(4, 10, 11, 12)); !errors.Is(err, sentinel) {
		t.Fatalf("want injected error, got %v", err)
	}
	tab.SetFault(nil)
	after, hit, err := cat.NLQ(ctx, tab, testCols, core.Triangular)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("clean rollback demoted the entry")
	}
	requireClose(t, after, before, 0)
}

// TestRollbackCorruptionInvalidates is the insert-rollback
// invalidation path: when the rollback truncate itself fails, the
// entry is demoted and the fallback rebuild fails loudly on the
// corrupt partition instead of serving stale numbers.
func TestRollbackCorruptionInvalidates(t *testing.T) {
	tab, err := storage.NewTable("x", testSchema(), t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(testRow(1, 1, 2, 3), testRow(2, 4, 5, 6)); err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(0, false)
	ctx := context.Background()
	if _, _, err := cat.NLQ(ctx, tab, testCols, core.Triangular); err != nil {
		t.Fatal(err)
	}
	tab.SetFault(&storage.Fault{Partition: 1, AppendAfter: true, TruncateFail: true})
	if err := tab.Insert(testRow(3, 7, 8, 9), testRow(4, 10, 11, 12)); err == nil {
		t.Fatal("faulted insert succeeded")
	}
	tab.SetFault(nil)
	_, _, err = cat.NLQ(ctx, tab, testCols, core.Triangular)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("read over corrupt table: %v", err)
	}
	// sys.summaries-style snapshot reports the entry cold.
	infos := cat.Snapshot()
	if len(infos) != 1 || infos[0].State != "cold" {
		t.Fatalf("snapshot after corruption: %+v", infos)
	}
}

// TestTruncateInvalidates: TRUNCATE-equivalent resets demote the entry;
// the next read rebuilds an empty summary.
func TestTruncateInvalidates(t *testing.T) {
	tab, err := storage.NewTable("x", testSchema(), "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(testRow(1, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(0, false)
	ctx := context.Background()
	if s, _, err := cat.NLQ(ctx, tab, testCols, core.Triangular); err != nil || s.N != 1 {
		t.Fatalf("warm summary: n=%v err=%v", s.N, err)
	}
	if err := tab.Truncate(); err != nil {
		t.Fatal(err)
	}
	s, hit, err := cat.NLQ(ctx, tab, testCols, core.Triangular)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("truncate left the entry warm")
	}
	if s.N != 0 {
		t.Fatalf("summary after truncate covers %g rows", s.N)
	}
}

// TestColumnValidation rejects unknown and non-numeric columns.
func TestColumnValidation(t *testing.T) {
	tab, err := storage.NewTable("x", testSchema(), "", 2)
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(0, false)
	ctx := context.Background()
	if _, _, err := cat.NLQ(ctx, tab, []string{"nope"}, core.Triangular); err == nil {
		t.Fatal("unknown column accepted")
	}
	schema := sqltypes.MustSchema(
		sqltypes.Column{Name: "s", Type: sqltypes.TypeVarChar},
		sqltypes.Column{Name: "x", Type: sqltypes.TypeDouble},
	)
	tab2, err := storage.NewTable("y", schema, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cat.NLQ(ctx, tab2, []string{"s"}, core.Triangular); err == nil {
		t.Fatal("varchar column accepted")
	}
}

// TestDropTableUnregisters: dropped tables leave the catalog, and a
// recreated table under the same name gets a fresh entry instead of
// the stale one.
func TestDropTableUnregisters(t *testing.T) {
	tab, err := storage.NewTable("x", testSchema(), "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(testRow(1, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog(0, false)
	ctx := context.Background()
	if _, _, err := cat.NLQ(ctx, tab, testCols, core.Triangular); err != nil {
		t.Fatal(err)
	}
	cat.DropTable("x")
	if infos := cat.Snapshot(); len(infos) != 0 {
		t.Fatalf("catalog still holds %d entries after drop", len(infos))
	}
	// Same name, new table object: the summary must reflect the new
	// table, not the dropped one.
	tab2, err := storage.NewTable("x", testSchema(), "", 2)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := cat.NLQ(ctx, tab2, testCols, core.Triangular)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 0 {
		t.Fatalf("fresh table's summary covers %g rows", s.N)
	}
}
