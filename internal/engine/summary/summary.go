// Package summary is the incremental summary-statistics subsystem: a
// per-table catalog of n/L/Q accumulators, keyed by (table, column
// set, matrix type), kept fresh by delta-merging the contribution of
// every insert and bulk-load append at write time. The paper's central
// observation — the sufficient statistics n, L, Q decouple model
// building from the data scan, and are additively mergeable under the
// same merge the 4-phase aggregate protocol performs per partition —
// means a warm entry rebuilds any linear model in O(d²) with zero
// partition scans. A cold or stale entry falls back transparently to
// one parallel scan (per-partition partials merged phase-3 style) and
// installs the result for subsequent reads.
//
// Consistency is stamp-based. Tables expose a lock-free validity stamp
// (row count, mutation epoch); an entry is servable only when its own
// accounting matches the stamp exactly. Write-path callbacks run under
// the table lock, so appends fold in atomically with the mutation that
// publishes them; anything else — fault, rollback, truncate, DDL —
// bumps the epoch and invalidates. Rebuilds race inserts safely by
// recording the epoch before the scan and installing under the table
// lock only if it has not moved (bounded retries; on exhaustion the
// scan result is served without being installed, which is exactly the
// legacy one-scan behavior).
package summary

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine/exec"
	"repro/internal/engine/obs"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/storage"
)

// Catalog holds the summary entries of one database instance.
type Catalog struct {
	workers  int  // parallel rebuild width; <= 0 means one goroutine per partition
	columnar bool // rebuild scans use block kernels where eligible

	mu      sync.Mutex
	entries map[string]*entry
}

// NewCatalog creates an empty catalog whose rebuild scans use the
// given worker count. With columnar set, rebuild scans run block-wise
// over column segments where eligible; because the block kernels are
// bit-identical to the row path, cached summaries (and their validity
// stamps) are the same either way.
func NewCatalog(workers int, columnar bool) *Catalog {
	return &Catalog{workers: workers, columnar: columnar, entries: make(map[string]*entry)}
}

// entry is one maintained summary. Lock order is always table lock →
// entry.mu: write-path callbacks arrive holding the table lock and
// take entry.mu; readers under entry.mu only touch the table's
// lock-free stamp accessors, never its lock.
type entry struct {
	table    *storage.Table
	colNames []string
	cols     []int
	mt       core.MatrixType

	buildMu sync.Mutex // serializes rebuild scans for this entry

	mu      sync.Mutex
	fresh   bool
	agg     *core.NLQ // merged summary; nil when cold
	covered int64     // rows folded into agg (including skipped NULL rows)
	epoch   int64     // table epoch agg is valid for
	x       []float64 // scratch for incremental extraction

	hits, misses, incRows, rebuilds atomic.Int64
	lastRebuildNanos                atomic.Int64
}

// Info is one catalog entry's state, served by sys.summaries.
type Info struct {
	Table       string
	Columns     []string
	Matrix      core.MatrixType
	State       string // "fresh", "stale" or "cold"
	N           float64
	Covered     int64
	Epoch       int64
	Hits        int64
	Misses      int64
	IncRows     int64
	Rebuilds    int64
	LastRebuild time.Duration
}

func entryKey(table string, cols []string, mt core.MatrixType) string {
	return strings.ToLower(table) + "|" + strings.ToLower(strings.Join(cols, ",")) + "|" + mt.String()
}

// resolveColumns maps names to ordinals, requiring numeric types — a
// summary over VARCHAR would silently skip every row.
func resolveColumns(s *sqltypes.Schema, cols []string) ([]int, error) {
	idx := make([]int, len(cols))
	for i, name := range cols {
		j := s.Index(name)
		if j < 0 {
			return nil, fmt.Errorf("summary: no column %q", name)
		}
		switch s.Columns[j].Type {
		case sqltypes.TypeDouble, sqltypes.TypeBigInt:
		default:
			return nil, fmt.Errorf("summary: column %q has non-numeric type %s", name, s.Columns[j].Type)
		}
		idx[i] = j
	}
	return idx, nil
}

// get returns the entry for (t, cols, mt), creating and registering it
// on first use. A stored entry whose table pointer differs from t (the
// table was dropped and recreated under the same name) is discarded.
func (c *Catalog) get(t *storage.Table, cols []string, mt core.MatrixType) (*entry, error) {
	idx, err := resolveColumns(t.Schema(), cols)
	if err != nil {
		return nil, fmt.Errorf("%w (table %q)", err, t.Name())
	}
	key := entryKey(t.Name(), cols, mt)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil {
		if e.table == t {
			return e, nil
		}
		e.table.Unobserve(e)
	}
	e := &entry{
		table:    t,
		colNames: append([]string(nil), cols...),
		cols:     idx,
		mt:       mt,
		x:        make([]float64, len(idx)),
	}
	t.Observe(e)
	c.entries[key] = e
	return e, nil
}

// NLQ returns the summary for (t, cols, mt). hit reports whether it
// was served from a warm entry — zero partition scans — rather than
// rebuilt. The returned NLQ is the caller's to mutate.
func (c *Catalog) NLQ(ctx context.Context, t *storage.Table, cols []string, mt core.MatrixType) (s *core.NLQ, hit bool, err error) {
	e, err := c.get(t, cols, mt)
	if err != nil {
		return nil, false, err
	}
	if s := e.cached(); s != nil {
		e.hits.Add(1)
		obs.SummaryHits.Inc()
		return s, true, nil
	}
	e.misses.Add(1)
	obs.SummaryMisses.Inc()
	s, err = e.rebuild(ctx, c.workers, c.columnar)
	if err != nil {
		return nil, false, err
	}
	return s, false, nil
}

// Invalidate marks every entry of the named table cold, forcing the
// next read of each through the rebuild path. The bench harness uses
// it to measure cold builds; DDL paths use it defensively.
func (c *Catalog) Invalidate(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if strings.EqualFold(e.table.Name(), table) {
			e.OnInvalidate()
		}
	}
}

// DropTable removes (and unregisters) every entry of the named table;
// called when the table leaves the catalog.
func (c *Catalog) DropTable(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if strings.EqualFold(e.table.Name(), table) {
			e.table.Unobserve(e)
			delete(c.entries, k)
		}
	}
}

// Snapshot returns the state of every entry, sorted by table then
// column list; sys.summaries serves it.
func (c *Catalog) Snapshot() []Info {
	c.mu.Lock()
	entries := make([]*entry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	c.mu.Unlock()
	out := make([]Info, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.info())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return strings.Join(out[i].Columns, ",") < strings.Join(out[j].Columns, ",")
	})
	return out
}

func (e *entry) info() Info {
	e.mu.Lock()
	inf := Info{
		Table:   e.table.Name(),
		Columns: append([]string(nil), e.colNames...),
		Matrix:  e.mt,
		Covered: e.covered,
		Epoch:   e.epoch,
	}
	switch {
	case !e.fresh:
		inf.State = "cold"
	case e.epoch == e.table.Epoch() && e.covered == e.table.NumRows():
		inf.State = "fresh"
	default:
		inf.State = "stale"
	}
	if e.agg != nil {
		inf.N = e.agg.N
	}
	e.mu.Unlock()
	inf.Hits = e.hits.Load()
	inf.Misses = e.misses.Load()
	inf.IncRows = e.incRows.Load()
	inf.Rebuilds = e.rebuilds.Load()
	inf.LastRebuild = time.Duration(e.lastRebuildNanos.Load())
	return inf
}

// cached returns a clone of the summary iff the entry's accounting
// matches the table's validity stamp exactly; nil means cold or stale.
// The stamp reads are lock-free, so holding e.mu here cannot deadlock
// against a writer holding the table lock and waiting for e.mu in a
// callback. (A writer between its stamp update and its callbacks can
// make a torn read look stale — that costs a spurious rebuild, never
// a wrong answer.)
func (e *entry) cached() *core.NLQ {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.fresh || e.epoch != e.table.Epoch() || e.covered != e.table.NumRows() {
		return nil
	}
	return e.agg.Clone()
}

// rebuild scans the table (phases 1-2 per partition, phase-3 merge)
// and installs the result under the table lock if no mutation raced
// the scan. Concurrent inserts during the scan are detected by the
// epoch check and retried a bounded number of times; if the table
// never sits still, the last scan's result is served without being
// installed — exactly the legacy one-scan behavior.
func (e *entry) rebuild(ctx context.Context, workers int, columnar bool) (*core.NLQ, error) {
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	// Another reader may have rebuilt while we queued on buildMu.
	if s := e.cached(); s != nil {
		return s, nil
	}
	start := time.Now()
	var result *core.NLQ
	for attempt := 0; attempt < 4; attempt++ {
		e0 := e.table.Epoch()
		partials, seen, err := exec.ComputeTableNLQ(ctx, e.table, e.cols, e.mt, workers, columnar)
		if err != nil {
			return nil, err
		}
		agg, err := core.NewNLQ(len(e.cols), e.mt)
		if err != nil {
			return nil, err
		}
		for _, p := range partials {
			if p == nil {
				continue
			}
			if err := agg.Merge(p); err != nil {
				return nil, err
			}
		}
		result = agg
		installed := false
		e.table.Sync(func(rows, epoch int64) {
			if epoch != e0 {
				return // a mutation raced the scan; retry
			}
			// epoch unchanged ⇒ nothing moved since the scan began, so
			// seen == rows and the partials cover the table exactly.
			_ = seen
			e.mu.Lock()
			e.agg = agg.Clone()
			e.covered = rows
			e.epoch = epoch
			e.fresh = true
			e.mu.Unlock()
			installed = true
		})
		if installed {
			break
		}
	}
	d := time.Since(start)
	e.rebuilds.Add(1)
	e.lastRebuildNanos.Store(int64(d))
	obs.SummaryRebuildSeconds.Observe(d.Seconds())
	return result, nil
}

// OnAppend folds newly appended rows into the summary. It runs under
// the table lock, so appends serialize with each other and with
// installs; a fold that fails (dimension overflow cannot happen here,
// but Update guards anyway) demotes the entry to cold.
func (e *entry) OnAppend(p int, rows []sqltypes.Row) {
	_ = p // partials are merged eagerly; partition identity is not needed
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.fresh {
		return
	}
	for _, r := range rows {
		e.covered++
		ok := true
		for i, c := range e.cols {
			f, fok := r[c].Float()
			if !fok {
				ok = false // NULL dimension: point skipped, row still covered
				break
			}
			e.x[i] = f
		}
		if !ok {
			continue
		}
		if err := e.agg.Update(e.x); err != nil {
			e.fresh, e.agg = false, nil
			return
		}
		e.incRows.Add(1)
		obs.SummaryIncremental.Inc()
	}
}

// OnPublish stamps the entry with the committed mutation's epoch. If
// the entry's row accounting disagrees with the published count (rows
// it never saw, e.g. appended before it registered mid-load), it
// demotes itself to cold rather than serve a wrong summary.
func (e *entry) OnPublish(rows, epoch int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.fresh {
		return
	}
	e.epoch = epoch
	if e.covered != rows {
		e.fresh, e.agg = false, nil
	}
}

// OnInvalidate drops the summary: the table's state diverged in a way
// incremental maintenance cannot follow (fault, rollback, truncate).
func (e *entry) OnInvalidate() {
	e.mu.Lock()
	e.fresh, e.agg = false, nil
	e.mu.Unlock()
}
