package udf

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/engine/sqltypes"
)

func TestHeapAccounting(t *testing.T) {
	h := NewHeap(100)
	if err := h.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := h.Alloc(40); err != nil {
		t.Fatal(err)
	}
	if err := h.Alloc(1); err == nil {
		t.Fatal("over-allocation must fail")
	}
	if h.Used() != 100 || h.Limit() != 100 {
		t.Fatalf("used=%d limit=%d", h.Used(), h.Limit())
	}
	if err := h.Alloc(-1); err == nil {
		t.Fatal("negative allocation must fail")
	}
}

func TestHeapAllocFloats(t *testing.T) {
	h := NewHeap(SegmentSize)
	// The paper's MAX_d: a 64×64 Q plus L must fit in 64 KB; 90×90 must not.
	if _, err := h.AllocFloats(64*64 + 64); err != nil {
		t.Fatalf("64-dim state must fit: %v", err)
	}
	h2 := NewHeap(SegmentSize)
	if _, err := h2.AllocFloats(96*96 + 96); err == nil {
		t.Fatal("96-dim state must exceed the segment")
	}
}

func runAgg(t *testing.T, name string, rows [][]sqltypes.Value) sqltypes.Value {
	t.Helper()
	r := NewRegistry()
	agg, ok := r.Lookup(name)
	if !ok {
		t.Fatalf("aggregate %q missing", name)
	}
	// Exercise the full 4-phase protocol with two partitions.
	s1, err := agg.Init(NewHeap(SegmentSize))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := agg.Init(NewHeap(SegmentSize))
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		s := s1
		if i%2 == 1 {
			s = s2
		}
		if err := agg.Accumulate(s, row); err != nil {
			t.Fatal(err)
		}
	}
	if err := agg.Merge(s1, s2); err != nil {
		t.Fatal(err)
	}
	v, err := agg.Finalize(s1)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func vrow(f float64) []sqltypes.Value { return []sqltypes.Value{sqltypes.NewDouble(f)} }

func TestStandardAggregates(t *testing.T) {
	rows := [][]sqltypes.Value{vrow(1), vrow(2), vrow(3), {sqltypes.Null}, vrow(4)}
	if v := runAgg(t, "sum", rows); v.MustFloat() != 10 {
		t.Errorf("sum = %v", v)
	}
	if v := runAgg(t, "count", rows); v.Int() != 4 { // NULLs ignored
		t.Errorf("count = %v", v)
	}
	if v := runAgg(t, "avg", rows); v.MustFloat() != 2.5 {
		t.Errorf("avg = %v", v)
	}
	if v := runAgg(t, "min", rows); v.MustFloat() != 1 {
		t.Errorf("min = %v", v)
	}
	if v := runAgg(t, "max", rows); v.MustFloat() != 4 {
		t.Errorf("max = %v", v)
	}
}

func TestCountStar(t *testing.T) {
	rows := [][]sqltypes.Value{{}, {}, {}}
	if v := runAgg(t, "count", rows); v.Int() != 3 {
		t.Errorf("count(*) = %v", v)
	}
}

func TestEmptyAggregates(t *testing.T) {
	if v := runAgg(t, "sum", nil); !v.IsNull() {
		t.Errorf("sum of empty = %v, want NULL", v)
	}
	if v := runAgg(t, "count", nil); v.Int() != 0 {
		t.Errorf("count of empty = %v, want 0", v)
	}
	if v := runAgg(t, "min", nil); !v.IsNull() {
		t.Errorf("min of empty = %v, want NULL", v)
	}
}

func TestMinMaxStrings(t *testing.T) {
	rows := [][]sqltypes.Value{
		{sqltypes.NewVarChar("pear")},
		{sqltypes.NewVarChar("apple")},
		{sqltypes.NewVarChar("fig")},
	}
	if v := runAgg(t, "min", rows); v.Str() != "apple" {
		t.Errorf("min = %v", v)
	}
	if v := runAgg(t, "max", rows); v.Str() != "pear" {
		t.Errorf("max = %v", v)
	}
}

func TestCheckArgs(t *testing.T) {
	r := NewRegistry()
	sum, _ := r.Lookup("sum")
	if err := sum.CheckArgs(1); err != nil {
		t.Error(err)
	}
	if err := sum.CheckArgs(2); err == nil {
		t.Error("sum(a,b) must be rejected")
	}
	cnt, _ := r.Lookup("count")
	if err := cnt.CheckArgs(0); err != nil {
		t.Error("count(*) must be allowed")
	}
}

func TestMergeIsCommutativeOverPartitioning(t *testing.T) {
	// Property: however rows are split between two partial states, the
	// merged sum matches the sequential sum. This is the correctness
	// contract the paper's phase-3 parallel merge relies on.
	f := func(vals []float64, split uint8) bool {
		r := NewRegistry()
		agg, _ := r.Lookup("sum")
		seq, _ := agg.Init(NewHeap(SegmentSize))
		p1, _ := agg.Init(NewHeap(SegmentSize))
		p2, _ := agg.Init(NewHeap(SegmentSize))
		var want float64
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			// Bound magnitudes so the running sum cannot overflow.
			v = math.Mod(v, 1e9)
			_ = agg.Accumulate(seq, vrow(v))
			want += math.Abs(v)
			if i%max(int(split%7)+1, 1) == 0 {
				_ = agg.Accumulate(p1, vrow(v))
			} else {
				_ = agg.Accumulate(p2, vrow(v))
			}
		}
		_ = agg.Merge(p1, p2)
		got, _ := agg.Finalize(p1)
		ref, _ := agg.Finalize(seq)
		if len(vals) == 0 {
			return got.IsNull() && ref.IsNull()
		}
		g, _ := got.Float()
		r2, _ := ref.Float()
		scale := math.Max(1, math.Abs(want))
		return math.Abs(g-r2) <= 1e-9*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPackUnpackFloats(t *testing.T) {
	f := func(vals []float64) bool {
		for _, v := range vals {
			if math.IsNaN(v) {
				return true
			}
		}
		got, err := UnpackFloats(PackFloats(vals))
		if err != nil {
			return false
		}
		if len(got) != len(vals) {
			return len(vals) == 0 && len(got) == 0
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := UnpackFloats("1|x|3"); err == nil {
		t.Fatal("bad packed float must error")
	}
}

func TestRegistryRegisterAndNames(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	for _, want := range []string{"sum", "count", "avg", "min", "max"} {
		if !names[want] {
			t.Errorf("standard aggregate %q missing", want)
		}
	}
	if err := r.Register(simpleAgg{name: ""}); err == nil {
		t.Error("empty-name aggregate must be rejected")
	}
}
