// Package udf is the engine's User-Defined Function framework,
// modeled on the Teradata UDF API the paper targets:
//
//   - Scalar UDFs take simple-typed parameters and return one value per
//     input row. They cannot keep state between rows (only "stack"
//     locals), cannot perform I/O, and cannot call other UDFs.
//   - Aggregate UDFs run in four phases — (1) initialization, where
//     state is allocated in a bounded heap segment; (2) row
//     aggregation, executed once per row; (3) partial-result merge,
//     where per-partition subtotals are combined by a master; and
//     (4) returning results, where state is packed into one value of a
//     simple type (arrays cannot be returned, so vectors and matrices
//     travel as packed strings).
//
// The heap segment is capped at 64 KB (SegmentSize), the limit the
// paper reports for Teradata on Unix/Windows; it is what forces the
// MAX_d bound and the blocked computation for high dimensionality.
package udf

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/engine/sqltypes"
)

// SegmentSize is the maximum heap an aggregate UDF state may allocate,
// matching the paper's "one 64 kb segment" Teradata constraint.
const SegmentSize = 64 * 1024

// Heap is the accounting allocator handed to an aggregate UDF's Init
// phase. It does not own memory — Go's allocator does — it enforces
// the DBMS's per-state budget so UDF authors hit the same wall they
// would on the real system.
type Heap struct {
	limit int
	used  int
}

// NewHeap returns a heap with the given byte limit (SegmentSize for
// engine-managed states).
func NewHeap(limit int) *Heap { return &Heap{limit: limit} }

// Alloc reserves n bytes, failing when the segment would overflow.
func (h *Heap) Alloc(n int) error {
	if n < 0 {
		return fmt.Errorf("udf: negative allocation %d", n)
	}
	if h.used+n > h.limit {
		return fmt.Errorf("udf: heap segment exhausted: %d + %d > %d bytes", h.used, n, h.limit)
	}
	h.used += n
	return nil
}

// AllocFloats reserves and returns a float64 slice, 8 bytes per entry.
func (h *Heap) AllocFloats(n int) ([]float64, error) {
	if err := h.Alloc(8 * n); err != nil {
		return nil, err
	}
	return make([]float64, n), nil
}

// Used reports bytes allocated so far.
func (h *Heap) Used() int { return h.used }

// Limit reports the segment size.
func (h *Heap) Limit() int { return h.limit }

// State is an aggregate UDF's per-group working storage.
type State any

// Aggregate is an aggregate UDF. One Aggregate value serves all queries
// (it must be stateless); per-group state is created by Init.
type Aggregate interface {
	// Name returns the SQL-callable function name.
	Name() string
	// CheckArgs validates the call-site argument count.
	CheckArgs(nargs int) error
	// Init allocates fresh state in the provided heap segment (phase 1).
	Init(h *Heap) (State, error)
	// Accumulate folds one row's argument values into the state
	// (phase 2). It is called once per qualifying row.
	Accumulate(s State, args []sqltypes.Value) error
	// Merge folds src into dst (phase 3); src must not be used after.
	Merge(dst, src State) error
	// Finalize packs the state into a single return value (phase 4).
	Finalize(s State) (sqltypes.Value, error)
}

// Registry holds aggregate UDFs plus the standard SQL aggregates, which
// the executor treats uniformly.
type Registry struct {
	mu sync.RWMutex
	m  map[string]Aggregate
}

// NewRegistry returns a registry pre-loaded with the standard SQL
// aggregates (sum, count, avg, min, max).
func NewRegistry() *Registry {
	r := &Registry{m: make(map[string]Aggregate)}
	for _, a := range standardAggregates() {
		r.m[a.Name()] = a
	}
	return r
}

// Register installs an aggregate UDF; names are case-insensitive and
// re-registration replaces.
func (r *Registry) Register(a Aggregate) error {
	name := strings.ToLower(a.Name())
	if name == "" {
		return fmt.Errorf("udf: aggregate with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[name] = a
	return nil
}

// Lookup finds an aggregate by name.
func (r *Registry) Lookup(name string) (Aggregate, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.m[strings.ToLower(name)]
	return a, ok
}

// Names returns the registered aggregate names (for IsAggregate sets).
func (r *Registry) Names() map[string]bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]bool, len(r.m))
	for k := range r.m {
		out[k] = true
	}
	return out
}

// PackFloats renders a float vector as the pipe-separated string an
// aggregate UDF returns (UDFs cannot return arrays). Full precision is
// preserved.
func PackFloats(v []float64) string {
	var b strings.Builder
	for i, f := range v {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.FormatFloat(f, 'g', 17, 64))
	}
	return b.String()
}

// UnpackFloats parses a pipe-separated float vector.
func UnpackFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, "|")
	out := make([]float64, len(parts))
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("udf: bad packed float %q: %w", p, err)
		}
		out[i] = f
	}
	return out, nil
}
