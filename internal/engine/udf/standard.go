package udf

import (
	"fmt"

	"repro/internal/engine/sqltypes"
)

// standardAggregates returns the built-in SQL aggregates implemented on
// the same 4-phase protocol as aggregate UDFs, so the parallel executor
// treats both identically.
func standardAggregates() []Aggregate {
	return []Aggregate{
		simpleAgg{name: "sum"},
		simpleAgg{name: "count"},
		simpleAgg{name: "avg"},
		simpleAgg{name: "min"},
		simpleAgg{name: "max"},
	}
}

// simpleState covers all five standard aggregates: a running sum and
// count plus min/max trackers.
type simpleState struct {
	sum      float64
	count    int64
	min, max sqltypes.Value
	seen     bool
}

type simpleAgg struct{ name string }

func (a simpleAgg) Name() string { return a.name }

func (a simpleAgg) CheckArgs(n int) error {
	// count(*) arrives with zero args; everything else takes one.
	if a.name == "count" && n == 0 {
		return nil
	}
	if n != 1 {
		return fmt.Errorf("udf: %s expects 1 argument, got %d", a.name, n)
	}
	return nil
}

func (a simpleAgg) Init(h *Heap) (State, error) {
	if err := h.Alloc(64); err != nil { // state struct footprint
		return nil, err
	}
	return &simpleState{}, nil
}

func (a simpleAgg) Accumulate(s State, args []sqltypes.Value) error {
	st := s.(*simpleState)
	if len(args) == 0 { // count(*)
		st.count++
		return nil
	}
	v := args[0]
	if v.IsNull() {
		return nil // SQL aggregates ignore NULLs
	}
	st.count++
	if f, ok := v.Float(); ok {
		st.sum += f
	} else if a.name == "sum" || a.name == "avg" {
		return fmt.Errorf("udf: %s: non-numeric argument %v", a.name, v)
	}
	if !st.seen {
		st.min, st.max = v, v
		st.seen = true
		return nil
	}
	if sqltypes.Compare(v, st.min) < 0 {
		st.min = v
	}
	if sqltypes.Compare(v, st.max) > 0 {
		st.max = v
	}
	return nil
}

func (a simpleAgg) Merge(dst, src State) error {
	d, s := dst.(*simpleState), src.(*simpleState)
	d.sum += s.sum
	d.count += s.count
	if s.seen {
		if !d.seen {
			d.min, d.max, d.seen = s.min, s.max, true
		} else {
			if sqltypes.Compare(s.min, d.min) < 0 {
				d.min = s.min
			}
			if sqltypes.Compare(s.max, d.max) > 0 {
				d.max = s.max
			}
		}
	}
	return nil
}

func (a simpleAgg) Finalize(s State) (sqltypes.Value, error) {
	st := s.(*simpleState)
	switch a.name {
	case "count":
		return sqltypes.NewBigInt(st.count), nil
	case "sum":
		if st.count == 0 {
			return sqltypes.Null, nil
		}
		return sqltypes.NewDouble(st.sum), nil
	case "avg":
		if st.count == 0 {
			return sqltypes.Null, nil
		}
		return sqltypes.NewDouble(st.sum / float64(st.count)), nil
	case "min":
		if !st.seen {
			return sqltypes.Null, nil
		}
		return st.min, nil
	case "max":
		if !st.seen {
			return sqltypes.Null, nil
		}
		return st.max, nil
	}
	return sqltypes.Null, fmt.Errorf("udf: unknown standard aggregate %q", a.name)
}
