package db

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/engine/exec"
	"repro/internal/engine/obs"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/storage"
)

// sysPrefix reserves a namespace for virtual system tables. Names under
// it never enter the catalog; each reference materializes a fresh
// single-partition in-memory table from live engine state, so
// `SELECT name, value FROM sys.metrics` always reflects the moment the
// query planned its scan.
const sysPrefix = "sys."

// SystemTableNames lists the built-in virtual tables served under
// sys., for shell completion and \d-style listings. Instance-specific
// registrations (RegisterSysTable) are reported by SysTableNames.
func SystemTableNames() []string {
	return []string{"sys.metrics", "sys.partitions", "sys.prepared", "sys.queries", "sys.segments", "sys.spans", "sys.summaries", "sys.tables", "sys.traces"}
}

// SysTableFunc materializes one registered virtual table's content on
// demand; it is called at scan-plan time, so every query sees live
// state. It must be safe for concurrent calls.
type SysTableFunc func() (cols []sqltypes.Column, rows []sqltypes.Row, err error)

// RegisterSysTable installs an instance-specific virtual table under
// the reserved sys. prefix (e.g. the serving layer's sys.sessions).
// Built-in names cannot be shadowed; re-registering a name replaces
// its builder.
func (d *DB) RegisterSysTable(name string, fn SysTableFunc) error {
	key := strings.ToLower(name)
	if !strings.HasPrefix(key, sysPrefix) {
		return fmt.Errorf("db: system table %q must be under %q", name, sysPrefix)
	}
	for _, builtin := range SystemTableNames() {
		if key == builtin {
			return fmt.Errorf("db: cannot replace built-in system table %q", name)
		}
	}
	if fn == nil {
		return fmt.Errorf("db: nil builder for system table %q", name)
	}
	d.sysMu.Lock()
	defer d.sysMu.Unlock()
	if d.sysExt == nil {
		d.sysExt = make(map[string]SysTableFunc)
	}
	d.sysExt[key] = fn
	return nil
}

// SysTableNames lists every virtual table this instance serves:
// the built-ins plus RegisterSysTable registrations, sorted.
func (d *DB) SysTableNames() []string {
	out := append([]string(nil), SystemTableNames()...)
	d.sysMu.RLock()
	for name := range d.sysExt {
		out = append(out, name)
	}
	d.sysMu.RUnlock()
	sort.Strings(out)
	return out
}

func (d *DB) sysTable(key string) (*storage.Table, error) {
	switch key {
	case "sys.metrics":
		return d.sysMetrics()
	case "sys.queries":
		return d.sysQueries()
	case "sys.tables":
		return d.sysTables()
	case "sys.partitions":
		return d.sysPartitions()
	case "sys.segments":
		return d.sysSegments()
	case "sys.summaries":
		return d.sysSummaries()
	case "sys.traces":
		return d.sysTraces()
	case "sys.spans":
		return d.sysSpans()
	case "sys.prepared":
		cols, rows, err := d.sysPrepared()
		if err != nil {
			return nil, err
		}
		return newSysTable(key, cols, rows)
	}
	d.sysMu.RLock()
	fn := d.sysExt[key]
	d.sysMu.RUnlock()
	if fn == nil {
		return nil, fmt.Errorf("db: unknown system table %q", key)
	}
	cols, rows, err := fn()
	if err != nil {
		return nil, fmt.Errorf("db: materializing %s: %w", key, err)
	}
	return newSysTable(key, cols, rows)
}

// newSysTable builds the throwaway in-memory table a sys.* scan reads.
func newSysTable(name string, cols []sqltypes.Column, rows []sqltypes.Row) (*storage.Table, error) {
	schema, err := sqltypes.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	t, err := storage.NewTable(name, schema, "", 1)
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return t, nil
	}
	if err := t.Insert(rows...); err != nil {
		return nil, err
	}
	return t, nil
}

// sysMetrics flattens the process-wide obs registry: one row per
// counter/gauge, plus per-bucket, _sum and _count rows for histograms
// (mirroring the Prometheus exposition the debug endpoint serves).
func (d *DB) sysMetrics() (*storage.Table, error) {
	cols := []sqltypes.Column{
		{Name: "name", Type: sqltypes.TypeVarChar},
		{Name: "kind", Type: sqltypes.TypeVarChar},
		{Name: "value", Type: sqltypes.TypeDouble},
		{Name: "help", Type: sqltypes.TypeVarChar},
	}
	samples := obs.Default.Snapshot()
	rows := make([]sqltypes.Row, 0, len(samples))
	for _, s := range samples {
		rows = append(rows, sqltypes.Row{
			sqltypes.NewVarChar(s.Name),
			sqltypes.NewVarChar(s.Kind),
			sqltypes.NewDouble(s.Value),
			sqltypes.NewVarChar(s.Help),
		})
	}
	return newSysTable("sys.metrics", cols, rows)
}

// sysQueries exposes the recent-query ring, newest first.
func (d *DB) sysQueries() (*storage.Table, error) {
	cols := []sqltypes.Column{
		{Name: "id", Type: sqltypes.TypeBigInt},
		{Name: "sql_text", Type: sqltypes.TypeVarChar},
		{Name: "started", Type: sqltypes.TypeVarChar},
		{Name: "duration_ms", Type: sqltypes.TypeDouble},
		{Name: "rows_scanned", Type: sqltypes.TypeBigInt},
		{Name: "bytes_read", Type: sqltypes.TypeBigInt},
		{Name: "rows_emitted", Type: sqltypes.TypeBigInt},
		{Name: "partitions", Type: sqltypes.TypeBigInt},
		{Name: "workers", Type: sqltypes.TypeBigInt},
		{Name: "skew", Type: sqltypes.TypeDouble},
		{Name: "plan_ms", Type: sqltypes.TypeDouble},
		{Name: "scan_ms", Type: sqltypes.TypeDouble},
		{Name: "merge_ms", Type: sqltypes.TypeDouble},
		{Name: "finalize_ms", Type: sqltypes.TypeDouble},
		{Name: "slow", Type: sqltypes.TypeBool},
		{Name: "error", Type: sqltypes.TypeVarChar},
		{Name: "session_id", Type: sqltypes.TypeBigInt},
		{Name: "remote_addr", Type: sqltypes.TypeVarChar},
		{Name: "trace_id", Type: sqltypes.TypeVarChar},
	}
	recs := d.qlog.recent()
	ms := func(dur time.Duration) sqltypes.Value {
		return sqltypes.NewDouble(float64(dur) / float64(time.Millisecond))
	}
	rows := make([]sqltypes.Row, 0, len(recs))
	for _, r := range recs {
		st := r.Stats
		if st == nil {
			st = &exec.Stats{}
		}
		rows = append(rows, sqltypes.Row{
			sqltypes.NewBigInt(r.ID),
			sqltypes.NewVarChar(r.SQL),
			sqltypes.NewVarChar(r.Start.Format(time.RFC3339Nano)),
			ms(r.Duration),
			sqltypes.NewBigInt(st.RowsScanned),
			sqltypes.NewBigInt(st.BytesRead),
			sqltypes.NewBigInt(st.RowsEmitted),
			sqltypes.NewBigInt(int64(st.Partitions)),
			sqltypes.NewBigInt(int64(st.Workers)),
			sqltypes.NewDouble(st.Skew()),
			ms(st.Plan),
			ms(st.Scan),
			ms(st.Merge),
			ms(st.Finalize),
			sqltypes.NewBool(r.Slow),
			sqltypes.NewVarChar(r.Err),
			sqltypes.NewBigInt(r.SessionID),
			sqltypes.NewVarChar(r.RemoteAddr),
			sqltypes.NewVarChar(r.TraceID),
		})
	}
	return newSysTable("sys.queries", cols, rows)
}

// sysTraces exposes the tail-sampling trace store, one row per
// retained trace, newest first.
func (d *DB) sysTraces() (*storage.Table, error) {
	cols := []sqltypes.Column{
		{Name: "trace_id", Type: sqltypes.TypeVarChar},
		{Name: "started", Type: sqltypes.TypeVarChar},
		{Name: "duration_ms", Type: sqltypes.TypeDouble},
		{Name: "sql_text", Type: sqltypes.TypeVarChar},
		{Name: "session_id", Type: sqltypes.TypeBigInt},
		{Name: "class", Type: sqltypes.TypeVarChar},
		{Name: "slow", Type: sqltypes.TypeBool},
		{Name: "error", Type: sqltypes.TypeVarChar},
		{Name: "spans", Type: sqltypes.TypeBigInt},
	}
	recs := d.traces.Snapshot()
	rows := make([]sqltypes.Row, 0, len(recs))
	for _, r := range recs {
		rows = append(rows, sqltypes.Row{
			sqltypes.NewVarChar(r.TraceID),
			sqltypes.NewVarChar(r.Start.Format(time.RFC3339Nano)),
			sqltypes.NewDouble(float64(r.Duration) / float64(time.Millisecond)),
			sqltypes.NewVarChar(r.SQL),
			sqltypes.NewBigInt(r.SessionID),
			sqltypes.NewVarChar(r.Class),
			sqltypes.NewBool(r.Slow),
			sqltypes.NewVarChar(r.Err),
			sqltypes.NewBigInt(int64(len(r.Spans))),
		})
	}
	return newSysTable("sys.traces", cols, rows)
}

// sysSpans flattens every retained trace's spans, one row per span;
// parent_span_id reconstructs the tree.
func (d *DB) sysSpans() (*storage.Table, error) {
	cols := []sqltypes.Column{
		{Name: "trace_id", Type: sqltypes.TypeVarChar},
		{Name: "span_id", Type: sqltypes.TypeVarChar},
		{Name: "parent_span_id", Type: sqltypes.TypeVarChar},
		{Name: "name", Type: sqltypes.TypeVarChar},
		{Name: "started", Type: sqltypes.TypeVarChar},
		{Name: "duration_ms", Type: sqltypes.TypeDouble},
		{Name: "rows_processed", Type: sqltypes.TypeBigInt},
		{Name: "bytes", Type: sqltypes.TypeBigInt},
	}
	var rows []sqltypes.Row
	for _, r := range d.traces.Snapshot() {
		for _, sp := range r.Spans {
			rows = append(rows, sqltypes.Row{
				sqltypes.NewVarChar(r.TraceID),
				sqltypes.NewVarChar(sp.SpanID),
				sqltypes.NewVarChar(sp.ParentID),
				sqltypes.NewVarChar(sp.Name),
				sqltypes.NewVarChar(sp.Start.Format(time.RFC3339Nano)),
				sqltypes.NewDouble(float64(sp.Duration) / float64(time.Millisecond)),
				sqltypes.NewBigInt(sp.Rows),
				sqltypes.NewBigInt(sp.Bytes),
			})
		}
	}
	return newSysTable("sys.spans", cols, rows)
}

// sysTables summarizes the catalog: partition and row counts and the
// on-disk footprint of every user table.
func (d *DB) sysTables() (*storage.Table, error) {
	cols := []sqltypes.Column{
		{Name: "name", Type: sqltypes.TypeVarChar},
		{Name: "partitions", Type: sqltypes.TypeBigInt},
		{Name: "num_rows", Type: sqltypes.TypeBigInt},
		{Name: "on_disk", Type: sqltypes.TypeBool},
		{Name: "size_bytes", Type: sqltypes.TypeBigInt},
	}
	var rows []sqltypes.Row
	for _, t := range d.userTables() {
		size, err := t.SizeBytes()
		if err != nil {
			size = 0
		}
		rows = append(rows, sqltypes.Row{
			sqltypes.NewVarChar(t.Name()),
			sqltypes.NewBigInt(int64(t.Partitions())),
			sqltypes.NewBigInt(t.NumRows()),
			sqltypes.NewBool(t.OnDisk()),
			sqltypes.NewBigInt(size),
		})
	}
	return newSysTable("sys.tables", cols, rows)
}

// sysSummaries exposes the incremental n/L/Q summary catalog: one row
// per cached entry with its validity state and hit/rebuild accounting.
func (d *DB) sysSummaries() (*storage.Table, error) {
	cols := []sqltypes.Column{
		{Name: "table_name", Type: sqltypes.TypeVarChar},
		{Name: "columns", Type: sqltypes.TypeVarChar},
		{Name: "matrix_type", Type: sqltypes.TypeVarChar},
		{Name: "state", Type: sqltypes.TypeVarChar},
		{Name: "n", Type: sqltypes.TypeDouble},
		{Name: "covered_rows", Type: sqltypes.TypeBigInt},
		{Name: "epoch", Type: sqltypes.TypeBigInt},
		{Name: "hits", Type: sqltypes.TypeBigInt},
		{Name: "misses", Type: sqltypes.TypeBigInt},
		{Name: "incremental_rows", Type: sqltypes.TypeBigInt},
		{Name: "rebuilds", Type: sqltypes.TypeBigInt},
		{Name: "last_rebuild_ms", Type: sqltypes.TypeDouble},
	}
	infos := d.Summaries()
	rows := make([]sqltypes.Row, 0, len(infos))
	for _, inf := range infos {
		rows = append(rows, sqltypes.Row{
			sqltypes.NewVarChar(inf.Table),
			sqltypes.NewVarChar(strings.Join(inf.Columns, ",")),
			sqltypes.NewVarChar(inf.Matrix.String()),
			sqltypes.NewVarChar(inf.State),
			sqltypes.NewDouble(inf.N),
			sqltypes.NewBigInt(inf.Covered),
			sqltypes.NewBigInt(inf.Epoch),
			sqltypes.NewBigInt(inf.Hits),
			sqltypes.NewBigInt(inf.Misses),
			sqltypes.NewBigInt(inf.IncRows),
			sqltypes.NewBigInt(inf.Rebuilds),
			sqltypes.NewDouble(float64(inf.LastRebuild) / float64(time.Millisecond)),
		})
	}
	return newSysTable("sys.summaries", cols, rows)
}

// sysSegments reports the columnar segment cache, one row per on-disk
// partition: how many rows the sibling .seg file covers (-1 while
// invalidated, pending a lazy rebuild) and its size. In-memory tables
// synthesize blocks from resident rows and report no segments.
func (d *DB) sysSegments() (*storage.Table, error) {
	cols := []sqltypes.Column{
		{Name: "table_name", Type: sqltypes.TypeVarChar},
		{Name: "partition", Type: sqltypes.TypeBigInt},
		{Name: "seg_rows", Type: sqltypes.TypeBigInt},
		{Name: "seg_bytes", Type: sqltypes.TypeBigInt},
		{Name: "fresh", Type: sqltypes.TypeBool},
	}
	var rows []sqltypes.Row
	for _, t := range d.userTables() {
		counts := t.PartitionRowCounts()
		for _, si := range t.Segments() {
			rows = append(rows, sqltypes.Row{
				sqltypes.NewVarChar(t.Name()),
				sqltypes.NewBigInt(int64(si.Partition)),
				sqltypes.NewBigInt(si.Rows),
				sqltypes.NewBigInt(si.Bytes),
				sqltypes.NewBool(si.Rows >= 0 && si.Rows == counts[si.Partition]),
			})
		}
	}
	return newSysTable("sys.segments", cols, rows)
}

// sysPartitions breaks each user table down to per-partition row
// counts, the raw material behind Stats.Skew.
func (d *DB) sysPartitions() (*storage.Table, error) {
	cols := []sqltypes.Column{
		{Name: "table_name", Type: sqltypes.TypeVarChar},
		{Name: "partition", Type: sqltypes.TypeBigInt},
		{Name: "num_rows", Type: sqltypes.TypeBigInt},
	}
	var rows []sqltypes.Row
	for _, t := range d.userTables() {
		for p, n := range t.PartitionRowCounts() {
			rows = append(rows, sqltypes.Row{
				sqltypes.NewVarChar(t.Name()),
				sqltypes.NewBigInt(int64(p)),
				sqltypes.NewBigInt(n),
			})
		}
	}
	return newSysTable("sys.partitions", cols, rows)
}

// userTables snapshots the catalog sorted by name.
func (d *DB) userTables() []*storage.Table {
	d.mu.RLock()
	out := make([]*storage.Table, 0, len(d.tables))
	for _, t := range d.tables {
		out = append(out, t)
	}
	d.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
