package db

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/storage"
)

// The on-disk catalog records table schemas so a database directory
// can be reopened by a later process (the TWM-style CLI relies on
// this). It is a single JSON file rewritten on every DDL operation;
// partition files carry the data.

const catalogFile = "catalog.json"

type catalogDoc struct {
	Tables []catalogTable `json:"tables"`
	Views  []catalogView  `json:"views,omitempty"`
}

type catalogView struct {
	Name string `json:"name"`
	SQL  string `json:"sql"`
}

type catalogTable struct {
	Name       string          `json:"name"`
	Partitions int             `json:"partitions"`
	Columns    []catalogColumn `json:"columns"`
}

type catalogColumn struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// saveCatalog rewrites the catalog file; callers hold d.mu.
func (d *DB) saveCatalog() error {
	if d.opts.Dir == "" {
		return nil
	}
	doc := catalogDoc{}
	names := make([]string, 0, len(d.tables))
	for n := range d.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := d.tables[n]
		ct := catalogTable{Name: n, Partitions: t.Partitions()}
		for _, c := range t.Schema().Columns {
			ct.Columns = append(ct.Columns, catalogColumn{Name: c.Name, Type: c.Type.String()})
		}
		doc.Tables = append(doc.Tables, ct)
	}
	viewNames := make([]string, 0, len(d.views))
	for n := range d.views {
		viewNames = append(viewNames, n)
	}
	sort.Strings(viewNames)
	for _, n := range viewNames {
		doc.Views = append(doc.Views, catalogView{Name: n, SQL: d.views[n].String()})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("db: %w", err)
	}
	tmp := filepath.Join(d.opts.Dir, catalogFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("db: %w", err)
	}
	return os.Rename(tmp, filepath.Join(d.opts.Dir, catalogFile))
}

// loadCatalog attaches the tables recorded in an existing catalog
// file; missing file means a fresh directory.
func (d *DB) loadCatalog() error {
	if d.opts.Dir == "" {
		return nil
	}
	data, err := os.ReadFile(filepath.Join(d.opts.Dir, catalogFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("db: %w", err)
	}
	var doc catalogDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("db: corrupt catalog: %w", err)
	}
	for _, ct := range doc.Tables {
		cols := make([]sqltypes.Column, len(ct.Columns))
		for i, c := range ct.Columns {
			typ, err := sqltypes.ParseType(c.Type)
			if err != nil {
				return fmt.Errorf("db: catalog table %q: %w", ct.Name, err)
			}
			cols[i] = sqltypes.Column{Name: c.Name, Type: typ}
		}
		schema, err := sqltypes.NewSchema(cols...)
		if err != nil {
			return fmt.Errorf("db: catalog table %q: %w", ct.Name, err)
		}
		t, err := storage.OpenTable(ct.Name, schema, d.opts.Dir, ct.Partitions)
		if err != nil {
			return err
		}
		d.tables[ct.Name] = t
	}
	for _, cv := range doc.Views {
		stmt, err := sqlparser.Parse(cv.SQL)
		if err != nil {
			return fmt.Errorf("db: catalog view %q: %w", cv.Name, err)
		}
		sel, ok := stmt.(*sqlparser.Select)
		if !ok {
			return fmt.Errorf("db: catalog view %q is not a SELECT", cv.Name)
		}
		d.views[cv.Name] = sel
	}
	return nil
}
