package db

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/engine/expr"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/udf"
)

func openTest(t *testing.T) *DB {
	t.Helper()
	return Open(Options{Partitions: 4})
}

func mustExec(t *testing.T, d *DB, sql string) {
	t.Helper()
	if _, err := d.Exec(sql); err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
}

func query(t *testing.T, d *DB, sql string) [][]string {
	t.Helper()
	res, err := d.Exec(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	out := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = make([]string, len(r))
		for j, v := range r {
			out[i][j] = v.String()
		}
	}
	return out
}

func loadFixture(t *testing.T, d *DB) {
	t.Helper()
	mustExec(t, d, "CREATE TABLE X (i BIGINT, X1 DOUBLE, X2 DOUBLE, grp VARCHAR)")
	for i := 1; i <= 10; i++ {
		g := "a"
		if i%2 == 0 {
			g = "b"
		}
		mustExec(t, d, fmt.Sprintf("INSERT INTO X VALUES (%d, %d.0, %d.0, '%s')", i, i, i*i, g))
	}
}

func TestCreateInsertSelect(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	rows := query(t, d, "SELECT i, X1 FROM X ORDER BY i")
	if len(rows) != 10 || rows[0][0] != "1" || rows[9][1] != "10" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCreateTableErrors(t *testing.T) {
	d := openTest(t)
	mustExec(t, d, "CREATE TABLE t (a INT)")
	if _, err := d.Exec("CREATE TABLE t (a INT)"); err == nil {
		t.Fatal("duplicate create must fail")
	}
	mustExec(t, d, "CREATE TABLE IF NOT EXISTS t (a INT)")
	if _, err := d.Exec("CREATE TABLE u (a BLOB)"); err == nil {
		t.Fatal("bad type must fail")
	}
	if _, err := d.Exec("DROP TABLE nope"); err == nil {
		t.Fatal("drop missing must fail")
	}
	mustExec(t, d, "DROP TABLE IF EXISTS nope")
	mustExec(t, d, "DROP TABLE t")
	if d.HasTable("t") {
		t.Fatal("table t should be gone")
	}
}

func TestWhereFilter(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	rows := query(t, d, "SELECT i FROM X WHERE X1 > 7.5 ORDER BY i")
	if len(rows) != 3 || rows[0][0] != "8" {
		t.Fatalf("rows = %v", rows)
	}
	rows = query(t, d, "SELECT i FROM X WHERE grp = 'a' AND X1 < 5 ORDER BY i")
	if len(rows) != 2 || rows[0][0] != "1" || rows[1][0] != "3" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAggregates(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	rows := query(t, d, "SELECT count(*), sum(X1), avg(X1), min(X1), max(X1) FROM X")
	want := []string{"10", "55", "5.5", "1", "10"}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	for j, w := range want {
		if rows[0][j] != w {
			t.Fatalf("col %d = %s, want %s (row %v)", j, rows[0][j], w, rows[0])
		}
	}
}

func TestAggregateOverEmptyTable(t *testing.T) {
	d := openTest(t)
	mustExec(t, d, "CREATE TABLE e (a DOUBLE)")
	rows := query(t, d, "SELECT count(*), sum(a) FROM e")
	if len(rows) != 1 || rows[0][0] != "0" || rows[0][1] != "NULL" {
		t.Fatalf("rows = %v", rows)
	}
	// Grouped aggregate over empty input yields no rows.
	rows = query(t, d, "SELECT a, count(*) FROM e GROUP BY a")
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestGroupBy(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	rows := query(t, d, "SELECT grp, count(*), sum(X1) FROM X GROUP BY grp ORDER BY grp")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "a" || rows[0][1] != "5" || rows[0][2] != "25" {
		t.Fatalf("group a = %v", rows[0])
	}
	if rows[1][0] != "b" || rows[1][1] != "5" || rows[1][2] != "30" {
		t.Fatalf("group b = %v", rows[1])
	}
}

func TestGroupByExpression(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	// The paper's Table 5 workload: GROUP BY mod(i, k).
	rows := query(t, d, "SELECT i % 3, count(*) FROM X GROUP BY i % 3 ORDER BY 1")
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	// i in 1..10: mod 0 → {3,6,9}, mod 1 → {1,4,7,10}, mod 2 → {2,5,8}
	if rows[0][1] != "3" || rows[1][1] != "4" || rows[2][1] != "3" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestExpressionOverAggregates(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	// Correlation-style arithmetic over sums.
	rows := query(t, d, "SELECT sqrt(count(*) * sum(X1*X1) - sum(X1)*sum(X1)) FROM X")
	n, sx, sxx := 10.0, 55.0, 385.0
	want := math.Sqrt(n*sxx - sx*sx)
	got := parseF(t, rows[0][0])
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %g want %g", got, want)
	}
}

func TestNonGroupedColumnRejected(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	if _, err := d.Exec("SELECT grp, sum(X1) FROM X"); err == nil {
		t.Fatal("naked column with aggregate must fail")
	}
	if _, err := d.Exec("SELECT i, grp FROM X GROUP BY grp"); err == nil {
		t.Fatal("non-grouped column must fail")
	}
}

func TestHaving(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	// Keep only the group whose sum exceeds 26.
	rows := query(t, d, "SELECT grp, sum(X1) FROM X GROUP BY grp HAVING sum(X1) > 26 ORDER BY grp")
	if len(rows) != 1 || rows[0][0] != "b" || rows[0][1] != "30" {
		t.Fatalf("rows = %v", rows)
	}
	// HAVING on a group key expression.
	rows = query(t, d, "SELECT grp, count(*) FROM X GROUP BY grp HAVING grp = 'a'")
	if len(rows) != 1 || rows[0][0] != "a" {
		t.Fatalf("rows = %v", rows)
	}
	// HAVING referencing an aggregate absent from the select list.
	rows = query(t, d, "SELECT grp FROM X GROUP BY grp HAVING max(X2) >= 100")
	if len(rows) != 1 || rows[0][0] != "b" { // max X2 = 100 at i=10 (grp b)
		t.Fatalf("rows = %v", rows)
	}
	// Global aggregate with HAVING.
	rows = query(t, d, "SELECT sum(X1) FROM X HAVING count(*) > 100")
	if len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
	// Errors: HAVING without aggregation, or naked columns inside it.
	if _, err := d.Exec("SELECT i FROM X HAVING i > 1"); err == nil {
		t.Fatal("HAVING without aggregates must fail")
	}
	if _, err := d.Exec("SELECT grp, count(*) FROM X GROUP BY grp HAVING i > 1"); err == nil {
		t.Fatal("non-grouped column in HAVING must fail")
	}
}

func TestCountDistinct(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	rows := query(t, d, "SELECT count(DISTINCT grp), count(DISTINCT i % 2) FROM X")
	if rows[0][0] != "2" || rows[0][1] != "2" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCrossJoin(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	mustExec(t, d, "CREATE TABLE beta (b0 DOUBLE, b1 DOUBLE)")
	mustExec(t, d, "INSERT INTO beta VALUES (100.0, 2.0)")
	// The paper's regression-scoring shape: X CROSS JOIN BETA.
	rows := query(t, d, "SELECT i, b0 + b1 * X1 AS yhat FROM X CROSS JOIN beta ORDER BY i")
	if len(rows) != 10 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][1] != "102" || rows[9][1] != "120" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCrossJoinMultipleAliases(t *testing.T) {
	d := openTest(t)
	mustExec(t, d, "CREATE TABLE C (j BIGINT, v DOUBLE)")
	mustExec(t, d, "INSERT INTO C VALUES (1, 10.0), (2, 20.0)")
	mustExec(t, d, "CREATE TABLE P (i BIGINT, x DOUBLE)")
	mustExec(t, d, "INSERT INTO P VALUES (1, 1.0)")
	// Alias the same small table twice, the paper's k-fold cross join.
	rows := query(t, d, `SELECT i, c1.v, c2.v FROM P CROSS JOIN C c1 CROSS JOIN C c2
	                     WHERE c1.j = 1 AND c2.j = 2`)
	if len(rows) != 1 || rows[0][1] != "10" || rows[0][2] != "20" {
		t.Fatalf("rows = %v", rows)
	}
	if _, err := d.Exec("SELECT * FROM C, C"); err == nil {
		t.Fatal("duplicate unaliased table must fail")
	}
}

func TestSelectStar(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	rows := query(t, d, "SELECT * FROM X WHERE i = 3")
	if len(rows) != 1 || len(rows[0]) != 4 || rows[0][3] != "a" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	rows := query(t, d, "SELECT i FROM X ORDER BY X2 DESC LIMIT 3")
	if len(rows) != 3 || rows[0][0] != "10" || rows[2][0] != "8" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestOrderByExpressionAndHiddenKeys(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	// ORDER BY an expression over a column not in the output: the
	// executor computes it as a hidden trailing column and strips it.
	rows := query(t, d, "SELECT grp FROM X ORDER BY X2 - X1 DESC LIMIT 2")
	if len(rows) != 2 || rows[0][0] != "b" { // i=10 (grp b) has max X2-X1
		t.Fatalf("rows = %v", rows)
	}
	if len(rows[0]) != 1 {
		t.Fatalf("hidden order column leaked: %v", rows[0])
	}
	// ORDER BY an output alias expression.
	rows = query(t, d, "SELECT X1 * 2 AS dbl FROM X ORDER BY dbl DESC LIMIT 1")
	if rows[0][0] != "20" {
		t.Fatalf("rows = %v", rows)
	}
	// ORDER BY ordinal out of range errors.
	if _, err := d.Exec("SELECT i FROM X ORDER BY 5"); err == nil {
		t.Fatal("bad ordinal must fail")
	}
	if _, err := d.Exec("SELECT i FROM X ORDER BY nosuch"); err == nil {
		t.Fatal("unknown order key must fail")
	}
}

func TestOrderByOnAggregateOutput(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	rows := query(t, d, "SELECT grp, sum(X1) AS s FROM X GROUP BY grp ORDER BY s DESC")
	if rows[0][0] != "b" || rows[1][0] != "a" {
		t.Fatalf("rows = %v", rows)
	}
	// Hidden ORDER BY key over a source column combined with grouping
	// is rejected (it is not in the output and not grouped).
	if _, err := d.Exec("SELECT grp, sum(X1) FROM X GROUP BY grp ORDER BY i"); err == nil {
		t.Fatal("ungrouped hidden order key must fail")
	}
}

func TestInsertSelect(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	mustExec(t, d, "CREATE TABLE Y (i BIGINT, v DOUBLE)")
	res, err := d.Exec("INSERT INTO Y SELECT i, X1 * 2 FROM X WHERE i <= 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 5 {
		t.Fatalf("affected = %d", res.Affected)
	}
	rows := query(t, d, "SELECT sum(v) FROM Y")
	if rows[0][0] != "30" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestInsertColumnList(t *testing.T) {
	d := openTest(t)
	mustExec(t, d, "CREATE TABLE t (a DOUBLE, b DOUBLE, c VARCHAR)")
	mustExec(t, d, "INSERT INTO t (c, a) VALUES ('x', 1.5)")
	rows := query(t, d, "SELECT a, b, c FROM t")
	if rows[0][0] != "1.5" || rows[0][1] != "NULL" || rows[0][2] != "x" {
		t.Fatalf("rows = %v", rows)
	}
	if _, err := d.Exec("INSERT INTO t (nope) VALUES (1)"); err == nil {
		t.Fatal("bad column must fail")
	}
	if _, err := d.Exec("INSERT INTO t (a, b) VALUES (1)"); err == nil {
		t.Fatal("arity mismatch must fail")
	}
}

func TestConstSelect(t *testing.T) {
	d := openTest(t)
	rows := query(t, d, "SELECT 1 + 1, 'x' || 'y', sqrt(9)")
	if rows[0][0] != "2" || rows[0][1] != "xy" || rows[0][2] != "3" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCaseInSelect(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	// Binary-flag derivation, §3.6 of the paper.
	rows := query(t, d, "SELECT sum(CASE WHEN grp = 'a' THEN 1 ELSE 0 END) FROM X")
	if rows[0][0] != "5" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestScalarUDFInQuery(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	err := d.Scalars().Register(expr.FuncDef{
		Name: "square", MinArgs: 1, MaxArgs: 1,
		Fn: func(args []sqltypes.Value) (sqltypes.Value, error) {
			if args[0].IsNull() {
				return sqltypes.Null, nil
			}
			f, _ := args[0].Float()
			return sqltypes.NewDouble(f * f), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := query(t, d, "SELECT square(X1) FROM X WHERE i = 4")
	if rows[0][0] != "16" {
		t.Fatalf("rows = %v", rows)
	}
}

// sumPairAgg is a 2-argument aggregate UDF used to exercise the
// aggregate-UDF path end to end (including packed-string results).
type sumPairAgg struct{}

type sumPairState struct{ a, b float64 }

func (sumPairAgg) Name() string { return "sumpair" }
func (sumPairAgg) CheckArgs(n int) error {
	if n != 2 {
		return fmt.Errorf("sumpair expects 2 args")
	}
	return nil
}
func (sumPairAgg) Init(h *udf.Heap) (udf.State, error) {
	if err := h.Alloc(16); err != nil {
		return nil, err
	}
	return &sumPairState{}, nil
}
func (sumPairAgg) Accumulate(s udf.State, args []sqltypes.Value) error {
	st := s.(*sumPairState)
	if args[0].IsNull() || args[1].IsNull() {
		return nil
	}
	a, _ := args[0].Float()
	b, _ := args[1].Float()
	st.a += a
	st.b += b
	return nil
}
func (sumPairAgg) Merge(dst, src udf.State) error {
	d, s := dst.(*sumPairState), src.(*sumPairState)
	d.a += s.a
	d.b += s.b
	return nil
}
func (sumPairAgg) Finalize(s udf.State) (sqltypes.Value, error) {
	st := s.(*sumPairState)
	return sqltypes.NewVarChar(udf.PackFloats([]float64{st.a, st.b})), nil
}

func TestAggregateUDF(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	if err := d.Aggregates().Register(sumPairAgg{}); err != nil {
		t.Fatal(err)
	}
	rows := query(t, d, "SELECT sumpair(X1, X2) FROM X")
	vals, err := udf.UnpackFloats(rows[0][0])
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 55 || vals[1] != 385 {
		t.Fatalf("vals = %v", vals)
	}
	// Grouped aggregate UDF.
	res := query(t, d, "SELECT grp, sumpair(X1, X2) FROM X GROUP BY grp ORDER BY grp")
	if len(res) != 2 {
		t.Fatalf("res = %v", res)
	}
	va, _ := udf.UnpackFloats(res[0][1])
	if va[0] != 25 { // odd i sum
		t.Fatalf("group a = %v", va)
	}
	// Bad arity is caught at plan time.
	if _, err := d.Exec("SELECT sumpair(X1) FROM X"); err == nil {
		t.Fatal("bad arity must fail")
	}
}

func TestQueryStream(t *testing.T) {
	d := openTest(t)
	loadFixture(t, d)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	var got []float64
	_, err := d.QueryStream("SELECT X1 * 10 FROM X", func(r sqltypes.Row) error {
		<-mu
		defer func() { mu <- struct{}{} }()
		got = append(got, r[0].MustFloat())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("streamed %d rows", len(got))
	}
	sort.Float64s(got)
	if got[0] != 10 || got[9] != 100 {
		t.Fatalf("got = %v", got)
	}
	if _, err := d.QueryStream("SELECT i FROM X ORDER BY i", func(sqltypes.Row) error { return nil }); err == nil {
		t.Fatal("ORDER BY must be rejected in streaming mode")
	}
}

func TestExecScript(t *testing.T) {
	d := openTest(t)
	res, err := d.ExecScript(`
		CREATE TABLE s (a DOUBLE);
		INSERT INTO s VALUES (1), (2), (3);
		SELECT sum(a) FROM s;`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Value()
	if err != nil || v.MustFloat() != 6 {
		t.Fatalf("value = %v, %v", v, err)
	}
}

func TestWidePaperQuery(t *testing.T) {
	// The paper's one-scan n, L, Q query at d=4 with NULL padding.
	d := openTest(t)
	mustExec(t, d, "CREATE TABLE W (X1 DOUBLE, X2 DOUBLE, X3 DOUBLE, X4 DOUBLE)")
	mustExec(t, d, "INSERT INTO W VALUES (1,2,3,4), (5,6,7,8), (9,10,11,12)")
	var b strings.Builder
	b.WriteString("SELECT sum(1.0)")
	for a := 1; a <= 4; a++ {
		fmt.Fprintf(&b, ", sum(X%d)", a)
	}
	for a := 1; a <= 4; a++ {
		for c := 1; c <= 4; c++ {
			if c <= a {
				fmt.Fprintf(&b, ", sum(X%d * X%d)", a, c)
			} else {
				b.WriteString(", null")
			}
		}
	}
	b.WriteString(" FROM W")
	rows := query(t, d, b.String())
	if len(rows) != 1 || len(rows[0]) != 1+4+16 {
		t.Fatalf("shape = %d×%d", len(rows), len(rows[0]))
	}
	if rows[0][0] != "3" { // n
		t.Fatalf("n = %s", rows[0][0])
	}
	if rows[0][1] != "15" { // L1 = 1+5+9
		t.Fatalf("L1 = %s", rows[0][1])
	}
	// Q11 = 1 + 25 + 81 = 107
	if rows[0][5] != "107" {
		t.Fatalf("Q11 = %s", rows[0][5])
	}
	// Upper triangle padded with NULL.
	if rows[0][6] != "NULL" {
		t.Fatalf("Q12 = %s", rows[0][6])
	}
}

func TestResultValue(t *testing.T) {
	d := openTest(t)
	res, err := d.Exec("SELECT 42")
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Value()
	if err != nil || v.Int() != 42 {
		t.Fatalf("%v %v", v, err)
	}
	res2, _ := d.Exec("SELECT 1, 2")
	if _, err := res2.Value(); err == nil {
		t.Fatal("Value on wide result must fail")
	}
}

func TestOnDiskDatabase(t *testing.T) {
	d := Open(Options{Dir: t.TempDir(), Partitions: 3})
	mustExec(t, d, "CREATE TABLE t (a DOUBLE)")
	mustExec(t, d, "INSERT INTO t VALUES (1), (2), (3), (4), (5)")
	rows := query(t, d, "SELECT sum(a), count(*) FROM t")
	if rows[0][0] != "15" || rows[0][1] != "5" {
		t.Fatalf("rows = %v", rows)
	}
	tab, err := d.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if !tab.OnDisk() {
		t.Fatal("table should be on disk")
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var f float64
	if _, err := fmt.Sscanf(s, "%g", &f); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return f
}
