// Package db is the embedded database facade: it owns the catalog,
// the function registries and statement dispatch. It plays the role of
// the Teradata DBMS in the reproduction — the thing TWM connects to,
// creates UDFs in, and sends generated SQL to.
package db

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine/exec"
	"repro/internal/engine/expr"
	"repro/internal/engine/sema"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/storage"
	"repro/internal/engine/summary"
	"repro/internal/engine/trace"
	"repro/internal/engine/udf"
)

// Options configure a database instance.
type Options struct {
	// Dir is the directory for table partition files. Empty means all
	// tables are in-memory (tests); non-empty matches the paper's
	// uncached on-disk scans.
	Dir string
	// Partitions is the per-table partition count; it models the
	// parallel Teradata threads (the paper used 20). Zero selects
	// storage.DefaultPartitions.
	Partitions int
	// Workers bounds the executor's scan worker pool independently of
	// the partition count; <= 0 runs one worker per partition.
	Workers int
	// Columnar opts eligible scans into the block-at-a-time execution
	// path: n/L/Q summary rebuilds and simple projections run over
	// column segments with vector kernels, falling back to the row
	// path wherever that is not provably equivalent. Results (model
	// coefficients included) are identical in both modes.
	Columnar bool
	// SlowQuery is the duration at or above which a statement is
	// flagged slow in sys.queries and counted in
	// engine_slow_queries_total. Zero selects DefaultSlowQuery.
	SlowQuery time.Duration
	// TraceSampleN keeps 1-in-N healthy traces in the tail-sampling
	// trace store (error and slow traces are always kept). Zero selects
	// trace.DefaultSampleN; 1 keeps every trace.
	TraceSampleN int
	// TraceCap bounds each retention class of the trace store. Zero
	// selects trace.DefaultClassCap.
	TraceCap int
	// Logger receives the database's structured log lines (today: the
	// slow-query log). Nil selects slog.Default at Open time.
	Logger *slog.Logger
}

// DB is an embedded database instance.
type DB struct {
	opts   Options
	funcs  *expr.Registry
	aggs   *udf.Registry
	mu     sync.RWMutex
	tables map[string]*storage.Table
	views  map[string]*sqlparser.Select

	qlog queryLog

	// epoch is the catalog epoch: bumped by every CREATE/DROP of a
	// table or view. Prepared plans record the epoch they were built
	// under and refuse to run (ErrPlanStale) once it moves, so a plan
	// can never execute against a schema it was not planned for.
	epoch atomic.Int64

	// plans is the LRU plan cache unprepared SELECT traffic reads
	// through; preps tracks every live prepared statement (explicit or
	// cache-owned) for the sys.prepared virtual table.
	plans  *planCache
	prepMu sync.Mutex
	prepID int64
	preps  map[int64]*Prepared

	// sums is the incremental n/L/Q summary catalog: model builders go
	// through it so warm rebuilds need zero partition scans.
	sums *summary.Catalog

	// sysExt holds instance-specific virtual tables registered under
	// sys. (e.g. the serving layer's sys.sessions).
	sysMu  sync.RWMutex
	sysExt map[string]SysTableFunc

	// traces is the instance's tail-sampling trace store; every
	// finished statement is observed into it from noteQuery.
	traces *trace.Store
	logger *slog.Logger
}

// Open creates a fresh database over an empty (or memory-only)
// location. It never reads an existing catalog; use OpenDir to
// reattach a directory a previous process populated.
func Open(opts Options) *DB {
	if opts.Partitions <= 0 {
		opts.Partitions = storage.DefaultPartitions
	}
	if opts.SlowQuery <= 0 {
		opts.SlowQuery = DefaultSlowQuery
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	return &DB{
		opts:   opts,
		funcs:  expr.NewRegistry(),
		aggs:   udf.NewRegistry(),
		tables: make(map[string]*storage.Table),
		views:  make(map[string]*sqlparser.Select),
		plans:  newPlanCache(defaultPlanCacheSize),
		preps:  make(map[int64]*Prepared),
		sums:   summary.NewCatalog(opts.Workers, opts.Columnar),
		traces: trace.NewStore(opts.TraceSampleN, opts.TraceCap),
		logger: logger,
	}
}

// OpenDir creates a database over a directory, reattaching any tables
// recorded in its catalog file by a previous process.
func OpenDir(opts Options) (*DB, error) {
	d := Open(opts)
	if err := d.loadCatalog(); err != nil {
		return nil, err
	}
	return d, nil
}

// Partitions returns the configured per-table partition count.
func (d *DB) Partitions() int { return d.opts.Partitions }

// Scalars exposes the scalar function registry, where scalar UDFs are
// installed (the engine equivalent of CREATE FUNCTION).
func (d *DB) Scalars() *expr.Registry { return d.funcs }

// Aggregates exposes the aggregate UDF registry.
func (d *DB) Aggregates() *udf.Registry { return d.aggs }

// Table implements exec.Catalog. Names under the reserved "sys."
// prefix resolve to virtual system tables materialized on demand; the
// interception happens before d.mu is taken because synthesizing
// sys.tables itself reads the catalog under the same lock.
func (d *DB) Table(name string) (*storage.Table, error) {
	key := strings.ToLower(name)
	if strings.HasPrefix(key, sysPrefix) {
		return d.sysTable(key)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[key]
	if !ok {
		return nil, fmt.Errorf("db: table %q does not exist", name)
	}
	return t, nil
}

// TableSchema implements sema.Catalog: the schema-only view the
// semantic analyzer resolves column references against.
func (d *DB) TableSchema(name string) (*sqltypes.Schema, error) {
	t, err := d.Table(name)
	if err != nil {
		return nil, err
	}
	return t.Schema(), nil
}

// HasTable reports whether the table exists.
func (d *DB) HasTable(name string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.tables[strings.ToLower(name)]
	return ok
}

// TableNames returns all table names (lower-cased), for the shell.
func (d *DB) TableNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.tables))
	for k := range d.tables {
		out = append(out, k)
	}
	return out
}

// CreateTable creates a table from a schema directly (bypassing SQL);
// bulk loaders and generators use this.
func (d *DB) CreateTable(name string, schema *sqltypes.Schema) (*storage.Table, error) {
	key := strings.ToLower(name)
	if strings.HasPrefix(key, sysPrefix) {
		return nil, fmt.Errorf("db: %q is reserved for system tables", name)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, exists := d.tables[key]; exists {
		return nil, fmt.Errorf("db: table %q already exists", name)
	}
	t, err := storage.NewTable(key, schema, d.opts.Dir, d.opts.Partitions)
	if err != nil {
		return nil, err
	}
	d.tables[key] = t
	if err := d.saveCatalog(); err != nil {
		delete(d.tables, key)
		return nil, err
	}
	d.epoch.Add(1)
	return t, nil
}

// DropTable removes a table and its files.
func (d *DB) DropTable(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := strings.ToLower(name)
	t, ok := d.tables[key]
	if !ok {
		return fmt.Errorf("db: table %q does not exist", name)
	}
	delete(d.tables, key)
	if err := d.saveCatalog(); err != nil {
		return err
	}
	d.epoch.Add(1)
	d.sums.DropTable(key)
	return t.Drop()
}

// Epoch returns the current catalog epoch (see DB.epoch).
func (d *DB) Epoch() int64 { return d.epoch.Load() }

func (d *DB) env() *exec.Env {
	return &exec.Env{Catalog: d, Funcs: d.funcs, Aggs: d.aggs, Workers: d.opts.Workers, Columnar: d.opts.Columnar}
}

// LastStats returns the execution statistics of the most recent
// statement that performed a scan (nil before any such statement).
// Shells and benchmarks read it after Exec to report rows scanned,
// bytes read, partition skew and phase times. It is a view over the
// recent-query ring, so INSERT ... SELECT and streamed queries are
// covered like plain SELECTs.
func (d *DB) LastStats() *exec.Stats { return d.qlog.lastStats() }

// Exec parses and runs one SQL statement.
func (d *DB) Exec(sql string) (*exec.Result, error) {
	return d.ExecContext(context.Background(), sql)
}

// ExecContext parses and runs one SQL statement; cancelling ctx stops
// in-flight partition scans between rows. Parameter-free SELECT text
// reads through the LRU plan cache: a hit skips parse, sema, view
// expansion and compilation entirely.
func (d *DB) ExecContext(ctx context.Context, sql string) (*exec.Result, error) {
	if p := d.plans.lookup(sql, d.epoch.Load()); p != nil {
		res, err := p.ExecuteContext(ctx)
		if !errors.Is(err, ErrPlanStale) {
			return res, err
		}
		// Lost a race with DDL between lookup and execute: re-plan below.
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	if sel, ok := stmt.(*sqlparser.Select); ok && sqlparser.CountParams(sel) == 0 {
		if p, perr := d.prepareParsed(sql, sel, true); perr == nil {
			d.plans.add(p)
			res, err := p.ExecuteContext(ctx)
			if !errors.Is(err, ErrPlanStale) {
				return res, err
			}
		}
		// Prepare errors fall through to the ad-hoc path so the failure
		// surfaces with the same message and is query-ring-logged.
	}
	return d.run(ctx, sql, stmt)
}

// ExecScript runs a semicolon-separated statement sequence, returning
// the last result.
func (d *DB) ExecScript(sql string) (*exec.Result, error) {
	return d.ExecScriptContext(context.Background(), sql)
}

// ExecScriptContext is ExecScript under a context; each statement is
// dispatched (and recorded in the query ring) individually, and
// cancelling ctx stops between and within statements.
func (d *DB) ExecScriptContext(ctx context.Context, sql string) (*exec.Result, error) {
	stmts, err := sqlparser.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	var res *exec.Result
	for _, s := range stmts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if res, err = d.RunContext(ctx, s); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Run executes a parsed statement.
func (d *DB) Run(stmt sqlparser.Statement) (*exec.Result, error) {
	return d.RunContext(context.Background(), stmt)
}

// RunContext executes a parsed statement under a context.
func (d *DB) RunContext(ctx context.Context, stmt sqlparser.Statement) (*exec.Result, error) {
	return d.run(ctx, stmtText(stmt), stmt)
}

// run dispatches a statement and records it in the recent-query ring.
func (d *DB) run(ctx context.Context, sql string, stmt sqlparser.Statement) (*exec.Result, error) {
	start := time.Now()
	res, err := d.runContext(ctx, stmt)
	var st *exec.Stats
	if res != nil {
		st = res.Stats
	}
	d.noteQuery(ctx, sql, start, st, err)
	return res, err
}

// stmtText renders a pre-parsed statement for the query log: the
// original SQL slice when the parser recorded one, otherwise SELECTs
// print back as SQL and remaining statement kinds as a short tag
// (synthetic statements built by planners or tests have no source).
func stmtText(stmt sqlparser.Statement) string {
	if src := sqlparser.StatementSource(stmt); src != "" {
		return src
	}
	if s, ok := stmt.(*sqlparser.Select); ok {
		return s.String()
	}
	return fmt.Sprintf("<%s>", strings.TrimPrefix(fmt.Sprintf("%T", stmt), "*sqlparser."))
}

func (d *DB) runContext(ctx context.Context, stmt sqlparser.Statement) (*exec.Result, error) {
	switch st := stmt.(type) {
	case *sqlparser.Select:
		return d.runSelectWithViews(ctx, st)
	case *sqlparser.Insert:
		if st.Query != nil {
			expanded, err := d.expandViews(st.Query, 0)
			if err != nil {
				return nil, err
			}
			clone := *st
			clone.Query = expanded
			return exec.Insert(ctx, &clone, d.env())
		}
		return exec.Insert(ctx, st, d.env())
	case *sqlparser.CreateTable:
		return d.runCreate(st)
	case *sqlparser.DropTable:
		return d.runDrop(st)
	case *sqlparser.CreateView:
		if err := d.CreateView(st.Name, st.Query); err != nil {
			return nil, err
		}
		return &exec.Result{}, nil
	case *sqlparser.DropView:
		if st.IfExists && !d.HasView(st.Name) {
			return &exec.Result{}, nil
		}
		if err := d.DropView(st.Name); err != nil {
			return nil, err
		}
		return &exec.Result{}, nil
	default:
		return nil, fmt.Errorf("db: unsupported statement %T", stmt)
	}
}

// QueryStream parses a SELECT and streams its rows to sink; used for
// scoring large data sets without materializing them.
func (d *DB) QueryStream(sql string, sink exec.RowSink) (*sqltypes.Schema, error) {
	schema, _, err := d.QueryStreamContext(context.Background(), sql, sink)
	return schema, err
}

// QueryStreamContext is QueryStream under a context; cancelling ctx
// stops the partition scans between rows. It also returns the scan's
// execution statistics so callers streaming to a remote client can
// report them without racing on LastStats.
func (d *DB) QueryStreamContext(ctx context.Context, sql string, sink exec.RowSink) (*sqltypes.Schema, *exec.Stats, error) {
	if p := d.plans.lookup(sql, d.epoch.Load()); p != nil && p.Streamable() {
		schema, stats, err := p.ExecuteStreamContext(ctx, sink)
		if !errors.Is(err, ErrPlanStale) {
			return schema, stats, err
		}
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := stmt.(*sqlparser.Select)
	if !ok {
		return nil, nil, fmt.Errorf("db: QueryStream requires a SELECT")
	}
	if sqlparser.CountParams(sel) == 0 {
		if p, perr := d.prepareParsed(sql, sel, true); perr == nil {
			d.plans.add(p)
			if p.Streamable() {
				schema, stats, err := p.ExecuteStreamContext(ctx, sink)
				if !errors.Is(err, ErrPlanStale) {
					return schema, stats, err
				}
			}
		}
	}
	expanded, err := d.expandViews(sel, 0)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	schema, stats, err := exec.SelectStream(ctx, expanded, d.env(), sink)
	d.noteQuery(ctx, sql, start, stats, err)
	return schema, stats, err
}

func (d *DB) runCreate(st *sqlparser.CreateTable) (*exec.Result, error) {
	if st.IfNotExists && d.HasTable(st.Name) {
		return &exec.Result{}, nil
	}
	// Same env constructor as the executor's internal checks, so the
	// catalog/UDF view sema sees cannot drift from execution's.
	if err := sema.CheckStatement(st, exec.SemaEnv(d.env())); err != nil {
		return nil, err
	}
	cols := make([]sqltypes.Column, len(st.Columns))
	for i, c := range st.Columns {
		t, err := sqltypes.ParseType(c.Type)
		if err != nil {
			return nil, err
		}
		cols[i] = sqltypes.Column{Name: c.Name, Type: t}
	}
	schema, err := sqltypes.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	if _, err := d.CreateTable(st.Name, schema); err != nil {
		return nil, err
	}
	return &exec.Result{}, nil
}

func (d *DB) runDrop(st *sqlparser.DropTable) (*exec.Result, error) {
	if st.IfExists && !d.HasTable(st.Name) {
		return &exec.Result{}, nil
	}
	if err := d.DropTable(st.Name); err != nil {
		return nil, err
	}
	return &exec.Result{}, nil
}

// Close drops nothing but exists for symmetry with database APIs;
// on-disk tables persist until dropped.
func (d *DB) Close() error { return nil }
