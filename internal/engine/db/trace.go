package db

import (
	"context"
	"strings"
	"time"

	"repro/internal/engine/exec"
	"repro/internal/engine/trace"
)

// Traces returns the instance's tail-sampling trace store. sys.traces,
// sys.spans and /debug/traces are views over it; the serving layer
// attaches its session/server spans through it.
func (d *DB) Traces() *trace.Store { return d.traces }

// stampTrace assigns a finished statement its trace identity: it
// resolves the SpanContext (caller-provided via trace.NewContext — the
// serving layer's adopted client trace — or a fresh root for
// in-process statements), stamps the stats span tree with span IDs,
// and flattens the tree into the store's parent-pointer records.
func (d *DB) stampTrace(ctx context.Context, start time.Time, dur time.Duration, st *exec.Stats) (tid string, spans []trace.SpanRecord) {
	sc, fromCaller := trace.FromContext(ctx)
	if !fromCaller {
		sc.TraceID = trace.NewTraceID()
	}
	tid = sc.TraceID.String()
	parent := ""
	if fromCaller && !sc.SpanID.IsZero() {
		parent = sc.SpanID.String()
	}
	if st != nil {
		st.TraceID = tid
		if st.Root != nil {
			stampSpans(st.Root)
			return tid, flattenSpans(st.Root, parent, nil)
		}
	}
	// DDL and failed statements carry no executor span tree; synthesize
	// the statement span so the trace still renders (and an error trace
	// is never invisible).
	return tid, []trace.SpanRecord{{
		SpanID:   trace.NewSpanID().String(),
		ParentID: parent,
		Name:     "statement",
		Start:    start,
		Duration: dur,
	}}
}

// stampSpans assigns fresh span IDs throughout a finished tree. Spans
// already stamped (a tree re-observed through the query ring) keep
// their IDs.
func stampSpans(sp *exec.Span) {
	if sp.ID == "" {
		sp.ID = trace.NewSpanID().String()
	}
	for _, c := range sp.Children {
		stampSpans(c)
	}
}

// flattenSpans converts a span tree into the store's parent-pointer
// form, depth-first.
func flattenSpans(sp *exec.Span, parent string, out []trace.SpanRecord) []trace.SpanRecord {
	out = append(out, trace.SpanRecord{
		SpanID:   sp.ID,
		ParentID: parent,
		Name:     sp.Name,
		Start:    sp.Start,
		Duration: sp.Duration(),
		Rows:     sp.Rows,
		Bytes:    sp.Bytes,
	})
	for _, c := range sp.Children {
		out = flattenSpans(c, sp.ID, out)
	}
	return out
}

// statementKind is a statement's leading keyword, lowercased — the
// label the slow-query log carries ("select", "insert", "create", ...).
func statementKind(sql string) string {
	f := strings.Fields(sql)
	if len(f) == 0 {
		return "unknown"
	}
	kind := strings.ToLower(strings.Trim(f[0], "(;"))
	if kind == "" {
		return "unknown"
	}
	return kind
}
