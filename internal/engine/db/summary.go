package db

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/summary"
)

// SummaryNLQ returns the incrementally maintained n/L/Q summary of the
// named base table over cols (nil selects every DOUBLE column), going
// through the summary catalog: a warm entry is served in O(d²) with
// zero partition scans, a cold or stale one is rebuilt with one
// parallel scan and installed for subsequent reads. hit reports which
// path served the call. The returned NLQ is the caller's to mutate.
//
// Virtual sys. tables are rejected — they are materialized fresh per
// scan, so a summary over one can never be warm.
func (d *DB) SummaryNLQ(ctx context.Context, table string, cols []string, mt core.MatrixType) (s *core.NLQ, hit bool, err error) {
	if strings.HasPrefix(strings.ToLower(table), sysPrefix) {
		return nil, false, fmt.Errorf("db: summaries are not maintained for system table %q", table)
	}
	t, err := d.Table(table)
	if err != nil {
		return nil, false, err
	}
	if len(cols) == 0 {
		for _, c := range t.Schema().Columns {
			if c.Type == sqltypes.TypeDouble {
				cols = append(cols, c.Name)
			}
		}
		if len(cols) == 0 {
			return nil, false, fmt.Errorf("db: table %q has no DOUBLE columns to summarize", table)
		}
	}
	return d.sums.NLQ(ctx, t, cols, mt)
}

// InvalidateSummaries marks every cached summary of the named table
// cold, forcing the next read of each through the rebuild scan. The
// bench harness uses it to re-measure cold builds.
func (d *DB) InvalidateSummaries(table string) { d.sums.Invalidate(table) }

// Summaries snapshots the summary catalog; sys.summaries serves it.
func (d *DB) Summaries() []summary.Info { return d.sums.Snapshot() }
