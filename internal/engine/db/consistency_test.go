package db

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/engine/sqltypes"
)

// TestRandomizedAggregateConsistency cross-checks the engine's
// grouped-aggregate results against a straightforward in-memory
// reference over randomized data — a property test for the whole
// parse→plan→parallel-scan→merge pipeline.
func TestRandomizedAggregateConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := Open(Options{Partitions: 1 + rng.Intn(6)})
		mustExec(t, d, "CREATE TABLE t (g BIGINT, a DOUBLE)")
		n := 30 + rng.Intn(200)
		groups := 1 + rng.Intn(5)
		type agg struct {
			count    int
			sum      float64
			min, max float64
		}
		ref := make(map[int64]*agg)
		tab, err := d.Table("t")
		if err != nil {
			t.Fatal(err)
		}
		bl, err := tab.NewBulkLoader()
		if err != nil {
			t.Fatal(err)
		}
		threshold := rng.NormFloat64() * 10
		for i := 0; i < n; i++ {
			g := int64(rng.Intn(groups))
			a := rng.NormFloat64() * 20
			if err := bl.Add(row(g, a, "")); err != nil {
				t.Fatal(err)
			}
			if a > threshold {
				r, ok := ref[g]
				if !ok {
					r = &agg{min: math.Inf(1), max: math.Inf(-1)}
					ref[g] = r
				}
				r.count++
				r.sum += a
				r.min = math.Min(r.min, a)
				r.max = math.Max(r.max, a)
			}
		}
		if err := bl.Close(); err != nil {
			t.Fatal(err)
		}
		sql := fmt.Sprintf(
			"SELECT g, count(*), sum(a), min(a), max(a) FROM t WHERE a > %g GROUP BY g", threshold)
		res, err := d.Exec(sql)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(ref) {
			return false
		}
		for _, r := range res.Rows {
			want, ok := ref[r[0].Int()]
			if !ok {
				return false
			}
			if r[1].Int() != int64(want.count) {
				return false
			}
			sum, _ := r[2].Float()
			mn, _ := r[3].Float()
			mx, _ := r[4].Float()
			scale := math.Max(1, math.Abs(want.sum))
			if math.Abs(sum-want.sum) > 1e-9*scale || mn != want.min || mx != want.max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func row(g int64, a float64, _ string) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewBigInt(g), sqltypes.NewDouble(a)}
}

func TestCorruptPartitionSurfacesThroughQuery(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(Options{Dir: dir, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, d, "CREATE TABLE t (a DOUBLE)")
	mustExec(t, d, "INSERT INTO t VALUES (1), (2), (3), (4)")
	// Corrupt one partition file directly on disk.
	path := filepath.Join(dir, "t.p000.dat")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = d.Exec("SELECT sum(a) FROM t")
	if err == nil || !strings.Contains(err.Error(), "bad value tag") {
		t.Fatalf("corruption must surface: %v", err)
	}
	// Scalar path too.
	if _, err := d.Exec("SELECT a FROM t"); err == nil {
		t.Fatal("projection over corrupt partition must fail")
	}
}

func TestRuntimeErrorInsideAggregationPropagates(t *testing.T) {
	d := openTest(t)
	mustExec(t, d, "CREATE TABLE t (a DOUBLE, b DOUBLE)")
	mustExec(t, d, "INSERT INTO t VALUES (1, 1), (2, 0)")
	if _, err := d.Exec("SELECT sum(a / b) FROM t"); err == nil {
		t.Fatal("division by zero inside an aggregate must fail the query")
	}
	if _, err := d.Exec("SELECT a / b FROM t"); err == nil {
		t.Fatal("division by zero in projection must fail the query")
	}
}

func TestConcurrentQueriesAndInserts(t *testing.T) {
	d := Open(Options{Partitions: 4})
	mustExec(t, d, "CREATE TABLE t (a DOUBLE)")
	mustExec(t, d, "INSERT INTO t VALUES (1)")
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := d.Exec("INSERT INTO t VALUES (1)"); err != nil {
					errs <- err
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := d.Exec("SELECT count(*), sum(a) FROM t"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res, err := d.Exec("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Value(); v.Int() != 101 {
		t.Fatalf("count = %v", v)
	}
}
