package db

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/engine/sema"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
)

// posRE matches a "line:col" diagnostic position.
var posRE = regexp.MustCompile(`\b\d+:\d+\b`)

// TestSemaRejectsBeforeScan is the acceptance check for the semantic
// analyzer: a bad query must fail with a positioned diagnostic before
// any partition scan starts, so the table's scanned-row counter stays
// at zero.
func TestSemaRejectsBeforeScan(t *testing.T) {
	d := openTest(t)
	mustExec(t, d, "CREATE TABLE pts (i BIGINT, x DOUBLE, s VARCHAR)")
	for i := 0; i < 50; i++ {
		mustExec(t, d, "INSERT INTO pts VALUES (1, 2.0, 'a')")
	}
	tbl, err := d.Table("pts")
	if err != nil {
		t.Fatal(err)
	}

	for _, q := range []string{
		"SELECT nocolumn FROM pts",                 // unknown column
		"SELECT s + 1 FROM pts",                    // type mismatch
		"SELECT sqrt(x, 2, 3) FROM pts",            // wrong UDF arity
		"SELECT i, x FROM pts GROUP BY i",          // non-grouped column
		"SELECT i FROM pts WHERE sum(x) > 0",       // aggregate in WHERE
		"SELECT pts.x, nope.y FROM pts",            // unknown qualifier
		"INSERT INTO pts (i, zz) VALUES (1, 2)",    // unknown insert column
		"SELECT i FROM pts ORDER BY 9",             // ordinal out of range
		"SELECT sum(count(x)) FROM pts GROUP BY i", // nested aggregate
		"SELECT * FROM pts, missing WHERE x > 0",   // unknown join table
	} {
		tbl.ResetScannedRows()
		_, err := d.Exec(q)
		if err == nil {
			t.Errorf("%q: expected a semantic error", q)
			continue
		}
		if !strings.HasPrefix(err.Error(), "sema: ") {
			t.Errorf("%q: error did not come from sema: %v", q, err)
		}
		if !posRE.MatchString(err.Error()) {
			t.Errorf("%q: diagnostic lacks a line:col position: %v", q, err)
		}
		if _, ok := err.(sema.ErrorList); !ok {
			t.Errorf("%q: error is %T, want sema.ErrorList", q, err)
		}
		if n := tbl.ScannedRows(); n != 0 {
			t.Errorf("%q: scanned %d rows before rejection; want 0", q, n)
		}
	}

	// Sanity: the same table still answers valid queries.
	tbl.ResetScannedRows()
	res, err := d.Exec("SELECT count(*), sum(x) FROM pts WHERE i = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 50 {
		t.Fatalf("unexpected result %v", res.Rows)
	}
	if tbl.ScannedRows() == 0 {
		t.Fatal("valid query did not scan")
	}
}

// TestSemaRejectsBeforeScanAllPaths drives one bad statement through
// every dispatch entry point — Exec, ExecScript, Run, QueryStream, and
// Prepare — and asserts none of them started a partition scan before
// the semantic rejection. The paths share sema but reach it through
// different plumbing (script splitting, pre-parsed statements, the
// streaming executor, the prepared planner), so each is its own
// regression surface.
func TestSemaRejectsBeforeScanAllPaths(t *testing.T) {
	d := openTest(t)
	mustExec(t, d, "CREATE TABLE pp (i BIGINT, x DOUBLE)")
	for i := 0; i < 20; i++ {
		mustExec(t, d, "INSERT INTO pp VALUES (1, 2.0)")
	}
	tbl, err := d.Table("pp")
	if err != nil {
		t.Fatal(err)
	}
	const bad = "SELECT nocolumn FROM pp"

	paths := []struct {
		name string
		run  func() error
	}{
		{"Exec", func() error { _, err := d.Exec(bad); return err }},
		{"ExecScript", func() error {
			// Scripts execute statement-by-statement (earlier DDL may
			// create what later statements reference, so whole-script
			// pre-validation is impossible); the guarantee is that the
			// bad statement itself never scans. The prefix is an insert,
			// which touches no scan path.
			_, err := d.ExecScript("INSERT INTO pp VALUES (9, 9.0); " + bad)
			return err
		}},
		{"Run", func() error {
			st, perr := sqlparser.Parse(bad)
			if perr != nil {
				return perr
			}
			_, err := d.Run(st)
			return err
		}},
		{"QueryStream", func() error {
			_, err := d.QueryStream(bad, func(sqltypes.Row) error { return nil })
			return err
		}},
		{"Prepare", func() error { _, err := d.Prepare(bad); return err }},
	}
	for _, p := range paths {
		tbl.ResetScannedRows()
		if err := p.run(); err == nil {
			t.Errorf("%s: expected a semantic error", p.name)
			continue
		}
		if n := tbl.ScannedRows(); n != 0 {
			t.Errorf("%s: scanned %d rows before rejection; want 0", p.name, n)
		}
	}
}

// TestSemaMultiError asserts one round trip reports several errors.
func TestSemaMultiError(t *testing.T) {
	d := openTest(t)
	mustExec(t, d, "CREATE TABLE m (a BIGINT)")
	_, err := d.Exec("SELECT bad1, bad2, sqrt(a, a) FROM m")
	if err == nil {
		t.Fatal("expected errors")
	}
	list, ok := err.(sema.ErrorList)
	if !ok {
		t.Fatalf("error is %T, want sema.ErrorList", err)
	}
	if len(list) != 3 {
		t.Fatalf("want 3 diagnostics, got %d:\n%v", len(list), err)
	}
}

// TestSemaCreateTable asserts DDL type errors carry positions.
func TestSemaCreateTable(t *testing.T) {
	d := openTest(t)
	_, err := d.Exec("CREATE TABLE w (a BIGINT, b FLOATY)")
	if err == nil || !posRE.MatchString(err.Error()) {
		t.Fatalf("want positioned diagnostic, got %v", err)
	}
	if d.HasTable("w") {
		t.Fatal("table created despite bad DDL")
	}
}
