package db

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/engine/obs"
)

// DebugServer is the diagnostics endpoint started by ServeDebug.
type DebugServer struct {
	// Addr is the address the listener actually bound (useful when
	// ServeDebug was given ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// Close stops the server, releasing its port.
func (s *DebugServer) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// ServeDebug starts an HTTP diagnostics endpoint on addr and returns
// immediately; the server runs until Close. It serves:
//
//	/metrics        the process-wide obs registry in Prometheus text format
//	/debug/queries  the recent-query ring as JSON, newest first
//	/debug/traces   the tail-sampled trace store as JSON, newest first
//	/debug/pprof/   the standard Go profiling handlers
//
// Metrics are process-global while the query ring is per-DB, so two
// instances in one process serve identical /metrics but distinct
// /debug/queries.
func (d *DB) ServeDebug(addr string) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.Default.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(debugQueries(d.RecentQueries()))
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(d.traces.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// debugQuery is the JSON shape /debug/queries serves: the ring record
// with the duration reported in milliseconds and the span tree inlined.
type debugQuery struct {
	ID         int64           `json:"id"`
	SQL        string          `json:"sql"`
	Start      time.Time       `json:"start"`
	DurationMS float64         `json:"duration_ms"`
	Slow       bool            `json:"slow,omitempty"`
	Error      string          `json:"error,omitempty"`
	TraceID    string          `json:"trace_id,omitempty"`
	Stats      json.RawMessage `json:"stats,omitempty"`
}

func debugQueries(recs []QueryRecord) []debugQuery {
	out := make([]debugQuery, 0, len(recs))
	for _, r := range recs {
		q := debugQuery{
			ID:         r.ID,
			SQL:        r.SQL,
			Start:      r.Start,
			DurationMS: float64(r.Duration) / float64(time.Millisecond),
			Slow:       r.Slow,
			Error:      r.Err,
			TraceID:    r.TraceID,
		}
		if r.Stats != nil {
			if b, err := json.Marshal(r.Stats); err == nil {
				q.Stats = b
			}
		}
		out = append(out, q)
	}
	return out
}
