package db

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/engine/exec"
	"repro/internal/engine/sqlparser"
)

// Views implement §3.6's second scenario: "X exists as a view" whose
// definition involves joins and filters over base tables, with the
// summary/scoring query running over the view. The engine expands
// (inlines) views at plan time: the view's FROM entries are spliced
// into the referencing query with fresh aliases, the view's WHERE is
// ANDed in, and references to the view's output columns are replaced
// by the defining expressions. Combined with the executor's
// single-table predicate pushdown this reproduces the rewrite behavior
// the paper's optimizer discussion assumes.
//
// Supported view bodies: plain SELECT over base tables (or other
// views, expanded recursively) with optional WHERE — no aggregates,
// GROUP BY, ORDER BY, LIMIT or star items. These restrictions match
// the derived-dimension use case and are validated at CREATE VIEW.

const maxViewDepth = 16

// CreateView validates and registers a view definition.
func (d *DB) CreateView(name string, query *sqlparser.Select) error {
	if err := validateViewBody(query); err != nil {
		return fmt.Errorf("db: view %q: %w", name, err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := d.tables[key]; exists {
		return fmt.Errorf("db: a table named %q already exists", name)
	}
	if _, exists := d.views[key]; exists {
		return fmt.Errorf("db: view %q already exists", name)
	}
	d.views[key] = query
	if err := d.saveCatalog(); err != nil {
		delete(d.views, key)
		return err
	}
	d.epoch.Add(1)
	return nil
}

// DropView removes a view.
func (d *DB) DropView(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := d.views[key]; !ok {
		return fmt.Errorf("db: view %q does not exist", name)
	}
	delete(d.views, key)
	if err := d.saveCatalog(); err != nil {
		return err
	}
	d.epoch.Add(1)
	return nil
}

// HasView reports whether the view exists.
func (d *DB) HasView(name string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.views[strings.ToLower(name)]
	return ok
}

// ViewNames lists registered views.
func (d *DB) ViewNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.views))
	for k := range d.views {
		out = append(out, k)
	}
	return out
}

func (d *DB) view(name string) (*sqlparser.Select, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	v, ok := d.views[strings.ToLower(name)]
	return v, ok
}

// validateViewBody enforces the simple-view restrictions.
func validateViewBody(q *sqlparser.Select) error {
	if len(q.From) == 0 {
		return fmt.Errorf("view must select FROM at least one table")
	}
	if len(q.GroupBy) > 0 || len(q.OrderBy) > 0 || q.Limit != nil || q.Having != nil {
		return fmt.Errorf("views with GROUP BY/HAVING/ORDER BY/LIMIT are not supported")
	}
	if sqlparser.CountParams(q) > 0 {
		return fmt.Errorf("views may not contain ? parameters")
	}
	seen := make(map[string]bool)
	for i, item := range q.Items {
		if item.Star {
			return fmt.Errorf("views must name their output columns explicitly (no *)")
		}
		if exprHasAggregate(item.Expr) {
			return fmt.Errorf("views may not contain aggregates")
		}
		name := strings.ToLower(viewItemName(item, i))
		if name == "" {
			return fmt.Errorf("view output column %d needs an alias", i+1)
		}
		if seen[name] {
			return fmt.Errorf("duplicate view output column %q", name)
		}
		seen[name] = true
	}
	return nil
}

// exprHasAggregate detects the built-in aggregate names; aggregate
// UDFs in views are also rejected at expansion time by the executor.
func exprHasAggregate(e sqlparser.Expr) bool {
	found := false
	var walk func(sqlparser.Expr)
	walk = func(x sqlparser.Expr) {
		if fc, ok := x.(*sqlparser.FuncCall); ok {
			switch strings.ToLower(fc.Name) {
			case "sum", "count", "avg", "min", "max":
				found = true
			}
			for _, a := range fc.Args {
				walk(a)
			}
			return
		}
		switch x := x.(type) {
		case *sqlparser.UnaryExpr:
			walk(x.X)
		case *sqlparser.BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *sqlparser.CaseExpr:
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			if x.Else != nil {
				walk(x.Else)
			}
		case *sqlparser.IsNullExpr:
			walk(x.X)
		case *sqlparser.CastExpr:
			walk(x.X)
		case *sqlparser.BetweenExpr:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *sqlparser.InExpr:
			walk(x.X)
			for _, i := range x.List {
				walk(i)
			}
		}
	}
	walk(e)
	return found
}

func viewItemName(item sqlparser.SelectItem, ordinal int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if cr, ok := item.Expr.(*sqlparser.ColumnRef); ok {
		return cr.Name
	}
	return ""
}

// expandViews rewrites a SELECT so that no FROM entry names a view.
func (d *DB) expandViews(sel *sqlparser.Select, depth int) (*sqlparser.Select, error) {
	if depth > maxViewDepth {
		return nil, fmt.Errorf("db: view expansion exceeds depth %d (cyclic views?)", maxViewDepth)
	}
	hasView := false
	for _, ref := range sel.From {
		if _, ok := d.view(ref.Name); ok {
			hasView = true
			break
		}
	}
	if !hasView {
		return sel, nil
	}

	// Copy the clause slices: substitution below must not mutate the
	// caller's AST (view bodies are stored and re-expanded).
	out := &sqlparser.Select{
		GroupBy: append([]sqlparser.Expr{}, sel.GroupBy...),
		Having:  sel.Having,
		OrderBy: append([]sqlparser.OrderItem{}, sel.OrderBy...),
		Limit:   sel.Limit,
		Where:   sel.Where,
		Items:   append([]sqlparser.SelectItem{}, sel.Items...),
	}

	// subs maps (lowercased view ref name, lowercased output column) to
	// the defining expression with re-aliased internals.
	type colKey struct{ ref, col string }
	subs := make(map[colKey]sqlparser.Expr)
	viewRefs := make(map[string][]sqlparser.SelectItem) // ref name → rewritten outputs
	var wheres []sqlparser.Expr
	viewSeq := 0

	for _, ref := range sel.From {
		body, isView := d.view(ref.Name)
		if !isView {
			out.From = append(out.From, ref)
			continue
		}
		// Recursively expand nested views inside the body first.
		body, err := d.expandViews(body, depth+1)
		if err != nil {
			return nil, err
		}
		viewSeq++
		refName := strings.ToLower(ref.RefName())
		// Fresh aliases for the view's internal tables; '$' cannot
		// appear in user identifiers, so collisions are impossible.
		aliasOf := make(map[string]string, len(body.From))
		for _, bt := range body.From {
			fresh := fmt.Sprintf("%s$%d$%s", refName, viewSeq, strings.ToLower(bt.RefName()))
			aliasOf[strings.ToLower(bt.RefName())] = fresh
			out.From = append(out.From, sqlparser.TableRef{Name: bt.Name, Alias: fresh})
		}
		realias := func(cr *sqlparser.ColumnRef) (sqlparser.Expr, bool) {
			table := strings.ToLower(cr.Table)
			if table == "" {
				// Unqualified inside the view: resolve to whichever of
				// the view's own tables defines it at bind time; with a
				// single table this is unambiguous, with several the
				// original query must have qualified it.
				if len(body.From) == 1 {
					return &sqlparser.ColumnRef{Table: aliasOf[strings.ToLower(body.From[0].RefName())], Name: cr.Name}, true
				}
				return nil, false
			}
			if fresh, ok := aliasOf[table]; ok {
				return &sqlparser.ColumnRef{Table: fresh, Name: cr.Name}, true
			}
			return nil, false
		}
		var outputs []sqlparser.SelectItem
		for i, item := range body.Items {
			rewritten := sqlparser.SubstituteColumns(item.Expr, realias)
			name := strings.ToLower(viewItemName(item, i))
			subs[colKey{refName, name}] = rewritten
			outputs = append(outputs, sqlparser.SelectItem{Expr: rewritten, Alias: viewItemName(item, i)})
		}
		viewRefs[refName] = outputs
		if body.Where != nil {
			wheres = append(wheres, sqlparser.SubstituteColumns(body.Where, realias))
		}
	}

	// Column substitution for the outer query: qualified view refs are
	// replaced directly; unqualified names are replaced only when they
	// match exactly one view's outputs (base-table columns win at bind
	// time if the name is left untouched — ambiguity there errors).
	substitute := func(cr *sqlparser.ColumnRef) (sqlparser.Expr, bool) {
		col := strings.ToLower(cr.Name)
		if cr.Table != "" {
			if e, ok := subs[colKey{strings.ToLower(cr.Table), col}]; ok {
				return sqlparser.CopyExpr(e), true
			}
			return nil, false
		}
		var match sqlparser.Expr
		count := 0
		for ref := range viewRefs {
			if e, ok := subs[colKey{ref, col}]; ok {
				match = e
				count++
			}
		}
		if count == 1 {
			return sqlparser.CopyExpr(match), true
		}
		return nil, false
	}

	// Expand star items that target a view before substitution.
	var items []sqlparser.SelectItem
	for _, item := range out.Items {
		if item.Star {
			star := strings.ToLower(item.StarTable)
			if star != "" {
				if outputs, ok := viewRefs[star]; ok {
					items = append(items, outputs...)
					continue
				}
				items = append(items, item)
				continue
			}
			// Bare *: view outputs plus pass-through for base tables.
			for _, ref := range sel.From {
				if outputs, ok := viewRefs[strings.ToLower(ref.RefName())]; ok {
					items = append(items, outputs...)
				} else {
					items = append(items, sqlparser.SelectItem{Star: true, StarTable: ref.RefName()})
				}
			}
			continue
		}
		items = append(items, item)
	}
	for i := range items {
		if items[i].Star {
			continue
		}
		if items[i].Alias == "" {
			// Preserve the user-visible output name through
			// substitution: the pre-expansion text, as the executor
			// would have named it.
			if name := outerItemName(items[i]); name != "" {
				items[i].Alias = name
			} else if s := items[i].Expr.String(); len(s) <= 40 {
				items[i].Alias = s
			}
		}
		items[i].Expr = sqlparser.SubstituteColumns(items[i].Expr, substitute)
	}
	out.Items = items

	if out.Where != nil {
		out.Where = sqlparser.SubstituteColumns(out.Where, substitute)
	}
	for _, w := range wheres {
		if out.Where == nil {
			out.Where = w
		} else {
			out.Where = &sqlparser.BinaryExpr{Op: "AND", L: out.Where, R: w}
		}
	}
	for i, g := range out.GroupBy {
		out.GroupBy[i] = sqlparser.SubstituteColumns(g, substitute)
	}
	if out.Having != nil {
		out.Having = sqlparser.SubstituteColumns(out.Having, substitute)
	}
	for i, o := range out.OrderBy {
		out.OrderBy[i].Expr = sqlparser.SubstituteColumns(o.Expr, substitute)
	}
	return out, nil
}

func outerItemName(item sqlparser.SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	if cr, ok := item.Expr.(*sqlparser.ColumnRef); ok {
		return cr.Name
	}
	return ""
}

// runSelectWithViews expands views then executes.
func (d *DB) runSelectWithViews(ctx context.Context, sel *sqlparser.Select) (*exec.Result, error) {
	expanded, err := d.expandViews(sel, 0)
	if err != nil {
		return nil, err
	}
	return exec.Select(ctx, expanded, d.env())
}
