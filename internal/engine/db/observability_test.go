package db

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/engine/sqltypes"
)

func newTestDB(t *testing.T, opts Options) *DB {
	t.Helper()
	d := Open(opts)
	if _, err := d.Exec("CREATE TABLE x (i INT, v DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("INSERT INTO x VALUES (1, 2.0), (2, 3.0), (3, 4.0)"); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRecentQueriesRingRecordsAllPaths(t *testing.T) {
	d := newTestDB(t, Options{Partitions: 2})

	if _, err := d.Exec("SELECT sum(v) FROM x"); err != nil {
		t.Fatal(err)
	}
	// INSERT ... SELECT must land in the ring with scan stats.
	if _, err := d.Exec("CREATE TABLE y (i INT, v DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("INSERT INTO y SELECT i, v FROM x"); err != nil {
		t.Fatal(err)
	}
	// Streamed queries must land in the ring too.
	if _, err := d.QueryStream("SELECT v FROM x", func(sqltypes.Row) error { return nil }); err != nil {
		t.Fatal(err)
	}

	recs := d.RecentQueries()
	if len(recs) != 6 {
		t.Fatalf("ring holds %d records, want 6", len(recs))
	}
	// Newest first: the stream query is recs[0].
	if recs[0].SQL != "SELECT v FROM x" {
		t.Errorf("newest record = %q, want the streamed SELECT", recs[0].SQL)
	}
	if recs[0].Stats == nil || recs[0].Stats.RowsScanned != 3 {
		t.Errorf("streamed query stats = %+v, want 3 rows scanned", recs[0].Stats)
	}
	var insSel *QueryRecord
	for i := range recs {
		if strings.HasPrefix(recs[i].SQL, "INSERT INTO y") {
			insSel = &recs[i]
		}
	}
	if insSel == nil {
		t.Fatal("INSERT ... SELECT not recorded")
	}
	if insSel.Stats == nil || insSel.Stats.RowsScanned != 3 {
		t.Errorf("INSERT ... SELECT stats = %+v, want 3 rows scanned", insSel.Stats)
	}
	for i := range recs {
		if recs[i].ID == 0 {
			t.Errorf("record %d has no ID", i)
		}
	}

	// LastStats is a view over the ring: it must reflect the newest
	// record that carries stats (the streamed SELECT).
	if st := d.LastStats(); st == nil || st != recs[0].Stats {
		t.Errorf("LastStats() = %p, want the newest recorded stats %p", st, recs[0].Stats)
	}
}

func TestRecentQueriesRingBounded(t *testing.T) {
	d := newTestDB(t, Options{Partitions: 2})
	for i := 0; i < queryRingSize+10; i++ {
		if _, err := d.Exec("SELECT sum(v) FROM x"); err != nil {
			t.Fatal(err)
		}
	}
	recs := d.RecentQueries()
	if len(recs) != queryRingSize {
		t.Fatalf("ring holds %d records, want %d", len(recs), queryRingSize)
	}
	// IDs keep increasing past the ring size and stay newest-first.
	if recs[0].ID <= int64(queryRingSize) {
		t.Errorf("newest ID = %d, want > %d", recs[0].ID, queryRingSize)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].ID != recs[i-1].ID-1 {
			t.Fatalf("IDs not consecutive newest-first at %d: %d then %d", i, recs[i-1].ID, recs[i].ID)
		}
	}
}

func TestFailedQueriesRecorded(t *testing.T) {
	d := newTestDB(t, Options{Partitions: 2})
	if _, err := d.Exec("SELECT nope FROM x"); err == nil {
		t.Fatal("expected error for unknown column")
	}
	recs := d.RecentQueries()
	if recs[0].Err == "" {
		t.Errorf("failed query recorded without error: %+v", recs[0])
	}
}

func TestSlowQueryFlag(t *testing.T) {
	d := newTestDB(t, Options{Partitions: 2, SlowQuery: time.Nanosecond})
	if _, err := d.Exec("SELECT sum(v) FROM x"); err != nil {
		t.Fatal(err)
	}
	if recs := d.RecentQueries(); !recs[0].Slow {
		t.Errorf("query not flagged slow with 1ns threshold: %+v", recs[0])
	}

	// Default threshold: a trivial query must not be flagged.
	d2 := newTestDB(t, Options{Partitions: 2})
	if _, err := d2.Exec("SELECT sum(v) FROM x"); err != nil {
		t.Fatal(err)
	}
	if recs := d2.RecentQueries(); recs[0].Slow {
		t.Errorf("trivial query flagged slow under default threshold: %+v", recs[0])
	}
}

func TestSysMetricsLive(t *testing.T) {
	d := newTestDB(t, Options{Partitions: 2})
	if _, err := d.Exec("SELECT sum(v) FROM x"); err != nil {
		t.Fatal(err)
	}
	res, err := d.Exec("SELECT name, value FROM sys.metrics WHERE name = 'engine_rows_scanned_total'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
	v, _ := res.Rows[0][1].Float()
	if v < 3 {
		t.Errorf("engine_rows_scanned_total = %v, want >= 3", v)
	}
}

func TestSysQueriesViaSQL(t *testing.T) {
	d := newTestDB(t, Options{Partitions: 2})
	if _, err := d.Exec("SELECT sum(v) FROM x"); err != nil {
		t.Fatal(err)
	}
	res, err := d.Exec("SELECT sql_text, rows_scanned FROM sys.queries WHERE rows_scanned > 0")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if row[0].Str() == "SELECT sum(v) FROM x" {
			found = true
			if n := row[1].Int(); n != 3 {
				t.Errorf("rows_scanned = %d, want 3", n)
			}
		}
	}
	if !found {
		t.Errorf("aggregate query not visible in sys.queries: %v", res.Rows)
	}
}

func TestSysTablesAndPartitions(t *testing.T) {
	d := newTestDB(t, Options{Partitions: 2})
	res, err := d.Exec("SELECT name, partitions, num_rows FROM sys.tables")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "x" {
		t.Fatalf("sys.tables = %v, want one row for x", res.Rows)
	}
	if got := res.Rows[0][2].Int(); got != 3 {
		t.Errorf("num_rows = %d, want 3", got)
	}

	res, err = d.Exec("SELECT table_name, partition, num_rows FROM sys.partitions")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("sys.partitions returned %d rows, want 2", len(res.Rows))
	}
	var total int64
	for _, row := range res.Rows {
		total += row[2].Int()
	}
	if total != 3 {
		t.Errorf("partition rows sum to %d, want 3", total)
	}
}

func TestSysNamespaceReserved(t *testing.T) {
	d := Open(Options{Partitions: 2})
	if _, err := d.Exec("CREATE TABLE sys.own (i INT)"); err == nil {
		t.Error("CREATE TABLE sys.own should be rejected")
	}
	schema, err := sqltypes.NewSchema(sqltypes.Column{Name: "i", Type: sqltypes.TypeBigInt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("sys.own", schema); err == nil {
		t.Error("CreateTable(sys.own) should be rejected")
	}
	if _, err := d.Exec("SELECT * FROM sys.bogus"); err == nil {
		t.Error("unknown sys table should error")
	}
}

func TestServeDebug(t *testing.T) {
	d := newTestDB(t, Options{Partitions: 2})
	if _, err := d.Exec("SELECT sum(v) FROM x"); err != nil {
		t.Fatal(err)
	}
	srv, err := d.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body := httpGet(t, fmt.Sprintf("http://%s/metrics", srv.Addr))
	for _, want := range []string{
		"# TYPE engine_rows_scanned_total counter",
		"engine_rows_scanned_total",
		"engine_query_seconds_bucket{le=\"+Inf\"}",
		"engine_queries_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	qbody := httpGet(t, fmt.Sprintf("http://%s/debug/queries", srv.Addr))
	var queries []struct {
		ID  int64  `json:"id"`
		SQL string `json:"sql"`
	}
	if err := json.Unmarshal([]byte(qbody), &queries); err != nil {
		t.Fatalf("/debug/queries is not JSON: %v\n%s", err, qbody)
	}
	if len(queries) == 0 || queries[0].SQL != "SELECT sum(v) FROM x" {
		t.Errorf("/debug/queries = %+v, want newest-first with the aggregate query", queries)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
