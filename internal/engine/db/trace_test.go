package db

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"

	"repro/internal/engine/trace"
)

// TestLocalStatementProducesTrace is the local half of the acceptance
// criterion: an in-process query must land in sys.traces with a span
// tree that includes the exec phase spans, all under one TraceID that
// sys.queries and the stats JSON also carry.
func TestLocalStatementProducesTrace(t *testing.T) {
	d := newTestDB(t, Options{Partitions: 2, TraceSampleN: 1})

	res, err := d.Exec("SELECT sum(v) FROM x")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.TraceID == "" {
		t.Fatal("result stats carry no trace id")
	}
	tid := res.Stats.TraceID
	if _, err := trace.ParseTraceID(tid); err != nil {
		t.Fatalf("stats trace id %q does not parse: %v", tid, err)
	}
	if res.Stats.Root == nil || res.Stats.Root.ID == "" {
		t.Fatal("root span was not stamped with a span id")
	}

	rec, ok := d.Traces().Get(tid)
	if !ok {
		t.Fatalf("trace %s not retained", tid)
	}
	names := map[string]bool{}
	for _, sp := range rec.Spans {
		names[sp.Name] = true
		if sp.SpanID == "" {
			t.Errorf("span %q has no id", sp.Name)
		}
	}
	for _, want := range []string{"statement", "plan", "scan", "merge", "finalize"} {
		if !names[want] {
			t.Errorf("trace lacks %q span (got %v)", want, names)
		}
	}
	// The statement span is the local root: no parent.
	for _, sp := range rec.Spans {
		if sp.Name == "statement" && sp.ParentID != "" {
			t.Errorf("local statement span has parent %q, want none", sp.ParentID)
		}
	}

	// sys.queries carries the same trace id.
	recs := d.RecentQueries()
	if recs[0].TraceID != tid {
		t.Errorf("query ring trace id = %q, want %q", recs[0].TraceID, tid)
	}

	// sys.traces serves the trace through SQL.
	rows, err := d.Exec("SELECT trace_id, class, spans FROM sys.traces")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range rows.Rows {
		if row[0].Str() == tid {
			found = true
			if n := row[2].Int(); n < 5 {
				t.Errorf("sys.traces reports %d spans, want >= 5", n)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s missing from sys.traces", tid)
	}

	// sys.spans reconstructs the tree: phase spans parent at the
	// statement span.
	spanRows, err := d.Exec("SELECT trace_id, span_id, parent_span_id, name FROM sys.spans")
	if err != nil {
		t.Fatal(err)
	}
	var stmtID string
	for _, row := range spanRows.Rows {
		if row[0].Str() == tid && row[3].Str() == "statement" {
			stmtID = row[1].Str()
		}
	}
	if stmtID == "" {
		t.Fatal("statement span missing from sys.spans")
	}
	for _, row := range spanRows.Rows {
		if row[0].Str() == tid && row[3].Str() == "plan" && row[2].Str() != stmtID {
			t.Errorf("plan span parent = %q, want statement span %q", row[2].Str(), stmtID)
		}
	}
}

// TestServerSpanContextAdopted mimics the serving layer: a statement
// run under trace.NewContext must adopt the provided TraceID and
// parent its statement span at the provided SpanID.
func TestServerSpanContextAdopted(t *testing.T) {
	d := newTestDB(t, Options{Partitions: 2, TraceSampleN: 1})
	sc := trace.NewRoot()
	ctx := trace.NewContext(context.Background(), sc)

	res, err := d.ExecContext(ctx, "SELECT count(*) FROM x")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TraceID != sc.TraceID.String() {
		t.Fatalf("stats trace id = %q, want adopted %q", res.Stats.TraceID, sc.TraceID)
	}
	rec, ok := d.Traces().Get(sc.TraceID.String())
	if !ok {
		t.Fatal("adopted trace not retained")
	}
	for _, sp := range rec.Spans {
		if sp.Name == "statement" && sp.ParentID != sc.SpanID.String() {
			t.Errorf("statement span parent = %q, want caller span %q", sp.ParentID, sc.SpanID)
		}
	}

	// A second statement under the same context merges into the trace.
	if _, err := d.ExecContext(ctx, "SELECT count(*) FROM x"); err != nil {
		t.Fatal(err)
	}
	rec, _ = d.Traces().Get(sc.TraceID.String())
	stmts := 0
	for _, sp := range rec.Spans {
		if sp.Name == "statement" {
			stmts++
		}
	}
	if stmts != 2 {
		t.Fatalf("merged trace has %d statement spans, want 2", stmts)
	}
}

// TestErrorStatementRetainedWithSyntheticSpan: failed statements have
// no executor stats, but their trace must still be retained (error
// class) with a synthesized statement span.
func TestErrorStatementRetainedWithSyntheticSpan(t *testing.T) {
	d := newTestDB(t, Options{Partitions: 2, TraceSampleN: 1 << 30})
	_, err := d.Exec("SELECT v FROM does_not_exist")
	if err == nil {
		t.Fatal("expected error")
	}
	recs := d.RecentQueries()
	tid := recs[0].TraceID
	if tid == "" {
		t.Fatal("failed statement has no trace id")
	}
	rec, ok := d.Traces().Get(tid)
	if !ok {
		t.Fatal("error trace was not retained (sampling must not drop errors)")
	}
	if rec.Class != trace.ClassError {
		t.Fatalf("class = %q, want error", rec.Class)
	}
	if len(rec.Spans) != 1 || rec.Spans[0].Name != "statement" {
		t.Fatalf("spans = %+v, want one synthetic statement span", rec.Spans)
	}
}

// TestSlowQueryLogLine: statements at or over SlowQuery emit one
// structured log line carrying kind, duration, rows scanned, trace_id
// and session_id.
func TestSlowQueryLogLine(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	d := Open(Options{Partitions: 2, SlowQuery: time.Nanosecond, TraceSampleN: 1, Logger: logger})
	if _, err := d.Exec("CREATE TABLE x (i INT, v DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := d.Exec("SELECT count(*) FROM x"); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("no slow-query log line emitted")
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &entry); err != nil {
		t.Fatalf("slow-query line is not JSON: %v (%q)", err, line)
	}
	if entry["msg"] != "slow query" {
		t.Errorf("msg = %v", entry["msg"])
	}
	if entry["kind"] != "select" {
		t.Errorf("kind = %v, want select", entry["kind"])
	}
	tid, _ := entry["trace_id"].(string)
	if _, err := trace.ParseTraceID(tid); err != nil {
		t.Errorf("trace_id %q invalid: %v", tid, err)
	}
	if _, ok := entry["duration_ms"].(float64); !ok {
		t.Errorf("duration_ms missing: %v", entry)
	}
	if _, ok := entry["rows_scanned"].(float64); !ok {
		t.Errorf("rows_scanned missing: %v", entry)
	}
	if _, ok := entry["session_id"]; !ok {
		t.Errorf("session_id missing: %v", entry)
	}
	// The trace is slow-class, retained regardless of sampling.
	rec, ok := d.Traces().Get(tid)
	if !ok {
		t.Fatal("slow trace not retained")
	}
	if rec.Class != trace.ClassSlow {
		t.Fatalf("class = %q, want slow", rec.Class)
	}
}

func TestStatementKind(t *testing.T) {
	for sql, want := range map[string]string{
		"SELECT 1":            "select",
		"  insert into t ...": "insert",
		"(SELECT 1)":          "select",
		"":                    "unknown",
		"CREATE TABLE t":      "create",
	} {
		if got := statementKind(sql); got != want {
			t.Errorf("statementKind(%q) = %q, want %q", sql, got, want)
		}
	}
}
