package db

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine/obs"
	"repro/internal/engine/sqltypes"
)

func preparedFixture(t *testing.T) *DB {
	t.Helper()
	d := openTest(t)
	mustExec(t, d, "CREATE TABLE pts (i BIGINT, x DOUBLE, s VARCHAR)")
	for i := 0; i < 10; i++ {
		mustExec(t, d, fmt.Sprintf("INSERT INTO pts VALUES (%d, %d.5, 'r%d')", i, i, i))
	}
	return d
}

func TestPrepareExecuteSelect(t *testing.T) {
	d := preparedFixture(t)
	p, err := d.Prepare("SELECT i, x FROM pts WHERE i = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", p.NumParams())
	}
	for i := 0; i < 10; i++ {
		res, err := p.Execute(sqltypes.NewBigInt(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Int() != int64(i) {
			t.Fatalf("i=%d: rows %v", i, res.Rows)
		}
	}
	// Each execution sees fresh data, not a snapshot.
	mustExec(t, d, "INSERT INTO pts VALUES (3, 99.0, 'dup')")
	res, err := p.Execute(sqltypes.NewBigInt(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("after insert: %d rows, want 2", len(res.Rows))
	}
}

func TestPrepareExecuteInsert(t *testing.T) {
	d := preparedFixture(t)
	p, err := d.Prepare("INSERT INTO pts VALUES (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 100; i < 110; i++ {
		res, err := p.Execute(sqltypes.NewBigInt(int64(i)), sqltypes.NewDouble(0.5), sqltypes.NewVarChar("ins"))
		if err != nil {
			t.Fatal(err)
		}
		if res.Affected != 1 {
			t.Fatalf("affected %d", res.Affected)
		}
	}
	res, err := d.Exec("SELECT count(*) FROM pts WHERE s = 'ins'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 10 {
		t.Fatalf("inserted rows: %v", res.Rows)
	}
}

func TestPrepareArgCount(t *testing.T) {
	d := preparedFixture(t)
	p, err := d.Prepare("SELECT i FROM pts WHERE i = ? AND x > ?")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Execute(sqltypes.NewBigInt(1)); err == nil {
		t.Fatal("accepted 1 arg for 2 slots")
	}
	if _, err := p.Execute(sqltypes.NewBigInt(1), sqltypes.NewDouble(0), sqltypes.NewDouble(0)); err == nil {
		t.Fatal("accepted 3 args for 2 slots")
	}
}

func TestPrepareRejectsBadStatements(t *testing.T) {
	d := preparedFixture(t)
	for _, sql := range []string{
		"SELECT nocolumn FROM pts",       // sema error at prepare time
		"SELECT i FROM pts WHERE",        // parse error
		"DROP TABLE pts",                 // DDL is not preparable
		"CREATE TABLE q (a BIGINT)",      // ditto
		"SELECT s + 1 FROM pts",          // type error
		"SELECT i FROM pts WHERE s = ?1", // not our placeholder syntax
	} {
		if _, err := d.Prepare(sql); err == nil {
			t.Errorf("Prepare(%q) succeeded", sql)
		}
	}
}

// Prepared errors must surface before any partition scan starts, on
// the prepared path exactly as on ad-hoc dispatch.
func TestPrepareRejectsBeforeScan(t *testing.T) {
	d := preparedFixture(t)
	tbl, err := d.Table("pts")
	if err != nil {
		t.Fatal(err)
	}
	tbl.ResetScannedRows()
	if _, err := d.Prepare("SELECT nope FROM pts"); err == nil {
		t.Fatal("expected sema error")
	}
	if n := tbl.ScannedRows(); n != 0 {
		t.Fatalf("prepare of a bad statement scanned %d rows", n)
	}
}

func TestPreparedStaleAfterDDL(t *testing.T) {
	d := preparedFixture(t)
	p, err := d.Prepare("SELECT i FROM pts WHERE i = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Execute(sqltypes.NewBigInt(1)); err != nil {
		t.Fatal(err)
	}
	mustExec(t, d, "CREATE TABLE other (a BIGINT)")
	_, err = p.Execute(sqltypes.NewBigInt(1))
	if !errors.Is(err, ErrPlanStale) {
		t.Fatalf("after DDL: err = %v, want ErrPlanStale", err)
	}
	// Re-preparing from the same text works against the new catalog.
	p2, err := d.Prepare(p.SQL())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if _, err := p2.Execute(sqltypes.NewBigInt(1)); err != nil {
		t.Fatal(err)
	}
}

func TestPreparedClosedErrors(t *testing.T) {
	d := preparedFixture(t)
	p, err := d.Prepare("SELECT i FROM pts")
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Execute(); err == nil {
		t.Fatal("Execute succeeded on a closed statement")
	}
}

func TestViewRejectsParams(t *testing.T) {
	d := preparedFixture(t)
	_, err := d.Exec("CREATE VIEW v AS SELECT i FROM pts WHERE i = ?")
	if err == nil || !strings.Contains(err.Error(), "?") {
		t.Fatalf("view with params: err = %v", err)
	}
}

func TestPlanCacheCounters(t *testing.T) {
	d := preparedFixture(t)
	hits0 := obs.PlanCacheHits.Value()
	misses0 := obs.PlanCacheMisses.Value()

	const q = "SELECT i, x FROM pts WHERE i = 4"
	if _, err := d.Exec(q); err != nil { // miss: first sighting plans and caches
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // five hits
		res, err := d.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("rows %v", res.Rows)
		}
	}
	if hits := obs.PlanCacheHits.Value() - hits0; hits < 5 {
		t.Fatalf("plan cache hits = %d, want >= 5", hits)
	}
	if misses := obs.PlanCacheMisses.Value() - misses0; misses < 1 {
		t.Fatalf("plan cache misses = %d, want >= 1", misses)
	}
}

func TestPlanCacheInvalidatedByDDL(t *testing.T) {
	d := preparedFixture(t)
	const q = "SELECT i FROM pts WHERE i = 1"
	for i := 0; i < 3; i++ {
		if _, err := d.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	inv0 := obs.PlanCacheInvalidations.Value()
	mustExec(t, d, "CREATE TABLE bump (a BIGINT)")
	// The next lookup sees the epoch moved and re-plans rather than
	// serving the stale entry.
	if _, err := d.Exec(q); err != nil {
		t.Fatal(err)
	}
	if inv := obs.PlanCacheInvalidations.Value() - inv0; inv < 1 {
		t.Fatalf("invalidations = %d, want >= 1", inv)
	}
	// DROP of a cached plan's own table must not let the old plan run.
	mustExec(t, d, "DROP TABLE pts")
	if _, err := d.Exec(q); err == nil {
		t.Fatal("query against dropped table served from the plan cache")
	}
}

func TestPlanCacheEviction(t *testing.T) {
	d := preparedFixture(t)
	ev0 := obs.PlanCacheEvictions.Value()
	// Overflow the LRU with distinct texts.
	for i := 0; i < defaultPlanCacheSize+10; i++ {
		if _, err := d.Exec(fmt.Sprintf("SELECT i FROM pts WHERE i = %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if ev := obs.PlanCacheEvictions.Value() - ev0; ev < 10 {
		t.Fatalf("evictions = %d, want >= 10", ev)
	}
}

func TestSysPrepared(t *testing.T) {
	d := preparedFixture(t)
	p, err := d.Prepare("SELECT i FROM pts WHERE i = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 3; i++ {
		if _, err := p.Execute(sqltypes.NewBigInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.Exec("SELECT sql_text, params, executions FROM sys.prepared")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if row[0].Str() == p.SQL() {
			found = true
			if row[1].Int() != 1 || row[2].Int() != 3 {
				t.Fatalf("sys.prepared row %v, want params=1 executions=3", row)
			}
		}
	}
	if !found {
		t.Fatalf("statement missing from sys.prepared: %v", res.Rows)
	}
	p.Close()
	res, err = d.Exec("SELECT sql_text FROM sys.prepared")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row[0].Str() == p.SQL() {
			t.Fatal("closed statement still listed in sys.prepared")
		}
	}
}

// TestSysTablesNotPreparable: system tables are materialized fresh per
// statement, so a prepared (or plan-cached) sys.* SELECT would replay
// one frozen snapshot forever. Prepare must refuse them, and repeated
// ad-hoc reads through Exec's plan-cache path must see fresh state.
func TestSysTablesNotPreparable(t *testing.T) {
	d := preparedFixture(t)
	if _, err := d.Prepare("SELECT name FROM sys.tables"); err == nil {
		t.Fatal("Prepare of a system-table SELECT succeeded")
	}

	// The sharp edge: sys.queries changes on every statement but no DDL
	// happens, so the catalog epoch never moves — a plan-cached snapshot
	// would never be invalidated and the same text would replay one
	// frozen result forever. Each read must see the queries before it.
	countQueries := func() int {
		res, err := d.Exec("SELECT id FROM sys.queries")
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Rows)
	}
	first := countQueries()
	if _, err := d.Exec("SELECT i FROM pts WHERE i = 1"); err != nil {
		t.Fatal(err)
	}
	if second := countQueries(); second <= first {
		t.Fatalf("sys.queries served a stale snapshot: %d rows then %d", first, second)
	}
}

// TestPreparedDDLRace interleaves EXECUTE with CREATE/DROP under -race:
// every execution must either run the pre-DDL plan consistently or
// fail with ErrPlanStale — never execute against a mismatched schema
// or trip the race detector.
func TestPreparedDDLRace(t *testing.T) {
	d := preparedFixture(t)
	p, err := d.Prepare("SELECT i, x FROM pts WHERE i = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var churn, workers sync.WaitGroup
	stop := make(chan struct{})
	churn.Add(1)
	go func() { // DDL churn: epoch moves constantly
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("churn%d", i%4)
			d.Exec("CREATE TABLE " + name + " (a BIGINT)")
			d.Exec("DROP TABLE " + name)
		}
	}()
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			for i := 0; i < 50; i++ {
				res, err := p.Execute(sqltypes.NewBigInt(int64(i % 10)))
				if errors.Is(err, ErrPlanStale) {
					// Typed staleness: re-prepare and go on, like a
					// server session would.
					np, perr := d.Prepare(p.SQL())
					if perr != nil {
						t.Errorf("re-prepare: %v", perr)
						return
					}
					np.Close()
					continue
				}
				if err != nil {
					t.Errorf("execute: %v", err)
					return
				}
				// Schema must always be the plan's two columns — a
				// mismatched-schema execution would betray a plan built
				// against one catalog running against another.
				if len(res.Schema.Columns) != 2 {
					t.Errorf("schema drifted: %v", res.Schema.Columns)
					return
				}
			}
		}(w)
	}
	// Plan-cache dispatch races the same churn.
	workers.Add(1)
	go func() {
		defer workers.Done()
		for i := 0; i < 100; i++ {
			if _, err := d.Exec("SELECT i FROM pts WHERE i = 1"); err != nil {
				t.Errorf("cached dispatch: %v", err)
				return
			}
		}
	}()
	workers.Wait()
	close(stop)
	churn.Wait()
}
