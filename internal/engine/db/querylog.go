package db

import (
	"context"
	"log/slog"
	"sync"
	"time"

	"repro/internal/engine/exec"
	"repro/internal/engine/obs"
	"repro/internal/engine/trace"
)

// Session identifies the network session a statement arrived on. The
// serving layer attaches one to the statement context with WithSession;
// in-process statements carry none and record zero values.
type Session struct {
	// ID is the server-assigned session number (0 for in-process).
	ID int64 `json:"id"`
	// User is the handshake's (unauthenticated) user name.
	User string `json:"user,omitempty"`
	// RemoteAddr is the client's network address ("" for in-process).
	RemoteAddr string `json:"remote_addr,omitempty"`
}

type sessionKey struct{}

// WithSession returns a context carrying the session a statement
// belongs to; the query ring records it alongside the statement.
func WithSession(ctx context.Context, s Session) context.Context {
	return context.WithValue(ctx, sessionKey{}, s)
}

// SessionFromContext extracts the session attached by WithSession
// (zero Session and false when the statement is in-process).
func SessionFromContext(ctx context.Context) (Session, bool) {
	s, ok := ctx.Value(sessionKey{}).(Session)
	return s, ok
}

// queryRingSize bounds the recent-query ring. 128 statements is enough
// to hold a whole harness experiment while staying trivially small.
const queryRingSize = 128

// DefaultSlowQuery is the slow-query threshold used when Options leaves
// SlowQuery zero.
const DefaultSlowQuery = 250 * time.Millisecond

// QueryRecord is one completed statement in the recent-query ring,
// the row source for sys.queries and the /debug/queries endpoint.
type QueryRecord struct {
	// ID numbers statements in execution order, starting at 1.
	ID int64 `json:"id"`
	// SQL is the statement text: the original SQL when the statement
	// arrived as text, or a rendered/placeholder form when it arrived
	// pre-parsed via Run.
	SQL      string        `json:"sql"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	// Err is the error message for failed statements ("" on success).
	Err string `json:"error,omitempty"`
	// SessionID and RemoteAddr identify the network session the
	// statement arrived over; zero/empty for in-process statements.
	SessionID  int64  `json:"session_id,omitempty"`
	RemoteAddr string `json:"remote_addr,omitempty"`
	// Slow marks statements whose duration met the configured
	// slow-query threshold.
	Slow bool `json:"slow,omitempty"`
	// TraceID is the statement's end-to-end trace identity; the key
	// into sys.traces when the trace was retained.
	TraceID string `json:"trace_id,omitempty"`
	// Stats is the executor's account of the statement (nil for DDL
	// and failed statements).
	Stats *exec.Stats `json:"stats,omitempty"`
}

// queryLog is a fixed-size ring of recent QueryRecords.
type queryLog struct {
	mu   sync.Mutex
	next int64
	buf  [queryRingSize]QueryRecord
	pos  int
	n    int
}

func (l *queryLog) add(r QueryRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next++
	r.ID = l.next
	l.buf[l.pos] = r
	l.pos = (l.pos + 1) % queryRingSize
	if l.n < queryRingSize {
		l.n++
	}
}

// recent returns the retained records newest-first.
func (l *queryLog) recent() []QueryRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QueryRecord, 0, l.n)
	for i := 1; i <= l.n; i++ {
		out = append(out, l.buf[(l.pos-i+queryRingSize)%queryRingSize])
	}
	return out
}

// lastStats returns the newest record's Stats that is non-nil.
func (l *queryLog) lastStats() *exec.Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := 1; i <= l.n; i++ {
		if st := l.buf[(l.pos-i+queryRingSize)%queryRingSize].Stats; st != nil {
			return st
		}
	}
	return nil
}

// ObserveStatement records an externally executed statement in this
// instance's query ring, trace store and counters, exactly as the
// in-process dispatch paths do. The cluster coordinator runs
// statements through shard fan-out rather than this DB's executor, yet
// its sys.queries/sys.traces views live here — this is how its
// fan-out statements (with their hand-built coordinator→shard span
// trees in st.Root) earn the same observability as local ones.
func (d *DB) ObserveStatement(ctx context.Context, sql string, start time.Time, st *exec.Stats, err error) {
	d.noteQuery(ctx, sql, start, st, err)
}

// noteQuery records a finished statement in the ring and updates the
// process-wide query counters. It is called on every dispatch path —
// Exec, Run, ExecScript, QueryStream and prepared execution — so it is
// also where every statement earns its trace identity: the stats span
// tree is stamped with trace/span IDs (adopting the caller's
// SpanContext when the serving layer attached one) and observed into
// the tail-sampling trace store, and statements over the SlowQuery
// threshold emit the structured slow-query log line.
func (d *DB) noteQuery(ctx context.Context, sql string, start time.Time, st *exec.Stats, err error) {
	dur := time.Since(start)
	rec := QueryRecord{SQL: sql, Start: start, Duration: dur, Stats: st}
	if sess, ok := SessionFromContext(ctx); ok {
		rec.SessionID = sess.ID
		rec.RemoteAddr = sess.RemoteAddr
	}
	obs.Queries.Inc()
	if err != nil {
		rec.Err = err.Error()
		obs.QueryErrors.Inc()
	}
	if dur >= d.opts.SlowQuery {
		rec.Slow = true
		obs.SlowQueries.Inc()
	}
	tid, spans := d.stampTrace(ctx, start, dur, st)
	rec.TraceID = tid
	d.traces.Observe(trace.Record{
		TraceID:   tid,
		SQL:       sql,
		SessionID: rec.SessionID,
		Start:     start,
		Duration:  dur,
		Err:       rec.Err,
		Slow:      rec.Slow,
		Spans:     spans,
	})
	if rec.Slow {
		var rowsScanned int64
		if st != nil {
			rowsScanned = st.RowsScanned
		}
		d.logger.LogAttrs(ctx, slog.LevelWarn, "slow query",
			slog.String("kind", statementKind(sql)),
			slog.Float64("duration_ms", float64(dur)/float64(time.Millisecond)),
			slog.Int64("rows_scanned", rowsScanned),
			slog.String("trace_id", tid),
			slog.Int64("session_id", rec.SessionID),
		)
	}
	d.qlog.add(rec)
}

// RecentQueries returns the retained recent statements, newest first.
// sys.queries and the debug endpoint are views over this.
func (d *DB) RecentQueries() []QueryRecord { return d.qlog.recent() }
