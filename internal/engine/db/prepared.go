package db

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine/exec"
	"repro/internal/engine/obs"
	"repro/internal/engine/sema"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
)

// ErrPlanStale reports that the catalog epoch moved (a table or view
// was created or dropped) after the statement was prepared; the plan's
// captured table handles may no longer match the catalog, so execution
// is refused rather than risking a mismatched schema. Re-prepare to
// continue.
var ErrPlanStale = errors.New("db: prepared plan is stale (catalog changed since PREPARE)")

// defaultPlanCacheSize bounds the LRU plan cache unprepared SELECT
// traffic reads through.
const defaultPlanCacheSize = 256

// Prepared is a statement planned once for repeated execution: parsed,
// sema-checked, view-expanded and (for the point-scoring SELECT shape)
// compiled to closures at prepare time. Execute binds `?` parameter
// values and runs. A Prepared is safe for concurrent use; executions
// that race a CREATE/DROP either use the pre-DDL plan consistently or
// fail with ErrPlanStale.
type Prepared struct {
	db        *DB
	id        int64
	sql       string
	epoch     int64 // catalog epoch the plan was built under
	numParams int
	created   time.Time
	cached    bool // owned by the plan cache, not an explicit Prepare

	sel *exec.PreparedSelect // non-nil for SELECT
	ins *sqlparser.Insert    // non-nil for INSERT (views pre-expanded)

	execs  atomic.Int64
	closed atomic.Bool
}

// Prepare parses, checks and plans one statement for repeated
// execution with `?` positional parameters.
func (d *DB) Prepare(sql string) (*Prepared, error) {
	return d.PrepareContext(context.Background(), sql)
}

// PrepareContext is Prepare under a context.
func (d *DB) PrepareContext(ctx context.Context, sql string) (*Prepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	p, err := d.prepareParsed(sql, stmt, false)
	if err != nil {
		return nil, err
	}
	obs.PrepareSeconds.Observe(time.Since(start).Seconds())
	return p, nil
}

// prepareParsed builds the plan for an already-parsed statement. The
// epoch is loaded before planning: if a DDL lands while we plan, the
// recorded epoch is already behind and the first Execute fails stale
// instead of running a half-old plan.
func (d *DB) prepareParsed(sql string, stmt sqlparser.Statement, cached bool) (*Prepared, error) {
	p := &Prepared{
		db:      d,
		sql:     sql,
		epoch:   d.epoch.Load(),
		created: time.Now(),
		cached:  cached,
	}
	switch st := stmt.(type) {
	case *sqlparser.Select:
		expanded, err := d.expandViews(st, 0)
		if err != nil {
			return nil, err
		}
		// System tables are materialized fresh for every statement; a
		// plan would capture one snapshot and replay it forever (a
		// cached "SELECT * FROM sys.metrics" that never moves). Refuse,
		// so dispatch falls back to the ad-hoc path and clients learn
		// the statement is not preparable.
		for _, ref := range expanded.From {
			if strings.HasPrefix(strings.ToLower(ref.Name), sysPrefix) {
				return nil, fmt.Errorf("db: cannot prepare %q: system tables are materialized per statement", ref.Name)
			}
		}
		ps, err := exec.PrepareSelect(expanded, d.env())
		if err != nil {
			return nil, err
		}
		p.sel = ps
		p.numParams = ps.NumParams()
	case *sqlparser.Insert:
		ins := st
		if st.Query != nil {
			expanded, err := d.expandViews(st.Query, 0)
			if err != nil {
				return nil, err
			}
			clone := *st
			clone.Query = expanded
			ins = &clone
		}
		if err := sema.CheckStatement(ins, exec.SemaEnv(d.env())); err != nil {
			return nil, err
		}
		p.ins = ins
		p.numParams = sqlparser.CountParams(ins)
	default:
		return nil, fmt.Errorf("db: cannot prepare %s; only SELECT and INSERT are preparable", stmtText(stmt))
	}
	d.prepMu.Lock()
	d.prepID++
	p.id = d.prepID
	d.preps[p.id] = p
	d.prepMu.Unlock()
	return p, nil
}

// SQL returns the statement text the plan was prepared from.
func (p *Prepared) SQL() string { return p.sql }

// NumParams reports how many `?` slots the statement has.
func (p *Prepared) NumParams() int { return p.numParams }

// ready gates every execution: closed plans refuse to run, and a
// catalog epoch that moved since PREPARE surfaces as ErrPlanStale. A
// cache-owned plan that was invalidated concurrently also reports
// stale (the cache closes entries it discards).
func (p *Prepared) ready() error {
	if p.closed.Load() {
		if p.cached {
			return ErrPlanStale
		}
		return fmt.Errorf("db: prepared statement is closed")
	}
	if p.db.epoch.Load() != p.epoch {
		return ErrPlanStale
	}
	return nil
}

// Execute binds args and runs the prepared statement.
func (p *Prepared) Execute(args ...sqltypes.Value) (*exec.Result, error) {
	return p.ExecuteContext(context.Background(), args...)
}

// ExecuteContext binds args and runs the prepared statement; like
// every other dispatch path it is recorded in the recent-query ring.
func (p *Prepared) ExecuteContext(ctx context.Context, args ...sqltypes.Value) (*exec.Result, error) {
	if err := p.ready(); err != nil {
		return nil, err
	}
	start := time.Now()
	var res *exec.Result
	var err error
	if p.sel != nil {
		res, err = p.sel.ExecuteContext(ctx, args)
	} else {
		res, err = p.executeInsert(ctx, args)
	}
	var st *exec.Stats
	if res != nil {
		st = res.Stats
	}
	p.db.noteQuery(ctx, p.sql, start, st, err)
	if err == nil {
		p.execs.Add(1)
	}
	return res, err
}

// ExecuteStreamContext binds args and streams result rows to sink;
// only prepared SELECTs without ORDER BY/LIMIT can stream.
func (p *Prepared) ExecuteStreamContext(ctx context.Context, sink exec.RowSink, args ...sqltypes.Value) (*sqltypes.Schema, *exec.Stats, error) {
	if err := p.ready(); err != nil {
		return nil, nil, err
	}
	if p.sel == nil {
		return nil, nil, fmt.Errorf("db: ExecuteStream requires a prepared SELECT")
	}
	start := time.Now()
	schema, stats, err := p.sel.ExecuteStreamContext(ctx, args, sink)
	p.db.noteQuery(ctx, p.sql, start, stats, err)
	if err == nil {
		p.execs.Add(1)
	}
	return schema, stats, err
}

// Streamable reports whether ExecuteStreamContext can run this plan.
func (p *Prepared) Streamable() bool {
	return p.sel != nil && p.sel.Streamable()
}

func (p *Prepared) executeInsert(ctx context.Context, args []sqltypes.Value) (*exec.Result, error) {
	if len(args) != p.numParams {
		return nil, fmt.Errorf("db: prepared statement expects %d parameter(s), got %d", p.numParams, len(args))
	}
	bound, err := exec.BindStatementArgs(p.ins, args)
	if err != nil {
		return nil, err
	}
	return exec.Insert(ctx, bound.(*sqlparser.Insert), p.db.env())
}

// Close releases the plan and removes it from sys.prepared. Closing
// twice is a no-op; in-flight executions finish on the pre-close plan.
func (p *Prepared) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	p.db.prepMu.Lock()
	delete(p.db.preps, p.id)
	p.db.prepMu.Unlock()
	return nil
}

// planCache is the capacity-bounded LRU of cache-owned Prepared plans,
// keyed by exact SQL text. Entries are invalidated lazily: a lookup
// whose entry was planned under an older catalog epoch discards it and
// reports a miss.
type planCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List               // front = most recently used; values are *Prepared
	index map[string]*list.Element // sql text → element
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, lru: list.New(), index: make(map[string]*list.Element)}
}

// lookup returns the cached plan for sql when it was planned under
// epoch; otherwise nil (and counts the miss/invalidation).
func (c *planCache) lookup(sql string, epoch int64) *Prepared {
	c.mu.Lock()
	el, ok := c.index[sql]
	if !ok {
		c.mu.Unlock()
		obs.PlanCacheMisses.Inc()
		return nil
	}
	p := el.Value.(*Prepared)
	if p.epoch != epoch {
		c.lru.Remove(el)
		delete(c.index, sql)
		c.mu.Unlock()
		p.Close()
		obs.PlanCacheInvalidations.Inc()
		obs.PlanCacheMisses.Inc()
		return nil
	}
	c.lru.MoveToFront(el)
	c.mu.Unlock()
	obs.PlanCacheHits.Inc()
	return p
}

// add inserts p (replacing any entry with the same SQL), then evicts
// past capacity. Displaced plans are closed outside the lock.
func (c *planCache) add(p *Prepared) {
	var displaced []*Prepared
	c.mu.Lock()
	if el, ok := c.index[p.sql]; ok {
		displaced = append(displaced, el.Value.(*Prepared))
		c.lru.Remove(el)
		delete(c.index, p.sql)
	}
	c.index[p.sql] = c.lru.PushFront(p)
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		bp := back.Value.(*Prepared)
		c.lru.Remove(back)
		delete(c.index, bp.sql)
		displaced = append(displaced, bp)
		obs.PlanCacheEvictions.Inc()
	}
	c.mu.Unlock()
	for _, dp := range displaced {
		dp.Close()
	}
}

// sysPrepared materializes the sys.prepared virtual table: one row per
// live prepared statement, explicit and plan-cache-owned alike.
func (d *DB) sysPrepared() ([]sqltypes.Column, []sqltypes.Row, error) {
	cols := []sqltypes.Column{
		{Name: "id", Type: sqltypes.TypeBigInt},
		{Name: "sql_text", Type: sqltypes.TypeVarChar},
		{Name: "params", Type: sqltypes.TypeBigInt},
		{Name: "executions", Type: sqltypes.TypeBigInt},
		{Name: "cached", Type: sqltypes.TypeBool},
		{Name: "stale", Type: sqltypes.TypeBool},
		{Name: "created", Type: sqltypes.TypeVarChar},
	}
	d.prepMu.Lock()
	preps := make([]*Prepared, 0, len(d.preps))
	for _, p := range d.preps {
		preps = append(preps, p)
	}
	d.prepMu.Unlock()
	sort.Slice(preps, func(i, j int) bool { return preps[i].id < preps[j].id })
	epoch := d.epoch.Load()
	rows := make([]sqltypes.Row, 0, len(preps))
	for _, p := range preps {
		rows = append(rows, sqltypes.Row{
			sqltypes.NewBigInt(p.id),
			sqltypes.NewVarChar(p.sql),
			sqltypes.NewBigInt(int64(p.numParams)),
			sqltypes.NewBigInt(p.execs.Load()),
			sqltypes.NewBool(p.cached),
			sqltypes.NewBool(p.epoch != epoch),
			sqltypes.NewVarChar(p.created.Format(time.RFC3339Nano)),
		})
	}
	return cols, rows, nil
}
