package db

import (
	"fmt"
	"math"
	"testing"
)

// viewFixture builds base tables shaped like the paper's §3.6 example:
// a customer reference table and a transaction table the analysis
// dimensions are derived from.
func viewFixture(t *testing.T, d *DB) {
	t.Helper()
	mustExec(t, d, "CREATE TABLE cust (id BIGINT, state VARCHAR, active BIGINT)")
	mustExec(t, d, "CREATE TABLE tx (id BIGINT, amount DOUBLE)")
	for i := 1; i <= 12; i++ {
		state := "tx"
		if i%3 == 0 {
			state = "ca"
		}
		active := i % 2
		mustExec(t, d, sprintf("INSERT INTO cust VALUES (%d, '%s', %d)", i, state, active))
		mustExec(t, d, sprintf("INSERT INTO tx VALUES (%d, %d.5)", i, i*10))
	}
}

func sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

func TestCreateAndSelectSimpleView(t *testing.T) {
	d := openTest(t)
	viewFixture(t, d)
	mustExec(t, d, `CREATE VIEW v AS SELECT cust.id AS i,
		CASE WHEN active = 1 THEN 1.0 ELSE 0.0 END AS is_active,
		amount * 2 AS double_amount
		FROM cust CROSS JOIN tx WHERE cust.id = tx.id`)
	rows := query(t, d, "SELECT i, is_active, double_amount FROM v ORDER BY i")
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0][1] != "1" || rows[0][2] != "21" { // id=1: active, 10.5*2
		t.Fatalf("row = %v", rows[0])
	}
	// View columns work in WHERE and expressions.
	rows = query(t, d, "SELECT count(*) FROM v WHERE is_active = 1 AND double_amount > 100")
	// ids 1..12; active = odd id; double_amount = 21·id > 100 → id ≥ 5;
	// odd ids ≥ 5 are 5, 7, 9, 11 → count 4.
	if rows[0][0] != "4" {
		t.Fatalf("count = %v", rows[0])
	}
}

func TestViewAggregation(t *testing.T) {
	d := openTest(t)
	viewFixture(t, d)
	mustExec(t, d, `CREATE VIEW v AS SELECT cust.id AS i, amount AS amt, state AS st
		FROM cust CROSS JOIN tx WHERE cust.id = tx.id`)
	// Aggregate over the view with GROUP BY on a view column.
	rows := query(t, d, "SELECT st, count(*), sum(amt) FROM v GROUP BY st ORDER BY st")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "ca" || rows[0][1] != "4" {
		t.Fatalf("ca group = %v", rows[0])
	}
	// sum over tx states: ids 3,6,9,12 → (30+60+90+120)+4*0.5 = 302
	if math.Abs(parseF(t, rows[0][2])-302) > 1e-9 {
		t.Fatalf("ca sum = %v", rows[0][2])
	}
}

func TestViewWithUDFOverIt(t *testing.T) {
	// The paper's real use: the summary UDF scanning a derived view.
	d := openTest(t)
	viewFixture(t, d)
	if err := d.Aggregates().Register(sumPairAgg{}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, d, `CREATE VIEW xv AS SELECT amount AS X1, amount * amount AS X2
		FROM cust CROSS JOIN tx WHERE cust.id = tx.id`)
	rows := query(t, d, "SELECT sumpair(X1, X2) FROM xv")
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestViewStar(t *testing.T) {
	d := openTest(t)
	viewFixture(t, d)
	mustExec(t, d, `CREATE VIEW v AS SELECT id AS i, amount AS amt FROM tx`)
	rows := query(t, d, "SELECT * FROM v ORDER BY i LIMIT 2")
	if len(rows) != 2 || len(rows[0]) != 2 || rows[0][1] != "10.5" {
		t.Fatalf("rows = %v", rows)
	}
	rows = query(t, d, "SELECT v.* FROM v ORDER BY i LIMIT 1")
	if len(rows) != 1 || len(rows[0]) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestNestedViews(t *testing.T) {
	d := openTest(t)
	viewFixture(t, d)
	mustExec(t, d, "CREATE VIEW v1 AS SELECT id AS i, amount AS a FROM tx WHERE amount > 50")
	mustExec(t, d, "CREATE VIEW v2 AS SELECT i, a * 10 AS big FROM v1 WHERE a < 100")
	rows := query(t, d, "SELECT i, big FROM v2 ORDER BY i")
	// amount = 10·id + 0.5 ∈ (50, 100) → ids 5..9.
	if len(rows) != 5 || rows[0][0] != "5" || rows[4][0] != "9" {
		t.Fatalf("rows = %v", rows)
	}
	if math.Abs(parseF(t, rows[0][1])-505) > 1e-9 {
		t.Fatalf("big = %v", rows[0][1])
	}
}

func TestViewJoinedWithTable(t *testing.T) {
	d := openTest(t)
	viewFixture(t, d)
	mustExec(t, d, "CREATE VIEW v AS SELECT id AS i, amount AS amt FROM tx")
	rows := query(t, d, `SELECT cust.id, amt FROM cust CROSS JOIN v
	                     WHERE cust.id = v.i AND cust.active = 1 ORDER BY cust.id`)
	if len(rows) != 6 { // odd ids
		t.Fatalf("rows = %v", rows)
	}
}

func TestInsertSelectFromView(t *testing.T) {
	d := openTest(t)
	viewFixture(t, d)
	mustExec(t, d, "CREATE VIEW v AS SELECT id AS i, amount AS amt FROM tx")
	mustExec(t, d, "CREATE TABLE copy (i BIGINT, amt DOUBLE)")
	mustExec(t, d, "INSERT INTO copy SELECT i, amt FROM v WHERE i <= 3")
	rows := query(t, d, "SELECT count(*) FROM copy")
	if rows[0][0] != "3" {
		t.Fatalf("count = %v", rows[0])
	}
}

func TestViewValidation(t *testing.T) {
	d := openTest(t)
	viewFixture(t, d)
	bad := []string{
		"CREATE VIEW b1 AS SELECT * FROM tx",                    // star outputs
		"CREATE VIEW b2 AS SELECT sum(amount) AS s FROM tx",     // aggregate
		"CREATE VIEW b3 AS SELECT id AS i FROM tx GROUP BY id",  // group by
		"CREATE VIEW b4 AS SELECT id AS i FROM tx ORDER BY id",  // order by
		"CREATE VIEW b5 AS SELECT id AS i FROM tx LIMIT 3",      // limit
		"CREATE VIEW b6 AS SELECT id + 1 FROM tx",               // unnamed expr
		"CREATE VIEW b7 AS SELECT id AS a, amount AS a FROM tx", // dup outputs
		"CREATE VIEW b8 AS SELECT 1 AS one",                     // no FROM
	}
	for _, sql := range bad {
		if _, err := d.Exec(sql); err == nil {
			t.Errorf("%q must fail", sql)
		}
	}
	mustExec(t, d, "CREATE VIEW ok AS SELECT id AS i FROM tx")
	if _, err := d.Exec("CREATE VIEW ok AS SELECT id AS i FROM tx"); err == nil {
		t.Error("duplicate view must fail")
	}
	if _, err := d.Exec("CREATE VIEW tx AS SELECT id AS i FROM cust"); err == nil {
		t.Error("view shadowing a table must fail")
	}
	if _, err := d.Exec("DROP VIEW nope"); err == nil {
		t.Error("dropping a missing view must fail")
	}
	mustExec(t, d, "DROP VIEW IF EXISTS nope")
	mustExec(t, d, "DROP VIEW ok")
	if d.HasView("ok") {
		t.Error("view survived drop")
	}
}

func TestViewPersistence(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDir(Options{Dir: dir, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, d1, "CREATE TABLE tx (id BIGINT, amount DOUBLE)")
	mustExec(t, d1, "INSERT INTO tx VALUES (1, 10), (2, 20)")
	mustExec(t, d1, "CREATE VIEW v AS SELECT id AS i, amount * 2 AS dbl FROM tx WHERE amount > 5")

	d2, err := OpenDir(Options{Dir: dir, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := query(t, d2, "SELECT i, dbl FROM v ORDER BY i")
	if len(rows) != 2 || rows[1][1] != "40" {
		t.Fatalf("rows = %v", rows)
	}
	mustExec(t, d2, "DROP VIEW v")
	d3, err := OpenDir(Options{Dir: dir, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d3.HasView("v") {
		t.Fatal("dropped view resurrected")
	}
}
