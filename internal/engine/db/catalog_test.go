package db

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCatalogPersistence(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDir(Options{Dir: dir, Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, d1, "CREATE TABLE people (id BIGINT, name VARCHAR, score DOUBLE)")
	mustExec(t, d1, "INSERT INTO people VALUES (1, 'ada', 9.5), (2, 'bob', 7.25)")
	mustExec(t, d1, "CREATE TABLE other (a DOUBLE)")
	mustExec(t, d1, "DROP TABLE other")

	// Reopen in a "new process".
	d2, err := OpenDir(Options{Dir: dir, Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d2.HasTable("other") {
		t.Fatal("dropped table resurrected")
	}
	rows := query(t, d2, "SELECT id, name, score FROM people ORDER BY id")
	if len(rows) != 2 || rows[0][1] != "ada" || rows[1][2] != "7.25" {
		t.Fatalf("rows = %v", rows)
	}
	tab, err := d2.Table("people")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d after reattach", tab.NumRows())
	}
	// Appends after reattach keep working.
	mustExec(t, d2, "INSERT INTO people VALUES (3, 'cyd', 1)")
	if got := len(query(t, d2, "SELECT id FROM people")); got != 3 {
		t.Fatalf("%d rows after append", got)
	}
}

func TestCatalogCorruptFails(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "catalog.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(Options{Dir: dir}); err == nil {
		t.Fatal("corrupt catalog must fail to open")
	}
}

func TestCatalogMissingPartitionFails(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDir(Options{Dir: dir, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, d1, "CREATE TABLE t (a DOUBLE)")
	// Remove one partition file behind the catalog's back.
	if err := os.Remove(filepath.Join(dir, "t.p001.dat")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(Options{Dir: dir, Partitions: 2}); err == nil {
		t.Fatal("missing partition must fail to open")
	}
}

func TestInMemoryOpenHasNoCatalog(t *testing.T) {
	d := Open(Options{Partitions: 2})
	mustExec(t, d, "CREATE TABLE t (a DOUBLE)")
	// No files anywhere; nothing to assert beyond not crashing.
	if !d.HasTable("t") {
		t.Fatal("table missing")
	}
}
