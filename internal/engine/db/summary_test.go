package db

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"testing"

	"repro/internal/core"
)

// loadSummaryFixture creates X(i, X1..X3) on disk and inserts n rows
// through the SQL INSERT path, so the write-path observer wiring is
// exercised end to end.
func loadSummaryFixture(t *testing.T, d *DB, n int) {
	t.Helper()
	mustExec(t, d, "CREATE TABLE X (i BIGINT, X1 DOUBLE, X2 DOUBLE, X3 DOUBLE)")
	insertSummaryRows(t, d, 0, n)
}

func insertSummaryRows(t *testing.T, d *DB, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		v := float64(i)
		mustExec(t, d, fmt.Sprintf("INSERT INTO X VALUES (%d, %g, %g, %g)",
			i, v/3, v*v/50+1, 40-v))
	}
}

// TestSummaryCacheWarmRebuildZeroScans is the PR's acceptance
// criterion: after appends, a model rebuild on the warm cache performs
// zero partition scans and matches the cold-scan model within 1e-9.
func TestSummaryCacheWarmRebuildZeroScans(t *testing.T) {
	d := Open(Options{Dir: t.TempDir(), Partitions: 4})
	loadSummaryFixture(t, d, 60)
	ctx := context.Background()
	cols := []string{"X1", "X2", "X3"}

	// Cold: the first read rebuilds with one scan.
	s1, hit, err := d.SummaryNLQ(ctx, "X", cols, core.Triangular)
	if err != nil {
		t.Fatal(err)
	}
	if hit || s1.N != 60 {
		t.Fatalf("cold read: hit=%v n=%g", hit, s1.N)
	}

	// Appends are folded at write time; the entry must stay warm.
	insertSummaryRows(t, d, 60, 90)

	tab, err := d.Table("X")
	if err != nil {
		t.Fatal(err)
	}
	tab.ResetScannedRows()
	s2, hit, err := d.SummaryNLQ(ctx, "X", cols, core.Triangular)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("read after appends missed the cache")
	}
	if n := tab.ScannedRows(); n != 0 {
		t.Fatalf("warm rebuild scanned %d rows, want 0", n)
	}
	if s2.N != 90 {
		t.Fatalf("warm summary covers n=%g, want 90", s2.N)
	}

	// The incrementally maintained summary matches a from-scratch scan
	// within 1e-9 — model outputs derived from it therefore do too.
	d.InvalidateSummaries("X")
	s3, hit, err := d.SummaryNLQ(ctx, "X", cols, core.Triangular)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("invalidate did not force a rebuild")
	}
	closeTo := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	}
	if s2.N != s3.N {
		t.Fatalf("n: warm %g vs rescan %g", s2.N, s3.N)
	}
	for a := 0; a < s2.D; a++ {
		if !closeTo(s2.L[a], s3.L[a]) {
			t.Fatalf("L[%d]: warm %g vs rescan %g", a, s2.L[a], s3.L[a])
		}
		for b := 0; b < s2.D; b++ {
			if !closeTo(s2.QAt(a, b), s3.QAt(a, b)) {
				t.Fatalf("Q[%d,%d]: warm %g vs rescan %g", a, b, s2.QAt(a, b), s3.QAt(a, b))
			}
		}
	}
	// Derived models agree too.
	m2, err := s2.Correlation()
	if err != nil {
		t.Fatal(err)
	}
	m3, err := s3.Correlation()
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < s2.D; a++ {
		for b := 0; b < s2.D; b++ {
			if math.Abs(m2.At(a, b)-m3.At(a, b)) > 1e-9 {
				t.Fatalf("rho[%d,%d]: warm %g vs rescan %g", a, b, m2.At(a, b), m3.At(a, b))
			}
		}
	}
}

// TestSummaryNLQDefaultsAndErrors: nil columns select the DOUBLE
// columns; sys. tables and missing tables are rejected.
func TestSummaryNLQDefaultsAndErrors(t *testing.T) {
	d := openTest(t)
	loadSummaryFixture(t, d, 10)
	ctx := context.Background()
	s, _, err := d.SummaryNLQ(ctx, "X", nil, core.Diagonal)
	if err != nil {
		t.Fatal(err)
	}
	if s.D != 3 || s.N != 10 {
		t.Fatalf("default columns gave d=%d n=%g, want d=3 n=10", s.D, s.N)
	}
	if _, _, err := d.SummaryNLQ(ctx, "sys.metrics", nil, core.Diagonal); err == nil {
		t.Fatal("summary over a sys. table accepted")
	}
	if _, _, err := d.SummaryNLQ(ctx, "nope", nil, core.Diagonal); err == nil {
		t.Fatal("summary over a missing table accepted")
	}
}

// TestSysSummaries: the catalog is visible through SQL with live
// hit/miss accounting and validity state.
func TestSysSummaries(t *testing.T) {
	d := openTest(t)
	loadSummaryFixture(t, d, 12)
	ctx := context.Background()
	cols := []string{"X1", "X2"}
	if _, _, err := d.SummaryNLQ(ctx, "X", cols, core.Triangular); err != nil {
		t.Fatal(err) // miss + rebuild
	}
	if _, _, err := d.SummaryNLQ(ctx, "X", cols, core.Triangular); err != nil {
		t.Fatal(err) // hit
	}
	rows := query(t, d, "SELECT table_name, columns, state, n, hits, misses FROM sys.summaries")
	if len(rows) != 1 {
		t.Fatalf("sys.summaries rows = %v", rows)
	}
	r := rows[0]
	if r[0] != "x" || r[1] != "X1,X2" || r[2] != "fresh" {
		t.Fatalf("sys.summaries row = %v", r)
	}
	if n, _ := strconv.ParseFloat(r[3], 64); n != 12 {
		t.Fatalf("n = %v, want 12", r[3])
	}
	hits, _ := strconv.Atoi(r[4])
	misses, _ := strconv.Atoi(r[5])
	if hits < 1 || misses < 1 {
		t.Fatalf("hits=%d misses=%d, want both ≥ 1", hits, misses)
	}
	// DROP TABLE removes the entry.
	mustExec(t, d, "DROP TABLE X")
	if rows := query(t, d, "SELECT table_name FROM sys.summaries"); len(rows) != 0 {
		t.Fatalf("entries survive DROP TABLE: %v", rows)
	}
}

// TestSummaryMetricsExposed: the four engine_summary_* instruments are
// visible through sys.metrics after cache activity.
func TestSummaryMetricsExposed(t *testing.T) {
	d := openTest(t)
	loadSummaryFixture(t, d, 5)
	ctx := context.Background()
	if _, _, err := d.SummaryNLQ(ctx, "X", nil, core.Triangular); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.SummaryNLQ(ctx, "X", nil, core.Triangular); err != nil {
		t.Fatal(err)
	}
	insertSummaryRows(t, d, 5, 8)
	vals := map[string]float64{}
	for _, r := range query(t, d, "SELECT name, value FROM sys.metrics") {
		f, _ := strconv.ParseFloat(r[1], 64)
		vals[r[0]] = f
	}
	for _, name := range []string{
		"engine_summary_hits",
		"engine_summary_misses",
		"engine_summary_incremental_updates",
	} {
		if vals[name] <= 0 {
			t.Fatalf("%s = %v, want > 0 (all: hits=%v misses=%v inc=%v)",
				name, vals[name], vals["engine_summary_hits"],
				vals["engine_summary_misses"], vals["engine_summary_incremental_updates"])
		}
	}
	if vals["engine_summary_rebuild_seconds_count"] <= 0 {
		t.Fatalf("engine_summary_rebuild_seconds_count = %v, want > 0",
			vals["engine_summary_rebuild_seconds_count"])
	}
}
