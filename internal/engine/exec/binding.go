package exec

import (
	"fmt"
	"strings"

	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/storage"
)

// boundTable is one FROM entry resolved against the catalog, with its
// offset in the flattened join row.
type boundTable struct {
	ref    sqlparser.TableRef
	table  *storage.Table
	offset int
}

// binding resolves column references against the flattened row formed
// by cross-joining the FROM tables in order.
type binding struct {
	tables []boundTable
	width  int
}

func bindFrom(from []sqlparser.TableRef, cat Catalog) (*binding, error) {
	b := &binding{}
	seen := make(map[string]bool)
	for _, ref := range from {
		t, err := cat.Table(ref.Name)
		if err != nil {
			return nil, err
		}
		name := strings.ToLower(ref.RefName())
		if seen[name] {
			return nil, fmt.Errorf("exec: duplicate table name %q in FROM; use aliases", ref.RefName())
		}
		seen[name] = true
		b.tables = append(b.tables, boundTable{ref: ref, table: t, offset: b.width})
		b.width += t.Schema().Len()
	}
	return b, nil
}

// resolve maps a (table, column) reference to a flat-row ordinal.
func (b *binding) resolve(table, column string) (int, error) {
	if table != "" {
		for _, bt := range b.tables {
			if strings.EqualFold(bt.ref.RefName(), table) {
				idx := bt.table.Schema().Index(column)
				if idx < 0 {
					return 0, fmt.Errorf("exec: table %q has no column %q", table, column)
				}
				return bt.offset + idx, nil
			}
		}
		return 0, fmt.Errorf("exec: unknown table %q", table)
	}
	found := -1
	for _, bt := range b.tables {
		if idx := bt.table.Schema().Index(column); idx >= 0 {
			if found >= 0 {
				return 0, fmt.Errorf("exec: ambiguous column %q", column)
			}
			found = bt.offset + idx
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("exec: unknown column %q", column)
	}
	return found, nil
}

// flatSchema builds the joined-row schema, qualifying duplicate names.
func (b *binding) flatSchema() *sqltypes.Schema {
	var cols []sqltypes.Column
	counts := make(map[string]int)
	for _, bt := range b.tables {
		for _, c := range bt.table.Schema().Columns {
			counts[strings.ToLower(c.Name)]++
		}
	}
	for _, bt := range b.tables {
		for _, c := range bt.table.Schema().Columns {
			name := c.Name
			if counts[strings.ToLower(c.Name)] > 1 {
				name = bt.ref.RefName() + "." + c.Name
			}
			cols = append(cols, sqltypes.Column{Name: name, Type: c.Type})
		}
	}
	return &sqltypes.Schema{Columns: cols}
}

// expandStars rewrites `*` and `t.*` select items into explicit column
// references.
func expandStars(items []sqlparser.SelectItem, b *binding) ([]sqlparser.SelectItem, error) {
	var out []sqlparser.SelectItem
	for _, item := range items {
		if !item.Star {
			out = append(out, item)
			continue
		}
		matched := false
		for _, bt := range b.tables {
			if item.StarTable != "" && !strings.EqualFold(bt.ref.RefName(), item.StarTable) {
				continue
			}
			matched = true
			for _, c := range bt.table.Schema().Columns {
				out = append(out, sqlparser.SelectItem{
					Expr:  &sqlparser.ColumnRef{Table: bt.ref.RefName(), Name: c.Name},
					Alias: c.Name,
				})
			}
		}
		if !matched {
			return nil, fmt.Errorf("exec: %s.* does not match any table", item.StarTable)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("exec: SELECT list is empty")
	}
	return out, nil
}

// itemName picks the output column name for a select item.
func itemName(item sqlparser.SelectItem, ordinal int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if cr, ok := item.Expr.(*sqlparser.ColumnRef); ok {
		return cr.Name
	}
	s := item.Expr.String()
	if len(s) <= 40 {
		return s
	}
	return fmt.Sprintf("col%d", ordinal+1)
}
