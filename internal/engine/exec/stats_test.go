package exec

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/engine/sqltypes"
)

func TestSkew(t *testing.T) {
	cases := []struct {
		name string
		rows []int64
		want float64
	}{
		{"empty", nil, 0},
		{"all zero", []int64{0, 0, 0}, 0},
		{"balanced", []int64{10, 10, 10, 10}, 1},
		{"idle partitions", []int64{40, 0, 0, 0}, 4},
		{"mild imbalance", []int64{30, 10}, 1.5},
		{"single partition", []int64{7}, 1},
	}
	for _, c := range cases {
		st := &Stats{PartitionRows: c.rows}
		if got := st.Skew(); got != c.want {
			t.Errorf("%s: Skew() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestStatsString(t *testing.T) {
	st := &Stats{
		Partitions:    4,
		Workers:       4,
		RowsScanned:   1000,
		BytesRead:     2048,
		PartitionRows: []int64{250, 250, 250, 250},
		RowsEmitted:   1,
		Plan:          time.Millisecond,
		Scan:          10 * time.Millisecond,
		Merge:         time.Millisecond,
		Finalize:      time.Millisecond,
		Total:         13 * time.Millisecond,
	}
	s := st.String()
	for _, want := range []string{
		"scanned 1000 rows", "(2.0 KB)", "over 4 partitions",
		"[skew 1.00]", "emitted 1 rows", "merge", "finalize", "workers 4",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}

	// Projections (no merge/finalize) omit those phases.
	proj := &Stats{RowsScanned: 5, RowsEmitted: 5}
	if s := proj.String(); strings.Contains(s, "merge") {
		t.Errorf("projection String() = %q, should omit merge", s)
	}
}

func TestRound(t *testing.T) {
	cases := []struct {
		in, want time.Duration
	}{
		{1500 * time.Nanosecond, 2 * time.Microsecond},
		{1234567 * time.Nanosecond, 1230 * time.Microsecond},
		{1234567890 * time.Nanosecond, 1235 * time.Millisecond},
	}
	for _, c := range cases {
		if got := round(c.in); got != c.want {
			t.Errorf("round(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0 B"},
		{1023, "1023 B"},
		{1024, "1.0 KB"},
		{1<<20 - 1, "1024.0 KB"},
		{1 << 20, "1.0 MB"},
		{3 << 20, "3.0 MB"},
	}
	for _, c := range cases {
		if got := formatBytes(c.in); got != c.want {
			t.Errorf("formatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestSpanTreeMatchesStats checks the EXPLAIN ANALYZE invariant: phase
// durations in Stats are taken from the span tree, so the two always
// agree, and scan children cover every partition.
func TestSpanTreeMatchesStats(t *testing.T) {
	env, cat := testEnv(t)
	cat["x"] = newTable(t, "x", []sqltypes.Column{dcol("a")},
		drow(1), drow(2), drow(3), drow(4))

	res, err := Select(context.Background(), sel(t, "SELECT sum(a) FROM x"), env)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st == nil || st.Root == nil {
		t.Fatal("aggregate query returned no span tree")
	}
	if st.Root.Name != "statement" {
		t.Fatalf("root span = %q, want statement", st.Root.Name)
	}
	if got := st.Root.Duration(); got != st.Total {
		t.Errorf("root duration %v != Stats.Total %v", got, st.Total)
	}
	phases := map[string]time.Duration{
		"plan": st.Plan, "scan": st.Scan, "merge": st.Merge, "finalize": st.Finalize,
	}
	for name, want := range phases {
		sp := st.Root.SpanByName(name)
		if sp == nil {
			t.Fatalf("missing %s span", name)
		}
		if sp.Duration() != want {
			t.Errorf("%s span duration %v != Stats %v", name, sp.Duration(), want)
		}
	}
	scan := st.Root.SpanByName("scan")
	if len(scan.Children) != st.Partitions {
		t.Fatalf("scan has %d partition spans, want %d", len(scan.Children), st.Partitions)
	}
	var partRows int64
	for _, c := range scan.Children {
		partRows += c.Rows
	}
	if partRows != st.RowsScanned {
		t.Errorf("partition span rows sum %d != RowsScanned %d", partRows, st.RowsScanned)
	}
	if scan.Rows != st.RowsScanned {
		t.Errorf("scan span rows %d != RowsScanned %d", scan.Rows, st.RowsScanned)
	}
	if st.Root.Rows != st.RowsEmitted {
		t.Errorf("root rows %d != RowsEmitted %d", st.Root.Rows, st.RowsEmitted)
	}
}

func TestRenderTree(t *testing.T) {
	env, cat := testEnv(t)
	cat["x"] = newTable(t, "x", []sqltypes.Column{dcol("a")}, drow(1), drow(2))

	res, err := Select(context.Background(), sel(t, "SELECT a FROM x"), env)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Stats.Root.RenderTree()
	for _, want := range []string{"statement (", "├─ plan (", "└─ scan (", "scan[p0]", "rows=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderTree() missing %q:\n%s", want, out)
		}
	}
	// Projections have no merge/finalize spans.
	if strings.Contains(out, "merge") || strings.Contains(out, "finalize") {
		t.Errorf("projection tree should not contain merge/finalize:\n%s", out)
	}
}

func TestSortChildren(t *testing.T) {
	base := time.Now()
	sp := &Span{Name: "scan"}
	sp.Children = []*Span{
		{Name: "c", Start: base.Add(2 * time.Second)},
		{Name: "a", Start: base},
		{Name: "b", Start: base.Add(time.Second)},
	}
	sp.sortChildren()
	got := []string{sp.Children[0].Name, sp.Children[1].Name, sp.Children[2].Name}
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("sortChildren order = %v, want [a b c]", got)
	}
}
