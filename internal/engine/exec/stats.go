package exec

import (
	"fmt"
	"strings"
	"time"
)

// Stats describes how one statement executed: how much data the
// parallel scan touched, how evenly it was spread over partitions, and
// where the time went across the aggregate UDF protocol's four phases.
// Workers fill their own slots (PartitionRows[p]) or use atomic adds
// during the scan; everything else is written single-threaded, so a
// finished Stats can be read freely.
type Stats struct {
	// Partitions is the driving table's partition count; Workers is the
	// number of goroutines that actually scanned them.
	Partitions int `json:"partitions"`
	Workers    int `json:"workers"`

	// RowsScanned counts driving-table rows delivered to the scan;
	// BytesRead counts encoded bytes decoded from its partition files
	// (0 for in-memory tables). PartitionRows holds per-partition
	// scanned rows, the raw material for skew analysis.
	RowsScanned   int64   `json:"rows_scanned"`
	BytesRead     int64   `json:"bytes_read"`
	PartitionRows []int64 `json:"partition_rows,omitempty"`

	// RowsEmitted counts rows delivered to the result sink.
	RowsEmitted int64 `json:"rows_emitted"`

	// Phase wall times. Plan covers rewrite, binding, pushdown and the
	// join-tail materialization; Scan is the parallel partition scan
	// (UDF phases 1-2: init + accumulate); Merge is the cross-partition
	// partial merge (phase 3); Finalize covers finalization and
	// post-aggregation expression evaluation (phase 4). Projections
	// only populate Plan and Scan.
	Plan     time.Duration `json:"plan_ns"`
	Scan     time.Duration `json:"scan_ns"`
	Merge    time.Duration `json:"merge_ns"`
	Finalize time.Duration `json:"finalize_ns"`
	Total    time.Duration `json:"total_ns"`

	// Root is the statement's span tree: plan/scan[p]/merge/finalize
	// children with start/end times and per-partition scan volumes.
	// The phase durations above are derived from these spans, so the
	// tree's totals agree exactly with them. Nil only for Stats built
	// by hand (tests).
	Root *Span `json:"root,omitempty"`

	// TraceID is the statement's end-to-end trace identity (32 hex
	// digits), stamped by the db layer when the statement finishes. It
	// rides the stats JSON over the wire so a remote EXPLAIN ANALYZE
	// can print the ID that indexes the server's sys.traces.
	TraceID string `json:"trace_id,omitempty"`

	// hasMerge marks aggregate executions, whose merge/finalize phases
	// are observed into the latency histograms even when fast.
	hasMerge bool
}

// ensureRoot returns the statement span, creating it for Stats built
// outside runSelect.
func (s *Stats) ensureRoot() *Span {
	if s.Root == nil {
		s.Root = newSpan("statement")
	}
	return s.Root
}

// Skew is max/mean of per-partition scanned rows: 1.0 is perfectly
// balanced, higher means some partition did disproportionate work.
// Zero-row scans report 0.
func (s *Stats) Skew() float64 {
	var max, sum int64
	for _, r := range s.PartitionRows {
		sum += r
		if r > max {
			max = r
		}
	}
	if sum == 0 || len(s.PartitionRows) == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.PartitionRows))
	return float64(max) / mean
}

// String renders a one-line summary for shells and logs.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scanned %d rows", s.RowsScanned)
	if s.BytesRead > 0 {
		fmt.Fprintf(&b, " (%s)", formatBytes(s.BytesRead))
	}
	if s.Partitions > 0 {
		fmt.Fprintf(&b, " over %d partitions", s.Partitions)
		if sk := s.Skew(); sk > 0 {
			fmt.Fprintf(&b, " [skew %.2f]", sk)
		}
	}
	fmt.Fprintf(&b, ", emitted %d rows; plan %s scan %s", s.RowsEmitted, round(s.Plan), round(s.Scan))
	if s.Merge > 0 || s.Finalize > 0 {
		fmt.Fprintf(&b, " merge %s finalize %s", round(s.Merge), round(s.Finalize))
	}
	fmt.Fprintf(&b, " total %s (workers %d)", round(s.Total), s.Workers)
	return b.String()
}

func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(time.Microsecond)
	}
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
