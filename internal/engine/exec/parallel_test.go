package exec

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/engine/expr"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/storage"
	"repro/internal/engine/udf"
)

func TestRunParallelPanicRecovered(t *testing.T) {
	err := RunParallel(context.Background(), 0, 4, func(ctx context.Context, p int) error {
		if p == 2 {
			panic("udf went boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panic in partition 2") ||
		!strings.Contains(err.Error(), "udf went boom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	// Single-partition fast path takes a different code path.
	err = RunParallel(context.Background(), 1, 1, func(ctx context.Context, p int) error {
		panic("solo boom")
	})
	if err == nil || !strings.Contains(err.Error(), "panic in partition 0") {
		t.Fatalf("single-partition panic not converted: %v", err)
	}
}

func TestRunParallelWorkerBound(t *testing.T) {
	const workers, n = 3, 24
	var cur, peak, ran atomic.Int64
	err := RunParallel(context.Background(), workers, n, func(ctx context.Context, p int) error {
		c := cur.Add(1)
		for {
			old := peak.Load()
			if c <= old || peak.CompareAndSwap(old, c) {
				break
			}
		}
		ran.Add(1)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != n {
		t.Fatalf("ran %d partitions, want %d", ran.Load(), n)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent workers, bound is %d", p, workers)
	}
}

func TestRunParallelFirstErrorCancelsSiblings(t *testing.T) {
	const workers, n = 4, 8
	sentinel := errors.New("partition exploded")
	var started atomic.Int64
	err := RunParallel(context.Background(), workers, n, func(ctx context.Context, p int) error {
		started.Add(1)
		if p == 0 {
			// Let the sibling workers claim their partitions first so the
			// cancellation demonstrably reaches in-flight scans.
			for started.Load() < workers {
			}
			return sentinel
		}
		<-ctx.Done() // a sibling mid-scan observes the cancellation
		return ctx.Err()
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want first error %v, got %v", sentinel, err)
	}
	// Workers stop claiming after the failure: partitions 4..7 never ran.
	if got := started.Load(); got != workers {
		t.Fatalf("%d partitions started, want only the first %d", got, workers)
	}
}

func TestRunParallelOutsideCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := RunParallel(ctx, 2, 8, func(ctx context.Context, p int) error {
		ran.Add(1)
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ran.Load() > 2 {
		t.Fatalf("%d partitions ran under a cancelled context", ran.Load())
	}
}

// multiTable builds an in-memory table with nparts partitions holding
// rowsPerPart rows each (column x DOUBLE, round-robin placement).
func multiTable(t *testing.T, cat memCatalog, name string, nparts, rowsPerPart int) *storage.Table {
	t.Helper()
	tab, err := storage.NewTable(name, &sqltypes.Schema{Columns: []sqltypes.Column{dcol("x")}}, "", nparts)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]sqltypes.Row, nparts*rowsPerPart)
	for i := range rows {
		rows[i] = drow(float64(i))
	}
	if err := tab.Insert(rows...); err != nil {
		t.Fatal(err)
	}
	cat[name] = tab
	return tab
}

func TestScanFaultCancelsSiblingsSequential(t *testing.T) {
	env, cat := testEnv(t)
	env.Workers = 1 // sequential: partitions run in order 0,1,2,...
	tab := multiTable(t, cat, "t", 4, 100)
	tab.SetFault(&storage.Fault{Partition: 0, ScanAfterRows: 10})
	tab.ResetScannedRows()

	_, err := Select(context.Background(), sel(t, "SELECT x FROM t"), env)
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("want injected fault, got %v", err)
	}
	// With one worker the failure on partition 0 must stop the query
	// before any sibling partition is opened: exactly the 10 rows the
	// fault allowed were scanned, not 10 + 3*100.
	if got := tab.ScannedRows(); got != 10 {
		t.Fatalf("scanned %d rows after partition-0 failure, want exactly 10", got)
	}
}

func TestScanFaultCancelsSiblingsConcurrent(t *testing.T) {
	env, cat := testEnv(t)
	const nparts, perPart = 8, 2000
	tab := multiTable(t, cat, "t", nparts, perPart)
	tab.SetFault(&storage.Fault{Partition: 0, ScanAfterRows: 10})
	tab.ResetScannedRows()

	_, err := Select(context.Background(), sel(t, "SELECT x FROM t"), env)
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("want injected fault, got %v", err)
	}
	// Without cancellation every sibling runs to completion and the
	// counter reads 10 + 7*2000 = 14010. With it, each in-flight scan
	// stops within its next 64-row cancellation check. Allow a generous
	// margin for scheduling skew.
	total := int64(10 + (nparts-1)*perPart)
	if got := tab.ScannedRows(); got >= total/2 {
		t.Fatalf("scanned %d of %d rows; siblings were not cancelled early", got, total)
	}
}

func TestScalarUDFPanicContained(t *testing.T) {
	env, cat := testEnv(t)
	multiTable(t, cat, "t", 2, 5)
	if err := env.Funcs.Register(expr.FuncDef{Name: "boom", MinArgs: 1, MaxArgs: 1,
		Fn: func(args []sqltypes.Value) (sqltypes.Value, error) {
			if v, _ := args[0].Float(); v >= 6 {
				panic("scalar udf bug")
			}
			return args[0], nil
		}}); err != nil {
		t.Fatal(err)
	}
	_, err := Select(context.Background(), sel(t, "SELECT boom(x) FROM t"), env)
	if err == nil || !strings.Contains(err.Error(), "panic in partition") ||
		!strings.Contains(err.Error(), "scalar udf bug") {
		t.Fatalf("panicking scalar UDF should fail the query, got %v", err)
	}
	// The engine survives: the same env still runs clean queries.
	res, err := Select(context.Background(), sel(t, "SELECT x FROM t"), env)
	if err != nil || len(res.Rows) != 10 {
		t.Fatalf("engine unusable after contained panic: %v", err)
	}
}

func TestScalarUDFErrorPropagates(t *testing.T) {
	env, cat := testEnv(t)
	multiTable(t, cat, "t", 2, 50) // row value 37 lives at row 18 of partition 1
	failErr := errors.New("scalar udf rejected value 37")
	if err := env.Funcs.Register(expr.FuncDef{Name: "picky", MinArgs: 1, MaxArgs: 1,
		Fn: func(args []sqltypes.Value) (sqltypes.Value, error) {
			if v, _ := args[0].Float(); v == 37 {
				return sqltypes.Value{}, failErr
			}
			return args[0], nil
		}}); err != nil {
		t.Fatal(err)
	}
	_, err := Select(context.Background(), sel(t, "SELECT picky(x) FROM t"), env)
	if !errors.Is(err, failErr) {
		t.Fatalf("want the UDF's own error, got %v", err)
	}
}

// failAgg is a minimal sum-like aggregate UDF whose phases can be made
// to fail or panic on demand.
type failAgg struct {
	accErr, mergeErr, finalErr error
	panicIn                    string // "accumulate", "merge" or "finalize"
}

func (a *failAgg) Name() string              { return "failagg" }
func (a *failAgg) CheckArgs(nargs int) error { return nil }
func (a *failAgg) Init(h *udf.Heap) (udf.State, error) {
	if err := h.Alloc(8); err != nil {
		return nil, err
	}
	return new(float64), nil
}
func (a *failAgg) Accumulate(s udf.State, args []sqltypes.Value) error {
	if a.panicIn == "accumulate" {
		panic("accumulate boom")
	}
	if a.accErr != nil {
		return a.accErr
	}
	v, _ := args[0].Float()
	*(s.(*float64)) += v
	return nil
}
func (a *failAgg) Merge(dst, src udf.State) error {
	if a.panicIn == "merge" {
		panic("merge boom")
	}
	if a.mergeErr != nil {
		return a.mergeErr
	}
	*(dst.(*float64)) += *(src.(*float64))
	return nil
}
func (a *failAgg) Finalize(s udf.State) (sqltypes.Value, error) {
	if a.panicIn == "finalize" {
		panic("finalize boom")
	}
	if a.finalErr != nil {
		return sqltypes.Value{}, a.finalErr
	}
	return sqltypes.NewDouble(*(s.(*float64))), nil
}

func TestAggregateUDFPhaseFailures(t *testing.T) {
	cases := []struct {
		name string
		agg  *failAgg
		want string
	}{
		{"accumulate error", &failAgg{accErr: errors.New("phase 2 failed")}, "phase 2 failed"},
		{"merge error", &failAgg{mergeErr: errors.New("phase 3 failed")}, "phase 3 failed"},
		{"finalize error", &failAgg{finalErr: errors.New("phase 4 failed")}, "phase 4 failed"},
		{"accumulate panic", &failAgg{panicIn: "accumulate"}, "panic in partition"},
		{"merge panic", &failAgg{panicIn: "merge"}, "panic during aggregation"},
		{"finalize panic", &failAgg{panicIn: "finalize"}, "panic during aggregation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env, cat := testEnv(t)
			// Two partitions, both non-empty, so the global aggregate's
			// group exists in each and Merge (phase 3) really runs.
			multiTable(t, cat, "t", 2, 4)
			if err := env.Aggs.Register(tc.agg); err != nil {
				t.Fatal(err)
			}
			_, err := Select(context.Background(), sel(t, "SELECT failagg(x) FROM t"), env)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
	// Control: the same UDF with no failure armed works end to end.
	env, cat := testEnv(t)
	multiTable(t, cat, "t", 2, 4) // x = 0..7, sum 28
	if err := env.Aggs.Register(&failAgg{}); err != nil {
		t.Fatal(err)
	}
	res, err := Select(context.Background(), sel(t, "SELECT failagg(x) FROM t"), env)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].MustFloat(); got != 28 {
		t.Fatalf("control sum = %v, want 28", got)
	}
}

func TestQueryStats(t *testing.T) {
	env, cat := testEnv(t)
	tab, err := storage.NewTable("t", &sqltypes.Schema{Columns: []sqltypes.Column{dcol("x")}}, t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = drow(float64(i))
	}
	if err := tab.Insert(rows...); err != nil {
		t.Fatal(err)
	}
	cat["t"] = tab
	env.Workers = 2

	res, err := Select(context.Background(), sel(t, "SELECT x FROM t WHERE x < 40"), env)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st == nil {
		t.Fatal("projection result has no stats")
	}
	if st.RowsScanned != n {
		t.Fatalf("RowsScanned = %d, want %d", st.RowsScanned, n)
	}
	if st.RowsEmitted != 40 || len(res.Rows) != 40 {
		t.Fatalf("RowsEmitted = %d (%d rows), want 40", st.RowsEmitted, len(res.Rows))
	}
	if st.Partitions != 4 || len(st.PartitionRows) != 4 {
		t.Fatalf("Partitions = %d (%d slots)", st.Partitions, len(st.PartitionRows))
	}
	var sum int64
	for _, c := range st.PartitionRows {
		sum += c
	}
	if sum != st.RowsScanned {
		t.Fatalf("per-partition rows sum to %d, RowsScanned = %d", sum, st.RowsScanned)
	}
	if st.BytesRead <= 0 {
		t.Fatalf("BytesRead = %d for an on-disk scan", st.BytesRead)
	}
	if st.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", st.Workers)
	}
	if st.Skew() != 1 { // 25 rows in each of 4 partitions
		t.Fatalf("Skew = %v for a balanced table", st.Skew())
	}
	if st.Total <= 0 || st.Scan <= 0 {
		t.Fatalf("phase times not recorded: total %v scan %v", st.Total, st.Scan)
	}
	if s := st.String(); !strings.Contains(s, "scanned 100 rows") {
		t.Fatalf("stats render missing scan count: %q", s)
	}

	// Aggregates record the merge/finalize phases too.
	res, err = Select(context.Background(), sel(t, "SELECT sum(x) FROM t"), env)
	if err != nil {
		t.Fatal(err)
	}
	st = res.Stats
	if st == nil || st.RowsScanned != n || st.RowsEmitted != 1 {
		t.Fatalf("aggregate stats wrong: %+v", st)
	}
	if st.Finalize < 0 || st.Merge < 0 || st.Total < st.Scan {
		t.Fatalf("aggregate phase times inconsistent: %+v", st)
	}
}

func TestSelectContextCancelled(t *testing.T) {
	env, cat := testEnv(t)
	multiTable(t, cat, "t", 4, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Select(ctx, sel(t, "SELECT x FROM t"), env); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
