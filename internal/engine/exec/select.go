package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/engine/expr"
	"repro/internal/engine/obs"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/udf"
)

// Env bundles the registries a query executes against.
type Env struct {
	Catalog Catalog
	Funcs   *expr.Registry // scalar functions and scalar UDFs
	Aggs    *udf.Registry  // standard aggregates and aggregate UDFs
	// Workers bounds the scan worker pool independently of the
	// partition count; <= 0 runs one goroutine per partition.
	Workers int
	// Columnar opts eligible scans into the block-at-a-time execution
	// path (column segments + vector programs). Ineligible statements
	// fall back to the row path with identical results.
	Columnar bool
}

// Select runs a SELECT and materializes the result, applying ORDER BY
// and LIMIT. ORDER BY keys that are not output columns are computed as
// hidden trailing columns and stripped after sorting. Cancelling ctx
// (nil is treated as background) stops the partition scans between
// rows.
func Select(ctx context.Context, sel *sqlparser.Select, env *Env) (*Result, error) {
	if err := analyze(sel, env); err != nil {
		return nil, err
	}
	run := sel
	hidden := 0
	if len(sel.OrderBy) > 0 {
		outNames := outputNames(sel)
		var extra []sqlparser.SelectItem
		for _, o := range sel.OrderBy {
			if orderKeyInOutput(o.Expr, outNames) {
				continue
			}
			extra = append(extra, sqlparser.SelectItem{
				Expr:  o.Expr,
				Alias: fmt.Sprintf("$order%d", len(extra)),
			})
		}
		if len(extra) > 0 {
			clone := *sel
			clone.Items = append(append([]sqlparser.SelectItem{}, sel.Items...), extra...)
			run = &clone
			hidden = len(extra)
		}
	}
	schema, rows, stats, err := runSelect(ctx, run, env, nil)
	if err != nil {
		return nil, err
	}
	if len(sel.OrderBy) > 0 {
		// Rewrite hidden keys to their synthetic aliases for sorting.
		order := make([]sqlparser.OrderItem, len(sel.OrderBy))
		outNames := outputNames(sel)
		next := 0
		for i, o := range sel.OrderBy {
			order[i] = o
			if !orderKeyInOutput(o.Expr, outNames) {
				order[i].Expr = &sqlparser.ColumnRef{Name: fmt.Sprintf("$order%d", next)}
				next++
			}
		}
		if err := sortRows(order, schema, rows, env); err != nil {
			return nil, err
		}
	}
	if sel.Limit != nil && int64(len(rows)) > *sel.Limit {
		rows = rows[:*sel.Limit]
	}
	if hidden > 0 {
		keep := schema.Len() - hidden
		schema = &sqltypes.Schema{Columns: schema.Columns[:keep]}
		for i, r := range rows {
			rows[i] = r[:keep]
		}
	}
	return &Result{Schema: schema, Rows: rows, Stats: stats}, nil
}

// outputNames collects the visible output column names of a select.
func outputNames(sel *sqlparser.Select) map[string]bool {
	out := make(map[string]bool)
	for i, item := range sel.Items {
		if item.Star {
			continue // star outputs resolve by name at sort time anyway
		}
		out[strings.ToLower(itemName(item, i))] = true
	}
	return out
}

// orderKeyInOutput reports whether an ORDER BY key can be evaluated
// against the output schema directly: an ordinal, an output name, or an
// expression whose column references are all output columns.
func orderKeyInOutput(e sqlparser.Expr, outNames map[string]bool) bool {
	if lit, ok := e.(*sqlparser.NumberLit); ok && lit.IsInt {
		return true
	}
	ok := true
	walkRefs(e, func(cr *sqlparser.ColumnRef) {
		if cr.Table != "" || !outNames[strings.ToLower(cr.Name)] {
			ok = false
		}
	})
	return ok
}

// SelectStream runs a SELECT, streaming rows to sink (concurrently).
// ORDER BY and LIMIT are rejected in streaming mode. The returned
// Stats describe the completed scan.
func SelectStream(ctx context.Context, sel *sqlparser.Select, env *Env, sink RowSink) (*sqltypes.Schema, *Stats, error) {
	if len(sel.OrderBy) > 0 || sel.Limit != nil {
		return nil, nil, fmt.Errorf("exec: ORDER BY/LIMIT not supported in streaming mode")
	}
	if err := analyze(sel, env); err != nil {
		return nil, nil, err
	}
	schema, _, stats, err := runSelect(ctx, sel, env, sink)
	return schema, stats, err
}

// runSelect plans and executes; when sink is nil rows are materialized
// and returned, otherwise they stream to sink.
func runSelect(ctx context.Context, sel *sqlparser.Select, env *Env, sink RowSink) (*sqltypes.Schema, []sqltypes.Row, *Stats, error) {
	var col *collector
	if sink == nil {
		col = &collector{}
		sink = col.sink
	}
	emitRows := func() []sqltypes.Row {
		if col == nil {
			return nil
		}
		return col.rows
	}
	st := &Stats{Workers: 1}
	finish := beginSelectObs(st)
	defer finish()
	// Count emitted rows in a local atomic shared by the aggregate and
	// projection paths' concurrent sink calls, published to the plain
	// Stats field after the workers join (and before finish reads it —
	// deferred last, runs first).
	emitted := new(atomic.Int64)
	defer func() { st.RowsEmitted = emitted.Load() }()
	sink = countedSink(emitted, sink)

	// Table-less SELECT of constants.
	if len(sel.From) == 0 {
		schema, err := constSelect(sel, env, sink)
		return schema, emitRows(), st, err
	}

	b, err := bindFrom(sel.From, env.Catalog)
	if err != nil {
		return nil, nil, nil, err
	}
	items, err := expandStars(sel.Items, b)
	if err != nil {
		return nil, nil, nil, err
	}

	aggNames := env.Aggs.Names()
	isAgg := len(sel.GroupBy) > 0
	for _, item := range items {
		if expr.ContainsAggregate(item.Expr, aggNames) {
			isAgg = true
		}
	}
	if sel.Having != nil && !isAgg {
		return nil, nil, nil, fmt.Errorf("exec: HAVING requires GROUP BY or aggregates")
	}

	if isAgg {
		schema, err := runAggregate(ctx, sel, items, b, env, sink, st)
		return schema, emitRows(), st, err
	}
	schema, err := runProjection(ctx, sel, items, b, env, sink, st)
	return schema, emitRows(), st, err
}

// beginSelectObs starts the root span and the engine-level query
// gauges/histograms for one SELECT execution; the returned finish
// function completes them. Shared by the ad-hoc and prepared paths.
func beginSelectObs(st *Stats) func() {
	root := st.ensureRoot()
	obs.ActiveQueries.Inc()
	return func() {
		root.finish()
		root.Rows = st.RowsEmitted
		st.Total = root.Duration()
		obs.ActiveQueries.Dec()
		obs.QuerySeconds.Observe(st.Total.Seconds())
		obs.RowsEmitted.Add(st.RowsEmitted)
		if st.Partitions > 0 {
			obs.PlanSeconds.Observe(st.Plan.Seconds())
			obs.ScanSeconds.Observe(st.Scan.Seconds())
		}
		if st.hasMerge {
			obs.MergeSeconds.Observe(st.Merge.Seconds())
			obs.FinalizeSeconds.Observe(st.Finalize.Seconds())
		}
	}
}

// countedSink wraps sink so every emitted row bumps emitted, covering
// concurrent sink calls from partition workers. The count lives in a
// dedicated typed atomic rather than a Stats field so the Stats struct
// stays plainly readable — mixing atomic and plain access to the same
// field is a race (see the atomichygiene analyzer).
func countedSink(emitted *atomic.Int64, sink RowSink) RowSink {
	return func(r sqltypes.Row) error {
		if err := sink(r); err != nil {
			return err
		}
		emitted.Add(1)
		return nil
	}
}

// scanWorkers resolves the worker-pool bound for n partitions.
func scanWorkers(env *Env, n int) int {
	if env.Workers > 0 && env.Workers < n {
		return env.Workers
	}
	return n
}

// constSelect evaluates a FROM-less select list once.
func constSelect(sel *sqlparser.Select, env *Env, sink RowSink) (*sqltypes.Schema, error) {
	if len(sel.GroupBy) > 0 || sel.Where != nil {
		return nil, fmt.Errorf("exec: WHERE/GROUP BY require a FROM clause")
	}
	cols := make([]sqltypes.Column, len(sel.Items))
	row := make(sqltypes.Row, len(sel.Items))
	for i, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("exec: * requires a FROM clause")
		}
		ev, err := expr.Compile(item.Expr, nil, env.Funcs)
		if err != nil {
			return nil, err
		}
		v, err := ev.Eval(nil)
		if err != nil {
			return nil, err
		}
		row[i] = v
		cols[i] = sqltypes.Column{Name: itemName(item, i), Type: v.Type()}
	}
	return &sqltypes.Schema{Columns: cols}, sink(row)
}

// joinTail materializes the cross product of all FROM tables after the
// first, pushing down the WHERE conjuncts that reference a single tail
// table so selective filters (the scoring queries' `l1.j = 1 AND ...`)
// apply before the product is formed — the aliased k-way cross joins of
// §3.5 stay k rows wide instead of exploding combinatorially. It
// returns the tail rows and the residual WHERE that still has to run
// per joined row. A sanity cap catches genuinely large-large joins.
const maxJoinTailRows = 1 << 20

func joinTail(ctx context.Context, b *binding, where sqlparser.Expr, funcs *expr.Registry) ([]sqltypes.Row, sqlparser.Expr, error) {
	tp := planTail(b, where)
	filters, err := tp.compileFilters(b, func(e sqlparser.Expr, r expr.Resolver) (expr.Evaluator, error) {
		return expr.Compile(e, r, funcs)
	})
	if err != nil {
		return nil, nil, err
	}
	tail, err := tp.scan(ctx, b, filters)
	if err != nil {
		return nil, nil, err
	}
	return tail, tp.residual, nil
}

// tailPlan is the data-independent half of a cross-join tail: which
// WHERE conjuncts push down to which tail table, and the residual
// predicate that still runs per joined row. A prepared statement keeps
// one tailPlan and re-scans the (small) tail tables each EXECUTE, so
// inserts into model tables are always visible.
type tailPlan struct {
	splits   [][]sqlparser.Expr // per FROM index: conjuncts pushed to that table
	residual sqlparser.Expr
}

// planTail decides the push-down split. The decision is structural
// (which tables each conjunct references), so it is stable across
// executions of the same statement.
func planTail(b *binding, where sqlparser.Expr) *tailPlan {
	conjuncts := splitConjuncts(where)
	used := make([]bool, len(conjuncts))
	tp := &tailPlan{splits: make([][]sqlparser.Expr, len(b.tables))}
	for ti := 1; ti < len(b.tables); ti++ {
		for ci, c := range conjuncts {
			if used[ci] || !refsOnlyTable(c, b, ti) {
				continue
			}
			tp.splits[ti] = append(tp.splits[ti], c)
			used[ci] = true
		}
	}
	for ci, c := range conjuncts {
		if used[ci] {
			continue
		}
		if tp.residual == nil {
			tp.residual = c
		} else {
			tp.residual = &sqlparser.BinaryExpr{Op: "AND", L: tp.residual, R: c}
		}
	}
	return tp
}

// compileFilters compiles the pushed-down conjuncts with the given
// compile hook (plain Compile for ad-hoc queries, CompileWithParams
// for prepared ones).
func (tp *tailPlan) compileFilters(b *binding, compile func(sqlparser.Expr, expr.Resolver) (expr.Evaluator, error)) ([][]expr.Evaluator, error) {
	filters := make([][]expr.Evaluator, len(tp.splits))
	for ti, split := range tp.splits {
		if len(split) == 0 {
			continue
		}
		resolve := tableResolver(b, ti)
		for _, c := range split {
			ev, err := compile(c, resolve)
			if err != nil {
				return nil, err
			}
			filters[ti] = append(filters[ti], ev)
		}
	}
	return filters, nil
}

// scan materializes the filtered cross product of the tail tables.
func (tp *tailPlan) scan(ctx context.Context, b *binding, filters [][]expr.Evaluator) ([]sqltypes.Row, error) {
	tail := []sqltypes.Row{{}}
	for ti := 1; ti < len(b.tables); ti++ {
		bt := b.tables[ti]
		var trows []sqltypes.Row
		fs := filters[ti]
		err := bt.table.ScanContext(ctx, func(r sqltypes.Row) error {
			for _, f := range fs {
				keep, err := f.Eval(r)
				if err != nil {
					return err
				}
				if keep.IsNull() || !keep.Bool() {
					return nil
				}
			}
			trows = append(trows, r.Clone())
			return nil
		})
		if err != nil {
			return nil, err
		}
		if len(tail)*len(trows) > maxJoinTailRows {
			return nil, fmt.Errorf("exec: cross-join tail exceeds %d rows; joins expect small model tables after the first table", maxJoinTailRows)
		}
		next := make([]sqltypes.Row, 0, len(tail)*len(trows))
		for _, t := range tail {
			for _, r := range trows {
				combined := make(sqltypes.Row, 0, len(t)+len(r))
				combined = append(combined, t...)
				combined = append(combined, r...)
				next = append(next, combined)
			}
		}
		tail = next
	}
	return tail, nil
}

// splitConjuncts flattens a predicate's top-level AND tree.
func splitConjuncts(e sqlparser.Expr) []sqlparser.Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*sqlparser.BinaryExpr); ok && be.Op == "AND" {
		return append(splitConjuncts(be.L), splitConjuncts(be.R)...)
	}
	return []sqlparser.Expr{e}
}

// refsOnlyTable reports whether every column reference in e resolves
// into FROM entry ti (and there is at least one reference — constant
// predicates stay in the residual).
func refsOnlyTable(e sqlparser.Expr, b *binding, ti int) bool {
	bt := b.tables[ti]
	lo, hi := bt.offset, bt.offset+bt.table.Schema().Len()
	any, all := false, true
	walkRefs(e, func(cr *sqlparser.ColumnRef) {
		any = true
		idx, err := b.resolve(cr.Table, cr.Name)
		if err != nil || idx < lo || idx >= hi {
			all = false
		}
	})
	return any && all
}

// tableResolver resolves columns relative to one FROM entry's own rows.
func tableResolver(b *binding, ti int) expr.Resolver {
	bt := b.tables[ti]
	lo, hi := bt.offset, bt.offset+bt.table.Schema().Len()
	return func(table, column string) (int, error) {
		idx, err := b.resolve(table, column)
		if err != nil {
			return 0, err
		}
		if idx < lo || idx >= hi {
			return 0, fmt.Errorf("exec: internal: column %s.%s escapes pushed-down table", table, column)
		}
		return idx - lo, nil
	}
}

// runProjection executes a scalar (non-aggregate) SELECT: scan the
// first table in parallel, cross-join the tail, filter, project.
func runProjection(ctx context.Context, sel *sqlparser.Select, items []sqlparser.SelectItem, b *binding, env *Env, sink RowSink, st *Stats) (*sqltypes.Schema, error) {
	plan := st.ensureRoot().child("plan")
	tail, residual, err := joinTail(ctx, b, sel.Where, env.Funcs)
	if err != nil {
		return nil, err
	}
	cols := make([]sqltypes.Column, len(items))
	for i, item := range items {
		cols[i] = sqltypes.Column{Name: itemName(item, i), Type: sqltypes.TypeDouble}
	}
	// Infer output types from a compile-time pass on column refs.
	for i, item := range items {
		if cr, ok := item.Expr.(*sqlparser.ColumnRef); ok {
			if idx, err := b.resolve(cr.Table, cr.Name); err == nil {
				cols[i].Type = flatColumnType(b, idx)
			}
		}
	}
	schema := &sqltypes.Schema{Columns: cols}

	first := b.tables[0].table
	nparts := first.Partitions()
	st.Partitions = nparts
	st.Workers = scanWorkers(env, nparts)
	st.PartitionRows = make([]int64, nparts)
	st.Plan = plan.finish()

	// Columnar mode: a single-table projection whose items and WHERE all
	// compile to vector programs runs block-wise; any other shape counts
	// a fallback and takes the row path below.
	if env.Columnar && len(b.tables) == 1 {
		if vp, verr := planVecProjection(items, residual, b); verr == nil {
			return schema, vp.run(ctx, env, sink, st)
		}
		obs.ColumnarFallbacks.Inc()
	}

	scan := st.Root.child("scan")
	partSpans := make([]*Span, nparts)
	err = RunParallel(ctx, st.Workers, nparts, func(ctx context.Context, p int) error {
		span := newSpan(fmt.Sprintf("scan[p%d]", p))
		partSpans[p] = span
		// Per-partition compiled evaluators (evaluators carry buffers).
		evals := make([]expr.Evaluator, len(items))
		for i, item := range items {
			ev, cerr := expr.Compile(item.Expr, b.resolve, env.Funcs)
			if cerr != nil {
				return cerr
			}
			evals[i] = ev
		}
		var where expr.Evaluator
		if residual != nil {
			w, cerr := expr.Compile(residual, b.resolve, env.Funcs)
			if cerr != nil {
				return cerr
			}
			where = w
		}
		flat := make(sqltypes.Row, b.width)
		out := make(sqltypes.Row, len(items))
		ps, serr := first.ScanPartitionStats(ctx, p, func(r sqltypes.Row) error {
			for _, t := range tail {
				copy(flat, r)
				copy(flat[len(r):], t)
				if where != nil {
					keep, err := where.Eval(flat)
					if err != nil {
						return err
					}
					if keep.IsNull() || !keep.Bool() {
						continue
					}
				}
				for i, ev := range evals {
					v, err := ev.Eval(flat)
					if err != nil {
						return err
					}
					out[i] = v
				}
				if err := sink(out); err != nil {
					return err
				}
			}
			return nil
		})
		st.PartitionRows[p] = ps.Rows
		span.Rows, span.Bytes = ps.Rows, ps.Bytes
		span.finish()
		return serr
	})
	st.Scan = scan.finish()
	finishScanSpan(scan, partSpans, st)
	return schema, err
}

// finishScanSpan attaches the per-partition child spans (skipping
// partitions never started before a cancellation) and totals their
// volume into the parent span and the scan counters. It runs after the
// partition workers have joined, so the per-span numbers are stable
// and the Stats fields can stay plain (no atomics needed).
func finishScanSpan(scan *Span, partSpans []*Span, st *Stats) {
	for _, ps := range partSpans {
		if ps != nil {
			scan.Children = append(scan.Children, ps)
			st.RowsScanned += ps.Rows
			st.BytesRead += ps.Bytes
		}
	}
	scan.sortChildren()
	scan.Rows = st.RowsScanned
	scan.Bytes = st.BytesRead
}

func flatColumnType(b *binding, idx int) sqltypes.Type {
	for _, bt := range b.tables {
		n := bt.table.Schema().Len()
		if idx >= bt.offset && idx < bt.offset+n {
			return bt.table.Schema().Columns[idx-bt.offset].Type
		}
	}
	return sqltypes.TypeDouble
}

// sortRows applies ORDER BY over the materialized output. Keys may be
// output column names/aliases, 1-based ordinals, or expressions over
// the output schema.
func sortRows(order []sqlparser.OrderItem, schema *sqltypes.Schema, rows []sqltypes.Row, env *Env) error {
	type key struct {
		ev   expr.Evaluator
		desc bool
	}
	resolve := func(table, col string) (int, error) {
		if idx := schema.Index(col); idx >= 0 {
			return idx, nil
		}
		return 0, fmt.Errorf("exec: ORDER BY column %q is not in the output", col)
	}
	keys := make([]key, len(order))
	for i, o := range order {
		if lit, ok := o.Expr.(*sqlparser.NumberLit); ok && lit.IsInt {
			ord := int(lit.Int)
			if ord < 1 || ord > schema.Len() {
				return fmt.Errorf("exec: ORDER BY ordinal %d out of range", ord)
			}
			keys[i] = key{ev: ordinalEval(ord - 1), desc: o.Desc}
			continue
		}
		ev, err := expr.Compile(o.Expr, resolve, env.Funcs)
		if err != nil {
			return err
		}
		keys[i] = key{ev: ev, desc: o.Desc}
	}
	var sortErr error
	sort.SliceStable(rows, func(a, c int) bool {
		for _, k := range keys {
			va, err := k.ev.Eval(rows[a])
			if err != nil {
				sortErr = err
				return false
			}
			vc, err := k.ev.Eval(rows[c])
			if err != nil {
				sortErr = err
				return false
			}
			cmp := sqltypes.Compare(va, vc)
			if k.desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return sortErr
}

type ordinalEval int

func (o ordinalEval) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	return row[int(o)], nil
}
