// Package exec is the engine's query executor. SELECT statements run
// partition-parallel: every table partition is scanned by its own
// goroutine (the paper's 20 Teradata threads), aggregate state is
// accumulated per partition and merged by a master — the aggregate
// UDF's phase-3 protocol — and scalar projections stream.
package exec

import (
	"fmt"
	"sync"

	"repro/internal/engine/sqltypes"
	"repro/internal/engine/storage"
)

// Catalog resolves table names; implemented by the db package.
type Catalog interface {
	// Table returns the named table or an error including the name.
	Table(name string) (*storage.Table, error)
}

// Result is a fully materialized query result.
type Result struct {
	Schema   *sqltypes.Schema
	Rows     []sqltypes.Row
	Affected int64  // rows inserted, for INSERT
	Stats    *Stats // execution statistics; nil for statements without a scan
}

// Value returns the single value of a one-row one-column result, the
// shape aggregate-UDF queries produce.
func (r *Result) Value() (sqltypes.Value, error) {
	if len(r.Rows) != 1 || len(r.Rows[0]) != 1 {
		return sqltypes.Null, fmt.Errorf("exec: expected a 1×1 result, got %d×%d", len(r.Rows), r.Schema.Len())
	}
	return r.Rows[0][0], nil
}

// RowSink receives result rows. Sinks may be invoked from multiple
// goroutines concurrently; implementations must synchronize.
type RowSink func(sqltypes.Row) error

// collector is a RowSink that materializes rows safely.
type collector struct {
	mu   sync.Mutex
	rows []sqltypes.Row
}

func (c *collector) sink(r sqltypes.Row) error {
	c.mu.Lock()
	c.rows = append(c.rows, r.Clone())
	c.mu.Unlock()
	return nil
}
