package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine/expr"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/storage"
	"repro/internal/engine/udf"
)

// memCatalog is a minimal Catalog for white-box tests.
type memCatalog map[string]*storage.Table

func (c memCatalog) Table(name string) (*storage.Table, error) {
	t, ok := c[name]
	if !ok {
		return nil, fmt.Errorf("no table %q", name)
	}
	return t, nil
}

func newTable(t *testing.T, name string, cols []sqltypes.Column, rows ...sqltypes.Row) *storage.Table {
	t.Helper()
	tab, err := storage.NewTable(name, &sqltypes.Schema{Columns: cols}, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(rows...); err != nil {
		t.Fatal(err)
	}
	return tab
}

func testEnv(t *testing.T) (*Env, memCatalog) {
	t.Helper()
	cat := memCatalog{}
	return &Env{Catalog: cat, Funcs: expr.NewRegistry(), Aggs: udf.NewRegistry()}, cat
}

func dcol(n string) sqltypes.Column { return sqltypes.Column{Name: n, Type: sqltypes.TypeDouble} }
func icol(n string) sqltypes.Column { return sqltypes.Column{Name: n, Type: sqltypes.TypeBigInt} }

func drow(vals ...float64) sqltypes.Row {
	r := make(sqltypes.Row, len(vals))
	for i, v := range vals {
		r[i] = sqltypes.NewDouble(v)
	}
	return r
}

func sel(t *testing.T, sql string) *sqlparser.Select {
	t.Helper()
	st, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*sqlparser.Select)
}

func TestSplitConjuncts(t *testing.T) {
	e, _ := sqlparser.ParseExpr("a = 1 AND b = 2 AND (c = 3 OR d = 4)")
	parts := splitConjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("%d conjuncts", len(parts))
	}
	if splitConjuncts(nil) != nil {
		t.Fatal("nil should split to nil")
	}
	single, _ := sqlparser.ParseExpr("a = 1 OR b = 2")
	if got := splitConjuncts(single); len(got) != 1 {
		t.Fatalf("OR must not split: %d", len(got))
	}
}

func TestJoinTailPushdown(t *testing.T) {
	env, cat := testEnv(t)
	cat["x"] = newTable(t, "x", []sqltypes.Column{dcol("a")}, drow(1))
	// Model-style table with 100 rows; pushdown keeps only j = 7.
	var rows []sqltypes.Row
	for j := 1; j <= 100; j++ {
		rows = append(rows, sqltypes.Row{sqltypes.NewBigInt(int64(j)), sqltypes.NewDouble(float64(j) * 10)})
	}
	cat["m"] = newTable(t, "m", []sqltypes.Column{icol("j"), dcol("v")}, rows...)

	s := sel(t, "SELECT a, v FROM x CROSS JOIN m WHERE m.j = 7 AND a > 0")
	b, err := bindFrom(s.From, env.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	tail, residual, err := joinTail(context.Background(), b, s.Where, env.Funcs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 {
		t.Fatalf("pushdown failed: tail has %d rows", len(tail))
	}
	if tail[0][1].MustFloat() != 70 {
		t.Fatalf("wrong tail row: %v", tail[0])
	}
	// Residual keeps only the first-table predicate.
	if residual == nil || residual.String() != "(a > 0)" {
		t.Fatalf("residual = %v", residual)
	}
}

func TestJoinTailAliasedTwice(t *testing.T) {
	env, cat := testEnv(t)
	cat["x"] = newTable(t, "x", []sqltypes.Column{dcol("a")}, drow(1))
	cat["c"] = newTable(t, "c", []sqltypes.Column{icol("j"), dcol("v")},
		sqltypes.Row{sqltypes.NewBigInt(1), sqltypes.NewDouble(10)},
		sqltypes.Row{sqltypes.NewBigInt(2), sqltypes.NewDouble(20)},
	)
	s := sel(t, "SELECT a FROM x CROSS JOIN c c1 CROSS JOIN c c2 WHERE c1.j = 1 AND c2.j = 2")
	b, err := bindFrom(s.From, env.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	tail, residual, err := joinTail(context.Background(), b, s.Where, env.Funcs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || residual != nil {
		t.Fatalf("tail=%d residual=%v", len(tail), residual)
	}
	// Tail = c1 row ++ c2 row.
	if tail[0][1].MustFloat() != 10 || tail[0][3].MustFloat() != 20 {
		t.Fatalf("tail row: %v", tail[0])
	}
}

func TestJoinTailCapStillEnforced(t *testing.T) {
	env, cat := testEnv(t)
	cat["x"] = newTable(t, "x", []sqltypes.Column{dcol("a")}, drow(1))
	var rows []sqltypes.Row
	for j := 0; j < 2000; j++ {
		rows = append(rows, drow(float64(j)))
	}
	cat["big"] = newTable(t, "big", []sqltypes.Column{dcol("v")}, rows...)
	s := sel(t, "SELECT a FROM x CROSS JOIN big b1 CROSS JOIN big b2 CROSS JOIN big b3")
	b, err := bindFrom(s.From, env.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := joinTail(context.Background(), b, s.Where, env.Funcs); err == nil {
		t.Fatal("unfiltered large cross join must hit the cap")
	}
}

func TestRefsOnlyTable(t *testing.T) {
	env, cat := testEnv(t)
	cat["x"] = newTable(t, "x", []sqltypes.Column{dcol("a")}, drow(1))
	cat["m"] = newTable(t, "m", []sqltypes.Column{icol("j")})
	s := sel(t, "SELECT a FROM x CROSS JOIN m")
	b, err := bindFrom(s.From, env.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	onlyM, _ := sqlparser.ParseExpr("m.j = 1")
	mixed, _ := sqlparser.ParseExpr("m.j = a")
	constant, _ := sqlparser.ParseExpr("1 = 1")
	if !refsOnlyTable(onlyM, b, 1) {
		t.Fatal("m.j=1 should push down to table 1")
	}
	if refsOnlyTable(mixed, b, 1) {
		t.Fatal("cross-table predicate must not push down")
	}
	if refsOnlyTable(constant, b, 1) {
		t.Fatal("constant predicate must not push down")
	}
}

func TestBindingResolution(t *testing.T) {
	env, cat := testEnv(t)
	cat["x"] = newTable(t, "x", []sqltypes.Column{dcol("a"), dcol("b")})
	cat["y"] = newTable(t, "y", []sqltypes.Column{dcol("b"), dcol("c")})
	s := sel(t, "SELECT 1 FROM x, y")
	b, err := bindFrom(s.From, env.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if idx, err := b.resolve("", "a"); err != nil || idx != 0 {
		t.Fatalf("a → %d, %v", idx, err)
	}
	if idx, err := b.resolve("", "c"); err != nil || idx != 3 {
		t.Fatalf("c → %d, %v", idx, err)
	}
	if _, err := b.resolve("", "b"); err == nil {
		t.Fatal("ambiguous column must fail")
	}
	if idx, err := b.resolve("y", "b"); err != nil || idx != 2 {
		t.Fatalf("y.b → %d, %v", idx, err)
	}
	if _, err := b.resolve("z", "b"); err == nil {
		t.Fatal("unknown table must fail")
	}
	if _, err := b.resolve("", "zz"); err == nil {
		t.Fatal("unknown column must fail")
	}
	// Flat schema qualifies the duplicate b columns.
	fs := b.flatSchema()
	if fs.Index("x.b") < 0 || fs.Index("y.b") < 0 || fs.Index("a") < 0 {
		t.Fatalf("flat schema = %v", fs.Names())
	}
}

func TestRunParallelErrorPropagation(t *testing.T) {
	sentinel := errors.New("boom")
	err := RunParallel(context.Background(), 0, 8, func(_ context.Context, p int) error {
		if p == 5 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("err = %v", err)
	}
	if err := RunParallel(context.Background(), 0, 1, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestResultValueShapes(t *testing.T) {
	r := &Result{Schema: sqltypes.MustSchema(dcol("a")), Rows: []sqltypes.Row{drow(7)}}
	v, err := r.Value()
	if err != nil || v.MustFloat() != 7 {
		t.Fatalf("%v %v", v, err)
	}
	bad := &Result{Schema: sqltypes.MustSchema(dcol("a")), Rows: []sqltypes.Row{drow(1), drow(2)}}
	if _, err := bad.Value(); err == nil {
		t.Fatal("multi-row Value must fail")
	}
}

func TestSelectStreamRejectsOrderBy(t *testing.T) {
	env, cat := testEnv(t)
	cat["x"] = newTable(t, "x", []sqltypes.Column{dcol("a")}, drow(1))
	s := sel(t, "SELECT a FROM x ORDER BY a")
	if _, _, err := SelectStream(context.Background(), s, env, func(sqltypes.Row) error { return nil }); err == nil {
		t.Fatal("ORDER BY in streaming mode must fail")
	}
}

func TestDuplicateFromNamesRejected(t *testing.T) {
	env, cat := testEnv(t)
	cat["x"] = newTable(t, "x", []sqltypes.Column{dcol("a")})
	s := sel(t, "SELECT 1 FROM x, x")
	if _, err := Select(context.Background(), s, env); err == nil {
		t.Fatal("duplicate unaliased FROM entries must fail")
	}
}

func TestExpandStarsErrors(t *testing.T) {
	env, cat := testEnv(t)
	cat["x"] = newTable(t, "x", []sqltypes.Column{dcol("a")})
	s := sel(t, "SELECT y.* FROM x")
	b, err := bindFrom(s.From, env.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := expandStars(s.Items, b); err == nil {
		t.Fatal("y.* with no table y must fail")
	}
}

func TestItemNaming(t *testing.T) {
	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT a + 1 AS total FROM x", "total"},
		{"SELECT a FROM x", "a"},
		{"SELECT t.a FROM x t", "a"},
		{"SELECT a + 1 FROM x", "(a + 1)"},
	}
	for _, c := range cases {
		s := sel(t, c.sql)
		if got := itemName(s.Items[0], 0); got != c.want {
			t.Errorf("%s → %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestInsertArityValidation(t *testing.T) {
	env, cat := testEnv(t)
	cat["x"] = newTable(t, "x", []sqltypes.Column{dcol("a"), dcol("b")})
	st, err := sqlparser.Parse("INSERT INTO x VALUES (1)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Insert(context.Background(), st.(*sqlparser.Insert), env); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	st, _ = sqlparser.Parse("INSERT INTO x (a) VALUES (1)")
	res, err := Insert(context.Background(), st.(*sqlparser.Insert), env)
	if err != nil || res.Affected != 1 {
		t.Fatalf("%v %v", res, err)
	}
}

func TestAggregateWithJoinAndGroupBy(t *testing.T) {
	// Aggregate over a cross join with pushdown: per-group sums with a
	// model table filter.
	env, cat := testEnv(t)
	var rows []sqltypes.Row
	for i := 0; i < 20; i++ {
		rows = append(rows, sqltypes.Row{sqltypes.NewBigInt(int64(i)), sqltypes.NewDouble(float64(i))})
	}
	cat["x"] = newTable(t, "x", []sqltypes.Column{icol("i"), dcol("v")}, rows...)
	cat["m"] = newTable(t, "m", []sqltypes.Column{icol("j"), dcol("scale")},
		sqltypes.Row{sqltypes.NewBigInt(1), sqltypes.NewDouble(2)},
		sqltypes.Row{sqltypes.NewBigInt(2), sqltypes.NewDouble(100)},
	)
	s := sel(t, "SELECT i % 2, sum(v * scale) FROM x CROSS JOIN m WHERE m.j = 1 GROUP BY i % 2 ORDER BY 1")
	res, err := Select(context.Background(), s, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d groups", len(res.Rows))
	}
	// Even i: 0+2+...+18 = 90 → ×2 = 180; odd: 100 → ×2 = 200.
	if res.Rows[0][1].MustFloat() != 180 || res.Rows[1][1].MustFloat() != 200 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
