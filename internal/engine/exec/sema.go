package exec

import (
	"repro/internal/engine/sema"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
)

// schemaCatalog adapts the executor's table catalog to sema's
// schema-only view.
type schemaCatalog struct{ cat Catalog }

func (s schemaCatalog) TableSchema(name string) (*sqltypes.Schema, error) {
	t, err := s.cat.Table(name)
	if err != nil {
		return nil, err
	}
	return t.Schema(), nil
}

// SemaEnv derives the semantic-analysis environment from an executor
// environment. It is the single constructor for sema.Env: both the
// executor's internal pre-execution checks and the db layer's
// statement dispatch go through it, so the catalog and UDF registries
// sema sees can never drift from the ones execution uses.
func SemaEnv(env *Env) *sema.Env {
	se := &sema.Env{Scalars: env.Funcs, Aggs: env.Aggs}
	if env.Catalog != nil {
		se.Catalog = schemaCatalog{env.Catalog}
	}
	return se
}

// analyze semantically checks a statement before execution. Every
// executor entry point calls it, so malformed queries fail with
// positioned diagnostics before any partition scan starts.
func analyze(stmt sqlparser.Statement, env *Env) error {
	return sema.CheckStatement(stmt, SemaEnv(env))
}
