package exec

import (
	"context"

	"repro/internal/core"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/storage"
)

// ComputeTableNLQ computes per-partition n/L/Q partials over the given
// column ordinals of t, under the aggregate protocol's parallel
// discipline: phases 1-2 accumulate one partial per partition scan,
// the caller merges the partials (phase 3) and derives models from the
// merged summary (phase 4). Rows with a NULL (or non-numeric) value in
// any selected column are skipped, matching the aggregate UDF's
// treatment of incomplete points; seen reports the total rows scanned
// including skipped ones — the count the summary cache stamps entries
// with, since it must match the table's row count exactly.
func ComputeTableNLQ(ctx context.Context, t *storage.Table, cols []int, mt core.MatrixType, workers int) (partials []*core.NLQ, seen int64, err error) {
	n := t.Partitions()
	partials = make([]*core.NLQ, n)
	counts := make([]int64, n)
	err = RunParallel(ctx, workers, n, func(ctx context.Context, p int) error {
		s, err := core.NewNLQ(len(cols), mt)
		if err != nil {
			return err
		}
		x := make([]float64, len(cols))
		err = t.ScanPartition(ctx, p, func(r sqltypes.Row) error {
			counts[p]++
			for i, c := range cols {
				f, ok := r[c].Float()
				if !ok {
					return nil
				}
				x[i] = f
			}
			return s.Update(x)
		})
		if err != nil {
			return err
		}
		partials[p] = s
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	for _, c := range counts {
		seen += c
	}
	return partials, seen, nil
}
