package exec

import (
	"context"

	"repro/internal/core"
	"repro/internal/engine/obs"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/storage"
)

// ComputeTableNLQ computes per-partition n/L/Q partials over the given
// column ordinals of t, under the aggregate protocol's parallel
// discipline: phases 1-2 accumulate one partial per partition scan,
// the caller merges the partials (phase 3) and derives models from the
// merged summary (phase 4). Rows with a NULL (or non-numeric) value in
// any selected column are skipped, matching the aggregate UDF's
// treatment of incomplete points; seen reports the total rows scanned
// including skipped ones — the count the summary cache stamps entries
// with, since it must match the table's row count exactly.
//
// With columnar set, eligible scans (all selected columns numeric by
// schema type) run block-wise over column segments via UpdateBlock.
// The per-slot accumulation order is identical to the row path's, so
// the partials are byte-for-byte the same in both modes — including
// seen, which counts NULL-masked block rows exactly like the row
// path's pre-skip increment. Ineligible scans and stale-segment
// partitions fall back to the row path (counted as fallbacks).
func ComputeTableNLQ(ctx context.Context, t *storage.Table, cols []int, mt core.MatrixType, workers int, columnar bool) (partials []*core.NLQ, seen int64, err error) {
	n := t.Partitions()
	partials = make([]*core.NLQ, n)
	counts := make([]int64, n)
	if columnar {
		if nlqBlocksEligible(t, cols) {
			// Best-effort: a failed rebuild leaves stale partitions that
			// fall back below; true row-log corruption fails the row scan.
			_ = t.EnsureSegments()
		} else {
			columnar = false
			obs.ColumnarFallbacks.Inc()
		}
	}
	err = RunParallel(ctx, workers, n, func(ctx context.Context, p int) error {
		s, err := core.NewNLQ(len(cols), mt)
		if err != nil {
			return err
		}
		if columnar {
			ran, err := computeNLQBlocks(ctx, t, p, cols, s, &counts[p])
			if err != nil {
				return err
			}
			if ran {
				partials[p] = s
				return nil
			}
			// Stale segment: nothing was delivered or accumulated, but
			// reset defensively and rerun the partition row-wise.
			obs.ColumnarFallbacks.Inc()
			s.Reset()
			counts[p] = 0
		}
		x := make([]float64, len(cols))
		err = t.ScanPartition(ctx, p, func(r sqltypes.Row) error {
			counts[p]++
			for i, c := range cols {
				f, ok := r[c].Float()
				if !ok {
					return nil
				}
				x[i] = f
			}
			return s.Update(x)
		})
		if err != nil {
			return err
		}
		partials[p] = s
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	for _, c := range counts {
		seen += c
	}
	return partials, seen, nil
}
