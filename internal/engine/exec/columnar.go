package exec

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine/expr"
	"repro/internal/engine/obs"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/storage"
)

// The columnar execution mode (Env.Columnar / twmd -columnar) swaps the
// row-at-a-time interpreter for block-at-a-time kernels wherever that
// is provably equivalent: n/L/Q summary scans run UpdateBlock over
// segment blocks, and simple projections run compiled vector programs.
// Everything else — and every partition whose segment is stale — falls
// back to the row path, counted by engine_columnar_fallbacks_total, so
// turning the flag on can change performance but never results.

// nlqBlocksEligible reports whether the summary scan over cols can use
// block kernels: every selected column must be numeric *by schema
// type*. The row path's Value.Float() succeeds on numeric-looking
// VARCHAR values, so a VARCHAR column would contribute operands on the
// row path that segment blocks don't carry — such scans stay row-wise.
func nlqBlocksEligible(t *storage.Table, cols []int) bool {
	schema := t.Schema()
	for _, c := range cols {
		if c < 0 || c >= schema.Len() || !storage.NumericColumn(schema.Columns[c]) {
			return false
		}
	}
	return true
}

// computeNLQBlocks accumulates partition p of t into s block-wise.
// seen counts every delivered row — including rows masked out for NULL
// values — exactly like the row path's pre-skip counts[p]++, so the
// summary cache's validity stamps are identical in both modes. The
// bool result reports whether the block path ran: a stale segment
// returns (false, nil) before any row is accumulated and the caller
// reruns the partition row-wise.
func computeNLQBlocks(ctx context.Context, t *storage.Table, p int, cols []int, s *core.NLQ, seen *int64) (bool, error) {
	rowValid := make([]bool, 0, 4096)
	_, err := t.ScanPartitionBlocks(ctx, p, cols, func(b *storage.Block) error {
		*seen += int64(b.Rows)
		// AND the per-column validity lanes column-major: each pass is a
		// sequential sweep instead of a strided gather per row.
		rowValid = rowValid[:0]
		if len(b.Valid) == 0 {
			for r := 0; r < b.Rows; r++ {
				rowValid = append(rowValid, true)
			}
		} else {
			rowValid = append(rowValid, b.Valid[0][:b.Rows]...)
			for _, v := range b.Valid[1:] {
				for r, ok := range v[:b.Rows] {
					if !ok {
						rowValid[r] = false
					}
				}
			}
		}
		return s.UpdateBlock(b.Cols, rowValid)
	})
	if errors.Is(err, storage.ErrSegmentStale) {
		return false, nil
	}
	return err == nil, err
}

// errNotVectorizable marks projections the vector path declines (shape
// restrictions beyond CompileVector's, e.g. constant-only items).
var errNotVectorizable = errors.New("exec: projection not vectorizable")

// vecProjection is the plan for a vectorized single-table projection:
// the expressions to recompile per worker plus the union of referenced
// column ordinals, with each program's columns mapped to union slots.
type vecProjection struct {
	items    []sqlparser.SelectItem
	residual sqlparser.Expr
	b        *binding
	vec      func(int) bool
	cols     []int // union of referenced schema ordinals
	slot     map[int]int
}

// planVecProjection validates that a single-table projection can run
// on the vector path: every select item compiles to a numeric vector
// program referencing at least one column (constant-only items keep
// their scalar typing — SELECT 1+1 must stay a BIGINT), and the WHERE
// residual, if any, compiles to a predicate program. Only DOUBLE
// columns are vectorizable here: projecting a BIGINT column through
// float64 blocks would retype the output.
func planVecProjection(items []sqlparser.SelectItem, residual sqlparser.Expr, b *binding) (*vecProjection, error) {
	schema := b.tables[0].table.Schema()
	vec := func(ord int) bool {
		return ord >= 0 && ord < schema.Len() && schema.Columns[ord].Type == sqltypes.TypeDouble
	}
	vp := &vecProjection{items: items, residual: residual, b: b, vec: vec, slot: map[int]int{}}
	add := func(p *expr.VectorProgram) {
		for _, c := range p.Cols() {
			if _, ok := vp.slot[c]; !ok {
				vp.slot[c] = len(vp.cols)
				vp.cols = append(vp.cols, c)
			}
		}
	}
	if residual != nil {
		p, err := expr.CompileVector(residual, b.resolve, vec)
		if err != nil {
			return nil, err
		}
		if !p.IsBool() {
			return nil, errNotVectorizable
		}
		add(p)
	}
	for _, item := range items {
		p, err := expr.CompileVector(item.Expr, b.resolve, vec)
		if err != nil {
			return nil, err
		}
		if p.IsBool() || len(p.Cols()) == 0 {
			return nil, errNotVectorizable
		}
		add(p)
	}
	return vp, nil
}

// run executes the vectorized projection scan with the same worker
// discipline, spans and stats as the row path. Partitions whose
// segments are stale rerun row-wise (counted as fallbacks); results
// are identical either way.
func (vp *vecProjection) run(ctx context.Context, env *Env, sink RowSink, st *Stats) error {
	first := vp.b.tables[0].table
	// Best-effort: rebuild stale segments up front so the cold path
	// pays one rebuild instead of per-query row fallbacks. Failures are
	// not fatal — stale partitions fall back below, and genuine row-log
	// corruption resurfaces loudly from the row scan.
	_ = first.EnsureSegments()
	nparts := first.Partitions()
	scan := st.Root.child("scan")
	partSpans := make([]*Span, nparts)
	err := RunParallel(ctx, st.Workers, nparts, func(ctx context.Context, p int) error {
		span := newSpan(fmt.Sprintf("scan[p%d]", p))
		partSpans[p] = span
		ps, serr := vp.scanPartition(ctx, p, env, sink)
		if errors.Is(serr, storage.ErrSegmentStale) {
			obs.ColumnarFallbacks.Inc()
			ps, serr = vp.rowScanPartition(ctx, p, env, sink)
		}
		st.PartitionRows[p] = ps.Rows
		span.Rows, span.Bytes = ps.Rows, ps.Bytes
		span.finish()
		return serr
	})
	st.Scan = scan.finish()
	finishScanSpan(scan, partSpans, st)
	return err
}

// scanPartition runs the block path over one partition. Programs are
// compiled per call: they carry evaluation buffers, like the row
// path's per-worker evaluators.
func (vp *vecProjection) scanPartition(ctx context.Context, p int, env *Env, sink RowSink) (storage.ScanStats, error) {
	var whereProg *expr.VectorProgram
	if vp.residual != nil {
		w, err := expr.CompileVector(vp.residual, vp.b.resolve, vp.vec)
		if err != nil {
			return storage.ScanStats{}, err
		}
		whereProg = w
	}
	progs := make([]*expr.VectorProgram, len(vp.items))
	for i, item := range vp.items {
		prog, err := expr.CompileVector(item.Expr, vp.b.resolve, vp.vec)
		if err != nil {
			return storage.ScanStats{}, err
		}
		progs[i] = prog
	}
	// Per-program views of the union block, in the program's slot order.
	view := func(prog *expr.VectorProgram) ([][]float64, [][]bool) {
		refs := prog.Cols()
		return make([][]float64, len(refs)), make([][]bool, len(refs))
	}
	fill := func(prog *expr.VectorProgram, blk *storage.Block, cols [][]float64, valid [][]bool) {
		for i, ord := range prog.Cols() {
			s := vp.slot[ord]
			cols[i] = blk.Cols[s][:blk.Rows]
			valid[i] = blk.Valid[s][:blk.Rows]
		}
	}
	var whereCols [][]float64
	var whereValid [][]bool
	if whereProg != nil {
		whereCols, whereValid = view(whereProg)
	}
	itemCols := make([][][]float64, len(progs))
	itemValid := make([][][]bool, len(progs))
	for i, prog := range progs {
		itemCols[i], itemValid[i] = view(prog)
	}
	var (
		mask  []bool
		ops   int64
		out   = make(sqltypes.Row, len(progs))
		vals  = make([][]float64, len(progs))
		valid = make([][]bool, len(progs))
	)
	defer func() { obs.ColumnarVectorOps.Add(ops) }()
	return vp.b.tables[0].table.ScanPartitionBlocks(ctx, p, vp.cols, func(blk *storage.Block) error {
		if whereProg != nil {
			fill(whereProg, blk, whereCols, whereValid)
			truth, err := whereProg.EvalBool(whereCols, whereValid, blk.Rows, nil)
			if err != nil {
				return err
			}
			ops += whereProg.Ops()
			if cap(mask) < blk.Rows {
				mask = make([]bool, blk.Rows)
			}
			mask = mask[:blk.Rows]
			any := false
			for r := range mask {
				mask[r] = truth[r] == expr.TruthTrue
				any = any || mask[r]
			}
			if !any {
				return nil
			}
		} else {
			mask = nil
		}
		for i, prog := range progs {
			fill(prog, blk, itemCols[i], itemValid[i])
			v, ok, err := prog.EvalNum(itemCols[i], itemValid[i], blk.Rows, mask)
			if err != nil {
				return err
			}
			ops += prog.Ops()
			vals[i], valid[i] = v, ok
		}
		for r := 0; r < blk.Rows; r++ {
			if mask != nil && !mask[r] {
				continue
			}
			for i := range progs {
				if valid[i][r] {
					out[i] = sqltypes.NewDouble(vals[i][r])
				} else {
					out[i] = sqltypes.Null
				}
			}
			if err := sink(out); err != nil {
				return err
			}
		}
		return nil
	})
}

// rowScanPartition is the per-partition row fallback: the scalar
// equivalent of scanPartition for a single-table projection (the flat
// row is the table row itself).
func (vp *vecProjection) rowScanPartition(ctx context.Context, p int, env *Env, sink RowSink) (storage.ScanStats, error) {
	evals := make([]expr.Evaluator, len(vp.items))
	for i, item := range vp.items {
		ev, err := expr.Compile(item.Expr, vp.b.resolve, env.Funcs)
		if err != nil {
			return storage.ScanStats{}, err
		}
		evals[i] = ev
	}
	var where expr.Evaluator
	if vp.residual != nil {
		w, err := expr.Compile(vp.residual, vp.b.resolve, env.Funcs)
		if err != nil {
			return storage.ScanStats{}, err
		}
		where = w
	}
	out := make(sqltypes.Row, len(evals))
	return vp.b.tables[0].table.ScanPartitionStats(ctx, p, func(r sqltypes.Row) error {
		if where != nil {
			keep, err := where.Eval(r)
			if err != nil {
				return err
			}
			if keep.IsNull() || !keep.Bool() {
				return nil
			}
		}
		for i, ev := range evals {
			v, err := ev.Eval(r)
			if err != nil {
				return err
			}
			out[i] = v
		}
		return sink(out)
	})
}
