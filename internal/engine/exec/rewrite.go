package exec

import (
	"strconv"
	"strings"

	"repro/internal/engine/expr"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/udf"
)

// aggSpec is one aggregate call extracted from the select list.
type aggSpec struct {
	agg      udf.Aggregate
	args     []sqlparser.Expr
	star     bool
	distinct bool
	key      string // canonical text, for deduplication
}

// grpQualifier and aggQualifier are synthetic table names used by
// rewritten post-aggregation expressions; resolved against the group
// row [groupValues..., aggregateResults...].
const (
	grpQualifier = "$grp"
	aggQualifier = "$agg"
)

// rewriteAggregates rewrites a select-item expression for the
// post-aggregation evaluation phase: subtrees textually equal to a
// GROUP BY expression become $grp.k references, and aggregate calls
// become $agg.k references while being collected into specs. The
// returned specs slice extends the one passed in (deduplicated).
func rewriteAggregates(e sqlparser.Expr, groupBy []sqlparser.Expr, specs []aggSpec, aggs *udf.Registry) (sqlparser.Expr, []aggSpec, error) {
	for k, g := range groupBy {
		if e.String() == g.String() {
			return &sqlparser.ColumnRef{Table: grpQualifier, Name: strconv.Itoa(k)}, specs, nil
		}
	}
	if fc, ok := e.(*sqlparser.FuncCall); ok {
		name := strings.ToLower(fc.Name)
		if agg, found := aggs.Lookup(name); found && (expr.AggregateNames[name] || !isScalarOnly(name)) {
			key := fc.String()
			for k, s := range specs {
				if s.key == key {
					return &sqlparser.ColumnRef{Table: aggQualifier, Name: strconv.Itoa(k)}, specs, nil
				}
			}
			nargs := len(fc.Args)
			if fc.Star {
				nargs = 0
			}
			if err := agg.CheckArgs(nargs); err != nil {
				return nil, nil, err
			}
			specs = append(specs, aggSpec{agg: agg, args: fc.Args, star: fc.Star, distinct: fc.Distinct, key: key})
			return &sqlparser.ColumnRef{Table: aggQualifier, Name: strconv.Itoa(len(specs) - 1)}, specs, nil
		}
	}
	// Recurse structurally, rebuilding the node.
	var err error
	switch e := e.(type) {
	case *sqlparser.UnaryExpr:
		out := &sqlparser.UnaryExpr{Op: e.Op}
		out.X, specs, err = rewriteAggregates(e.X, groupBy, specs, aggs)
		return out, specs, err
	case *sqlparser.BinaryExpr:
		out := &sqlparser.BinaryExpr{Op: e.Op}
		if out.L, specs, err = rewriteAggregates(e.L, groupBy, specs, aggs); err != nil {
			return nil, nil, err
		}
		out.R, specs, err = rewriteAggregates(e.R, groupBy, specs, aggs)
		return out, specs, err
	case *sqlparser.FuncCall:
		out := &sqlparser.FuncCall{Name: e.Name, Star: e.Star, Distinct: e.Distinct}
		out.Args = make([]sqlparser.Expr, len(e.Args))
		for i, a := range e.Args {
			if out.Args[i], specs, err = rewriteAggregates(a, groupBy, specs, aggs); err != nil {
				return nil, nil, err
			}
		}
		return out, specs, nil
	case *sqlparser.CaseExpr:
		out := &sqlparser.CaseExpr{}
		for _, w := range e.Whens {
			var nw sqlparser.When
			if nw.Cond, specs, err = rewriteAggregates(w.Cond, groupBy, specs, aggs); err != nil {
				return nil, nil, err
			}
			if nw.Then, specs, err = rewriteAggregates(w.Then, groupBy, specs, aggs); err != nil {
				return nil, nil, err
			}
			out.Whens = append(out.Whens, nw)
		}
		if e.Else != nil {
			if out.Else, specs, err = rewriteAggregates(e.Else, groupBy, specs, aggs); err != nil {
				return nil, nil, err
			}
		}
		return out, specs, nil
	case *sqlparser.IsNullExpr:
		out := &sqlparser.IsNullExpr{Negate: e.Negate}
		out.X, specs, err = rewriteAggregates(e.X, groupBy, specs, aggs)
		return out, specs, err
	case *sqlparser.CastExpr:
		out := &sqlparser.CastExpr{Type: e.Type}
		out.X, specs, err = rewriteAggregates(e.X, groupBy, specs, aggs)
		return out, specs, err
	case *sqlparser.BetweenExpr:
		out := &sqlparser.BetweenExpr{Negate: e.Negate}
		if out.X, specs, err = rewriteAggregates(e.X, groupBy, specs, aggs); err != nil {
			return nil, nil, err
		}
		if out.Lo, specs, err = rewriteAggregates(e.Lo, groupBy, specs, aggs); err != nil {
			return nil, nil, err
		}
		out.Hi, specs, err = rewriteAggregates(e.Hi, groupBy, specs, aggs)
		return out, specs, err
	case *sqlparser.InExpr:
		out := &sqlparser.InExpr{Negate: e.Negate}
		if out.X, specs, err = rewriteAggregates(e.X, groupBy, specs, aggs); err != nil {
			return nil, nil, err
		}
		out.List = make([]sqlparser.Expr, len(e.List))
		for i, x := range e.List {
			if out.List[i], specs, err = rewriteAggregates(x, groupBy, specs, aggs); err != nil {
				return nil, nil, err
			}
		}
		return out, specs, nil
	default:
		// Literals and column refs pass through unchanged.
		return e, specs, nil
	}
}

// isScalarOnly reports whether name should never be treated as an
// aggregate even if somehow present in the aggregate registry.
// Currently no overlaps exist; the hook keeps the namespaces honest.
func isScalarOnly(string) bool { return false }
