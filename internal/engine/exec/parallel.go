package exec

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// RunParallel executes fn(ctx, p) for every p in [0, n), running at
// most workers goroutines at once (workers <= 0 means one goroutine
// per partition, the paper's thread-per-AMP model). It is the
// executor's parallel scan core and makes three guarantees the bare
// fan-out it replaces did not:
//
//   - First failure cancels the shared context, so sibling partition
//     scans observe it between rows and stop early instead of running
//     to completion; partitions not yet started are never started.
//   - A panic inside fn — a buggy UDF, a bad expression — is recovered
//     and reported as that partition's error; user code cannot kill
//     the process.
//   - Each worker keeps its error local until the final merge; nothing
//     shared is written without synchronization.
func RunParallel(ctx context.Context, workers, n int, fn func(ctx context.Context, p int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	call := func(p int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("exec: panic in partition %d: %v\n%s", p, r, debug.Stack())
			}
		}()
		return fn(cctx, p)
	}
	if n == 1 {
		return call(0)
	}

	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := int(next.Add(1)) - 1
				if p >= n || cctx.Err() != nil {
					return
				}
				if err := call(p); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	// No partition failed; surface an outside cancellation if any.
	return ctx.Err()
}
