package exec

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Span is one timed region of a statement's execution. Spans form a
// tree rooted at the statement: plan, scan (with one child per scanned
// partition), merge and finalize, mirroring the aggregate UDF
// protocol's phases. Rows and Bytes carry the volume the span
// processed where that is meaningful (scan spans: rows delivered and
// encoded bytes decoded; the root: rows emitted).
//
// The executor records phase durations *from* the spans, so a span
// tree's totals agree exactly with the Stats fields shells and
// benchmarks report.
type Span struct {
	Name string `json:"name"`
	// ID is the span's trace-layer identity (16 hex digits), assigned
	// by the db layer when the finished tree is stamped with its
	// statement's TraceID; empty until then. The executor itself knows
	// nothing about trace propagation.
	ID    string    `json:"span_id,omitempty"`
	Start time.Time `json:"start"`
	End      time.Time `json:"end"`
	Rows     int64     `json:"rows,omitempty"`
	Bytes    int64     `json:"bytes,omitempty"`
	Children []*Span   `json:"children,omitempty"`
}

// Duration is the span's wall time.
func (sp *Span) Duration() time.Duration { return sp.End.Sub(sp.Start) }

// newSpan starts a span now.
func newSpan(name string) *Span { return &Span{Name: name, Start: time.Now()} }

// finish closes the span and returns its duration.
func (sp *Span) finish() time.Duration {
	sp.End = time.Now()
	return sp.Duration()
}

// child appends and returns a new child span started now.
func (sp *Span) child(name string) *Span {
	c := newSpan(name)
	sp.Children = append(sp.Children, c)
	return c
}

// sortChildren orders children by start time; partition spans are
// written concurrently and land in worker order.
func (sp *Span) sortChildren() {
	sort.SliceStable(sp.Children, func(i, j int) bool {
		return sp.Children[i].Start.Before(sp.Children[j].Start)
	})
}

// RenderTree pretty-prints the span tree with box-drawing connectors,
// the EXPLAIN ANALYZE output:
//
//	statement (1.23ms) rows=42
//	├─ plan (0.02ms)
//	├─ scan (1.08ms) rows=100000 bytes=2.3 MB
//	│  ├─ scan[p0] (1.01ms) rows=50000
//	│  └─ scan[p1] (0.99ms) rows=50000
//	├─ merge (0.05ms)
//	└─ finalize (0.08ms)
func (sp *Span) RenderTree() string {
	var b strings.Builder
	sp.render(&b, "", "", "")
	return b.String()
}

func (sp *Span) render(b *strings.Builder, indent, branch, childIndent string) {
	b.WriteString(indent)
	b.WriteString(branch)
	fmt.Fprintf(b, "%s (%s)", sp.Name, round(sp.Duration()))
	if sp.Rows > 0 {
		fmt.Fprintf(b, " rows=%d", sp.Rows)
	}
	if sp.Bytes > 0 {
		fmt.Fprintf(b, " bytes=%s", formatBytes(sp.Bytes))
	}
	b.WriteByte('\n')
	for i, c := range sp.Children {
		last := i == len(sp.Children)-1
		cb, ci := "├─ ", "│  "
		if last {
			cb, ci = "└─ ", "   "
		}
		c.render(b, indent+childIndent, cb, ci)
	}
}

// SpanByName finds the first direct child with the given name (nil if
// absent); tests and tools use it to cross-check phase totals.
func (sp *Span) SpanByName(name string) *Span {
	for _, c := range sp.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}
