package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/engine/expr"
	"repro/internal/engine/obs"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
)

// PreparedSelect is a SELECT planned once for repeated execution: the
// statement is sema-checked, FROM is bound to concrete table handles,
// stars are expanded, the join-tail push-down is decided and the
// projection's expression trees compile to closures — all at prepare
// time. Each EXECUTE then binds parameter values and scans.
//
// The point-scoring shape (non-aggregate, FROM-ful, no ORDER BY or
// LIMIT) takes a fast path whose evaluator sets are pooled across
// executions; other shapes fall back to binding parameters as literals
// into a copy of the statement and running the general executor.
//
// The fast path's table handles are captured at prepare, so an
// execution that races a DROP/CREATE sees the pre-DDL tables
// consistently; the db layer's catalog epoch decides when the plan as
// a whole is stale. Tail (model) tables are re-scanned per EXECUTE, so
// freshly inserted model rows are always visible.
type PreparedSelect struct {
	env       *Env
	sel       *sqlparser.Select
	numParams int

	// fast-path plan (nil/zero when fall-back)
	fast   bool
	b      *binding
	items  []sqlparser.SelectItem
	schema *sqltypes.Schema
	tail   *tailPlan
	vp     *vecProjection // non-nil when columnar mode planned a block scan

	scanPool sync.Pool // *scanEvalSet
	tailPool sync.Pool // *tailEvalSet
}

// scanEvalSet is one partition worker's compiled state: the projection
// and residual-WHERE evaluators (which carry scratch buffers and read
// `?` slots from params) plus the flattened-row buffers. A set is used
// by one goroutine at a time and pooled across executions.
type scanEvalSet struct {
	params []sqltypes.Value
	evals  []expr.Evaluator
	where  expr.Evaluator // nil when no residual predicate
	flat   sqltypes.Row
	out    sqltypes.Row
}

// tailEvalSet holds the compiled push-down filters for the tail scan,
// which runs serially once per EXECUTE.
type tailEvalSet struct {
	params  []sqltypes.Value
	filters [][]expr.Evaluator
}

// PrepareSelect plans sel (already view-expanded) against env.
func PrepareSelect(sel *sqlparser.Select, env *Env) (*PreparedSelect, error) {
	if err := analyze(sel, env); err != nil {
		return nil, err
	}
	p := &PreparedSelect{env: env, sel: sel, numParams: sqlparser.CountParams(sel)}

	isAgg := len(sel.GroupBy) > 0
	if !isAgg {
		aggNames := env.Aggs.Names()
		for _, item := range sel.Items {
			if !item.Star && expr.ContainsAggregate(item.Expr, aggNames) {
				isAgg = true
				break
			}
		}
	}
	if sel.Having != nil && !isAgg {
		return nil, fmt.Errorf("exec: HAVING requires GROUP BY or aggregates")
	}
	p.fast = !isAgg && len(sel.From) > 0 && len(sel.OrderBy) == 0 && sel.Limit == nil
	if !p.fast {
		return p, nil
	}

	b, err := bindFrom(sel.From, env.Catalog)
	if err != nil {
		return nil, err
	}
	items, err := expandStars(sel.Items, b)
	if err != nil {
		return nil, err
	}
	p.b, p.items = b, items
	p.tail = planTail(b, sel.Where)

	cols := make([]sqltypes.Column, len(items))
	for i, item := range items {
		cols[i] = sqltypes.Column{Name: itemName(item, i), Type: sqltypes.TypeDouble}
		if cr, ok := item.Expr.(*sqlparser.ColumnRef); ok {
			if idx, err := b.resolve(cr.Table, cr.Name); err == nil {
				cols[i].Type = flatColumnType(b, idx)
			}
		}
	}
	p.schema = &sqltypes.Schema{Columns: cols}

	// Columnar mode: a parameter-free single-table projection whose
	// items and residual WHERE compile to vector programs executes
	// block-wise on every EXECUTE. Rejected shapes count one fallback
	// at prepare time (not per execution) and keep the pooled scalar
	// path below.
	if env.Columnar && p.numParams == 0 && len(b.tables) == 1 {
		if vp, verr := planVecProjection(items, p.tail.residual, b); verr == nil {
			p.vp = vp
		} else {
			obs.ColumnarFallbacks.Inc()
		}
	}

	// Compile one set of each kind eagerly so compile errors surface at
	// prepare time, then seed the pools with them.
	ss, err := p.newScanSet()
	if err != nil {
		return nil, err
	}
	p.scanPool.Put(ss)
	ts, err := p.newTailSet()
	if err != nil {
		return nil, err
	}
	p.tailPool.Put(ts)
	return p, nil
}

// NumParams reports how many `?` slots the statement has.
func (p *PreparedSelect) NumParams() int { return p.numParams }

// Schema returns the output schema when it is known at prepare time
// (fast path); nil otherwise.
func (p *PreparedSelect) Schema() *sqltypes.Schema {
	if p.fast {
		return p.schema
	}
	return nil
}

// Streamable reports whether ExecuteStreamContext can run the
// statement (ORDER BY/LIMIT require materialization).
func (p *PreparedSelect) Streamable() bool {
	return len(p.sel.OrderBy) == 0 && p.sel.Limit == nil
}

func (p *PreparedSelect) newScanSet() (*scanEvalSet, error) {
	s := &scanEvalSet{}
	compile := func(e sqlparser.Expr, r expr.Resolver) (expr.Evaluator, error) {
		return expr.CompileWithParams(e, r, p.env.Funcs, &s.params)
	}
	s.evals = make([]expr.Evaluator, len(p.items))
	for i, item := range p.items {
		ev, err := compile(item.Expr, p.b.resolve)
		if err != nil {
			return nil, err
		}
		s.evals[i] = ev
	}
	if p.tail.residual != nil {
		w, err := compile(p.tail.residual, p.b.resolve)
		if err != nil {
			return nil, err
		}
		s.where = w
	}
	s.flat = make(sqltypes.Row, p.b.width)
	s.out = make(sqltypes.Row, len(p.items))
	return s, nil
}

func (p *PreparedSelect) newTailSet() (*tailEvalSet, error) {
	s := &tailEvalSet{}
	filters, err := p.tail.compileFilters(p.b, func(e sqlparser.Expr, r expr.Resolver) (expr.Evaluator, error) {
		return expr.CompileWithParams(e, r, p.env.Funcs, &s.params)
	})
	if err != nil {
		return nil, err
	}
	s.filters = filters
	return s, nil
}

func (p *PreparedSelect) getScanSet() (*scanEvalSet, error) {
	if s, ok := p.scanPool.Get().(*scanEvalSet); ok && s != nil {
		return s, nil
	}
	return p.newScanSet()
}

func (p *PreparedSelect) getTailSet() (*tailEvalSet, error) {
	if s, ok := p.tailPool.Get().(*tailEvalSet); ok && s != nil {
		return s, nil
	}
	return p.newTailSet()
}

// ExecuteContext binds args and materializes the result.
func (p *PreparedSelect) ExecuteContext(ctx context.Context, args []sqltypes.Value) (*Result, error) {
	schema, rows, stats, err := p.run(ctx, args, nil)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: schema, Rows: rows, Stats: stats}, nil
}

// ExecuteStreamContext binds args and streams result rows to sink.
func (p *PreparedSelect) ExecuteStreamContext(ctx context.Context, args []sqltypes.Value, sink RowSink) (*sqltypes.Schema, *Stats, error) {
	if !p.Streamable() {
		return nil, nil, fmt.Errorf("exec: ORDER BY/LIMIT not supported in streaming mode")
	}
	schema, _, stats, err := p.run(ctx, args, sink)
	return schema, stats, err
}

func (p *PreparedSelect) run(ctx context.Context, args []sqltypes.Value, sink RowSink) (*sqltypes.Schema, []sqltypes.Row, *Stats, error) {
	if len(args) != p.numParams {
		return nil, nil, nil, fmt.Errorf("exec: prepared statement expects %d parameter(s), got %d", p.numParams, len(args))
	}
	if !p.fast {
		return p.runFallback(ctx, args, sink)
	}

	var col *collector
	if sink == nil {
		col = &collector{}
		sink = col.sink
	}
	st := &Stats{Workers: 1}
	finish := beginSelectObs(st)
	defer finish()
	emitted := new(atomic.Int64)
	defer func() { st.RowsEmitted = emitted.Load() }()
	sink = countedSink(emitted, sink)

	plan := st.ensureRoot().child("plan")
	if p.vp != nil {
		// Block path: single table, no tail scan to stage.
		first := p.b.tables[0].table
		nparts := first.Partitions()
		st.Partitions = nparts
		st.Workers = scanWorkers(p.env, nparts)
		st.PartitionRows = make([]int64, nparts)
		st.Plan = plan.finish()
		err := p.vp.run(ctx, p.env, sink, st)
		if err != nil {
			return nil, nil, nil, err
		}
		var rows []sqltypes.Row
		if col != nil {
			rows = col.rows
		}
		return p.schema, rows, st, nil
	}
	ts, err := p.getTailSet()
	if err != nil {
		return nil, nil, nil, err
	}
	ts.params = args
	tail, err := p.tail.scan(ctx, p.b, ts.filters)
	ts.params = nil
	p.tailPool.Put(ts)
	if err != nil {
		return nil, nil, nil, err
	}

	first := p.b.tables[0].table
	nparts := first.Partitions()
	st.Partitions = nparts
	st.Workers = scanWorkers(p.env, nparts)
	st.PartitionRows = make([]int64, nparts)
	st.Plan = plan.finish()

	scan := st.Root.child("scan")
	partSpans := make([]*Span, nparts)
	err = RunParallel(ctx, st.Workers, nparts, func(ctx context.Context, part int) error {
		span := newSpan(fmt.Sprintf("scan[p%d]", part))
		partSpans[part] = span
		set, serr := p.getScanSet()
		if serr != nil {
			return serr
		}
		set.params = args
		defer func() {
			set.params = nil
			p.scanPool.Put(set)
		}()
		ps, serr := first.ScanPartitionStats(ctx, part, func(r sqltypes.Row) error {
			for _, t := range tail {
				copy(set.flat, r)
				copy(set.flat[len(r):], t)
				if set.where != nil {
					keep, err := set.where.Eval(set.flat)
					if err != nil {
						return err
					}
					if keep.IsNull() || !keep.Bool() {
						continue
					}
				}
				for i, ev := range set.evals {
					v, err := ev.Eval(set.flat)
					if err != nil {
						return err
					}
					set.out[i] = v
				}
				if err := sink(set.out); err != nil {
					return err
				}
			}
			return nil
		})
		st.PartitionRows[part] = ps.Rows
		span.Rows, span.Bytes = ps.Rows, ps.Bytes
		span.finish()
		return serr
	})
	st.Scan = scan.finish()
	finishScanSpan(scan, partSpans, st)
	var rows []sqltypes.Row
	if col != nil {
		rows = col.rows
	}
	return p.schema, rows, st, err
}

// runFallback binds args as literal expressions into a deep copy of
// the statement and runs the general executor (aggregates, ORDER BY,
// LIMIT, FROM-less selects). The copy re-resolves tables by name, so
// it is always catalog-fresh; parse and view expansion are still
// amortized by the prepare.
func (p *PreparedSelect) runFallback(ctx context.Context, args []sqltypes.Value, sink RowSink) (*sqltypes.Schema, []sqltypes.Row, *Stats, error) {
	bound, err := bindArgs(p.sel, args)
	if err != nil {
		return nil, nil, nil, err
	}
	if sink == nil {
		res, err := Select(ctx, bound, p.env)
		if err != nil {
			return nil, nil, nil, err
		}
		return res.Schema, res.Rows, res.Stats, nil
	}
	schema, stats, err := SelectStream(ctx, bound, p.env, sink)
	return schema, nil, stats, err
}

// bindArgs deep-copies sel with each `?` replaced by its argument as a
// literal expression.
func bindArgs(sel *sqlparser.Select, args []sqltypes.Value) (*sqlparser.Select, error) {
	lits := make([]sqlparser.Expr, len(args))
	for i, v := range args {
		lits[i] = literalExpr(v)
	}
	stmt, err := sqlparser.BindParams(sel, lits)
	if err != nil {
		return nil, err
	}
	return stmt.(*sqlparser.Select), nil
}

// BindStatementArgs deep-copies stmt with every `?` slot bound to the
// corresponding argument as a literal expression; the db layer's
// prepared-INSERT path executes the bound copy through the general
// executor.
func BindStatementArgs(stmt sqlparser.Statement, args []sqltypes.Value) (sqlparser.Statement, error) {
	lits := make([]sqlparser.Expr, len(args))
	for i, v := range args {
		lits[i] = literalExpr(v)
	}
	return sqlparser.BindParams(stmt, lits)
}

// literalExpr renders a runtime value as a literal expression node.
func literalExpr(v sqltypes.Value) sqlparser.Expr {
	switch v.Type() {
	case sqltypes.TypeNull:
		return &sqlparser.NullLit{}
	case sqltypes.TypeBigInt:
		n := v.Int()
		return &sqlparser.NumberLit{IsInt: true, Int: n, Float: float64(n)}
	case sqltypes.TypeDouble:
		f, _ := v.Float()
		return &sqlparser.NumberLit{Float: f}
	case sqltypes.TypeBool:
		return &sqlparser.BoolLit{Val: v.Bool()}
	default:
		return &sqlparser.StringLit{Val: v.Str()}
	}
}
