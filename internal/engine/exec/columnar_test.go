package exec

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine/expr"
	"repro/internal/engine/obs"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/storage"
	"repro/internal/engine/udf"
)

func vcol(n string) sqltypes.Column { return sqltypes.Column{Name: n, Type: sqltypes.TypeVarChar} }

// mixedTable builds a table over (a DOUBLE, b DOUBLE, j BIGINT, s
// VARCHAR) with NULL lanes and numeric-looking strings, in-memory or
// on-disk depending on dir.
func mixedTable(t *testing.T, name, dir string, nparts, n int) *storage.Table {
	t.Helper()
	schema := &sqltypes.Schema{Columns: []sqltypes.Column{dcol("a"), dcol("b"), icol("j"), vcol("s")}}
	tab, err := storage.NewTable(name, schema, dir, nparts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		r := sqltypes.Row{
			sqltypes.NewDouble(float64(i) + rng.Float64()),
			sqltypes.NewDouble(rng.Float64()*100 - 50),
			sqltypes.NewBigInt(int64(i % 13)),
			sqltypes.NewVarChar("3.25"), // parses as a number on the row path
		}
		if i%5 == 0 {
			r[1] = sqltypes.Null
		}
		if i%11 == 0 {
			r[0] = sqltypes.Null
		}
		rows[i] = r
	}
	if err := tab.Insert(rows...); err != nil {
		t.Fatal(err)
	}
	return tab
}

func nlqEqual(t *testing.T, name string, row, col *core.NLQ) {
	t.Helper()
	if row == nil || col == nil {
		if (row == nil) != (col == nil) {
			t.Fatalf("%s: one partial is nil", name)
		}
		return
	}
	if math.Float64bits(row.N) != math.Float64bits(col.N) {
		t.Fatalf("%s: N %v vs %v", name, row.N, col.N)
	}
	for i := range row.L {
		if math.Float64bits(row.L[i]) != math.Float64bits(col.L[i]) ||
			math.Float64bits(row.Min[i]) != math.Float64bits(col.Min[i]) ||
			math.Float64bits(row.Max[i]) != math.Float64bits(col.Max[i]) {
			t.Fatalf("%s: L/Min/Max[%d] differ", name, i)
		}
	}
	for i := range row.Q {
		if math.Float64bits(row.Q[i]) != math.Float64bits(col.Q[i]) {
			t.Fatalf("%s: Q[%d] %v vs %v", name, i, row.Q[i], col.Q[i])
		}
	}
}

func TestComputeTableNLQColumnarBitIdentical(t *testing.T) {
	for _, layout := range []string{"mem", "disk"} {
		t.Run(layout, func(t *testing.T) {
			dir := ""
			if layout == "disk" {
				dir = t.TempDir()
			}
			tab := mixedTable(t, "x", dir, 3, 700)
			for _, mt := range []core.MatrixType{core.Diagonal, core.Triangular, core.Full} {
				for _, cols := range [][]int{{0, 1}, {1}, {0, 1, 2}} {
					rp, rseen, err := ComputeTableNLQ(context.Background(), tab, cols, mt, 0, false)
					if err != nil {
						t.Fatal(err)
					}
					cp, cseen, err := ComputeTableNLQ(context.Background(), tab, cols, mt, 0, true)
					if err != nil {
						t.Fatal(err)
					}
					if rseen != cseen {
						t.Fatalf("%v cols %v: seen %d row-wise, %d block-wise", mt, cols, rseen, cseen)
					}
					for p := range rp {
						nlqEqual(t, mt.String(), rp[p], cp[p])
					}
				}
			}
		})
	}
}

// A selected VARCHAR column disqualifies the block path — its values
// parse as numbers row-wise but carry no block operands — and the
// columnar call must fall back with identical results.
func TestComputeTableNLQVarcharFallsBack(t *testing.T) {
	tab := mixedTable(t, "x", t.TempDir(), 2, 120)
	cols := []int{0, 3}
	before := obs.ColumnarFallbacks.Value()
	rp, rseen, err := ComputeTableNLQ(context.Background(), tab, cols, core.Triangular, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	cp, cseen, err := ComputeTableNLQ(context.Background(), tab, cols, core.Triangular, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if obs.ColumnarFallbacks.Value() == before {
		t.Fatal("varchar scan did not count a fallback")
	}
	if rseen != cseen {
		t.Fatalf("seen %d vs %d", rseen, cseen)
	}
	for p := range rp {
		nlqEqual(t, "varchar", rp[p], cp[p])
	}
	// The row path folds the parseable string in; make sure the data
	// actually exercised that (n > 0 with the varchar column selected).
	if rp[0].N == 0 {
		t.Fatal("test table contributed no complete points")
	}
}

// selectBoth runs sql in both modes and returns the materialized rows.
func selectBoth(t *testing.T, cat memCatalog, sql string) (rowRes, colRes *Result) {
	t.Helper()
	rowEnv := &Env{Catalog: cat, Funcs: expr.NewRegistry(), Aggs: udf.NewRegistry()}
	colEnv := *rowEnv
	colEnv.Columnar = true
	var err error
	rowRes, err = Select(context.Background(), sel(t, sql), rowEnv)
	if err != nil {
		t.Fatalf("row mode %q: %v", sql, err)
	}
	colRes, err = Select(context.Background(), sel(t, sql), &colEnv)
	if err != nil {
		t.Fatalf("columnar mode %q: %v", sql, err)
	}
	return rowRes, colRes
}

func resultsEqual(t *testing.T, sql string, a, b *Result) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%q: %d rows vs %d", sql, len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for c := range a.Rows[i] {
			va, vb := a.Rows[i][c], b.Rows[i][c]
			if va.IsNull() != vb.IsNull() {
				t.Fatalf("%q row %d col %d: null %v vs %v", sql, i, c, va.IsNull(), vb.IsNull())
			}
			if va.IsNull() {
				continue
			}
			fa, _ := va.Float()
			fb, _ := vb.Float()
			if math.Float64bits(fa) != math.Float64bits(fb) {
				t.Fatalf("%q row %d col %d: %v vs %v", sql, i, c, va, vb)
			}
		}
	}
}

func TestColumnarProjectionMatchesRow(t *testing.T) {
	for _, layout := range []string{"mem", "disk"} {
		t.Run(layout, func(t *testing.T) {
			dir := ""
			if layout == "disk" {
				dir = t.TempDir()
			}
			cat := memCatalog{}
			cat["x"] = mixedTable(t, "x", dir, 3, 400)
			queries := []string{
				// ORDER BY pins a deterministic result order; a is unique.
				"SELECT a, b, a * b + 1 FROM x ORDER BY 1",
				"SELECT a + b FROM x ORDER BY 1",
				"SELECT a FROM x WHERE b > 0 AND a < 300 ORDER BY 1",
				"SELECT a, -b FROM x WHERE a IS NOT NULL ORDER BY 1",
				"SELECT a FROM x WHERE b IS NULL ORDER BY 1",
				"SELECT a / 2.5, a % 7.5 FROM x ORDER BY 1",
				// Guarded division: zero-lanes are masked off by the WHERE.
				"SELECT 10.0 / b FROM x WHERE b <> 0 ORDER BY 1",
				// Fallback shapes must stay correct under the flag.
				"SELECT power(a, 2) FROM x ORDER BY 1",
				"SELECT a, s FROM x ORDER BY 1",
				"SELECT j + 1 FROM x ORDER BY 1, a",
			}
			for _, q := range queries {
				r, c := selectBoth(t, cat, q)
				resultsEqual(t, q, r, c)
			}
		})
	}
}

func TestColumnarProjectionCountsWork(t *testing.T) {
	cat := memCatalog{}
	cat["x"] = mixedTable(t, "x", t.TempDir(), 2, 300)
	blocks, vops, falls := obs.ColumnarBlocksScanned.Value(), obs.ColumnarVectorOps.Value(), obs.ColumnarFallbacks.Value()
	if _, c := selectBoth(t, cat, "SELECT a * 2 FROM x WHERE b > 0 ORDER BY 1"); len(c.Rows) == 0 {
		t.Fatal("no rows selected")
	}
	if obs.ColumnarBlocksScanned.Value() == blocks {
		t.Fatal("block counter did not move")
	}
	if obs.ColumnarVectorOps.Value() == vops {
		t.Fatal("vector-ops counter did not move")
	}
	falls2 := obs.ColumnarFallbacks.Value()
	if _, c := selectBoth(t, cat, "SELECT power(a, 2) FROM x ORDER BY 1"); len(c.Rows) == 0 {
		t.Fatal("no rows selected")
	}
	if obs.ColumnarFallbacks.Value() == falls2 {
		t.Fatal("fallback counter did not move for an unsupported shape")
	}
	_ = falls
}

// A partition that never received a row has no segment file on disk;
// its block scan must succeed empty rather than count a stale
// fallback.
func TestColumnarEmptyPartitionIsNotAFallback(t *testing.T) {
	cat := memCatalog{}
	schema := &sqltypes.Schema{Columns: []sqltypes.Column{dcol("a"), dcol("b")}}
	tab, err := storage.NewTable("sparse", schema, t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	// Fewer rows than partitions guarantees empty partitions.
	if err := tab.Insert(
		sqltypes.Row{sqltypes.NewDouble(1), sqltypes.NewDouble(2)},
		sqltypes.Row{sqltypes.NewDouble(3), sqltypes.NewDouble(4)},
		sqltypes.Row{sqltypes.NewDouble(5), sqltypes.NewDouble(6)},
	); err != nil {
		t.Fatal(err)
	}
	cat["sparse"] = tab
	before := obs.ColumnarFallbacks.Value()
	r, c := selectBoth(t, cat, "SELECT a + b FROM sparse ORDER BY 1")
	resultsEqual(t, "sparse", r, c)
	if got := obs.ColumnarFallbacks.Value(); got != before {
		t.Fatalf("empty partitions counted %d fallback(s)", got-before)
	}
}

func TestColumnarDivisionByZeroMatchesRow(t *testing.T) {
	cat := memCatalog{}
	schema := &sqltypes.Schema{Columns: []sqltypes.Column{dcol("a")}}
	tab, err := storage.NewTable("z", schema, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(drow(1), drow(0), drow(3)); err != nil {
		t.Fatal(err)
	}
	cat["z"] = tab
	for _, columnar := range []bool{false, true} {
		env := &Env{Catalog: cat, Funcs: expr.NewRegistry(), Aggs: udf.NewRegistry(), Columnar: columnar}
		_, err := Select(context.Background(), sel(t, "SELECT 1.0 / a FROM z"), env)
		if !errors.Is(err, expr.ErrDivisionByZero) {
			t.Fatalf("columnar=%v: err = %v, want ErrDivisionByZero", columnar, err)
		}
	}
}
