package exec

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/engine/expr"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
)

// Insert executes INSERT..VALUES or INSERT..SELECT. For INSERT..SELECT
// the subquery's scan observes ctx cancellation and its execution
// stats are attached to the result.
func Insert(ctx context.Context, ins *sqlparser.Insert, env *Env) (*Result, error) {
	if err := analyze(ins, env); err != nil {
		return nil, err
	}
	t, err := env.Catalog.Table(ins.Table)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()

	// Map the statement's column list (or the full schema) to table
	// ordinals; unnamed columns receive NULL.
	var colIdx []int
	if len(ins.Columns) == 0 {
		colIdx = make([]int, schema.Len())
		for i := range colIdx {
			colIdx[i] = i
		}
	} else {
		colIdx = make([]int, len(ins.Columns))
		for i, name := range ins.Columns {
			idx := schema.Index(name)
			if idx < 0 {
				return nil, fmt.Errorf("exec: table %q has no column %q", ins.Table, name)
			}
			colIdx[i] = idx
		}
	}

	buildRow := func(vals sqltypes.Row) (sqltypes.Row, error) {
		if len(vals) != len(colIdx) {
			return nil, fmt.Errorf("exec: INSERT expects %d values, got %d", len(colIdx), len(vals))
		}
		row := make(sqltypes.Row, schema.Len())
		for i, idx := range colIdx {
			row[idx] = vals[i]
		}
		return row, nil
	}

	if ins.Query == nil {
		rows := make([]sqltypes.Row, 0, len(ins.Rows))
		vals := make(sqltypes.Row, len(colIdx))
		for _, exprRow := range ins.Rows {
			if len(exprRow) != len(colIdx) {
				return nil, fmt.Errorf("exec: INSERT expects %d values, got %d", len(colIdx), len(exprRow))
			}
			for i, e := range exprRow {
				ev, err := expr.Compile(e, nil, env.Funcs)
				if err != nil {
					return nil, err
				}
				v, err := ev.Eval(nil)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			row, err := buildRow(vals)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
		if err := t.Insert(rows...); err != nil {
			return nil, err
		}
		return &Result{Affected: int64(len(rows))}, nil
	}

	// INSERT .. SELECT: stream the subquery into the table.
	var mu sync.Mutex
	var count int64
	var batch []sqltypes.Row
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := t.Insert(batch...); err != nil {
			return err
		}
		count += int64(len(batch))
		batch = batch[:0]
		return nil
	}
	sink := func(r sqltypes.Row) error {
		row, err := buildRow(r)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		batch = append(batch, row)
		if len(batch) >= 1024 {
			return flush()
		}
		return nil
	}
	_, stats, err := SelectStream(ctx, ins.Query, env, sink)
	if err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return &Result{Affected: count, Stats: stats}, nil
}
