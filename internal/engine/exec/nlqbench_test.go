package exec

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/storage"
)

func benchTable(b *testing.B, dims, n int) (*storage.Table, []int) {
	b.Helper()
	cols := make([]sqltypes.Column, dims+1)
	cols[0] = icol("id")
	ords := make([]int, dims)
	for i := 0; i < dims; i++ {
		cols[i+1] = dcol("x" + string(rune('A'+i)))
		ords[i] = i + 1
	}
	schema := &sqltypes.Schema{Columns: cols}
	tab, err := storage.NewTable("x", schema, b.TempDir(), 20)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		r := make(sqltypes.Row, dims+1)
		r[0] = sqltypes.NewBigInt(int64(i))
		for j := 0; j < dims; j++ {
			r[j+1] = sqltypes.NewDouble(rng.NormFloat64())
		}
		rows[i] = r
	}
	if err := tab.Insert(rows...); err != nil {
		b.Fatal(err)
	}
	if err := tab.EnsureSegments(); err != nil {
		b.Fatal(err)
	}
	return tab, ords
}

func benchNLQ(b *testing.B, columnar bool) {
	tab, ords := benchTable(b, 16, 40000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := ComputeTableNLQ(context.Background(), tab, ords, core.Triangular, 0, columnar)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNLQRow(b *testing.B)      { benchNLQ(b, false) }
func BenchmarkNLQColumnar(b *testing.B) { benchNLQ(b, true) }
