package exec

import (
	"context"
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"

	"repro/internal/engine/expr"
	"repro/internal/engine/obs"
	"repro/internal/engine/sqlparser"
	"repro/internal/engine/sqltypes"
	"repro/internal/engine/udf"
)

// groupState is the per-group working storage: one UDF state per
// aggregate spec plus the group key values. DISTINCT specs defer
// accumulation: they collect the value set during the scan and fold it
// into a fresh state only after the cross-partition set union, so a
// value seen in two partitions counts once.
type groupState struct {
	keyVals sqltypes.Row
	states  []udf.State
	seen    []map[string]sqltypes.Row // per-spec DISTINCT sets, nil when not distinct
}

// runAggregate executes an aggregate SELECT: per-partition hash
// aggregation (phases 1-2 of the UDF protocol), a master merge
// (phase 3), then finalization and post-aggregation expression
// evaluation (phase 4). Each phase's wall time and the per-partition
// scan volumes are recorded in st; every per-partition state is local
// to its worker goroutine until the single-threaded merge.
func runAggregate(ctx context.Context, sel *sqlparser.Select, items []sqlparser.SelectItem, b *binding, env *Env, sink RowSink, st *Stats) (_ *sqltypes.Schema, err error) {
	// Scan-phase panics are contained per partition by RunParallel; this
	// guard covers the merge and finalize phases, which run UDF code
	// (Merge, Finalize) on the coordinating goroutine.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("exec: panic during aggregation: %v\n%s", r, debug.Stack())
		}
	}()
	st.hasMerge = true
	plan := st.ensureRoot().child("plan")
	// Rewrite the select list, collecting aggregate specs.
	rewritten := make([]sqlparser.Expr, len(items))
	var specs []aggSpec
	for i, item := range items {
		rewritten[i], specs, err = rewriteAggregates(item.Expr, sel.GroupBy, specs, env.Aggs)
		if err != nil {
			return nil, err
		}
	}
	// HAVING is evaluated over the same post-aggregation row.
	var having sqlparser.Expr
	if sel.Having != nil {
		having, specs, err = rewriteAggregates(sel.Having, sel.GroupBy, specs, env.Aggs)
		if err != nil {
			return nil, err
		}
	}

	// Validate: rewritten items may only reference $grp/$agg columns.
	for i, re := range rewritten {
		var bad error
		walkRefs(re, func(cr *sqlparser.ColumnRef) {
			if cr.Table != grpQualifier && cr.Table != aggQualifier && bad == nil {
				bad = fmt.Errorf("exec: column %s must appear in GROUP BY or inside an aggregate", cr)
			}
		})
		if bad != nil {
			return nil, fmt.Errorf("%w (select item %d)", bad, i+1)
		}
	}

	tail, residual, err := joinTail(ctx, b, sel.Where, env.Funcs)
	if err != nil {
		return nil, err
	}

	first := b.tables[0].table
	nparts := first.Partitions()
	partGroups := make([]map[string]*groupState, nparts)
	st.Partitions = nparts
	st.Workers = scanWorkers(env, nparts)
	st.PartitionRows = make([]int64, nparts)
	st.Plan = plan.finish()

	scanSpan := st.Root.child("scan")
	partSpans := make([]*Span, nparts)
	err = RunParallel(ctx, st.Workers, nparts, func(ctx context.Context, p int) error {
		span := newSpan(fmt.Sprintf("scan[p%d]", p))
		partSpans[p] = span
		// Everything below — evaluators, group states, errors — is
		// local to this partition's worker; partGroups[p] is this
		// worker's own slot. Nothing here may write enclosing-scope
		// variables (the old code shared `err` across workers, the
		// data race this layer exists to prevent).
		groups := make(map[string]*groupState)
		partGroups[p] = groups

		var where expr.Evaluator
		if residual != nil {
			w, cerr := expr.Compile(residual, b.resolve, env.Funcs)
			if cerr != nil {
				return cerr
			}
			where = w
		}
		groupEvs := make([]expr.Evaluator, len(sel.GroupBy))
		for i, g := range sel.GroupBy {
			ev, cerr := expr.Compile(g, b.resolve, env.Funcs)
			if cerr != nil {
				return cerr
			}
			groupEvs[i] = ev
		}
		argEvs := make([][]expr.Evaluator, len(specs))
		for i, s := range specs {
			argEvs[i] = make([]expr.Evaluator, len(s.args))
			for j, a := range s.args {
				ev, cerr := expr.Compile(a, b.resolve, env.Funcs)
				if cerr != nil {
					return cerr
				}
				argEvs[i][j] = ev
			}
		}

		flat := make(sqltypes.Row, b.width)
		keyVals := make(sqltypes.Row, len(groupEvs))
		var keyBuf strings.Builder
		argBuf := make([]sqltypes.Value, 8)
		var accCalls int64 // aggregate-protocol Accumulate calls, flushed once

		ps, serr := first.ScanPartitionStats(ctx, p, func(r sqltypes.Row) error {
			for _, t := range tail {
				copy(flat, r)
				copy(flat[len(r):], t)
				if where != nil {
					keep, err := where.Eval(flat)
					if err != nil {
						return err
					}
					if keep.IsNull() || !keep.Bool() {
						continue
					}
				}
				// Group key.
				keyBuf.Reset()
				for i, ev := range groupEvs {
					v, err := ev.Eval(flat)
					if err != nil {
						return err
					}
					keyVals[i] = v
					s := v.String()
					keyBuf.WriteString(strconv.Itoa(len(s)))
					keyBuf.WriteByte(':')
					keyBuf.WriteString(s)
				}
				key := keyBuf.String()
				g, ok := groups[key]
				if !ok {
					ng, gerr := newGroupState(keyVals, specs)
					if gerr != nil {
						return gerr
					}
					g = ng
					groups[key] = g
				}
				// Accumulate each aggregate.
				for i, s := range specs {
					var args []sqltypes.Value
					if !s.star {
						if cap(argBuf) < len(argEvs[i]) {
							argBuf = make([]sqltypes.Value, len(argEvs[i]))
						}
						args = argBuf[:len(argEvs[i])]
						for j, ev := range argEvs[i] {
							v, err := ev.Eval(flat)
							if err != nil {
								return err
							}
							args[j] = v
						}
					}
					if g.seen[i] != nil {
						k := distinctKey(args)
						if _, dup := g.seen[i][k]; !dup {
							saved := make(sqltypes.Row, len(args))
							copy(saved, args)
							g.seen[i][k] = saved
						}
						continue // accumulated after the global set union
					}
					if err := s.agg.Accumulate(g.states[i], args); err != nil {
						return err
					}
					accCalls++
				}
			}
			return nil
		})
		st.PartitionRows[p] = ps.Rows
		span.Rows, span.Bytes = ps.Rows, ps.Bytes
		span.finish()
		obs.UDFCalls.Add(accCalls)
		return serr
	})
	st.Scan = scanSpan.finish()
	finishScanSpan(scanSpan, partSpans, st)
	if err != nil {
		return nil, err
	}

	// Phase 3: master merge of per-partition partials.
	mergeSpan := st.Root.child("merge")
	merged := partGroups[0]
	for _, pg := range partGroups[1:] {
		for key, src := range pg {
			dst, ok := merged[key]
			if !ok {
				merged[key] = src
				continue
			}
			for i, s := range specs {
				if dst.seen[i] != nil {
					for k, v := range src.seen[i] {
						dst.seen[i][k] = v
					}
					continue
				}
				if err := s.agg.Merge(dst.states[i], src.states[i]); err != nil {
					return nil, err
				}
			}
		}
	}

	st.Merge = mergeSpan.finish()

	// Global aggregate over an empty input still yields one row.
	if len(sel.GroupBy) == 0 && len(merged) == 0 {
		g, err := newGroupState(nil, specs)
		if err != nil {
			return nil, err
		}
		merged[""] = g
	}

	// Phase 4: finalize and evaluate post-aggregation expressions.
	finalizeSpan := st.Root.child("finalize")
	defer func() { st.Finalize = finalizeSpan.finish() }()
	outSchema := &sqltypes.Schema{Columns: make([]sqltypes.Column, len(items))}
	for i, item := range items {
		outSchema.Columns[i] = sqltypes.Column{Name: itemName(item, i), Type: sqltypes.TypeDouble}
	}
	resolve := func(table, col string) (int, error) {
		k, err := strconv.Atoi(col)
		if err != nil {
			return 0, fmt.Errorf("exec: internal: bad synthetic column %s.%s", table, col)
		}
		switch table {
		case grpQualifier:
			return k, nil
		case aggQualifier:
			return len(sel.GroupBy) + k, nil
		}
		return 0, fmt.Errorf("exec: internal: unexpected qualifier %q", table)
	}
	itemEvs := make([]expr.Evaluator, len(rewritten))
	for i, re := range rewritten {
		ev, err := expr.Compile(re, resolve, env.Funcs)
		if err != nil {
			return nil, err
		}
		itemEvs[i] = ev
	}
	var havingEv expr.Evaluator
	if having != nil {
		var bad error
		walkRefs(having, func(cr *sqlparser.ColumnRef) {
			if cr.Table != grpQualifier && cr.Table != aggQualifier && bad == nil {
				bad = fmt.Errorf("exec: HAVING column %s must appear in GROUP BY or inside an aggregate", cr)
			}
		})
		if bad != nil {
			return nil, bad
		}
		if havingEv, err = expr.Compile(having, resolve, env.Funcs); err != nil {
			return nil, err
		}
	}

	groupRow := make(sqltypes.Row, len(sel.GroupBy)+len(specs))
	outRow := make(sqltypes.Row, len(items))
	for _, g := range merged {
		copy(groupRow, g.keyVals)
		for i, s := range specs {
			if g.seen[i] != nil {
				// Fold the (now global) distinct set into the state.
				for _, args := range g.seen[i] {
					if err := s.agg.Accumulate(g.states[i], args); err != nil {
						return nil, err
					}
				}
				obs.UDFCalls.Add(int64(len(g.seen[i])))
			}
			v, err := s.agg.Finalize(g.states[i])
			if err != nil {
				return nil, err
			}
			groupRow[len(sel.GroupBy)+i] = v
		}
		if havingEv != nil {
			keep, err := havingEv.Eval(groupRow)
			if err != nil {
				return nil, err
			}
			if keep.IsNull() || !keep.Bool() {
				continue
			}
		}
		for i, ev := range itemEvs {
			v, err := ev.Eval(groupRow)
			if err != nil {
				return nil, err
			}
			outRow[i] = v
		}
		if err := sink(outRow); err != nil {
			return nil, err
		}
	}
	return outSchema, nil
}

func newGroupState(keyVals sqltypes.Row, specs []aggSpec) (*groupState, error) {
	g := &groupState{
		keyVals: keyVals.Clone(),
		states:  make([]udf.State, len(specs)),
		seen:    make([]map[string]sqltypes.Row, len(specs)),
	}
	for i, s := range specs {
		st, err := s.agg.Init(udf.NewHeap(udf.SegmentSize))
		if err != nil {
			return nil, err
		}
		g.states[i] = st
		if s.distinct {
			g.seen[i] = make(map[string]sqltypes.Row)
		}
	}
	return g, nil
}

func distinctKey(args []sqltypes.Value) string {
	var b strings.Builder
	for _, v := range args {
		s := v.String()
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	return b.String()
}

// walkRefs visits every column reference in an expression.
func walkRefs(e sqlparser.Expr, fn func(*sqlparser.ColumnRef)) {
	switch e := e.(type) {
	case *sqlparser.ColumnRef:
		fn(e)
	case *sqlparser.UnaryExpr:
		walkRefs(e.X, fn)
	case *sqlparser.BinaryExpr:
		walkRefs(e.L, fn)
		walkRefs(e.R, fn)
	case *sqlparser.FuncCall:
		for _, a := range e.Args {
			walkRefs(a, fn)
		}
	case *sqlparser.CaseExpr:
		for _, w := range e.Whens {
			walkRefs(w.Cond, fn)
			walkRefs(w.Then, fn)
		}
		if e.Else != nil {
			walkRefs(e.Else, fn)
		}
	case *sqlparser.IsNullExpr:
		walkRefs(e.X, fn)
	case *sqlparser.CastExpr:
		walkRefs(e.X, fn)
	case *sqlparser.BetweenExpr:
		walkRefs(e.X, fn)
		walkRefs(e.Lo, fn)
		walkRefs(e.Hi, fn)
	case *sqlparser.InExpr:
		walkRefs(e.X, fn)
		for _, x := range e.List {
			walkRefs(x, fn)
		}
	}
}
