package sqlparser

import (
	"strconv"
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, "CREATE TABLE X (i BIGINT, X1 DOUBLE, name VARCHAR)").(*CreateTable)
	if st.Name != "X" || len(st.Columns) != 3 {
		t.Fatalf("%+v", st)
	}
	if st.Columns[1].Name != "X1" || st.Columns[1].Type != "DOUBLE" {
		t.Fatalf("%+v", st.Columns)
	}
	st2 := mustParse(t, "create table if not exists t (a int)").(*CreateTable)
	if !st2.IfNotExists {
		t.Fatal("IF NOT EXISTS not parsed")
	}
}

func TestParseDropTable(t *testing.T) {
	st := mustParse(t, "DROP TABLE foo").(*DropTable)
	if st.Name != "foo" || st.IfExists {
		t.Fatalf("%+v", st)
	}
	st2 := mustParse(t, "DROP TABLE IF EXISTS foo;").(*DropTable)
	if !st2.IfExists {
		t.Fatal("IF EXISTS not parsed")
	}
}

func TestParseInsertValues(t *testing.T) {
	st := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2.5, NULL)").(*Insert)
	if st.Table != "t" || len(st.Columns) != 2 || len(st.Rows) != 2 {
		t.Fatalf("%+v", st)
	}
	if lit, ok := st.Rows[0][0].(*NumberLit); !ok || !lit.IsInt || lit.Int != 1 {
		t.Fatalf("first value: %#v", st.Rows[0][0])
	}
	if _, ok := st.Rows[1][1].(*NullLit); !ok {
		t.Fatalf("NULL value: %#v", st.Rows[1][1])
	}
}

func TestParseInsertSelect(t *testing.T) {
	st := mustParse(t, "INSERT INTO t SELECT a, b FROM u WHERE a > 0").(*Insert)
	if st.Query == nil || len(st.Query.Items) != 2 {
		t.Fatalf("%+v", st)
	}
}

func TestParseSelectFull(t *testing.T) {
	sql := `SELECT j, sum(X1) AS s1, count(*) c
	        FROM X CROSS JOIN C alias1, D AS alias2
	        WHERE X1 > 1.5 AND j IS NOT NULL
	        GROUP BY j ORDER BY s1 DESC, j LIMIT 10`
	st := mustParse(t, sql).(*Select)
	if len(st.Items) != 3 {
		t.Fatalf("items: %d", len(st.Items))
	}
	if st.Items[1].Alias != "s1" || st.Items[2].Alias != "c" {
		t.Fatalf("aliases: %+v", st.Items)
	}
	if len(st.From) != 3 || st.From[1].RefName() != "alias1" || st.From[2].RefName() != "alias2" {
		t.Fatalf("from: %+v", st.From)
	}
	if st.Where == nil || len(st.GroupBy) != 1 || len(st.OrderBy) != 2 {
		t.Fatalf("clauses: %+v", st)
	}
	if !st.OrderBy[0].Desc || st.OrderBy[1].Desc {
		t.Fatalf("order: %+v", st.OrderBy)
	}
	if st.Limit == nil || *st.Limit != 10 {
		t.Fatalf("limit: %v", st.Limit)
	}
}

func TestParseStar(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t").(*Select)
	if !st.Items[0].Star || st.Items[0].StarTable != "" {
		t.Fatalf("%+v", st.Items[0])
	}
	st2 := mustParse(t, "SELECT t.*, u.a FROM t, u").(*Select)
	if !st2.Items[0].Star || st2.Items[0].StarTable != "t" {
		t.Fatalf("%+v", st2.Items[0])
	}
}

func TestParseCountStarAndDistinct(t *testing.T) {
	st := mustParse(t, "SELECT count(*), count(DISTINCT a) FROM t").(*Select)
	fc := st.Items[0].Expr.(*FuncCall)
	if fc.Name != "count" || !fc.Star {
		t.Fatalf("%+v", fc)
	}
	fc2 := st.Items[1].Expr.(*FuncCall)
	if !fc2.Distinct || len(fc2.Args) != 1 {
		t.Fatalf("%+v", fc2)
	}
}

func TestExprPrecedence(t *testing.T) {
	cases := map[string]string{
		"1 + 2 * 3":                "(1 + (2 * 3))",
		"(1 + 2) * 3":              "((1 + 2) * 3)",
		"a = 1 OR b = 2 AND c = 3": "((a = 1) OR ((b = 2) AND (c = 3)))",
		"NOT a = 1":                "(NOT (a = 1))",
		"-a * b":                   "((-a) * b)",
		"a - -b":                   "(a - (-b))",
		"a <> b":                   "(a <> b)",
		"a != b":                   "(a <> b)",
		"x % 16":                   "(x % 16)",
	}
	for in, want := range cases {
		e, err := ParseExpr(in)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", in, err)
			continue
		}
		if got := e.String(); got != want {
			t.Errorf("ParseExpr(%q) = %s, want %s", in, got, want)
		}
	}
}

func TestParseCase(t *testing.T) {
	e, err := ParseExpr("CASE WHEN a > 0 THEN 1 WHEN a < 0 THEN -1 ELSE 0 END")
	if err != nil {
		t.Fatal(err)
	}
	ce := e.(*CaseExpr)
	if len(ce.Whens) != 2 || ce.Else == nil {
		t.Fatalf("%+v", ce)
	}
	if _, err := ParseExpr("CASE ELSE 1 END"); err == nil {
		t.Fatal("CASE without WHEN must fail")
	}
}

func TestParseCast(t *testing.T) {
	e, err := ParseExpr("CAST(a AS DOUBLE)")
	if err != nil {
		t.Fatal(err)
	}
	c := e.(*CastExpr)
	if c.Type != "DOUBLE" {
		t.Fatalf("%+v", c)
	}
}

func TestParseBetweenInLike(t *testing.T) {
	e, _ := ParseExpr("a BETWEEN 1 AND 5")
	if b := e.(*BetweenExpr); b.Negate {
		t.Fatal("unexpected negate")
	}
	e, _ = ParseExpr("a NOT BETWEEN 1 AND 5")
	if b := e.(*BetweenExpr); !b.Negate {
		t.Fatal("missing negate")
	}
	e, _ = ParseExpr("a IN (1, 2, 3)")
	if in := e.(*InExpr); len(in.List) != 3 {
		t.Fatalf("%+v", in)
	}
	e, _ = ParseExpr("a NOT IN (1)")
	if in := e.(*InExpr); !in.Negate {
		t.Fatal("missing negate")
	}
	e, _ = ParseExpr("s LIKE 'x%'")
	if fc := e.(*FuncCall); fc.Name != "like" {
		t.Fatalf("%+v", fc)
	}
}

func TestParseIsNull(t *testing.T) {
	e, _ := ParseExpr("a IS NULL")
	if is := e.(*IsNullExpr); is.Negate {
		t.Fatal("unexpected negate")
	}
	e, _ = ParseExpr("a IS NOT NULL")
	if is := e.(*IsNullExpr); !is.Negate {
		t.Fatal("missing negate")
	}
}

func TestParseQualifiedColumns(t *testing.T) {
	e, _ := ParseExpr("t.X1 * u.X2")
	be := e.(*BinaryExpr)
	l := be.L.(*ColumnRef)
	if l.Table != "t" || l.Name != "X1" {
		t.Fatalf("%+v", l)
	}
}

func TestParseStringEscapes(t *testing.T) {
	e, err := ParseExpr("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if s := e.(*StringLit); s.Val != "it's" {
		t.Fatalf("%q", s.Val)
	}
}

func TestParseComments(t *testing.T) {
	st := mustParse(t, "SELECT 1 /* Q */, 2 -- trailing\n FROM t").(*Select)
	if len(st.Items) != 2 {
		t.Fatalf("%+v", st.Items)
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript("CREATE TABLE t (a INT); INSERT INTO t VALUES (1);; SELECT a FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseWideSelect(t *testing.T) {
	// The paper's "long" 1+d+d² query must parse; build one at d=16.
	var b strings.Builder
	b.WriteString("SELECT sum(1.0)")
	for a := 1; a <= 16; a++ {
		b.WriteString(", sum(X")
		b.WriteString(itoa(a))
		b.WriteString(")")
	}
	for a := 1; a <= 16; a++ {
		for c := 1; c <= a; c++ {
			b.WriteString(", sum(X")
			b.WriteString(itoa(a))
			b.WriteString("*X")
			b.WriteString(itoa(c))
			b.WriteString(")")
		}
	}
	b.WriteString(" FROM X")
	st := mustParse(t, b.String()).(*Select)
	want := 1 + 16 + 16*17/2
	if len(st.Items) != want {
		t.Fatalf("items = %d, want %d", len(st.Items), want)
	}
}

func itoa(i int) string { return strconv.Itoa(i) }

func TestParseCreateDropView(t *testing.T) {
	st := mustParse(t, "CREATE VIEW v AS SELECT a AS x, b + 1 AS y FROM t WHERE a > 0").(*CreateView)
	if st.Name != "v" || len(st.Query.Items) != 2 || st.Query.Where == nil {
		t.Fatalf("%+v", st)
	}
	dv := mustParse(t, "DROP VIEW IF EXISTS v").(*DropView)
	if dv.Name != "v" || !dv.IfExists {
		t.Fatalf("%+v", dv)
	}
	if _, err := Parse("CREATE VIEW v AS INSERT INTO t VALUES (1)"); err == nil {
		t.Fatal("non-SELECT view body must fail")
	}
}

func TestParseHaving(t *testing.T) {
	st := mustParse(t, "SELECT g, sum(a) FROM t GROUP BY g HAVING sum(a) > 10 ORDER BY g").(*Select)
	if st.Having == nil || st.Having.String() != "(sum(a) > 10)" {
		t.Fatalf("having = %v", st.Having)
	}
	if len(st.OrderBy) != 1 {
		t.Fatalf("order by lost after having: %+v", st)
	}
}

func TestSelectStringRoundTrip(t *testing.T) {
	// Select.String output must re-parse to an equivalent statement
	// (catalog view persistence depends on this).
	queries := []string{
		"SELECT a AS x, (b + 1) AS y FROM t WHERE (a > 0)",
		"SELECT g, sum(a) AS s FROM t GROUP BY g HAVING (sum(a) > 10) ORDER BY g DESC LIMIT 5",
		"SELECT t.a AS a, u.b AS b FROM t CROSS JOIN u AS alias WHERE (t.a = alias.b)",
		"SELECT * FROM t",
		"SELECT CASE WHEN (a > 0) THEN 1 ELSE 0 END AS flag FROM t",
	}
	for _, q := range queries {
		st1, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		s1 := st1.(*Select).String()
		st2, err := Parse(s1)
		if err != nil {
			t.Fatalf("re-parse %q: %v", s1, err)
		}
		if s2 := st2.(*Select).String(); s1 != s2 {
			t.Fatalf("unstable rendering:\n%s\n%s", s1, s2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC 1",
		"SELECT",
		"SELECT 1 FROM",
		"CREATE TABLE",
		"CREATE TABLE t",
		"INSERT INTO t",
		"SELECT 1 EXTRA GARBAGE (",
		"SELECT 'unterminated",
		"SELECT 1 LIMIT x",
		"SELECT @",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	// Expr.String output must re-parse to the same string (stability).
	exprs := []string{
		"((a + b) * 2)",
		"CASE WHEN (a > 0) THEN 1 ELSE (-1) END",
		"sum((X1 * X2))",
		"(t.a IS NULL)",
		"CAST(a AS DOUBLE)",
		"(a BETWEEN 1 AND 2)",
		"(a IN (1, 2))",
	}
	for _, s := range exprs {
		e, err := ParseExpr(s)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", s, err)
			continue
		}
		e2, err := ParseExpr(e.String())
		if err != nil {
			t.Errorf("re-parse of %q → %q: %v", s, e.String(), err)
			continue
		}
		if e.String() != e2.String() {
			t.Errorf("unstable: %q vs %q", e.String(), e2.String())
		}
	}
}

func TestParseDottedTableName(t *testing.T) {
	st := mustParse(t, "SELECT name, value FROM sys.metrics").(*Select)
	if len(st.From) != 1 || st.From[0].Name != "sys.metrics" {
		t.Fatalf("from: %+v", st.From)
	}
	// With an alias, qualified column refs resolve against the alias.
	st2 := mustParse(t, "SELECT m.name FROM sys.metrics m WHERE m.value > 0").(*Select)
	if st2.From[0].Name != "sys.metrics" || st2.From[0].Alias != "m" {
		t.Fatalf("from: %+v", st2.From)
	}
	if _, err := Parse("SELECT * FROM sys."); err == nil {
		t.Fatal("trailing dot should not parse")
	}
}
