// Package sqlparser implements the lexer, AST and recursive-descent
// parser for the engine's SQL subset: CREATE/DROP TABLE, INSERT (values
// and INSERT..SELECT), and SELECT with expressions, function calls
// (including UDFs), CASE, CROSS JOIN, WHERE, GROUP BY, ORDER BY and
// LIMIT. This is the surface the paper's generated queries use.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
)

// token is one lexical token with its source position (1-based).
type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents keep original case
	pos  int
}

// keywords recognized by the lexer. Anything else alphabetic is an
// identifier (so UDF names never need quoting).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "NULL": true, "IS": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "CREATE": true, "DROP": true,
	"TABLE": true, "INSERT": true, "INTO": true, "VALUES": true,
	"CROSS": true, "JOIN": true, "ASC": true, "DESC": true, "IF": true,
	"EXISTS": true, "TRUE": true, "FALSE": true, "DISTINCT": true,
	"BETWEEN": true, "IN": true, "CAST": true, "VIEW": true, "LIKE": true,
	"HAVING": true,
}

// lexer scans SQL text into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. It returns a parse error with position on any
// malformed token.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos + 1})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.pos++
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			word := l.src[start:l.pos]
			up := strings.ToUpper(word)
			if keywords[up] {
				l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start + 1})
			} else {
				l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start + 1})
			}
		case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start + 1})
			return nil
		}
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start + 1})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' { // escaped ''
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start + 1})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparser: unterminated string literal at position %d", start+1)
}

func (l *lexer) lexSymbol() error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "<=", ">=", "!=", "||":
		l.pos += 2
		l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: start + 1})
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '<', '>', '=', '.', ';':
		l.pos++
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start + 1})
		return nil
	}
	return fmt.Errorf("sqlparser: unexpected character %q at position %d", c, start+1)
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
