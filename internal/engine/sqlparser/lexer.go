// Package sqlparser implements the lexer, AST and recursive-descent
// parser for the engine's SQL subset: CREATE/DROP TABLE, INSERT (values
// and INSERT..SELECT), and SELECT with expressions, function calls
// (including UDFs), CASE, CROSS JOIN, WHERE, GROUP BY, ORDER BY and
// LIMIT. This is the surface the paper's generated queries use.
//
// Every token carries a Position (1-based line and column plus the
// byte offset), which the parser threads into the AST nodes it builds.
// Parser errors and the sema layer's diagnostics both report
// "line:col" so errors in the paper's long generated queries point at
// the offending term instead of a byte offset.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Position is a source location within the SQL text handed to the
// parser. Line and Column are 1-based; Offset is the 0-based byte
// offset. The zero Position is "unknown" (synthetic nodes built by the
// planner have no source location).
type Position struct {
	Offset int
	Line   int
	Column int
}

// IsValid reports whether the position refers to actual source text.
func (p Position) IsValid() bool { return p.Line > 0 }

// String renders the position as "line:col", the format used by parser
// errors and sema diagnostics.
func (p Position) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Column)
}

// positionAt computes the line:col position of a byte offset; used on
// lexer error paths (token positions are filled in bulk by lex).
func positionAt(src string, offset int) Position {
	line, lineStart := 1, 0
	if offset > len(src) {
		offset = len(src)
	}
	for i := 0; i < offset; i++ {
		if src[i] == '\n' {
			line++
			lineStart = i + 1
		}
	}
	return Position{Offset: offset, Line: line, Column: offset - lineStart + 1}
}

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
)

// token is one lexical token with its source position.
type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents keep original case
	pos  Position
}

// keywords recognized by the lexer. Anything else alphabetic is an
// identifier (so UDF names never need quoting).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "NULL": true, "IS": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "CREATE": true, "DROP": true,
	"TABLE": true, "INSERT": true, "INTO": true, "VALUES": true,
	"CROSS": true, "JOIN": true, "ASC": true, "DESC": true, "IF": true,
	"EXISTS": true, "TRUE": true, "FALSE": true, "DISTINCT": true,
	"BETWEEN": true, "IN": true, "CAST": true, "VIEW": true, "LIKE": true,
	"HAVING": true,
}

// lexer scans SQL text into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. It returns a parse error with position on any
// malformed token. Tokens initially record only byte offsets; line and
// column are filled by one pass over the source at the end.
func lex(src string) ([]token, error) {
	toks, err := lexInto(src, nil)
	if err != nil {
		return nil, err
	}
	return toks, nil
}

// lexInto tokenizes src, appending into toks (normally a pooled buffer
// truncated to length zero) so the hot statement path reuses one token
// slice instead of growing a fresh one per statement. On error the
// partially filled slice is returned alongside the error so the caller
// can still recycle its backing array.
func lexInto(src string, toks []token) ([]token, error) {
	l := lexer{src: src, toks: toks}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: Position{Offset: l.pos}})
			fillPositions(src, l.toks)
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		r, size := rune(c), 1
		if c >= utf8.RuneSelf {
			// Decode as UTF-8, not Latin-1: an invalid byte yields
			// RuneError (not a letter) and is rejected below, so byte
			// soup cannot enter the AST only to print as U+FFFD and
			// re-parse differently.
			r, size = utf8.DecodeRuneInString(l.src[l.pos:])
		}
		switch {
		case isIdentStart(r):
			l.pos += size
			for l.pos < len(l.src) {
				r2, s2 := decodeRuneAt(l.src, l.pos)
				if !isIdentPart(r2) {
					break
				}
				l.pos += s2
			}
			word := l.src[start:l.pos]
			up := strings.ToUpper(word)
			if keywords[up] {
				l.emit(tokKeyword, up, start)
			} else {
				l.emit(tokIdent, word, start)
			}
		case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			if err := l.lexNumber(); err != nil {
				return l.toks, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return l.toks, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return l.toks, err
			}
		}
	}
}

// emit appends a token whose position is, for now, only the offset.
func (l *lexer) emit(kind tokenKind, text string, start int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: Position{Offset: start}})
}

// fillPositions computes line:col for every token in one pass over the
// source. Tokens are in offset order, so a single scan suffices.
func fillPositions(src string, toks []token) {
	line, lineStart := 1, 0
	ti := 0
	for i := 0; i <= len(src) && ti < len(toks); i++ {
		for ti < len(toks) && toks[ti].pos.Offset == i {
			toks[ti].pos.Line = line
			toks[ti].pos.Column = i - lineStart + 1
			ti++
		}
		if i < len(src) && src[i] == '\n' {
			line++
			lineStart = i + 1
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			l.emit(tokNumber, l.src[start:l.pos], start)
			return nil
		}
	}
	l.emit(tokNumber, l.src[start:l.pos], start)
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' { // escaped ''
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tokString, b.String(), start)
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparser: %s: unterminated string literal", positionAt(l.src, start))
}

func (l *lexer) lexSymbol() error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "<=", ">=", "!=", "||":
		l.pos += 2
		l.emit(tokSymbol, two, start)
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '<', '>', '=', '.', ';', '?':
		l.pos++
		l.emit(tokSymbol, string(c), start)
		return nil
	}
	return fmt.Errorf("sqlparser: %s: unexpected character %q", positionAt(l.src, start), c)
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

// decodeRuneAt reads one rune starting at byte i, with a fast path for
// ASCII (the overwhelmingly common case in SQL text).
func decodeRuneAt(s string, i int) (rune, int) {
	if c := s[i]; c < utf8.RuneSelf {
		return rune(c), 1
	}
	return utf8.DecodeRuneInString(s[i:])
}
