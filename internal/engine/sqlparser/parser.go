package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL statement (an optional trailing semicolon is
// allowed). The statement records the slice of sql it was parsed from
// (see StatementSource).
func Parse(sql string) (Statement, error) {
	s, err := getScratch(sql)
	if err != nil {
		return nil, err
	}
	defer putScratch(s)
	p := &s.p
	start := p.peek().pos.Offset
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	end := p.peek().pos.Offset // the ';' or EOF token
	p.accept(tokSymbol, ";")
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %q after statement", p.peek().text)
	}
	SetStatementSource(stmt, strings.TrimSpace(sql[start:end]))
	return stmt, nil
}

// ParseScript parses a sequence of semicolon-separated statements.
// Each statement records the slice of sql it was parsed from, so the
// query log shows the real text rather than a Go type name.
func ParseScript(sql string) ([]Statement, error) {
	s, err := getScratch(sql)
	if err != nil {
		return nil, err
	}
	defer putScratch(s)
	p := &s.p
	var out []Statement
	for {
		for p.accept(tokSymbol, ";") {
		}
		if p.peek().kind == tokEOF {
			return out, nil
		}
		start := p.peek().pos.Offset
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		SetStatementSource(stmt, strings.TrimSpace(sql[start:p.peek().pos.Offset]))
		out = append(out, stmt)
		if !p.accept(tokSymbol, ";") && p.peek().kind != tokEOF {
			return nil, p.errorf("expected ';' between statements, got %q", p.peek().text)
		}
	}
}

// ParseExpr parses a standalone expression (used by tests and by the
// engine's expression-level APIs).
func ParseExpr(s string) (Expr, error) {
	sc, err := getScratch(s)
	if err != nil {
		return nil, err
	}
	defer putScratch(sc)
	p := &sc.p
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %q after expression", p.peek().text)
	}
	return e, nil
}

type parser struct {
	toks   []token
	i      int
	params int // number of `?` parameters seen so far, in source order
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) peek2() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

// pos is the position of the token about to be consumed.
func (p *parser) pos() Position { return p.peek().pos }

// accept consumes the next token when it matches kind and (case for
// keywords/symbols) text; it reports whether it consumed.
func (p *parser) accept(kind tokenKind, text string) bool {
	t := p.peek()
	if t.kind == kind && t.text == text {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) error {
	if !p.accept(kind, text) {
		return p.errorf("expected %q, got %q", text, p.peek().text)
	}
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparser: %s: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStatement() (Statement, error) {
	switch t := p.peek(); {
	case t.kind == tokKeyword && t.text == "SELECT":
		return p.parseSelect()
	case t.kind == tokKeyword && t.text == "CREATE":
		return p.parseCreate()
	case t.kind == tokKeyword && t.text == "DROP":
		return p.parseDrop()
	case t.kind == tokKeyword && t.text == "INSERT":
		return p.parseInsert()
	default:
		return nil, p.errorf("expected a statement, got %q", t.text)
	}
}

func (p *parser) parseIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errorf("expected identifier, got %q", t.text)
	}
	p.i++
	return t.text, nil
}

func (p *parser) parseCreate() (Statement, error) {
	at := p.next().pos // CREATE
	if p.accept(tokKeyword, "VIEW") {
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "AS"); err != nil {
			return nil, err
		}
		if p.peek().kind != tokKeyword || p.peek().text != "SELECT" {
			return nil, p.errorf("expected SELECT after CREATE VIEW ... AS")
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateView{Name: name, Query: sel, At: at}, nil
	}
	if err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	st := &CreateTable{At: at}
	if p.accept(tokKeyword, "IF") {
		if err := p.expect(tokKeyword, "NOT"); err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		colPos := p.pos()
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		typ := p.peek()
		if typ.kind != tokIdent && typ.kind != tokKeyword {
			return nil, p.errorf("expected column type, got %q", typ.text)
		}
		p.i++
		st.Columns = append(st.Columns, ColumnDef{Name: col, Type: typ.text, At: colPos})
		if p.accept(tokSymbol, ",") {
			continue
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return st, nil
	}
}

func (p *parser) parseDrop() (Statement, error) {
	at := p.next().pos // DROP
	isView := p.accept(tokKeyword, "VIEW")
	if !isView {
		if err := p.expect(tokKeyword, "TABLE"); err != nil {
			return nil, err
		}
	}
	ifExists := false
	if p.accept(tokKeyword, "IF") {
		if err := p.expect(tokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		ifExists = true
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if isView {
		return &DropView{Name: name, IfExists: ifExists, At: at}, nil
	}
	return &DropTable{Name: name, IfExists: ifExists, At: at}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	at := p.next().pos // INSERT
	if err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	tablePos := p.pos()
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st := &Insert{Table: name, At: at, TablePos: tablePos}
	if p.accept(tokSymbol, "(") {
		for {
			colPos := p.pos()
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			st.ColumnPos = append(st.ColumnPos, colPos)
			if p.accept(tokSymbol, ",") {
				continue
			}
			if err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if p.accept(tokKeyword, "VALUES") {
		for {
			if err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.accept(tokSymbol, ",") {
					continue
				}
				if err := p.expect(tokSymbol, ")"); err != nil {
					return nil, err
				}
				break
			}
			st.Rows = append(st.Rows, row)
			if !p.accept(tokSymbol, ",") {
				return st, nil
			}
		}
	}
	if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Query = sel
		return st, nil
	}
	return nil, p.errorf("expected VALUES or SELECT in INSERT, got %q", p.peek().text)
}

func (p *parser) parseSelect() (*Select, error) {
	at := p.next().pos // SELECT
	st := &Select{At: at}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			st.From = append(st.From, ref)
			if p.accept(tokSymbol, ",") {
				continue
			}
			if p.accept(tokKeyword, "CROSS") {
				if err := p.expect(tokKeyword, "JOIN"); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = e
	}
	if p.accept(tokKeyword, "ORDER") {
		if err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			st.OrderBy = append(st.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected number after LIMIT, got %q", t.text)
		}
		p.i++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.text)
		}
		st.Limit = &n
	}
	return st, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// `*` or `t.*`
	starPos := p.pos()
	if p.accept(tokSymbol, "*") {
		return SelectItem{Star: true, At: starPos}, nil
	}
	if p.peek().kind == tokIdent && p.peek2().kind == tokSymbol && p.peek2().text == "." {
		// lookahead for t.* without consuming on failure
		save := p.i
		name, _ := p.parseIdent()
		p.next() // "."
		if p.accept(tokSymbol, "*") {
			return SelectItem{Star: true, StarTable: name, At: starPos}, nil
		}
		p.i = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e, At: e.Pos()}
	if p.accept(tokKeyword, "AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	at := p.pos()
	name, err := p.parseIdent()
	if err != nil {
		return TableRef{}, err
	}
	// Qualified names ("sys.metrics") join into one dotted table name;
	// the catalog treats the dot as part of the name, not a schema
	// hierarchy.
	if p.accept(tokSymbol, ".") {
		part, err := p.parseIdent()
		if err != nil {
			return TableRef{}, err
		}
		name = name + "." + part
	}
	ref := TableRef{Name: name, At: at}
	if p.accept(tokKeyword, "AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.peek().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// Expression grammar, lowest to highest precedence:
//   OR → AND → NOT → comparison/IS/BETWEEN/IN/LIKE → additive/|| →
//   multiplicative → unary minus → primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		opPos := p.pos()
		if !p.accept(tokKeyword, "OR") {
			return l, nil
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r, At: opPos}
	}
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		opPos := p.pos()
		if !p.accept(tokKeyword, "AND") {
			return l, nil
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r, At: opPos}
	}
}

func (p *parser) parseNot() (Expr, error) {
	notPos := p.pos()
	if p.accept(tokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x, At: notPos}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch t := p.peek(); {
		case t.kind == tokSymbol && (t.text == "=" || t.text == "<" || t.text == ">" ||
			t.text == "<=" || t.text == ">=" || t.text == "<>" || t.text == "!="):
			opPos := p.pos()
			op := p.next().text
			if op == "!=" {
				op = "<>"
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: op, L: l, R: r, At: opPos}
		case t.kind == tokKeyword && t.text == "IS":
			isPos := p.next().pos
			negate := p.accept(tokKeyword, "NOT")
			if err := p.expect(tokKeyword, "NULL"); err != nil {
				return nil, err
			}
			l = &IsNullExpr{X: l, Negate: negate, At: isPos}
		case t.kind == tokKeyword && t.text == "BETWEEN":
			btwPos := p.next().pos
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokKeyword, "AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BetweenExpr{X: l, Lo: lo, Hi: hi, At: btwPos}
		case t.kind == tokKeyword && t.text == "NOT" &&
			p.peek2().kind == tokKeyword && (p.peek2().text == "BETWEEN" || p.peek2().text == "IN" || p.peek2().text == "LIKE"):
			p.next() // NOT
			inner, err := p.parseComparisonTail(l, true)
			if err != nil {
				return nil, err
			}
			l = inner
		case t.kind == tokKeyword && (t.text == "IN" || t.text == "LIKE"):
			inner, err := p.parseComparisonTail(l, false)
			if err != nil {
				return nil, err
			}
			l = inner
		default:
			return l, nil
		}
	}
}

// parseComparisonTail handles [NOT] IN / LIKE / BETWEEN suffixes after
// the NOT has been consumed.
func (p *parser) parseComparisonTail(l Expr, negate bool) (Expr, error) {
	switch t := p.next(); t.text {
	case "BETWEEN":
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: l, Lo: lo, Hi: hi, Negate: negate, At: t.pos}, nil
	case "IN":
		if err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			if err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			break
		}
		return &InExpr{X: l, List: list, Negate: negate, At: t.pos}, nil
	case "LIKE":
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		like := &FuncCall{Name: "like", Args: []Expr{l, pat}, At: t.pos}
		if negate {
			return &UnaryExpr{Op: "NOT", X: like, At: t.pos}, nil
		}
		return like, nil
	default:
		return nil, p.errorf("unexpected %q", t.text)
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "+" && t.text != "-" && t.text != "||") {
			return l, nil
		}
		op := p.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op.text, L: l, R: r, At: op.pos}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "*" && t.text != "/" && t.text != "%") {
			return l, nil
		}
		op := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op.text, L: l, R: r, At: op.pos}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	minusPos := p.pos()
	if p.accept(tokSymbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x, At: minusPos}, nil
	}
	if p.accept(tokSymbol, "+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.i++
		if !strings.ContainsAny(t.text, ".eE") {
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return &NumberLit{IsInt: true, Int: n, Float: float64(n), At: t.pos}, nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.text)
		}
		return &NumberLit{Float: f, At: t.pos}, nil
	case t.kind == tokString:
		p.i++
		return &StringLit{Val: t.text, At: t.pos}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.i++
		return &NullLit{At: t.pos}, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.i++
		return &BoolLit{Val: true, At: t.pos}, nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.i++
		return &BoolLit{Val: false, At: t.pos}, nil
	case t.kind == tokSymbol && t.text == "?":
		p.i++
		pr := &ParamRef{Index: p.params, At: t.pos}
		p.params++
		return pr, nil
	case t.kind == tokKeyword && t.text == "CASE":
		return p.parseCase()
	case t.kind == tokKeyword && t.text == "CAST":
		return p.parseCast()
	case t.kind == tokSymbol && t.text == "(":
		p.i++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		return p.parseIdentExpr()
	default:
		return nil, p.errorf("unexpected %q in expression", t.text)
	}
}

func (p *parser) parseIdentExpr() (Expr, error) {
	nameTok := p.next()
	name := nameTok.text
	// Function call?
	if p.peek().kind == tokSymbol && p.peek().text == "(" {
		p.i++
		fc := &FuncCall{Name: strings.ToLower(name), At: nameTok.pos}
		if p.accept(tokSymbol, "*") {
			fc.Star = true
			if err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		if p.accept(tokSymbol, ")") {
			return fc, nil
		}
		if p.accept(tokKeyword, "DISTINCT") {
			fc.Distinct = true
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			if err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
	}
	// Qualified column?
	if p.peek().kind == tokSymbol && p.peek().text == "." {
		p.i++
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: name, Name: col, At: nameTok.pos}, nil
	}
	return &ColumnRef{Name: name, At: nameTok.pos}, nil
}

func (p *parser) parseCase() (Expr, error) {
	casePos := p.next().pos // CASE
	ce := &CaseExpr{At: casePos}
	for p.accept(tokKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, When{Cond: cond, Then: then})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.accept(tokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expect(tokKeyword, "END"); err != nil {
		return nil, err
	}
	return ce, nil
}

func (p *parser) parseCast() (Expr, error) {
	castPos := p.next().pos // CAST
	if err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokKeyword, "AS"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokIdent && t.kind != tokKeyword {
		return nil, p.errorf("expected type name in CAST, got %q", t.text)
	}
	p.i++
	if err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return &CastExpr{X: x, Type: t.text, At: castPos}, nil
}
