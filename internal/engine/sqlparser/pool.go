package sqlparser

import "sync"

// parseScratch bundles the token buffer and parser state for one
// Parse/ParseScript/ParseExpr call. High-QPS serving parses one small
// statement per request; pooling the scratch removes the token-slice
// allocation from that path (the VictoriaMetrics parser-pool idiom).
type parseScratch struct {
	toks []token
	p    parser
}

var scratchPool = sync.Pool{New: func() any { return new(parseScratch) }}

// getScratch lexes src into a pooled scratch and positions the parser
// at the first token. On lex error the scratch is recycled and only
// the error returned.
func getScratch(src string) (*parseScratch, error) {
	s := scratchPool.Get().(*parseScratch)
	toks, err := lexInto(src, s.toks[:0])
	s.toks = toks // keep the (possibly grown) backing array either way
	if err != nil {
		putScratch(s)
		return nil, err
	}
	s.p = parser{toks: toks}
	return s, nil
}

// putScratch recycles s. Token texts alias the SQL string that was
// parsed, so every element is zeroed first: a pooled scratch must not
// pin a caller's statement text (or leak one statement's tokens into
// the next parse).
func putScratch(s *parseScratch) {
	for i := range s.toks {
		s.toks[i] = token{}
	}
	s.toks = s.toks[:0]
	s.p = parser{}
	scratchPool.Put(s)
}
