package sqlparser

import "fmt"

// CopyExpr returns a deep copy of an expression tree. Literals are
// immutable and shared; every structural node is duplicated, so the
// copy can be rewritten without aliasing the original (view expansion
// relies on this).
func CopyExpr(e Expr) Expr {
	return rewriteExpr(e, nil)
}

// SubstituteColumns rebuilds the expression tree, replacing each
// column reference for which sub returns (replacement, true). A nil
// sub performs a pure deep copy. Replacement expressions are inserted
// as-is (the caller ensures they are themselves fresh copies).
func SubstituteColumns(e Expr, sub func(*ColumnRef) (Expr, bool)) Expr {
	if sub == nil {
		return rewriteExpr(e, nil)
	}
	return rewriteExpr(e, func(x Expr) (Expr, bool) {
		cr, ok := x.(*ColumnRef)
		if !ok {
			return nil, false
		}
		return sub(cr)
	})
}

// SubstituteParams rebuilds the expression tree, replacing each `?`
// parameter with the literal expression at its slot. Out-of-range
// slots are left in place (sema rejects them later). Like
// SubstituteColumns, replacements are inserted as-is.
func SubstituteParams(e Expr, vals []Expr) Expr {
	if len(vals) == 0 {
		return rewriteExpr(e, nil)
	}
	return rewriteExpr(e, func(x Expr) (Expr, bool) {
		pr, ok := x.(*ParamRef)
		if !ok || pr.Index < 0 || pr.Index >= len(vals) {
			return nil, false
		}
		return vals[pr.Index], true
	})
}

// rewriteExpr deep-copies the tree, consulting sub (when non-nil) at
// every node; a (replacement, true) answer substitutes the whole node
// without visiting its children.
func rewriteExpr(e Expr, sub func(Expr) (Expr, bool)) Expr {
	if e == nil {
		return nil
	}
	if sub != nil {
		if repl, ok := sub(e); ok {
			return repl
		}
	}
	switch e := e.(type) {
	case *NumberLit, *StringLit, *NullLit, *BoolLit:
		return e
	case *ColumnRef:
		cp := *e
		return &cp
	case *ParamRef:
		cp := *e
		return &cp
	case *UnaryExpr:
		return &UnaryExpr{Op: e.Op, X: rewriteExpr(e.X, sub), At: e.At}
	case *BinaryExpr:
		return &BinaryExpr{Op: e.Op, L: rewriteExpr(e.L, sub), R: rewriteExpr(e.R, sub), At: e.At}
	case *FuncCall:
		out := &FuncCall{Name: e.Name, Star: e.Star, Distinct: e.Distinct, At: e.At}
		if e.Args != nil {
			out.Args = make([]Expr, len(e.Args))
			for i, a := range e.Args {
				out.Args[i] = rewriteExpr(a, sub)
			}
		}
		return out
	case *CaseExpr:
		out := &CaseExpr{At: e.At}
		for _, w := range e.Whens {
			out.Whens = append(out.Whens, When{
				Cond: rewriteExpr(w.Cond, sub),
				Then: rewriteExpr(w.Then, sub),
			})
		}
		out.Else = rewriteExpr(e.Else, sub)
		return out
	case *IsNullExpr:
		return &IsNullExpr{X: rewriteExpr(e.X, sub), Negate: e.Negate, At: e.At}
	case *CastExpr:
		return &CastExpr{X: rewriteExpr(e.X, sub), Type: e.Type, At: e.At}
	case *BetweenExpr:
		return &BetweenExpr{
			X:      rewriteExpr(e.X, sub),
			Lo:     rewriteExpr(e.Lo, sub),
			Hi:     rewriteExpr(e.Hi, sub),
			Negate: e.Negate,
			At:     e.At,
		}
	case *InExpr:
		out := &InExpr{X: rewriteExpr(e.X, sub), Negate: e.Negate, At: e.At}
		out.List = make([]Expr, len(e.List))
		for i, x := range e.List {
			out.List[i] = rewriteExpr(x, sub)
		}
		return out
	default:
		// Unknown node types pass through unchanged; the executor will
		// reject them if they are not evaluable.
		return e
	}
}

// WalkColumns visits every column reference in the expression.
func WalkColumns(e Expr, fn func(*ColumnRef)) {
	SubstituteColumns(e, func(cr *ColumnRef) (Expr, bool) {
		fn(cr)
		return nil, false
	})
}

// WalkExprs visits every node of the expression tree.
func WalkExprs(e Expr, fn func(Expr)) {
	rewriteExpr(e, func(x Expr) (Expr, bool) {
		fn(x)
		return nil, false
	})
}

// CopySelect returns a deep copy of the SELECT (including subordinate
// expression trees), so the copy can be rewritten — view expansion,
// parameter binding — without mutating a cached original.
func CopySelect(s *Select) *Select {
	return copySelectWith(s, nil)
}

func copySelectWith(s *Select, sub func(Expr) (Expr, bool)) *Select {
	if s == nil {
		return nil
	}
	cp := *s
	cp.Items = make([]SelectItem, len(s.Items))
	for i, it := range s.Items {
		it.Expr = rewriteExpr(it.Expr, sub)
		cp.Items[i] = it
	}
	cp.From = append([]TableRef(nil), s.From...)
	cp.Where = rewriteExpr(s.Where, sub)
	if s.GroupBy != nil {
		cp.GroupBy = make([]Expr, len(s.GroupBy))
		for i, g := range s.GroupBy {
			cp.GroupBy[i] = rewriteExpr(g, sub)
		}
	}
	cp.Having = rewriteExpr(s.Having, sub)
	if s.OrderBy != nil {
		cp.OrderBy = make([]OrderItem, len(s.OrderBy))
		for i, o := range s.OrderBy {
			o.Expr = rewriteExpr(o.Expr, sub)
			cp.OrderBy[i] = o
		}
	}
	if s.Limit != nil {
		n := *s.Limit
		cp.Limit = &n
	}
	return &cp
}

// paramSub is the rewrite hook that binds `?` slots to literals.
func paramSub(vals []Expr) func(Expr) (Expr, bool) {
	if len(vals) == 0 {
		return nil
	}
	return func(x Expr) (Expr, bool) {
		pr, ok := x.(*ParamRef)
		if !ok || pr.Index < 0 || pr.Index >= len(vals) {
			return nil, false
		}
		return vals[pr.Index], true
	}
}

// BindParams returns a deep copy of stmt with every `?` replaced by
// the corresponding literal expression. The statement is copied even
// when it has no parameters, so callers may hand the result to the
// executor while the original stays shared (e.g. inside a plan cache).
// Only SELECT and INSERT support parameters.
func BindParams(stmt Statement, vals []Expr) (Statement, error) {
	switch st := stmt.(type) {
	case *Select:
		return copySelectWith(st, paramSub(vals)), nil
	case *Insert:
		cp := *st
		cp.Columns = append([]string(nil), st.Columns...)
		cp.ColumnPos = append([]Position(nil), st.ColumnPos...)
		sub := paramSub(vals)
		if st.Rows != nil {
			cp.Rows = make([][]Expr, len(st.Rows))
			for i, row := range st.Rows {
				nr := make([]Expr, len(row))
				for j, e := range row {
					nr[j] = rewriteExpr(e, sub)
				}
				cp.Rows[i] = nr
			}
		}
		cp.Query = copySelectWith(st.Query, sub)
		return &cp, nil
	default:
		if CountParams(stmt) > 0 {
			return nil, fmt.Errorf("sqlparser: %T does not support ? parameters", stmt)
		}
		return stmt, nil
	}
}

// CountParams reports how many `?` parameter slots stmt uses (the
// parser numbers them left-to-right, so this is 1 + the highest index).
func CountParams(stmt Statement) int {
	n := 0
	count := func(e Expr) {
		WalkExprs(e, func(x Expr) {
			if pr, ok := x.(*ParamRef); ok && pr.Index+1 > n {
				n = pr.Index + 1
			}
		})
	}
	walkStatementExprs(stmt, count)
	return n
}

// walkStatementExprs hands every top-level expression tree of the
// statement to fn.
func walkStatementExprs(stmt Statement, fn func(Expr)) {
	switch st := stmt.(type) {
	case *Select:
		walkSelectExprs(st, fn)
	case *Insert:
		for _, row := range st.Rows {
			for _, e := range row {
				fn(e)
			}
		}
		if st.Query != nil {
			walkSelectExprs(st.Query, fn)
		}
	case *CreateView:
		if st.Query != nil {
			walkSelectExprs(st.Query, fn)
		}
	}
}

func walkSelectExprs(s *Select, fn func(Expr)) {
	for _, it := range s.Items {
		if it.Expr != nil {
			fn(it.Expr)
		}
	}
	if s.Where != nil {
		fn(s.Where)
	}
	for _, g := range s.GroupBy {
		fn(g)
	}
	if s.Having != nil {
		fn(s.Having)
	}
	for _, o := range s.OrderBy {
		fn(o.Expr)
	}
}
