package sqlparser

// CopyExpr returns a deep copy of an expression tree. Literals are
// immutable and shared; every structural node is duplicated, so the
// copy can be rewritten without aliasing the original (view expansion
// relies on this).
func CopyExpr(e Expr) Expr {
	return SubstituteColumns(e, nil)
}

// SubstituteColumns rebuilds the expression tree, replacing each
// column reference for which sub returns (replacement, true). A nil
// sub performs a pure deep copy. Replacement expressions are inserted
// as-is (the caller ensures they are themselves fresh copies).
func SubstituteColumns(e Expr, sub func(*ColumnRef) (Expr, bool)) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *NumberLit, *StringLit, *NullLit, *BoolLit:
		return e
	case *ColumnRef:
		if sub != nil {
			if repl, ok := sub(e); ok {
				return repl
			}
		}
		cp := *e
		return &cp
	case *UnaryExpr:
		return &UnaryExpr{Op: e.Op, X: SubstituteColumns(e.X, sub), At: e.At}
	case *BinaryExpr:
		return &BinaryExpr{Op: e.Op, L: SubstituteColumns(e.L, sub), R: SubstituteColumns(e.R, sub), At: e.At}
	case *FuncCall:
		out := &FuncCall{Name: e.Name, Star: e.Star, Distinct: e.Distinct, At: e.At}
		if e.Args != nil {
			out.Args = make([]Expr, len(e.Args))
			for i, a := range e.Args {
				out.Args[i] = SubstituteColumns(a, sub)
			}
		}
		return out
	case *CaseExpr:
		out := &CaseExpr{At: e.At}
		for _, w := range e.Whens {
			out.Whens = append(out.Whens, When{
				Cond: SubstituteColumns(w.Cond, sub),
				Then: SubstituteColumns(w.Then, sub),
			})
		}
		out.Else = SubstituteColumns(e.Else, sub)
		return out
	case *IsNullExpr:
		return &IsNullExpr{X: SubstituteColumns(e.X, sub), Negate: e.Negate, At: e.At}
	case *CastExpr:
		return &CastExpr{X: SubstituteColumns(e.X, sub), Type: e.Type, At: e.At}
	case *BetweenExpr:
		return &BetweenExpr{
			X:      SubstituteColumns(e.X, sub),
			Lo:     SubstituteColumns(e.Lo, sub),
			Hi:     SubstituteColumns(e.Hi, sub),
			Negate: e.Negate,
			At:     e.At,
		}
	case *InExpr:
		out := &InExpr{X: SubstituteColumns(e.X, sub), Negate: e.Negate, At: e.At}
		out.List = make([]Expr, len(e.List))
		for i, x := range e.List {
			out.List[i] = SubstituteColumns(x, sub)
		}
		return out
	default:
		// Unknown node types pass through unchanged; the executor will
		// reject them if they are not evaluable.
		return e
	}
}

// WalkColumns visits every column reference in the expression.
func WalkColumns(e Expr, fn func(*ColumnRef)) {
	SubstituteColumns(e, func(cr *ColumnRef) (Expr, bool) {
		fn(cr)
		return nil, false
	})
}
