package sqlparser

import "testing"

// FuzzParseRoundTrip feeds arbitrary byte soup to the parser. Accepted
// SELECTs must survive a print → re-parse → print cycle with a fixed
// point: String() of the re-parsed tree must equal String() of the
// original tree. A mismatch means the printer emits SQL the parser
// reads back differently — exactly the bug class that corrupts the
// plan cache, whose keys are printed statements.
func FuzzParseRoundTrip(f *testing.F) {
	f.Add("SELECT 1")
	f.Add("SELECT a, b FROM t WHERE a > 1 AND b < 'x' GROUP BY a ORDER BY b DESC LIMIT 3")
	f.Add("SELECT sum(x*y) AS sxy, count(*) FROM points GROUP BY grp HAVING count(*) > 2")
	f.Add("SELECT CASE WHEN a IS NULL THEN 0 ELSE a END FROM t")
	f.Add("SELECT * FROM a JOIN b ON a.id = b.id WHERE a.v BETWEEN 1 AND 2 OR b.v IN (1, 2, 3)")
	f.Add("SELECT CAST(a AS DOUBLE) FROM t WHERE NOT (a = 1)")
	f.Add("select nlq_str(x1, x2) from xy")
	f.Add("SELECT -1.5e10, 'it''s', true, null")
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(sql)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		sel, ok := stmt.(*Select)
		if !ok {
			return
		}
		printed := sel.String()
		stmt2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printer emitted SQL the parser rejects\n input: %q\nprinted: %q\n  error: %v", sql, printed, err)
		}
		sel2, ok := stmt2.(*Select)
		if !ok {
			t.Fatalf("re-parse of printed SELECT produced %T\n input: %q\nprinted: %q", stmt2, sql, printed)
		}
		if again := sel2.String(); again != printed {
			t.Fatalf("print → parse → print is not a fixed point\n input: %q\n first: %q\nsecond: %q", sql, printed, again)
		}
	})
}

// FuzzBindParams checks the prepared-statement substitution invariants
// on arbitrary accepted statements: CountParams slots can always be
// bound with that many literals, binding leaves zero remaining slots,
// and the original tree is untouched (its slot count is stable) — the
// plan cache shares the unbound tree across executions.
func FuzzBindParams(f *testing.F) {
	f.Add("SELECT a FROM t WHERE a = ? AND b > ?")
	f.Add("INSERT INTO t (a, b) VALUES (?, ?), (3, ?)")
	f.Add("SELECT * FROM t WHERE a IN (?, ?, ?) LIMIT 1")
	f.Add("SELECT CASE WHEN a = ? THEN ? ELSE 0 END FROM t")
	f.Add("SELECT 1")
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(sql)
		if err != nil {
			return
		}
		n := CountParams(stmt)
		if n < 0 {
			t.Fatalf("CountParams returned %d for %q", n, sql)
		}
		vals := make([]Expr, n)
		for i := range vals {
			vals[i] = &NumberLit{IsInt: true, Int: int64(i)}
		}
		bound, err := BindParams(stmt, vals)
		if err != nil {
			// Only SELECT/INSERT support parameters; other statements
			// must carry slots for binding to fail.
			if n == 0 {
				t.Fatalf("BindParams failed on a parameterless statement %q: %v", sql, err)
			}
			return
		}
		if left := CountParams(bound); left != 0 {
			t.Fatalf("bound statement still has %d parameter slots\n input: %q", left, sql)
		}
		if after := CountParams(stmt); after != n {
			t.Fatalf("BindParams mutated the shared original: %d slots before, %d after\n input: %q", n, after, sql)
		}
	})
}
