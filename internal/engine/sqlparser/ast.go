package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Statement is any parsed SQL statement. Pos returns the source
// location of the statement's first token (zero for synthetic
// statements built by planners or tests).
type Statement interface {
	isStatement()
	Pos() Position
}

// stmtSource carries the slice of the original input a statement was
// parsed from. Parse and ParseScript fill it; synthetic statements
// leave it empty. It is embedded in every statement struct so the
// query log can show real SQL instead of a Go type name.
type stmtSource struct {
	source string
}

func (s *stmtSource) setSource(src string) { s.source = src }

// sourcer is implemented by every statement struct via stmtSource.
type sourcer interface {
	setSource(string)
}

// StatementSource returns the original SQL text the statement was
// parsed from, or "" for synthetic statements.
func StatementSource(stmt Statement) string {
	type sourced interface{ sourceText() string }
	if s, ok := stmt.(sourced); ok {
		return s.sourceText()
	}
	return ""
}

func (s *stmtSource) sourceText() string { return s.source }

// SetStatementSource records src as the statement's original SQL.
// Callers that build statements programmatically (or re-render them)
// can use it so sys.queries shows something meaningful.
func SetStatementSource(stmt Statement, src string) {
	if s, ok := stmt.(sourcer); ok {
		s.setSource(src)
	}
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type string // raw type name; resolved by the catalog
	At   Position
}

// CreateTable is `CREATE TABLE [IF NOT EXISTS] name (col type, ...)`.
type CreateTable struct {
	Name        string
	Columns     []ColumnDef
	IfNotExists bool
	At          Position
	stmtSource
}

// DropTable is `DROP TABLE [IF EXISTS] name`.
type DropTable struct {
	Name     string
	IfExists bool
	At       Position
	stmtSource
}

// CreateView is `CREATE VIEW name AS SELECT ...`. Views are expanded
// (inlined) into referencing queries at plan time.
type CreateView struct {
	Name  string
	Query *Select
	At    Position
	stmtSource
}

// DropView is `DROP VIEW [IF EXISTS] name`.
type DropView struct {
	Name     string
	IfExists bool
	At       Position
	stmtSource
}

// Insert is `INSERT INTO name [(cols)] VALUES (...),(...)` or
// `INSERT INTO name [(cols)] SELECT ...`.
type Insert struct {
	Table     string
	Columns   []string // optional explicit column list
	ColumnPos []Position
	Rows      [][]Expr // literal rows, when Query == nil
	Query     *Select  // INSERT .. SELECT, when non-nil
	At        Position
	TablePos  Position
	stmtSource
}

// Select is a SELECT statement (also used as a subquery in INSERT).
type Select struct {
	Items   []SelectItem
	From    []TableRef // empty means a table-less SELECT of constants
	Where   Expr
	GroupBy []Expr
	Having  Expr // post-aggregation filter; requires GROUP BY or aggregates
	OrderBy []OrderItem
	Limit   *int64
	At      Position
	stmtSource
}

// SelectItem is one projection: an expression with an optional alias,
// or `*` / `t.*`.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
	// StarTable qualifies a star item (`t.*`); empty for a bare `*`.
	StarTable string
	At        Position
}

// Pos returns the item's source location: the expression's own
// position, or the star token for `*` items.
func (s SelectItem) Pos() Position {
	if s.Expr != nil {
		return s.Expr.Pos()
	}
	return s.At
}

// TableRef names a table in FROM with an optional alias. Consecutive
// refs are cross-joined (the paper's scoring queries cross-join the
// data set with small model tables).
type TableRef struct {
	Name  string
	Alias string
	At    Position
}

// RefName returns the name the table is addressable by in the query.
func (t TableRef) RefName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// String renders the SELECT back to parseable SQL; view definitions
// are persisted in this form.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, item := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case item.Star && item.StarTable != "":
			b.WriteString(item.StarTable + ".*")
		case item.Star:
			b.WriteString("*")
		default:
			b.WriteString(item.Expr.String())
			if item.Alias != "" {
				b.WriteString(" AS " + item.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, ref := range s.From {
			if i > 0 {
				b.WriteString(" CROSS JOIN ")
			}
			b.WriteString(ref.Name)
			if ref.Alias != "" {
				b.WriteString(" AS " + ref.Alias)
			}
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(&b, " LIMIT %d", *s.Limit)
	}
	return b.String()
}

func (*CreateTable) isStatement() {}
func (*DropTable) isStatement()   {}
func (*CreateView) isStatement()  {}
func (*DropView) isStatement()    {}
func (*Insert) isStatement()      {}
func (*Select) isStatement()      {}

func (s *CreateTable) Pos() Position { return s.At }
func (s *DropTable) Pos() Position   { return s.At }
func (s *CreateView) Pos() Position  { return s.At }
func (s *DropView) Pos() Position    { return s.At }
func (s *Insert) Pos() Position      { return s.At }
func (s *Select) Pos() Position      { return s.At }

// Expr is any SQL expression node. Pos returns the node's source
// location: the first token for most nodes, the operator token for
// binary expressions (so a type-mismatch diagnostic points at the
// operator, not the start of a long operand). Synthetic nodes return
// the zero Position.
type Expr interface {
	isExpr()
	String() string
	Pos() Position
}

// NumberLit is a numeric literal. Integers retain exactness.
type NumberLit struct {
	IsInt bool
	Int   int64
	Float float64
	At    Position
}

// StringLit is a quoted string literal.
type StringLit struct {
	Val string
	At  Position
}

// NullLit is the NULL literal.
type NullLit struct{ At Position }

// BoolLit is TRUE or FALSE.
type BoolLit struct {
	Val bool
	At  Position
}

// ColumnRef references a column, optionally table-qualified.
type ColumnRef struct {
	Table, Name string
	At          Position
}

// BinaryExpr applies a binary operator: arithmetic (+ - * / %),
// comparison (= <> < <= > >=), logic (AND OR) or concatenation (||).
// At is the operator's position.
type BinaryExpr struct {
	Op   string
	L, R Expr
	At   Position
}

// UnaryExpr applies unary minus or NOT.
type UnaryExpr struct {
	Op string // "-" or "NOT"
	X  Expr
	At Position
}

// FuncCall invokes a built-in or user-defined function. Star marks
// count(*). Distinct marks count(DISTINCT e).
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
	At       Position
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []When
	Else  Expr // may be nil (NULL)
	At    Position
}

// When is one WHEN..THEN arm of a CASE.
type When struct {
	Cond Expr
	Then Expr
}

// IsNullExpr is `x IS [NOT] NULL`.
type IsNullExpr struct {
	X      Expr
	Negate bool
	At     Position
}

// CastExpr is `CAST(x AS type)`.
type CastExpr struct {
	X    Expr
	Type string
	At   Position
}

// BetweenExpr is `x [NOT] BETWEEN lo AND hi`.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Negate    bool
	At        Position
}

// InExpr is `x [NOT] IN (e1, e2, ...)`.
type InExpr struct {
	X      Expr
	List   []Expr
	Negate bool
	At     Position
}

// ParamRef is a `?` positional parameter in a prepared statement.
// Index is the 0-based slot, assigned left-to-right across the whole
// statement by the parser. Values are bound at EXECUTE time.
type ParamRef struct {
	Index int
	At    Position
}

func (*NumberLit) isExpr()   {}
func (*StringLit) isExpr()   {}
func (*NullLit) isExpr()     {}
func (*BoolLit) isExpr()     {}
func (*ColumnRef) isExpr()   {}
func (*BinaryExpr) isExpr()  {}
func (*UnaryExpr) isExpr()   {}
func (*FuncCall) isExpr()    {}
func (*CaseExpr) isExpr()    {}
func (*IsNullExpr) isExpr()  {}
func (*CastExpr) isExpr()    {}
func (*BetweenExpr) isExpr() {}
func (*InExpr) isExpr()      {}
func (*ParamRef) isExpr()    {}

func (e *NumberLit) Pos() Position   { return e.At }
func (e *StringLit) Pos() Position   { return e.At }
func (e *NullLit) Pos() Position     { return e.At }
func (e *BoolLit) Pos() Position     { return e.At }
func (e *ColumnRef) Pos() Position   { return e.At }
func (e *BinaryExpr) Pos() Position  { return e.At }
func (e *UnaryExpr) Pos() Position   { return e.At }
func (e *FuncCall) Pos() Position    { return e.At }
func (e *CaseExpr) Pos() Position    { return e.At }
func (e *IsNullExpr) Pos() Position  { return e.At }
func (e *CastExpr) Pos() Position    { return e.At }
func (e *BetweenExpr) Pos() Position { return e.At }
func (e *InExpr) Pos() Position      { return e.At }
func (e *ParamRef) Pos() Position    { return e.At }

func (e *ParamRef) String() string { return "?" }

func (e *NumberLit) String() string {
	if e.IsInt {
		return strconv.FormatInt(e.Int, 10)
	}
	return strconv.FormatFloat(e.Float, 'g', -1, 64)
}

func (e *StringLit) String() string {
	return "'" + strings.ReplaceAll(e.Val, "'", "''") + "'"
}

func (*NullLit) String() string { return "NULL" }

func (e *BoolLit) String() string {
	if e.Val {
		return "TRUE"
	}
	return "FALSE"
}

func (e *ColumnRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

func (e *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

func (e *UnaryExpr) String() string {
	if e.Op == "NOT" {
		return fmt.Sprintf("(NOT %s)", e.X)
	}
	return fmt.Sprintf("(%s%s)", e.Op, e.X)
}

func (e *FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	prefix := ""
	if e.Distinct {
		prefix = "DISTINCT "
	}
	return e.Name + "(" + prefix + strings.Join(args, ", ") + ")"
}

func (e *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if e.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", e.Else)
	}
	b.WriteString(" END")
	return b.String()
}

func (e *IsNullExpr) String() string {
	if e.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", e.X)
	}
	return fmt.Sprintf("(%s IS NULL)", e.X)
}

func (e *CastExpr) String() string {
	return fmt.Sprintf("CAST(%s AS %s)", e.X, e.Type)
}

func (e *BetweenExpr) String() string {
	not := ""
	if e.Negate {
		not = "NOT "
	}
	return fmt.Sprintf("(%s %sBETWEEN %s AND %s)", e.X, not, e.Lo, e.Hi)
}

func (e *InExpr) String() string {
	items := make([]string, len(e.List))
	for i, x := range e.List {
		items[i] = x.String()
	}
	not := ""
	if e.Negate {
		not = "NOT "
	}
	return fmt.Sprintf("(%s %sIN (%s))", e.X, not, strings.Join(items, ", "))
}
