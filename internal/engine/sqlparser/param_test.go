package sqlparser

import (
	"strings"
	"sync"
	"testing"
)

func TestParseParams(t *testing.T) {
	st := mustParse(t, "SELECT a FROM t WHERE b = ? AND c > ?").(*Select)
	if got := CountParams(st); got != 2 {
		t.Fatalf("CountParams = %d, want 2", got)
	}
	// Slots are numbered left-to-right.
	var idx []int
	walkSelectExprs(st, func(e Expr) {
		WalkExprs(e, func(x Expr) {
			if pr, ok := x.(*ParamRef); ok {
				idx = append(idx, pr.Index)
			}
		})
	})
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("param indices = %v, want [0 1]", idx)
	}
}

func TestParseParamsEverywhere(t *testing.T) {
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT ? AS x", 1},
		{"SELECT a + ? FROM t WHERE b IN (?, ?, ?)", 4},
		{"SELECT a FROM t WHERE b BETWEEN ? AND ?", 2},
		{"SELECT CASE WHEN a > ? THEN ? ELSE ? END FROM t", 3},
		{"INSERT INTO t VALUES (?, ?, 3)", 2},
		{"SELECT f(?, a, ?) FROM t", 2},
		{"SELECT a FROM t", 0},
	}
	for _, c := range cases {
		st := mustParse(t, c.sql)
		if got := CountParams(st); got != c.want {
			t.Errorf("CountParams(%q) = %d, want %d", c.sql, got, c.want)
		}
	}
}

func TestParamRejectedInDDL(t *testing.T) {
	// Parameters only make sense where expressions are evaluated.
	for _, sql := range []string{
		"CREATE TABLE t (a ?)",
		"DROP TABLE ?",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) accepted a ? outside expression position", sql)
		}
	}
}

func TestBindParamsSubstitutes(t *testing.T) {
	st := mustParse(t, "SELECT a FROM t WHERE b = ? AND c = ?")
	bound, err := BindParams(st, []Expr{
		&NumberLit{IsInt: true, Int: 7},
		&StringLit{Val: "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := bound.(*Select).String()
	if !strings.Contains(s, "7") || !strings.Contains(s, "'x'") {
		t.Fatalf("bound statement %q lacks literals", s)
	}
	// The original tree is untouched: binding is a deep copy.
	if CountParams(st) != 2 {
		t.Fatal("BindParams mutated the original statement")
	}
	if CountParams(bound) != 0 {
		t.Fatal("bound statement still has params")
	}
}

func TestBindParamsUnderBinding(t *testing.T) {
	// Arity is enforced by the executor's argument binding, not here:
	// an unbound slot survives as a ParamRef so sema rejects it later
	// instead of the statement silently running with a hole.
	st := mustParse(t, "SELECT a FROM t WHERE b = ? AND c = ?")
	bound, err := BindParams(st, []Expr{&NumberLit{IsInt: true, Int: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := CountParams(bound); got != 2 {
		t.Fatalf("under-bound statement has %d param slots, want the unbound slot preserved", got)
	}
}

func TestBindParamsUnsupportedStatement(t *testing.T) {
	if _, err := BindParams(mustParse(t, "DROP TABLE t"), nil); err != nil {
		t.Fatalf("param-free DDL must pass through: %v", err)
	}
}

// TestStatementSourceSpans is the regression for the query-log bug
// where sys.queries showed the statement's Go type name ("%!s(*Select)"
// style noise) instead of its SQL: every parsed statement must carry
// the exact source slice it came from.
func TestStatementSourceSpans(t *testing.T) {
	for _, sql := range []string{
		"SELECT a, b FROM t WHERE c = 1",
		"INSERT INTO t VALUES (1, 2)",
		"CREATE TABLE u (a BIGINT)",
	} {
		st := mustParse(t, sql)
		if got := StatementSource(st); got != sql {
			t.Errorf("StatementSource = %q, want %q", got, sql)
		}
	}
}

func TestStatementSourceSpansScript(t *testing.T) {
	stmts, err := ParseScript("CREATE TABLE t (a BIGINT);\nINSERT INTO t VALUES (1);\nSELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"CREATE TABLE t (a BIGINT)",
		"INSERT INTO t VALUES (1)",
		"SELECT a FROM t",
	}
	if len(stmts) != len(want) {
		t.Fatalf("got %d statements", len(stmts))
	}
	for i, st := range stmts {
		if got := StatementSource(st); got != want[i] {
			t.Errorf("statement %d source = %q, want %q", i, got, want[i])
		}
	}
}

// TestParserPoolNoStateLeak drives many concurrent parses through the
// pooled scratch: no parse may see another statement's tokens, and the
// pooled token buffers must not pin (alias) a previous caller's SQL
// string — putScratch zeroes them.
func TestParserPoolNoStateLeak(t *testing.T) {
	texts := []string{
		"SELECT a FROM t WHERE b = ?",
		"SELECT x, y, z FROM u WHERE q BETWEEN 1 AND 2",
		"INSERT INTO t VALUES (1, 'abc'), (2, 'def')",
		"CREATE TABLE v (a BIGINT, b DOUBLE, c VARCHAR)",
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sql := texts[(w+i)%len(texts)]
				st, err := Parse(sql)
				if err != nil {
					t.Errorf("Parse(%q): %v", sql, err)
					return
				}
				if got := StatementSource(st); got != sql {
					t.Errorf("cross-parse leak: source %q for input %q", got, sql)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Whatever scratch ends up pooled afterwards holds no tokens.
	s := scratchPool.Get().(*parseScratch)
	defer scratchPool.Put(s)
	for _, tok := range s.toks[:cap(s.toks)] {
		if tok.text != "" {
			t.Fatalf("pooled scratch retains token text %q", tok.text)
		}
	}
}
