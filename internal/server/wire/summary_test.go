package wire

import (
	"strings"
	"testing"
)

func TestSummaryRoundTrip(t *testing.T) {
	cases := []Summary{
		{Table: "points", Columns: []string{"x1", "x2", "y"}, Matrix: 1},
		{Table: "t", Matrix: 0},
		{Table: strings.Repeat("n", 300), Columns: []string{""}, Matrix: 2},
	}
	for _, want := range cases {
		got, err := DecodeSummary(EncodeSummary(want))
		if err != nil {
			t.Fatalf("DecodeSummary(%+v): %v", want, err)
		}
		if got.Table != want.Table || got.Matrix != want.Matrix || len(got.Columns) != len(want.Columns) {
			t.Fatalf("round-trip %+v != %+v", got, want)
		}
		for i := range want.Columns {
			if got.Columns[i] != want.Columns[i] {
				t.Fatalf("column %d: %q != %q", i, got.Columns[i], want.Columns[i])
			}
		}
	}
}

func TestSummaryResultRoundTrip(t *testing.T) {
	for _, want := range []SummaryResult{
		{Hit: true, Packed: "2;1;3;1 2;1 2 3 4;0 0;1 1"},
		{Hit: false, Packed: ""},
	} {
		got, err := DecodeSummaryResult(EncodeSummaryResult(want))
		if err != nil {
			t.Fatalf("DecodeSummaryResult(%+v): %v", want, err)
		}
		if got.Hit != want.Hit || got.Packed != want.Packed {
			t.Fatalf("round-trip %+v != %+v", got, want)
		}
	}
}

func TestSummaryDecodeRejectsForgedFrames(t *testing.T) {
	// A forged column count far beyond the payload must error, not
	// allocate.
	p := EncodeSummary(Summary{Table: "t", Columns: []string{"a"}, Matrix: 0})
	// Overwrite the u32 column count (it sits right after the table
	// string and matrix byte): locate it as the 4 bytes before the
	// first column string.
	forged := append([]byte(nil), p...)
	forged[len(forged)-4-1-4] = 0xFF
	forged[len(forged)-4-1-3] = 0xFF
	if _, err := DecodeSummary(forged); err == nil {
		t.Error("DecodeSummary accepted a forged column count")
	}
	if _, err := DecodeSummary(append(p, 0x01)); err == nil {
		t.Error("DecodeSummary accepted trailing bytes")
	}
	if _, err := DecodeSummaryResult([]byte{2}); err == nil {
		t.Error("DecodeSummaryResult accepted hit byte 2")
	}
}

// FuzzDecodeSummaryFrames throws arbitrary bytes at the protocol-3
// summary decoders: error or succeed, never panic, and successful
// decodes must re-encode to an equivalent frame.
func FuzzDecodeSummaryFrames(f *testing.F) {
	f.Add(EncodeSummary(Summary{Table: "points", Columns: []string{"x1", "y"}, Matrix: 2}))
	f.Add(EncodeSummaryResult(SummaryResult{Hit: true, Packed: "1;0;2;3;9;3;3"}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := DecodeSummary(data); err == nil {
			back, err := DecodeSummary(EncodeSummary(s))
			if err != nil {
				t.Fatalf("decoded summary failed to re-decode: %v", err)
			}
			if back.Table != s.Table || len(back.Columns) != len(s.Columns) {
				t.Fatalf("summary re-encode mismatch: %+v != %+v", back, s)
			}
		}
		if r, err := DecodeSummaryResult(data); err == nil {
			back, err := DecodeSummaryResult(EncodeSummaryResult(r))
			if err != nil {
				t.Fatalf("decoded summary result failed to re-decode: %v", err)
			}
			if back != r {
				t.Fatalf("summary result re-encode mismatch: %+v != %+v", back, r)
			}
		}
	})
}
