// Package wire defines the engine's client/server wire protocol: a
// length-prefixed binary framing with a small fixed message vocabulary.
// The paper's architecture keeps the heavy scan inside the DBMS and
// ships only queries in and small result sets out; this protocol is
// that boundary. Every frame is
//
//	u32 payload length (little-endian) | u8 message type | payload
//
// Payload scalars are little-endian; strings are a u32 length followed
// by raw bytes. Result rows reuse the storage layer's value tagging
// (1-byte type tag + payload per value) so a row costs the same bytes
// on the wire as it does on disk.
//
// A conversation is strictly request/response: the client sends Hello
// and reads Welcome, then loops sending Query/Exec/Ping and reading
// the response (Schema? Batch* Done | Error for statements, Pong for
// pings). Close/Goodbye end the session. Clients must not pipeline;
// the server reads ahead only to detect disconnects.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"repro/internal/engine/sqltypes"
)

// Protocol versions. The handshake negotiates: the client offers the
// highest version it speaks in Hello, the server replies with
// min(offer, own max) in Welcome, and both sides hold to the
// negotiated version for the session. Version 2 added the optional
// trace header on Query/Exec/ExecPrepared payloads and the TraceID
// echoed in Done; every v2 payload extension is trailing bytes a v1
// peer never sees, because encoders gate them on the negotiated
// version.
const (
	// ProtocolV1 is the original protocol: no trace context.
	ProtocolV1 = 1
	// ProtocolV2 adds trace-context propagation (trace header on
	// statement frames, TraceID in Done, negotiated version in Welcome).
	ProtocolV2 = 2
	// ProtocolV3 adds the cluster push-down vocabulary: the Summary
	// request/result pair (a shard serves its local n/L/Q summary-cache
	// read path over the wire) and the shard_unavailable error code a
	// coordinator raises when a shard is marked down. Like v2, every
	// addition is either a new frame type (unknown types already fail
	// loudly) or a new error code string, so v1/v2 peers are unaffected.
	ProtocolV3 = 3
	// ProtocolVersion is the highest version this build speaks — what a
	// client offers in Hello.
	ProtocolVersion = ProtocolV3
	// MinProtocolVersion is the lowest version the server still
	// accepts; older Hellos get the typed protocol error.
	MinProtocolVersion = ProtocolV1
)

// Magic opens every Hello payload, so a server can fail fast when an
// HTTP client or a stray port scan connects.
const Magic = "TWM1"

// MaxFrame bounds a single frame's payload; larger frames are a
// protocol error on both ends (a result set streams as many batches,
// so no legitimate frame approaches this).
const MaxFrame = 16 << 20

// Message types. Client-originated types have the high bit clear,
// server-originated types have it set; this makes misdirected frames
// fail loudly instead of being misparsed.
const (
	MsgHello         byte = 0x01 // magic, proto version, user
	MsgQuery         byte = 0x02 // one SQL statement; rows stream back
	MsgExec          byte = 0x03 // SQL script; only the last result returns
	MsgPing          byte = 0x04 // liveness/health check
	MsgClose         byte = 0x05 // graceful session end
	MsgPrepare       byte = 0x06 // plan one statement; MsgPrepared returns a handle
	MsgExecPrepared  byte = 0x07 // handle + args; rows stream back like MsgQuery
	MsgClosePrepared byte = 0x08 // release a prepared handle
	MsgSummary       byte = 0x09 // n/L/Q summary request (protocol >= 3)

	MsgWelcome  byte = 0x81 // session id, server version
	MsgSchema   byte = 0x82 // result schema (precedes batches)
	MsgBatch    byte = 0x83 // a run of result rows
	MsgDone     byte = 0x84 // statement finished: affected count, stats JSON
	MsgError    byte = 0x85 // typed error: code + message
	MsgPong     byte = 0x86 // ping reply
	MsgGoodbye  byte = 0x87 // close acknowledgement
	MsgPrepared byte = 0x88 // prepare reply: handle + parameter count
	MsgSummaryResult byte = 0x89 // summary reply: cache hit flag + packed NLQ (protocol >= 3)
)

// Error codes carried by MsgError frames. The code survives the wire
// so clients can react to the kind of failure, not a string match.
const (
	// CodeBusy is admission-control overflow: the server is at its
	// concurrent-statement limit and its wait queue is full. Fail-fast:
	// the statement was never started and is safe to retry elsewhere.
	CodeBusy = "busy"
	// CodeSema is a semantic-analysis rejection; the message carries
	// the full multi-line "sema: line:col:" diagnostics.
	CodeSema = "sema"
	// CodeParse is a SQL syntax error.
	CodeParse = "parse"
	// CodeCancelled reports a statement stopped by cancellation
	// (client disconnect or server shutdown).
	CodeCancelled = "cancelled"
	// CodeShutdown reports the server is draining and takes no new work.
	CodeShutdown = "shutdown"
	// CodeProtocol reports a malformed or unexpected frame.
	CodeProtocol = "protocol"
	// CodeStalePlan reports that a prepared handle's plan was built
	// under a catalog that has since changed (CREATE/DROP landed after
	// PREPARE) or the handle is unknown to this session. The statement
	// did not run; the client should re-prepare and retry.
	CodeStalePlan = "stale_plan"
	// CodeShardUnavailable reports that a coordinator could not reach
	// (or has marked down) the shard owning part of the statement's
	// data. The statement observed at most a prefix of the cluster; the
	// client should surface the failure rather than retry blindly —
	// the coordinator's prober re-admits the shard when it recovers.
	CodeShardUnavailable = "shard_unavailable"
	// CodeInternal is any other execution error.
	CodeInternal = "internal"
)

// Error is the typed error a MsgError frame carries.
type Error struct {
	Code    string
	Message string
}

// Error renders as "code: message"; the sema multi-error keeps its
// line structure so shell users see positioned diagnostics.
func (e *Error) Error() string { return e.Code + ": " + e.Message }

// IsBusy reports whether err is (or wraps) an admission-control
// rejection — the typed "server busy" fail-fast error.
func IsBusy(err error) bool {
	var we *Error
	return errors.As(err, &we) && we.Code == CodeBusy
}

// Frame is one decoded protocol frame.
type Frame struct {
	Type    byte
	Payload []byte
}

// WriteFrame writes one frame to w. It returns the total bytes written
// so both ends can maintain their byte counters.
func WriteFrame(w io.Writer, typ byte, payload []byte) (int, error) {
	if len(payload) > MaxFrame {
		return 0, fmt.Errorf("wire: frame payload %d exceeds %d bytes", len(payload), MaxFrame)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return len(hdr), err
		}
	}
	return len(hdr) + len(payload), nil
}

// ReadFrame reads one frame from r, rejecting oversized payloads
// before allocating for them.
func ReadFrame(r io.Reader) (Frame, int, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return Frame{}, 0, fmt.Errorf("wire: frame payload %d exceeds %d bytes", n, MaxFrame)
	}
	f := Frame{Type: hdr[4]}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, 0, fmt.Errorf("wire: truncated frame: %w", err)
		}
	}
	return f, len(hdr) + int(n), nil
}

// Conn wraps a stream with buffered frame I/O and byte accounting.
// It is not safe for concurrent use on the same direction; the
// protocol's request/response discipline keeps each direction single-
// threaded. The byte counters are atomic because the server reads one
// direction from a dedicated goroutine while flushing both counters
// from the statement handler.
type Conn struct {
	R io.Reader
	W *bufio.Writer

	// BytesRead and BytesWritten accumulate frame bytes, for the
	// engine_server_bytes_* metrics.
	BytesRead    atomic.Int64
	BytesWritten atomic.Int64
}

// NewConn wraps rw in buffered frame I/O.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{R: bufio.NewReaderSize(rw, 1<<16), W: bufio.NewWriterSize(rw, 1<<16)}
}

// Send writes one frame and flushes it.
func (c *Conn) Send(typ byte, payload []byte) error {
	n, err := WriteFrame(c.W, typ, payload)
	c.BytesWritten.Add(int64(n))
	if err != nil {
		return err
	}
	return c.W.Flush()
}

// Recv reads the next frame.
func (c *Conn) Recv() (Frame, error) {
	f, n, err := ReadFrame(c.R)
	c.BytesRead.Add(int64(n))
	return f, err
}

// --- payload builders and parsers ---

// A payload buffer with append-style encoders. Strings longer than
// MaxFrame are impossible (the frame bound catches them).

// AppendString appends a u32-length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// AppendUint64 appends a little-endian u64.
func AppendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// reader consumes a payload sequentially.
type reader struct {
	b   []byte
	off int
}

func (r *reader) take(n int) ([]byte, error) {
	if r.off+n > len(r.b) {
		return nil, fmt.Errorf("wire: truncated payload (want %d bytes at offset %d of %d)", n, r.off, len(r.b))
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *reader) uint32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) uint64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *reader) byte() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) string() (string, error) {
	n, err := r.uint32()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing payload bytes", len(r.b)-r.off)
	}
	return nil
}

// Hello is the client's opening frame.
type Hello struct {
	Version uint32
	User    string
}

// EncodeHello builds a MsgHello payload.
func EncodeHello(h Hello) []byte {
	b := append([]byte(nil), Magic...)
	b = binary.LittleEndian.AppendUint32(b, h.Version)
	return AppendString(b, h.User)
}

// DecodeHello parses a MsgHello payload, verifying the magic.
func DecodeHello(p []byte) (Hello, error) {
	r := &reader{b: p}
	magic, err := r.take(len(Magic))
	if err != nil {
		return Hello{}, err
	}
	if string(magic) != Magic {
		return Hello{}, fmt.Errorf("wire: bad magic %q (not a twmd endpoint?)", magic)
	}
	var h Hello
	if h.Version, err = r.uint32(); err != nil {
		return Hello{}, err
	}
	if h.User, err = r.string(); err != nil {
		return Hello{}, err
	}
	return h, r.done()
}

// Welcome is the server's handshake reply.
type Welcome struct {
	SessionID int64
	Server    string
	// Proto is the negotiated protocol version. Encoded as trailing
	// bytes only when >= 2, so a v1 client (whose decoder rejects
	// trailing bytes) sees the exact v1 payload; absent means 1.
	Proto uint32
}

// EncodeWelcome builds a MsgWelcome payload.
func EncodeWelcome(w Welcome) []byte {
	b := AppendUint64(nil, uint64(w.SessionID))
	b = AppendString(b, w.Server)
	if w.Proto >= ProtocolV2 {
		b = binary.LittleEndian.AppendUint32(b, w.Proto)
	}
	return b
}

// DecodeWelcome parses a MsgWelcome payload; a missing trailing
// version means the server negotiated (or only speaks) protocol 1.
func DecodeWelcome(p []byte) (Welcome, error) {
	r := &reader{b: p}
	id, err := r.uint64()
	if err != nil {
		return Welcome{}, err
	}
	srv, err := r.string()
	if err != nil {
		return Welcome{}, err
	}
	w := Welcome{SessionID: int64(id), Server: srv, Proto: ProtocolV1}
	if r.off < len(r.b) {
		if w.Proto, err = r.uint32(); err != nil {
			return Welcome{}, err
		}
		if w.Proto < ProtocolV2 {
			return Welcome{}, fmt.Errorf("wire: implausible negotiated version %d in extended welcome", w.Proto)
		}
	}
	return w, r.done()
}

// EncodeStatement builds a MsgQuery/MsgExec payload: just the SQL
// (the protocol-1 form, and the protocol-2 form when the client has no
// trace context).
func EncodeStatement(sql string) []byte { return AppendString(nil, sql) }

// DecodeStatement parses a MsgQuery/MsgExec payload, rejecting a
// trailing trace header (the strict v1 form; servers use
// DecodeStatementTrace).
func DecodeStatement(p []byte) (string, error) {
	r := &reader{b: p}
	sql, err := r.string()
	if err != nil {
		return "", err
	}
	return sql, r.done()
}

// TraceHeader is the optional trace context a protocol-2 client
// appends to Query/Exec/ExecPrepared payloads: the statement's
// TraceID and the client-side span the server's session span should
// parent under. The server adopts the TraceID so the client and
// server halves of the trace share one identity.
type TraceHeader struct {
	TraceID [16]byte
	SpanID  [8]byte
}

// traceFlagHasTrace marks a well-formed trace header; the remaining
// flag bits are reserved (ignored on decode) for future extensions.
const traceFlagHasTrace byte = 0x01

// traceHeaderLen is the encoded size: flags byte + trace id + span id.
const traceHeaderLen = 1 + 16 + 8

// appendTraceHeader appends th's fixed-size encoding.
func appendTraceHeader(b []byte, th *TraceHeader) []byte {
	b = append(b, traceFlagHasTrace)
	b = append(b, th.TraceID[:]...)
	return append(b, th.SpanID[:]...)
}

// decodeTraceHeader consumes an optional trailing trace header: nil
// when the payload is already exhausted (a v1 peer, or a v2 client
// without trace context).
func decodeTraceHeader(r *reader) (*TraceHeader, error) {
	if r.off >= len(r.b) {
		return nil, nil
	}
	if rest := len(r.b) - r.off; rest != traceHeaderLen {
		return nil, fmt.Errorf("wire: trace header is %d bytes, want %d", rest, traceHeaderLen)
	}
	flags, err := r.byte()
	if err != nil {
		return nil, err
	}
	if flags&traceFlagHasTrace == 0 {
		return nil, fmt.Errorf("wire: bad trace header flags %#x", flags)
	}
	var th TraceHeader
	tb, err := r.take(len(th.TraceID))
	if err != nil {
		return nil, err
	}
	copy(th.TraceID[:], tb)
	sb, err := r.take(len(th.SpanID))
	if err != nil {
		return nil, err
	}
	copy(th.SpanID[:], sb)
	return &th, nil
}

// EncodeStatementTrace builds a MsgQuery/MsgExec payload carrying a
// trace header. Only protocol-2 sessions may send it: a v1 server's
// strict decoder rejects the trailing bytes.
func EncodeStatementTrace(sql string, th *TraceHeader) []byte {
	b := AppendString(nil, sql)
	if th != nil {
		b = appendTraceHeader(b, th)
	}
	return b
}

// DecodeStatementTrace parses a MsgQuery/MsgExec payload with an
// optional trailing trace header (nil when absent).
func DecodeStatementTrace(p []byte) (string, *TraceHeader, error) {
	r := &reader{b: p}
	sql, err := r.string()
	if err != nil {
		return "", nil, err
	}
	th, err := decodeTraceHeader(r)
	if err != nil {
		return "", nil, err
	}
	return sql, th, r.done()
}

// EncodeSchema builds a MsgSchema payload: column count, then
// name + type tag per column.
func EncodeSchema(s *sqltypes.Schema) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(s.Len()))
	for _, c := range s.Columns {
		b = AppendString(b, c.Name)
		b = append(b, byte(c.Type))
	}
	return b
}

// DecodeSchema parses a MsgSchema payload.
func DecodeSchema(p []byte) (*sqltypes.Schema, error) {
	r := &reader{b: p}
	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if n > MaxFrame/2 {
		return nil, fmt.Errorf("wire: implausible column count %d", n)
	}
	cols := make([]sqltypes.Column, n)
	for i := range cols {
		if cols[i].Name, err = r.string(); err != nil {
			return nil, err
		}
		t, err := r.byte()
		if err != nil {
			return nil, err
		}
		cols[i].Type = sqltypes.Type(t)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return sqltypes.NewSchema(cols...)
}

// Value tags mirror the storage row codec (plus BOOL, which predicates
// can surface in result sets but storage never persists).
const (
	tagNull    byte = 0
	tagDouble  byte = 1
	tagBigInt  byte = 2
	tagVarChar byte = 3
	tagBool    byte = 4
)

// AppendValue appends one value's tagged encoding.
func AppendValue(b []byte, v sqltypes.Value) ([]byte, error) {
	switch v.Type() {
	case sqltypes.TypeNull:
		return append(b, tagNull), nil
	case sqltypes.TypeDouble:
		f, _ := v.Float()
		b = append(b, tagDouble)
		return binary.LittleEndian.AppendUint64(b, math.Float64bits(f)), nil
	case sqltypes.TypeBigInt:
		b = append(b, tagBigInt)
		return binary.LittleEndian.AppendUint64(b, uint64(v.Int())), nil
	case sqltypes.TypeVarChar:
		s := v.Str()
		b = append(b, tagVarChar)
		return AppendString(b, s), nil
	case sqltypes.TypeBool:
		b = append(b, tagBool)
		if v.Bool() {
			return append(b, 1), nil
		}
		return append(b, 0), nil
	default:
		return nil, fmt.Errorf("wire: cannot encode value of type %v", v.Type())
	}
}

// decodeValue parses one tagged value.
func decodeValue(r *reader) (sqltypes.Value, error) {
	tag, err := r.byte()
	if err != nil {
		return sqltypes.Null, err
	}
	switch tag {
	case tagNull:
		return sqltypes.Null, nil
	case tagDouble:
		u, err := r.uint64()
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewDouble(math.Float64frombits(u)), nil
	case tagBigInt:
		u, err := r.uint64()
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBigInt(int64(u)), nil
	case tagVarChar:
		s, err := r.string()
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewVarChar(s), nil
	case tagBool:
		b, err := r.byte()
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool(b != 0), nil
	default:
		return sqltypes.Null, fmt.Errorf("wire: bad value tag %d", tag)
	}
}

// EncodeBatch builds a MsgBatch payload from rows. Batches are
// self-describing (row count and arity in the header) because the
// streamed execution path — like the in-process QueryStream — learns
// the result schema only when the scan completes, so the Schema frame
// may follow the batches it describes. Rows must share one arity.
func EncodeBatch(rows []sqltypes.Row) ([]byte, error) {
	arity := 0
	if len(rows) > 0 {
		arity = len(rows[0])
		if arity == 0 {
			// The decoder rejects n>0 with arity 0 (the header would be
			// indistinguishable from a forged allocation bomb).
			return nil, errors.New("wire: cannot encode zero-arity rows")
		}
	}
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(rows)))
	b = binary.LittleEndian.AppendUint32(b, uint32(arity))
	var err error
	for _, row := range rows {
		if len(row) != arity {
			return nil, fmt.Errorf("wire: ragged batch: row has %d values, batch arity is %d", len(row), arity)
		}
		for _, v := range row {
			if b, err = AppendValue(b, v); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// DecodeBatch parses a MsgBatch payload.
func DecodeBatch(p []byte) ([]sqltypes.Row, error) {
	r := &reader{b: p}
	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	arity, err := r.uint32()
	if err != nil {
		return nil, err
	}
	// Every value costs at least its 1-byte tag; reject headers that
	// promise more values than the payload could hold, before the row
	// allocation trusts n. The product of two u32s cannot overflow a
	// u64, and zero-arity rows carry no bytes at all — EncodeBatch
	// never produces them for a non-empty batch, so any n>0 there is a
	// forged header.
	rest := uint64(len(p) - r.off)
	if arity == 0 {
		if n != 0 {
			return nil, fmt.Errorf("wire: implausible batch header (%d rows of zero arity)", n)
		}
	} else if uint64(n)*uint64(arity) > rest {
		return nil, fmt.Errorf("wire: implausible batch header (%d rows × %d cols in %d payload bytes)", n, arity, rest)
	}
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		row := make(sqltypes.Row, arity)
		for j := 0; j < int(arity); j++ {
			if row[j], err = decodeValue(r); err != nil {
				return nil, err
			}
		}
		rows[i] = row
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return rows, nil
}

// Done closes a statement's response stream.
type Done struct {
	// Affected is the row count for INSERT-like statements.
	Affected int64
	// Rows is the number of result rows streamed (for client-side
	// verification of complete delivery).
	Rows int64
	// StatsJSON is the executor's exec.Stats marshaled as JSON, empty
	// for statements without a scan.
	StatsJSON string
	// TraceID is the statement's trace identity as the server adopted
	// or assigned it (32 hex digits), echoed so the client can link its
	// roundtrip span to the server-side trace. Protocol >= 2 only;
	// empty on v1 sessions.
	TraceID string
}

// EncodeDone builds a MsgDone payload for a session negotiated at
// proto. The TraceID rides as trailing bytes gated on proto >= 2 — a
// v1 client's strict decoder must see the exact v1 payload.
func EncodeDone(d Done, proto uint32) []byte {
	b := AppendUint64(nil, uint64(d.Affected))
	b = AppendUint64(b, uint64(d.Rows))
	b = AppendString(b, d.StatsJSON)
	if proto >= ProtocolV2 && d.TraceID != "" {
		b = AppendString(b, d.TraceID)
	}
	return b
}

// DecodeDone parses a MsgDone payload; the trailing TraceID is
// optional (absent from v1 servers and untraced statements).
func DecodeDone(p []byte) (Done, error) {
	r := &reader{b: p}
	affected, err := r.uint64()
	if err != nil {
		return Done{}, err
	}
	rows, err := r.uint64()
	if err != nil {
		return Done{}, err
	}
	stats, err := r.string()
	if err != nil {
		return Done{}, err
	}
	d := Done{Affected: int64(affected), Rows: int64(rows), StatsJSON: stats}
	if r.off < len(r.b) {
		if d.TraceID, err = r.string(); err != nil {
			return Done{}, err
		}
	}
	return d, r.done()
}

// EncodePrepare builds a MsgPrepare payload: just the SQL.
func EncodePrepare(sql string) []byte { return AppendString(nil, sql) }

// DecodePrepare parses a MsgPrepare payload.
func DecodePrepare(p []byte) (string, error) { return DecodeStatement(p) }

// PreparedInfo is the server's MsgPrepared reply: the session-scoped
// handle EXECUTE frames name, and the statement's `?` slot count.
type PreparedInfo struct {
	Handle    int64
	NumParams int
}

// EncodePrepared builds a MsgPrepared payload.
func EncodePrepared(pi PreparedInfo) []byte {
	b := AppendUint64(nil, uint64(pi.Handle))
	return binary.LittleEndian.AppendUint32(b, uint32(pi.NumParams))
}

// DecodePrepared parses a MsgPrepared payload.
func DecodePrepared(p []byte) (PreparedInfo, error) {
	r := &reader{b: p}
	h, err := r.uint64()
	if err != nil {
		return PreparedInfo{}, err
	}
	n, err := r.uint32()
	if err != nil {
		return PreparedInfo{}, err
	}
	if n > MaxFrame {
		return PreparedInfo{}, fmt.Errorf("wire: implausible parameter count %d", n)
	}
	return PreparedInfo{Handle: int64(h), NumParams: int(n)}, r.done()
}

// EncodeExecPrepared builds a MsgExecPrepared payload: handle, arg
// count, then one tagged value per `?` slot (the result-row codec).
func EncodeExecPrepared(handle int64, args []sqltypes.Value) ([]byte, error) {
	b := AppendUint64(nil, uint64(handle))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(args)))
	var err error
	for _, v := range args {
		if b, err = AppendValue(b, v); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// EncodeExecPreparedTrace is EncodeExecPrepared plus a trailing trace
// header (protocol >= 2 only).
func EncodeExecPreparedTrace(handle int64, args []sqltypes.Value, th *TraceHeader) ([]byte, error) {
	b, err := EncodeExecPrepared(handle, args)
	if err != nil {
		return nil, err
	}
	if th != nil {
		b = appendTraceHeader(b, th)
	}
	return b, nil
}

// DecodeExecPrepared parses a MsgExecPrepared payload (strict v1 form:
// a trailing trace header is an error; servers use
// DecodeExecPreparedTrace).
func DecodeExecPrepared(p []byte) (int64, []sqltypes.Value, error) {
	h, args, th, err := DecodeExecPreparedTrace(p)
	if err != nil {
		return 0, nil, err
	}
	if th != nil {
		return 0, nil, fmt.Errorf("wire: %d trailing payload bytes", traceHeaderLen)
	}
	return h, args, nil
}

// DecodeExecPreparedTrace parses a MsgExecPrepared payload with an
// optional trailing trace header (nil when absent).
func DecodeExecPreparedTrace(p []byte) (int64, []sqltypes.Value, *TraceHeader, error) {
	r := &reader{b: p}
	h, err := r.uint64()
	if err != nil {
		return 0, nil, nil, err
	}
	n, err := r.uint32()
	if err != nil {
		return 0, nil, nil, err
	}
	// Every value costs at least its 1-byte tag; reject forged counts
	// before the slice allocation trusts n.
	if uint64(n) > uint64(len(p)-r.off) {
		return 0, nil, nil, fmt.Errorf("wire: implausible argument count %d in %d payload bytes", n, len(p)-r.off)
	}
	args := make([]sqltypes.Value, n)
	for i := range args {
		if args[i], err = decodeValue(r); err != nil {
			return 0, nil, nil, err
		}
	}
	th, err := decodeTraceHeader(r)
	if err != nil {
		return 0, nil, nil, err
	}
	if err := r.done(); err != nil {
		return 0, nil, nil, err
	}
	return int64(h), args, th, nil
}

// EncodeClosePrepared builds a MsgClosePrepared payload.
func EncodeClosePrepared(handle int64) []byte {
	return AppendUint64(nil, uint64(handle))
}

// DecodeClosePrepared parses a MsgClosePrepared payload.
func DecodeClosePrepared(p []byte) (int64, error) {
	r := &reader{b: p}
	h, err := r.uint64()
	if err != nil {
		return 0, err
	}
	return int64(h), r.done()
}

// EncodeError builds a MsgError payload.
func EncodeError(e *Error) []byte {
	b := AppendString(nil, e.Code)
	return AppendString(b, e.Message)
}

// DecodeError parses a MsgError payload.
func DecodeError(p []byte) (*Error, error) {
	r := &reader{b: p}
	code, err := r.string()
	if err != nil {
		return nil, err
	}
	msg, err := r.string()
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &Error{Code: code, Message: msg}, nil
}

// Summary is the protocol-3 push-down request a coordinator sends a
// shard: compute (or serve from the shard's incremental summary cache)
// the n/L/Q sufficient statistics over the named columns of one local
// table. The reply is a SummaryResult whose packed NLQ merges
// additively with the other shards' partials — the 4-phase aggregate
// protocol's merge step, run across processes instead of goroutines.
type Summary struct {
	Table string
	// Columns are the dimension columns; empty means every DOUBLE
	// column in schema order (the shard resolves the default, so all
	// shards of one table resolve identically).
	Columns []string
	// Matrix is the core.MatrixType ordinal (diagonal/triangular/full).
	Matrix byte
}

// EncodeSummary builds a MsgSummary payload.
func EncodeSummary(s Summary) []byte {
	b := AppendString(nil, s.Table)
	b = append(b, s.Matrix)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Columns)))
	for _, c := range s.Columns {
		b = AppendString(b, c)
	}
	return b
}

// DecodeSummary parses a MsgSummary payload.
func DecodeSummary(p []byte) (Summary, error) {
	r := &reader{b: p}
	var s Summary
	var err error
	if s.Table, err = r.string(); err != nil {
		return Summary{}, err
	}
	if s.Matrix, err = r.byte(); err != nil {
		return Summary{}, err
	}
	n, err := r.uint32()
	if err != nil {
		return Summary{}, err
	}
	// Every column costs at least its 4-byte length prefix; reject
	// forged counts before the slice allocation trusts n.
	if uint64(n)*4 > uint64(len(p)-r.off) {
		return Summary{}, fmt.Errorf("wire: implausible column count %d in %d payload bytes", n, len(p)-r.off)
	}
	if n > 0 {
		s.Columns = make([]string, n)
		for i := range s.Columns {
			if s.Columns[i], err = r.string(); err != nil {
				return Summary{}, err
			}
		}
	}
	return s, r.done()
}

// SummaryResult is the shard's MsgSummaryResult reply.
type SummaryResult struct {
	// Hit reports whether the shard's summary cache served the request
	// without a scan (the coordinator aggregates this into its own
	// cold/warm accounting).
	Hit bool
	// Packed is the core.NLQ Pack() encoding of the shard-local
	// partial; empty when the shard's slice of the table has no rows.
	Packed string
}

// EncodeSummaryResult builds a MsgSummaryResult payload.
func EncodeSummaryResult(sr SummaryResult) []byte {
	var hit byte
	if sr.Hit {
		hit = 1
	}
	b := append([]byte(nil), hit)
	return AppendString(b, sr.Packed)
}

// DecodeSummaryResult parses a MsgSummaryResult payload.
func DecodeSummaryResult(p []byte) (SummaryResult, error) {
	r := &reader{b: p}
	hit, err := r.byte()
	if err != nil {
		return SummaryResult{}, err
	}
	if hit > 1 {
		return SummaryResult{}, fmt.Errorf("wire: bad summary hit flag %d", hit)
	}
	packed, err := r.string()
	if err != nil {
		return SummaryResult{}, err
	}
	return SummaryResult{Hit: hit == 1, Packed: packed}, r.done()
}
